"""The simulation server: asyncio front end over threaded slice workers.

:class:`SimulationServer` accepts job specs on an asyncio event loop,
answers repeats from the content-addressed :class:`~repro.serve.cache.
ResultCache` without touching a solver, coalesces duplicate in-flight
specs onto one primary job, and dispatches everything else through the
preemptive :class:`~repro.serve.scheduler.Scheduler` onto a
``ThreadPoolExecutor`` whose threads drive the existing SCF / bands /
invDFT / MLXC drivers one slice at a time.

Threading discipline (what a ``REPRO_SANITIZE=1`` run proves):

* all ``Job`` mutation, queue pushes and rank accounting happen on the
  event-loop thread — worker threads only *execute* a slice from a
  frozen spec plus an immutable :class:`~repro.serve.runners.
  SliceContext`, and publish results into the lock-guarded cache;
* dispatch is event-driven — ``_pump()`` runs after every submit and
  every slice completion, so there is no polling loop and an idle
  server burns nothing.

Failures are routed through :mod:`repro.resilience`: every slice attempt
runs under the server's :class:`~repro.resilience.RetryPolicy`, and only
the structured :class:`~repro.resilience.ResilienceError` it emits on
exhaustion marks a job ``FAILED`` (reprolint R011: no broad excepts
outside the resilience boundary).
"""

from __future__ import annotations

import asyncio
import itertools
import pathlib
import tempfile
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

from repro.obs import Stopwatch, add_counter, add_event
from repro.resilience import ResilienceError, RetryPolicy

from .cache import CacheStats, ResultCache
from .jobs import JobSpec
from .queue import Job, JobState
from .runners import SliceOutcome, run_slice
from .scheduler import Scheduler, SchedulerPolicy

__all__ = [
    "ServeReport",
    "ServeRequest",
    "ServerStats",
    "SimulationServer",
    "run_jobs",
]


@dataclass(frozen=True)
class ServeRequest:
    """One submission: a spec plus its scheduling attributes."""

    spec: JobSpec
    priority: int = 0
    deadline: float | None = None
    #: warm-start hint: checkpoint path whose density seeds the first
    #: SCF iteration (see ``Job.seed_rho``; not part of the cache key)
    seed_rho: str | None = None


@dataclass
class ServerStats:
    """Aggregate traffic counters of one server lifetime."""

    submitted: int = 0
    completed: int = 0
    failed: int = 0
    cancelled: int = 0
    cache_hits: int = 0
    coalesced: int = 0
    preemptions: int = 0
    slices: int = 0
    max_queue_depth: int = 0
    latencies: list[float] = field(default_factory=list)

    def latency_percentile(self, q: float) -> float:
        """Latency at quantile ``q`` in [0, 1] (0.0 with no completions)."""
        if not self.latencies:
            return 0.0
        ordered = sorted(self.latencies)
        idx = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
        return ordered[idx]

    def as_dict(self) -> dict[str, float]:
        return {
            "submitted": float(self.submitted),
            "completed": float(self.completed),
            "failed": float(self.failed),
            "cancelled": float(self.cancelled),
            "cache_hits": float(self.cache_hits),
            "coalesced": float(self.coalesced),
            "preemptions": float(self.preemptions),
            "slices": float(self.slices),
            "max_queue_depth": float(self.max_queue_depth),
            "latency_p50_s": self.latency_percentile(0.50),
            "latency_p99_s": self.latency_percentile(0.99),
        }


@dataclass(frozen=True)
class ServeReport:
    """What :func:`run_jobs` hands back to synchronous callers."""

    jobs: tuple[Job, ...]
    stats: ServerStats
    cache_stats: CacheStats
    wall_seconds: float


class SimulationServer:
    """Priority-scheduled, cache-fronted simulation service (asyncio API).

    Use as an async context manager, or call :meth:`shutdown` yourself::

        async with SimulationServer(workdir=tmp) as server:
            job = await server.submit(SCFJobSpec(molecule="H2"))
            await server.wait(job)
    """

    def __init__(
        self,
        workdir: str | pathlib.Path | None = None,
        *,
        policy: SchedulerPolicy | None = None,
        workers: int = 4,
        retry_policy: RetryPolicy | None = None,
        cache: ResultCache | None = None,
    ) -> None:
        if workdir is None and cache is None:
            self._tmpdir: tempfile.TemporaryDirectory[str] | None = (
                tempfile.TemporaryDirectory(prefix="repro-serve-")
            )
            workdir = self._tmpdir.name
        else:
            self._tmpdir = None
        assert workdir is not None
        root = pathlib.Path(workdir)
        self.policy = policy if policy is not None else SchedulerPolicy()
        self.scheduler = Scheduler(self.policy, root / "checkpoints")
        self.cache = cache if cache is not None else ResultCache(root / "cache")
        self.retry_policy = (
            retry_policy if retry_policy is not None else RetryPolicy()
        )
        self.stats = ServerStats()
        self.clock = Stopwatch()
        self._executor = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-serve"
        )
        self._job_ids = itertools.count(1)
        self._jobs: dict[int, Job] = {}
        self._events: dict[int, asyncio.Event] = {}
        #: spec key -> primary in-flight job (the coalescing table)
        self._inflight: dict[str, Job] = {}
        self._tasks: set[asyncio.Task[None]] = set()
        self._closed = False

    async def __aenter__(self) -> "SimulationServer":
        return self

    async def __aexit__(self, *exc: object) -> None:
        await self.shutdown()

    # -- submission ----------------------------------------------------------
    async def submit(
        self,
        spec: JobSpec,
        *,
        priority: int = 0,
        deadline: float | None = None,
        seed_rho: str | None = None,
    ) -> Job:
        """Validate, cache-check, coalesce or enqueue one request.

        Returns the tracked :class:`Job` immediately; await
        :meth:`wait` for its terminal state.  A cache hit completes the
        job here, without ever invoking a solver.
        """
        if self._closed:
            raise RuntimeError("server is shut down")
        spec.validate()
        job = Job(
            job_id=next(self._job_ids),
            spec=spec,
            priority=priority,
            deadline=deadline,
            submitted_at=self._now(),
            seed_rho=seed_rho,
        )
        self._jobs[job.job_id] = job
        self._events[job.job_id] = asyncio.Event()
        self.stats.submitted += 1

        cached = self.cache.get(spec)
        if cached is not None:
            job.result = cached
            job.cache_hit = True
            self.stats.cache_hits += 1
            self._finalize(job, JobState.DONE)
            return job

        key = spec.job_key()
        primary = self._inflight.get(key)
        if primary is not None and not primary.state.terminal:
            job.coalesced_into = primary.job_id
            primary.followers.append(job)
            self.stats.coalesced += 1
            add_counter("coalesced_jobs", 1)
            return job

        self._inflight[key] = job
        self.scheduler.submit(job)
        depth = len(self.scheduler.queue)
        if depth > self.stats.max_queue_depth:
            self.stats.max_queue_depth = depth
        self._pump()
        # yield one loop turn so slice completions interleave with a
        # submission burst (later duplicates can then hit the cache
        # instead of all coalescing onto the in-flight primary)
        await asyncio.sleep(0)
        return job

    async def submit_many(
        self, requests: Iterable[ServeRequest]
    ) -> list[Job]:
        return [
            await self.submit(
                r.spec, priority=r.priority, deadline=r.deadline,
                seed_rho=r.seed_rho,
            )
            for r in requests
        ]

    # -- completion ----------------------------------------------------------
    async def wait(self, job: Job) -> Job:
        """Block until ``job`` reaches a terminal state; returns it."""
        event = self._events[job.job_id]
        await event.wait()
        return job

    async def drain(self) -> None:
        """Wait for every submitted job to reach a terminal state."""
        for event in list(self._events.values()):
            await event.wait()

    def cancel(self, job: Job) -> bool:
        """Request cancellation.  Queued/preempted jobs cancel here;
        a running sliceable job cancels at its next slice boundary.
        Terminal jobs and running non-sliceable jobs (which run their
        one slice to completion) return False."""
        if job.state in (JobState.QUEUED, JobState.PREEMPTED):
            self._finalize(job, JobState.CANCELLED)
            return True
        if job.state is JobState.RUNNING and job.spec.sliceable:
            job.cancel_requested = True
            return True
        return False

    async def shutdown(self) -> None:
        """Drain outstanding jobs and stop the worker pool."""
        if not self._closed:
            await self.drain()
            self._closed = True
            self._executor.shutdown(wait=True)
            if self._tmpdir is not None:
                self._tmpdir.cleanup()

    # -- internals (event-loop thread only) -----------------------------------
    def _now(self) -> float:
        return self.clock.elapsed()

    def _pump(self) -> None:
        """Dispatch every queued job that currently fits the rank budget."""
        while True:
            job = self.scheduler.next_dispatch(self._now())
            if job is None:
                return
            if job.state is JobState.FAILED:  # deadline expired in queue
                self._finalize(job, None)
                continue
            task = asyncio.get_running_loop().create_task(self._drive(job))
            self._tasks.add(task)
            task.add_done_callback(self._tasks.discard)

    async def _drive(self, job: Job) -> None:
        """Run one slice of ``job`` on a worker thread, then route it."""
        ctx = self.scheduler.slice_context(job)
        loop = asyncio.get_running_loop()
        outcome, error = await loop.run_in_executor(
            self._executor, self._execute_slice, job.spec, ctx
        )
        self.scheduler.release(job)
        job.slices += 1
        self.stats.slices += 1
        if error is not None:
            job.error = error
            self._finalize(job, JobState.FAILED)
        elif outcome is not None and outcome.done:
            job.result = outcome.payload
            job.iterations_done = outcome.iterations
            self._finalize(job, JobState.DONE)
        elif job.cancel_requested:
            self._finalize(job, JobState.CANCELLED)
        else:
            assert outcome is not None
            job.transition(JobState.PREEMPTED)
            self.stats.preemptions += 1
            add_counter("preemptions", 1)
            self.scheduler.requeue_preempted(
                job, outcome.checkpoint, outcome.iterations
            )
        self._pump()

    def _execute_slice(
        self, spec: JobSpec, ctx: Any
    ) -> tuple[SliceOutcome | None, str | None]:
        """Worker-thread body: run one slice under the retry policy.

        Reads only the frozen spec and context; a finished payload is
        published into the lock-guarded cache from this thread.  Returns
        ``(outcome, None)`` or ``(None, error)`` — the structured
        :class:`ResilienceError` is the only failure that crosses back.
        """
        try:
            outcome: SliceOutcome = self.retry_policy.run(
                lambda: run_slice(spec, ctx),
                site=f"serve:{spec.kind}",
            )
        except ResilienceError as exc:
            return None, str(exc)
        if outcome.done and outcome.payload is not None:
            self.cache.put(spec, outcome.payload)
        return outcome, None

    def _finalize(self, job: Job, state: JobState | None) -> None:
        """Set the terminal state, settle followers, wake waiters."""
        if state is not None:
            job.transition(state)
        if job.finished_at is None:
            job.finished_at = self._now()
        if job.state is JobState.DONE:
            self.stats.completed += 1
            latency = job.latency
            if latency is not None:
                self.stats.latencies.append(latency)
        elif job.state is JobState.FAILED:
            self.stats.failed += 1
            add_event("job_failed", job_id=job.job_id, error=job.error or "")
        else:
            self.stats.cancelled += 1
        self._inflight.pop(job.spec.job_key(), None)
        for follower in job.followers:
            if follower.state.terminal:
                continue
            follower.result = (
                dict(job.result) if job.result is not None else None
            )
            follower.error = job.error
            follower.transition(job.state)
            follower.finished_at = self._now()
            if follower.state is JobState.DONE:
                self.stats.completed += 1
                latency = follower.latency
                if latency is not None:
                    self.stats.latencies.append(latency)
            elif follower.state is JobState.FAILED:
                self.stats.failed += 1
            else:
                self.stats.cancelled += 1
            self._events[follower.job_id].set()
        self._events[job.job_id].set()


# ---------------------------------------------------------------------------
def run_jobs(
    requests: Sequence[ServeRequest],
    *,
    workdir: str | pathlib.Path | None = None,
    policy: SchedulerPolicy | None = None,
    workers: int = 4,
    retry_policy: RetryPolicy | None = None,
    cache: ResultCache | None = None,
) -> ServeReport:
    """Synchronous facade: serve ``requests`` to completion and report.

    This is what the CLI and the benchmark drive — one event loop,
    submit everything, drain, shut down, and hand back the jobs (in
    submission order) plus the server and cache statistics.
    """

    async def _main() -> ServeReport:
        server = SimulationServer(
            workdir,
            policy=policy,
            workers=workers,
            retry_policy=retry_policy,
            cache=cache,
        )
        watch = Stopwatch()
        async with server:
            jobs = await server.submit_many(requests)
            await server.drain()
            wall = watch.elapsed()
        return ServeReport(
            jobs=tuple(jobs),
            stats=server.stats,
            cache_stats=server.cache.stats,
            wall_seconds=wall,
        )

    return asyncio.run(_main())
