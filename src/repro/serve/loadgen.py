"""Deterministic request-stream generation for the serve CLI and bench.

The load generator turns a handful of knobs into a reproducible stream
of :class:`~repro.serve.server.ServeRequest` records.  ``distinct``
controls how many unique specs the stream draws from, so the expected
cache hit rate of a cold run is ``1 - distinct / n`` by construction —
the benchmark asserts its measured rate against exactly that.

Determinism matters here the same way it does in the solvers: the
stream is a pure function of ``seed``, so two benchmark runs submit
byte-identical request sequences (no wall-clock, no global RNG).
"""

from __future__ import annotations

import random
from typing import Sequence

from .jobs import ProbeJobSpec, SCFJobSpec
from .server import ServeRequest

__all__ = ["probe_load", "scf_load"]

#: priority levels a generated stream cycles through (lower runs first)
_PRIORITY_LEVELS = (0, 1, 2)


def probe_load(
    n: int,
    *,
    distinct: int = 16,
    size: int = 24,
    iters: int = 3,
    seed: int = 0,
) -> list[ServeRequest]:
    """``n`` probe requests drawn from ``distinct`` unique specs.

    Probe jobs (seeded ``tanh(A @ A / n)`` sweeps) exercise the whole
    queue/scheduler/cache pipeline at high request rates without solver
    cost — this is the 1k/10k-request stream behind ``BENCH_serve``.
    """
    if n < 1 or distinct < 1:
        raise ValueError("probe_load needs n >= 1 and distinct >= 1")
    rng = random.Random(seed)
    distinct = min(distinct, n)
    specs = [
        ProbeJobSpec(seed=seed * 10_000 + i, size=size, iters=iters)
        for i in range(distinct)
    ]
    requests: list[ServeRequest] = []
    for i in range(n):
        # first pass covers every unique spec; the tail re-draws from them
        spec = specs[i] if i < distinct else specs[rng.randrange(distinct)]
        requests.append(
            ServeRequest(
                spec=spec, priority=_PRIORITY_LEVELS[i % len(_PRIORITY_LEVELS)]
            )
        )
    return requests


def scf_load(
    molecules: Sequence[str],
    *,
    repeats: int = 2,
    degree: int = 2,
    cells: int = 3,
    max_scf: int = 40,
) -> list[ServeRequest]:
    """An SCF request stream: each molecule submitted ``repeats`` times.

    Every repeat after the first is a guaranteed cache hit (same spec,
    same job key), which is how the CLI demonstrates repeated physics
    being served without a solver invocation.
    """
    if not molecules or repeats < 1:
        raise ValueError("scf_load needs molecules and repeats >= 1")
    return [
        ServeRequest(
            spec=SCFJobSpec(
                molecule=m, degree=degree, cells=cells, max_scf=max_scf
            )
        )
        for _ in range(repeats)
        for m in molecules
    ]
