"""Content-addressed result cache: identical specs served in O(1).

Results are stored under the spec's SHA-256 job key
(:meth:`repro.serve.jobs.JobSpec.job_key`) as one JSON file per entry —
an envelope carrying the schema tag, the full serialized spec, and the
JSON payload the runner produced.  Storing the *spec* (not just the
payload) makes every entry self-verifying: on read, the key recomputed
from the stored spec must equal the file's name, so a corrupted or
hand-edited entry is treated as a miss instead of serving wrong physics
(the same checksum discipline as the PR 1 model-artifact guard).

Writes are atomic (temp file + fsync + ``os.replace``, the
:mod:`repro.core.io` pattern): a crash mid-write leaves either the old
entry or the new one, never a torn file.  A lock plus reprosan write
windows guard the in-memory index, so concurrent workers publishing
results under ``REPRO_SANITIZE=1`` prove the locking discipline.

Hit/miss/put tallies are kept on the cache and mirrored to the open
reproscope span (``cache_hits`` / ``cache_misses`` counters).
"""

from __future__ import annotations

import json
import os
import pathlib
import tempfile
import threading
from dataclasses import dataclass
from typing import Any

from repro.obs import add_counter
from repro.tools import sanitize as _sanitize

from .jobs import JobSpec, spec_from_dict

__all__ = ["CacheStats", "ResultCache"]

#: schema tag of the on-disk cache entry envelope
CACHE_SCHEMA = "repro-serve-cache/1"


@dataclass
class CacheStats:
    """Monotonic counters of one cache's traffic."""

    hits: int = 0
    misses: int = 0
    puts: int = 0
    corrupt: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def as_dict(self) -> dict[str, float]:
        return {
            "hits": float(self.hits),
            "misses": float(self.misses),
            "puts": float(self.puts),
            "corrupt": float(self.corrupt),
            "hit_rate": self.hit_rate,
        }


class ResultCache:
    """Disk-backed, memory-indexed content-addressed result store."""

    def __init__(self, root: str | os.PathLike[str]) -> None:
        self.root = pathlib.Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.stats = CacheStats()
        self._lock = threading.Lock()
        self._memory: dict[str, dict[str, Any]] = {}
        self._san_tag = f"ResultCache:{id(self)}"

    # ------------------------------------------------------------------
    def _path(self, key: str) -> pathlib.Path:
        return self.root / f"{key}.json"

    def get(self, spec: JobSpec) -> dict[str, Any] | None:
        """Payload for ``spec`` or None; counts a hit or a miss."""
        key = spec.job_key()
        with self._lock:
            entry = self._memory.get(key)
        if entry is None:
            entry = self._load(key)
        if entry is None:
            self.stats.misses += 1
            add_counter("cache_misses", 1)
            return None
        self.stats.hits += 1
        add_counter("cache_hits", 1)
        return dict(entry)

    def put(self, spec: JobSpec, payload: dict[str, Any]) -> pathlib.Path:
        """Publish ``payload`` under the spec's content address (atomic)."""
        key = spec.job_key()
        envelope = {
            "schema": CACHE_SCHEMA,
            "key": key,
            "spec": spec.to_dict(),
            "payload": payload,
        }
        path = self._path(key)
        blob = json.dumps(envelope, sort_keys=True, indent=1)
        with self._lock:
            san = _sanitize._STATE
            if san is not None:
                san.write_begin(self._san_tag)
            try:
                fd, tmp = tempfile.mkstemp(
                    dir=self.root, suffix=".cache.tmp"
                )
                try:
                    with os.fdopen(fd, "w", encoding="utf-8") as f:
                        f.write(blob)
                        f.flush()
                        os.fsync(f.fileno())
                    os.replace(tmp, path)
                finally:
                    if os.path.exists(tmp):
                        os.remove(tmp)
                self._memory[key] = dict(payload)
                self.stats.puts += 1
            finally:
                if san is not None:
                    san.write_end(self._san_tag)
        return path

    def _load(self, key: str) -> dict[str, Any] | None:
        """Read + verify one disk entry; corrupt entries count and miss."""
        path = self._path(key)
        try:
            raw = path.read_text(encoding="utf-8")
        except OSError:
            return None
        try:
            envelope = json.loads(raw)
        except json.JSONDecodeError:
            self.stats.corrupt += 1
            return None
        if not self._verify(key, envelope):
            self.stats.corrupt += 1
            return None
        entry: dict[str, Any] = envelope["payload"]
        with self._lock:
            san = _sanitize._STATE
            if san is not None:
                san.write_begin(self._san_tag)
            try:
                self._memory[key] = entry
            finally:
                if san is not None:
                    san.write_end(self._san_tag)
        return entry

    @staticmethod
    def _verify(key: str, envelope: Any) -> bool:
        """Entry is well-formed and its stored spec re-hashes to ``key``."""
        if not isinstance(envelope, dict):
            return False
        if envelope.get("schema") != CACHE_SCHEMA:
            return False
        if not isinstance(envelope.get("payload"), dict):
            return False
        try:
            spec = spec_from_dict(envelope.get("spec", {}))
        except (ValueError, TypeError):
            return False
        return spec.job_key() == key

    # ------------------------------------------------------------------
    def __contains__(self, spec: JobSpec) -> bool:
        key = spec.job_key()
        with self._lock:
            if key in self._memory:
                return True
        return self._path(key).exists()

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*.json"))
