"""Job model: serializable, hashable request specs for the serve runtime.

Every request to the simulation service is a frozen dataclass spec.  Specs
serialize to a canonical JSON envelope (``{"schema", "kind", "params"}``
with sorted keys and tuples normalized to lists) and hash to a stable
SHA-256 **job key** — the content address used by the result cache, the
duplicate coalescer and the checkpoint store.  Two requests with the same
physics are the same job, byte for byte, across processes and sessions;
this extends the checksum discipline of the PR 1 model-artifact guard to
the request path.

Spec kinds mirror the repository's long-running drivers:

==========  ===========================================================
``scf``     ground-state SCF of a library molecule (sliceable: the
            scheduler may preempt it at checkpointed iteration
            boundaries and resume later, bit for bit)
``bands``   SCF plus a frozen-potential band structure along a k-path
``invdft``  QMB reference + inverse-DFT exact-XC-potential extraction
``mlxc``    invDFT training-set build + MLXC functional training
``probe``   synthetic deterministic workload (seeded numpy iteration)
            for load generation and runtime benchmarks — exercises the
            queue/scheduler/cache machinery without solver cost
==========  ===========================================================

Register a new kind by decorating a frozen dataclass subclass of
:class:`JobSpec` with :func:`register_job_type`.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass
from typing import Any, ClassVar, Iterator, Mapping, TypeVar

__all__ = [
    "JOB_SPEC_SCHEMA",
    "JOB_TYPES",
    "JobSpec",
    "SCFJobSpec",
    "BandsJobSpec",
    "InvDFTJobSpec",
    "MLXCTrainJobSpec",
    "ProbeJobSpec",
    "canonical_json",
    "register_job_type",
    "spec_from_dict",
]

#: schema tag of the serialized job envelope
JOB_SPEC_SCHEMA = "repro-serve-job/1"

#: registered spec classes, keyed by ``kind``
JOB_TYPES: dict[str, type["JobSpec"]] = {}

_S = TypeVar("_S", bound="type[JobSpec]")


def _normalize(value: Any) -> Any:
    """Tuples -> lists (recursively) so the JSON form is canonical."""
    if isinstance(value, tuple):
        return [_normalize(v) for v in value]
    if isinstance(value, list):
        return [_normalize(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _normalize(v) for k, v in value.items()}
    return value


def canonical_json(obj: Any) -> str:
    """Deterministic JSON: sorted keys, no whitespace, tuples as lists."""
    return json.dumps(
        _normalize(obj), sort_keys=True, separators=(",", ":"),
        allow_nan=False,
    )


@dataclass(frozen=True)
class JobSpec:
    """Base class of all job specs (frozen => hashable, usable as keys).

    Subclasses declare their own fields (including ``ranks``, the number
    of virtual-cluster ranks the job occupies while running — the
    scheduler packs jobs onto a fixed rank budget) plus the class
    attributes ``kind`` and ``sliceable``.  ``sliceable`` marks kinds the
    scheduler may preempt at a checkpoint boundary and resume later.
    """

    kind: ClassVar[str] = ""
    sliceable: ClassVar[bool] = False

    def validate(self) -> None:
        """Raise ``ValueError`` on an ill-formed spec (override + super())."""
        ranks = getattr(self, "ranks", 1)
        if not isinstance(ranks, int) or ranks < 1:
            raise ValueError(f"{self.kind} spec needs ranks >= 1, got {ranks!r}")

    def to_dict(self) -> dict[str, Any]:
        """Canonical serialized envelope: ``{"schema", "kind", "params"}``."""
        params = {
            f.name: _normalize(getattr(self, f.name))
            for f in dataclasses.fields(self)
        }
        return {"schema": JOB_SPEC_SCHEMA, "kind": self.kind, "params": params}

    def job_key(self) -> str:
        """Stable SHA-256 content address of this spec."""
        blob = canonical_json(self.to_dict()).encode("utf-8")
        return hashlib.sha256(blob).hexdigest()


def register_job_type(cls: _S) -> _S:
    """Class decorator adding a spec class to :data:`JOB_TYPES`."""
    if not cls.kind:
        raise ValueError(f"{cls.__name__} must set a non-empty kind")
    if cls.kind in JOB_TYPES:
        raise ValueError(f"duplicate job kind {cls.kind!r}")
    JOB_TYPES[cls.kind] = cls
    return cls


def spec_from_dict(data: Mapping[str, Any]) -> JobSpec:
    """Rebuild a spec from its :meth:`JobSpec.to_dict` envelope.

    Round-trip guarantee: ``spec_from_dict(s.to_dict()) == s`` and the two
    share one job key.  Raises ``ValueError`` on an unknown schema or
    kind, or on parameters the spec class rejects.
    """
    schema = data.get("schema")
    if schema != JOB_SPEC_SCHEMA:
        raise ValueError(f"unsupported job spec schema {schema!r}")
    kind = data.get("kind")
    if not isinstance(kind, str) or kind not in JOB_TYPES:
        raise ValueError(f"unknown job kind {kind!r}")
    cls = JOB_TYPES[kind]
    params = data.get("params")
    if not isinstance(params, Mapping):
        raise ValueError("job spec envelope lacks a params mapping")
    names = {f.name for f in dataclasses.fields(cls)}
    unknown = sorted(set(params) - names)
    if unknown:
        raise ValueError(f"unknown {kind} spec parameters {unknown}")
    kwargs = {k: _listify(cls, k, v) for k, v in params.items()}
    spec = cls(**kwargs)
    spec.validate()
    return spec


def _listify(cls: type[JobSpec], name: str, value: Any) -> Any:
    """JSON lists back to tuples where the field is tuple-typed."""
    field = next(f for f in dataclasses.fields(cls) if f.name == name)
    ann = str(field.type)
    if isinstance(value, list) and "tuple" in ann:
        return tuple(
            tuple(v) if isinstance(v, list) else v for v in value
        )
    return value


# ---------------------------------------------------------------------------
_XC_CHOICES = ("lda", "pbe")


def _check_scf_params(
    spec: "SCFJobSpec | BandsJobSpec | InvDFTJobSpec",
) -> Iterator[str]:
    from repro.pipeline import MOLECULE_LIBRARY

    if spec.molecule not in MOLECULE_LIBRARY:
        yield f"unknown molecule {spec.molecule!r}"
    if getattr(spec, "xc", "lda") not in _XC_CHOICES:
        yield f"xc must be one of {_XC_CHOICES}"
    if spec.degree < 1 or spec.cells < 2:
        yield "mesh needs degree >= 1 and cells >= 2"


@register_job_type
@dataclass(frozen=True)
class SCFJobSpec(JobSpec):
    """Ground-state SCF of a library molecule.

    The one sliceable kind: the runner caps ``max_iterations`` at the
    scheduler's slice boundary, checkpoints every iteration (the PR 4 v2
    format), and a preempted job resumes from its checkpoint bit for bit.
    """

    kind: ClassVar[str] = "scf"
    sliceable: ClassVar[bool] = True

    molecule: str = "H2"
    xc: str = "lda"
    degree: int = 3
    cells: int = 3
    padding: float = 6.0
    max_scf: int = 40
    ranks: int = 1

    def validate(self) -> None:
        super().validate()
        problems = list(_check_scf_params(self))
        if self.max_scf < 1:
            problems.append("max_scf must be >= 1")
        if problems:
            raise ValueError(f"invalid scf spec: {'; '.join(problems)}")


@register_job_type
@dataclass(frozen=True)
class BandsJobSpec(JobSpec):
    """SCF plus a frozen-potential band structure along one k-path."""

    kind: ClassVar[str] = "bands"

    molecule: str = "H2"
    xc: str = "lda"
    degree: int = 3
    cells: int = 3
    padding: float = 6.0
    max_scf: int = 40
    k_start: tuple[float, float, float] = (0.0, 0.0, 0.0)
    k_end: tuple[float, float, float] = (0.5, 0.0, 0.0)
    n_kpoints: int = 3
    nbands: int = 4
    ranks: int = 1

    def validate(self) -> None:
        super().validate()
        problems = list(_check_scf_params(self))
        if self.n_kpoints < 2:
            problems.append("a k-path needs at least two points")
        if self.nbands < 1:
            problems.append("nbands must be >= 1")
        if problems:
            raise ValueError(f"invalid bands spec: {'; '.join(problems)}")


@register_job_type
@dataclass(frozen=True)
class InvDFTJobSpec(JobSpec):
    """QMB (FCI) reference plus inverse-DFT exact-XC extraction."""

    kind: ClassVar[str] = "invdft"

    molecule: str = "H2"
    degree: int = 2
    cells: int = 3
    max_iterations: int = 30
    minres_tol: float = 1e-6
    minres_maxiter: int = 150
    eta: float = 2.0
    ranks: int = 2

    def validate(self) -> None:
        super().validate()
        problems = list(_check_scf_params(self))
        if self.max_iterations < 1:
            problems.append("max_iterations must be >= 1")
        if problems:
            raise ValueError(f"invalid invdft spec: {'; '.join(problems)}")


@register_job_type
@dataclass(frozen=True)
class MLXCTrainJobSpec(JobSpec):
    """invDFT training-set build + MLXC functional training."""

    kind: ClassVar[str] = "mlxc"

    molecules: tuple[str, ...] = ("H2",)
    degree: int = 2
    cells: int = 3
    invdft_iterations: int = 30
    epochs: int = 50
    lr: float = 2e-3
    seed: int = 0
    ranks: int = 2

    def validate(self) -> None:
        super().validate()
        from repro.pipeline import MOLECULE_LIBRARY

        problems = []
        if not self.molecules:
            problems.append("needs at least one training molecule")
        unknown = [m for m in self.molecules if m not in MOLECULE_LIBRARY]
        if unknown:
            problems.append(f"unknown molecules {unknown}")
        if self.epochs < 1:
            problems.append("epochs must be >= 1")
        if problems:
            raise ValueError(f"invalid mlxc spec: {'; '.join(problems)}")


@register_job_type
@dataclass(frozen=True)
class ProbeJobSpec(JobSpec):
    """Synthetic deterministic workload for load generation.

    ``size`` sets the matrix dimension, ``iters`` the number of
    ``tanh(A @ A / n)`` sweeps; the payload carries a SHA-256 checksum of
    the final matrix, so cache hits are verifiable bit for bit.
    """

    kind: ClassVar[str] = "probe"

    seed: int = 0
    size: int = 32
    iters: int = 4
    ranks: int = 1

    def validate(self) -> None:
        super().validate()
        if self.size < 1 or self.iters < 0:
            raise ValueError("probe spec needs size >= 1 and iters >= 0")
