"""Job runners: one slice of work per call, driving the existing drivers.

Each registered job kind maps to a runner callable taking ``(spec, ctx)``
and returning a :class:`SliceOutcome` — either ``done`` with the final
JSON payload, or ``preempted`` with a resumable checkpoint path.  Runners
execute on the server's worker threads; everything they need travels in
the spec and the :class:`SliceContext`, and everything they produce is a
JSON-serializable payload (floats survive a JSON round trip bit for bit
via ``repr``, so cached results compare bitwise against fresh solves).

Slicing contract (``scf`` today): when the context carries a slice
budget, the runner caps the driver's iteration count at
``iterations_done + slice_iterations``, checkpoints every iteration with
the PR 4 v2 format, and reports ``preempted`` if the run hit the cap
without converging.  The next slice resumes from the checkpoint —
bit-for-bit identical to an unpreempted run, which
``tests/test_serve.py`` verifies on the golden molecule library spec.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

from .jobs import (
    BandsJobSpec,
    InvDFTJobSpec,
    JobSpec,
    MLXCTrainJobSpec,
    ProbeJobSpec,
    SCFJobSpec,
)

__all__ = ["RUNNERS", "SliceContext", "SliceOutcome", "run_slice"]


@dataclass(frozen=True)
class SliceContext:
    """Per-slice execution inputs handed to a runner.

    ``slice_iterations`` is the scheduler's time-slice budget (None =
    run to completion); ``iterations_done`` and ``resume_from`` carry a
    preempted job's progress; ``checkpoint_path`` is where a sliceable
    runner must write its resumable state.  ``backend``/``ranks`` select
    the execution substrate for rank-aware runners (``serial`` — the
    golden reference — or a ``virtual``/``proc`` cluster of ``ranks``
    ranks); they come from the scheduler policy, not the job spec, so
    job identities (cache keys) are backend-independent.
    """

    slice_iterations: int | None = None
    iterations_done: int = 0
    resume_from: str | None = None
    checkpoint_path: str | None = None
    backend: str = "serial"
    ranks: int = 1
    #: pick up the host's tuned profile for driver options (policy-level
    #: like ``backend`` — never part of the job's content address)
    tuned: bool = True
    #: warm-start hint: checkpoint path whose density seeds the first
    #: SCF iteration (scheduling metadata carried on the job, not the
    #: spec — cache keys stay seed-independent)
    seed_rho: str | None = None
    #: where runners persist converged-density artifacts for warm-start
    #: harvesting (from the scheduler policy; None = don't persist)
    artifact_dir: str | None = None


@dataclass(frozen=True)
class SliceOutcome:
    """What one slice produced."""

    status: str  #: "done" or "preempted"
    payload: dict[str, Any] | None = None
    checkpoint: str | None = None
    iterations: int = 0

    @property
    def done(self) -> bool:
        return self.status == "done"


Runner = Callable[[JobSpec, SliceContext], SliceOutcome]

RUNNERS: dict[str, Runner] = {}


def _runner(kind: str) -> Callable[[Runner], Runner]:
    def deco(fn: Runner) -> Runner:
        RUNNERS[kind] = fn
        return fn

    return deco


def run_slice(spec: JobSpec, ctx: SliceContext) -> SliceOutcome:
    """Execute one slice of ``spec`` (dispatch on the registered kind)."""
    try:
        runner = RUNNERS[spec.kind]
    except KeyError:
        raise ValueError(f"no runner registered for job kind {spec.kind!r}")
    return runner(spec, ctx)


# ---------------------------------------------------------------------------
def _build_scf_calc(
    spec: SCFJobSpec | BandsJobSpec,
    max_iterations: int,
    checkpoint: str | None,
    backend: str = "serial",
    ranks: int = 1,
    tuned: bool = True,
) -> Any:
    """DFTCalculation for a library-molecule spec (shared scf/bands)."""
    from repro.atoms.pseudo import AtomicConfiguration
    from repro.core import DFTCalculation, SCFOptions
    from repro.pipeline import MOLECULE_LIBRARY
    from repro.xc import LDA, PBE

    symbols, positions, *_ = MOLECULE_LIBRARY[spec.molecule]
    config = AtomicConfiguration(
        list(symbols), np.asarray(positions, dtype=float)
    )
    xc = {"lda": LDA, "pbe": PBE}[spec.xc]()
    options = SCFOptions(
        max_iterations=max_iterations,
        checkpoint_path=checkpoint,
        checkpoint_every=1,
        checkpoint_metadata=spec.to_dict() if checkpoint else None,
        backend=backend,
        nranks=max(1, int(ranks)),
        autotune=tuned,
    )
    return DFTCalculation(
        config,
        xc=xc,
        degree=spec.degree,
        cells_per_axis=spec.cells,
        padding=spec.padding,
        options=options,
    )


def _scf_payload(res: Any) -> dict[str, Any]:
    from repro.core import homo_lumo_gap

    return {
        "kind": "scf",
        "energy": float(res.energy),
        "free_energy": float(res.free_energy),
        "fermi_level": float(res.fermi_level),
        "gap_ha": float(homo_lumo_gap(res)),
        "converged": bool(res.converged),
        "n_iterations": int(res.n_iterations),
    }


@_runner("scf")
def _run_scf(spec: JobSpec, ctx: SliceContext) -> SliceOutcome:
    assert isinstance(spec, SCFJobSpec)
    sliced = (
        ctx.slice_iterations is not None
        and ctx.checkpoint_path is not None
        and ctx.slice_iterations < spec.max_scf
    )
    if sliced:
        assert ctx.slice_iterations is not None
        cap = min(spec.max_scf, ctx.iterations_done + ctx.slice_iterations)
    else:
        cap = spec.max_scf
    calc = _build_scf_calc(
        spec, cap, ctx.checkpoint_path if sliced else None,
        backend=ctx.backend, ranks=ctx.ranks, tuned=ctx.tuned,
    )
    with calc:  # tears down proc-backend worker fleets on exit
        res = calc.run(resume_from=ctx.resume_from)
    if res.converged or cap >= spec.max_scf:
        payload = _scf_payload(res)
        payload["sliced"] = bool(sliced)
        return SliceOutcome(
            "done", payload=payload, iterations=int(res.n_iterations)
        )
    return SliceOutcome(
        "preempted",
        checkpoint=ctx.checkpoint_path,
        iterations=int(res.n_iterations),
    )


@_runner("bands")
def _run_bands(spec: JobSpec, ctx: SliceContext) -> SliceOutcome:
    assert isinstance(spec, BandsJobSpec)
    from repro.core import band_structure, kpath

    calc = _build_scf_calc(
        spec, spec.max_scf, None,
        backend=ctx.backend, ranks=ctx.ranks, tuned=ctx.tuned,
    )
    with calc:
        res = calc.run()
    path = kpath(spec.k_start, spec.k_end, spec.n_kpoints)
    bands = band_structure(calc.mesh, res, path, nbands=spec.nbands)
    payload = _scf_payload(res)
    payload["kind"] = "bands"
    payload["kpath"] = [list(k) for k in path]
    payload["bands"] = [[float(e) for e in row] for row in bands]
    return SliceOutcome("done", payload=payload, iterations=res.n_iterations)


@_runner("invdft")
def _run_invdft(spec: JobSpec, ctx: SliceContext) -> SliceOutcome:
    assert isinstance(spec, InvDFTJobSpec)
    from repro.invdft import InverseDFT
    from repro.pipeline import qmb_reference
    from repro.xc.lda import LDA

    ref = qmb_reference(
        spec.molecule, cells_per_axis=spec.cells, degree=spec.degree
    )
    mesh = ref.calc.mesh
    inv = InverseDFT(
        mesh,
        ref.calc.config,
        ref.rho_qmb_spin,
        nstates=max(ref.n_alpha, ref.n_beta) + 3,
        minres_tol=spec.minres_tol,
        minres_maxiter=spec.minres_maxiter,
    )
    v0, _ = LDA().potential_and_energy(mesh, ref.rho_qmb_spin)
    out = inv.run(
        v0, eta=spec.eta, max_iterations=spec.max_iterations, tol=1e-12
    )
    payload = {
        "kind": "invdft",
        "e_fci": float(ref.e_fci),
        "e_ks_seed": float(ref.e_ks_seed),
        "density_error": float(out.density_error),
        "iterations": int(out.iterations),
        "converged": bool(out.converged),
        "v_xc_sha256": _array_sha256(out.v_xc),
    }
    return SliceOutcome("done", payload=payload, iterations=out.iterations)


@_runner("mlxc")
def _run_mlxc(spec: JobSpec, ctx: SliceContext) -> SliceOutcome:
    assert isinstance(spec, MLXCTrainJobSpec)
    from repro.ml.training import MLXCTrainer
    from repro.pipeline import build_training_set
    from repro.xc.mlxc import MLXC

    samples = build_training_set(
        tuple(spec.molecules),
        cells_per_axis=spec.cells,
        degree=spec.degree,
        invdft_iterations=spec.invdft_iterations,
    )
    functional = MLXC(seed=spec.seed)
    trainer = MLXCTrainer(samples, functional)
    history = trainer.train(epochs=spec.epochs, lr=spec.lr)
    payload = {
        "kind": "mlxc",
        "epochs": int(spec.epochs),
        "final_loss": float(history[-1]["total"]),
        "n_samples": len(samples),
        "theta_sha256": _array_sha256(functional.network.get_params()),
    }
    return SliceOutcome("done", payload=payload, iterations=spec.epochs)


@_runner("probe")
def _run_probe(spec: JobSpec, ctx: SliceContext) -> SliceOutcome:
    assert isinstance(spec, ProbeJobSpec)
    rng = np.random.default_rng(spec.seed)
    a = rng.standard_normal((spec.size, spec.size))
    for _ in range(spec.iters):
        a = np.tanh(a @ a / spec.size)
    payload = {
        "kind": "probe",
        "checksum": _array_sha256(a),
        "trace": float(np.trace(a)),
    }
    return SliceOutcome("done", payload=payload, iterations=spec.iters)


def _array_sha256(a: "np.ndarray[Any, Any]") -> str:
    return hashlib.sha256(np.ascontiguousarray(a).tobytes()).hexdigest()
