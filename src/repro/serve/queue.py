"""Priority queue and per-job state machine of the serve runtime.

Jobs move through an explicit, validated state machine::

    QUEUED ----> RUNNING ----> DONE
       |          |  ^  \\---> FAILED
       |          |  |   \\--> CANCELLED
       |          v  |
       |      PREEMPTED ----> CANCELLED | FAILED (deadline)
       |__________________________________
        \\--> CANCELLED | FAILED (deadline) | DONE (cache hit / coalesce)

Ordering is (priority, deadline, arrival): lower ``priority`` values run
first; within a priority class jobs with deadlines run
earliest-deadline-first ahead of deadline-free jobs, which run FIFO.  A
preempted job re-enters the queue with a *new* sequence number, so equal-
priority jobs round-robin at slice granularity instead of one long run
starving the rest.

The queue is lock-guarded and its mutations are bracketed by reprosan
write windows (:mod:`repro.tools.sanitize`), so a multi-worker serve run
under ``REPRO_SANITIZE=1`` proves no two threads ever mutate the heap or
a job record concurrently.
"""

from __future__ import annotations

import enum
import heapq
import itertools
import threading
from dataclasses import dataclass, field
from typing import Any

from repro.tools import sanitize as _sanitize

from .jobs import JobSpec

__all__ = ["Job", "JobQueue", "JobState", "JobStateError", "TRANSITIONS"]


class JobState(str, enum.Enum):
    """Lifecycle states of a served job."""

    QUEUED = "QUEUED"
    RUNNING = "RUNNING"
    PREEMPTED = "PREEMPTED"
    DONE = "DONE"
    FAILED = "FAILED"
    CANCELLED = "CANCELLED"

    @property
    def terminal(self) -> bool:
        return self in (JobState.DONE, JobState.FAILED, JobState.CANCELLED)


#: the allowed state transitions (QUEUED -> DONE covers cache hits and
#: duplicate coalescing, which complete a job without ever running it;
#: QUEUED/PREEMPTED -> FAILED covers deadline expiry at dispatch time)
TRANSITIONS: dict[JobState, frozenset[JobState]] = {
    JobState.QUEUED: frozenset(
        {JobState.RUNNING, JobState.DONE, JobState.FAILED, JobState.CANCELLED}
    ),
    JobState.RUNNING: frozenset(
        {JobState.DONE, JobState.FAILED, JobState.PREEMPTED, JobState.CANCELLED}
    ),
    JobState.PREEMPTED: frozenset(
        {JobState.RUNNING, JobState.FAILED, JobState.CANCELLED}
    ),
    JobState.DONE: frozenset(),
    JobState.FAILED: frozenset(),
    JobState.CANCELLED: frozenset(),
}


class JobStateError(RuntimeError):
    """An illegal state transition was attempted."""


@dataclass
class Job:
    """One tracked request: spec plus scheduling and lifecycle metadata.

    Timestamps are seconds on the owning server's monotonic clock
    (:class:`repro.obs.Stopwatch`); ``deadline`` is relative to
    submission and ``deadline_at`` the resolved absolute instant.
    """

    job_id: int
    spec: JobSpec
    priority: int = 0
    deadline: float | None = None
    state: JobState = JobState.QUEUED
    submitted_at: float = 0.0
    started_at: float | None = None
    finished_at: float | None = None
    slices: int = 0
    iterations_done: int = 0
    checkpoint: str | None = None
    result: dict[str, Any] | None = None
    error: str | None = None
    cache_hit: bool = False
    coalesced_into: int | None = None
    cancel_requested: bool = False
    #: warm-start hint: path of a checkpoint whose density seeds this
    #: job's first SCF iteration.  Scheduling metadata like ``priority``
    #: — it shapes the trajectory's length, never its fixed point, so it
    #: is deliberately NOT part of the spec (cache keys stay seed-free).
    seed_rho: str | None = None
    allocated_ranks: tuple[int, ...] = ()
    followers: list["Job"] = field(default_factory=list)

    @property
    def deadline_at(self) -> float | None:
        if self.deadline is None:
            return None
        return self.submitted_at + self.deadline

    @property
    def latency(self) -> float | None:
        """Submission-to-completion wall seconds (None while in flight)."""
        if self.finished_at is None:
            return None
        return self.finished_at - self.submitted_at

    def transition(self, new: JobState) -> None:
        """Move to ``new``, enforcing the transition table."""
        if new not in TRANSITIONS[self.state]:
            raise JobStateError(
                f"job {self.job_id} ({self.spec.kind}): illegal transition "
                f"{self.state.value} -> {new.value}"
            )
        self.state = new


class JobQueue:
    """Thread-safe priority heap over :class:`Job` records.

    Entries are (priority, deadline-or-inf, seq) keyed; ``push`` assigns a
    fresh monotonically increasing ``seq``, which is what makes requeued
    preempted jobs take their turn *behind* equal-priority peers.
    Cancelled or already-started jobs left in the heap are skipped lazily
    on pop, so cancellation never needs a heap search.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._heap: list[tuple[int, float, int, Job]] = []
        self._seq = itertools.count()
        self._san_tag = f"JobQueue:{id(self)}"

    def __len__(self) -> int:
        with self._lock:
            return sum(
                1
                for _, _, _, job in self._heap
                if job.state in (JobState.QUEUED, JobState.PREEMPTED)
            )

    def push(self, job: Job) -> None:
        """Enqueue a QUEUED or PREEMPTED job."""
        if job.state not in (JobState.QUEUED, JobState.PREEMPTED):
            raise JobStateError(
                f"cannot enqueue job {job.job_id} in state {job.state.value}"
            )
        key_deadline = (
            job.deadline_at if job.deadline_at is not None else float("inf")
        )
        with self._lock:
            san = _sanitize._STATE
            if san is not None:
                san.write_begin(self._san_tag)
            try:
                heapq.heappush(
                    self._heap,
                    (job.priority, key_deadline, next(self._seq), job),
                )
            finally:
                if san is not None:
                    san.write_end(self._san_tag)

    def pop_dispatchable(self, free_ranks: int) -> Job | None:
        """Highest-priority queued job fitting in ``free_ranks`` (first fit).

        Jobs wider than the free budget are skipped (they stay queued and
        keep their position); stale entries — cancelled jobs, jobs already
        dispatched through a fresher entry — are dropped.
        """
        with self._lock:
            san = _sanitize._STATE
            if san is not None:
                san.write_begin(self._san_tag)
            try:
                skipped: list[tuple[int, float, int, Job]] = []
                found: Job | None = None
                while self._heap:
                    entry = heapq.heappop(self._heap)
                    job = entry[3]
                    if job.state not in (JobState.QUEUED, JobState.PREEMPTED):
                        continue  # stale: cancelled / coalesced / running
                    ranks = getattr(job.spec, "ranks", 1)
                    if ranks <= free_ranks:
                        found = job
                        break
                    skipped.append(entry)
                for entry in skipped:
                    heapq.heappush(self._heap, entry)
                return found
            finally:
                if san is not None:
                    san.write_end(self._san_tag)
