"""repro.serve — async simulation-as-a-service runtime.

The serving layer of the reproduction (ROADMAP item 1): long-running
solver pipelines (SCF, band structures, inverse DFT, MLXC training)
become *jobs* — serializable, content-addressed request specs — flowing
through a priority queue, a preemptive rank-packing scheduler and a
disk-backed result cache:

* :mod:`repro.serve.jobs` — frozen spec dataclasses, canonical JSON,
  SHA-256 job keys;
* :mod:`repro.serve.queue` — the per-job state machine and the
  thread-safe priority heap (priority, earliest deadline, arrival);
* :mod:`repro.serve.scheduler` — rank budgets sized like a
  ``VirtualCluster``, time slices, deadline expiry;
* :mod:`repro.serve.cache` — self-verifying content-addressed results,
  atomic writes;
* :mod:`repro.serve.runners` — one slice of driver work per call,
  checkpointed at slice boundaries (preempted SCF resumes bit for bit);
* :mod:`repro.serve.server` — the asyncio front end and thread-pool
  workers, plus the synchronous :func:`run_jobs` facade;
* :mod:`repro.serve.loadgen` — deterministic request streams for the
  CLI and ``benchmarks/bench_serve.py``.

CLI: ``python -m repro serve --jobs 100 --workers 4``.
"""

from .cache import CacheStats, ResultCache
from .jobs import (
    JOB_TYPES,
    BandsJobSpec,
    InvDFTJobSpec,
    JobSpec,
    MLXCTrainJobSpec,
    ProbeJobSpec,
    SCFJobSpec,
    canonical_json,
    register_job_type,
    spec_from_dict,
)
from .loadgen import probe_load, scf_load
from .queue import Job, JobQueue, JobState, JobStateError
from .runners import RUNNERS, SliceContext, SliceOutcome, run_slice
from .scheduler import RankBudget, Scheduler, SchedulerPolicy
from .server import (
    ServeReport,
    ServeRequest,
    ServerStats,
    SimulationServer,
    run_jobs,
)

__all__ = [
    "JOB_TYPES",
    "RUNNERS",
    "BandsJobSpec",
    "CacheStats",
    "InvDFTJobSpec",
    "Job",
    "JobQueue",
    "JobSpec",
    "JobState",
    "JobStateError",
    "MLXCTrainJobSpec",
    "ProbeJobSpec",
    "RankBudget",
    "ResultCache",
    "SCFJobSpec",
    "Scheduler",
    "SchedulerPolicy",
    "ServeReport",
    "ServeRequest",
    "ServerStats",
    "SimulationServer",
    "SliceContext",
    "SliceOutcome",
    "canonical_json",
    "probe_load",
    "register_job_type",
    "run_jobs",
    "run_slice",
    "scf_load",
    "spec_from_dict",
]
