"""Preemptive scheduler: rank packing, time slices, deadlines.

The scheduler owns the admission decisions of the serve runtime:

* **Rank packing** — jobs declare how many virtual-cluster ranks they
  occupy (``spec.ranks``); the :class:`RankBudget` hands out explicit
  rank-id sets from a fixed pool (sized like an
  :class:`repro.hpc.cluster.VirtualCluster` — see
  :meth:`RankBudget.for_cluster`) and a job is dispatched only when its
  ranks fit, first-fit in queue order.  Narrow jobs may overtake a wide
  job that does not currently fit; the wide job keeps its queue position.

* **Time slicing** — with ``slice_iterations`` set, sliceable jobs
  (``scf``) run at most that many driver iterations per dispatch,
  checkpoint at the boundary (PR 4 v2 format) and re-enter the queue as
  ``PREEMPTED`` with a fresh sequence number, so equal-priority jobs
  round-robin at slice granularity.  The resumed trajectory is
  bit-for-bit the uninterrupted one — preemption is free of numerical
  cost by construction.

* **Deadlines** — a job whose deadline has passed when it surfaces for
  dispatch is failed (``deadline expired``) without occupying ranks;
  within a priority class, jobs with deadlines run
  earliest-deadline-first ahead of deadline-free jobs.
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass
from typing import Any

from .queue import Job, JobQueue, JobState
from .runners import SliceContext

__all__ = ["RankBudget", "Scheduler", "SchedulerPolicy"]


@dataclass(frozen=True)
class SchedulerPolicy:
    """Tunable scheduling knobs (frozen: policy is fixed per server)."""

    total_ranks: int = 8
    #: driver iterations per slice for sliceable kinds (None = no slicing)
    slice_iterations: int | None = None
    #: execution substrate for rank-aware runners: "serial" (golden
    #: reference), "virtual" (metered in-process ranks) or "proc"
    #: (real shared-memory rank processes).  Policy-level, not part of
    #: job specs, so cache keys stay backend-independent.
    backend: str = "serial"
    #: resolve the per-host tuned profile (:mod:`repro.tune`) for job
    #: options.  Like ``backend``, this is policy-level rather than part
    #: of the spec: tuning changes the schedule, never the result, so a
    #: job's content address (cache key) must not depend on it.
    #: ``REPRO_TUNE=0`` still disables pickup globally.
    tuned: bool = True
    #: directory where runners persist converged-density artifacts for
    #: warm-start harvesting (None = no artifacts).  Policy-level like
    #: ``backend``: artifact placement never enters a job's identity.
    artifact_dir: str | None = None

    def __post_init__(self) -> None:
        if self.total_ranks < 1:
            raise ValueError("total_ranks must be >= 1")
        if self.slice_iterations is not None and self.slice_iterations < 1:
            raise ValueError("slice_iterations must be >= 1 (or None)")
        if self.backend not in ("serial", "virtual", "proc"):
            raise ValueError(f"unknown backend {self.backend!r}")


class RankBudget:
    """Explicit rank-id allocator over a fixed pool of virtual ranks."""

    def __init__(self, total: int) -> None:
        if total < 1:
            raise ValueError("a rank budget needs at least one rank")
        self.total = int(total)
        self._free: set[int] = set(range(self.total))

    @classmethod
    def for_cluster(cls, cluster: Any) -> "RankBudget":
        """Budget sized to a ``VirtualCluster`` (its realized ``nranks``)."""
        return cls(int(cluster.nranks))

    @property
    def free(self) -> int:
        return len(self._free)

    @property
    def used(self) -> int:
        return self.total - len(self._free)

    def allocate(self, n: int) -> tuple[int, ...] | None:
        """Claim ``n`` rank ids (lowest-first), or None if they don't fit."""
        if n < 1:
            raise ValueError("cannot allocate fewer than 1 rank")
        if n > len(self._free):
            return None
        taken = tuple(sorted(self._free)[:n])
        self._free.difference_update(taken)
        return taken

    def release(self, ranks: tuple[int, ...]) -> None:
        """Return previously allocated rank ids to the pool."""
        for r in ranks:
            if r in self._free or not (0 <= r < self.total):
                raise ValueError(f"rank {r} was not allocated from this budget")
        self._free.update(ranks)


class Scheduler:
    """Queue + rank budget + slicing policy -> dispatch decisions."""

    def __init__(
        self,
        policy: SchedulerPolicy,
        checkpoint_dir: str | pathlib.Path,
    ) -> None:
        self.policy = policy
        self.queue = JobQueue()
        self.budget = RankBudget(policy.total_ranks)
        self.checkpoint_dir = pathlib.Path(checkpoint_dir)
        self.checkpoint_dir.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------
    def submit(self, job: Job) -> None:
        self.queue.push(job)

    def next_dispatch(self, now: float) -> Job | None:
        """Next dispatch decision, with any needed ranks allocated.

        Returns None when nothing is dispatchable.  Otherwise the
        returned job is either ``RUNNING`` (ranks allocated — run a
        slice) or ``FAILED`` with ``error = "deadline expired ..."``
        (its deadline passed while queued; no ranks were claimed and the
        caller must finalize it).
        """
        job = self.queue.pop_dispatchable(self.budget.free)
        if job is None:
            return None
        deadline_at = job.deadline_at
        if deadline_at is not None and now > deadline_at:
            job.transition(JobState.FAILED)
            job.error = (
                f"deadline expired {now - deadline_at:.3f}s before dispatch"
            )
            job.finished_at = now
            return job
        ranks = self.budget.allocate(getattr(job.spec, "ranks", 1))
        if ranks is None:  # raced against a concurrent dispatch
            self.queue.push(job)
            return None
        job.allocated_ranks = ranks
        job.transition(JobState.RUNNING)
        job.started_at = job.started_at if job.started_at is not None else now
        return job

    def slice_context(self, job: Job) -> SliceContext:
        """Execution context for the job's next slice."""
        sliceable = (
            job.spec.sliceable and self.policy.slice_iterations is not None
        )
        checkpoint = (
            str(self.checkpoint_dir / f"job-{job.job_id}.ckpt")
            if sliceable
            else None
        )
        return SliceContext(
            slice_iterations=self.policy.slice_iterations if sliceable else None,
            iterations_done=job.iterations_done,
            resume_from=job.checkpoint,
            checkpoint_path=checkpoint,
            backend=self.policy.backend,
            ranks=max(1, int(getattr(job.spec, "ranks", 1))),
            tuned=self.policy.tuned,
            seed_rho=job.seed_rho,
            artifact_dir=self.policy.artifact_dir,
        )

    def release(self, job: Job) -> None:
        """Return the job's ranks to the pool (idempotent per dispatch)."""
        if job.allocated_ranks:
            self.budget.release(job.allocated_ranks)
            job.allocated_ranks = ()

    def requeue_preempted(self, job: Job, checkpoint: str | None, iterations: int) -> None:
        """Record a slice boundary and put the job back in line."""
        job.checkpoint = checkpoint
        job.iterations_done = iterations
        self.queue.push(job)
