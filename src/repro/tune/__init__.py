"""repro.tune — self-tuning kernel schedules (ROADMAP item 4).

Measure which kernel *schedule* is fastest on this host (wavefunction
block ``B_f``, scatter engine, channel thread width, subspace block),
persist the choice as a checksummed per-host profile, and let
``SCFOptions.resolve`` fill unset knobs from it — explicit user values
always win, ``REPRO_TUNE=0`` kills the pickup, and every tuned
configuration is bit-identical in SCF energies to the fixed defaults.

Profile plumbing (stdlib-only) imports eagerly from
:mod:`repro.tune.profile`; the sweep machinery is lazy so that
``repro.core`` can import the profile loader without a circular import
through :mod:`repro.tune.sweep` (which itself builds meshes/operators).
"""

from __future__ import annotations

from .profile import (
    PROFILE_SCHEMA,
    TUNABLE_KNOBS,
    ProfileError,
    TunedProfile,
    blas_vendor,
    default_profile_path,
    fingerprint_digest,
    host_fingerprint,
    load_host_profile,
    load_profile,
    profile_dir,
    save_profile,
    tuning_enabled,
)

_SWEEP_NAMES = (
    "SweepConfig",
    "SweepResult",
    "autotune",
    "available_engines",
    "best_candidate",
    "pick_modeled",
    "run_sweep",
)

__all__ = [
    "PROFILE_SCHEMA",
    "TUNABLE_KNOBS",
    "ProfileError",
    "TunedProfile",
    "blas_vendor",
    "default_profile_path",
    "fingerprint_digest",
    "host_fingerprint",
    "load_host_profile",
    "load_profile",
    "profile_dir",
    "save_profile",
    "tuning_enabled",
    *_SWEEP_NAMES,
]


def __getattr__(name: str):
    if name in _SWEEP_NAMES:
        from . import sweep

        return getattr(sweep, name)
    raise AttributeError(f"module 'repro.tune' has no attribute {name!r}")
