"""Deterministic micro-probe sweep: measure, choose, persist the schedule.

The sweep times the four tunable schedule knobs on seeded synthetic
problems:

* **apply probe** — matrix-free ``KSOperator.apply`` over wavefunction
  blocks of each candidate ``B_f``, once per scatter engine ("csr" /
  "slices"), on every problem-size *bucket* (small/medium boxes).  This is
  the ChFES filter inner loop, the paper's dominant kernel.
* **subspace probe** — blocked Cholesky-Gram orthonormalization at each
  candidate subspace block size.
* **thread probe** — a fixed set of independent channel-sized GEMM tasks
  pushed through thread pools of each candidate width.

Every probe input is drawn from a seeded generator, so the work being
timed is identical run to run; the *measurement* callable is injectable
(``measure(fn) -> seconds``), which the tests use to replace wall-clock
readings with deterministic synthetic costs — the full sweep then becomes
a pure function of its config.  Real timing goes through the sanctioned
:class:`repro.obs.Stopwatch` primitive and the whole sweep is wrapped in
reproscope spans, so tuner wall time shows up in traces like any other
metered kernel.

Knob selection is a single shared objective — :func:`best_candidate`,
least seconds with first-listed tie-break — and the same objective drives
the *modeled* pick on the virtual cluster (:func:`pick_modeled`): node
count and ``ModelOptions.block_size`` minimizing modeled node-seconds via
:func:`repro.hpc.perfmodel.modeled_scf_seconds`.  One tuner, both real
and modeled hardware.

Bitwise safety: candidate block sizes are floored at 8 ≥ the largest
golden-library eigenstate count, so a tuned block never re-partitions the
library's subspace GEMMs (single-block equivalence); the scatter engines
replay identical accumulation order by construction and channel threading
does not reorder any reduction.  Tuning changes schedule, never math.
"""

from __future__ import annotations

import math
import os
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, Sequence

import numpy as np

from repro.obs import Stopwatch, trace_region

from .profile import TunedProfile, host_fingerprint, save_profile

__all__ = [
    "SweepConfig",
    "SweepResult",
    "autotune",
    "available_engines",
    "best_candidate",
    "pick_modeled",
    "run_sweep",
]

#: measurement callable: seconds to execute ``fn()`` (injectable in tests)
Measure = Callable[[Callable[[], Any]], float]


def available_engines() -> tuple[str, ...]:
    """Scatter engines usable on this host ("csr" needs scipy)."""
    try:
        import scipy.sparse  # noqa: F401  (availability probe)
    except ImportError:
        return ("slices",)
    return ("csr", "slices")


@dataclass(frozen=True)
class SweepConfig:
    """Candidate grids and probe sizes of one sweep."""

    seed: int = 0
    repeats: int = 3
    degree: int = 3
    #: wavefunction-block candidates.  Floored at 8: the golden molecule
    #: library tops out at 8 eigenstates, so any candidate keeps those
    #: subspaces single-block and the tuned dispatch bitwise-neutral.
    block_sizes: tuple[int, ...] = (8, 16, 32, 64)
    subspace_blocks: tuple[int, ...] = (8, 16, 32, 64)
    engines: tuple[str, ...] | None = None  #: None -> available_engines()
    thread_counts: tuple[int, ...] | None = None  #: None -> host-sized
    #: (name, cells_per_axis, nrhs) problem-size buckets; the headline
    #: knobs are chosen on the *last* (largest) bucket, all tables are kept
    buckets: tuple[tuple[str, int, int], ...] = (
        ("small", 3, 16),
        ("medium", 4, 48),
    )
    #: subspace probe: ndof x nvec seeded block
    subspace_ndof: int = 2048
    subspace_nvec: int = 48
    #: thread probe: per-task GEMM edge and task count
    thread_task_dim: int = 160

    def resolved_engines(self) -> tuple[str, ...]:
        return self.engines if self.engines is not None else available_engines()

    def resolved_thread_counts(self) -> tuple[int, ...]:
        if self.thread_counts is not None:
            return self.thread_counts
        cores = os.cpu_count() or 1
        counts = [1]
        while counts[-1] * 2 <= min(cores, 8):
            counts.append(counts[-1] * 2)
        return tuple(counts)


@dataclass(frozen=True)
class SweepResult:
    """Chosen knobs plus every measured table (JSON-serializable)."""

    knobs: dict[str, Any]
    tables: dict[str, Any]
    wall_seconds: float
    seed: int = 0


def best_candidate(
    candidates: Sequence[Any], cost: Callable[[Any], float]
) -> tuple[Any, float]:
    """Shared tuner objective: least cost; first-listed candidate wins ties.

    Strictly-less comparison makes the pick deterministic for injected
    constant costs, and the same function scores measured *and* modeled
    candidates — the "one objective" the tuner promises.
    """
    if not candidates:
        raise ValueError("best_candidate needs at least one candidate")
    chosen, chosen_cost = None, math.inf
    for cand in candidates:
        seconds = float(cost(cand))
        if seconds < chosen_cost:
            chosen, chosen_cost = cand, seconds
    return chosen, chosen_cost


def _measure_best_of(fn: Callable[[], Any], repeats: int) -> float:
    """Best-of-``repeats`` seconds for ``fn()`` (one warmup call first)."""
    fn()
    best = math.inf
    for _ in range(repeats):
        watch = Stopwatch()
        fn()
        best = min(best, watch.elapsed())
    return best


# ---------------------------------------------------------------------------
# probes
def _apply_probe(
    cfg: SweepConfig, bucket: tuple[str, int, int], measure: Measure
) -> dict[str, dict[str, float]]:
    """Seconds per (engine, B_f) for a full block-partitioned apply pass."""
    from repro.fem.assembly import KSOperator
    from repro.fem.mesh import uniform_mesh

    _, cells, nrhs = bucket
    rng = np.random.default_rng(cfg.seed)
    potential = None
    X = None
    table: dict[str, dict[str, float]] = {}
    for engine in cfg.resolved_engines():
        mesh = uniform_mesh(
            (8.0,) * 3, (cells,) * 3, cfg.degree,
            pbc=(True, True, True), scatter_engine=engine,
        )
        op = KSOperator(mesh)
        if potential is None:  # same seeded inputs for every engine
            potential = rng.standard_normal(mesh.nnodes)
            X = rng.standard_normal((op.n, nrhs))
        op.set_potential(potential)
        per_block: dict[str, float] = {}
        for bsize in cfg.block_sizes:

            def one_pass(b: int = bsize) -> None:
                for j in range(0, nrhs, b):
                    op.apply(X[:, j : j + b])

            per_block[str(bsize)] = measure(one_pass)
        table[engine] = per_block
    return table


def _subspace_probe(cfg: SweepConfig, measure: Measure) -> dict[str, float]:
    """Seconds per subspace block size for one blocked CholGS pass."""
    from repro.core.orthonorm import cholesky_orthonormalize

    rng = np.random.default_rng(cfg.seed + 1)
    X = rng.standard_normal((cfg.subspace_ndof, cfg.subspace_nvec))
    table: dict[str, float] = {}
    for bsize in cfg.subspace_blocks:
        table[str(bsize)] = measure(
            lambda b=bsize: cholesky_orthonormalize(X, block_size=b)
        )
    return table


def _thread_probe(cfg: SweepConfig, measure: Measure) -> dict[str, float]:
    """Seconds per pool width for a fixed set of channel-sized GEMM tasks."""
    counts = cfg.resolved_thread_counts()
    rng = np.random.default_rng(cfg.seed + 2)
    dim = cfg.thread_task_dim
    tasks = [rng.standard_normal((dim, dim)) for _ in range(max(counts))]
    table: dict[str, float] = {}
    for nt in counts:

        def fan_out(width: int = nt) -> None:
            with ThreadPoolExecutor(max_workers=width) as pool:
                list(pool.map(lambda a: a @ a, tasks))

        table[str(nt)] = measure(fan_out)
    return table


# ---------------------------------------------------------------------------
# the sweep
def run_sweep(
    config: SweepConfig | None = None, measure: Measure | None = None
) -> SweepResult:
    """Time every candidate, pick per-knob winners, return the tables.

    Deterministic for a deterministic ``measure``: probe inputs are
    seeded, candidate order is fixed, and ties break to the first-listed
    candidate.
    """
    cfg = config or SweepConfig()
    if measure is None:
        measure = lambda fn: _measure_best_of(fn, cfg.repeats)  # noqa: E731
    tables: dict[str, Any] = {"apply": {}, "subspace": {}, "threads": {}}
    with trace_region("Tune-sweep", seed=cfg.seed) as sweep_span:
        for bucket in cfg.buckets:
            with trace_region("Tune-apply", bucket=bucket[0]):
                tables["apply"][bucket[0]] = _apply_probe(cfg, bucket, measure)
        with trace_region("Tune-subspace"):
            tables["subspace"] = _subspace_probe(cfg, measure)
        with trace_region("Tune-threads"):
            tables["threads"] = _thread_probe(cfg, measure)

    headline = tables["apply"][cfg.buckets[-1][0]]
    engine_block = [
        (engine, bsize)
        for engine in cfg.resolved_engines()
        for bsize in cfg.block_sizes
    ]
    (engine, bsize), _ = best_candidate(
        engine_block, lambda eb: headline[eb[0]][str(eb[1])]
    )
    sub_block, _ = best_candidate(
        list(cfg.subspace_blocks), lambda b: tables["subspace"][str(b)]
    )
    threads, _ = best_candidate(
        list(cfg.resolved_thread_counts()), lambda n: tables["threads"][str(n)]
    )
    knobs = {
        "block_size": int(bsize),
        "scatter_engine": engine,
        "subspace_block_size": int(sub_block),
        "num_threads": int(threads),
    }
    return SweepResult(
        knobs=knobs,
        tables=tables,
        wall_seconds=float(sweep_span.duration),
        seed=cfg.seed,
    )


# ---------------------------------------------------------------------------
# modeled pick (virtual cluster)
def pick_modeled(
    workload: str = "DislocMgY",
    machine: Any = None,
    node_counts: tuple[int, ...] = (128, 256, 512, 1024, 2048),
    block_sizes: tuple[int, ...] = (100, 180, 250, 340, 500),
) -> dict[str, Any]:
    """Best (nodes, ``ModelOptions.block_size``) under the shared objective.

    The measured probes minimize seconds at fixed resources; on the
    modeled cluster the resource count is itself a knob, so the objective
    becomes node-seconds (cost-to-solution) — more nodes must buy a
    super-linear wall-time win to be picked.  Scored with the exact same
    :func:`best_candidate` the measured sweep uses.
    """
    from repro.hpc.machine import FRONTIER
    from repro.hpc.perfmodel import ModelOptions, modeled_scf_seconds
    from repro.hpc.runtime import PAPER_WORKLOADS

    mach = machine if machine is not None else FRONTIER
    wl = PAPER_WORKLOADS[workload]
    candidates = [(n, b) for n in node_counts for b in block_sizes]

    def node_seconds(cand: tuple[int, int]) -> float:
        nodes, bsize = cand
        seconds = modeled_scf_seconds(
            mach,
            nodes,
            M=wl.M,
            N=wl.N_per_instance,
            n_instances=wl.n_instances,
            npc=wl.npc,
            cheb_degree=wl.cheb_degree,
            complex_arith=wl.complex_arith,
            opts=ModelOptions(block_size=bsize),
        )
        return nodes * seconds

    (nodes, bsize), cost = best_candidate(candidates, node_seconds)
    return {
        "workload": wl.name,
        "machine": str(getattr(mach, "name", mach)),
        "nodes": int(nodes),
        "block_size": int(bsize),
        "node_seconds": float(cost),
        "seconds": float(cost / nodes),
    }


# ---------------------------------------------------------------------------
# one-call tuner
def autotune(
    config: SweepConfig | None = None,
    path: Any = None,
    measure: Measure | None = None,
    workload: str = "DislocMgY",
) -> tuple[TunedProfile, Any]:
    """Sweep, pick, persist: returns (profile, path it was written to)."""
    cfg = config or SweepConfig()
    result = run_sweep(cfg, measure)
    profile = TunedProfile(
        knobs=result.knobs,
        fingerprint=host_fingerprint(),
        seed=cfg.seed,
        sweep={
            "tables": result.tables,
            "wall_seconds": result.wall_seconds,
            "buckets": [list(b) for b in cfg.buckets],
        },
        model=pick_modeled(workload),
    )
    written = save_profile(profile, path)
    return profile, written
