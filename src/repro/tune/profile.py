"""Per-host tuned-kernel profiles: versioned, checksummed, self-verifying.

The autotuner (:mod:`repro.tune.sweep`) measures which kernel *schedule* —
wavefunction block ``B_f``, scatter engine, channel thread count, subspace
block — is fastest on this host and persists the choice as a JSON envelope
(schema ``repro-tune-profile/1``).  :meth:`repro.core.scf.SCFOptions.resolve`
fills any knob the user left unset from the profile; explicit user values
always win, and ``REPRO_TUNE=0`` disables the pickup entirely (the kill
switch is checked *before* any filesystem access, so a disabled run performs
no profile I/O at all).

The store borrows the discipline of the PR 7 result cache
(:mod:`repro.serve.cache`):

* **atomic writes** — temp file in the target directory + ``fsync`` +
  ``os.replace``, so a crashed tuner can never leave a torn profile;
* **self-verification** — the envelope carries a SHA-256 checksum over its
  canonical JSON body; a tampered or truncated file is rejected
  (:class:`ProfileError`) and treated as "no profile", never crashing the
  caller;
* **host fingerprinting** — cpu count + platform + BLAS vendor.  Profiles
  are stored under a fingerprint-digest filename and a loaded profile whose
  recorded fingerprint differs from the current host is ignored, so a
  profile baked on one machine cannot mis-schedule another.

Profiles only ever change the *schedule* (loop partitioning, engine choice,
thread fan-out), never the math: every knob a profile may set has a
bitwise-equivalence guarantee (see DESIGN.md sec 15), so tuned and untuned
runs produce identical SCF energies.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import platform
import tempfile
from dataclasses import dataclass, field
from typing import Any

import numpy as np

__all__ = [
    "PROFILE_SCHEMA",
    "TUNABLE_KNOBS",
    "ProfileError",
    "TunedProfile",
    "blas_vendor",
    "default_profile_path",
    "fingerprint_digest",
    "host_fingerprint",
    "load_host_profile",
    "load_profile",
    "profile_dir",
    "save_profile",
    "tuning_enabled",
]

PROFILE_SCHEMA = "repro-tune-profile/1"

#: the schedule knobs a profile may set, in canonical order.  Each one is
#: bitwise-neutral by construction (scatter engine, num_threads) or by the
#: sweep's candidate floor (block sizes; see DESIGN.md sec 15).
TUNABLE_KNOBS = (
    "block_size",
    "subspace_block_size",
    "scatter_engine",
    "num_threads",
)

_SCATTER_ENGINES = ("csr", "slices")


class ProfileError(ValueError):
    """A stored profile failed schema, checksum or knob validation."""


# ---------------------------------------------------------------------------
# host identity
def blas_vendor() -> str:
    """Short BLAS vendor string from numpy's build configuration."""
    try:
        info = np.show_config(mode="dicts")
    except TypeError:  # numpy < 1.26 has no dict mode
        info = None
    if isinstance(info, dict):
        dep = info.get("Build Dependencies", {}).get("blas", {})
        name = dep.get("name")
        if name:
            return str(name)
    return "unknown"


def host_fingerprint() -> dict[str, Any]:
    """Identity of the hardware/software the measured schedule is valid on."""
    return {
        "cpu_count": int(os.cpu_count() or 1),
        "platform": f"{platform.system()}-{platform.machine()}",
        "blas": blas_vendor(),
    }


def fingerprint_digest(fingerprint: dict[str, Any]) -> str:
    """Stable short digest of a fingerprint (the profile filename key)."""
    blob = json.dumps(fingerprint, sort_keys=True).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()[:12]


# ---------------------------------------------------------------------------
# the profile object
def _validate_knobs(knobs: dict[str, Any]) -> None:
    for name, value in knobs.items():
        if name not in TUNABLE_KNOBS:
            raise ProfileError(f"unknown tunable knob {name!r}")
        if name == "scatter_engine":
            if value not in _SCATTER_ENGINES:
                raise ProfileError(f"unknown scatter engine {value!r}")
        else:
            if not isinstance(value, int) or isinstance(value, bool) or value < 1:
                raise ProfileError(f"knob {name}={value!r} must be an int >= 1")


def _checksum(body: dict[str, Any]) -> str:
    clean = {k: v for k, v in body.items() if k != "checksum"}
    blob = json.dumps(clean, sort_keys=True).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()


@dataclass(frozen=True)
class TunedProfile:
    """One host's measured kernel schedule plus its provenance."""

    knobs: dict[str, Any]
    fingerprint: dict[str, Any]
    seed: int = 0
    #: measured sweep tables (per-bucket seconds per candidate) — kept for
    #: `repro info` reporting and the tuned>=default bench assertions
    sweep: dict[str, Any] = field(default_factory=dict)
    #: modeled picks on the virtual cluster (nodes, ModelOptions.block_size)
    model: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        _validate_knobs(self.knobs)

    def envelope(self) -> dict[str, Any]:
        """The checksummed on-disk JSON form."""
        body = {
            "schema": PROFILE_SCHEMA,
            "fingerprint": self.fingerprint,
            "knobs": self.knobs,
            "seed": int(self.seed),
            "sweep": self.sweep,
            "model": self.model,
        }
        body["checksum"] = _checksum(body)
        return body


# ---------------------------------------------------------------------------
# the store
def profile_dir() -> pathlib.Path:
    """Profile directory: ``REPRO_TUNE_DIR`` or ``~/.cache/repro/tune``."""
    env = os.environ.get("REPRO_TUNE_DIR", "").strip()
    if env:
        return pathlib.Path(env)
    return pathlib.Path.home() / ".cache" / "repro" / "tune"


def default_profile_path(fingerprint: dict[str, Any] | None = None) -> pathlib.Path:
    """Fingerprint-addressed path of this host's profile."""
    fp = fingerprint if fingerprint is not None else host_fingerprint()
    return profile_dir() / f"profile-{fingerprint_digest(fp)}.json"


def save_profile(
    profile: TunedProfile, path: str | pathlib.Path | None = None
) -> pathlib.Path:
    """Atomically persist ``profile`` (tmpfile + fsync + ``os.replace``)."""
    target = (
        pathlib.Path(path)
        if path is not None
        else default_profile_path(profile.fingerprint)
    )
    target.parent.mkdir(parents=True, exist_ok=True)
    payload = json.dumps(profile.envelope(), indent=2, sort_keys=True) + "\n"
    fd, tmp = tempfile.mkstemp(
        dir=target.parent, prefix=target.name, suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as f:
            f.write(payload)
            f.flush()
            os.fsync(f.fileno())
        os.replace(tmp, target)
    finally:
        if os.path.exists(tmp):
            os.unlink(tmp)
    return target


def load_profile(path: str | pathlib.Path) -> TunedProfile:
    """Load and verify one profile file; raise :class:`ProfileError` if bad."""
    p = pathlib.Path(path)
    try:
        envelope = json.loads(p.read_text(encoding="utf-8"))
    except OSError as err:
        raise ProfileError(f"unreadable profile {p}: {err}") from err
    except json.JSONDecodeError as err:
        raise ProfileError(f"corrupt profile {p}: {err}") from err
    if not isinstance(envelope, dict):
        raise ProfileError(f"profile {p} is not a JSON object")
    if envelope.get("schema") != PROFILE_SCHEMA:
        raise ProfileError(
            f"profile {p} has schema {envelope.get('schema')!r}, "
            f"expected {PROFILE_SCHEMA!r}"
        )
    if envelope.get("checksum") != _checksum(envelope):
        raise ProfileError(f"profile {p} failed its checksum (tampered?)")
    try:
        return TunedProfile(
            knobs=dict(envelope["knobs"]),
            fingerprint=dict(envelope["fingerprint"]),
            seed=int(envelope.get("seed", 0)),
            sweep=dict(envelope.get("sweep", {})),
            model=dict(envelope.get("model", {})),
        )
    except (KeyError, TypeError) as err:
        raise ProfileError(f"profile {p} has a malformed body: {err}") from err


# ---------------------------------------------------------------------------
# the default pickup
def tuning_enabled() -> bool:
    """``REPRO_TUNE=0`` (or false/off/no) disables profile pickup."""
    flag = os.environ.get("REPRO_TUNE", "").strip().lower()
    return flag not in ("0", "false", "off", "no")


def load_host_profile(
    path: str | pathlib.Path | None = None,
) -> TunedProfile | None:
    """This host's tuned profile, or None.

    None is returned — never an exception — when tuning is disabled, the
    file is absent, fails verification, or was recorded on a different
    host.  The kill switch is checked first: with ``REPRO_TUNE=0`` no
    path is computed and no file is touched.
    """
    if not tuning_enabled():
        return None
    target = pathlib.Path(path) if path is not None else default_profile_path()
    return _read_verified(target)


def _read_verified(target: pathlib.Path) -> TunedProfile | None:
    if not target.exists():
        return None
    try:
        prof = load_profile(target)
    except ProfileError:
        return None
    if prof.fingerprint != host_fingerprint():
        return None
    return prof
