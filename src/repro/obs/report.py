"""reproscope reporting: breakdown trees and model-vs-measured tables.

:func:`render_tree` turns an :class:`~repro.obs.sinks.InMemoryAggregator`
into the nested per-kernel wall-time breakdown printed by
``python -m repro scf <molecule> --profile`` — the measured analogue of the
paper's Table 3 rows, with per-path call counts, total/self seconds and
GFLOP counters where the kernels recorded them.

:func:`model_vs_measured` lines the same aggregate up against the modeled
:class:`~repro.hpc.perfmodel.KernelTime` rows (imported lazily; this module
stays stdlib-only until a model is actually passed in).
"""

from __future__ import annotations

from typing import Any, Sequence

from .kernels import paper_label
from .sinks import InMemoryAggregator

__all__ = ["kernel_totals", "model_vs_measured", "render_tree"]


def _format_counters(counters: dict[str, float]) -> str:
    flops = counters.get("flops_fp64", 0.0) + counters.get("flops_fp32", 0.0)
    parts: list[str] = []
    if flops:
        share = counters.get("flops_fp32", 0.0) / flops
        parts.append(f"{flops / 1e9:9.3f} GFLOP")
        if share:
            parts.append(f"{share:4.0%} fp32")
    if counters.get("halo_bytes"):
        parts.append(f"{counters['halo_bytes'] / 1e6:8.2f} MB halo")
    if counters.get("iterations"):
        parts.append(f"{counters['iterations']:5.0f} its")
    return "  ".join(parts)


def render_tree(
    agg: InMemoryAggregator,
    min_seconds: float = 0.0,
    title: str | None = None,
) -> str:
    """Render the aggregated span tree as an indented breakdown table.

    Rows are tree paths (indentation = depth); ``min_seconds`` prunes
    noise.  The per-SCF kernels keep the paper's labels, so the output
    reads like a nested Table 3.
    """
    nodes = [n for n in agg.nodes() if n.seconds >= min_seconds]
    lines: list[str] = []
    if title:
        lines.append(title)
    lines.append(f"{'region':<42} {'calls':>6} {'total s':>10} {'self s':>10}")
    for node in nodes:
        label = "  " * node.depth + node.name
        extra = _format_counters(node.counters)
        lines.append(
            f"{label:<42} {node.calls:>6d} {node.seconds:>10.4f} "
            f"{node.self_seconds:>10.4f}"
            + (f"   {extra}" if extra else "")
        )
    return "\n".join(lines)


def kernel_totals(agg: InMemoryAggregator) -> dict[str, float]:
    """Measured seconds per paper kernel label (``Others`` folds overhead).

    Structural spans (``SCF-iteration``, ``ChFES``, root wrappers) are
    skipped — only leaf kernel labels accumulate, so the totals partition
    the instrumented time without double counting.
    """
    totals: dict[str, float] = {}
    for node in agg.nodes():
        label = paper_label(node.name)
        if label is not None:
            totals[label] = totals.get(label, 0.0) + node.seconds
    return totals


def model_vs_measured(
    kernels: Sequence[Any],
    agg: InMemoryAggregator,
) -> list[dict[str, float | str]]:
    """Join modeled ``KernelTime`` rows with measured kernel seconds.

    ``kernels`` is a sequence of objects with ``name``/``seconds``/``flops``
    (duck-typed so :mod:`repro.hpc.perfmodel` need not be imported here).
    The paper's composite ``DH+EP+Others`` row is matched against the sum
    of the measured ``DH``, ``EP`` and ``Others`` buckets.  Returns one
    dict per modeled kernel: name, modeled seconds, measured seconds (0.0
    when the region never ran) and their ratio.
    """
    measured = kernel_totals(agg)
    rows: list[dict[str, float | str]] = []
    for k in kernels:
        name = str(k.name)
        if name == "DH+EP+Others":
            got = sum(measured.get(piece, 0.0) for piece in ("DH", "EP", "Others"))
        else:
            got = measured.get(name, 0.0)
        rows.append(
            {
                "kernel": name,
                "modeled_s": float(k.seconds),
                "measured_s": got,
                "measured_over_modeled": got / k.seconds if k.seconds > 0 else 0.0,
                "modeled_flops": float(getattr(k, "flops", 0.0)),
            }
        )
    return rows
