"""reproscope sinks: where finished span trees go.

Three built-ins, all subscribing to :meth:`repro.obs.tracer.Tracer.add_sink`
and receiving every finished *root* span:

* :class:`InMemoryAggregator` — folds spans into per-tree-path statistics
  (calls, total/self seconds, counters); the data behind ``--profile``
  breakdowns and the overhead tests.
* :class:`JsonlSink` — one JSON object per span (depth-first), append-only;
  cheap machine-readable metrics for scripts, round-trips losslessly via
  :func:`read_jsonl`.
* :class:`ChromeTraceSink` — Chrome trace-event JSON (complete ``"X"``
  events) loadable in ``chrome://tracing`` or https://ui.perfetto.dev.

Sinks are duck-typed: anything with ``on_root_span(span)`` (and optionally
``close()``) can subscribe.
"""

from __future__ import annotations

import io
import json
import os
import pathlib
import threading
from typing import Any, TextIO

from .tracer import Span

__all__ = [
    "AggregatedNode",
    "ChromeTraceSink",
    "InMemoryAggregator",
    "JsonlSink",
    "read_jsonl",
]


class AggregatedNode:
    """Accumulated statistics of every span sharing one tree path."""

    __slots__ = ("path", "calls", "seconds", "self_seconds", "counters")

    def __init__(self, path: tuple[str, ...]) -> None:
        self.path = path
        self.calls = 0
        self.seconds = 0.0
        self.self_seconds = 0.0
        self.counters: dict[str, float] = {}

    @property
    def name(self) -> str:
        return self.path[-1]

    @property
    def depth(self) -> int:
        return len(self.path) - 1

    def fold(self, span: Span) -> None:
        self.calls += 1
        self.seconds += span.duration
        self.self_seconds += span.self_seconds
        for k, v in span.counters.items():
            self.counters[k] = self.counters.get(k, 0.0) + v

    def as_dict(self) -> dict[str, Any]:
        return {
            "path": list(self.path),
            "calls": self.calls,
            "seconds": self.seconds,
            "self_seconds": self.self_seconds,
            "counters": dict(self.counters),
        }


class InMemoryAggregator:
    """Fold finished span trees into per-path totals.

    The aggregation key is the span's *path* (root name down to its own),
    so ``("SCF-iteration", "ChFES", "CF")`` stays distinct from a CF span
    recorded elsewhere — this is what keeps the printed breakdown
    hierarchical.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._nodes: dict[tuple[str, ...], AggregatedNode] = {}
        self.roots_seen = 0

    def on_root_span(self, root: Span) -> None:
        with self._lock:
            self.roots_seen += 1
            for _, span in root.walk():
                path = span.path()
                node = self._nodes.get(path)
                if node is None:
                    node = self._nodes[path] = AggregatedNode(path)
                node.fold(span)

    def nodes(self) -> list[AggregatedNode]:
        """All aggregated paths in stable (preorder-compatible) order."""
        with self._lock:
            return [self._nodes[p] for p in sorted(self._nodes)]

    def get(self, *path: str) -> AggregatedNode | None:
        with self._lock:
            return self._nodes.get(tuple(path))

    def total_seconds(self, name: str) -> float:
        """Summed duration of every aggregated path ending in ``name``."""
        with self._lock:
            return sum(
                n.seconds for n in self._nodes.values() if n.path[-1] == name
            )

    def counter_total(self, counter: str) -> float:
        """Sum of one counter over *leaf-attributed* spans (no double count).

        Counters accumulate on the span they were recorded on, so summing
        over all paths is already double-counting-free.
        """
        with self._lock:
            return sum(n.counters.get(counter, 0.0) for n in self._nodes.values())

    def clear(self) -> None:
        with self._lock:
            self._nodes.clear()
            self.roots_seen = 0

    def close(self) -> None:
        """Part of the sink protocol; nothing to flush."""


def _span_record(span: Span, epoch: float) -> dict[str, Any]:
    return {
        "name": span.name,
        "path": list(span.path()),
        "start": span.t_start - epoch,
        "dur": span.duration,
        "tid": span.thread_id,
        "attrs": dict(span.attrs),
        "counters": dict(span.counters),
    }


class JsonlSink:
    """Write one JSON line per span, depth-first per finished root.

    Accepts a path (opened for append) or any text stream.  Lines follow
    the stable schema of :func:`_span_record`; :func:`read_jsonl` parses
    them back.
    """

    def __init__(self, target: str | os.PathLike[str] | TextIO, epoch: float = 0.0) -> None:
        self._lock = threading.Lock()
        self.epoch = epoch
        if isinstance(target, (str, os.PathLike)):
            path = pathlib.Path(target)
            path.parent.mkdir(parents=True, exist_ok=True)
            self._stream: TextIO = path.open("a", encoding="utf-8")
            self._owns_stream = True
        else:
            self._stream = target
            self._owns_stream = False

    def on_root_span(self, root: Span) -> None:
        lines = [
            json.dumps(_span_record(span, self.epoch), sort_keys=True)
            for _, span in root.walk()
        ]
        with self._lock:
            self._stream.write("\n".join(lines) + "\n")

    def close(self) -> None:
        with self._lock:
            self._stream.flush()
            if self._owns_stream:
                self._stream.close()


def read_jsonl(source: str | os.PathLike[str] | TextIO) -> list[dict[str, Any]]:
    """Parse a :class:`JsonlSink` file back into span records."""
    if isinstance(source, (str, os.PathLike)):
        text = pathlib.Path(source).read_text(encoding="utf-8")
    else:
        text = source.read()
    return [json.loads(line) for line in text.splitlines() if line.strip()]


class ChromeTraceSink:
    """Export spans as Chrome trace events (Perfetto-compatible).

    Buffers complete-duration (``"ph": "X"``) events and writes a single
    ``{"traceEvents": [...]}`` JSON object on :meth:`close` — the format
    both ``chrome://tracing`` and https://ui.perfetto.dev load directly.
    Timestamps are microseconds relative to the tracer's epoch.
    """

    def __init__(
        self,
        target: str | os.PathLike[str] | TextIO,
        epoch: float = 0.0,
        process_name: str = "repro",
    ) -> None:
        self._lock = threading.Lock()
        self.epoch = epoch
        self._target = target
        self._events: list[dict[str, Any]] = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": os.getpid(),
                "tid": 0,
                "args": {"name": process_name},
            }
        ]

    def on_root_span(self, root: Span) -> None:
        events = []
        for _, span in root.walk():
            args: dict[str, Any] = dict(span.attrs)
            args.update(span.counters)
            events.append(
                {
                    "name": span.name,
                    "cat": "repro",
                    "ph": "X",
                    "ts": (span.t_start - self.epoch) * 1e6,
                    "dur": span.duration * 1e6,
                    "pid": os.getpid(),
                    "tid": span.thread_id,
                    "args": args,
                }
            )
        with self._lock:
            self._events.extend(events)

    @property
    def events(self) -> list[dict[str, Any]]:
        """Snapshot of the buffered trace events (metadata event included)."""
        with self._lock:
            return list(self._events)

    def trace_object(self) -> dict[str, Any]:
        """The complete Chrome-trace JSON object buffered so far."""
        with self._lock:
            return {"traceEvents": list(self._events), "displayTimeUnit": "ms"}

    def close(self) -> None:
        obj = self.trace_object()
        if isinstance(self._target, (str, os.PathLike)):
            path = pathlib.Path(self._target)
            path.parent.mkdir(parents=True, exist_ok=True)
            with path.open("w", encoding="utf-8") as fh:
                json.dump(obj, fh)
        elif isinstance(self._target, io.TextIOBase) or hasattr(self._target, "write"):
            json.dump(obj, self._target)
