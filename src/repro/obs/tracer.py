"""reproscope core: the thread-safe hierarchical span tracer.

A *span* is one timed region of the pipeline, named after the paper's
kernel labels where one exists (``EP``, ``DH``, ``CF``, ``CholGS-S``,
``RR-P``, ``DC``, ...; see :mod:`repro.obs.kernels`).  Spans nest: entering
``trace_region("CF")`` inside an open ``ChFES`` span records CF as a child,
so a full SCF run produces the per-iteration wall-time tree that Table 3
of the paper reports flat.

Design constraints, in order:

1. **Zero dependencies** — stdlib only, importable before numpy.
2. **Near-zero overhead when disabled** — ``REPRO_TRACE=0`` (or
   :func:`set_enabled`\\ ``(False)``) routes ``trace_region`` to a slotted
   no-op span that only reads the clock twice, so timing consumers (the
   SCF ``history`` seconds, :class:`~repro.hpc.flops.FlopLedger`) keep
   working with tracing off.
3. **Thread safety** — each thread keeps its own span stack
   (``threading.local``); finished *root* spans are handed to sinks under
   a lock.

All wall-clock reads in this repository are supposed to flow through this
module (or :class:`Stopwatch` below) — reprolint rule R009 enforces it.
"""

from __future__ import annotations

import contextlib
import functools
import os
import threading
import time
from typing import Any, Callable, ContextManager, Iterable, Iterator, TypeVar

from repro.tools import sanitize as _sanitize

__all__ = [
    "Span",
    "Stopwatch",
    "Tracer",
    "add_counter",
    "add_event",
    "attach_to",
    "current_span",
    "get_tracer",
    "is_enabled",
    "kernel_region",
    "set_enabled",
    "trace_region",
    "traced",
]

F = TypeVar("F", bound=Callable[..., Any])

#: the single wall-clock source of the repository
_clock = time.perf_counter


def _env_enabled() -> bool:
    return os.environ.get("REPRO_TRACE", "1").strip().lower() not in (
        "0", "false", "off", "no",
    )


_ENABLED: bool = _env_enabled()


def is_enabled() -> bool:
    """Whether span collection is active (``REPRO_TRACE`` kill switch)."""
    return _ENABLED


def set_enabled(on: bool) -> bool:
    """Flip span collection at runtime; returns the previous state."""
    global _ENABLED
    prev = _ENABLED
    _ENABLED = bool(on)
    return prev


class Stopwatch:
    """Minimal elapsed-seconds reader (the sanctioned raw-timing primitive).

    For code that wants a number, not a span — examples, benchmark
    harnesses, progress printing.  ``elapsed()`` is seconds since
    construction or the last :meth:`restart`.
    """

    __slots__ = ("_t0",)

    def __init__(self) -> None:
        self._t0 = _clock()

    def elapsed(self) -> float:
        return _clock() - self._t0

    def restart(self) -> float:
        """Reset the origin; returns the elapsed seconds up to the reset."""
        now = _clock()
        dt = now - self._t0
        self._t0 = now
        return dt


class Span:
    """One timed, attributed, counter-carrying region of the trace tree."""

    __slots__ = (
        "name", "attrs", "counters", "children", "parent",
        "t_start", "t_end", "thread_id", "events",
    )

    def __init__(self, name: str, attrs: dict[str, Any] | None = None) -> None:
        self.name = name
        self.attrs: dict[str, Any] = attrs or {}
        self.counters: dict[str, float] = {}
        self.events: list[tuple[str, float, dict[str, Any]]] = []
        self.children: list[Span] = []
        self.parent: Span | None = None
        self.t_start: float = 0.0
        self.t_end: float = 0.0
        self.thread_id: int = 0

    # -- timing --------------------------------------------------------------
    @property
    def duration(self) -> float:
        """Wall seconds from enter to exit (0.0 while still open)."""
        return max(self.t_end - self.t_start, 0.0)

    def elapsed(self) -> float:
        """Wall seconds since enter, usable while the span is still open."""
        return (_clock() if self.t_end == 0.0 else self.t_end) - self.t_start

    @property
    def self_seconds(self) -> float:
        """Duration minus the children's durations (exclusive time)."""
        return max(self.duration - sum(c.duration for c in self.children), 0.0)

    # -- counters ------------------------------------------------------------
    def add_counter(self, name: str, value: float) -> None:
        self.counters[name] = self.counters.get(name, 0.0) + float(value)

    # -- events --------------------------------------------------------------
    def add_event(self, name: str, **attrs: Any) -> None:
        """Record a timestamped point event (e.g. a retry) on this span."""
        self.events.append((name, _clock(), attrs))

    # -- traversal -----------------------------------------------------------
    def walk(self, depth: int = 0) -> Iterable[tuple[int, "Span"]]:
        """Yield ``(depth, span)`` depth-first, self first."""
        yield depth, self
        for c in self.children:
            yield from c.walk(depth + 1)

    def path(self) -> tuple[str, ...]:
        parts: list[str] = []
        s: Span | None = self
        while s is not None:
            parts.append(s.name)
            s = s.parent
        return tuple(reversed(parts))

    def find(self, name: str) -> "Span | None":
        """First descendant (or self) with the given name, depth-first."""
        for _, s in self.walk():
            if s.name == name:
                return s
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, {self.duration * 1e3:.3f} ms, "
            f"{len(self.children)} children)"
        )


class _NoopSpan:
    """Disabled-mode span: records only its own enter/exit clock reads.

    Keeps ``duration``/``elapsed()`` meaningful so callers that feed
    timing into results (SCF history, the FLOP ledger) do not need a
    tracing-enabled code path — everything else is a no-op.
    """

    __slots__ = ("t_start", "t_end")

    name = ""
    attrs: dict[str, Any] = {}
    counters: dict[str, float] = {}
    events: list[tuple[str, float, dict[str, Any]]] = []
    children: list[Span] = []

    def __init__(self) -> None:
        self.t_start = 0.0
        self.t_end = 0.0

    @property
    def duration(self) -> float:
        return max(self.t_end - self.t_start, 0.0)

    def elapsed(self) -> float:
        return (_clock() if self.t_end == 0.0 else self.t_end) - self.t_start

    def add_counter(self, name: str, value: float) -> None:
        pass

    def add_event(self, name: str, **attrs: Any) -> None:
        pass

    def __enter__(self) -> "_NoopSpan":
        self.t_start = _clock()
        return self

    def __exit__(self, *exc: object) -> None:
        self.t_end = _clock()


class Tracer:
    """Owner of the per-thread span stacks and the sink subscriptions."""

    def __init__(self) -> None:
        self._local = threading.local()
        self._lock = threading.Lock()
        self._sinks: list[Any] = []
        self._san_tag = f"Tracer.sinks:{id(self)}"
        #: perf_counter origin shared by every span (Chrome-trace timebase)
        self.epoch: float = _clock()

    # -- sinks ---------------------------------------------------------------
    def add_sink(self, sink: Any) -> Any:
        """Subscribe a sink; it receives each finished *root* span."""
        with self._lock:
            san = _sanitize._STATE
            if san is not None:
                san.write_begin(self._san_tag)
            try:
                self._sinks.append(sink)
            finally:
                if san is not None:
                    san.write_end(self._san_tag)
        return sink

    def remove_sink(self, sink: Any) -> None:
        with self._lock:
            san = _sanitize._STATE
            if san is not None:
                san.write_begin(self._san_tag)
            try:
                if sink in self._sinks:
                    self._sinks.remove(sink)
            finally:
                if san is not None:
                    san.write_end(self._san_tag)

    def sinks(self) -> list[Any]:
        with self._lock:
            return list(self._sinks)

    # -- span stack ----------------------------------------------------------
    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def current(self) -> Span | None:
        stack = self._stack()
        return stack[-1] if stack else None

    def push(self, span: Span) -> None:
        stack = self._stack()
        span.parent = stack[-1] if stack else None
        span.thread_id = threading.get_ident()
        if span.parent is not None:
            span.parent.children.append(span)
        stack.append(span)
        span.t_start = _clock()

    def pop(self, span: Span) -> None:
        span.t_end = _clock()
        stack = self._stack()
        # tolerate exceptions unwinding several spans at once
        while stack and stack[-1] is not span:
            dangling = stack.pop()
            if dangling.t_end == 0.0:
                dangling.t_end = span.t_end
        if stack:
            stack.pop()
        if span.parent is None:
            with self._lock:
                sinks = list(self._sinks)
            for sink in sinks:
                sink.on_root_span(span)


_TRACER = Tracer()


def get_tracer() -> Tracer:
    """The process-global tracer (sinks subscribe here)."""
    return _TRACER


def current_span() -> Span | None:
    """Innermost open span of the calling thread (None outside any span)."""
    return _TRACER.current() if _ENABLED else None


def add_counter(name: str, value: float) -> None:
    """Accumulate a metric (FLOPs, halo bytes, iterations) on the current span.

    No-op when tracing is disabled or no span is open — meters that also
    feed other consumers (e.g. :class:`~repro.hpc.cluster.TrafficReport`)
    stay authoritative regardless.
    """
    if _ENABLED:
        span = _TRACER.current()
        if span is not None:
            span.add_counter(name, value)


def add_event(name: str, **attrs: Any) -> None:
    """Record a point event (a retry, a recovery, a fallback) on the current
    span.  No-op when tracing is disabled or no span is open — resilience
    bookkeeping must never change the numerics of an untraced run.
    """
    if _ENABLED:
        span = _TRACER.current()
        if span is not None:
            span.add_event(name, **attrs)


class _Region:
    """Reusable ``with`` wrapper binding a span to the global tracer."""

    __slots__ = ("_span", "_ledger")

    def __init__(self, span: Span, ledger: Any = None) -> None:
        self._span = span
        self._ledger = ledger

    def __enter__(self) -> Span:
        _TRACER.push(self._span)
        return self._span

    def __exit__(self, *exc: object) -> None:
        _TRACER.pop(self._span)
        if self._ledger is not None:
            self._ledger.charge_seconds(self._span.name, self._span.duration)


class _NoopRegion:
    """Disabled-mode region that still charges ledgers with measured time."""

    __slots__ = ("_name", "_ledger", "_span")

    def __init__(self, name: str, ledger: Any) -> None:
        self._name = name
        self._ledger = ledger
        self._span = _NoopSpan()

    def __enter__(self) -> _NoopSpan:
        return self._span.__enter__()

    def __exit__(self, *exc: object) -> None:
        self._span.__exit__()
        if self._ledger is not None:
            self._ledger.charge_seconds(self._name, self._span.duration)


def trace_region(name: str, **attrs: Any) -> ContextManager[Any]:
    """Open a named span for the duration of a ``with`` block.

    ::

        with trace_region("ChFES", kpoint=k, spin=s) as span:
            ...
        seconds = span.duration

    Keyword arguments become span attributes (shown in the Chrome trace's
    ``args`` pane).  With tracing disabled the returned object still times
    the block but records nothing else.
    """
    if not _ENABLED:
        return _NoopSpan()
    return _Region(Span(name, attrs or None))


def kernel_region(name: str, ledger: Any = None, **attrs: Any) -> ContextManager[Any]:
    """`trace_region` that also charges a FLOP-ledger's wall time.

    The single construct behind every instrumented numerical kernel: one
    span in the trace tree *and* (when a ledger is threaded through, as the
    SCF kernels do) ``ledger.charge_seconds(name, duration)`` on exit —
    so the trace and the ledger agree by construction.  ``ledger`` is
    duck-typed on ``charge_seconds`` to keep this module dependency-free.
    """
    if not _ENABLED:
        return _NoopRegion(name, ledger) if ledger is not None else _NoopSpan()
    return _Region(Span(name, attrs or None), ledger)


@contextlib.contextmanager
def attach_to(parent: Any) -> Iterator[None]:
    """Adopt an open span from another thread as this thread's current span.

    Worker threads (e.g. the parallel (k, spin) ChFES channels) start with
    an empty span stack, so their ``trace_region`` spans would become
    detached roots.  Wrapping the worker body in
    ``with attach_to(parent_span):`` seeds the stack with the caller's open
    span instead: child spans parent correctly (``children.append`` is
    atomic under the GIL, so siblings from several workers interleave
    safely) and nothing is emitted to the sinks early, because the adopted
    span is closed by its owning thread, not here.

    The parent must outlive the block — join the workers before closing it.
    No-op when tracing is disabled or ``parent`` is ``None``/no-op.
    """
    if not _ENABLED or not isinstance(parent, Span):
        yield
        return
    stack = _TRACER._stack()
    stack.append(parent)
    try:
        yield
    finally:
        # unwind anything a worker left open (exception paths), then detach
        now = _clock()
        while stack and stack[-1] is not parent:
            dangling = stack.pop()
            if dangling.t_end == 0.0:
                dangling.t_end = now
        if stack:
            stack.pop()


def traced(name: str | None = None, **attrs: Any) -> Callable[[F], F]:
    """Decorator form of :func:`trace_region`.

    ::

        @traced("MLXC-train")
        def train(self, ...): ...

    Defaults to the function's ``__qualname__`` when no name is given.
    """

    def deco(fn: F) -> F:
        span_name = name or fn.__qualname__

        @functools.wraps(fn)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            if not _ENABLED:
                return fn(*args, **kwargs)
            with trace_region(span_name, **attrs):
                return fn(*args, **kwargs)

        return wrapper  # type: ignore[return-value]

    return deco
