"""reproscope — hierarchical tracing + metrics for the DFT-FE-MLXC pipeline.

The observability subsystem of this repository: a zero-dependency,
thread-safe span tracer whose span names follow the paper's Table 3 kernel
labels (:mod:`repro.obs.kernels`), counters for FLOPs / bytes moved /
halo-exchange volume fed by the HPC substrate, and pluggable sinks
(:mod:`repro.obs.sinks`) — an in-memory aggregator behind the CLI's
``--profile`` breakdowns, a JSONL metrics writer, and a Chrome-trace-event
exporter viewable in Perfetto.

Quick use::

    from repro.obs import trace_region, get_tracer, InMemoryAggregator

    agg = get_tracer().add_sink(InMemoryAggregator())
    with trace_region("SCF-iteration", iteration=1):
        with trace_region("CF"):
            ...
    print(render_tree(agg))

Kill switch: ``REPRO_TRACE=0`` in the environment (or
:func:`set_enabled`\\ ``(False)``) turns every span into a near-zero-cost
no-op while keeping ledger/history timing functional.
"""

from __future__ import annotations

from .kernels import (
    CHFES_CHILDREN,
    PAPER_KERNELS,
    SCF_ITERATION,
    TABLE3_ORDER,
    paper_label,
)
from .merge import fold_record, merge_jsonl, merge_records
from .report import kernel_totals, model_vs_measured, render_tree
from .sinks import (
    AggregatedNode,
    ChromeTraceSink,
    InMemoryAggregator,
    JsonlSink,
    read_jsonl,
)
from .tracer import (
    Span,
    Stopwatch,
    Tracer,
    add_counter,
    add_event,
    attach_to,
    current_span,
    get_tracer,
    is_enabled,
    kernel_region,
    set_enabled,
    trace_region,
    traced,
)

__all__ = [
    "AggregatedNode",
    "CHFES_CHILDREN",
    "ChromeTraceSink",
    "InMemoryAggregator",
    "JsonlSink",
    "PAPER_KERNELS",
    "SCF_ITERATION",
    "Span",
    "Stopwatch",
    "TABLE3_ORDER",
    "Tracer",
    "add_counter",
    "add_event",
    "attach_to",
    "current_span",
    "fold_record",
    "get_tracer",
    "is_enabled",
    "kernel_region",
    "kernel_totals",
    "merge_jsonl",
    "merge_records",
    "model_vs_measured",
    "paper_label",
    "read_jsonl",
    "render_tree",
    "set_enabled",
    "trace_region",
    "traced",
]
