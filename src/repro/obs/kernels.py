"""Span naming convention: the paper's Table 3 kernel labels.

Every instrumented region of the pipeline uses one of these names, so a
reproscope trace of a real SCF run lines up — label for label — with the
paper's per-SCF kernel breakdown *and* with the modeled
:class:`~repro.hpc.perfmodel.KernelTime` rows.  The convention:

========  ============================================================
label     region
========  ============================================================
EP        electrostatic (Poisson) solve for ``rho - rho_core``
DH        effective-potential / Hamiltonian update (XC evaluation)
ChFES     one Chebyshev-filtered eigensolve step (parent of CF/CholGS/RR)
Lanczos   spectral-bound estimation inside ChFES
CF        Chebyshev filter application (blocked cell-level GEMMs)
CholGS-S  blocked overlap ``X^H X``
CholGS-CI Cholesky factorization + triangular inverse
CholGS-O  subspace rotation ``X L^{-H}``
RR-P      projected Hamiltonian ``X^H (H X)``
RR-D      dense diagonalization
RR-SR     subspace rotation ``X Q``
DC        density computation from occupied orbitals
Occ       Fermi-level search / occupation update
Mix       Anderson/Kerker density mixing (paper's "Others")
========  ============================================================

Non-SCF workloads reuse the scheme with their own parents:
``invDFT-iteration`` (children ``ChFES``, ``MINRES``, ...), ``MLXC-train``
(children ``MLXC-epoch``), ``Poisson-CG`` under ``EP``.
"""

from __future__ import annotations

__all__ = [
    "CHFES_CHILDREN",
    "PAPER_KERNELS",
    "SCF_ITERATION",
    "TABLE3_ORDER",
    "paper_label",
]

#: root span of one SCF step (``iteration`` attribute carries the index)
SCF_ITERATION = "SCF-iteration"

#: children charged inside one ChFES eigensolve, in execution order
CHFES_CHILDREN = (
    "Lanczos", "CF", "CholGS-S", "CholGS-CI", "CholGS-O",
    "RR-P", "RR-D", "RR-SR",
)

#: the flat Table 3 row order of the paper
TABLE3_ORDER = (
    "CF", "CholGS-S", "CholGS-CI", "CholGS-O",
    "RR-P", "RR-D", "RR-SR", "DC", "EP", "DH", "Others",
)

#: every span name with a direct Table 3 counterpart
PAPER_KERNELS = frozenset(TABLE3_ORDER) - {"Others"}

#: measured span names folded into the paper's "Others"/overhead bucket
#: (CholGS-QR is the metered ill-conditioned-cold-start rescue, not a
#: Table 3 kernel)
_OTHERS = frozenset({"Occ", "Mix", "Lanczos", "Energy", "CholGS-QR"})


def paper_label(span_name: str) -> str | None:
    """Map a span name to its Table 3 label (None for structural spans).

    ``DH+EP+Others`` in the paper's tables is split here into the three
    measured pieces; callers comparing against the aggregate row should
    sum ``EP`` + ``DH`` + ``Others``.
    """
    if span_name in PAPER_KERNELS:
        return span_name
    if span_name in _OTHERS:
        return "Others"
    return None
