"""Cross-process span merge: fold JSONL span records from many processes.

The process-level rank backend (:mod:`repro.hpc.procranks`) times its work
in *worker* processes, where the parent's tracer does not exist.  Workers
publish per-phase timings through the shared timing slab; the parent turns
them into span *records* (the stable :class:`~repro.obs.sinks.JsonlSink`
schema) via ``ProcRankCluster.span_records()``.  This module merges any
number of record streams — JSONL files written by per-process sinks, or
in-memory record lists — into one :class:`~repro.obs.sinks.InMemoryAggregator`
so the ordinary reporting path (:func:`repro.obs.render_tree`,
``--profile``) shows a single tree spanning every process.

Self-time cannot be carried per record (a record stream has no object
identity linking a parent span instance to its children), so it is
recomputed structurally after folding: a path's self-seconds are its total
seconds minus the summed seconds of its direct child paths.
"""

from __future__ import annotations

import os
from typing import Any, Iterable, TextIO

from .sinks import AggregatedNode, InMemoryAggregator, read_jsonl

__all__ = ["fold_record", "merge_jsonl", "merge_records"]


def fold_record(agg: InMemoryAggregator, record: dict[str, Any]) -> AggregatedNode:
    """Fold one span record (JSONL schema) into the aggregator.

    Counts a call, accumulates duration and counters under the record's
    tree path.  ``self_seconds`` is left untouched — call
    :func:`merge_records` (which finishes with a structural self-time
    pass) rather than folding records one by one unless self-time is
    irrelevant to the consumer.
    """
    path = tuple(record["path"])
    with agg._lock:
        node = agg._nodes.get(path)
        if node is None:
            node = agg._nodes[path] = AggregatedNode(path)
        node.calls += 1
        node.seconds += float(record.get("dur", 0.0))
        for key, val in record.get("counters", {}).items():
            node.counters[key] = node.counters.get(key, 0.0) + float(val)
    return node


def _recompute_self_seconds(agg: InMemoryAggregator) -> None:
    """self = total − direct children, over the aggregated path forest."""
    with agg._lock:
        children_sum: dict[tuple[str, ...], float] = {}
        for path, node in agg._nodes.items():
            if len(path) > 1:
                parent = path[:-1]
                children_sum[parent] = children_sum.get(parent, 0.0) + node.seconds
        for path, node in agg._nodes.items():
            node.self_seconds = node.seconds - children_sum.get(path, 0.0)


def merge_records(
    records: Iterable[dict[str, Any]],
    agg: InMemoryAggregator | None = None,
) -> InMemoryAggregator:
    """Merge span records into ``agg`` (a fresh aggregator by default).

    Records may come from any number of processes; identical paths fold
    together exactly as same-process spans would in the live tracer.
    Returns the aggregator with self-seconds recomputed structurally.
    """
    if agg is None:
        agg = InMemoryAggregator()
    roots = 0
    for record in records:
        if len(record["path"]) == 1:
            roots += 1
        fold_record(agg, record)
    with agg._lock:
        agg.roots_seen += roots
    _recompute_self_seconds(agg)
    return agg


def merge_jsonl(
    *sources: str | os.PathLike[str] | TextIO,
    agg: InMemoryAggregator | None = None,
) -> InMemoryAggregator:
    """Merge one or more :class:`JsonlSink` files into a single aggregator.

    The cross-process entry point: pass the parent's trace file plus every
    worker's, get back one aggregator whose tree spans all of them.
    """
    if agg is None:
        agg = InMemoryAggregator()
    for source in sources:
        merge_records(read_jsonl(source), agg=agg)
    return agg
