"""Element data for the model world.

Valence electron counts follow the ONCV-pseudopotential conventions used in
the paper, chosen so the benchmark systems reproduce the paper's electron
counts exactly:

* DislocMgY: 6,015 Mg (2 e-) + 1 Y (11 e-) = 12,041 e-
* TwinDislocMgY(A): 36,013 Mg + 331 Y = 75,667 e-
* TwinDislocMgY(B/C): 73,447 Mg + 717 Y = 154,781 e-
* YbCd quasicrystal: 295 Yb (24 e-) + 1,648 Cd (20 e-) = 40,040 e-

``r_c`` is the softening radius of the local pseudopotential
(:mod:`repro.atoms.pseudo`) in Bohr.  These are model values tuned for smooth
fields on laptop-scale finite-element meshes, not production ONCV data.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Element:
    """Chemical element with the data needed by the model pseudopotential."""

    symbol: str
    Z: int  #: atomic number
    valence: int  #: valence electrons treated explicitly
    r_c: float  #: pseudopotential softening radius (Bohr)
    mass: float  #: atomic mass (amu), used only for reporting


_ELEMENTS = {
    "H": Element("H", 1, 1, 0.80, 1.008),
    "He": Element("He", 2, 2, 0.80, 4.003),
    "Li": Element("Li", 3, 3, 0.90, 6.941),
    "Be": Element("Be", 4, 4, 0.90, 9.012),
    "C": Element("C", 6, 4, 0.90, 12.011),
    "N": Element("N", 7, 5, 0.90, 14.007),
    "O": Element("O", 8, 6, 0.85, 15.999),
    "F": Element("F", 9, 7, 0.85, 18.998),
    "Ne": Element("Ne", 10, 8, 0.85, 20.180),
    "Mg": Element("Mg", 12, 2, 1.30, 24.305),
    "Si": Element("Si", 14, 4, 1.20, 28.086),
    "Y": Element("Y", 39, 11, 1.40, 88.906),
    "Cd": Element("Cd", 48, 20, 1.30, 112.411),
    "Yb": Element("Yb", 70, 24, 1.40, 173.045),
}


def get_element(symbol: str) -> Element:
    """Look up an :class:`Element` by chemical symbol (case-sensitive)."""
    try:
        return _ELEMENTS[symbol]
    except KeyError:
        raise KeyError(
            f"unknown element {symbol!r}; known: {sorted(_ELEMENTS)}"
        ) from None


def known_elements() -> tuple[str, ...]:
    """Return the tuple of supported element symbols."""
    return tuple(sorted(_ELEMENTS))


def valence_electron_count(symbols) -> int:
    """Total valence electrons for a sequence of element symbols."""
    return sum(get_element(s).valence for s in symbols)
