"""Soft local pseudopotentials and nuclear-nuclear interactions.

The paper uses ONCV pseudopotentials; this reproduction substitutes a smooth
local pseudopotential

.. math::

    v_{\\mathrm{loc}}(r) = -\\frac{Z_v\\,\\mathrm{erf}(r/r_c)}{r},

which is exactly the electrostatic potential of a normalized Gaussian charge
distribution of width :math:`r_c/\\sqrt{2}`.  Consequently the consistent
nucleus-nucleus repulsion between two such smeared cores is

.. math::

    E_{nn}^{(ij)} = \\frac{Z_i Z_j\\,\\mathrm{erf}\\!\\big(r_{ij}/
        \\sqrt{r_{c,i}^2 + r_{c,j}^2}\\big)}{r_{ij}}.

Everything downstream (DFT, FCI reference, invDFT) uses the *same* external
potential, so the exact-exchange-correlation extraction pipeline is
internally consistent, which is what the paper's methodology requires.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy.special import erf

from .elements import Element, get_element

__all__ = ["AtomicConfiguration", "local_potential", "nuclear_repulsion"]


def local_potential(r: np.ndarray, Z_valence: float, r_c: float) -> np.ndarray:
    """Evaluate ``-Z_v erf(r/r_c)/r`` with the correct ``r -> 0`` limit.

    Parameters
    ----------
    r:
        Radial distances (any shape), Bohr.
    Z_valence:
        Valence charge of the pseudo-core.
    r_c:
        Softening radius (Bohr).
    """
    r = np.asarray(r, dtype=float)
    out = np.empty_like(r)
    small = r < 1e-12
    # lim_{r->0} erf(r/rc)/r = 2/(sqrt(pi) rc)
    out[small] = -Z_valence * 2.0 / (np.sqrt(np.pi) * r_c)
    rs = r[~small]
    out[~small] = -Z_valence * erf(rs / r_c) / rs
    return out


@dataclass
class AtomicConfiguration:
    """A collection of atoms: symbols + Cartesian positions (Bohr).

    This is the single geometry object shared by the DFT solver, the FCI
    reference and the structure generators.
    """

    symbols: list[str]
    positions: np.ndarray  #: (natoms, 3) Cartesian coordinates, Bohr
    lattice: np.ndarray | None = None  #: (3, 3) rows = lattice vectors, or None
    pbc: tuple[bool, bool, bool] = (False, False, False)
    elements: list[Element] = field(init=False)

    def __post_init__(self) -> None:
        self.positions = np.atleast_2d(np.asarray(self.positions, dtype=float))
        if self.positions.shape != (len(self.symbols), 3):
            raise ValueError(
                f"positions shape {self.positions.shape} does not match "
                f"{len(self.symbols)} symbols"
            )
        if self.lattice is not None:
            self.lattice = np.asarray(self.lattice, dtype=float).reshape(3, 3)
        self.elements = [get_element(s) for s in self.symbols]

    @property
    def natoms(self) -> int:
        return len(self.symbols)

    @property
    def n_electrons(self) -> int:
        """Total number of valence electrons."""
        return sum(e.valence for e in self.elements)

    def external_potential(self, points: np.ndarray) -> np.ndarray:
        """Total local pseudopotential of all atoms at ``points`` (npts, 3).

        For periodic axes, the minimum-image convention plus one shell of
        periodic images is used (adequate for the short-ranged difference
        between the smeared and point potentials at laptop cell sizes is not
        needed since we sum the bare smeared potential over images within a
        cutoff of one lattice repeat).
        """
        points = np.atleast_2d(points)
        v = np.zeros(points.shape[0])
        images = self._image_shifts()
        for el, pos in zip(self.elements, self.positions):
            for shift in images:
                d = points - (pos + shift)
                r = np.sqrt(np.einsum("ij,ij->i", d, d))
                v += local_potential(r, el.valence, el.r_c)
        return v

    def _image_shifts(self) -> np.ndarray:
        """Lattice translation vectors for periodic image sums (1 shell)."""
        if self.lattice is None or not any(self.pbc):
            return np.zeros((1, 3))
        ranges = [(-1, 0, 1) if p else (0,) for p in self.pbc]
        shifts = []
        for i in ranges[0]:
            for j in ranges[1]:
                for k in ranges[2]:
                    shifts.append(
                        i * self.lattice[0] + j * self.lattice[1] + k * self.lattice[2]
                    )
        return np.asarray(shifts)

    def nuclear_repulsion(self) -> float:
        """Consistent smeared-core repulsion energy (Hartree)."""
        return nuclear_repulsion(self)


def nuclear_repulsion(config: AtomicConfiguration) -> float:
    """Pairwise Gaussian-consistent core-core repulsion for ``config``.

    Periodic systems include one shell of periodic images with a factor 1/2
    on image pairs (each image interaction shared between two cells).
    """
    n = config.natoms
    Z = np.array([e.valence for e in config.elements], dtype=float)
    rc2 = np.array([e.r_c**2 for e in config.elements])
    pos = config.positions
    energy = 0.0
    images = config._image_shifts()
    central = np.all(images == 0.0, axis=1)
    for s_idx, shift in enumerate(images):
        is_central = bool(central[s_idx])
        for i in range(n):
            d = pos + shift - pos[i]
            r = np.sqrt(np.einsum("ij,ij->i", d, d))
            sigma = np.sqrt(rc2 + rc2[i])
            with np.errstate(divide="ignore", invalid="ignore"):
                e_pair = Z[i] * Z * erf(r / sigma) / r
            e_pair = np.where(r < 1e-12, 0.0, e_pair)
            if is_central:
                energy += 0.5 * float(np.sum(e_pair[np.arange(n) != i]))
            else:
                energy += 0.5 * float(np.sum(e_pair))
    return energy
