"""XYZ read/write for atomic configurations (interchange substrate).

Extended-XYZ-lite: the comment line optionally carries
``Lattice="ax 0 0 0 by 0 0 0 cz" pbc="T F T"`` for orthorhombic periodic
cells, which is all the mesh supports.  Positions are stored in Bohr
(column comment notes the unit) so round-trips are exact.
"""

from __future__ import annotations

import re

import numpy as np

from .pseudo import AtomicConfiguration

__all__ = ["write_xyz", "read_xyz"]


def write_xyz(path: str, config: AtomicConfiguration, comment: str = "") -> None:
    """Write a configuration as (extended) XYZ with Bohr coordinates."""
    lines = [str(config.natoms)]
    meta = [comment.strip(), "units=Bohr"]
    if config.lattice is not None:
        d = np.diag(config.lattice)
        meta.append(
            f'Lattice="{d[0]:.10f} 0 0 0 {d[1]:.10f} 0 0 0 {d[2]:.10f}"'
        )
        meta.append(
            'pbc="' + " ".join("T" if p else "F" for p in config.pbc) + '"'
        )
    lines.append(" ".join(m for m in meta if m))
    for s, p in zip(config.symbols, config.positions):
        lines.append(f"{s:<3} {p[0]:.12f} {p[1]:.12f} {p[2]:.12f}")
    with open(path, "w") as f:
        f.write("\n".join(lines) + "\n")


def read_xyz(path: str) -> AtomicConfiguration:
    """Read a configuration written by :func:`write_xyz`."""
    with open(path) as f:
        raw = [ln.rstrip("\n") for ln in f]
    if len(raw) < 2:
        raise ValueError("not an XYZ file")
    n = int(raw[0].strip())
    comment = raw[1]
    symbols, positions = [], []
    for ln in raw[2 : 2 + n]:
        parts = ln.split()
        symbols.append(parts[0])
        positions.append([float(x) for x in parts[1:4]])
    lattice = None
    pbc = (False, False, False)
    m = re.search(r'Lattice="([^"]+)"', comment)
    if m:
        vals = [float(x) for x in m.group(1).split()]
        lattice = np.array(vals).reshape(3, 3)
        mp = re.search(r'pbc="([^"]+)"', comment)
        if mp:
            pbc = tuple(tok.upper().startswith("T") for tok in mp.group(1).split())
        else:
            pbc = (True, True, True)
    return AtomicConfiguration(
        symbols, np.asarray(positions), lattice=lattice, pbc=pbc
    )
