"""Separable nonlocal pseudopotential projectors (Kleinman-Bylander form).

The paper's ONCV pseudopotentials are *nonlocal*: besides the local part,
each atom carries separable projector channels

.. math::

    V_{nl} = \\sum_{a,p} D_{a,p} \\, |\\beta_{a,p}\\rangle\\langle\\beta_{a,p}|.

This module provides model Gaussian s-channel projectors (one per atom,
element-parameterized) and the machinery to evaluate them on a mesh.  The
Kohn-Sham operator applies the nonlocal term as rank-1 updates on the
wavefunction block — two skinny GEMMs, the same structure as the real
codes' projector kernels.

Model parameters are chosen so the nonlocal correction is a perturbation on
the local model world (it shifts eigenvalues by tens of mHa), exercising
the full code path without re-tuning the element library.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .pseudo import AtomicConfiguration

__all__ = ["NonlocalProjector", "model_projectors", "projector_matrix"]

#: model s-channel strengths (Ha) per element; positive = repulsive core
_MODEL_STRENGTH = {
    "H": 0.0,  # H needs no core repulsion
    "He": 0.15,
    "Li": 0.25,
    "Be": 0.25,
    "C": 0.30,
    "N": 0.30,
    "O": 0.30,
    "F": 0.30,
    "Ne": 0.30,
    "Mg": 0.35,
    "Si": 0.35,
    "Y": 0.45,
    "Cd": 0.45,
    "Yb": 0.50,
}


@dataclass(frozen=True)
class NonlocalProjector:
    """One separable channel: ``D |beta><beta|`` with a Gaussian beta."""

    center: tuple[float, float, float]
    coefficient: float  #: D (Ha)
    sigma: float  #: Gaussian width (Bohr)

    def evaluate(self, points: np.ndarray) -> np.ndarray:
        """L2-normalized Gaussian projector values at ``points``."""
        d = np.asarray(points) - np.asarray(self.center)
        r2 = np.einsum("ij,ij->i", d, d)
        norm = (np.pi * self.sigma**2) ** (-0.75)
        return norm * np.exp(-r2 / (2.0 * self.sigma**2))


def model_projectors(
    config: AtomicConfiguration, strength_scale: float = 1.0
) -> list[NonlocalProjector]:
    """One model s-channel projector per atom (periodic images included)."""
    out = []
    shifts = config._image_shifts()
    for el, pos in zip(config.elements, config.positions):
        D = strength_scale * _MODEL_STRENGTH.get(el.symbol, 0.3)
        if D == 0.0:
            continue
        for s in shifts:
            out.append(
                NonlocalProjector(
                    center=tuple(pos + s), coefficient=D, sigma=0.9 * el.r_c
                )
            )
    return out


def projector_matrix(mesh, projectors: list[NonlocalProjector]):
    """Löwdin-basis projector block ``B`` (ndof, nproj) and coefficients.

    In the nodal basis, ``<phi_I | beta> = beta(x_I) * m_I`` (GLL
    quadrature); in the Löwdin basis the row scaling becomes ``sqrt(m_I)``.
    The nonlocal apply is then ``V_nl X = B (D * (B^H X))``.
    """
    if not projectors:
        return np.zeros((mesh.ndof, 0)), np.zeros(0)
    sq = np.sqrt(mesh.mass_diag[mesh.free])
    pts = mesh.node_coords[mesh.free]
    B = np.stack([p.evaluate(pts) for p in projectors], axis=1)
    B *= sq[:, None]
    D = np.array([p.coefficient for p in projectors])
    return B, D
