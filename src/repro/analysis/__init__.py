"""Science analysis: nanoparticle stability, defect energetics."""

from .defect_energetics import (
    BOHR_TO_NM,
    HARTREE_TO_MEV,
    energy_per_dislocation_length,
    formation_energy,
    interaction_energy,
)
from .stability import SizeScalingFit, crossover_size, fit_size_scaling

__all__ = [
    "BOHR_TO_NM",
    "HARTREE_TO_MEV",
    "SizeScalingFit",
    "crossover_size",
    "energy_per_dislocation_length",
    "fit_size_scaling",
    "formation_energy",
    "interaction_energy",
]
