"""Defect energetics: formation and interaction energies.

Implements the energy bookkeeping of the paper's Mg-Y application: the
interaction energy of two defects (e.g. a <c+a> dislocation and a twin
boundary, or a dislocation and a solute) from four supercell total
energies,

.. math::

    E_{int} = E_{d_1 + d_2} - E_{d_1} - E_{d_2} + E_{bulk},

and per-length dislocation energy differences such as the paper's
``Delta E^{I-II}`` (meV per nm of dislocation line).
"""

from __future__ import annotations

__all__ = [
    "interaction_energy",
    "formation_energy",
    "energy_per_dislocation_length",
    "HARTREE_TO_MEV",
    "BOHR_TO_NM",
]

HARTREE_TO_MEV = 27_211.386
BOHR_TO_NM = 0.0529177


def formation_energy(e_defected: float, e_bulk: float) -> float:
    """Defect formation energy from matched supercells (Ha)."""
    return e_defected - e_bulk


def interaction_energy(
    e_both: float, e_first: float, e_second: float, e_bulk: float
) -> float:
    """Interaction energy of two defects from four matched supercells (Ha).

    Negative values mean attraction (e.g. solute segregation to the
    dislocation core, the mechanism behind ductility enhancement in Mg-Y).
    """
    return e_both - e_first - e_second + e_bulk


def energy_per_dislocation_length(
    e_disloc: float, e_ref: float, line_length_bohr: float
) -> float:
    """Dislocation energy per unit line length, in meV / nm.

    This is the unit of the paper's pyramidal I-II energy difference
    (Delta E^{I-II} = 16 meV/nm).
    """
    if line_length_bohr <= 0:
        raise ValueError("line length must be positive")
    d_ha = e_disloc - e_ref
    return d_ha * HARTREE_TO_MEV / (line_length_bohr * BOHR_TO_NM)
