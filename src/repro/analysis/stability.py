"""Nanoparticle thermodynamic stability: bulk vs surface energy competition.

The paper's quasicrystal application asks when an aperiodic nanoparticle is
thermodynamically preferred over a crystalline phase of the same
composition: total energies of particles with N atoms decompose as

.. math::

    E(N) = e_{bulk} N + e_{surf} N^{2/3},

so two phases with different (e_bulk, e_surf) pairs cross at a critical
size.  This module provides the least-squares decomposition and the
crossover solver.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["SizeScalingFit", "fit_size_scaling", "crossover_size"]


@dataclass
class SizeScalingFit:
    """E(N) = e_bulk * N + e_surf * N^(2/3) least-squares fit."""

    e_bulk: float  #: bulk energy per atom (Ha)
    e_surf: float  #: surface energy coefficient (Ha per N^(2/3))
    residual: float  #: RMS fit residual (Ha)

    def energy(self, n: np.ndarray | float) -> np.ndarray | float:
        n = np.asarray(n, dtype=float)
        return self.e_bulk * n + self.e_surf * n ** (2.0 / 3.0)

    def energy_per_atom(self, n: np.ndarray | float):
        n = np.asarray(n, dtype=float)
        return self.e_bulk + self.e_surf * n ** (-1.0 / 3.0)


def fit_size_scaling(natoms: np.ndarray, energies: np.ndarray) -> SizeScalingFit:
    """Fit total energies of particles of ``natoms`` atoms to the scaling law."""
    n = np.asarray(natoms, dtype=float)
    e = np.asarray(energies, dtype=float)
    if n.size < 2:
        raise ValueError("need at least two particle sizes")
    A = np.stack([n, n ** (2.0 / 3.0)], axis=1)
    coef, *_ = np.linalg.lstsq(A, e, rcond=None)
    resid = float(np.sqrt(np.mean((A @ coef - e) ** 2)))
    return SizeScalingFit(e_bulk=float(coef[0]), e_surf=float(coef[1]), residual=resid)


def crossover_size(fit_a: SizeScalingFit, fit_b: SizeScalingFit) -> float:
    """Particle size N* where phase a and phase b total energies cross.

    Solves ``(e_bulk_a - e_bulk_b) N + (e_surf_a - e_surf_b) N^(2/3) = 0``;
    returns inf if the phases never cross for N > 1 (one phase dominates).
    """
    db = fit_a.e_bulk - fit_b.e_bulk
    ds = fit_a.e_surf - fit_b.e_surf
    if db == 0.0:
        return np.inf
    x = -ds / db  # N^(1/3)
    if x <= 1.0:
        return np.inf if x <= 0 else max(x**3, 1.0)
    return float(x**3)
