"""Level-2 functional: PBE generalized gradient approximation.

Implements the Perdew-Burke-Ernzerhof exchange and correlation with full
spin polarization, written dtype-agnostically for the complex-step
derivative engine.  At zero density gradient PBE reduces exactly to
LDA-PW92 (verified in the tests), which is the property the paper's Level-2
classification relies on.
"""

from __future__ import annotations

import numpy as np

from .base import RHO_FLOOR, XCFunctional
from .lda import pw92_ec

__all__ = ["PBE"]

_CX = -(3.0 / 4.0) * (3.0 / np.pi) ** (1.0 / 3.0)
_MU = 0.2195149727645171
_KAPPA = 0.804
_BETA = 0.06672455060314922
_GAMMA = (1.0 - np.log(2.0)) / np.pi**2


def _pbe_exchange_unpol(rho, sigma):
    """Unpolarized PBE exchange energy density at (rho, |grad rho|^2)."""
    kf2 = (3.0 * np.pi**2 * rho) ** (2.0 / 3.0)
    s2 = sigma / (4.0 * kf2 * rho * rho)
    fx = 1.0 + _KAPPA - _KAPPA / (1.0 + (_MU / _KAPPA) * s2)
    return _CX * rho ** (4.0 / 3.0) * fx


class PBE(XCFunctional):
    """Perdew-Burke-Ernzerhof GGA (exchange + correlation), spin-polarized."""

    name = "GGA-PBE"
    needs_gradient = True
    level = 2

    def exc_density(self, rho_up, rho_dn, sigma_uu=None, sigma_ud=None, sigma_dd=None):
        rho = rho_up + rho_dn
        mask = np.real(rho) > RHO_FLOOR
        rho_s = np.where(mask, rho, RHO_FLOOR)
        up_s = np.where(np.real(rho_up) > 0.5 * RHO_FLOOR, rho_up, 0.5 * RHO_FLOOR)
        dn_s = np.where(np.real(rho_dn) > 0.5 * RHO_FLOOR, rho_dn, 0.5 * RHO_FLOOR)

        # --- exchange by the spin-scaling relation -----------------------
        ex = 0.5 * _pbe_exchange_unpol(2.0 * up_s, 4.0 * sigma_uu)
        ex = ex + 0.5 * _pbe_exchange_unpol(2.0 * dn_s, 4.0 * sigma_dd)

        # --- correlation --------------------------------------------------
        zeta = (rho_up - rho_dn) / rho_s
        rs = (3.0 / (4.0 * np.pi * rho_s)) ** (1.0 / 3.0)
        ec_lda = pw92_ec(rs, zeta)

        phi = 0.5 * ((1.0 + zeta) ** (2.0 / 3.0) + (1.0 - zeta) ** (2.0 / 3.0))
        kf = (3.0 * np.pi**2 * rho_s) ** (1.0 / 3.0)
        ks2 = 4.0 * kf / np.pi
        sigma_tot = sigma_uu + 2.0 * sigma_ud + sigma_dd
        t2 = sigma_tot / (4.0 * phi * phi * ks2 * rho_s * rho_s)

        expo = np.exp(-ec_lda / (_GAMMA * phi**3))
        A = (_BETA / _GAMMA) / np.where(np.abs(expo - 1.0) > 1e-30, expo - 1.0, 1e-30)
        At2 = A * t2
        num = 1.0 + At2
        den = 1.0 + At2 + At2 * At2
        H = _GAMMA * phi**3 * np.log(1.0 + (_BETA / _GAMMA) * t2 * num / den)
        ec = rho_s * (ec_lda + H)
        return np.where(mask, ex + ec, 0.0)
