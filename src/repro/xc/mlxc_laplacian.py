"""MLXC-L: a more expressive MLXC with a density-Laplacian descriptor.

The paper's Implications section calls for "more expressive and
sophisticated forms for MLXC" as the route from 7 toward 1 mHa/atom.  This
module implements one such form: Eq. 3 extended with the reduced Laplacian

.. math::

    q(r) = \\frac{\\nabla^2\\rho}{4\\,(3\\pi^2)^{2/3}\\,\\rho^{5/3}},

a standard fourth semilocal descriptor (the leading new ingredient of
Laplacian-level meta-GGAs).  The functional stays a pure density functional,
so deployment reuses the SCF unchanged; the XC potential gains the
second-order Euler-Lagrange term

.. math::

    v_{xc} \\mathrel{+}= \\nabla^2\\big(\\partial e/\\partial(\\nabla^2\\rho)\\big),

evaluated with the mesh's recovery operators (Laplacian = divergence of the
recovered gradient).  Derivatives with respect to all seven pointwise inputs
(two spin densities, three gradient contractions, two spin Laplacians) come
from the same complex-step engine as the base class.

Training is intentionally out of scope here (the shipped MLXC remains the
paper-architecture model); the trainer extension follows the identical
adjoint pattern — ``Mesh3D.divergence_adjoint`` composes to a Laplacian
adjoint — and is left as the documented next step, mirroring the paper's
own future-work framing.
"""

from __future__ import annotations

import numpy as np

from repro.constants import RHO_FLOOR
from repro.ml.descriptors import descriptors_from_spin_density, phi_spin_factor
from repro.ml.nn import MLP

from .base import XCFunctional

__all__ = ["MLXCLaplacian", "LAPLACIAN_LAYERS"]

#: 4 descriptors -> 5 hidden layers x 80 neurons -> F
LAPLACIAN_LAYERS = (4, 80, 80, 80, 80, 80, 1)

_CSTEP = 1e-30
_Q_PREF = 4.0 * (3.0 * np.pi**2) ** (2.0 / 3.0)


def _feature_map4(rho, xi, s, q):
    """Bounded features: [rho^(1/3), xi, s/(1+s), q/(1+|q|)]."""
    rho_s = np.where(np.real(rho) > RHO_FLOOR, rho, RHO_FLOOR)
    f1 = rho_s ** (1.0 / 3.0)
    f3 = s / (1.0 + s)
    f4 = q / (1.0 + np.sqrt(q * q + 1e-30))
    return np.stack([np.asarray(f1), np.asarray(xi), np.asarray(f3),
                     np.asarray(f4)], axis=-1)


class MLXCLaplacian(XCFunctional):
    """Laplacian-level neural XC functional (deployment-ready)."""

    name = "MLXC-L"
    needs_gradient = True
    level = 4

    def __init__(self, network: MLP | None = None, seed: int = 0) -> None:
        self.network = (
            network if network is not None else MLP(LAPLACIAN_LAYERS, seed=seed)
        )
        if self.network.layer_sizes[0] != 4 or self.network.layer_sizes[-1] != 1:
            raise ValueError("MLXC-L network must map 4 descriptors to a scalar")

    # -- pointwise energy density -------------------------------------------
    def exc_density_lap(
        self, rho_up, rho_dn, sigma_uu, sigma_ud, sigma_dd, lap_up, lap_dn
    ):
        """Energy density with explicit spin-Laplacian inputs (dtype-agnostic)."""
        rho, xi, s = descriptors_from_spin_density(
            rho_up, rho_dn, sigma_uu, sigma_ud, sigma_dd
        )
        rho_s = np.where(np.real(rho) > RHO_FLOOR, rho, RHO_FLOOR)
        q = (lap_up + lap_dn) / (_Q_PREF * rho_s ** (5.0 / 3.0))
        F = self.network.forward(_feature_map4(rho_s, xi, s, q))[:, 0]
        e = rho_s ** (4.0 / 3.0) * phi_spin_factor(xi) * F
        return np.where(np.real(rho) > RHO_FLOOR, e, 0.0)

    def exc_density(self, rho_up, rho_dn, sigma_uu=None, sigma_ud=None,
                    sigma_dd=None):
        """Base-interface fallback: zero-Laplacian slice of the functional."""
        zero = np.zeros_like(np.asarray(rho_up, dtype=float))
        return self.exc_density_lap(
            rho_up, rho_dn, sigma_uu, sigma_ud, sigma_dd, zero, zero
        )

    # -- mesh-level potential/energy -----------------------------------------
    def potential_and_energy(self, mesh, rho_spin: np.ndarray):
        rho_up, rho_dn = rho_spin[:, 0], rho_spin[:, 1]
        g_up = mesh.gradient(rho_up)
        g_dn = mesh.gradient(rho_dn)
        s_uu = np.einsum("ij,ij->i", g_up, g_up)
        s_ud = np.einsum("ij,ij->i", g_up, g_dn)
        s_dd = np.einsum("ij,ij->i", g_dn, g_dn)
        lap_up = mesh.divergence(g_up)
        lap_dn = mesh.divergence(g_dn)

        args = [np.maximum(rho_up, 0.0), np.maximum(rho_dn, 0.0),
                s_uu, s_ud, s_dd, lap_up, lap_dn]
        exc = np.real(self.exc_density_lap(*args))
        live = (args[0] + args[1]) > RHO_FLOOR
        exc = np.where(live, exc, 0.0)
        exc_total = float(mesh.integrate(exc))

        derivs = []
        for j in range(7):
            pert = [a.astype(complex) if i == j else a for i, a in enumerate(args)]
            pert[j] = pert[j] + 1j * _CSTEP
            d = np.imag(self.exc_density_lap(*pert)) / _CSTEP
            derivs.append(np.where(live, d, 0.0))
        vr_u, vr_d, vs_uu, vs_ud, vs_dd, vl_u, vl_d = derivs

        vec_up = 2.0 * vs_uu[:, None] * g_up + vs_ud[:, None] * g_dn
        vec_dn = 2.0 * vs_dd[:, None] * g_dn + vs_ud[:, None] * g_up
        v_up = vr_u - mesh.divergence(vec_up)
        v_dn = vr_d - mesh.divergence(vec_dn)
        # second-order Euler-Lagrange term: + lap(d e / d lap(rho_s))
        v_up = v_up + mesh.divergence(mesh.gradient(vl_u))
        v_dn = v_dn + mesh.divergence(mesh.gradient(vl_d))
        return np.stack([v_up, v_dn], axis=1), exc_total

    # -- construction helpers ---------------------------------------------------
    @classmethod
    def bootstrapped_from(cls, reference: XCFunctional, seed: int = 0,
                          epochs: int = 250, n_samples: int = 3000
                          ) -> "MLXCLaplacian":
        """Warm start: fit the 4-descriptor network to a semilocal reference
        (which is q-independent, so the fit teaches F to ignore q initially).
        """
        from repro.ml.nn import Adam

        rng = np.random.default_rng(seed)
        rho = 10.0 ** rng.uniform(-3, 1, n_samples)
        xi = rng.uniform(-0.98, 0.98, n_samples)
        s = 10.0 ** rng.uniform(-2, 1, n_samples)
        q = rng.uniform(-3.0, 3.0, n_samples)
        rho_up = 0.5 * rho * (1 + xi)
        rho_dn = 0.5 * rho * (1 - xi)
        grad = s * 2.0 * (3 * np.pi**2) ** (-1 / 3) * rho ** (4 / 3)
        sigma_tot = grad**2
        if reference.needs_gradient:
            suu = sigma_tot * ((1 + xi) / 2) ** 2
            sdd = sigma_tot * ((1 - xi) / 2) ** 2
            sud = sigma_tot * (1 + xi) * (1 - xi) / 4
            e_ref = np.real(reference.exc_density(rho_up, rho_dn, suu, sud, sdd))
        else:
            e_ref = np.real(reference.exc_density(rho_up, rho_dn))
        F_target = e_ref / (rho ** (4 / 3) * phi_spin_factor(xi))
        feats = _feature_map4(rho, xi, s, q)
        net = MLP(LAPLACIAN_LAYERS, seed=seed)
        opt = Adam(lr=3e-3)
        theta = net.get_params()
        for _ in range(epochs):
            net.set_params(theta)
            cache: list = []
            pred = net.forward(feats, cache)[:, 0]
            gW, gb, _ = net.backward(
                cache, (2.0 * (pred - F_target) / n_samples)[:, None]
            )
            theta = opt.step(theta, net._flatten(gW, gb))
        net.set_params(theta)
        return cls(network=net)
