"""MLXC: the machine-learned exchange-correlation functional (paper Eq. 3).

.. math::

    e_{xc}^{ML}[\\rho](r) = \\rho^{4/3}(r)\\,\\phi(\\xi(r))\\,
        F^{DNN}(\\rho, \\xi, s),

with relative spin density ``xi``, reduced gradient ``s`` and the
``rho^(4/3) phi`` prefactor enforcing the known coordinate- and spin-scaling
relations; the form is translationally and rotationally equivariant by
construction (it depends on position only through scalar fields).

``F_DNN`` is a 5-layer x 80-neuron ELU network (:class:`repro.ml.nn.MLP`).
The XC potential — including the gradient/divergence term from the
``s``-dependence — is produced by the generic complex-step machinery of
:class:`repro.xc.base.XCFunctional` plus the mesh recovery operators, i.e.
``v_xc`` is obtained "inexpensively via back-propagation" exactly as the
paper describes.
"""

from __future__ import annotations

import numpy as np

from repro.ml.descriptors import (
    descriptors_from_spin_density,
    feature_map,
    phi_spin_factor,
)
from repro.ml.nn import MLP

from .base import RHO_FLOOR, XCFunctional

__all__ = ["MLXC", "DEFAULT_LAYERS"]

#: paper architecture: 3 descriptors -> 5 hidden layers x 80 neurons -> F
DEFAULT_LAYERS = (3, 80, 80, 80, 80, 80, 1)


class MLXC(XCFunctional):
    """Neural XC functional at quantum-many-body-informed accuracy (Level 4+)."""

    name = "MLXC"
    needs_gradient = True
    level = 4

    def __init__(self, network: MLP | None = None, seed: int = 0) -> None:
        self.network = network if network is not None else MLP(DEFAULT_LAYERS, seed=seed)
        if self.network.layer_sizes[0] != 3 or self.network.layer_sizes[-1] != 1:
            raise ValueError("MLXC network must map 3 descriptors to a scalar F")

    # ------------------------------------------------------------------
    def exc_density(self, rho_up, rho_dn, sigma_uu=None, sigma_ud=None, sigma_dd=None):
        rho, xi, s = descriptors_from_spin_density(
            rho_up, rho_dn, sigma_uu, sigma_ud, sigma_dd
        )
        rho_s = np.where(np.real(rho) > RHO_FLOOR, rho, RHO_FLOOR)
        F = self.network.forward(feature_map(rho_s, xi, s))[:, 0]
        e = rho_s ** (4.0 / 3.0) * phi_spin_factor(xi) * F
        return np.where(np.real(rho) > RHO_FLOOR, e, 0.0)

    # ------------------------------------------------------------------
    def enhancement_factor(self, rho, xi, s) -> np.ndarray:
        """Evaluate F_DNN directly on descriptor values (diagnostics)."""
        return np.real(self.network.forward(feature_map(rho, xi, s))[:, 0])

    def save(self, path: str) -> None:
        """Persist the trained network weights."""
        self.network.save(path)

    @classmethod
    def from_pretrained(cls, path: str) -> "MLXC":
        """Load an MLXC functional from saved network weights."""
        return cls(network=MLP.load(path))

    @classmethod
    def pretrained(cls) -> "MLXC":
        """Load the weights shipped with the package.

        These were produced by ``examples/mlxc_training.py --save`` (the
        full FCI -> invDFT -> training pipeline on the model-world
        H2/LiH/Li/N set); see EXPERIMENTS.md Fig 3 for their accuracy.
        """
        import pathlib

        path = pathlib.Path(__file__).resolve().parent / "data/mlxc_pretrained.npz"
        if not path.exists():
            raise FileNotFoundError(
                "no shipped MLXC weights found; run "
                "`python examples/mlxc_training.py --save` to generate them"
            )
        return cls.from_pretrained(str(path))

    @classmethod
    def bootstrapped_from(cls, reference: XCFunctional, seed: int = 0,
                          epochs: int = 400, n_samples: int = 4000) -> "MLXC":
        """Pretrain F_DNN to mimic a reference functional's F on a sample grid.

        Used as the training warm start (and in tests): fits
        ``F_ref = e_ref / (rho^(4/3) phi)`` over a physical range of
        (rho, xi, s) by Adam on an MSE loss.
        """
        from repro.ml.nn import Adam

        rng = np.random.default_rng(seed)
        rho = 10.0 ** rng.uniform(-3, 1, n_samples)
        xi = rng.uniform(-0.98, 0.98, n_samples)
        s = 10.0 ** rng.uniform(-2, 1, n_samples)
        rho_up = 0.5 * rho * (1 + xi)
        rho_dn = 0.5 * rho * (1 - xi)
        grad = s * 2.0 * (3 * np.pi**2) ** (-1 / 3) * rho ** (4 / 3)
        sigma_tot = grad**2
        # attribute the gradient to the channels proportionally
        if reference.needs_gradient:
            suu = sigma_tot * ((1 + xi) / 2) ** 2
            sdd = sigma_tot * ((1 - xi) / 2) ** 2
            sud = sigma_tot * (1 + xi) * (1 - xi) / 4
            e_ref = np.real(reference.exc_density(rho_up, rho_dn, suu, sud, sdd))
        else:
            e_ref = np.real(reference.exc_density(rho_up, rho_dn))
        F_target = e_ref / (rho ** (4 / 3) * phi_spin_factor(xi))
        feats = feature_map(rho, xi, s)
        net = MLP(DEFAULT_LAYERS, seed=seed)
        opt = Adam(lr=3e-3)
        theta = net.get_params()
        for _ in range(epochs):
            net.set_params(theta)
            cache: list = []
            pred = net.forward(feats, cache)[:, 0]
            resid = pred - F_target
            gW, gb, _ = net.backward(cache, (2.0 * resid / n_samples)[:, None])
            grad_theta = net._flatten(gW, gb)
            theta = opt.step(theta, grad_theta)
        net.set_params(theta)
        return cls(network=net)
