"""Exchange-correlation functionals: LDA (L1), PBE (L2), hybrid (L3), MLXC (L4+)."""

from .base import RHO_FLOOR, XCFunctional, XCOutput
from .gga import PBE
from .hybrid import PBE0, hf_exchange_energy
from .lda import LDA
from .mlxc import MLXC
from .mlxc_laplacian import MLXCLaplacian

__all__ = [
    "LDA",
    "MLXC",
    "MLXCLaplacian",
    "PBE",
    "PBE0",
    "RHO_FLOOR",
    "XCFunctional",
    "XCOutput",
    "hf_exchange_energy",
]
