"""Level-3 hybrid functional (PBE0-like), evaluated post-SCF.

Hybrid functionals mix a fraction of exact (Hartree-Fock) exchange into a
GGA.  A self-consistent hybrid requires applying the nonlocal exchange
operator inside every Chebyshev filtering step; following common practice
for energy-level comparisons (and the paper's Table 1, where hybrid DFT
appears only as a Level-3 baseline), the hybrid energy here is evaluated
*perturbatively on the converged PBE orbitals*:

.. math::

    E^{hyb} = E^{PBE} + a\\,(E_x^{HF} - E_x^{PBE}), \\qquad a = 0.25,

with the exact-exchange energy computed from the occupied orbitals via FE
Poisson solves of the orbital pair densities (the same machinery as the FCI
integrals).  This exercises the exact-exchange code path at a cost linear
in the number of occupied orbital pairs.
"""

from __future__ import annotations

import numpy as np

from repro.fem.mesh import Mesh3D
from repro.fem.poisson import PoissonSolver, multipole_boundary_values

from .base import XCFunctional
from .gga import PBE, _pbe_exchange_unpol

__all__ = ["PBE0", "hf_exchange_energy"]


def hf_exchange_energy(
    mesh: Mesh3D,
    orbitals_nodes: np.ndarray,
    occupations: np.ndarray,
    poisson_tol: float = 1e-9,
) -> float:
    """Exact-exchange energy of one spin channel's occupied orbitals.

    ``E_x = -1/2 sum_ij f_i f_j (ij|ij)`` over a spin channel whose orbital
    occupations ``f_i`` are in [0, 1] (pass the spatial orbitals once per
    spin; for spin-restricted calculations call with f_i in [0,1] per spin,
    i.e. half the total occupation).
    """
    phi = np.asarray(orbitals_nodes)
    f = np.asarray(occupations, dtype=float)
    keep = f > 1e-8
    phi, f = phi[:, keep], f[keep]
    n = phi.shape[1]
    solver = PoissonSolver(mesh)
    w = mesh.mass_diag
    e_x = 0.0
    for i in range(n):
        for j in range(i + 1):
            rho_ij = np.real(phi[:, i] * np.conj(phi[:, j]))
            bc = multipole_boundary_values(mesh, rho_ij)
            v = solver.solve(rho_ij, boundary_values=bc, tol=poisson_tol).potential
            integral = float(np.dot(w, v * rho_ij))
            factor = 1.0 if i == j else 2.0
            e_x -= 0.5 * factor * f[i] * f[j] * integral
    return e_x


class PBE0(XCFunctional):
    """PBE0-like hybrid: reported through :meth:`post_scf_energy`."""

    name = "Hybrid-PBE0"
    needs_gradient = True
    level = 3
    mixing = 0.25

    def __init__(self) -> None:
        self._pbe = PBE()

    def exc_density(self, *args):
        # the SCF itself runs on PBE; the hybrid correction is post-SCF
        return self._pbe.exc_density(*args)

    def pbe_exchange_energy(self, mesh: Mesh3D, rho_spin: np.ndarray) -> float:
        """Semilocal PBE exchange energy (the part replaced by HF exchange)."""
        g_up = mesh.gradient(rho_spin[:, 0])
        g_dn = mesh.gradient(rho_spin[:, 1])
        s_uu = np.einsum("ij,ij->i", g_up, g_up)
        s_dd = np.einsum("ij,ij->i", g_dn, g_dn)
        up = np.maximum(rho_spin[:, 0], 1e-12)
        dn = np.maximum(rho_spin[:, 1], 1e-12)
        ex = 0.5 * _pbe_exchange_unpol(2.0 * up, 4.0 * s_uu)
        ex = ex + 0.5 * _pbe_exchange_unpol(2.0 * dn, 4.0 * s_dd)
        live = rho_spin.sum(axis=1) > 1e-12
        return float(mesh.integrate(np.where(live, ex, 0.0)))

    def post_scf_energy(self, mesh: Mesh3D, scf_result, poisson_tol: float = 1e-9) -> float:
        """Hybrid total energy from a converged PBE ``SCFResult``."""
        from repro.core.density import orbitals_to_nodes

        e_x_hf = 0.0
        for ch, occ in zip(scf_result.channels, scf_result.occupations):
            phi = orbitals_to_nodes(mesh, ch.psi)
            occ = np.asarray(occ, dtype=float)
            if ch.spin is None:
                # spin-restricted: each spin channel carries occ/2
                e_x_hf += 2.0 * ch.weight * hf_exchange_energy(
                    mesh, phi, occ / 2.0, poisson_tol
                )
            else:
                e_x_hf += ch.weight * hf_exchange_energy(mesh, phi, occ, poisson_tol)
        e_x_pbe = self.pbe_exchange_energy(mesh, scf_result.rho_spin)
        return scf_result.energy + self.mixing * (e_x_hf - e_x_pbe)
