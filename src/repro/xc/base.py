"""Exchange-correlation functional interface (Levels 1-3 + MLXC).

A functional implements ``exc_density`` — the XC energy per unit volume as a
function of the spin densities and (for GGAs and MLXC) the gradient
contractions ``sigma_ab = grad(rho_a) . grad(rho_b)`` (libxc convention).

Derivatives ``vrho = d e / d rho_s`` and ``vsigma = d e / d sigma_ab`` are
obtained by *complex-step differentiation*: for an analytic implementation,
``f'(x) = Im f(x + i h) / h`` is exact to machine precision with
``h ~ 1e-30`` — no subtractive cancellation, no hand-derived formulas to get
wrong.  All functional implementations in this package are therefore written
dtype-agnostically.  Finite-difference cross-checks live in the test suite.

The nodal XC potential entering the Kohn-Sham Hamiltonian is

.. math::

    v_{xc}^{s} = \\partial e/\\partial\\rho_s
        - \\nabla\\cdot\\big(2 v^{\\sigma}_{ss}\\nabla\\rho_s
        + v^{\\sigma}_{s\\bar s}\\nabla\\rho_{\\bar s}\\big),

with the divergence evaluated by the mesh's recovery operators.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.constants import RHO_FLOOR

_CSTEP = 1e-30

__all__ = ["XCFunctional", "XCOutput", "RHO_FLOOR"]


@dataclass
class XCOutput:
    """Pointwise functional evaluation on a set of grid points."""

    exc: np.ndarray  #: (n,) XC energy density (energy / volume)
    vrho: np.ndarray  #: (n, 2) d exc / d rho_s
    vsigma: np.ndarray | None  #: (n, 3) d exc / d sigma_[uu, ud, dd], or None


class XCFunctional:
    """Base class for exchange-correlation functionals."""

    name = "base"
    needs_gradient = False
    #: accuracy level in the paper's Fig. 1 taxonomy (1=LDA ... 4=QMB-like)
    level = 0

    # -- to be implemented by subclasses ---------------------------------
    def exc_density(
        self,
        rho_up: np.ndarray,
        rho_dn: np.ndarray,
        sigma_uu: np.ndarray | None = None,
        sigma_ud: np.ndarray | None = None,
        sigma_dd: np.ndarray | None = None,
    ) -> np.ndarray:
        """XC energy per unit volume (dtype-agnostic: supports complex)."""
        raise NotImplementedError

    # -- generic machinery -------------------------------------------------
    def evaluate(
        self,
        rho_up: np.ndarray,
        rho_dn: np.ndarray,
        sigma_uu: np.ndarray | None = None,
        sigma_ud: np.ndarray | None = None,
        sigma_dd: np.ndarray | None = None,
    ) -> XCOutput:
        """Evaluate energy density and its derivatives at grid points."""
        rho_up = np.maximum(np.asarray(rho_up, dtype=float), 0.0)
        rho_dn = np.maximum(np.asarray(rho_dn, dtype=float), 0.0)
        args = [rho_up, rho_dn]
        if self.needs_gradient:
            if sigma_uu is None:
                raise ValueError(f"{self.name} requires gradient contractions")
            if sigma_ud is None:
                sigma_ud = np.zeros_like(sigma_uu)
            if sigma_dd is None:
                sigma_dd = np.zeros_like(sigma_uu)
            args += [np.asarray(sigma_uu, float), np.asarray(sigma_ud, float),
                     np.asarray(sigma_dd, float)]
        exc = np.real(self.exc_density(*args))

        live = (rho_up + rho_dn) > RHO_FLOOR
        nargs = len(args)
        derivs = []
        for j in range(nargs):
            pert = [a.astype(complex) if i == j else a for i, a in enumerate(args)]
            pert[j] = pert[j] + 1j * _CSTEP
            d = np.imag(self.exc_density(*pert)) / _CSTEP
            d = np.where(live, d, 0.0)
            derivs.append(d)
        vrho = np.stack(derivs[:2], axis=-1)
        vsigma = np.stack(derivs[2:], axis=-1) if self.needs_gradient else None
        return XCOutput(exc=np.where(live, exc, 0.0), vrho=vrho, vsigma=vsigma)

    def potential_and_energy(
        self, mesh, rho_spin: np.ndarray
    ) -> tuple[np.ndarray, float]:
        """Nodal XC potential (nnodes, 2) and total XC energy on a mesh.

        ``rho_spin`` is the (nnodes, 2) spin density.  GGA-type functionals
        include the weak-divergence term via the mesh recovery operators.
        """
        rho_up, rho_dn = rho_spin[:, 0], rho_spin[:, 1]
        if not self.needs_gradient:
            out = self.evaluate(rho_up, rho_dn)
            exc_total = float(mesh.integrate(out.exc))
            return out.vrho, exc_total

        g_up = mesh.gradient(rho_up)
        g_dn = mesh.gradient(rho_dn)
        s_uu = np.einsum("ij,ij->i", g_up, g_up)
        s_ud = np.einsum("ij,ij->i", g_up, g_dn)
        s_dd = np.einsum("ij,ij->i", g_dn, g_dn)
        out = self.evaluate(rho_up, rho_dn, s_uu, s_ud, s_dd)
        exc_total = float(mesh.integrate(out.exc))
        vs = out.vsigma
        vec_up = 2.0 * vs[:, 0:1] * g_up + vs[:, 1:2] * g_dn
        vec_dn = 2.0 * vs[:, 2:3] * g_dn + vs[:, 1:2] * g_up
        v_up = out.vrho[:, 0] - mesh.divergence(vec_up)
        v_dn = out.vrho[:, 1] - mesh.divergence(vec_dn)
        return np.stack([v_up, v_dn], axis=1), exc_total

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<XCFunctional {self.name} (level {self.level})>"
