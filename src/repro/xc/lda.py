"""Level-1 functional: local density approximation (Slater X + PW92 C).

Spin-polarized throughout.  All formulas are written dtype-agnostically so
that the complex-step derivative machinery of :class:`repro.xc.base.
XCFunctional` yields machine-precision potentials.
"""

from __future__ import annotations

import numpy as np

from .base import RHO_FLOOR, XCFunctional

__all__ = ["LDA", "lda_exchange_energy_density", "pw92_ec"]

_CX = -(3.0 / 4.0) * (3.0 / np.pi) ** (1.0 / 3.0)

# PW92 parameters: (A, alpha1, beta1, beta2, beta3, beta4)
_PW92_EC0 = (0.031091, 0.21370, 7.5957, 3.5876, 1.6382, 0.49294)
_PW92_EC1 = (0.015545, 0.20548, 14.1189, 6.1977, 3.3662, 0.62517)
_PW92_AC = (0.016887, 0.11125, 10.357, 3.6231, 0.88026, 0.49671)
_FPP0 = 4.0 / (9.0 * (2.0 ** (1.0 / 3.0) - 1.0))  # f''(0)


def _pw92_G(rs, p):
    """The PW92 Pade form G(rs; A, a1, b1..b4)."""
    A, a1, b1, b2, b3, b4 = p
    srs = np.sqrt(rs)
    q1 = 2.0 * A * (b1 * srs + b2 * rs + b3 * rs * srs + b4 * rs * rs)
    return -2.0 * A * (1.0 + a1 * rs) * np.log(1.0 + 1.0 / q1)


def pw92_ec(rs, zeta):
    """PW92 correlation energy per electron, epsilon_c(rs, zeta)."""
    ec0 = _pw92_G(rs, _PW92_EC0)
    ec1 = _pw92_G(rs, _PW92_EC1)
    mac = _pw92_G(rs, _PW92_AC)  # minus the spin stiffness
    fz = ((1.0 + zeta) ** (4.0 / 3.0) + (1.0 - zeta) ** (4.0 / 3.0) - 2.0) / (
        2.0 ** (4.0 / 3.0) - 2.0
    )
    z4 = zeta**4
    return ec0 - mac * fz / _FPP0 * (1.0 - z4) + (ec1 - ec0) * fz * z4


def lda_exchange_energy_density(rho_up, rho_dn):
    """Slater exchange energy density via the spin-scaling relation."""
    # E_x[up, dn] = (E_x^unpol[2 up] + E_x^unpol[2 dn]) / 2
    e_up = 0.5 * _CX * (2.0 * rho_up) ** (4.0 / 3.0)
    e_dn = 0.5 * _CX * (2.0 * rho_dn) ** (4.0 / 3.0)
    return e_up + e_dn


class LDA(XCFunctional):
    """Slater exchange + Perdew-Wang 1992 correlation."""

    name = "LDA-PW92"
    needs_gradient = False
    level = 1

    def exc_density(self, rho_up, rho_dn, *_unused):
        rho = rho_up + rho_dn
        rho_s = np.where(np.real(rho) > RHO_FLOOR, rho, RHO_FLOOR)
        zeta = (rho_up - rho_dn) / rho_s
        rs = (3.0 / (4.0 * np.pi * rho_s)) ** (1.0 / 3.0)
        ex = lda_exchange_energy_density(rho_up, rho_dn)
        ec = rho_s * pw92_ec(rs, zeta)
        mask = np.real(rho) > RHO_FLOOR
        return np.where(mask, ex + ec, 0.0)
