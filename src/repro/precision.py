"""Shared reduced-precision helpers for the mixed-precision kernels.

The paper's mixed-precision scheme (Sec 5.4.1/5.4.2) touches three
subsystems — CholGS/RR subspace linear algebra, the batched subspace
engine, and the virtual cluster's FP32 halo exchange.  Each used to spell
its own ``float32``/``complex64`` mapping; this module is the single
definition both of the dtype map and of the *single-cast FP32 mirror*: the
one place a working array is downcast per kernel call, so the per-block
``.astype`` pattern (re-casting the same columns once per block pair) never
reappears.
"""

from __future__ import annotations

import numpy as np

__all__ = ["f32_dtype", "fp32_mirror"]


def f32_dtype(dtype) -> np.dtype:
    """The FP32-precision counterpart of ``dtype`` (complex64 for complex)."""
    return np.dtype(
        np.complex64 if np.issubdtype(np.dtype(dtype), np.complexfloating) else np.float32
    )


def fp32_mirror(X: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
    """Single-cast FP32 mirror of ``X`` (complex64 for complex input).

    Slices of the mirror are bitwise identical to per-block
    ``block.astype(f32)`` casts (IEEE round-to-nearest elementwise), so a
    kernel reading ``mirror[:, si]`` reproduces the reference per-block
    downcast exactly while paying the cast once.  ``out`` (a pooled buffer
    of the mirror dtype/shape) avoids the allocation on hot paths.
    """
    if out is not None:
        out[...] = X  # elementwise cast on assignment, identical to astype
        return out
    # Whitelisted downcast: this helper IS the sanctioned single-cast site
    # the mixed-precision kernels funnel through (bounds documented there).
    return X.astype(f32_dtype(X.dtype))
