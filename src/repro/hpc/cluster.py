"""Virtual MPI cluster: execute the domain-decomposed algorithm for real.

The paper's distributed ``Assembly_FE`` is reproduced exactly, in-process:
cells are divided among P ranks, each rank computes its local cell-level
batched GEMMs and scatter, and contributions to *halo* nodes (shared between
ranks) are exchanged — optionally cast to FP32, the paper's mixed-precision
boundary communication (Sec 5.4.2).  Every exchange is metered, giving real
byte/message counts that feed the performance model, and the numerical
effect of FP32 halos can be measured directly (tests bound it).

This substitutes for MPI + GPU-aware communication on the real machines:
the *algorithm* (partitioning, owner-sum-broadcast halo protocol, reduced
precision on the wire) is identical; only the transport is in-memory.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.fem.assembly import CellStiffness
from repro.fem.mesh import Mesh3D
from repro.fem.partition import Partition
from repro.fem.workspace import Workspace
from repro.precision import f32_dtype
from repro.obs import add_counter
from repro.resilience import InjectedFault, ResilienceError
from repro.resilience import faults as _faults
from repro.tools import sanitize as _sanitize

__all__ = ["TrafficReport", "VirtualCluster", "apply_cells"]


def apply_cells(stiff, X: np.ndarray, conn: np.ndarray, cells: np.ndarray) -> np.ndarray:
    """Cell-level batched stiffness GEMMs on one subset of cells.

    The gather → (Bloch phase) → batched matmul → (conjugate phase)
    sequence every rank backend shares: the in-process virtual cluster and
    the process-level workers call this same function on the same cell
    subsets, which is what keeps their per-cell results bitwise identical.
    """
    Xc = X[conn[cells]]
    if stiff.phases is not None:
        Xc = Xc * stiff.phases[cells][:, :, None]
    if stiff._Kc is not None:
        Yc = np.matmul(stiff._Kc, Xc)
    else:
        Yc = stiff._coef[cells, 0, None, None] * np.matmul(stiff._A[0], Xc)
        Yc += stiff._coef[cells, 1, None, None] * np.matmul(stiff._A[1], Xc)
        Yc += stiff._coef[cells, 2, None, None] * np.matmul(stiff._A[2], Xc)
    if stiff.phases is not None:
        Yc = np.conj(stiff.phases[cells])[:, :, None] * Yc
    return Yc


@dataclass
class TrafficReport:
    """Accumulated communication volume."""

    p2p_bytes: float = 0.0
    p2p_messages: int = 0
    allreduce_bytes: float = 0.0
    allreduce_calls: int = 0

    def reset(self) -> None:
        self.p2p_bytes = 0.0
        self.p2p_messages = 0
        self.allreduce_bytes = 0.0
        self.allreduce_calls = 0


class VirtualCluster:
    """P simulated ranks executing the distributed stiffness application."""

    #: whether the backend overlaps halo exchange with interior compute
    #: (the in-process cluster is sequential by construction)
    overlap = False
    #: backend name reported by ``repro info`` and the traffic reports
    backend = "virtual"

    def __init__(
        self,
        mesh: Mesh3D,
        nranks: int,
        kfrac: tuple[float, float, float] | None = None,
        fp32_halo: bool = False,
    ) -> None:
        self.mesh = mesh
        self.partition = Partition(mesh, nranks)
        self.nranks = len(self.partition.cells_of_rank)
        self.stiff = CellStiffness(mesh, kfrac=kfrac)
        self.fp32_halo = fp32_halo
        self.traffic = TrafficReport()
        self._san_tag = f"VirtualCluster.traffic:{id(self)}"
        self._halo_of_rank = [
            self.partition.halo_nodes_of_rank(r) for r in range(self.nranks)
        ]
        #: pooled per-rank accumulation buffer of :meth:`apply_stiffness`
        #: (re-zeroed per rank; one allocation per (shape, dtype) instead of
        #: one per rank per apply)
        self._workspace = Workspace()
        self._owner = self.partition.owner
        # neighbor counts: ranks sharing at least one node
        self._neighbors = [
            int(nbrs.size) for nbrs in self.partition.neighbors_of_rank
        ]

    @property
    def halo_word_bytes(self) -> int:
        base = 8 if self.stiff.phases is None else 16
        return base // 2 if self.fp32_halo else base

    def apply_stiffness(self, x_full: np.ndarray) -> np.ndarray:
        """Distributed ``K @ x`` with the owner-sum halo protocol.

        Each rank's partial contributions to halo nodes travel to the
        owning rank (metered, optionally in FP32); the summed values are
        returned to all touching ranks (metered again).  The returned array
        is bitwise identical across ranks, so a single copy is returned.
        """
        squeeze = x_full.ndim == 1
        X = x_full[:, None] if squeeze else x_full
        B = X.shape[1]
        dtype = np.result_type(self.stiff.dtype, X.dtype)
        f32 = f32_dtype(dtype)
        y = np.zeros((self.mesh.nnodes, B), dtype=dtype)
        conn = self.mesh.conn
        for r, cells in enumerate(self.partition.cells_of_rank):
            # pooled across ranks (zeroed each time, so the accumulation is
            # bitwise identical to a fresh np.zeros per rank)
            local = self._workspace.get(
                "cluster_local", (self.mesh.nnodes, B), dtype, zero=True
            )
            san = _sanitize._STATE
            if san is not None:
                san.assert_owned(local, context="cluster rank-local accumulator")
            # Two passes — boundary cells (the partition orders them first)
            # then interior — matching the process backend's overlapped
            # schedule pass-for-pass; per-node accumulation order (hence
            # bits) is unchanged because the cell order is the same.
            nb = self.partition.n_boundary_of_rank[r]
            for sub in (cells[:nb], cells[nb:]):
                if sub.size == 0:
                    continue
                Yc = apply_cells(self.stiff, X, conn, sub)
                # Sanctioned slow scatter: the rank-local partial sums model
                # the cluster's per-rank accumulation order, which the fast
                # ScatterMap (built for the *global* connectivity) cannot
                # reproduce per rank.
                np.add.at(local, conn[sub].ravel(), Yc.reshape(-1, B))  # reprolint: disable=R010
            halo = self._halo_of_rank[r]
            remote = halo[self._owner[halo] != r]
            if _faults._PLAN is not None and remote.size:
                # reprochaos site: the halo payload may be dropped/poisoned;
                # the protocol below retransmits until it arrives pristine
                self._deliver_halo(local, remote, B, self._neighbors[r])
            if self.fp32_halo and remote.size:
                # Whitelisted FP32 halo downcast (paper Sec 5.4.2): only the
                # partial sums crossing rank boundaries travel in FP32; the
                # owner's accumulation and all interior nodes stay FP64.
                # tests/test_hpc.py bounds the resulting error.
                local[remote] = local[remote].astype(f32).astype(dtype)
            y += local
            # metering: partials sent to owners + summed values received back
            self._meter_halo(r, remote.size, B)
        return y[:, 0] if squeeze else y

    def _meter_halo(self, r: int, remote_size: int, B: int) -> None:
        """Meter one rank's halo exchange (sanitizer-windowed)."""
        halo_bytes = 2 * remote_size * B * self.halo_word_bytes
        san = _sanitize._STATE
        if san is not None:
            san.write_begin(self._san_tag)
        try:
            self.traffic.p2p_bytes += halo_bytes
            self.traffic.p2p_messages += 2 * self._neighbors[r]
        finally:
            if san is not None:
                san.write_end(self._san_tag)
        add_counter("halo_bytes", halo_bytes)
        add_counter("halo_messages", 2 * self._neighbors[r])

    def close(self) -> None:
        """Release backend resources (no-op for the in-process cluster)."""

    #: consecutive failed transfers tolerated before the exchange gives up
    _MAX_HALO_RETRANSMITS = 3

    def _deliver_halo(
        self, local: np.ndarray, remote: np.ndarray, B: int, neighbors: int
    ) -> None:
        """Self-healing halo transfer under an armed fault plan.

        Models an acknowledged exchange: a dropped or corrupted message is
        detected (checksum/timeout on the real machine), the pristine
        payload is restored and retransmitted — re-metered, since the bad
        attempt moved bytes on the wire too — until it arrives clean or
        ``_MAX_HALO_RETRANSMITS`` consecutive transfers have failed.
        Recovery is bitwise exact: the delivered payload is the pristine
        one, so a healed run matches the fault-free run bit for bit.
        """
        pristine = local.copy()
        attempts = 0
        while True:
            try:
                verdict = _faults.fault_point("halo", local)
            except InjectedFault as exc:
                verdict = exc.kind  # a crashed transfer: retransmit as well
            if verdict is None or verdict == "slow":
                return
            attempts += 1
            add_counter("halo_retransmits", 1)
            halo_bytes = 2 * remote.size * B * self.halo_word_bytes
            self.traffic.p2p_bytes += halo_bytes
            self.traffic.p2p_messages += 2 * neighbors
            if attempts > self._MAX_HALO_RETRANSMITS:
                raise ResilienceError(
                    "halo",
                    f"exchange failed {attempts} consecutive times "
                    f"(last fault: {verdict})",
                    attempts=attempts,
                )
            np.copyto(local, pristine)

    def allreduce(self, array: np.ndarray) -> np.ndarray:
        """Meter an allreduce of ``array`` across the ranks (identity op)."""
        wire_bytes = array.nbytes * 2 * (self.nranks - 1) / max(self.nranks, 1)
        self.traffic.allreduce_bytes += wire_bytes
        self.traffic.allreduce_calls += 1
        add_counter("allreduce_bytes", wire_bytes)
        return array

    def dof_balance(self) -> np.ndarray:
        return self.partition.dof_balance()
