"""FLOP accounting following the paper's measurement methodology (Sec 6.3).

The paper measures FLOPs for the key kernels — CF, CholGS-S, CholGS-O, RR-P,
RR-SR, DC — and *excludes* CholGS-CI, RR-D, Hamiltonian construction and the
electrostatic solve from the FLOP count while still charging their wall time.
:class:`FlopLedger` reproduces this bookkeeping: every kernel records FLOPs
(optionally split by precision) and wall-clock time under a named category.

The module also provides the closed-form lower-bound FLOP formulas used by
the paper for the O(M N^2) dense steps, ``alpha * 4 * N * M * N`` with the
complex factor 4 and ``alpha in {1, 2}`` for Hermitian exploitation.

Timing is delegated to reproscope (:mod:`repro.obs`): :meth:`FlopLedger.
timed` opens a kernel span and charges its duration back to the tally, so a
ledger-instrumented run and its trace agree by construction, and
:meth:`FlopLedger.add` mirrors every FLOP count onto the current span's
counters.  With ``REPRO_TRACE=0`` the ledger still times correctly (the
no-op spans keep their clock reads).
"""

from __future__ import annotations

import threading
from collections import defaultdict
from dataclasses import dataclass
from typing import ContextManager

from repro.obs.tracer import Span, add_counter, kernel_region
from repro.tools import sanitize as _sanitize

__all__ = [
    "FlopLedger",
    "KernelTally",
    "gemm_flops",
    "projected_step_flops",
    "chebyshev_filter_flops",
]

#: kernels the paper excludes from the FLOP count (wall time still charged)
UNCOUNTED_KERNELS = frozenset(
    {"CholGS-CI", "CholGS-QR", "RR-D", "DH", "EP", "Others"}
)


@dataclass
class KernelTally:
    """Accumulated FLOPs/time for a single kernel category."""

    flops_fp64: float = 0.0
    flops_fp32: float = 0.0
    seconds: float = 0.0
    calls: int = 0

    @property
    def flops_total(self) -> float:
        return self.flops_fp64 + self.flops_fp32


class FlopLedger:
    """Per-kernel FLOP and wall-time ledger.

    Mutations are guarded by a lock: one ledger is shared by the parallel
    (k, spin) ChFES channel threads, whose kernels all charge FLOPs and
    seconds concurrently.
    """

    def __init__(self) -> None:
        self._tally: dict[str, KernelTally] = defaultdict(KernelTally)
        self._lock = threading.Lock()
        self._san_tag = f"FlopLedger:{id(self)}"

    def add(self, kernel: str, flops: float, precision: str = "fp64") -> None:
        if precision not in ("fp64", "fp32"):
            raise ValueError(f"unknown precision {precision!r}")
        with self._lock:
            san = _sanitize._STATE
            if san is not None:
                san.write_begin(self._san_tag)
            try:
                t = self._tally[kernel]
                if precision == "fp64":
                    t.flops_fp64 += flops
                else:
                    t.flops_fp32 += flops
            finally:
                if san is not None:
                    san.write_end(self._san_tag)
        # mirror onto the innermost open reproscope span (no-op untraced);
        # spans are thread-local, so this needs no lock
        add_counter(f"flops_{precision}", flops)

    def charge_seconds(self, kernel: str, seconds: float, calls: int = 1) -> None:
        """Record measured wall time for ``kernel`` (reproscope callback)."""
        with self._lock:
            san = _sanitize._STATE
            if san is not None:
                san.write_begin(self._san_tag)
            try:
                t = self._tally[kernel]
                t.seconds += seconds
                t.calls += calls
            finally:
                if san is not None:
                    san.write_end(self._san_tag)

    def timed(self, kernel: str) -> ContextManager[Span]:
        """Open a reproscope span whose duration is charged to ``kernel``."""
        return kernel_region(kernel, ledger=self)

    def __getitem__(self, kernel: str) -> KernelTally:
        with self._lock:
            return self._tally[kernel]

    def kernels(self) -> list[str]:
        with self._lock:
            return sorted(self._tally)

    def total_counted_flops(self) -> float:
        """Total FLOPs over the kernels the paper counts."""
        with self._lock:
            return sum(
                t.flops_total
                for k, t in self._tally.items()
                if k not in UNCOUNTED_KERNELS
            )

    def total_seconds(self) -> float:
        with self._lock:
            return sum(t.seconds for t in self._tally.values())

    def reset(self) -> None:
        with self._lock:
            san = _sanitize._STATE
            if san is not None:
                san.write_begin(self._san_tag)
            try:
                self._tally.clear()
            finally:
                if san is not None:
                    san.write_end(self._san_tag)

    def snapshot(self) -> dict[str, tuple[float, float, float, int]]:
        """Checkpointable copy of the tally (kernel -> fp64/fp32/sec/calls)."""
        with self._lock:
            return {
                k: (t.flops_fp64, t.flops_fp32, t.seconds, t.calls)
                for k, t in self._tally.items()
            }

    def restore(self, snap: dict[str, tuple[float, float, float, int]]) -> None:
        """Replace the tally with a :meth:`snapshot` (checkpoint resume)."""
        with self._lock:
            san = _sanitize._STATE
            if san is not None:
                san.write_begin(self._san_tag)
            try:
                self._tally.clear()
                for k, (f64, f32, sec, calls) in snap.items():
                    self._tally[k] = KernelTally(
                        flops_fp64=float(f64),
                        flops_fp32=float(f32),
                        seconds=float(sec),
                        calls=int(calls),
                    )
            finally:
                if san is not None:
                    san.write_end(self._san_tag)

    def summary(self) -> str:
        lines = [f"{'kernel':<12} {'GFLOP':>12} {'fp32 share':>11} {'time (s)':>10}"]
        for k in self.kernels():
            t = self._tally[k]
            share = t.flops_fp32 / t.flops_total if t.flops_total else 0.0
            lines.append(
                f"{k:<12} {t.flops_total / 1e9:>12.3f} {share:>10.1%} {t.seconds:>10.4f}"
            )
        return "\n".join(lines)


def gemm_flops(m: int, n: int, k: int, complex_arith: bool = False) -> float:
    """FLOPs of a dense (m x k) @ (k x n) product (2mnk; x4 for complex)."""
    f = 2.0 * m * n * k
    return 4.0 * f if complex_arith else f


def projected_step_flops(
    M: int, N: int, hermitian: bool, complex_arith: bool = True
) -> float:
    """Paper's lower bound for the O(M N^2) steps: alpha * 4 * N * M * N.

    ``alpha = 1`` when Hermiticity is exploited (CholGS-S, RR-P), else 2
    (CholGS-O, RR-SR).  The factor 4 is the complex-arithmetic factor; for
    Gamma-point (real) calculations it drops to 1.
    """
    alpha = 1.0 if hermitian else 2.0
    complex_factor = 4.0 if complex_arith else 1.0
    return alpha * complex_factor * N * M * N


def chebyshev_filter_flops(
    ncells: int,
    nodes_per_cell: int,
    nvectors: int,
    degree: int,
    complex_arith: bool = False,
) -> float:
    """FLOPs of an m-degree Chebyshev filter built on cell-level GEMMs.

    Linear in (cells x wavefunctions x polynomial degree), matching the
    scaling relation the paper uses to extrapolate CF FLOPs from DislocMgY to
    the TwinDislocMgY systems (same mesh parameters and Chebyshev degree).
    """
    per_apply = gemm_flops(nodes_per_cell, nvectors, nodes_per_cell, complex_arith)
    # three-term recurrence: one H apply + axpy-level work per degree
    return degree * ncells * per_apply
