"""Roofline + communication performance model for the exascale kernels.

This module maps the FLOP counts of Sec 6.3 to modeled wall-clock times on
the machines of :mod:`repro.hpc.machine`, reproducing the *structure* of the
paper's performance results: the block-size dependence of the Chebyshev
filter (Fig 4), the mixed-precision/asynchrony gains (Fig 5), strong-scaling
saturation (Figs 7, 8) and the per-kernel sustained-PFLOPS breakdown
(Table 3).  The algorithm itself runs for real in :mod:`repro.core`; only
the time mapping at 10^3-10^5 GPUs is modeled — that is the documented
substitution for the Frontier/Summit/Perlmutter hardware.

Model ingredients:

* **CF** — batched cell-GEMM compute with a saturating block-size
  efficiency (arithmetic intensity grows with B_f) whose asymptote falls
  with the machine's FLOP/byte ratio (Summit-vs-Crusher, Fig 4), the A100
  FP64 tensor-core multiplier, plus FP32-halved point-to-point halo
  exchange (overlapped when GPU-aware MPI is available);
* **CholGS / RR GEMM steps** — large-GEMM efficiency with an FP32
  off-diagonal fraction running at twice the FP64 rate (this is how the
  paper's >100% "efficiencies" arise), plus N x N allreduce collectives
  that can only be overlapped when a stream-tagged collective library
  (NCCL/RCCL) is usable;
* **CholGS-CI / RR-D** — ScaLAPACK-class O(N^3) solves that are latency
  rather than FLOP bound, fitted as a_ci (N/1000)^1.5 seconds;
* **the >1000-node Frontier routing penalty** (paper Sec 7.2) degrading
  point-to-point and collective bandwidth when optimal GPU-aware routing is
  unavailable.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .machine import MachineSpec

__all__ = [
    "KernelTime",
    "MeasuredOverlap",
    "ModelOptions",
    "calibrate_overlap",
    "cf_block_efficiency",
    "kernel_times",
    "modeled_scf_seconds",
    "measured_overlap_residual",
]


@dataclass
class ModelOptions:
    """Execution-strategy toggles studied in the paper."""

    mixed_precision: bool = True
    async_overlap: bool = True
    gpu_aware_mpi: bool = True
    use_rccl: bool = False  #: unstable >1000 Frontier nodes (paper Sec 5.4.4)
    optimal_routing: bool = True  #: False reproduces the >1000-node penalty
    use_tensor_cores: bool = True  #: A100 FP64 tensor cores
    block_size: int = 250  #: wavefunction block B_f
    fp32_fraction: float = 0.8  #: off-diagonal share of CholGS/RR work
    #: residual cost of the hidden phase when compute/comm overlap is on:
    #: t = max(compute, comm) + overlap_residual * min(compute, comm).
    #: 0 is perfect hiding; 1 degenerates to the serial sum.  The default
    #: is the fitted paper value; :func:`calibrate_overlap` replaces it
    #: with the value *measured* on this host by the process-rank backend
    #: (see ``benchmarks/bench_procranks.py``).
    overlap_residual: float = 0.08


@dataclass
class KernelTime:
    """Modeled timing of one kernel."""

    name: str
    flops: float  #: counted FLOPs (0 for uncounted kernels)
    seconds: float

    def pflops(self) -> float:
        return self.flops / self.seconds / 1e15 if self.seconds > 0 else 0.0


#: block size at which batched-GEMM efficiency reaches half its asymptote
_BF_HALF = 55.0
#: roofline coupling of CF efficiency to the machine FLOP/byte ratio
_CF_ROOFLINE = 0.030
#: fitted ScaLAPACK-class dense-solve constants (seconds at N=1000)
_CI_SECONDS = 0.0294
_RRD_OVER_CI = 2.5
#: fitted DH+EP+Others overhead constant (seconds per 1000 states)
_OTHERS_SECONDS = 0.0215
#: DC kernel: nodal-to-quadrature interpolation GEMM share and efficiency
_DC_FLOP_FACTOR = 0.91
_DC_EFFICIENCY = 0.37
#: CF efficiency penalty when optimal GPU-aware routing is unavailable
#: (paper Sec 7.2: ~40% -> ~30% for the large TwinDislocMgY runs)
_CF_ROUTING_PENALTY = 0.72


def cf_block_efficiency(
    machine: MachineSpec, block_size: int, use_tensor_cores: bool = True
) -> float:
    """CF kernel efficiency vs wavefunction block size (Fig 4 model).

    Saturating B_f dependence from batched-GEMM arithmetic intensity, an
    asymptote set by the machine's FLOP/byte ratio (the Summit-vs-Crusher
    1.4x drop the paper correlates with the 1.7x peak/HBM ratio), and the
    A100 FP64 tensor-core multiplier (>100% of vector peak is possible;
    the paper observes 85.7%).
    """
    ratio = machine.flops_per_byte_ratio
    eff_asym = machine.cf_base_efficiency / (1.0 + _CF_ROOFLINE * ratio)
    eff = eff_asym * block_size / (block_size + _BF_HALF)
    if use_tensor_cores and machine.fp64_tensor_multiplier > 1.0:
        eff *= machine.fp64_tensor_multiplier
    return float(eff)


def _allreduce_time(
    machine: MachineSpec, bytes_total: float, nodes: float, opts: ModelOptions
) -> float:
    """Ring-style allreduce across ``nodes`` of a shared buffer."""
    if nodes <= 1:
        return 0.0
    bw = machine.allreduce_bw_rccl if opts.use_rccl else machine.allreduce_bw_mpich
    penalty = 2.2 if (nodes > 1000 and not opts.optimal_routing) else 1.0
    t = 2.0 * bytes_total / (bw * 1e9) * (nodes - 1) / nodes
    return penalty * (t + machine.net_latency * np.log2(nodes))


def _p2p_halo_time(
    machine: MachineSpec,
    bytes_per_node: float,
    nodes: float,
    opts: ModelOptions,
    fp32: bool,
) -> float:
    """One FE partition-boundary exchange (per node costs)."""
    if nodes <= 1:
        return 0.0
    vol = bytes_per_node * (0.5 if fp32 else 1.0)
    speedup = 1.5 if opts.gpu_aware_mpi else 1.0
    penalty = 1.9 if (nodes > 1000 and not opts.optimal_routing) else 1.0
    bw = machine.node_injection_bw * 1e9 * speedup
    return penalty * (vol / bw + 26.0 * machine.net_latency)


def _gemm_rate(
    machine: MachineSpec, gpus: float, opts: ModelOptions, small_scale: bool
) -> float:
    """Achieved FLOPS of the O(M N^2) GEMM steps incl. FP32 mixing.

    At moderate scale (instance <= 1000 nodes) the blocked pipelines keep
    essentially all off-diagonal work in FP32 (the paper's Table 3 shows
    >120% of FP64 peak for TwinDislocMgY(A)); at the largest runs the
    effective FP32 share drops (71-76% of peak for TwinDislocMgY(C)).
    """
    peak = gpus * machine.fp64_peak_per_gpu * 1e12
    base = peak * machine.gemm_efficiency
    if not opts.mixed_precision:
        return base
    f32 = 1.0 if small_scale else opts.fp32_fraction
    # FP32 portion at twice the FP64 rate
    return base / ((1.0 - f32) + f32 / 2.0)


def _overlap(
    compute: float, comm: float, enabled: bool, residual: float = 0.08
) -> float:
    if enabled:
        return max(compute, comm) + residual * min(compute, comm)
    return compute + comm


def measured_overlap_residual(
    compute_s: float, comm_s: float, overlapped_s: float
) -> float:
    """Invert the overlap model from measured phase times.

    Given the compute-only time, the full (unhidden) communication time and
    the measured overlapped wall time of the same work, solve
    ``overlapped = max(compute, comm) + r * min(compute, comm)`` for ``r``
    and clip to [0, 1] (a negative solution means the overlapped run beat
    perfect hiding — timer noise; > 1 means overlap made things worse than
    serial, which the model caps at the serial sum).
    """
    lo = min(compute_s, comm_s)
    if lo <= 0.0:
        return 0.0
    r = (overlapped_s - max(compute_s, comm_s)) / lo
    return float(np.clip(r, 0.0, 1.0))


@dataclass(frozen=True)
class MeasuredOverlap:
    """Overlap calibration extracted from process-rank phase reports."""

    compute_s: float  #: per-apply per-rank compute (boundary + interior)
    comm_s: float  #: per-apply per-rank unhidden halo exchange cost
    overlapped_s: float  #: per-apply per-rank wall with overlap enabled
    residual: float  #: fitted ``overlap_residual`` for :class:`ModelOptions`


def calibrate_overlap(phase_on: dict, phase_off: dict) -> MeasuredOverlap:
    """Fit ``ModelOptions.overlap_residual`` from two measured phase reports.

    ``phase_on`` / ``phase_off`` are
    :meth:`repro.hpc.procranks.ProcRankCluster.phase_report` dicts from an
    overlap-enabled and overlap-disabled run of the same workload.  The
    overlap-off run exposes the full communication cost (halo wait + copy-in
    happen after all compute), so compute and comm separate cleanly there;
    the overlap-on wall then pins the residual.  All times are normalised
    per apply per rank so the two runs need not have equal apply counts.
    """
    def _norm(rep: dict, key: str) -> float:
        denom = max(rep["applies"], 1) * max(rep["nranks"], 1)
        return float(rep[key]) / denom

    compute = _norm(phase_off, "boundary_s") + _norm(phase_off, "interior_s")
    comm = _norm(phase_off, "halo_wait_s") + _norm(phase_off, "recv_s")
    overlapped = _norm(phase_on, "apply_total_s")
    return MeasuredOverlap(
        compute_s=compute,
        comm_s=comm,
        overlapped_s=overlapped,
        residual=measured_overlap_residual(compute, comm, overlapped),
    )


def kernel_times(
    machine: MachineSpec,
    nodes: int,
    M: float,
    N: float,
    n_instances: int,
    npc: int,
    cheb_degree: int,
    complex_arith: bool,
    opts: ModelOptions | None = None,
) -> list[KernelTime]:
    """Model one SCF iteration's kernel times and (aggregate) FLOPs.

    ``M`` FE DoF, ``N`` wavefunctions per eigensolver instance,
    ``n_instances`` concurrent k-point groups sharing the machine,
    ``npc = (p+1)^3`` the FE-cell matrix size.  FLOPs follow the Sec 6.3
    conventions (complex factor 4, alpha in {1,2}) and are aggregated over
    instances; each instance runs on ``nodes / n_instances`` nodes.
    """
    opts = opts or ModelOptions()
    cx = 4.0 if complex_arith else 1.0
    word = 16.0 if complex_arith else 8.0
    nodes_inst = max(nodes / n_instances, 1.0)
    gpus_inst = nodes_inst * machine.gpus_per_node
    p = int(round(npc ** (1.0 / 3.0))) - 1
    ncells = M / max(p, 1) ** 3
    peak_inst = gpus_inst * machine.fp64_peak_per_gpu * 1e12
    # collectives can only be overlapped with a stream-tagged library
    coll_overlap = opts.async_overlap and opts.use_rccl
    p2p_overlap = opts.async_overlap and opts.gpu_aware_mpi

    out: list[KernelTime] = []

    # ---- CF ----------------------------------------------------------------
    hx_flops = 2.0 * cx * npc * npc * ncells * N  # one Hamiltonian apply/instance
    cf_flops = cheb_degree * (hx_flops + 3.0 * cx * M * N)
    eff_cf = cf_block_efficiency(machine, opts.block_size, opts.use_tensor_cores)
    if not opts.optimal_routing:
        eff_cf *= _CF_ROUTING_PENALTY
    cf_compute = cf_flops / (peak_inst * eff_cf)
    m_loc = M / gpus_inst
    halo_bytes_node = (
        6.0 * m_loc ** (2.0 / 3.0) * opts.block_size * word * machine.gpus_per_node
    )
    n_msgs = cheb_degree * max(N / opts.block_size, 1.0)
    cf_comm = n_msgs * _p2p_halo_time(
        machine, halo_bytes_node, nodes_inst, opts, fp32=opts.mixed_precision
    )
    out.append(
        KernelTime(
            "CF", cf_flops * n_instances,
            _overlap(cf_compute, cf_comm, p2p_overlap, opts.overlap_residual),
        )
    )

    # ---- CholGS ------------------------------------------------------------
    gemm_rate = _gemm_rate(machine, gpus_inst, opts, small_scale=nodes_inst <= 1000)
    s_flops = cx * N * M * N  # alpha = 1 (Hermiticity exploited)
    s_comm = _allreduce_time(machine, N * N * word, nodes_inst, opts)
    out.append(
        KernelTime(
            "CholGS-S", s_flops * n_instances,
            _overlap(s_flops / gemm_rate, s_comm, coll_overlap, opts.overlap_residual),
        )
    )
    ci_time = _CI_SECONDS * (N / 1000.0) ** 1.5
    out.append(KernelTime("CholGS-CI", 0.0, ci_time))
    # triangular rotation X L^{-H}: alpha = 1 (half of a square GEMM)
    o_flops = cx * N * M * N
    out.append(KernelTime("CholGS-O", o_flops * n_instances, o_flops / gemm_rate))

    # ---- RR ----------------------------------------------------------------
    p_flops = cx * N * M * N + hx_flops
    p_compute = (cx * N * M * N) / gemm_rate + hx_flops / (peak_inst * eff_cf)
    p_comm = _allreduce_time(machine, N * N * word, nodes_inst, opts)
    out.append(
        KernelTime(
            "RR-P", p_flops * n_instances,
            _overlap(p_compute, p_comm, coll_overlap, opts.overlap_residual),
        )
    )
    out.append(KernelTime("RR-D", 0.0, _RRD_OVER_CI * ci_time))
    sr_flops = 2.0 * cx * N * M * N
    out.append(KernelTime("RR-SR", sr_flops * n_instances, sr_flops / gemm_rate))

    # ---- DC: nodal-to-quadrature interpolation GEMM + |psi|^2 reduction ----
    dc_flops = _DC_FLOP_FACTOR * hx_flops * n_instances
    dc_time = dc_flops / (
        nodes * machine.gpus_per_node * machine.fp64_peak_per_gpu * 1e12 * _DC_EFFICIENCY
    )
    out.append(KernelTime("DC", dc_flops, dc_time))

    # ---- DH + EP + Others ----------------------------------------------------
    others = _OTHERS_SECONDS * cx * (N / 1000.0) * np.log2(max(nodes, 2))
    out.append(KernelTime("DH+EP+Others", 0.0, others))
    return out


def modeled_scf_seconds(
    machine: MachineSpec,
    nodes: int,
    *,
    M: float,
    N: float,
    n_instances: int,
    npc: int,
    cheb_degree: int,
    complex_arith: bool,
    opts: ModelOptions | None = None,
) -> float:
    """Scalar tuner objective: modeled seconds of one SCF iteration.

    The autotuner (:mod:`repro.tune.sweep`) scores modeled candidates —
    node counts and ``ModelOptions.block_size`` — with the same
    least-seconds objective it applies to measured micro-probes; this is
    the scalar it minimizes (optionally weighted by the node count for a
    cost-to-solution pick).
    """
    kernels = kernel_times(
        machine,
        nodes,
        M=M,
        N=N,
        n_instances=n_instances,
        npc=npc,
        cheb_degree=cheb_degree,
        complex_arith=complex_arith,
        opts=opts,
    )
    return float(sum(k.seconds for k in kernels))
