"""Distributed Kohn-Sham operator: the SCF kernels over the virtual cluster.

Wraps :class:`repro.hpc.cluster.VirtualCluster` in the same interface as
:class:`repro.fem.assembly.KSOperator`, so the ChFES eigensolver (and any
other consumer of the operator API) runs its Hamiltonian applications
through the *distributed* owner-sum halo protocol — with optional FP32
boundary communication.  This is how the paper's mixed-precision claim is
validated at the eigensolver level: the distributed FP32-halo spectrum must
match the serial FP64 spectrum to well below the discretization error.
"""

from __future__ import annotations

import numpy as np

from repro.fem.mesh import Mesh3D
from repro.obs import trace_region
from repro.resilience import faults as _faults

from .cluster import VirtualCluster

__all__ = ["DistributedKSOperator"]


class DistributedKSOperator:
    """Drop-in KSOperator whose stiffness runs on P virtual ranks."""

    def __init__(
        self,
        mesh: Mesh3D,
        nranks: int,
        kfrac: tuple[float, float, float] | None = None,
        fp32_halo: bool = False,
    ) -> None:
        self.mesh = mesh
        self.cluster = VirtualCluster(mesh, nranks, kfrac=kfrac, fp32_halo=fp32_halo)
        self.dtype = self.cluster.stiff.dtype
        self._dinvsqrt = 1.0 / np.sqrt(mesh.mass_diag)
        self._v_free = np.zeros(mesh.ndof)

    @property
    def n(self) -> int:
        return self.mesh.ndof

    @property
    def traffic(self):
        """Communication meter of the underlying virtual cluster."""
        return self.cluster.traffic

    def set_potential(self, v_full: np.ndarray) -> None:
        """Set the effective potential from its full-node sampling."""
        if v_full.shape != (self.mesh.nnodes,):
            raise ValueError("potential must be sampled at all mesh nodes")
        self._v_free = np.ascontiguousarray(v_full[self.mesh.free])

    def apply(self, X: np.ndarray) -> np.ndarray:
        """Apply the Löwdin KS operator via the distributed stiffness."""
        squeeze = X.ndim == 1
        Xb = X[:, None] if squeeze else X
        with trace_region(
            "Distributed-apply", nranks=self.cluster.nranks, nvec=Xb.shape[1]
        ):
            full = np.zeros(
                (self.mesh.nnodes, Xb.shape[1]),
                dtype=np.result_type(self.dtype, Xb.dtype),
            )
            full[self.mesh.free] = self._dinvsqrt[self.mesh.free, None] * Xb
            out = self.cluster.apply_stiffness(full)
            y = 0.5 * self._dinvsqrt[self.mesh.free, None] * out[self.mesh.free]
            y += self._v_free[:, None] * Xb
        if _faults._PLAN is not None:  # reprochaos site (no-op unarmed)
            _faults.fault_point("ks_apply", y)
        return y[:, 0] if squeeze else y

    def diagonal(self) -> np.ndarray:
        """Diagonal of the operator (same as the serial KSOperator's)."""
        kd = self.cluster.stiff.diagonal_full()
        return 0.5 * (kd * self._dinvsqrt**2)[self.mesh.free] + self._v_free

    def kinetic_diagonal(self) -> np.ndarray:
        """Löwdin kinetic diagonal (MINRES preconditioner interface)."""
        kd = self.cluster.stiff.diagonal_full()
        return 0.5 * (kd * self._dinvsqrt**2)[self.mesh.free]
