"""Distributed Kohn-Sham operator: the SCF kernels over a rank cluster.

Wraps a rank backend — :class:`repro.hpc.cluster.VirtualCluster` (simulated
ranks, metered traffic) or :class:`repro.hpc.procranks.ProcRankCluster`
(real forked ranks over shared memory) — in the same interface as
:class:`repro.fem.assembly.KSOperator`, so the ChFES eigensolver (and any
other consumer of the operator API) runs its Hamiltonian applications
through the *distributed* owner-sum halo protocol, with optional FP32
boundary communication.  The two backends are bitwise identical, which is
how the paper's mixed-precision and overlap claims are validated at the
eigensolver level: spectra (and SCF energies) must match across backends
bit for bit, and the serial FP64 spectrum to well below the discretization
error.

The ``apply_begin`` / ``apply_finish`` pair is the operator-level half of
the compute/communication overlap: begin ships the block to the rank fleet
and immediately computes the local potential term while the halo exchange
and cell GEMMs are in flight; finish joins and assembles.  Both halves
perform the same arithmetic as the plain ``apply``, in the same operand
order, so overlapped and synchronous schedules are bit-for-bit equal.
"""

from __future__ import annotations

import numpy as np

from repro.fem.mesh import Mesh3D
from repro.obs import trace_region
from repro.resilience import faults as _faults

from .cluster import VirtualCluster

__all__ = ["DistributedKSOperator", "RANK_BACKENDS"]

#: selectable rank backends (``repro info`` reports these)
RANK_BACKENDS = ("virtual", "proc")


def _make_cluster(backend: str, mesh, nranks, kfrac, fp32_halo, overlap):
    if backend == "virtual":
        return VirtualCluster(mesh, nranks, kfrac=kfrac, fp32_halo=fp32_halo)
    if backend == "proc":
        from .procranks import ProcRankCluster

        return ProcRankCluster(
            mesh, nranks, kfrac=kfrac, fp32_halo=fp32_halo, overlap=overlap
        )
    raise ValueError(
        f"unknown rank backend {backend!r} (choose from {RANK_BACKENDS})"
    )


class DistributedKSOperator:
    """Drop-in KSOperator whose stiffness runs on P (virtual or real) ranks."""

    def __init__(
        self,
        mesh: Mesh3D,
        nranks: int,
        kfrac: tuple[float, float, float] | None = None,
        fp32_halo: bool = False,
        backend: str = "virtual",
        overlap: bool | None = None,
        ledger=None,
    ) -> None:
        self.mesh = mesh
        self.backend = backend
        self.cluster = _make_cluster(backend, mesh, nranks, kfrac, fp32_halo, overlap)
        self.dtype = self.cluster.stiff.dtype
        self.ledger = ledger
        self._dinvsqrt = 1.0 / np.sqrt(mesh.mass_diag)
        self._v_free = np.zeros(mesh.ndof)

    @property
    def n(self) -> int:
        return self.mesh.ndof

    @property
    def traffic(self):
        """Communication meter of the underlying cluster."""
        return self.cluster.traffic

    @property
    def overlap(self) -> bool:
        """Whether this operator's backend overlaps compute with halos."""
        return bool(self.cluster.overlap) and hasattr(
            self.cluster, "apply_stiffness_begin"
        )

    def set_potential(self, v_full: np.ndarray) -> None:
        """Set the effective potential from its full-node sampling."""
        if v_full.shape != (self.mesh.nnodes,):
            raise ValueError("potential must be sampled at all mesh nodes")
        self._v_free = np.ascontiguousarray(v_full[self.mesh.free])

    @property
    def potential_free(self) -> np.ndarray:
        return self._v_free

    def clone(self) -> "DistributedKSOperator":
        """Operator sharing the rank cluster but owning its potential.

        The parallel multi-channel ChFES gives each spin channel a clone;
        the shared cluster serializes concurrent applies internally (the
        process backend holds a lock across begin/finish), so clones are
        race-free by construction.
        """
        new = DistributedKSOperator.__new__(DistributedKSOperator)
        new.mesh = self.mesh
        new.backend = self.backend
        new.cluster = self.cluster
        new.dtype = self.dtype
        new.ledger = self.ledger
        new._dinvsqrt = self._dinvsqrt
        new._v_free = self._v_free.copy()
        return new

    def _lift(self, Xb: np.ndarray) -> np.ndarray:
        full = np.zeros(
            (self.mesh.nnodes, Xb.shape[1]),
            dtype=np.result_type(self.dtype, Xb.dtype),
        )
        full[self.mesh.free] = self._dinvsqrt[self.mesh.free, None] * Xb
        return full

    def apply(self, X: np.ndarray) -> np.ndarray:
        """Apply the Löwdin KS operator via the distributed stiffness."""
        squeeze = X.ndim == 1
        Xb = X[:, None] if squeeze else X
        with trace_region(
            "Distributed-apply", nranks=self.cluster.nranks, nvec=Xb.shape[1]
        ):
            out = self.cluster.apply_stiffness(self._lift(Xb))
            y = 0.5 * self._dinvsqrt[self.mesh.free, None] * out[self.mesh.free]
            y += self._v_free[:, None] * Xb
        if _faults._PLAN is not None:  # reprochaos site (no-op unarmed)
            _faults.fault_point("ks_apply", y)
        return y[:, 0] if squeeze else y

    def apply_begin(self, X: np.ndarray):
        """Start an overlapped apply: post the stiffness, compute ``V x``.

        The potential term — the only purely local arithmetic of the
        operator — is evaluated while the rank fleet runs the halo
        exchange and cell GEMMs.  Falls back to an eager ``apply`` when
        the backend cannot overlap; either way :meth:`apply_finish`
        completes the handle with bitwise-identical results.
        """
        begin = getattr(self.cluster, "apply_stiffness_begin", None)
        if begin is None or not self.cluster.overlap:
            return ("done", self.apply(X))
        squeeze = X.ndim == 1
        Xb = X[:, None] if squeeze else X
        pending = begin(self._lift(Xb))
        # overlapped with the in-flight halo exchange
        vX = self._v_free[:, None] * Xb
        return ("pending", pending, vX, squeeze)

    def apply_finish(self, handle) -> np.ndarray:
        """Join an overlapped apply started by :meth:`apply_begin`."""
        if handle[0] == "done":
            return handle[1]
        _, pending, vX, squeeze = handle
        with trace_region(
            "Distributed-apply", nranks=self.cluster.nranks, nvec=vX.shape[1]
        ):
            out = self.cluster.apply_stiffness_finish(pending)
            y = 0.5 * self._dinvsqrt[self.mesh.free, None] * out[self.mesh.free]
            y += vX
        if _faults._PLAN is not None:  # reprochaos site (no-op unarmed)
            _faults.fault_point("ks_apply", y)
        return y[:, 0] if squeeze else y

    def diagonal(self) -> np.ndarray:
        """Diagonal of the operator (same as the serial KSOperator's)."""
        kd = self.cluster.stiff.diagonal_full()
        return 0.5 * (kd * self._dinvsqrt**2)[self.mesh.free] + self._v_free

    def kinetic_diagonal(self) -> np.ndarray:
        """Löwdin kinetic diagonal (MINRES preconditioner interface)."""
        kd = self.cluster.stiff.diagonal_full()
        return 0.5 * (kd * self._dinvsqrt**2)[self.mesh.free]

    def close(self) -> None:
        """Release backend resources (worker fleet, shared segments)."""
        self.cluster.close()
