"""HPC substrate: FLOP accounting, machine models, virtual cluster, perf model."""

from .cluster import TrafficReport, VirtualCluster
from .distributed import DistributedKSOperator
from .flops import (
    FlopLedger,
    KernelTally,
    chebyshev_filter_flops,
    gemm_flops,
    projected_step_flops,
)
from .machine import CRUSHER, FRONTIER, MACHINES, PERLMUTTER, SUMMIT, MachineSpec
from .perfmodel import KernelTime, ModelOptions, cf_block_efficiency, kernel_times
from .runtime import (
    PAPER_WORKLOADS,
    ScfModel,
    Workload,
    scf_breakdown,
    strong_scaling,
    time_to_solution,
)

__all__ = [
    "CRUSHER",
    "DistributedKSOperator",
    "FRONTIER",
    "FlopLedger",
    "KernelTally",
    "KernelTime",
    "MACHINES",
    "MachineSpec",
    "ModelOptions",
    "PAPER_WORKLOADS",
    "PERLMUTTER",
    "SUMMIT",
    "ScfModel",
    "TrafficReport",
    "VirtualCluster",
    "Workload",
    "cf_block_efficiency",
    "chebyshev_filter_flops",
    "gemm_flops",
    "kernel_times",
    "projected_step_flops",
    "scf_breakdown",
    "strong_scaling",
    "time_to_solution",
]
