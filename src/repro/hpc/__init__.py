"""HPC substrate: FLOP accounting, machine models, virtual cluster, perf model."""

from .cluster import TrafficReport, VirtualCluster
from .distributed import DistributedKSOperator
from .flops import (
    FlopLedger,
    KernelTally,
    chebyshev_filter_flops,
    gemm_flops,
    projected_step_flops,
)
from .distributed import RANK_BACKENDS
from .machine import CRUSHER, FRONTIER, MACHINES, PERLMUTTER, SUMMIT, MachineSpec
from .perfmodel import (
    KernelTime,
    MeasuredOverlap,
    ModelOptions,
    calibrate_overlap,
    cf_block_efficiency,
    kernel_times,
    measured_overlap_residual,
)
from .runtime import (
    PAPER_WORKLOADS,
    ScfModel,
    Workload,
    scf_breakdown,
    strong_scaling,
    time_to_solution,
)

__all__ = [
    "CRUSHER",
    "DistributedKSOperator",
    "FRONTIER",
    "FlopLedger",
    "KernelTally",
    "KernelTime",
    "MACHINES",
    "MachineSpec",
    "MeasuredOverlap",
    "ModelOptions",
    "PAPER_WORKLOADS",
    "PERLMUTTER",
    "RANK_BACKENDS",
    "SUMMIT",
    "ScfModel",
    "TrafficReport",
    "VirtualCluster",
    "Workload",
    "calibrate_overlap",
    "cf_block_efficiency",
    "chebyshev_filter_flops",
    "gemm_flops",
    "kernel_times",
    "measured_overlap_residual",
    "projected_step_flops",
    "scf_breakdown",
    "strong_scaling",
    "time_to_solution",
]
