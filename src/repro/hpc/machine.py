"""Machine models of the supercomputers used in the paper (Sec 6.1).

Per-GPU (per-GCD for MI250X) FP64 peaks follow the paper: 23.9 TFLOPS per
Frontier/Crusher GCD (47.8 per MI250X), 7.8 TFLOPS per Summit V100, 9.7
TFLOPS per Perlmutter A100 (vector pipes; the A100's FP64 tensor cores add
a 2x multiplier the paper observed as >85% "efficiency" against vector
peak).  Bandwidths and latencies are public system numbers rounded to the
precision the roofline model needs.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["MachineSpec", "FRONTIER", "CRUSHER", "SUMMIT", "PERLMUTTER", "MACHINES"]


@dataclass(frozen=True)
class MachineSpec:
    """Per-node hardware model used by the performance estimator."""

    name: str
    gpus_per_node: int  #: GPUs (GCDs for MI250X) per node
    fp64_peak_per_gpu: float  #: TFLOPS, vector pipes
    fp64_tensor_multiplier: float  #: extra factor from FP64 matrix/tensor cores
    hbm_bw_per_gpu: float  #: TB/s
    node_injection_bw: float  #: GB/s into the interconnect per node
    allreduce_bw_mpich: float  #: GB/s effective per node, Cray-MPICH-class
    allreduce_bw_rccl: float  #: GB/s effective per node, NCCL/RCCL-class
    net_latency: float  #: seconds per message hop
    gemm_efficiency: float  #: fraction of FP64 peak for large dense GEMM
    cf_base_efficiency: float  #: asymptotic cell-GEMM efficiency before roofline
    dense_solver_rate: float  #: achievable TFLOPS for ScaLAPACK-class O(N^3)

    @property
    def node_fp64_peak(self) -> float:
        """Node FP64 peak in TFLOPS (vector)."""
        return self.gpus_per_node * self.fp64_peak_per_gpu

    def system_peak_pflops(self, nodes: int) -> float:
        return self.node_fp64_peak * nodes / 1e3

    @property
    def flops_per_byte_ratio(self) -> float:
        """Peak FLOPS / HBM bandwidth (the ratio the paper cites: Crusher
        is ~1.7x Summit, explaining the 1.4x CF efficiency drop)."""
        return self.fp64_peak_per_gpu * 1e12 / (self.hbm_bw_per_gpu * 1e12)


FRONTIER = MachineSpec(
    name="Frontier",
    gpus_per_node=8,  # GCDs
    fp64_peak_per_gpu=23.9,
    fp64_tensor_multiplier=1.0,  # MI250X matrix FP64 unverified in the paper
    hbm_bw_per_gpu=1.6,
    node_injection_bw=100.0,
    allreduce_bw_mpich=5.0,
    allreduce_bw_rccl=120.0,
    net_latency=4e-6,
    gemm_efficiency=0.55,
    cf_base_efficiency=0.72,
    dense_solver_rate=90.0,
)

CRUSHER = MachineSpec(
    name="Crusher",
    gpus_per_node=8,
    fp64_peak_per_gpu=23.9,
    fp64_tensor_multiplier=1.0,
    hbm_bw_per_gpu=1.6,
    node_injection_bw=100.0,
    allreduce_bw_mpich=5.0,
    allreduce_bw_rccl=120.0,
    net_latency=4e-6,
    gemm_efficiency=0.55,
    cf_base_efficiency=0.72,
    dense_solver_rate=90.0,
)

SUMMIT = MachineSpec(
    name="Summit",
    gpus_per_node=6,
    fp64_peak_per_gpu=7.8,
    fp64_tensor_multiplier=1.0,
    hbm_bw_per_gpu=0.9,
    node_injection_bw=25.0,
    allreduce_bw_mpich=4.0,
    allreduce_bw_rccl=60.0,
    net_latency=3e-6,
    gemm_efficiency=0.62,
    cf_base_efficiency=0.80,
    dense_solver_rate=40.0,
)

PERLMUTTER = MachineSpec(
    name="Perlmutter",
    gpus_per_node=4,
    fp64_peak_per_gpu=9.7,
    fp64_tensor_multiplier=1.45,  # achieved FP64 tensor-core gain (paper: 85.7% of vector peak)
    hbm_bw_per_gpu=1.55,
    node_injection_bw=25.0,
    allreduce_bw_mpich=5.0,
    allreduce_bw_rccl=80.0,
    net_latency=3e-6,
    gemm_efficiency=0.65,
    cf_base_efficiency=0.82,
    dense_solver_rate=45.0,
)

MACHINES = {m.name: m for m in (FRONTIER, CRUSHER, SUMMIT, PERLMUTTER)}
