"""Exascale run modeling for the paper's benchmark systems (Tables 1-3).

Couples the workload parameters of the paper's systems (FE DoF, eigenstates,
k-points, FE degree) to the kernel-level performance model, producing the
per-SCF breakdowns, sustained PFLOPS, strong-scaling curves and
time-to-solution that the benchmark harness compares against the published
numbers.
"""

from __future__ import annotations

from dataclasses import dataclass

from .machine import MachineSpec
from .perfmodel import KernelTime, ModelOptions, kernel_times

__all__ = [
    "Workload",
    "ScfModel",
    "PAPER_WORKLOADS",
    "invdft_iteration_time",
    "scf_breakdown",
    "strong_scaling",
    "time_to_solution",
]


@dataclass(frozen=True)
class Workload:
    """Parameters of one benchmark system's eigenproblem."""

    name: str
    natoms: int
    electrons_per_kpt: int
    n_kpoints: int
    M: float  #: FE degrees of freedom
    fe_degree: int
    n_instances: int  #: concurrent eigensolver instances (k x band groups)
    N_per_instance: float  #: wavefunctions per instance
    cheb_degree: int
    complex_arith: bool

    @property
    def total_electrons(self) -> int:
        return self.electrons_per_kpt * self.n_kpoints

    @property
    def npc(self) -> int:
        return (self.fe_degree + 1) ** 3


def _mgy_workload(name, natoms, e_per_k, nk, M, cheb=23) -> Workload:
    """Mg-Y alloy systems.

    ``M`` is pinned per system: 96e6 FE DoF for DislocMgY (paper Sec 5.4.1)
    and ~22,924 DoF/atom for the TwinDislocMgY family (1.7e9 DoF at 74,164
    atoms, paper Fig 6).  The per-instance eigenstate count is N = 0.289 x
    (electrons per k-point), which reproduces the paper's Sec 6.3 aggregate
    FLOP counts (e.g. CholGS-S of TwinDislocMgY(C): 4 N^2 M x 4 k-points =
    5.44e19 = 54,429 PFLOP, matching Table 3's 54,428.9).
    """
    N = 0.289 * e_per_k
    return Workload(
        name=name, natoms=natoms, electrons_per_kpt=e_per_k, n_kpoints=nk,
        M=M, fe_degree=8, n_instances=nk, N_per_instance=N,
        cheb_degree=cheb, complex_arith=True,
    )


_TWIN_DOF_PER_ATOM = 1.7e9 / 74164.0

PAPER_WORKLOADS: dict[str, Workload] = {
    "DislocMgY": _mgy_workload("DislocMgY", 6016, 12041, 2, 96e6),
    "TwinDislocMgY(A)": _mgy_workload(
        "TwinDislocMgY(A)", 36344, 75667, 4, 36344 * _TWIN_DOF_PER_ATOM
    ),
    "TwinDislocMgY(B)": _mgy_workload(
        "TwinDislocMgY(B)", 74164, 154781, 3, 1.7e9
    ),
    "TwinDislocMgY(C)": _mgy_workload(
        "TwinDislocMgY(C)", 74164, 154781, 4, 1.7e9
    ),
    # YbCd quasicrystal nanoparticle: isolated (Gamma-only, real arithmetic)
    "YbCdQC": Workload(
        name="YbCdQC", natoms=1943, electrons_per_kpt=40040, n_kpoints=1,
        M=75_069_290.0, fe_degree=7, n_instances=1,
        N_per_instance=40040 / 2 * 1.15, cheb_degree=60, complex_arith=False,
    ),
    # invDFT benchmark molecule (ortho-benzyne analog, Sec 7.1.1):
    # all-electron adaptive mesh (large M), eigensolve + blocked adjoint
    # applies folded into an effective filter degree
    "OrthoBenzyne": Workload(
        name="OrthoBenzyne", natoms=10, electrons_per_kpt=28, n_kpoints=1,
        M=2.3e8, fe_degree=6, n_instances=1, N_per_instance=250.0,
        cheb_degree=200, complex_arith=False,
    ),
}


@dataclass
class ScfModel:
    """Modeled single-SCF-iteration performance."""

    workload: Workload
    machine: MachineSpec
    nodes: int
    kernels: list[KernelTime]

    @property
    def wall_time(self) -> float:
        return sum(k.seconds for k in self.kernels)

    @property
    def counted_pflop(self) -> float:
        return sum(k.flops for k in self.kernels) / 1e15

    @property
    def sustained_pflops(self) -> float:
        return self.counted_pflop / self.wall_time

    @property
    def peak_fraction(self) -> float:
        return self.sustained_pflops / self.machine.system_peak_pflops(self.nodes)

    def table_rows(self) -> list[tuple[str, float, float, float]]:
        """(kernel, seconds, PFLOP, PFLOPS) rows like Table 3."""
        rows = []
        for k in self.kernels:
            rows.append((k.name, k.seconds, k.flops / 1e15, k.pflops() / 1.0))
        return rows


def scf_breakdown(
    workload: Workload,
    machine: MachineSpec,
    nodes: int,
    opts: ModelOptions | None = None,
) -> ScfModel:
    """Model one SCF iteration of ``workload`` on ``nodes`` of ``machine``."""
    kernels = kernel_times(
        machine,
        nodes,
        M=workload.M,
        N=workload.N_per_instance,
        n_instances=workload.n_instances,
        npc=workload.npc,
        cheb_degree=workload.cheb_degree,
        complex_arith=workload.complex_arith,
        opts=opts,
    )
    return ScfModel(workload=workload, machine=machine, nodes=nodes, kernels=kernels)


def strong_scaling(
    workload: Workload,
    machine: MachineSpec,
    node_counts: list[int],
    opts: ModelOptions | None = None,
) -> list[tuple[int, float, float]]:
    """(nodes, wall_time_per_scf, scaling_efficiency) over ``node_counts``.

    Efficiency is relative to ideal scaling from the smallest node count.
    """
    results = []
    base = None
    for n in node_counts:
        m = scf_breakdown(workload, machine, n, opts)
        if base is None:
            base = (n, m.wall_time)
        eff = (base[1] * base[0]) / (m.wall_time * n)
        results.append((n, m.wall_time, eff))
    return results


def invdft_iteration_time(
    workload: Workload,
    machine: MachineSpec,
    nodes: int,
    n_minres: int = 300,
    opts: ModelOptions | None = None,
) -> float:
    """Modeled wall time of one invDFT optimization iteration (Fig 7).

    One iteration = a KS eigensolve + projected block-MINRES adjoint solves.
    The bulk compute reuses the SCF kernel model; the sequential MINRES
    recurrence adds a latency-bound overhead per iteration (two reduction
    collectives + halo exchange per step) that grows with the node count —
    this is what bends the strong-scaling curve away from ideal in the
    paper's Fig 7 (104 s -> 20 s over 4 -> 32 nodes, a 5.2x speedup).
    """
    m = scf_breakdown(workload, machine, nodes, opts)
    lat_scale = machine.net_latency / 3e-6
    overhead = n_minres * lat_scale * (1.0e-3 + 9.0e-4 * nodes)
    return m.wall_time + overhead


def time_to_solution(
    workload: Workload,
    machine: MachineSpec,
    nodes: int,
    n_scf: int = 34,
    opts: ModelOptions | None = None,
) -> dict:
    """Full ground-state time model (Table 2 structure).

    Initialization covers mesh/partition setup, atomic-density superposition
    and the extra filtering passes of the first SCF step.
    """
    m = scf_breakdown(workload, machine, nodes, opts)
    extra_first_scf = 4.0 * next(k.seconds for k in m.kernels if k.name == "CF")
    init = 0.35 * m.wall_time + 0.5 * extra_first_scf
    total_scf = n_scf * m.wall_time + extra_first_scf
    return {
        "initialization": init,
        "total_scf": total_scf,
        "n_scf": n_scf,
        "total": init + total_scf,
        "per_scf": m.wall_time,
        "sustained_pflops": m.sustained_pflops,
        "peak_fraction": m.peak_fraction,
    }
