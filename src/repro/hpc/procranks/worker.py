"""Rank worker: the per-process side of the shared-memory halo protocol.

Each rank runs :func:`worker_main` in a forked child.  The parent posts a
command (apply / allreduce / remap / shutdown) into the control slab and
releases the rank's command semaphore; the worker executes it against the
shared arena and releases the counted done semaphore.

The apply reproduces :meth:`repro.hpc.cluster.VirtualCluster.apply_stiffness`
rank-for-rank, bit for bit:

* cells are applied **boundary-first** in the partition's reordered cell
  list, so the per-node ``np.add.at`` accumulation order matches the
  virtual cluster exactly whether or not the interior pass is overlapped
  with the exchange;
* partial sums bound for other owners are (optionally) rounded through
  FP32 — the paper's Sec 5.4.2 halo precision — *before* they hit the
  wire, exactly where the virtual cluster rounds them;
* the owner adds received payloads in increasing sender rank order, the
  same order the virtual cluster's ``y += local`` loop realizes.

Overlap mode posts the ghost sends right after the boundary pass and runs
the interior cells while neighbor payloads are in flight; synchronous mode
(``REPRO_OVERLAP=0``) finishes all compute first.  Both orders perform the
identical arithmetic on identical operands, so they are bitwise equal —
only the *schedule* differs, which is what the phase timings measure.
"""

from __future__ import annotations

import sys
import traceback
from dataclasses import dataclass, field

import numpy as np

from repro.hpc.cluster import apply_cells
from repro.obs import Stopwatch
from repro.precision import f32_dtype

from .arena import SharedArena

__all__ = [
    "OP_APPLY",
    "OP_ALLREDUCE",
    "OP_REMAP",
    "OP_SHUTDOWN",
    "PH_BOUNDARY",
    "PH_INTERIOR",
    "PH_WAIT",
    "PH_RECV",
    "PH_TOTAL",
    "CTRL_COLS",
    "TIM_COLS",
    "RankPlan",
    "build_plans",
    "worker_main",
]

# control slab columns (int64, one row per rank)
C_OPCODE, C_SEQ, C_B, C_GEN, C_OVERLAP, C_NBYTES, C_SPARE, C_STATUS = range(8)
CTRL_COLS = 8
OP_APPLY, OP_ALLREDUCE, OP_REMAP, OP_SHUTDOWN = 1, 2, 3, 4

# timing slab columns (float64 seconds, one row per rank)
PH_BOUNDARY, PH_INTERIOR, PH_WAIT, PH_RECV, PH_TOTAL, PH_SEQ = range(6)
TIM_COLS = 8


@dataclass
class RankPlan:
    """Everything rank ``r`` needs to run its side of the halo protocol.

    Built in the parent before the fork; workers inherit it by reference
    (fork start method), so the mesh connectivity and cell stiffness data
    are shared copy-on-write rather than pickled.
    """

    rank: int
    nranks: int
    nnodes: int
    #: this rank's cells, boundary-first (the partition's reordered list)
    cells: np.ndarray
    #: how many leading ``cells`` touch a halo node
    n_boundary: int
    #: global nodes this rank owns (sorted)
    owned: np.ndarray
    #: halo nodes this rank touches but does not own (FP32 rounding set)
    remote: np.ndarray
    #: outgoing edges: (dst_rank, global nodes shipped), increasing dst
    send_edges: list[tuple[int, np.ndarray]] = field(default_factory=list)
    #: incoming edges: (src_rank, nodes, positions within ``owned``),
    #: increasing src — the owner-sum accumulation order
    recv_edges: list[tuple[int, np.ndarray, np.ndarray]] = field(default_factory=list)
    fp32_halo: bool = False
    #: mesh connectivity and cell stiffness, shared via fork
    conn: np.ndarray | None = None
    stiff: object | None = None


def build_plans(partition, stiff, fp32_halo: bool) -> list[RankPlan]:
    """One :class:`RankPlan` per rank of ``partition``."""
    nranks = len(partition.cells_of_rank)
    conn = partition.mesh.conn
    owner = partition.owner
    plans = []
    for r in range(nranks):
        halo = partition.halo_nodes_of_rank(r)
        owned = partition.owned_nodes(r)
        plan = RankPlan(
            rank=r,
            nranks=nranks,
            nnodes=partition.mesh.nnodes,
            cells=partition.cells_of_rank[r],
            n_boundary=partition.n_boundary_of_rank[r],
            owned=owned,
            remote=halo[owner[halo] != r],
            fp32_halo=fp32_halo,
            conn=conn,
            stiff=stiff,
        )
        for dst in range(nranks):
            if dst == r:
                continue
            out_nodes = partition.send_nodes(r, dst)
            if out_nodes.size:
                plan.send_edges.append((dst, out_nodes))
            in_nodes = partition.send_nodes(dst, r)
            if in_nodes.size:
                pos = np.searchsorted(owned, in_nodes)
                plan.recv_edges.append((dst, in_nodes, pos))
        plans.append(plan)
    return plans


def _allreduce_chunk(nbytes: int, rank: int, nranks: int) -> tuple[int, int]:
    """Byte range rank ``rank`` carries in the reduce-scatter/allgather."""
    base, rem = divmod(nbytes, nranks)
    lo = rank * base + min(rank, rem)
    return lo, lo + base + (1 if rank < rem else 0)


class _Views:
    """The worker's attached ndarray views of the current generation."""

    def __init__(self, arena: SharedArena, plan: RankPlan, gen: int,
                 bcap: int, ar_bytes: int, dtype) -> None:
        self.gen = gen
        self.bcap = bcap
        g = f"g{gen}"
        self.x = arena.attach(f"x-{g}", (plan.nnodes, bcap), dtype)
        self.y = arena.attach(f"y-{g}", (plan.nnodes, bcap), dtype)
        self.ar_in = arena.attach(f"ari-{g}", (max(ar_bytes, 1),), np.uint8)
        self.ar_out = arena.attach(f"aro-{g}", (max(ar_bytes, 1),), np.uint8)
        self.send = {
            dst: arena.attach(f"edge-{plan.rank}-{dst}-{g}", (2, nodes.size, bcap), dtype)
            for dst, nodes in plan.send_edges
        }
        self.recv = {
            src: arena.attach(f"edge-{src}-{plan.rank}-{g}", (2, nodes.size, bcap), dtype)
            for src, nodes, _ in plan.recv_edges
        }

    def drop(self, arena: SharedArena, plan: RankPlan) -> None:
        g = f"g{self.gen}"
        for tag in [f"x-{g}", f"y-{g}", f"ari-{g}", f"aro-{g}"]:
            arena.drop(tag)
        for dst, _ in plan.send_edges:
            arena.drop(f"edge-{plan.rank}-{dst}-{g}")
        for src, _, _ in plan.recv_edges:
            arena.drop(f"edge-{src}-{plan.rank}-{g}")


def _do_apply(plan: RankPlan, views: _Views, links, ctrl_row, tim_row) -> None:
    """One distributed stiffness application on this rank."""
    sw_total = Stopwatch()
    seq = int(ctrl_row[C_SEQ])
    B = int(ctrl_row[C_B])
    overlap = bool(ctrl_row[C_OVERLAP])
    slot = seq % 2
    X = views.x[:, :B]
    dtype = views.x.dtype
    local = np.zeros((plan.nnodes, B), dtype=dtype)
    conn, stiff = plan.conn, plan.stiff
    nb = plan.n_boundary

    sw = Stopwatch()
    if nb:
        bcells = plan.cells[:nb]
        np.add.at(local, conn[bcells].ravel(), apply_cells(stiff, X, conn, bcells).reshape(-1, B))  # reprolint: disable=R010
    t_boundary = sw.restart()

    t_interior = 0.0
    if not overlap and nb < plan.cells.size:
        sw.restart()
        icells = plan.cells[nb:]
        np.add.at(local, conn[icells].ravel(), apply_cells(stiff, X, conn, icells).reshape(-1, B))  # reprolint: disable=R010
        t_interior = sw.restart()

    # FP32 halo downcast (paper Sec 5.4.2): only the partials crossing the
    # rank boundary are rounded, exactly as the virtual cluster rounds them.
    # Halo nodes receive no interior-cell contributions, so these values are
    # final right after the boundary pass.
    if plan.fp32_halo and plan.remote.size:
        f32 = f32_dtype(dtype)
        local[plan.remote] = local[plan.remote].astype(f32).astype(dtype)

    # post the ghost sends: double-buffered bounded channel per edge
    for dst, nodes in plan.send_edges:
        links.edge_free[(plan.rank, dst)].acquire()
        views.send[dst][slot, :, :B] = local[nodes]
        links.edge_data[(plan.rank, dst)].release()

    if overlap and nb < plan.cells.size:
        # interior compute proceeds while neighbor payloads are in flight
        sw.restart()
        icells = plan.cells[nb:]
        np.add.at(local, conn[icells].ravel(), apply_cells(stiff, X, conn, icells).reshape(-1, B))  # reprolint: disable=R010
        t_interior = sw.restart()

    # owner-sum: own contribution first (the owner is the lowest touching
    # rank), then received payloads in increasing sender order — the same
    # per-node accumulation order as the virtual cluster's y += local loop
    y_own = local[plan.owned]
    t_wait = 0.0
    t_recv = 0.0
    sw.restart()
    for src, _, pos in plan.recv_edges:
        links.edge_data[(src, plan.rank)].acquire()
        t_wait += sw.restart()
        y_own[pos] += views.recv[src][slot, :, :B]
        links.edge_free[(src, plan.rank)].release()
        t_recv += sw.restart()
    views.y[:, :B][plan.owned] = y_own

    tim_row[PH_BOUNDARY] = t_boundary
    tim_row[PH_INTERIOR] = t_interior
    tim_row[PH_WAIT] = t_wait
    tim_row[PH_RECV] = t_recv
    tim_row[PH_TOTAL] = sw_total.elapsed()
    tim_row[PH_SEQ] = float(seq)


def worker_main(plan: RankPlan, uid: str, links, bcap: int, ar_bytes: int, dtype) -> None:
    """Entry point of one forked rank worker: wait, execute, acknowledge."""
    arena = SharedArena(uid=uid, create=False)
    ctrl = arena.attach("ctrl", (plan.nranks, CTRL_COLS), np.int64)
    tim = arena.attach("tim", (plan.nranks, TIM_COLS), np.float64)
    views = _Views(arena, plan, 0, bcap, ar_bytes, dtype)
    row = ctrl[plan.rank]
    tim_row = tim[plan.rank]
    try:
        while True:
            links.cmd[plan.rank].acquire()
            op = int(row[C_OPCODE])
            try:
                if op == OP_SHUTDOWN:
                    links.done.release()
                    break
                if op == OP_REMAP:
                    views.drop(arena, plan)
                    views = _Views(
                        arena, plan, int(row[C_GEN]), int(row[C_B]),
                        int(row[C_NBYTES]), dtype,
                    )
                elif op == OP_APPLY:
                    _do_apply(plan, views, links, row, tim_row)
                elif op == OP_ALLREDUCE:
                    lo, hi = _allreduce_chunk(int(row[C_NBYTES]), plan.rank, plan.nranks)
                    views.ar_out[lo:hi] = views.ar_in[lo:hi]
                row[C_STATUS] = 0
            # the crash-to-status boundary of the rank protocol: a worker
            # failure is reported via C_STATUS and re-raised on the parent
            # side as a structured ResilienceError by _wait_done
            except Exception:  # reprolint: disable=R011
                traceback.print_exc(file=sys.stderr)
                row[C_STATUS] = 1
            links.done.release()
    finally:
        arena.close()
