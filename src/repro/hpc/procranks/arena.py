"""SharedArena: named shared-memory segments with an explicit lifecycle.

The process-level rank backend moves halo and collective traffic through
``multiprocessing.shared_memory`` segments: the full-node input block, the
owned-DoF output slab, one double-buffered ghost region per directed halo
edge, a raw byte channel for collectives, and small control/timing slabs.
``SharedArena`` is the one place those segments are created, attached, and
unlinked:

* the **creator** (the parent process) calls :meth:`create`; every segment
  is registered with a ``weakref.finalize`` so that even an abandoned arena
  unlinks its backing files — the leak guard test asserts ``/dev/shm`` is
  clean after normal exit, an exception, and a killed worker;
* **workers** attach by name with :meth:`attach`; attached segments are
  never unlinked by the worker.  Workers are *forked*, so they share the
  parent's ``resource_tracker`` — each name is tracked exactly once and
  removed by the creator's unlink, which also means a crashed parent still
  gets its segments reaped by the tracker at interpreter exit.

reprolint rule R017 pins ``SharedMemory`` construction to this module.
"""

from __future__ import annotations

import os
import pathlib
import uuid
import weakref
from multiprocessing import shared_memory

import numpy as np

__all__ = ["SharedArena"]

#: prefix of every segment name this repository creates (leak-guard key)
ARENA_PREFIX = "reproarena"


def _release_segments(segments: dict[str, shared_memory.SharedMemory], creator: bool) -> None:
    """Close (and for the creator, unlink) every live segment.

    Runs from ``SharedArena.close`` and from the arena finalizer.  A close
    can raise ``BufferError`` while numpy views are still alive; the unlink
    — which is what actually removes the ``/dev/shm`` file — is attempted
    regardless, so a leaked view delays memory reclamation only until the
    mappings die with the process, never the name.
    """
    for shm in list(segments.values()):
        try:
            shm.close()
        except BufferError:  # reprolint: disable=R005 -- view still mapped
            pass
        if creator:
            try:
                shm.unlink()
            except FileNotFoundError:  # reprolint: disable=R005 -- already reaped
                pass
    segments.clear()


class SharedArena:
    """A family of named shared-memory segments with one owner.

    Segment names are ``{ARENA_PREFIX}-{uid}-{tag}``; the ``uid`` is minted
    by the creating arena and handed to workers, which attach to the same
    names with ``create=False``.
    """

    def __init__(self, uid: str | None = None, create: bool = True) -> None:
        self.creator = create
        if create:
            self.uid = uid if uid is not None else f"{os.getpid():x}-{uuid.uuid4().hex[:8]}"
        else:
            if uid is None:
                raise ValueError("attaching arenas need the creator's uid")
            self.uid = uid
        self._segments: dict[str, shared_memory.SharedMemory] = {}
        self._views: dict[str, np.ndarray] = {}
        self._finalizer = weakref.finalize(
            self, _release_segments, self._segments, create
        )

    def name_of(self, tag: str) -> str:
        return f"{ARENA_PREFIX}-{self.uid}-{tag}"

    def create(self, tag: str, shape: tuple[int, ...], dtype) -> np.ndarray:
        """Create segment ``tag`` and return a zeroed ndarray view of it."""
        if not self.creator:
            raise RuntimeError("attached arenas cannot create segments")
        if tag in self._segments:
            raise ValueError(f"segment {tag!r} already exists in this arena")
        nbytes = max(1, int(np.prod(shape)) * np.dtype(dtype).itemsize)
        shm = shared_memory.SharedMemory(
            name=self.name_of(tag), create=True, size=nbytes
        )
        self._segments[tag] = shm
        view = np.ndarray(shape, dtype=dtype, buffer=shm.buf)
        view[...] = 0
        self._views[tag] = view
        return view

    def attach(self, tag: str, shape: tuple[int, ...], dtype) -> np.ndarray:
        """Attach to an existing segment and return an ndarray view.

        Attaching registers the name with the (fork-shared) resource
        tracker, where it already lives from the creator's ``create`` —
        the tracker's cache is a set, so this is idempotent, and only the
        creator's unlink removes it.  No unregister happens here: with a
        shared tracker, a worker unregistering would strip the creator's
        entry and break the crash backstop.
        """
        if tag in self._segments:
            return self._views[tag]
        shm = shared_memory.SharedMemory(name=self.name_of(tag))
        self._segments[tag] = shm
        view = np.ndarray(shape, dtype=dtype, buffer=shm.buf)
        self._views[tag] = view
        return view

    def view(self, tag: str) -> np.ndarray:
        return self._views[tag]

    def drop(self, tag: str) -> None:
        """Close (and for the creator, unlink) one segment."""
        shm = self._segments.pop(tag, None)
        self._views.pop(tag, None)
        if shm is None:
            return
        try:
            shm.close()
        except BufferError:  # reprolint: disable=R005 -- view still mapped
            pass
        if self.creator:
            try:
                shm.unlink()
            except FileNotFoundError:  # reprolint: disable=R005 -- already reaped
                pass

    @property
    def tags(self) -> list[str]:
        return sorted(self._segments)

    def close(self) -> None:
        """Release every segment now (idempotent; also runs at GC/exit)."""
        self._views.clear()
        _release_segments(self._segments, self.creator)

    def __enter__(self) -> "SharedArena":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    @staticmethod
    def live_segment_names(uid: str | None = None) -> list[str]:
        """Names of arena-created segments currently backing ``/dev/shm``.

        The leak-guard tests call this after tearing a cluster down — the
        list must be empty.  ``uid`` restricts the scan to one arena.
        """
        root = pathlib.Path("/dev/shm")
        if not root.is_dir():  # non-Linux: nothing enumerable to guard
            return []
        prefix = ARENA_PREFIX if uid is None else f"{ARENA_PREFIX}-{uid}"
        return sorted(p.name for p in root.iterdir() if p.name.startswith(prefix))
