"""Process-level rank backend: real shared-memory halo exchange.

``repro.hpc.procranks`` promotes the domain-decomposed solver from
*simulated* ranks (:class:`repro.hpc.VirtualCluster`, one process, metered
traffic) to **real** ranks: P forked OS processes moving halo and
collective payloads through named ``multiprocessing.shared_memory``
segments, with asynchronous compute/communication overlap in the apply.

Layout:

* :mod:`.arena` — :class:`SharedArena`, the one sanctioned home of
  ``SharedMemory`` creation (reprolint R017), leak-proof via finalizers;
* :mod:`.worker` — the per-rank plan and forked worker loop;
* :mod:`.cluster` — :class:`ProcRankCluster`, the drop-in
  ``VirtualCluster`` replacement selected with ``backend="proc"``.

The backend is bitwise-identical to the virtual cluster, overlap on or
off — the partition-invariance suite asserts it down to the SCF energies.
"""

from .arena import SharedArena
from .cluster import ProcRankCluster, overlap_from_env
from .worker import RankPlan, build_plans

__all__ = [
    "ProcRankCluster",
    "RankPlan",
    "SharedArena",
    "build_plans",
    "overlap_from_env",
]
