"""ProcRankCluster: P ranks as real OS processes over shared memory.

The process-level counterpart of :class:`repro.hpc.cluster.VirtualCluster`:
same partition, same owner-sum halo protocol, same traffic metering — but
the ranks are forked workers and the halo/collective payloads actually move
through named shared-memory segments (:class:`.arena.SharedArena`).

Bitwise contract: for any input block, ``apply_stiffness`` returns the
same bits as the virtual cluster, overlap on or off.  The partition orders
every rank's cells boundary-first, both backends apply cells through the
shared :func:`repro.hpc.cluster.apply_cells` in the same two passes, halo
partials are FP32-rounded at the same point, and owners accumulate
received payloads in increasing sender order — only the *schedule*
(interior compute concurrent with in-flight ghosts) differs.

Synchronization is blocking-semaphore based, deliberately: per-worker
command semaphores, one counted done semaphore, and per-directed-edge
data/free semaphore pairs guarding double-buffered ghost regions (a
bounded channel of depth 2).  There is no global barrier inside an apply;
the parent only joins on the done count to read the output slab.  Nothing
spins — on an oversubscribed host (the CI box has a single core) the
workers time-slice instead of starving each other.

``REPRO_OVERLAP=0`` (read once, at construction — hot paths never touch
the environment) selects the synchronous schedule, bit-for-bit equal to
the overlapped one.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
from dataclasses import dataclass

import numpy as np

from repro.fem.mesh import Mesh3D
from repro.obs import add_counter
from repro.resilience import ResilienceError
from repro.resilience import faults as _faults
from repro.tools import sanitize as _sanitize

from ..cluster import VirtualCluster
from .arena import SharedArena
from . import worker as W

__all__ = [
    "ProcRankCluster",
    "overlap_from_env",
    "pin_workers",
    "pinning_from_env",
]

#: timing-slab phases exposed by :meth:`ProcRankCluster.phase_report`
PHASE_NAMES = ("boundary_s", "interior_s", "halo_wait_s", "recv_s", "apply_total_s")


def overlap_from_env(default: bool = True) -> bool:
    """Resolve the ``REPRO_OVERLAP`` knob (constructor-time only)."""
    raw = os.environ.get("REPRO_OVERLAP")
    if raw is None:
        return default
    return raw.strip().lower() not in ("0", "false", "off", "no")


def pinning_from_env(default: bool = True) -> bool:
    """Resolve the ``REPRO_PIN`` knob (constructor-time only)."""
    raw = os.environ.get("REPRO_PIN")
    if raw is None:
        return default
    return raw.strip().lower() not in ("0", "false", "off", "no")


def pin_workers(pids: list[int]) -> dict[int, int]:
    """Pin worker processes to cores, round-robin over the allowed set.

    Rank workers are long-lived compute processes; letting the kernel
    migrate them across cores costs cache warmth on every halo-exchange
    wakeup.  Pinning is strictly best-effort and never load-bearing:

    - skipped when the platform has no ``sched_setaffinity`` (macOS),
    - skipped when the parent's allowed CPU set has fewer than two
      cores (pinning P workers onto one core just serializes them
      harder than the scheduler would),
    - disabled by ``REPRO_PIN=0``,
    - an ``OSError`` from the kernel (e.g. a worker already exited)
      leaves that worker unpinned.

    Returns the ``{pid: core}`` placements that actually applied.
    """
    placements: dict[int, int] = {}
    if not hasattr(os, "sched_setaffinity"):  # pragma: no cover - macOS
        return placements
    try:
        allowed = sorted(os.sched_getaffinity(0))
    except OSError:  # pragma: no cover - exotic kernels
        return placements
    if len(allowed) < 2:
        return placements
    for i, pid in enumerate(pids):
        core = allowed[i % len(allowed)]
        try:
            os.sched_setaffinity(pid, {core})
        except OSError:  # pragma: no cover - worker raced away
            add_counter("procranks.pin_failed", 1.0)
        else:
            placements[pid] = core
    return placements


class _Links:
    """Fork-inherited semaphores linking the parent and its workers."""

    def __init__(self, ctx, nranks: int, edges: list[tuple[int, int]]) -> None:
        self.cmd = [ctx.Semaphore(0) for _ in range(nranks)]
        self.done = ctx.Semaphore(0)
        # bounded double-buffered channel per directed halo edge
        self.edge_data = {e: ctx.Semaphore(0) for e in edges}
        self.edge_free = {e: ctx.Semaphore(2) for e in edges}


@dataclass
class _ApplyHandle:
    """In-flight distributed apply (between begin and finish)."""

    kind: str  # "pending" | "done"
    B: int = 0
    squeeze: bool = False
    y: np.ndarray | None = None


class ProcRankCluster(VirtualCluster):
    """P forked rank processes executing the halo protocol for real."""

    backend = "proc"

    #: seconds to wait for the worker fleet before declaring it lost
    _DONE_TIMEOUT = 120.0

    def __init__(
        self,
        mesh: Mesh3D,
        nranks: int,
        kfrac: tuple[float, float, float] | None = None,
        fp32_halo: bool = False,
        overlap: bool | None = None,
        block_capacity: int = 16,
        allreduce_capacity: int = 1 << 16,
    ) -> None:
        super().__init__(mesh, nranks, kfrac=kfrac, fp32_halo=fp32_halo)
        self.overlap = overlap_from_env() if overlap is None else bool(overlap)
        self._dtype = np.dtype(np.result_type(self.stiff.dtype, np.float64))
        self._lock = threading.RLock()
        self._closed = False
        self._seq = 0
        self._gen = 0
        self._bcap = max(1, int(block_capacity))
        self._ar_bytes = max(1, int(allreduce_capacity))
        self._plans = W.build_plans(self.partition, self.stiff, fp32_halo)
        self._remote_of_rank = [
            halo[self._owner[halo] != r] for r, halo in enumerate(self._halo_of_rank)
        ]
        self._phase_totals = np.zeros((self.nranks, W.TIM_COLS))
        self._applies = 0

        self.arena = SharedArena()
        self._ctrl = self.arena.create("ctrl", (self.nranks, W.CTRL_COLS), np.int64)
        self._tim = self.arena.create("tim", (self.nranks, W.TIM_COLS), np.float64)
        self._create_gen_segments()

        edges = [
            (p.rank, dst) for p in self._plans for dst, _ in p.send_edges
        ]
        ctx = multiprocessing.get_context("fork")
        self._links = _Links(ctx, self.nranks, edges)
        self._workers = [
            ctx.Process(
                target=W.worker_main,
                args=(
                    self._plans[r], self.arena.uid, self._links,
                    self._bcap, self._ar_bytes, self._dtype,
                ),
                name=f"repro-rank-{r}",
                daemon=True,
            )
            for r in range(self.nranks)
        ]
        for p in self._workers:
            p.start()
        #: {pid: core} placements that actually applied (empty when
        #: pinning was skipped or ``REPRO_PIN=0`` disabled it)
        self.pinned: dict[int, int] = (
            pin_workers([p.pid for p in self._workers])
            if pinning_from_env()
            else {}
        )
        # backstop: even an abandoned cluster reaps its workers and
        # segments (the arena holds its own unlink finalizer as well)
        import weakref

        self._reaper = weakref.finalize(
            self, _reap, self._workers, self.arena
        )

    # ------------------------------------------------------------------
    # segment lifecycle

    def _gen_tags(self, gen: int) -> list[str]:
        g = f"g{gen}"
        tags = [f"x-{g}", f"y-{g}", f"ari-{g}", f"aro-{g}"]
        for p in self._plans:
            for dst, _ in p.send_edges:
                tags.append(f"edge-{p.rank}-{dst}-{g}")
        return tags

    def _create_gen_segments(self) -> None:
        g = f"g{self._gen}"
        nn = self.mesh.nnodes
        self._xview = self.arena.create(f"x-{g}", (nn, self._bcap), self._dtype)
        self._yview = self.arena.create(f"y-{g}", (nn, self._bcap), self._dtype)
        self._ari = self.arena.create(f"ari-{g}", (self._ar_bytes,), np.uint8)
        self._aro = self.arena.create(f"aro-{g}", (self._ar_bytes,), np.uint8)
        for p in self._plans:
            for dst, nodes in p.send_edges:
                self.arena.create(
                    f"edge-{p.rank}-{dst}-{g}", (2, nodes.size, self._bcap), self._dtype
                )

    def _remap(self, bcap: int | None = None, ar_bytes: int | None = None) -> None:
        """Grow the arena (new generation of segments), lock-step with workers."""
        old_tags = self._gen_tags(self._gen)
        self._gen += 1
        if bcap is not None:
            # grow geometrically so repeated block-size bumps settle fast
            self._bcap = max(bcap, 2 * self._bcap)
        if ar_bytes is not None:
            self._ar_bytes = max(ar_bytes, 2 * self._ar_bytes)
        self._create_gen_segments()
        self._post(W.OP_REMAP, B=self._bcap, nbytes=self._ar_bytes)
        self._wait_done()
        for tag in old_tags:
            self.arena.drop(tag)

    # ------------------------------------------------------------------
    # command plumbing

    def _post(self, opcode: int, B: int = 0, overlap: bool = False, nbytes: int = 0) -> None:
        self._seq += 1
        ctrl = self._ctrl
        for r in range(self.nranks):
            ctrl[r, W.C_OPCODE] = opcode
            ctrl[r, W.C_SEQ] = self._seq
            ctrl[r, W.C_B] = B
            ctrl[r, W.C_GEN] = self._gen
            ctrl[r, W.C_OVERLAP] = int(overlap)
            ctrl[r, W.C_NBYTES] = nbytes
            ctrl[r, W.C_STATUS] = 0
        for r in range(self.nranks):
            self._links.cmd[r].release()

    def _wait_done(self) -> None:
        """Join on the counted done semaphore, watching worker liveness."""
        for _ in range(self.nranks):
            waited = 0.0
            while not self._links.done.acquire(timeout=1.0):
                waited += 1.0
                dead = [p.name for p in self._workers if not p.is_alive()]
                if dead:
                    raise ResilienceError(
                        "procrank",
                        f"rank worker(s) died mid-operation: {', '.join(dead)}",
                        attempts=1,
                    )
                if waited >= self._DONE_TIMEOUT:
                    raise ResilienceError(
                        "procrank",
                        f"worker fleet unresponsive for {waited:.0f}s",
                        attempts=1,
                    )
        if np.any(self._ctrl[:, W.C_STATUS] != 0):
            bad = np.nonzero(self._ctrl[:, W.C_STATUS])[0].tolist()
            raise ResilienceError(
                "procrank", f"rank worker(s) {bad} failed (see stderr)", attempts=1
            )

    # ------------------------------------------------------------------
    # the VirtualCluster surface

    def apply_stiffness(self, x_full: np.ndarray) -> np.ndarray:
        return self.apply_stiffness_finish(self.apply_stiffness_begin(x_full))

    def apply_stiffness_begin(self, x_full: np.ndarray) -> _ApplyHandle:
        """Ship the input block and post the apply; returns immediately.

        Between begin and finish the workers run the halo exchange and the
        cell GEMMs; the caller is free to do unrelated compute — this is
        the operator-level half of the compute/communication overlap.
        """
        squeeze = x_full.ndim == 1
        X = x_full[:, None] if squeeze else x_full
        B = X.shape[1]
        dtype = np.result_type(self.stiff.dtype, X.dtype)
        self._lock.acquire()
        try:
            if self._closed or np.dtype(dtype) != self._dtype:
                # unsupported dtype (or torn-down fleet): the in-process
                # protocol is bitwise-identical by construction
                y = super().apply_stiffness(x_full)
                return _ApplyHandle(kind="done", y=y)
            if B > self._bcap:
                self._remap(bcap=B)
            san = _sanitize._STATE
            if san is not None:
                san.write_begin(self._san_tag + ":arena")
            try:
                self._xview[:, :B] = X
            finally:
                if san is not None:
                    san.write_end(self._san_tag + ":arena")
            self._post(W.OP_APPLY, B=B, overlap=self.overlap)
            return _ApplyHandle(kind="pending", B=B, squeeze=squeeze)
        # lock-release-on-unwind, not a handler: everything (including an
        # injected fault) is re-raised after the begin/finish lock is undone
        except BaseException:  # reprolint: disable=R011
            self._lock.release()
            raise

    def apply_stiffness_finish(self, handle: _ApplyHandle) -> np.ndarray:
        """Join the in-flight apply: gather the owned slabs, meter, time."""
        if handle.kind == "done":
            self._lock.release()
            return handle.y
        try:
            self._wait_done()
            B = handle.B
            y = self._yview[:, :B].copy()
            # measured per-phase timings -> reproscope counters + report
            san = _sanitize._STATE
            if san is not None:
                san.write_begin(self._san_tag + ":arena")
            try:
                self._phase_totals += self._tim
                self._applies += 1
            finally:
                if san is not None:
                    san.write_end(self._san_tag + ":arena")
            add_counter("proc_boundary_s", float(self._tim[:, W.PH_BOUNDARY].sum()))
            add_counter("proc_interior_s", float(self._tim[:, W.PH_INTERIOR].sum()))
            add_counter("proc_halo_wait_s", float(self._tim[:, W.PH_WAIT].sum()))
            add_counter("proc_recv_s", float(self._tim[:, W.PH_RECV].sum()))
            # metering: identical per-rank accounting to the virtual cluster
            for r in range(self.nranks):
                remote = self._remote_of_rank[r]
                if _faults._PLAN is not None and remote.size:
                    # reprochaos halo site, same self-healing protocol
                    self._deliver_halo(y, remote, B, self._neighbors[r])
                self._meter_halo(r, remote.size, B)
            return y[:, 0] if handle.squeeze else y
        finally:
            self._lock.release()

    def allreduce(self, array: np.ndarray) -> np.ndarray:
        """Allreduce carried for real: every rank copies its slab through
        shared memory (reduce-scatter + allgather data movement); the
        round-tripped bytes are bit-identical to the input."""
        with self._lock:
            if self._closed:
                return super().allreduce(array)
            data = np.ascontiguousarray(array)
            nbytes = data.nbytes
            if nbytes > self._ar_bytes:
                self._remap(ar_bytes=nbytes)
            flat = np.frombuffer(data.tobytes(), dtype=np.uint8)
            san = _sanitize._STATE
            if san is not None:
                san.write_begin(self._san_tag + ":arena")
            try:
                self._ari[:nbytes] = flat
            finally:
                if san is not None:
                    san.write_end(self._san_tag + ":arena")
            self._post(W.OP_ALLREDUCE, nbytes=nbytes)
            self._wait_done()
            out = np.frombuffer(
                self._aro[:nbytes].tobytes(), dtype=array.dtype
            ).reshape(array.shape)
            wire_bytes = array.nbytes * 2 * (self.nranks - 1) / max(self.nranks, 1)
            self.traffic.allreduce_bytes += wire_bytes
            self.traffic.allreduce_calls += 1
            add_counter("allreduce_bytes", wire_bytes)
            return out

    # ------------------------------------------------------------------
    # phase report & lifecycle

    def phase_report(self) -> dict:
        """Measured per-phase seconds, summed over ranks and applies.

        ``halo_wait_fraction`` is the calibration quantity the perf model
        consumes: the fraction of total apply time spent blocked on
        in-flight ghosts (what overlap is supposed to hide).
        """
        with self._lock:
            tot = self._phase_totals
            report = {
                name: float(tot[:, i].sum()) for i, name in enumerate(PHASE_NAMES)
            }
            report["applies"] = self._applies
            report["nranks"] = self.nranks
            report["overlap"] = self.overlap
            total = report["apply_total_s"]
            report["halo_wait_fraction"] = (
                report["halo_wait_s"] / total if total > 0 else 0.0
            )
            report["per_rank"] = {
                name: tot[:, i].tolist() for i, name in enumerate(PHASE_NAMES)
            }
            return report

    def span_records(self) -> list[dict]:
        """The measured worker phases as JSONL-schema span records.

        Workers have no tracer (they live in forked processes), so their
        timings surface as *records* in the stable
        :class:`repro.obs.JsonlSink` schema: one ``ProcRanks`` root, one
        ``rank{r}`` child per worker, one leaf per phase.
        :func:`repro.obs.merge.merge_records` folds these into the
        parent's aggregator so one profile tree spans every process.
        """
        with self._lock:
            tot = self._phase_totals

            def record(path: list[str], dur: float, tid: int, **counters) -> dict:
                return {
                    "name": path[-1], "path": path, "start": 0.0, "dur": dur,
                    "tid": tid, "attrs": {}, "counters": dict(counters),
                }

            out = [
                record(
                    ["ProcRanks"], float(tot[:, W.PH_TOTAL].sum()), 0,
                    applies=float(self._applies), nranks=float(self.nranks),
                    overlap=float(self.overlap),
                )
            ]
            for r in range(self.nranks):
                out.append(
                    record(["ProcRanks", f"rank{r}"], float(tot[r, W.PH_TOTAL]), r)
                )
                for col, leaf in (
                    (W.PH_BOUNDARY, "boundary"),
                    (W.PH_INTERIOR, "interior"),
                    (W.PH_WAIT, "halo_wait"),
                    (W.PH_RECV, "recv"),
                ):
                    out.append(
                        record(
                            ["ProcRanks", f"rank{r}", leaf], float(tot[r, col]), r
                        )
                    )
            return out

    def close(self) -> None:
        """Shut the worker fleet down and unlink every arena segment."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            try:
                if all(p.is_alive() for p in self._workers):
                    self._post(W.OP_SHUTDOWN)
                    for p in self._workers:
                        p.join(timeout=10.0)
            finally:
                for p in self._workers:
                    if p.is_alive():
                        p.terminate()
                        p.join(timeout=10.0)
                self._reaper.detach()
                self.arena.close()

    def __enter__(self) -> "ProcRankCluster":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def _reap(workers, arena: SharedArena) -> None:
    """Finalizer backstop: kill stray workers, unlink stray segments."""
    for p in workers:
        if p.is_alive():
            p.terminate()
            p.join(timeout=5.0)
    arena.close()
