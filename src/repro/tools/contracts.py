"""Runtime shape/dtype contracts for the hot numerical kernels.

The paper's mixed-precision kernels (CholGS, Rayleigh-Ritz, FP32 halo
exchange) downcast *internally* but must never leak reduced precision into
their results, and their blocked GEMM structure assumes specific operand
shapes.  These decorators turn those implicit invariants into cheap runtime
assertions:

.. code-block:: python

    @shape_contract(X=("n", "nvec"), Q=("nvec", "k"), returns=("n", "k"))
    @dtype_contract(X="inexact", preserves="X")
    def blocked_rotate(X, Q, ...):
        ...

``shape_contract`` binds dimension names across arguments (every occurrence
of ``"n"`` must agree) and optionally checks the return value; integer
entries pin a dimension exactly and ``None`` entries match anything.
``dtype_contract`` checks argument dtype *kinds* (``"floating"``,
``"complexfloating"``, ``"inexact"``, ``"integer"``) and, via
``preserves="argname"``, asserts the result dtype equals that argument's
dtype — the no-FP32-leak invariant.

Checks cost a few attribute lookups per call (negligible next to the GEMMs
they guard) and can be globally switched off with
:func:`disable_contracts` or the ``REPRO_DISABLE_CONTRACTS`` environment
variable.
"""

from __future__ import annotations

import functools
import inspect
import os
from typing import Any, Callable, TypeVar

import numpy as np

__all__ = [
    "ContractViolation",
    "shape_contract",
    "dtype_contract",
    "enable_contracts",
    "disable_contracts",
    "contracts_enabled",
]

F = TypeVar("F", bound=Callable[..., Any])

#: dtype-kind names accepted by :func:`dtype_contract`
_KINDS: dict[str, type] = {
    "floating": np.floating,
    "complexfloating": np.complexfloating,
    "inexact": np.inexact,
    "integer": np.integer,
    "number": np.number,
}

_enabled = os.environ.get("REPRO_DISABLE_CONTRACTS", "") == ""


def enable_contracts() -> None:
    """Turn contract checking on (the default)."""
    global _enabled
    _enabled = True


def disable_contracts() -> None:
    """Turn contract checking off globally (e.g. for benchmarking)."""
    global _enabled
    _enabled = False


def contracts_enabled() -> bool:
    return _enabled


class ContractViolation(TypeError):
    """An array argument or result broke a declared shape/dtype contract."""


def _binder(func: Callable[..., Any]) -> Callable[[tuple, dict], dict[str, Any]]:
    """Precompute the signature so per-call binding stays cheap."""
    sig = inspect.signature(func)

    def bind(args: tuple, kwargs: dict) -> dict[str, Any]:
        return dict(sig.bind_partial(*args, **kwargs).arguments)

    return bind


def _check_shape(
    fname: str, argname: str, value: Any, spec: tuple, dims: dict[str, int]
) -> None:
    shape = getattr(value, "shape", None)
    if shape is None:
        raise ContractViolation(
            f"{fname}: argument {argname!r} has no .shape (got {type(value).__name__})"
        )
    if len(shape) != len(spec):
        raise ContractViolation(
            f"{fname}: {argname} must be {len(spec)}-D, got shape {shape}"
        )
    for axis, (entry, size) in enumerate(zip(spec, shape)):
        if entry is None:
            continue
        if isinstance(entry, int):
            if size != entry:
                raise ContractViolation(
                    f"{fname}: {argname}.shape[{axis}] must be {entry}, "
                    f"got {size} (shape {shape})"
                )
            continue
        seen = dims.setdefault(entry, size)
        if seen != size:
            raise ContractViolation(
                f"{fname}: dimension {entry!r} is inconsistent — "
                f"{argname}.shape[{axis}] = {size} but {entry} = {seen} earlier"
            )


def shape_contract(*, returns: tuple | None = None, **arg_specs: tuple) -> Callable[[F], F]:
    """Assert array-argument shapes, binding named dimensions across them.

    Each keyword maps an argument name to a tuple whose entries are
    dimension names (``str``, bound consistently across all specs), exact
    sizes (``int``) or ``None`` (unchecked).  ``returns=`` checks the
    return value against the dimensions bound by the inputs.
    """

    def deco(func: F) -> F:
        fname = func.__qualname__
        bind = _binder(func)

        @functools.wraps(func)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            if not _enabled:
                return func(*args, **kwargs)
            dims: dict[str, int] = {}
            values = bind(args, kwargs)
            for argname, spec in arg_specs.items():
                if argname in values:
                    _check_shape(fname, argname, values[argname], spec, dims)
            out = func(*args, **kwargs)
            if returns is not None:
                _check_shape(fname, "return value", out, returns, dims)
            return out

        return wrapper  # type: ignore[return-value]

    return deco


def dtype_contract(
    *, preserves: str | None = None, **arg_kinds: str
) -> Callable[[F], F]:
    """Assert argument dtype kinds and (optionally) result-dtype preservation.

    ``preserves="X"`` asserts ``result.dtype == X.dtype`` — the invariant
    that a mixed-precision kernel's internal FP32 blocks never leak into
    its FP64 output.
    """
    for kind in arg_kinds.values():
        if kind not in _KINDS:
            raise ValueError(
                f"unknown dtype kind {kind!r}; expected one of {sorted(_KINDS)}"
            )

    def deco(func: F) -> F:
        fname = func.__qualname__
        bind = _binder(func)

        @functools.wraps(func)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            if not _enabled:
                return func(*args, **kwargs)
            values = bind(args, kwargs)
            for argname, kind in arg_kinds.items():
                if argname not in values:
                    continue
                dt = getattr(values[argname], "dtype", None)
                if dt is None or not np.issubdtype(dt, _KINDS[kind]):
                    raise ContractViolation(
                        f"{fname}: {argname} must have {kind} dtype, got "
                        f"{dt if dt is not None else type(values[argname]).__name__}"
                    )
            out = func(*args, **kwargs)
            if preserves is not None and preserves in values:
                want = values[preserves].dtype
                got = getattr(out, "dtype", None)
                if got != want:
                    raise ContractViolation(
                        f"{fname}: result dtype {got} does not preserve "
                        f"{preserves}.dtype = {want} (reduced precision leaked?)"
                    )
            return out

        return wrapper  # type: ignore[return-value]

    return deco
