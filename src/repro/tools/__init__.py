"""Correctness tooling for the DFT-FE-MLXC reproduction.

Two complementary layers guard the numerical invariants the paper's
performance results depend on (mixed-precision block structure,
deterministic collectives, explicit dtypes):

* :mod:`repro.tools.lint` — ``reprolint``, an AST-based static analyzer
  with a rule registry, per-rule severities, ``# reprolint: disable=...``
  suppressions and JSON/text output.  Run it as
  ``python -m repro.tools.lint src/`` or ``python -m repro lint``.
* :mod:`repro.tools.contracts` — ``@shape_contract`` / ``@dtype_contract``
  runtime decorators used in the hot kernels to pin down array shapes and
  to assert that FP32-blocked kernels never leak reduced precision into
  their FP64 results.
"""

from __future__ import annotations

from .contracts import (
    ContractViolation,
    contracts_enabled,
    disable_contracts,
    dtype_contract,
    enable_contracts,
    shape_contract,
)

__all__ = [
    "ContractViolation",
    "contracts_enabled",
    "disable_contracts",
    "dtype_contract",
    "enable_contracts",
    "shape_contract",
]
