"""Correctness tooling for the DFT-FE-MLXC reproduction.

Three complementary layers guard the numerical invariants the paper's
performance results depend on (mixed-precision block structure,
deterministic collectives, explicit dtypes, lock discipline):

* :mod:`repro.tools.lint` — ``reprolint``, a flow-aware static analyzer
  (per-function CFG + reaching definitions + dtype abstract
  interpretation) with a rule registry, per-rule severities,
  ``# reprolint: disable=...`` suppressions, finding baselines and
  text/JSON/SARIF output.  Run it as ``python -m repro.tools.lint src/``
  or ``python -m repro lint``.
* :mod:`repro.tools.contracts` — ``@shape_contract`` / ``@dtype_contract``
  runtime decorators used in the hot kernels to pin down array shapes and
  to assert that FP32-blocked kernels never leak reduced precision into
  their FP64 results.
* :mod:`repro.tools.sanitize` — ``reprosan``, a runtime race sanitizer
  (``REPRO_SANITIZE=1``): write windows and buffer-ownership checks on
  the instrumented shared structures raise structured
  :class:`~repro.tools.sanitize.RaceReport`\\ s on overlapping unlocked
  writes; unarmed it costs one ``is None`` test per site.
"""

from __future__ import annotations

from .contracts import (
    ContractViolation,
    contracts_enabled,
    disable_contracts,
    dtype_contract,
    enable_contracts,
    shape_contract,
)

__all__ = [
    "ContractViolation",
    "contracts_enabled",
    "disable_contracts",
    "dtype_contract",
    "enable_contracts",
    "shape_contract",
]
