"""SARIF 2.1.0 output for reprolint findings.

The Static Analysis Results Interchange Format lets CI systems (GitHub
code scanning, Azure DevOps...) render findings as inline code
annotations.  One run, one tool driver (``reprolint``), one result per
finding; rule metadata travels in ``tool.driver.rules`` and results
reference rules by ``ruleId``.
"""

from __future__ import annotations

import json
import pathlib
from typing import TYPE_CHECKING, Iterable

if TYPE_CHECKING:  # pragma: no cover
    from . import Finding, Rule

__all__ = ["SARIF_VERSION", "SARIF_SCHEMA_URI", "sarif_document", "format_sarif"]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

#: reprolint severity -> SARIF result level
_LEVELS = {"error": "error", "warning": "warning"}


def _rule_descriptor(rule: "Rule") -> dict:
    return {
        "id": rule.rule_id,
        "name": type(rule).__name__,
        "shortDescription": {"text": rule.description},
        "defaultConfiguration": {
            "level": _LEVELS.get(rule.severity, "error")
        },
    }


def _result(finding: "Finding") -> dict:
    return {
        "ruleId": finding.rule_id,
        "level": _LEVELS.get(finding.severity, "error"),
        "message": {"text": finding.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": pathlib.PurePath(finding.path).as_posix()
                    },
                    "region": {
                        "startLine": finding.line,
                        "startColumn": finding.col,
                    },
                }
            }
        ],
    }


def sarif_document(
    findings: Iterable["Finding"], rules: Iterable["Rule"]
) -> dict:
    """The SARIF log as a plain dict (one run)."""
    return {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "reprolint",
                        "informationUri": (
                            "https://example.invalid/repro/tools/lint"
                        ),
                        "rules": [
                            _rule_descriptor(r)
                            for r in sorted(rules, key=lambda r: r.rule_id)
                        ],
                    }
                },
                "results": [_result(f) for f in findings],
            }
        ],
    }


def format_sarif(
    findings: Iterable["Finding"], rules: Iterable["Rule"]
) -> str:
    return json.dumps(sarif_document(findings, rules), indent=2)
