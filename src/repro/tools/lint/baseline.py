"""Finding baselines and git-changed file selection for reprolint.

A *baseline* records the current findings so that new rules can land
without a mass-pragma sweep: ``--baseline FILE --write-baseline``
snapshots today's findings, and subsequent ``--baseline FILE`` runs
fail only on findings *not* covered by the snapshot.

Fingerprints are (posix path, rule id, message) — line numbers are
deliberately excluded so unrelated edits that shift code do not
invalidate the baseline.  The baseline stores a *count* per
fingerprint; if a run produces more findings with the same fingerprint
than recorded, the surplus (highest line numbers first) is new.

``--changed`` restricts linting to files touched per git: anything
``git status --porcelain`` reports (modified, added, renamed,
untracked) under the requested paths.
"""

from __future__ import annotations

import json
import pathlib
import subprocess
from collections import Counter
from typing import TYPE_CHECKING, Iterable

if TYPE_CHECKING:  # pragma: no cover
    from . import Finding

__all__ = [
    "BASELINE_SCHEMA",
    "fingerprint",
    "write_baseline",
    "load_baseline",
    "new_findings",
    "changed_paths",
]

BASELINE_SCHEMA = "reprolint-baseline/1"


def fingerprint(finding: "Finding") -> tuple[str, str, str]:
    return (
        pathlib.PurePath(finding.path).as_posix(),
        finding.rule_id,
        finding.message,
    )


def write_baseline(path: str | pathlib.Path, findings: Iterable["Finding"]) -> None:
    counts = Counter(fingerprint(f) for f in findings)
    doc = {
        "schema": BASELINE_SCHEMA,
        "entries": [
            {"path": p, "rule": r, "message": m, "count": n}
            for (p, r, m), n in sorted(counts.items())
        ],
    }
    pathlib.Path(path).write_text(json.dumps(doc, indent=2) + "\n")


def load_baseline(path: str | pathlib.Path) -> Counter:
    doc = json.loads(pathlib.Path(path).read_text())
    if doc.get("schema") != BASELINE_SCHEMA:
        raise ValueError(
            f"{path}: not a reprolint baseline (schema "
            f"{doc.get('schema')!r}, expected {BASELINE_SCHEMA!r})"
        )
    counts: Counter = Counter()
    for entry in doc.get("entries", []):
        counts[(entry["path"], entry["rule"], entry["message"])] = int(
            entry.get("count", 1)
        )
    return counts


def new_findings(
    findings: list["Finding"], baseline: Counter
) -> list["Finding"]:
    """Findings beyond the baselined count for their fingerprint.

    Within one fingerprint the lowest-line occurrences are considered
    baselined; the surplus is new.
    """
    by_fp: dict[tuple, list] = {}
    for f in findings:
        by_fp.setdefault(fingerprint(f), []).append(f)
    fresh: list["Finding"] = []
    for fp, group in by_fp.items():
        allowed = baseline.get(fp, 0)
        group.sort(key=lambda f: (f.line, f.col))
        fresh.extend(group[allowed:])
    return sorted(fresh)


def changed_paths(paths: Iterable[str | pathlib.Path]) -> list[pathlib.Path]:
    """Changed ``*.py`` files (per git) under the requested paths.

    Raises RuntimeError when git is unavailable or a path is outside a
    work tree.
    """
    requested = [pathlib.Path(p).resolve() for p in paths]
    roots: dict[pathlib.Path, None] = {}
    for p in requested:
        probe = p if p.is_dir() else p.parent
        try:
            proc = subprocess.run(
                ["git", "-C", str(probe), "rev-parse", "--show-toplevel"],
                capture_output=True,
                text=True,
                check=True,
            )
        except (OSError, subprocess.CalledProcessError) as exc:
            raise RuntimeError(
                f"--changed: {p} is not inside a git work tree ({exc})"
            ) from exc
        roots.setdefault(pathlib.Path(proc.stdout.strip()), None)
    changed: list[pathlib.Path] = []
    seen: set[pathlib.Path] = set()
    for root in roots:
        proc = subprocess.run(
            ["git", "-C", str(root), "status", "--porcelain"],
            capture_output=True,
            text=True,
            check=True,
        )
        for line in proc.stdout.splitlines():
            if len(line) < 4:
                continue
            rel = line[3:]
            if " -> " in rel:  # rename: lint the new path
                rel = rel.split(" -> ", 1)[1]
            rel = rel.strip().strip('"')
            candidate = (root / rel).resolve()
            if candidate.suffix != ".py" or not candidate.is_file():
                continue
            if candidate in seen:
                continue
            for req in requested:
                if candidate == req or req in candidate.parents:
                    seen.add(candidate)
                    changed.append(candidate)
                    break
    return sorted(changed)
