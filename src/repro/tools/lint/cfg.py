"""Per-function control-flow graphs for reprolint's flow-aware rules.

A :class:`CFG` is a list of :class:`Block` objects — straight-line
statement sequences connected by directed edges — built from a
``FunctionDef`` (or a ``Module``, for top-level code) by
:func:`build_cfg`.  Compound statements (``if``/``for``/``while``/
``try``/``with``/``match``) appear as the *header* statement of their
block; their bodies are lowered into separate blocks.  Transfer
functions therefore never descend into a compound statement's body —
they only need :func:`shallow_defs` (the names the header itself binds)
and :func:`header_exprs` (the expressions the header itself evaluates).

Approximations, chosen deliberately for lint-grade analysis:

* A ``try`` body's handlers receive edges from the block *before* the
  ``try`` and from every block created while lowering the body — an
  exception mid-block is approximated by those two program points.
* ``finally`` is lowered at the normal-exit join only; the exceptional
  path through ``finally`` is not modeled.
* Nested ``def``/``class`` statements are atomic: they bind their name
  and are otherwise opaque (each nested function gets its own CFG).
"""

from __future__ import annotations

import ast
from typing import Iterator

__all__ = [
    "Block",
    "CFG",
    "build_cfg",
    "shallow_defs",
    "header_exprs",
    "target_names",
    "assigned_names",
]

_LOOPS = (ast.For, ast.AsyncFor, ast.While)


class Block:
    """A straight-line sequence of statements with CFG edges."""

    __slots__ = ("bid", "stmts", "succs", "preds")

    def __init__(self, bid: int) -> None:
        self.bid = bid
        self.stmts: list[ast.AST] = []
        self.succs: list[Block] = []
        self.preds: list[Block] = []

    def __repr__(self) -> str:
        head = self.stmts[0].__class__.__name__ if self.stmts else "empty"
        return f"<Block {self.bid} {head} ->{[s.bid for s in self.succs]}>"


class CFG:
    """Control-flow graph with a synthetic entry and exit block."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.blocks: list[Block] = []
        self.entry = self.new_block()
        self.exit = self.new_block()

    def new_block(self) -> Block:
        b = Block(len(self.blocks))
        self.blocks.append(b)
        return b

    def add_edge(self, src: Block, dst: Block) -> None:
        if dst not in src.succs:
            src.succs.append(dst)
            dst.preds.append(src)


class _Builder:
    def __init__(self, name: str) -> None:
        self.cfg = CFG(name)
        #: (header, after) pairs for the enclosing loops
        self.loops: list[tuple[Block, Block]] = []
        #: handler-entry blocks of the enclosing ``try`` statements
        self.handlers: list[list[Block]] = []

    def build(self, body: list[ast.stmt]) -> CFG:
        end = self.lower(body, self.cfg.entry)
        if end is not None:
            self.cfg.add_edge(end, self.cfg.exit)
        return self.cfg

    def lower(self, stmts: list[ast.stmt], cur: Block | None) -> Block | None:
        """Lower a statement list; return the fall-through block (None if
        every path leaves via return/raise/break/continue)."""
        for stmt in stmts:
            if cur is None:
                # unreachable code still gets a block so its statements
                # stay visible to rules (it just has no predecessors)
                cur = self.cfg.new_block()
            cur = self._stmt(stmt, cur)
        return cur

    def _stmt(self, stmt: ast.stmt, cur: Block) -> Block | None:
        cfg = self.cfg
        if isinstance(stmt, ast.If):
            cur.stmts.append(stmt)
            after = cfg.new_block()
            then = cfg.new_block()
            cfg.add_edge(cur, then)
            t_end = self.lower(stmt.body, then)
            if t_end is not None:
                cfg.add_edge(t_end, after)
            if stmt.orelse:
                els = cfg.new_block()
                cfg.add_edge(cur, els)
                e_end = self.lower(stmt.orelse, els)
                if e_end is not None:
                    cfg.add_edge(e_end, after)
            else:
                cfg.add_edge(cur, after)
            return after if after.preds else None

        if isinstance(stmt, _LOOPS):
            header = cfg.new_block()
            header.stmts.append(stmt)  # binds the For target
            cfg.add_edge(cur, header)
            after = cfg.new_block()
            body = cfg.new_block()
            cfg.add_edge(header, body)
            self.loops.append((header, after))
            b_end = self.lower(stmt.body, body)
            self.loops.pop()
            if b_end is not None:
                cfg.add_edge(b_end, header)  # back edge
            if stmt.orelse:
                els = cfg.new_block()
                cfg.add_edge(header, els)
                e_end = self.lower(stmt.orelse, els)
                if e_end is not None:
                    cfg.add_edge(e_end, after)
            else:
                cfg.add_edge(header, after)
            return after if after.preds else None

        if isinstance(stmt, ast.Try) or (
            hasattr(ast, "TryStar") and isinstance(stmt, ast.TryStar)
        ):
            return self._try(stmt, cur)

        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            cur.stmts.append(stmt)  # binds the ``as`` names
            return self.lower(stmt.body, cur)

        if isinstance(stmt, ast.Match):
            cur.stmts.append(stmt)
            after = cfg.new_block()
            cfg.add_edge(cur, after)  # no case matched
            for case in stmt.cases:
                cb = cfg.new_block()
                cfg.add_edge(cur, cb)
                c_end = self.lower(case.body, cb)
                if c_end is not None:
                    cfg.add_edge(c_end, after)
            return after

        if isinstance(stmt, ast.Return):
            cur.stmts.append(stmt)
            cfg.add_edge(cur, cfg.exit)
            return None
        if isinstance(stmt, ast.Raise):
            cur.stmts.append(stmt)
            if self.handlers:
                for he in self.handlers[-1]:
                    cfg.add_edge(cur, he)
            else:
                cfg.add_edge(cur, cfg.exit)
            return None
        if isinstance(stmt, ast.Break):
            cur.stmts.append(stmt)
            if self.loops:
                cfg.add_edge(cur, self.loops[-1][1])
            return None
        if isinstance(stmt, ast.Continue):
            cur.stmts.append(stmt)
            if self.loops:
                cfg.add_edge(cur, self.loops[-1][0])
            return None

        # simple statement (including nested def/class, treated atomically)
        cur.stmts.append(stmt)
        return cur

    def _try(self, stmt: ast.Try, cur: Block) -> Block | None:
        cfg = self.cfg
        after = cfg.new_block()
        h_entries: list[Block] = []
        for handler in stmt.handlers:
            hb = cfg.new_block()
            hb.stmts.append(handler)  # binds ``except E as name``
            h_entries.append(hb)
            cfg.add_edge(cur, hb)  # exception before any body statement
        mark = len(cfg.blocks)
        body_entry = cfg.new_block()
        cfg.add_edge(cur, body_entry)
        self.handlers.append(h_entries)
        b_end = self.lower(stmt.body, body_entry)
        self.handlers.pop()
        # an exception may fly out of any body block
        for blk in cfg.blocks[mark:]:
            for he in h_entries:
                if blk is not he:
                    cfg.add_edge(blk, he)
        e_end = b_end
        if stmt.orelse:
            if b_end is not None:
                els = cfg.new_block()
                cfg.add_edge(b_end, els)
                e_end = self.lower(stmt.orelse, els)
            else:
                e_end = None
        if e_end is not None:
            cfg.add_edge(e_end, after)
        for handler, hb in zip(stmt.handlers, h_entries):
            h_end = self.lower(handler.body, hb)
            if h_end is not None:
                cfg.add_edge(h_end, after)
        if not after.preds:
            return None
        if stmt.finalbody:
            return self.lower(stmt.finalbody, after)
        return after


def build_cfg(node: ast.FunctionDef | ast.AsyncFunctionDef | ast.Module) -> CFG:
    """Build the CFG of a function body (or a module's top-level code)."""
    name = getattr(node, "name", "<module>")
    return _Builder(name).build(node.body)


# ----------------------------------------------------------------------------
# shallow statement structure (what a block header binds / evaluates itself)
def target_names(t: ast.AST) -> Iterator[str]:
    """Names bound by an assignment/``for``/``with`` target expression."""
    if isinstance(t, ast.Name):
        yield t.id
    elif isinstance(t, (ast.Tuple, ast.List)):
        for e in t.elts:
            yield from target_names(e)
    elif isinstance(t, ast.Starred):
        yield from target_names(t.value)


def header_exprs(stmt: ast.AST) -> list[ast.expr]:
    """Expressions a statement evaluates *itself* (not in a nested body)."""
    if isinstance(stmt, (ast.If, ast.While)):
        return [stmt.test]
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return [stmt.iter]
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        return [item.context_expr for item in stmt.items]
    if isinstance(stmt, ast.Match):
        return [stmt.subject]
    if isinstance(stmt, ast.ExceptHandler):
        return [stmt.type] if stmt.type is not None else []
    if isinstance(
        stmt, (ast.Try, ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
    ):
        return []
    # a simple statement is all header
    return [stmt]  # type: ignore[list-item]


def shallow_defs(stmt: ast.AST) -> list[tuple[str, ast.AST]]:
    """(name, defining node) pairs the statement itself binds.

    Compound statements contribute only their header bindings (``for``
    targets, ``with ... as``, ``except ... as``, the ``def``/``class``
    name); bodies are separate blocks and contribute their own defs.
    """
    out: list[tuple[str, ast.AST]] = []
    if isinstance(stmt, ast.Assign):
        for t in stmt.targets:
            out.extend((n, stmt) for n in target_names(t))
    elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
        if isinstance(stmt.target, ast.Name):
            out.append((stmt.target.id, stmt))
    elif isinstance(stmt, (ast.For, ast.AsyncFor)):
        out.extend((n, stmt) for n in target_names(stmt.target))
    elif isinstance(stmt, (ast.With, ast.AsyncWith)):
        for item in stmt.items:
            if item.optional_vars is not None:
                out.extend((n, stmt) for n in target_names(item.optional_vars))
    elif isinstance(stmt, ast.ExceptHandler):
        if stmt.name:
            out.append((stmt.name, stmt))
    elif isinstance(stmt, (ast.Import, ast.ImportFrom)):
        for alias in stmt.names:
            if alias.name == "*":
                continue
            out.append((alias.asname or alias.name.split(".")[0], stmt))
    elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        out.append((stmt.name, stmt))
    # walrus targets in the statement's own expressions
    for expr in header_exprs(stmt):
        for sub in ast.walk(expr):
            if isinstance(sub, ast.NamedExpr) and isinstance(
                sub.target, ast.Name
            ):
                out.append((sub.target.id, sub))
    return out


def assigned_names(stmts: list[ast.stmt]) -> set[str]:
    """All names bound anywhere in ``stmts``, descending into compound
    statements but not into nested function/class bodies."""
    out: set[str] = set()

    def visit(stmt: ast.AST) -> None:
        for name, _node in shallow_defs(stmt):
            out.add(name)
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return
        for attr in ("body", "orelse", "finalbody"):
            for sub in getattr(stmt, attr, []):
                visit(sub)
        for handler in getattr(stmt, "handlers", []):
            visit(handler)
        for case in getattr(stmt, "cases", []):
            for sub in case.body:
                visit(sub)

    for s in stmts:
        visit(s)
    return out
