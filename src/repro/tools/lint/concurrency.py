"""Concurrency-safety rules (R013–R016) for reprolint.

The parallel-ChFES channel loop (``ThreadPoolExecutor`` in
``core/scf.py``) and the upcoming multi-rank scale-out multiply the
number of threads touching shared numerical state.  These rules find
the static half of that hazard class; the runtime half is covered by
:mod:`repro.tools.sanitize` (``REPRO_SANITIZE=1``).

========  ==========================================================
R013      unlocked mutation of registered shared state (FlopLedger,
          Workspace pool, obs aggregators/sinks, traffic meters) in
          code reachable from thread-entry points
          (``pool.submit(f)`` / ``threading.Thread(target=f)``)
R014      pooled-buffer escape: a workspace-acquired buffer stored on
          ``self`` or returned past its scope without a documented
          ownership contract
R015      ``os.environ`` reads inside hot loops of the numerical core
          or the serve runtime (directly in a loop body, or in
          functions reachable from one via the module-local call
          graph)
R016      module-global mutation in thread-entry-reachable functions
========  ==========================================================

All four are module-local analyses: thread entries, call graphs and
lock scopes are resolved within one file.  A ``with <lock>:`` block
(any context expression whose dotted name contains ``lock``) sanctions
the mutations inside it.
"""

from __future__ import annotations

import ast
from typing import Iterator

from . import FileContext, Finding, Rule, register
from .dataflow import dotted_name, module_functions

__all__ = [
    "UnlockedSharedStateMutation",
    "PooledBufferEscape",
    "EnvReadInHotLoop",
    "GlobalMutationInThreadEntry",
]

#: base-name substrings marking an object as registered shared state
_SHARED_HINTS = (
    "ledger", "workspace", "tally", "traffic", "aggregat", "sink",
    "shared",
)
#: container methods that mutate in place (``.add`` is deliberately
#: absent: ``ledger.add(...)`` is the FlopLedger's *locked* API)
_MUTATING_METHODS = frozenset(
    {"append", "extend", "clear", "update", "pop", "setdefault", "remove",
     "discard", "insert"}
)


def _is_lock_context(stmt: ast.With | ast.AsyncWith) -> bool:
    for item in stmt.items:
        dotted = dotted_name(item.context_expr)
        if dotted is None and isinstance(item.context_expr, ast.Call):
            dotted = dotted_name(item.context_expr.func)
        if dotted is not None and "lock" in dotted.lower():
            return True
    return False


def _function_table(
    tree: ast.Module,
) -> dict[str, ast.FunctionDef | ast.AsyncFunctionDef]:
    """Module-local functions and methods, keyed by bare name."""
    table: dict[str, ast.FunctionDef | ast.AsyncFunctionDef] = {}
    for fn in module_functions(tree):
        table.setdefault(fn.name, fn)
    return table


def _callee_name(func: ast.AST) -> str | None:
    """Bare name a call could resolve to module-locally (``f`` or
    ``self.f``)."""
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
        if func.value.id in ("self", "cls"):
            return func.attr
    return None


def _thread_entry_names(tree: ast.Module) -> set[str]:
    """Functions handed to ``*.submit(f, ...)`` or
    ``threading.Thread(target=f)``."""
    entries: set[str] = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr == "submit":
            if node.args:
                name = _callee_name(node.args[0])
                if name:
                    entries.add(name)
        dotted = dotted_name(func)
        if dotted is not None and dotted.rsplit(".", 1)[-1] == "Thread":
            for kw in node.keywords:
                if kw.arg == "target":
                    name = _callee_name(kw.value)
                    if name:
                        entries.add(name)
    return entries


def _reachable_functions(
    tree: ast.Module,
) -> list[ast.FunctionDef | ast.AsyncFunctionDef]:
    """Functions reachable from thread entries via the module-local call
    graph (including functions nested inside reachable ones)."""
    table = _function_table(tree)
    reachable: dict[str, ast.FunctionDef | ast.AsyncFunctionDef] = {}
    work = [n for n in _thread_entry_names(tree) if n in table]
    while work:
        name = work.pop()
        if name in reachable:
            continue
        fn = table[name]
        reachable[name] = fn
        for node in ast.walk(fn):
            if isinstance(node, ast.Call):
                callee = _callee_name(node.func)
                if callee and callee in table and callee not in reachable:
                    work.append(callee)
            elif (
                isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                and node is not fn
                and node.name not in reachable
            ):
                work.append(node.name)
    return list(reachable.values())


def _walk_with_locks(
    stmts: list[ast.stmt], in_lock: bool = False
) -> Iterator[tuple[ast.stmt, bool]]:
    """Yield (statement, under-lock) pairs, descending into compound
    bodies but not into nested function/class definitions."""
    for stmt in stmts:
        yield stmt, in_lock
        if isinstance(
            stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            continue
        locked = in_lock
        if isinstance(stmt, (ast.With, ast.AsyncWith)) and _is_lock_context(
            stmt
        ):
            locked = True
        for attr in ("body", "orelse", "finalbody"):
            yield from _walk_with_locks(getattr(stmt, attr, []), locked)
        for handler in getattr(stmt, "handlers", []):
            yield from _walk_with_locks(handler.body, locked)
        for case in getattr(stmt, "cases", []):
            yield from _walk_with_locks(case.body, locked)


def _local_walk(fn: ast.AST) -> Iterator[ast.AST]:
    """``ast.walk`` over a function's own code, not descending into
    nested function/class definitions (they are analyzed as their own
    scopes)."""
    stack = list(ast.iter_child_nodes(fn))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(
            node,
            (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef),
        ):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _shared_base(node: ast.AST) -> str | None:
    """Dotted base name if it smells like registered shared state."""
    dotted = dotted_name(node)
    if dotted is None:
        return None
    low = dotted.lower()
    if any(hint in low for hint in _SHARED_HINTS):
        return dotted
    return None


# ----------------------------------------------------------------------------
@register
class UnlockedSharedStateMutation(Rule):
    """R013: unlocked shared-state mutation reachable from worker threads.

    ``FlopLedger`` tallies, ``Workspace`` pools, tracer sink lists and
    traffic meters are mutated from the parallel channel loop; every
    such mutation must hold the owning lock.  The rule resolves thread
    entries (``pool.submit`` targets, ``threading.Thread`` targets),
    closes over the module-local call graph, and flags attribute or
    subscript stores — and in-place container mutations — whose base
    object's name marks it as shared, unless the statement sits inside a
    ``with <lock>:`` block.
    """

    rule_id = "R013"
    severity = "error"
    description = (
        "unlocked mutation of registered shared state (ledger/workspace/"
        "sink/traffic...) in code reachable from thread entries"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for fn in _reachable_functions(ctx.tree):
            for stmt, locked in _walk_with_locks(fn.body):
                if locked:
                    continue
                yield from self._check_stmt(ctx, fn, stmt)

    def _check_stmt(
        self, ctx: FileContext, fn: ast.AST, stmt: ast.stmt
    ) -> Iterator[Finding]:
        targets: list[ast.AST] = []
        if isinstance(stmt, ast.Assign):
            targets = stmt.targets
        elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
            targets = [stmt.target]
        for target in targets:
            if isinstance(target, (ast.Attribute, ast.Subscript)):
                base = _shared_base(target.value)
                if base is not None:
                    yield ctx.finding(
                        self,
                        stmt,
                        f"unlocked write to shared state '{base}' in "
                        f"'{fn.name}', which runs on worker threads; hold "
                        "the owning lock (with <lock>:)",
                    )
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call):
            call = stmt.value
            if (
                isinstance(call.func, ast.Attribute)
                and call.func.attr in _MUTATING_METHODS
            ):
                base = _shared_base(call.func.value)
                if base is not None:
                    yield ctx.finding(
                        self,
                        stmt,
                        f"unlocked .{call.func.attr}() on shared state "
                        f"'{base}' in '{fn.name}', which runs on worker "
                        "threads; hold the owning lock (with <lock>:)",
                    )


# ----------------------------------------------------------------------------
@register
class PooledBufferEscape(Rule):
    """R014: a pooled workspace buffer escapes its acquiring scope.

    Buffers from :class:`repro.fem.workspace.Workspace` (``.get`` /
    ``.zeros`` on a workspace-named object, or values written through
    ``out=`` into one) are valid only until the next acquisition with
    the same tag on that thread.  Returning one, yielding one, or
    storing one on ``self`` publishes a buffer whose contents will be
    silently overwritten.  Functions that *intentionally* hand out a
    pooled view must say so in their docstring (mention ``workspace``
    plus ``owned``/``pooled``/``valid until``) — the documented contract
    is the suppression.  ``buf.copy()`` is the sanctioned way to let a
    value outlive the pool.
    """

    rule_id = "R014"
    severity = "error"
    description = (
        "pooled workspace buffer returned or stored on self without a "
        "documented ownership contract (docstring: workspace-owned / "
        "valid until)"
    )

    @staticmethod
    def _workspace_base(node: ast.AST) -> bool:
        dotted = dotted_name(node)
        if dotted is None:
            return False
        parts = dotted.lower().split(".")
        return any(p == "ws" or "workspace" in p for p in parts)

    @staticmethod
    def _documented(fn: ast.AST) -> bool:
        doc = (ast.get_docstring(fn) or "").lower()
        return "workspace" in doc and any(
            hint in doc for hint in ("owned", "pooled", "valid until")
        )

    def _pooled_names(self, fn: ast.AST) -> set[str]:
        pooled: set[str] = set()
        for _round in range(3):  # bounded alias propagation
            grew = False
            for node in _local_walk(fn):
                if not isinstance(node, ast.Assign):
                    continue
                value = node.value
                is_pooled = False
                if isinstance(value, ast.Call):
                    func = value.func
                    if (
                        isinstance(func, ast.Attribute)
                        and func.attr in ("get", "zeros")
                        and self._workspace_base(func.value)
                    ):
                        is_pooled = True
                    else:
                        out_kw = next(
                            (
                                kw.value
                                for kw in value.keywords
                                if kw.arg == "out"
                            ),
                            None,
                        )
                        if (
                            isinstance(out_kw, ast.Name)
                            and out_kw.id in pooled
                        ):
                            is_pooled = True
                elif self._root_name(value) in pooled:
                    is_pooled = True
                if not is_pooled:
                    continue
                for target in node.targets:
                    if isinstance(target, ast.Name) and target.id not in pooled:
                        pooled.add(target.id)
                        grew = True
            if not grew:
                break
        return pooled

    @staticmethod
    def _root_name(expr: ast.AST) -> str | None:
        """Name behind plain aliases and views (``buf``, ``buf[:n]``,
        ``buf.T``) — deliberately *not* ``.copy()`` calls."""
        while isinstance(expr, (ast.Subscript, ast.Attribute)):
            expr = expr.value
        return expr.id if isinstance(expr, ast.Name) else None

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for fn in module_functions(ctx.tree):
            if self._documented(fn):
                continue
            pooled = self._pooled_names(fn)
            if not pooled:
                continue
            for node in _local_walk(fn):
                if isinstance(node, ast.Return) and node.value is not None:
                    name = self._root_name(node.value)
                    if name in pooled:
                        yield ctx.finding(
                            self,
                            node,
                            f"'{fn.name}' returns pooled buffer '{name}' "
                            "(valid only until the next workspace "
                            "acquisition); return a .copy() or document "
                            "the ownership contract in the docstring",
                        )
                elif isinstance(node, (ast.Yield, ast.YieldFrom)):
                    inner = getattr(node, "value", None)
                    if inner is not None and self._root_name(inner) in pooled:
                        yield ctx.finding(
                            self,
                            node,
                            f"'{fn.name}' yields a pooled workspace buffer; "
                            "yield a .copy() or document the ownership "
                            "contract in the docstring",
                        )
                elif isinstance(node, ast.Assign):
                    name = (
                        self._root_name(node.value)
                        if not isinstance(node.value, ast.Call)
                        else None
                    )
                    if name not in pooled:
                        continue
                    for target in node.targets:
                        if isinstance(target, ast.Attribute):
                            yield ctx.finding(
                                self,
                                node,
                                f"pooled buffer '{name}' stored on "
                                f"'{dotted_name(target) or 'an object'}' in "
                                f"'{fn.name}' outlives its pool slot; store "
                                "a .copy() or document the ownership "
                                "contract",
                            )


# ----------------------------------------------------------------------------
@register
class EnvReadInHotLoop(Rule):
    """R015: ``os.environ`` reads on the hot path of core or serve.

    Reading configuration from the environment inside the SCF/filter
    loops — or the serve runtime's dispatch/slice loops, which run once
    per queued job — re-pays dict lookups and string parsing thousands
    of times and makes behavior racy against tests that mutate
    ``os.environ``.  Read once at construction time and cache.  A read
    is *hot* when it sits syntactically inside a loop, or inside a
    function reachable from a loop body via the module-local call graph.
    """

    rule_id = "R015"
    severity = "error"
    description = (
        "os.environ/os.getenv read inside a hot loop of repro/core or "
        "repro/serve; read once at construction time and cache"
    )
    path_filters = ("core/", "serve/")

    @staticmethod
    def _env_reads(tree: ast.Module) -> list[ast.AST]:
        reads: list[ast.AST] = []
        for node in ast.walk(tree):
            if isinstance(node, ast.Call):
                dotted = dotted_name(node.func)
                if dotted in ("os.environ.get", "os.getenv"):
                    reads.append(node)
            elif isinstance(node, ast.Subscript):
                if dotted_name(node.value) == "os.environ":
                    reads.append(node)
        return reads

    @staticmethod
    def _hot_functions(tree: ast.Module) -> set[str]:
        """Names of functions called (transitively) from loop bodies."""
        table = _function_table(tree)
        hot: set[str] = set()
        work: list[str] = []
        for fn in module_functions(tree):
            for node in ast.walk(fn):
                if not isinstance(node, (ast.For, ast.AsyncFor, ast.While)):
                    continue
                for sub in ast.walk(node):
                    if isinstance(sub, ast.Call):
                        callee = _callee_name(sub.func)
                        if callee and callee in table:
                            work.append(callee)
        while work:
            name = work.pop()
            if name in hot:
                continue
            hot.add(name)
            for node in ast.walk(table[name]):
                if isinstance(node, ast.Call):
                    callee = _callee_name(node.func)
                    if callee and callee in table and callee not in hot:
                        work.append(callee)
        return hot

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        reads = self._env_reads(ctx.tree)
        if not reads:
            return
        hot = self._hot_functions(ctx.tree)
        read_ids = {id(r) for r in reads}
        # classify each read by enclosing function / loop nesting
        flagged: set[int] = set()

        def visit(node: ast.AST, fn_name: str | None, in_loop: bool) -> None:
            if id(node) in read_ids and id(node) not in flagged:
                if in_loop or (fn_name is not None and fn_name in hot):
                    flagged.add(id(node))
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                fn_name, in_loop = node.name, False
            elif isinstance(node, (ast.For, ast.AsyncFor, ast.While)):
                in_loop = True
            for child in ast.iter_child_nodes(node):
                visit(child, fn_name, in_loop)

        visit(ctx.tree, None, False)
        for read in reads:
            if id(read) in flagged:
                yield ctx.finding(
                    self,
                    read,
                    "os.environ read on the numerical-core hot path "
                    "(inside or reachable from a loop); read the variable "
                    "once at construction time and cache it",
                )


# ----------------------------------------------------------------------------
@register
class GlobalMutationInThreadEntry(Rule):
    """R016: module-global mutation from thread-entry-reachable code.

    A ``global`` rebind or a subscript store into a module-level
    container from a function that runs on worker threads is a data race
    unless a lock is held — and unlike instance state, nothing ties the
    global to an owning lock.  Prefer per-call state or an explicitly
    locked structure.
    """

    rule_id = "R016"
    severity = "error"
    description = (
        "module-global mutation in a thread-entry-reachable function "
        "without holding a lock"
    )

    @staticmethod
    def _module_bindings(tree: ast.Module) -> set[str]:
        bound: set[str] = set()
        for stmt in tree.body:
            if isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        bound.add(target.id)
            elif isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Name
            ):
                bound.add(stmt.target.id)
        return bound

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        module_names = self._module_bindings(ctx.tree)
        for fn in _reachable_functions(ctx.tree):
            declared_global: set[str] = set()
            for node in _local_walk(fn):
                if isinstance(node, ast.Global):
                    declared_global.update(node.names)
            for stmt, locked in _walk_with_locks(fn.body):
                if locked:
                    continue
                targets: list[ast.AST] = []
                if isinstance(stmt, ast.Assign):
                    targets = stmt.targets
                elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
                    targets = [stmt.target]
                for target in targets:
                    if (
                        isinstance(target, ast.Name)
                        and target.id in declared_global
                    ):
                        yield ctx.finding(
                            self,
                            stmt,
                            f"'{fn.name}' rebinds module global "
                            f"'{target.id}' from a worker thread without a "
                            "lock; use per-call state or guard with a lock",
                        )
                    elif isinstance(target, ast.Subscript):
                        base = target.value
                        if (
                            isinstance(base, ast.Name)
                            and base.id in module_names
                            and base.id not in assigned_locally(fn, base.id)
                        ):
                            yield ctx.finding(
                                self,
                                stmt,
                                f"'{fn.name}' mutates module-level "
                                f"container '{base.id}' from a worker "
                                "thread without a lock; use per-call state "
                                "or guard with a lock",
                            )


def assigned_locally(fn: ast.AST, name: str) -> set[str]:
    """``{name}`` if the function rebinds it locally (then the subscript
    store targets a local, not the module global), else empty."""
    for node in ast.walk(fn):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id == name:
                    return {name}
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            if name in {n for n in _iter_target_names(node.target)}:
                return {name}
    return set()


def _iter_target_names(t: ast.AST) -> Iterator[str]:
    if isinstance(t, ast.Name):
        yield t.id
    elif isinstance(t, (ast.Tuple, ast.List)):
        for e in t.elts:
            yield from _iter_target_names(e)
