"""``reprolint`` — numerical-safety static analysis for this repository.

An AST-based analyzer purpose-built for the failure modes of the
DFT-FE-MLXC reproduction: silent precision loss around the mixed-precision
kernels, complex-step helpers that leak imaginary parts, nondeterminism in
the distributed collectives, and allocation/exception hygiene in the SCF
hot paths.  See :mod:`repro.tools.lint.rules` for the rule set.

Framework features:

* a rule registry (:func:`register`) with per-rule severity and optional
  path scoping (e.g. R003 only applies under ``hpc/``);
* flow-aware rules backed by per-function CFGs and dataflow analyses
  (:mod:`~repro.tools.lint.cfg`, :mod:`~repro.tools.lint.dataflow`) —
  R001/R006/R012 track reduced-precision values to their escape points,
  and the concurrency pass (:mod:`~repro.tools.lint.concurrency`,
  R013–R016) resolves thread entries and lock scopes;
* line-level suppressions — ``# reprolint: disable=R001`` (or
  ``disable=R001,R003``, or a bare ``disable`` for all rules) on the
  flagged line, and ``# reprolint: disable-file=R001`` near the top of a
  file for file-wide suppression;
* text, JSON and SARIF 2.1.0 output (``--format sarif`` for CI code
  annotations); exit code 0 (clean), 1 (findings), 2 (usage or
  unreadable input);
* baselines — ``--baseline FILE --write-baseline`` snapshots current
  findings, later ``--baseline FILE`` runs fail only on *new* ones —
  and ``--changed`` to lint only files touched per git.

Programmatic use::

    from repro.tools.lint import lint_paths
    findings = lint_paths(["src/repro"])

Command line::

    python -m repro.tools.lint src/ [--format json|sarif]
        [--select R001,R004] [--baseline FILE [--write-baseline]]
        [--changed]
"""

from __future__ import annotations

import ast
import json
import pathlib
import re
import sys
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator

__all__ = [
    "Finding",
    "FileContext",
    "Rule",
    "RULE_REGISTRY",
    "register",
    "all_rules",
    "lint_source",
    "lint_file",
    "lint_paths",
    "format_text",
    "format_json",
    "main",
]

#: ``# reprolint: disable`` / ``disable=R001,R002`` comment grammar
_SUPPRESS_RE = re.compile(
    r"#\s*reprolint:\s*(disable(?:-file)?)\s*(?:=\s*([A-Z0-9,\s]+))?"
)
#: lines scanned for ``disable-file`` pragmas
_FILE_PRAGMA_WINDOW = 10


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a source location."""

    path: str
    line: int
    col: int
    rule_id: str
    message: str
    severity: str = "error"

    def as_dict(self) -> dict:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule_id,
            "severity": self.severity,
            "message": self.message,
        }

    def __str__(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule_id} [{self.severity}] {self.message}"
        )


@dataclass
class FileContext:
    """Parsed source handed to each rule."""

    path: str  #: display path (as given on the command line)
    source: str
    tree: ast.Module
    lines: list[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.lines:
            self.lines = self.source.splitlines()

    def finding(self, rule: "Rule", node: ast.AST, message: str) -> Finding:
        return Finding(
            path=self.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule_id=rule.rule_id,
            message=message,
            severity=rule.severity,
        )


class Rule:
    """Base class for reprolint rules.

    Subclasses set :attr:`rule_id`, :attr:`description`, optionally
    :attr:`severity` (``"error"`` or ``"warning"``), :attr:`path_filters`
    (posix-path substrings the file must match for the rule to apply;
    ``None`` applies everywhere) and :attr:`path_excludes` (substrings
    that exempt a file even when the filters match), and implement
    :meth:`check`.
    """

    rule_id: str = ""
    description: str = ""
    severity: str = "error"
    path_filters: tuple[str, ...] | None = None
    path_excludes: tuple[str, ...] = ()

    def applies_to(self, path: str) -> bool:
        posix = pathlib.PurePath(path).as_posix()
        if any(e in posix for e in self.path_excludes):
            return False
        if self.path_filters is None:
            return True
        return any(f in posix for f in self.path_filters)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        raise NotImplementedError


RULE_REGISTRY: dict[str, type[Rule]] = {}


def register(cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if not cls.rule_id:
        raise ValueError(f"{cls.__name__} must define rule_id")
    if cls.rule_id in RULE_REGISTRY:
        raise ValueError(f"duplicate rule id {cls.rule_id}")
    if cls.severity not in ("error", "warning"):
        raise ValueError(f"{cls.rule_id}: severity must be 'error' or 'warning'")
    RULE_REGISTRY[cls.rule_id] = cls
    return cls


def all_rules(select: Iterable[str] | None = None) -> list[Rule]:
    """Instantiate the registered rules (optionally a subset)."""
    # rule implementations self-register on import
    from . import concurrency as _concurrency  # noqa: F401  (side effect)
    from . import rules as _rules  # noqa: F401  (import for side effect)

    ids = sorted(RULE_REGISTRY) if select is None else list(select)
    unknown = [i for i in ids if i not in RULE_REGISTRY]
    if unknown:
        raise KeyError(f"unknown rule id(s): {', '.join(unknown)}")
    return [RULE_REGISTRY[i]() for i in ids]


# ----------------------------------------------------------------------------
# suppression handling
def _suppressions(lines: list[str]) -> tuple[dict[int, set[str] | None], set[str] | None]:
    """Parse disable pragmas.

    Returns ``(per_line, file_wide)`` where ``per_line`` maps a 1-based
    line number to a set of suppressed rule ids (``None`` = all rules) and
    ``file_wide`` is the set suppressed for the whole file.
    """
    per_line: dict[int, set[str] | None] = {}
    file_wide: set[str] | None = set()
    for i, text in enumerate(lines, start=1):
        m = _SUPPRESS_RE.search(text)
        if not m:
            continue
        kind, ids = m.group(1), m.group(2)
        ruleset = (
            None if ids is None else {r.strip() for r in ids.split(",") if r.strip()}
        )
        if kind == "disable-file":
            if i <= _FILE_PRAGMA_WINDOW:
                if ruleset is None:
                    file_wide = None
                elif file_wide is not None:
                    file_wide |= ruleset
        else:
            if i in per_line and per_line[i] is not None and ruleset is not None:
                per_line[i] |= ruleset  # type: ignore[operator]
            else:
                per_line[i] = (
                    None if (ruleset is None or per_line.get(i, set()) is None)
                    else ruleset
                )
    return per_line, file_wide


def _is_suppressed(
    f: Finding,
    per_line: dict[int, set[str] | None],
    file_wide: set[str] | None,
) -> bool:
    if file_wide is None or (file_wide and f.rule_id in file_wide):
        return True
    if f.line in per_line:
        rules = per_line[f.line]
        return rules is None or f.rule_id in rules
    return False


# ----------------------------------------------------------------------------
# running
def lint_source(
    source: str, path: str = "<string>", rules: list[Rule] | None = None
) -> list[Finding]:
    """Lint a source string; ``path`` is used for display and path scoping."""
    if rules is None:
        rules = all_rules()
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Finding(
                path=path,
                line=exc.lineno or 1,
                col=(exc.offset or 0) or 1,
                rule_id="E999",
                message=f"syntax error: {exc.msg}",
            )
        ]
    ctx = FileContext(path=path, source=source, tree=tree)
    per_line, file_wide = _suppressions(ctx.lines)
    found: list[Finding] = []
    for rule in rules:
        if not rule.applies_to(path):
            continue
        for f in rule.check(ctx):
            if not _is_suppressed(f, per_line, file_wide):
                found.append(f)
    return sorted(found)


def lint_file(path: pathlib.Path, rules: list[Rule] | None = None) -> list[Finding]:
    return lint_source(path.read_text(encoding="utf-8"), str(path), rules)


def lint_paths(
    paths: Iterable[str | pathlib.Path],
    select: Iterable[str] | None = None,
    on_error: Callable[[str], None] | None = None,
) -> list[Finding]:
    """Lint files and directories (recursively, ``*.py``)."""
    rules = all_rules(select)
    findings: list[Finding] = []
    for p in paths:
        p = pathlib.Path(p)
        if p.is_dir():
            files = sorted(p.rglob("*.py"))
        elif p.exists():
            files = [p]
        else:
            if on_error is not None:
                on_error(f"reprolint: no such file or directory: {p}")
                continue
            raise FileNotFoundError(p)
        for f in files:
            findings.extend(lint_file(f, rules))
    return sorted(findings)


# ----------------------------------------------------------------------------
# output
def format_text(findings: list[Finding]) -> str:
    lines = [str(f) for f in findings]
    n_err = sum(1 for f in findings if f.severity == "error")
    n_warn = len(findings) - n_err
    lines.append(
        f"reprolint: {len(findings)} finding(s) ({n_err} error(s), "
        f"{n_warn} warning(s))"
    )
    return "\n".join(lines)


def format_json(findings: list[Finding]) -> str:
    return json.dumps(
        {
            "findings": [f.as_dict() for f in findings],
            "count": len(findings),
        },
        indent=2,
    )


def main(argv: list[str] | None = None) -> int:
    """CLI driver.  Returns 0 (clean), 1 (findings), 2 (usage error)."""
    import argparse

    ap = argparse.ArgumentParser(
        prog="python -m repro.tools.lint",
        description="reprolint: numerical-safety static analysis",
    )
    ap.add_argument("paths", nargs="*", default=["src"], help="files or directories")
    ap.add_argument("--format", choices=("text", "json", "sarif"), default="text")
    ap.add_argument(
        "--select", default=None, metavar="R001,R002",
        help="comma-separated rule ids to run (default: all)",
    )
    ap.add_argument(
        "--list-rules", action="store_true", help="print the rule set and exit"
    )
    ap.add_argument(
        "--baseline", default=None, metavar="FILE",
        help="suppress findings recorded in FILE; fail only on new ones",
    )
    ap.add_argument(
        "--write-baseline", action="store_true",
        help="write the current findings to --baseline FILE and exit 0",
    )
    ap.add_argument(
        "--changed", action="store_true",
        help="lint only files changed per git (status vs HEAD + untracked)",
    )
    try:
        args = ap.parse_args(argv)
    except SystemExit as exc:
        return 2 if exc.code not in (0, None) else 0

    if args.list_rules:
        for rule in all_rules():
            scope = (
                "everywhere" if rule.path_filters is None
                else ", ".join(rule.path_filters)
            )
            print(f"{rule.rule_id} [{rule.severity:<7}] ({scope}) {rule.description}")
        return 0

    select = None
    if args.select:
        select = [s.strip() for s in args.select.split(",") if s.strip()]
        if not select:
            print("reprolint: --select given but names no rules", file=sys.stderr)
            return 2
    if args.write_baseline and not args.baseline:
        print(
            "reprolint: --write-baseline requires --baseline FILE",
            file=sys.stderr,
        )
        return 2

    from . import baseline as _baseline

    paths: list = list(args.paths)
    if args.changed:
        try:
            paths = list(_baseline.changed_paths(paths))
        except RuntimeError as exc:
            print(f"reprolint: {exc}", file=sys.stderr)
            return 2

    errors: list[str] = []
    try:
        findings = lint_paths(paths, select=select, on_error=errors.append)
    except KeyError as exc:
        print(f"reprolint: {exc.args[0]}", file=sys.stderr)
        return 2
    for msg in errors:
        print(msg, file=sys.stderr)

    if args.write_baseline:
        _baseline.write_baseline(args.baseline, findings)
        print(
            f"reprolint: wrote baseline with {len(findings)} finding(s) "
            f"to {args.baseline}"
        )
        return 2 if errors else 0
    if args.baseline:
        try:
            counts = _baseline.load_baseline(args.baseline)
        except (OSError, ValueError, KeyError) as exc:
            print(f"reprolint: cannot read baseline: {exc}", file=sys.stderr)
            return 2
        findings = _baseline.new_findings(findings, counts)

    if args.format == "json":
        out = format_json(findings)
    elif args.format == "sarif":
        from . import sarif as _sarif

        out = _sarif.format_sarif(findings, all_rules(select))
    else:
        out = format_text(findings)
    print(out)
    if errors:
        return 2
    return 1 if findings else 0
