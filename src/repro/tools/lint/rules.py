"""The reprolint rule set.

Each rule targets a failure mode this codebase has actually had to defend
against (see DESIGN.md "Correctness tooling"):

========  ==========================================================
R001      precision-losing ``astype`` downcasts outside the
          whitelisted mixed-precision kernels
R002      complex-step differentiation helpers that perturb with a
          complex step but never extract ``.real``/``.imag``
R003      nondeterminism (legacy ``np.random`` global RNG, unseeded
          generators, set-order iteration) in distributed code
R004      mutable / array default arguments
R005      bare ``except`` and silently swallowed exceptions
R006      ``np.zeros``/``np.empty`` without an explicit ``dtype=`` in
          the numerical core
R007      unused module-level imports
R008      unused local variables
R009      raw wall-clock reads (``time.perf_counter()`` etc.) outside
          the reproscope observability subsystem
R010      ``np.add.at`` scatter-adds outside the sanctioned
          ``repro/fem`` fast-scatter implementation
R011      broad ``except Exception`` / ``except BaseException`` / bare
          ``except`` outside the ``repro/resilience`` recovery boundary
R012      ``.astype`` casts of loop-invariant data inside loops in the
          numerical core, where the batched subspace engine's
          single-cast mirrors belong
R017      ``SharedMemory`` segment creation/attachment outside the
          ``repro/hpc/procranks`` arena, whose finalizer-backed
          lifecycle is the one sanctioned leak-proof owner
R018      hard-coded ``block_size=`` integer literals at call sites in
          ``repro/core``/``repro/invdft`` — block choices belong to
          ``SCFOptions``/the tuned profile, not the call site
========  ==========================================================

The concurrency-safety rules R013–R016 (unlocked shared-state mutation,
pooled-buffer escapes, hot-loop environment reads, module-global
mutation from thread entries) live in
:mod:`repro.tools.lint.concurrency`.

R001, R006 and R012 are *flow-aware*: they run reaching definitions and
a dtype abstract interpretation over per-function CFGs (see
:mod:`repro.tools.lint.cfg` / :mod:`repro.tools.lint.dataflow`) so that
a downcast is flagged only where the reduced-precision value *escapes*
a non-whitelisted scope, not merely where ``.astype`` appears.

Add a rule by subclassing :class:`~repro.tools.lint.Rule`, decorating it
with :func:`~repro.tools.lint.register`, and yielding
``ctx.finding(self, node, message)`` from ``check``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from . import FileContext, Finding, Rule, register
from .cfg import (
    assigned_names,
    build_cfg,
    header_exprs,
    shallow_defs,
    target_names,
)
from .dataflow import (
    Escape,
    LowOrigin,
    ReachingDefinitions,
    analyze_module_dtypes,
    module_functions,
)

__all__ = [
    "DowncastOutsideWhitelist",
    "ComplexStepLeak",
    "NondeterministicCollective",
    "MutableDefaultArgument",
    "SwallowedException",
    "ImplicitDtypeAllocation",
    "UnusedImport",
    "UnusedVariable",
    "RawTimingOutsideObs",
    "SlowScatterOutsideFem",
    "BroadExceptionHandler",
    "AstypeInsideLoop",
    "SharedMemoryOutsideArena",
    "HardCodedBlockSize",
]



def _dotted(node: ast.AST) -> str | None:
    """Render a Name/Attribute chain as ``a.b.c`` (None if not a chain)."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _functions(tree: ast.Module) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


# ----------------------------------------------------------------------------
@register
class DowncastOutsideWhitelist(Rule):
    """R001: a reduced-precision value *escapes* a non-whitelisted scope.

    The paper's speedups rely on FP32 *blocks* inside CholGS-S/CholGS-O,
    RR-P/RR-SR and the halo exchange — and nowhere else.  The dataflow
    engine (:mod:`repro.tools.lint.dataflow`) tracks every downcast,
    low-precision allocation and mirror-helper call through assignments,
    slicing and arithmetic; a finding is reported at the *origin* only
    when the value leaks out of its scope — via ``return``/``yield``, an
    attribute store, or a module-level binding.  Downcasts that are
    immediately upcast back (``x.astype(f32) ... .astype(x.dtype)``) or
    stored into an existing wider buffer (``out[...] = x32`` upcasts on
    assignment) are confined and therefore clean; functions whose name
    marks them as mixed-precision kernels (``fp32_mirror``, ``*_f32``...)
    are whitelisted wholesale.
    """

    rule_id = "R001"
    severity = "error"
    description = (
        "reduced-precision value (astype downcast, low-precision "
        "allocation, mirror helper) escapes a scope outside the "
        "whitelisted mixed-precision kernels"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        report = analyze_module_dtypes(ctx.tree)
        by_origin: dict[int, tuple[LowOrigin, list[Escape]]] = {}
        for esc in report.escapes:
            entry = by_origin.setdefault(
                id(esc.origin.node), (esc.origin, [])
            )
            entry[1].append(esc)
        for origin, escapes in by_origin.values():
            first = min(
                escapes, key=lambda e: getattr(e.site, "lineno", 0)
            )
            yield ctx.finding(
                self,
                origin.node,
                f"{origin.detail} escapes '{first.scope}' via {first.kind} "
                f"(line {getattr(first.site, 'lineno', '?')}); confine the "
                "reduced-precision value to a whitelisted kernel or "
                "annotate with `# reprolint: disable=R001`",
            )


# ----------------------------------------------------------------------------
@register
class ComplexStepLeak(Rule):
    """R002: complex-step perturbation without real-part restoration.

    Complex-step differentiation (``f'(x) = Im f(x + ih)/h``) perturbs an
    argument with ``x + 1j*h``.  A helper that does so but never touches
    ``.real``/``.imag`` (or ``np.real``/``np.imag``) returns a silently
    complex array — downstream code then carries an O(h) imaginary part
    into real-dtype stores, or crashes much later on a dtype mismatch.
    """

    rule_id = "R002"
    severity = "error"
    description = (
        "function perturbs with a complex step but never extracts "
        ".real/.imag before returning"
    )

    #: substrings marking a variable as a differentiation step size
    _STEP_HINTS = ("step", "eps", "delta", "pert")

    @classmethod
    def _is_step_mult(cls, node: ast.AST) -> bool:
        """``1j * h``-shaped: a complex constant times a step-named variable."""
        has_complex = False
        has_step_name = False
        for sub in ast.walk(node):
            if isinstance(sub, ast.Constant) and isinstance(sub.value, complex):
                has_complex = True
            name = None
            if isinstance(sub, ast.Name):
                name = sub.id
            elif isinstance(sub, ast.Attribute):
                name = sub.attr
            if name is not None:
                low = name.lower()
                if low == "h" or any(hint in low for hint in cls._STEP_HINTS):
                    has_step_name = True
        return has_complex and has_step_name

    def _perturbation(self, fn: ast.AST) -> ast.AST | None:
        """First ``a + 1j*h``-shaped expression inside ``fn``.

        Matches an Add/Sub whose one side is either a *tiny* literal
        complex step (``x + 1e-30j``) or a complex constant multiplied by a
        step-named variable (``x + 1j * h``).  Unit-magnitude complex
        constructions — Bloch phases, random complex matrices
        (``A + 1j * B``) — are intentionally complex, not perturbations.
        """
        for node in ast.walk(fn):
            if isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.Add, ast.Sub)
            ):
                for side in (node.left, node.right):
                    if (
                        isinstance(side, ast.Constant)
                        and isinstance(side.value, complex)
                        and 0 < abs(side.value) < 1e-6
                    ):
                        return node
                    if isinstance(side, ast.BinOp) and isinstance(
                        side.op, ast.Mult
                    ) and self._is_step_mult(side):
                        return node
        return None

    @staticmethod
    def _restores_real(fn: ast.AST) -> bool:
        for node in ast.walk(fn):
            if isinstance(node, ast.Attribute) and node.attr in ("real", "imag"):
                return True
            if isinstance(node, ast.Call):
                dotted = _dotted(node.func)
                if dotted is not None and dotted.rsplit(".", 1)[-1] in (
                    "real",
                    "imag",
                    "real_if_close",
                ):
                    return True
                # explicit dtype management (np.asarray(x, dtype=...),
                # x.astype(...)) counts as restoring the output dtype
                if any(kw.arg == "dtype" for kw in node.keywords):
                    return True
        return False

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for fn in _functions(ctx.tree):
            pert = self._perturbation(fn)
            if pert is not None and not self._restores_real(fn):
                yield ctx.finding(
                    self,
                    pert,
                    f"'{fn.name}' perturbs with a complex step but never "
                    "extracts .real/.imag — the O(h) imaginary part leaks "
                    "to the caller",
                )


# ----------------------------------------------------------------------------
@register
class NondeterministicCollective(Rule):
    """R003: nondeterminism in distributed / partitioning code.

    The virtual cluster's owner-sum halo protocol promises bitwise-identical
    results across ranks, and partitions must be stable across runs so the
    communication metering is reproducible.  Legacy ``np.random.*`` global
    state, unseeded generators and set-order iteration all break that.
    """

    rule_id = "R003"
    severity = "error"
    description = (
        "nondeterministic construct (legacy np.random, unseeded Generator, "
        "set-order iteration) in distributed code"
    )
    path_filters = ("hpc/", "fem/partition.py")

    @staticmethod
    def _is_set_expr(node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "set"
        )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                dotted = _dotted(node.func)
                if dotted in (None, ""):
                    continue
                parts = dotted.split(".")
                if len(parts) >= 3 and parts[-2] == "random" and parts[-3] in (
                    "np",
                    "numpy",
                ):
                    if parts[-1] == "default_rng":
                        if not node.args and not node.keywords:
                            yield ctx.finding(
                                self,
                                node,
                                "np.random.default_rng() without a seed is "
                                "nondeterministic across runs",
                            )
                    else:
                        yield ctx.finding(
                            self,
                            node,
                            f"legacy global RNG np.random.{parts[-1]}() is "
                            "nondeterministic shared state; use a seeded "
                            "np.random.default_rng(seed)",
                        )
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                if self._is_set_expr(node.iter):
                    yield ctx.finding(
                        self,
                        node.iter,
                        "iterating a set has hash-order-dependent "
                        "(nondeterministic) ordering; sort it first",
                    )
            elif isinstance(node, ast.comprehension):
                if self._is_set_expr(node.iter):
                    yield ctx.finding(
                        self,
                        node.iter,
                        "comprehension iterates a set in hash order; sort it "
                        "first for deterministic results",
                    )


# ----------------------------------------------------------------------------
@register
class MutableDefaultArgument(Rule):
    """R004: mutable (or array) default argument values.

    Defaults are evaluated once at ``def`` time; list/dict/set/ndarray
    defaults are shared across calls, so in-place mutation in one SCF run
    contaminates the next.
    """

    rule_id = "R004"
    severity = "error"
    description = "mutable or array default argument (evaluated once, shared)"

    _CTOR_NAMES = frozenset(
        {
            "list", "dict", "set", "bytearray", "deque", "defaultdict",
            "Counter", "OrderedDict", "array", "zeros", "ones", "empty",
            "full", "asarray",
        }
    )

    def _is_mutable(self, node: ast.AST) -> bool:
        if isinstance(
            node,
            (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp),
        ):
            return True
        if isinstance(node, ast.Call):
            dotted = _dotted(node.func)
            if dotted is not None and dotted.rsplit(".", 1)[-1] in self._CTOR_NAMES:
                return True
        return False

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for fn in _functions(ctx.tree):
            args = fn.args
            named = args.posonlyargs + args.args
            for arg, default in zip(named[len(named) - len(args.defaults):],
                                    args.defaults):
                if self._is_mutable(default):
                    yield ctx.finding(
                        self,
                        default,
                        f"default for '{arg.arg}' in '{fn.name}' is mutable "
                        "and shared across calls; default to None instead",
                    )
            for arg, default in zip(args.kwonlyargs, args.kw_defaults):
                if default is not None and self._is_mutable(default):
                    yield ctx.finding(
                        self,
                        default,
                        f"default for '{arg.arg}' in '{fn.name}' is mutable "
                        "and shared across calls; default to None instead",
                    )


# ----------------------------------------------------------------------------
@register
class SwallowedException(Rule):
    """R005: bare ``except`` / exception handlers that swallow silently.

    SCF and MINRES loops signal convergence failure through exceptions and
    result flags; a bare ``except:`` (which also catches KeyboardInterrupt)
    or a handler whose body is only ``pass`` turns a diverged solve into
    silently wrong numbers.
    """

    rule_id = "R005"
    severity = "error"
    description = "bare except or exception handler that swallows silently"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield ctx.finding(
                    self,
                    node,
                    "bare 'except:' catches SystemExit/KeyboardInterrupt and "
                    "hides convergence failures; name the exception",
                )
                continue
            body = [
                stmt for stmt in node.body
                if not (
                    isinstance(stmt, ast.Expr)
                    and isinstance(stmt.value, ast.Constant)
                )
            ]
            if all(isinstance(stmt, (ast.Pass, ast.Continue)) for stmt in body):
                yield ctx.finding(
                    self,
                    node,
                    "exception is swallowed without handling or logging; "
                    "record the failure or re-raise",
                )


# ----------------------------------------------------------------------------
@register
class ImplicitDtypeAllocation(Rule):
    """R006: allocations without an explicit dtype in the numerical core.

    ``np.zeros(n)`` defaults to float64 — until someone feeds the result
    into a complex (Bloch) code path and the imaginary part is silently
    discarded on assignment.  In ``core/`` and the assembly kernels every
    allocation states its dtype.
    """

    rule_id = "R006"
    severity = "error"
    description = (
        "np.zeros/np.empty without an explicit (non-None) dtype= in the "
        "numerical core, including aliased allocators"
    )
    path_filters = ("core/", "fem/assembly.py")

    @staticmethod
    def _has_dtype(node: ast.Call) -> bool:
        return len(node.args) >= 2 or any(
            kw.arg == "dtype" for kw in node.keywords
        )

    @staticmethod
    def _allocator_leaf(value: ast.AST) -> str | None:
        """``np.zeros``/``np.empty`` when ``value`` is that bare attribute."""
        dotted = _dotted(value)
        if dotted is None:
            return None
        parts = dotted.split(".")
        if len(parts) == 2 and parts[0] in ("np", "numpy") and parts[1] in (
            "zeros",
            "empty",
        ):
            return parts[1]
        return None

    @staticmethod
    def _shallow_calls(stmt: ast.AST) -> Iterator[ast.Call]:
        """Calls evaluated by this block statement itself."""
        for expr in header_exprs(stmt):
            for sub in ast.walk(expr):
                if isinstance(sub, ast.Call):
                    yield sub

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        # syntactic base case: direct np.zeros/np.empty without a dtype
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            leaf = self._allocator_leaf(node.func)
            if leaf is not None and not self._has_dtype(node):
                yield ctx.finding(
                    self,
                    node,
                    f"np.{leaf}() without explicit dtype= in the "
                    "numerical core; state the dtype (float or the "
                    "operator's complex dtype)",
                )
        yield from self._flow_findings(ctx)

    def _flow_findings(self, ctx: FileContext) -> Iterator[Finding]:
        """Reaching-definitions extensions: aliased allocators and dtype
        variables that may be None at the allocation site."""
        tree = ctx.tree
        module_aliases: dict[str, str] = {}
        for stmt in tree.body:
            if (
                isinstance(stmt, ast.Assign)
                and len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Name)
            ):
                leaf = self._allocator_leaf(stmt.value)
                if leaf is not None:
                    module_aliases[stmt.targets[0].id] = leaf
        for scope in (tree, *module_functions(tree)):
            rd = ReachingDefinitions(build_cfg(scope))
            rd.run()
            for block in rd.cfg.blocks:
                for stmt in block.stmts:
                    for call in self._shallow_calls(stmt):
                        yield from self._check_call(
                            ctx, call, stmt, rd, module_aliases
                        )

    def _alias_leaf(
        self,
        call: ast.Call,
        stmt: ast.AST,
        rd: ReachingDefinitions,
        module_aliases: dict[str, str],
    ) -> str | None:
        """Allocator behind a plain-name call, via its reaching defs."""
        if not isinstance(call.func, ast.Name):
            return None
        defs = rd.defs_at(stmt, call.func.id)
        if defs:
            leaves = {
                self._allocator_leaf(d.value)
                if isinstance(d, ast.Assign)
                else None
                for d in defs
            }
            if len(leaves) == 1:
                return leaves.pop()
            return None
        return module_aliases.get(call.func.id)

    def _check_call(
        self,
        ctx: FileContext,
        call: ast.Call,
        stmt: ast.AST,
        rd: ReachingDefinitions,
        module_aliases: dict[str, str],
    ) -> Iterator[Finding]:
        alias_leaf = self._alias_leaf(call, stmt, rd, module_aliases)
        if alias_leaf is not None and not self._has_dtype(call):
            yield ctx.finding(
                self,
                call,
                f"'{call.func.id}' aliases np.{alias_leaf} and is called "
                "without an explicit dtype=; state the dtype at the "
                "allocation site",
            )
        direct_leaf = self._allocator_leaf(call.func)
        if direct_leaf is None and alias_leaf is None:
            return
        for kw in call.keywords:
            if kw.arg != "dtype":
                continue
            if isinstance(kw.value, ast.Constant) and kw.value.value is None:
                yield ctx.finding(
                    self,
                    call,
                    "dtype=None is the implicit default in disguise; state "
                    "the dtype explicitly",
                )
            elif isinstance(kw.value, ast.Name):
                defs = rd.defs_at(stmt, kw.value.id)
                if defs and any(
                    isinstance(d, ast.Assign)
                    and isinstance(d.value, ast.Constant)
                    and d.value.value is None
                    for d in defs
                ):
                    yield ctx.finding(
                        self,
                        call,
                        f"dtype variable '{kw.value.id}' may be None here "
                        "(a reaching definition assigns None); resolve the "
                        "dtype before the allocation",
                    )


# ----------------------------------------------------------------------------
@register
class UnusedImport(Rule):
    """R007: module-level imports that are never referenced.

    Dead imports hide real dependencies and (for heavy modules) slow cold
    start.  ``__init__.py`` re-export modules are exempt unless they define
    ``__all__``, in which case imports must appear there or in code.
    """

    rule_id = "R007"
    severity = "warning"
    description = "module-level import is never used"

    @staticmethod
    def _exported(tree: ast.Module) -> set[str] | None:
        """Names in ``__all__`` if present, else None."""
        for node in tree.body:
            if (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and node.targets[0].id == "__all__"
                and isinstance(node.value, (ast.List, ast.Tuple))
            ):
                return {
                    e.value
                    for e in node.value.elts
                    if isinstance(e, ast.Constant) and isinstance(e.value, str)
                }
        return None

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        exported = self._exported(ctx.tree)
        if ctx.path.endswith("__init__.py") and exported is None:
            return  # pure re-export module
        used: set[str] = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Name):
                used.add(node.id)
        if exported:
            used |= exported

        for node in ctx.tree.body:
            if isinstance(node, ast.Import):
                for alias in node.names:
                    bound = alias.asname or alias.name.split(".")[0]
                    if bound not in used:
                        yield ctx.finding(
                            self, node, f"'import {alias.name}' is unused"
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module == "__future__":
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    bound = alias.asname or alias.name
                    if bound not in used:
                        mod = "." * node.level + (node.module or "")
                        yield ctx.finding(
                            self,
                            node,
                            f"'from {mod} import {alias.name}' is unused",
                        )


# ----------------------------------------------------------------------------
@register
class UnusedVariable(Rule):
    """R008: local variables assigned but never read.

    Usually a leftover from refactoring — or worse, a result that was meant
    to be used (a computed correction that never makes it into the energy).
    Underscore-prefixed names are exempt.
    """

    rule_id = "R008"
    severity = "warning"
    description = "local variable is assigned but never used"

    _DYNAMIC = frozenset({"locals", "vars", "eval", "exec", "globals"})

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for fn in _functions(ctx.tree):
            if any(
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in self._DYNAMIC
                for node in ast.walk(fn)
            ):
                continue
            loaded: set[str] = set()
            augmented: set[str] = set()
            for node in ast.walk(fn):
                if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
                    loaded.add(node.id)
                elif isinstance(node, ast.AugAssign) and isinstance(
                    node.target, ast.Name
                ):
                    augmented.add(node.target.id)
            for node in ast.walk(fn):
                if not (isinstance(node, ast.Assign) and len(node.targets) == 1):
                    continue
                target = node.targets[0]
                if not isinstance(target, ast.Name):
                    continue
                name = target.id
                if name.startswith("_") or name in loaded or name in augmented:
                    continue
                yield ctx.finding(
                    self,
                    node,
                    f"local variable '{name}' in '{fn.name}' is assigned but "
                    "never used",
                )


# ----------------------------------------------------------------------------
@register
class RawTimingOutsideObs(Rule):
    """R009: ad-hoc wall-clock reads bypass the reproscope subsystem.

    Timing scattered through the code as raw ``time.perf_counter()`` pairs
    cannot be aggregated, exported, or compared against the performance
    model, and it silently disagrees with the span tree the tracer builds.
    All timing goes through :mod:`repro.obs` — ``trace_region`` /
    ``kernel_region`` for regions, ``Stopwatch`` for simple elapsed-time
    reads.  The obs package itself (which wraps the clock) is exempt.
    """

    rule_id = "R009"
    severity = "error"
    description = (
        "raw time.perf_counter()/time.time() outside repro/obs; use "
        "reproscope spans or repro.obs.Stopwatch"
    )
    path_excludes = ("repro/obs/",)

    _CLOCKS = frozenset(
        {
            "perf_counter", "perf_counter_ns", "time", "time_ns",
            "monotonic", "monotonic_ns", "process_time", "process_time_ns",
        }
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                dotted = _dotted(node.func)
                if dotted is None:
                    continue
                parts = dotted.split(".")
                if (
                    len(parts) == 2
                    and parts[0] == "time"
                    and parts[1] in self._CLOCKS
                ):
                    yield ctx.finding(
                        self,
                        node,
                        f"raw clock read time.{parts[1]}() outside repro/obs; "
                        "wrap the region in a reproscope span "
                        "(trace_region/kernel_region) or use "
                        "repro.obs.Stopwatch",
                    )
            elif isinstance(node, ast.ImportFrom) and node.module == "time":
                clocks = [
                    a.name for a in node.names if a.name in self._CLOCKS
                ]
                if clocks:
                    yield ctx.finding(
                        self,
                        node,
                        f"importing {', '.join(clocks)} from time bypasses "
                        "the reproscope clock; use repro.obs instead",
                    )


# ----------------------------------------------------------------------------
@register
class SlowScatterOutsideFem(Rule):
    """R010: ``np.add.at`` scatters outside the sanctioned FEM fast path.

    ``np.ufunc.at`` is an order-of-magnitude slower than the precomputed
    :class:`repro.fem.scatter.ScatterMap` (sorted-connectivity segment sums /
    CSR matvec), which reproduces its accumulation order bit-for-bit.  Any
    scatter-add added elsewhere in the codebase silently reintroduces the
    bottleneck the fast apply path removed.  The FEM package itself — which
    hosts both the fast engines and the ``REPRO_SLOW_SCATTER`` reference
    implementation — is exempt; other sanctioned sites (e.g. the cluster
    model's per-rank partial sums) carry an explicit
    ``# reprolint: disable=R010`` pragma.
    """

    rule_id = "R010"
    severity = "error"
    description = (
        "np.add.at scatter outside repro/fem; use a precomputed "
        "repro.fem.scatter.ScatterMap"
    )
    path_excludes = ("repro/fem/",)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = _dotted(node.func)
            if dotted is None:
                continue
            parts = dotted.split(".")
            if len(parts) >= 2 and parts[-2:] == ["add", "at"]:
                yield ctx.finding(
                    self,
                    node,
                    f"{dotted}(...) scatter outside repro/fem; build a "
                    "ScatterMap once per mesh and call .add_to() (bit-"
                    "identical to np.add.at on zeroed output), or mark a "
                    "sanctioned site with `# reprolint: disable=R010`",
                )


# ----------------------------------------------------------------------------
@register
class BroadExceptionHandler(Rule):
    """R011: broad exception handlers outside the resilience boundary.

    Fault recovery is the job of :mod:`repro.resilience` — its
    :class:`~repro.resilience.RetryPolicy` is the one sanctioned place a
    broad ``except Exception`` may live, because it re-raises as a
    structured :class:`~repro.resilience.ResilienceError` after bounded
    retries.  Anywhere else, ``except Exception`` (or worse,
    ``BaseException`` / a bare ``except``) turns an injected fault or a
    genuine numerical failure into a silently-continued run, defeating the
    chaos harness: the tests assert "recover or raise a structured error",
    and a broad handler does neither.  Catch the specific exception
    (``InjectedFault``, ``np.linalg.LinAlgError``, ...) or let it
    propagate to the retry layer.
    """

    rule_id = "R011"
    severity = "error"
    description = (
        "broad except Exception/BaseException/bare except outside "
        "repro/resilience; catch specific exceptions or propagate to "
        "the retry layer"
    )
    path_excludes = ("repro/resilience/",)

    _BROAD = frozenset({"Exception", "BaseException"})

    def _broad_names(self, node: ast.AST | None) -> list[str]:
        """Broad exception-class names mentioned by a handler's type."""
        if node is None:
            return ["(bare)"]
        exprs = node.elts if isinstance(node, ast.Tuple) else [node]
        names = []
        for expr in exprs:
            dotted = _dotted(expr)
            if dotted is not None and dotted.split(".")[-1] in self._BROAD:
                names.append(dotted)
        return names

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            broad = self._broad_names(node.type)
            if not broad:
                continue
            if broad == ["(bare)"]:
                what = "bare 'except:'"
            else:
                what = f"'except {', '.join(broad)}'"
            yield ctx.finding(
                self,
                node,
                f"{what} outside repro/resilience swallows injected faults "
                "and real failures alike; catch the specific exception or "
                "let RetryPolicy handle it",
            )


# ----------------------------------------------------------------------------
@register
class SharedMemoryOutsideArena(Rule):
    """R017: raw shared-memory segments outside the procranks arena.

    POSIX shared memory has no owner once the creating process dies: a
    segment created ad hoc and not unlinked survives in ``/dev/shm`` until
    reboot, and a forked child that *unregisters* a name strips it from the
    parent's (fork-shared) resource tracker so the parent's unlink then
    fails.  :class:`repro.hpc.procranks.SharedArena` is the one sanctioned
    owner — it pairs every create with a ``weakref.finalize`` unlink and
    handles the fork-shared-tracker protocol, and the leak-guard tests
    enforce it.  Direct ``SharedMemory(...)`` construction (or a
    ``ShareableList``) anywhere else bypasses that lifecycle.
    """

    rule_id = "R017"
    severity = "error"
    description = (
        "multiprocessing SharedMemory/ShareableList constructed outside "
        "repro/hpc/procranks; allocate through SharedArena"
    )
    path_excludes = ("repro/hpc/procranks/",)

    _CTORS = frozenset({"SharedMemory", "ShareableList"})

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = _dotted(node.func)
            if dotted is None:
                continue
            leaf = dotted.rsplit(".", 1)[-1]
            if leaf in self._CTORS:
                yield ctx.finding(
                    self,
                    node,
                    f"{dotted}(...) creates a raw shared-memory segment "
                    "outside repro/hpc/procranks; allocate through "
                    "SharedArena (finalizer-backed unlink, fork-shared "
                    "resource-tracker protocol) so segments cannot leak "
                    "into /dev/shm",
                )


# ----------------------------------------------------------------------------
@register
class HardCodedBlockSize(Rule):
    """R018: literal ``block_size=`` at call sites in the numerical core.

    The wavefunction/subspace block sizes are *schedule* knobs owned by
    ``SCFOptions`` and the per-host tuned profile (:mod:`repro.tune`): a
    literal baked into a call site silently overrides both the user's
    explicit choice and the autotuner, and BENCH_apply shows the penalty
    can be 3.5x on this host alone.  Callers must thread a variable
    (``opts.block_size``, ``opts.subspace_block``, ``self.block_size``,
    a parameter...).  Function-signature defaults and dataclass field
    declarations are not call keywords, so declaring a default stays
    legal — only hard-wired *call sites* are flagged.
    """

    rule_id = "R018"
    severity = "error"
    description = (
        "literal block_size= at a call site in repro/core or repro/invdft; "
        "thread SCFOptions / tuned-profile block choices instead"
    )
    path_filters = ("core/", "invdft/")

    _KNOBS = frozenset({"block_size", "subspace_block_size"})

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            for kw in node.keywords:
                if (
                    kw.arg in self._KNOBS
                    and isinstance(kw.value, ast.Constant)
                    and isinstance(kw.value.value, int)
                    and not isinstance(kw.value.value, bool)
                ):
                    yield ctx.finding(
                        self,
                        kw.value,
                        f"hard-coded {kw.arg}={kw.value.value} at a call "
                        "site; block choices belong to SCFOptions / the "
                        "tuned profile, pass a threaded variable instead",
                    )


def _data_root(expr: ast.AST) -> str | None:
    """The underlying buffer name behind slices and dtype-preserving
    wrappers (``X[:, si].astype`` and ``Xi.conj().T`` both root at X/Xi)."""
    while True:
        if isinstance(expr, ast.Subscript):
            expr = expr.value
        elif isinstance(expr, ast.Attribute) and expr.attr in (
            "real", "imag", "T",
        ):
            expr = expr.value
        elif (
            isinstance(expr, ast.Call)
            and isinstance(expr.func, ast.Attribute)
            and expr.func.attr in (
                "conj", "conjugate", "copy", "reshape", "ravel", "transpose",
            )
        ):
            expr = expr.func.value
        else:
            break
    return expr.id if isinstance(expr, ast.Name) else None


def _astypes_by_innermost_loop(
    tree: ast.Module,
) -> list[tuple[ast.Call, ast.For | ast.AsyncFor | ast.While | None]]:
    """Each ``.astype`` call paired with its innermost enclosing loop
    (None when not inside a loop body; nested functions reset the loop
    context — they run in their own scope)."""
    out: list[tuple[ast.Call, ast.AST | None]] = []

    def collect(node: ast.AST, loop: ast.AST | None) -> None:
        for sub in ast.walk(node):
            if (
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Attribute)
                and sub.func.attr == "astype"
            ):
                out.append((sub, loop))

    def visit(stmts: list[ast.stmt], loop: ast.AST | None) -> None:
        for stmt in stmts:
            if isinstance(stmt, (ast.For, ast.AsyncFor, ast.While)):
                for expr in header_exprs(stmt):
                    collect(expr, loop)
                visit(stmt.body + stmt.orelse, stmt)
            elif isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                visit(stmt.body, None)
            elif isinstance(stmt, ast.If):
                collect(stmt.test, loop)
                visit(stmt.body + stmt.orelse, loop)
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                for expr in header_exprs(stmt):
                    collect(expr, loop)
                visit(stmt.body, loop)
            elif isinstance(stmt, ast.Try):
                visit(stmt.body + stmt.orelse + stmt.finalbody, loop)
                for handler in stmt.handlers:
                    visit(handler.body, loop)
            elif isinstance(stmt, ast.Match):
                collect(stmt.subject, loop)
                for case in stmt.cases:
                    visit(case.body, loop)
            else:
                collect(stmt, loop)

    visit(tree.body, None)
    return out


# ----------------------------------------------------------------------------
@register
class AstypeInsideLoop(Rule):
    """R012: per-iteration re-casts of loop-invariant data in repro/core.

    Re-casting the same columns once per block pair is exactly the pattern
    the batched subspace engine removed: with mixed precision, ``X``/``HX``
    are downcast to an FP32 mirror *once* per call
    (:func:`repro.precision.fp32_mirror`) and every block reads a slice.
    The rule is flow-aware: an ``.astype`` inside a loop is flagged only
    when its operand's *data root* is invariant with respect to the
    innermost enclosing loop — i.e. the same underlying buffer is re-cast
    every iteration and the cast is hoistable.  Casting a value the loop
    itself computes (``blk32.astype(X.dtype)`` where ``blk32`` comes from
    a matmul in the body) re-pays nothing and is clean.  A one-step
    definition chain is followed so re-slices of an invariant buffer
    (``Xi = X[:, si]; Xi.astype(f32)``) are still recognized as hoistable.
    Sanctioned reference implementations carry a
    ``# reprolint: disable=R012`` pragma.
    """

    rule_id = "R012"
    severity = "error"
    description = (
        "astype() of loop-invariant data inside a loop in repro/core; "
        "hoist to a single-cast mirror (repro.precision.fp32_mirror) "
        "outside the loop"
    )
    path_filters = ("core/",)

    @staticmethod
    def _bindings_of(name: str, stmts: list[ast.stmt]) -> list[ast.AST]:
        """Statements in (compound-descended) ``stmts`` binding ``name``."""
        found: list[ast.AST] = []

        def visit(stmt: ast.AST) -> None:
            for bound, node in shallow_defs(stmt):
                if bound == name:
                    found.append(node)
            if isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                return
            for attr in ("body", "orelse", "finalbody"):
                for sub in getattr(stmt, attr, []):
                    visit(sub)
            for handler in getattr(stmt, "handlers", []):
                visit(handler)
            for case in getattr(stmt, "cases", []):
                for sub in case.body:
                    visit(sub)

        for s in stmts:
            visit(s)
        return found

    def _hoistable(self, root: str, loop: ast.AST) -> bool:
        body = list(loop.body) + list(loop.orelse)
        bound = assigned_names(body)
        if isinstance(loop, (ast.For, ast.AsyncFor)):
            bound |= set(target_names(loop.target))
        if root not in bound:
            return True  # operand data is invariant w.r.t. this loop
        # one-step def chain: every binding of root inside the loop must
        # re-slice an invariant buffer (Xi = X[:, si])
        bindings = self._bindings_of(root, body)
        if not bindings:
            return False
        for node in bindings:
            if not isinstance(node, ast.Assign):
                return False
            src_root = _data_root(node.value)
            if src_root is None or src_root in bound:
                return False
        return True

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        seen: set[tuple[int, int]] = set()
        for call, loop in _astypes_by_innermost_loop(ctx.tree):
            if loop is None:
                continue
            key = (call.lineno, call.col_offset)
            if key in seen:
                continue
            root = _data_root(call.func.value)
            if root is None or not self._hoistable(root, loop):
                continue
            seen.add(key)
            yield ctx.finding(
                self,
                call,
                f".astype() re-casts loop-invariant '{root}' every "
                "iteration; hoist it to a single fp32_mirror outside the "
                "loop (or mark a sanctioned reference path with "
                "`# reprolint: disable=R012`)",
            )
