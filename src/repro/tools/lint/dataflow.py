"""Dataflow analyses over reprolint CFGs.

Two analyses share one forward worklist engine (:class:`ForwardAnalysis`):

* :class:`ReachingDefinitions` — which assignments of each name may
  reach each statement (used by R006 to resolve aliased allocators and
  ``dtype=`` variables).
* :class:`DtypeFlow` — a small abstract interpretation whose facts are
  sets of *reduced-precision origins* (``.astype(float32)`` downcasts,
  low-precision ``np.zeros``/``np.empty`` allocations, calls to mirror
  helpers such as ``fp32_mirror``).  Facts propagate through
  assignments, slicing, precision-preserving methods and arithmetic;
  they are *cleared* by an upcast (``.astype`` to a non-reduced dtype)
  and by storing into an existing wider buffer (``buf[...] = x32``
  upcasts on assignment).  R001 flags an origin only when its value
  *escapes* — via ``return``/``yield``, an attribute store, or a
  module-level binding — from a function that is not itself a
  whitelisted mixed-precision kernel (name matching
  :data:`WHITELIST_NAME_RE`).

Environments map names to frozensets of facts; joins are pointwise
unions and transfers are strong updates, so the fixpoint terminates
(the fact universe per function is finite).  After the fixpoint, one
*record* pass over the stable block-entry environments collects
per-statement results (reaching-def snapshots, escapes).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Iterator

from .cfg import CFG, Block, build_cfg, header_exprs, shallow_defs, target_names

__all__ = [
    "LOWPREC_ATTRS",
    "LOWPREC_STRINGS",
    "WHITELIST_NAME_RE",
    "dotted_name",
    "module_functions",
    "lowprec_dtype_names",
    "is_lowprec_dtype",
    "ForwardAnalysis",
    "ReachingDefinitions",
    "DtypeFlow",
    "LowOrigin",
    "Escape",
    "ModuleDtypeReport",
    "analyze_module_dtypes",
]

#: attribute / string spellings of reduced-precision dtypes
LOWPREC_ATTRS = frozenset(
    {"float32", "complex64", "float16", "half", "single", "csingle"}
)
LOWPREC_STRINGS = frozenset(
    {"float32", "complex64", "float16", "single", "f4", "c8", "f2"}
)

#: functions allowed to handle reduced precision internally (the
#: whitelisted mixed-precision kernels announce it in their name)
WHITELIST_NAME_RE = re.compile(
    r"(fp32|f32|c64|mirror|lowprec|low_prec|half|single)", re.IGNORECASE
)
#: call leaves that *produce* a reduced-precision array by convention
_HELPER_RE = re.compile(r"(fp32|f32|c64|mirror)", re.IGNORECASE)

#: attribute accesses that preserve the array's storage dtype
_PRESERVING_ATTRS = frozenset({"real", "imag", "T"})
#: zero-argument-ish methods that preserve the storage dtype
_PRESERVING_METHODS = frozenset(
    {"conj", "conjugate", "copy", "reshape", "ravel", "transpose", "view",
     "squeeze"}
)
_NP_ALLOC = frozenset(
    {"zeros", "empty", "ones", "full", "array", "asarray",
     "ascontiguousarray", "asfortranarray"}
)
_NP_ALLOC_LIKE = frozenset(
    {"zeros_like", "empty_like", "ones_like", "full_like"}
)


def dotted_name(node: ast.AST) -> str | None:
    """Render a Name/Attribute chain as ``a.b.c`` (None if not a chain)."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def module_functions(
    tree: ast.Module,
) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def lowprec_dtype_names(tree: ast.Module) -> set[str]:
    """Names assigned from a reduced-precision *dtype-valued* expression
    (``f32 = np.float32``, ``pdt = f32_dtype(X.dtype)``...)."""
    names: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(target, ast.Name) and is_lowprec_dtype(
                node.value, names
            ):
                names.add(target.id)
    return names


def is_lowprec_dtype(node: ast.AST, names: set[str]) -> bool:
    """Does this expression denote a reduced-precision dtype value?"""
    if isinstance(node, ast.Attribute) and node.attr in LOWPREC_ATTRS:
        return True
    if isinstance(node, ast.Name) and node.id in names:
        return True
    if isinstance(node, ast.Constant) and node.value in LOWPREC_STRINGS:
        return True
    if isinstance(node, ast.IfExp):
        return is_lowprec_dtype(node.body, names) or is_lowprec_dtype(
            node.orelse, names
        )
    if isinstance(node, ast.Call):
        dotted = dotted_name(node.func)
        if dotted is not None:
            leaf = dotted.rsplit(".", maxsplit=1)[-1]
            # np.dtype("float32"), and helper factories like f32_dtype(...)
            if leaf == "dtype" and node.args and is_lowprec_dtype(
                node.args[0], names
            ):
                return True
            if "f32" in leaf or "c64" in leaf:
                return True
    return False


def _join_envs(a: dict, b: dict) -> dict:
    return {
        k: a.get(k, frozenset()) | b.get(k, frozenset())
        for k in a.keys() | b.keys()
    }


# ----------------------------------------------------------------------------
class ForwardAnalysis:
    """Forward worklist fixpoint with union joins over a CFG."""

    def __init__(self, cfg: CFG) -> None:
        self.cfg = cfg
        self.in_envs: dict[int, dict | None] = {}

    def initial_env(self) -> dict:
        return {}

    def transfer(self, stmt: ast.AST, env: dict, record: bool) -> None:
        raise NotImplementedError

    def run(self) -> "ForwardAnalysis":
        cfg = self.cfg
        self.in_envs = {b.bid: None for b in cfg.blocks}
        self.in_envs[cfg.entry.bid] = self.initial_env()
        work: list[Block] = [cfg.entry]
        pending = {cfg.entry.bid}
        while work:
            block = work.pop(0)
            pending.discard(block.bid)
            env_in = self.in_envs[block.bid]
            if env_in is None:
                continue
            out = dict(env_in)
            for stmt in block.stmts:
                self.transfer(stmt, out, record=False)
            for succ in block.succs:
                cur = self.in_envs[succ.bid]
                joined = dict(out) if cur is None else _join_envs(cur, out)
                if joined != cur:
                    self.in_envs[succ.bid] = joined
                    if succ.bid not in pending:
                        pending.add(succ.bid)
                        work.append(succ)
        # record pass over the stable environments
        for block in cfg.blocks:
            env_in = self.in_envs[block.bid]
            if env_in is None:
                continue
            env = dict(env_in)
            for stmt in block.stmts:
                self.transfer(stmt, env, record=True)
        return self


# ----------------------------------------------------------------------------
class ReachingDefinitions(ForwardAnalysis):
    """Which definition statements of each name may reach each statement."""

    def __init__(self, cfg: CFG) -> None:
        super().__init__(cfg)
        self.before: dict[int, dict[str, frozenset]] = {}

    def transfer(self, stmt: ast.AST, env: dict, record: bool) -> None:
        if record:
            self.before[id(stmt)] = dict(env)
        for name, node in shallow_defs(stmt):
            env[name] = frozenset({node})  # strong update

    def defs_at(self, stmt: ast.AST, name: str) -> frozenset:
        """Definition nodes of ``name`` that may reach ``stmt`` (the
        statement must be a block statement of this CFG)."""
        return self.before.get(id(stmt), {}).get(name, frozenset())


# ----------------------------------------------------------------------------
@dataclass(frozen=True, eq=False)
class LowOrigin:
    """A program point that creates a reduced-precision array."""

    node: ast.AST
    kind: str  # "downcast" | "allocation" | "helper-call"
    detail: str


@dataclass(frozen=True, eq=False)
class Escape:
    """A reduced-precision value leaving its defining scope."""

    origin: LowOrigin
    site: ast.AST
    kind: str  # "return" | "yield" | "attribute-store" | "module-global"
    scope: str


def _is_scalar(node: ast.AST) -> bool:
    if isinstance(node, ast.Constant):
        return isinstance(node.value, (int, float, complex))
    if isinstance(node, ast.UnaryOp):
        return _is_scalar(node.operand)
    return False


class DtypeFlow(ForwardAnalysis):
    """Abstract interpretation propagating reduced-precision origins."""

    def __init__(
        self,
        cfg: CFG,
        *,
        dtype_names: set[str] | None = None,
        summaries: dict[str, bool] | None = None,
        is_module: bool = False,
        scope: str = "",
    ) -> None:
        super().__init__(cfg)
        self.dtype_names = dtype_names or set()
        self.summaries = summaries or {}
        self.is_module = is_module
        self.scope = scope or cfg.name
        self.escapes: list[Escape] = []
        self.returns_low = False
        self._origin_cache: dict[int, LowOrigin] = {}
        self._escape_keys: set[tuple[int, int, str]] = set()

    # -- origins -------------------------------------------------------------
    def _origin(self, node: ast.AST, kind: str, detail: str) -> LowOrigin:
        cached = self._origin_cache.get(id(node))
        if cached is None:
            cached = LowOrigin(node, kind, detail)
            self._origin_cache[id(node)] = cached
        return cached

    # -- expression evaluation -----------------------------------------------
    def eval(self, node: ast.AST, env: dict) -> frozenset:
        if isinstance(node, ast.Name):
            return env.get(node.id, frozenset())
        if isinstance(node, ast.Subscript):
            return self.eval(node.value, env)
        if isinstance(node, ast.Attribute):
            if node.attr in _PRESERVING_ATTRS:
                return self.eval(node.value, env)
            return frozenset()
        if isinstance(node, ast.UnaryOp):
            return self.eval(node.operand, env)
        if isinstance(node, ast.BinOp):
            left = self.eval(node.left, env)
            right = self.eval(node.right, env)
            if left and right:
                return left | right
            if left and _is_scalar(node.right):
                return left
            if right and _is_scalar(node.left):
                return right
            # mixed low/wide arithmetic upcasts to the wider dtype
            return frozenset()
        if isinstance(node, ast.IfExp):
            return self.eval(node.body, env) | self.eval(node.orelse, env)
        if isinstance(node, ast.NamedExpr):
            fact = self.eval(node.value, env)
            if isinstance(node.target, ast.Name):
                env[node.target.id] = fact
            return fact
        if isinstance(node, ast.Call):
            return self._eval_call(node, env)
        return frozenset()

    def _eval_call(self, node: ast.Call, env: dict) -> frozenset:
        func = node.func
        if isinstance(func, ast.Attribute):
            if func.attr == "astype":
                if node.args and is_lowprec_dtype(
                    node.args[0], self.dtype_names
                ):
                    return frozenset(
                        {self._origin(node, "downcast",
                                      "astype() to a reduced-precision dtype")}
                    )
                return frozenset()  # upcast / unknown target clears the fact
            if func.attr in _PRESERVING_METHODS:
                return self.eval(func.value, env)
        dotted = dotted_name(func)
        if dotted is None:
            return frozenset()
        parts = dotted.split(".")
        leaf = parts[-1]
        is_np = len(parts) >= 2 and parts[0] in ("np", "numpy")
        dtype_kw = next(
            (kw.value for kw in node.keywords if kw.arg == "dtype"), None
        )
        out_kw = next(
            (kw.value for kw in node.keywords if kw.arg == "out"), None
        )
        if is_np and leaf in _NP_ALLOC:
            dtype_expr = dtype_kw
            if (
                dtype_expr is None
                and leaf in ("zeros", "empty", "ones")
                and len(node.args) >= 2
            ):
                dtype_expr = node.args[1]
            if dtype_expr is not None:
                if is_lowprec_dtype(dtype_expr, self.dtype_names):
                    return frozenset(
                        {self._origin(node, "allocation",
                                      f"np.{leaf} with a reduced-precision "
                                      "dtype")}
                    )
                return frozenset()
            if leaf in ("array", "asarray", "ascontiguousarray",
                        "asfortranarray") and node.args:
                return self.eval(node.args[0], env)
            return frozenset()
        if is_np and leaf in _NP_ALLOC_LIKE:
            if dtype_kw is not None:
                if is_lowprec_dtype(dtype_kw, self.dtype_names):
                    return frozenset(
                        {self._origin(node, "allocation",
                                      f"np.{leaf} with a reduced-precision "
                                      "dtype")}
                    )
                return frozenset()
            return self.eval(node.args[0], env) if node.args else frozenset()
        if is_np:
            # ufunc-style call: out= determines the result's storage dtype
            if out_kw is not None:
                return self.eval(out_kw, env)
            facts = [self.eval(a, env) for a in node.args]
            nonempty = [f for f in facts if f]
            if nonempty and all(
                f or _is_scalar(a) for f, a in zip(facts, node.args)
            ):
                return frozenset().union(*nonempty)
            return frozenset()
        # helper producing a reduced-precision array by naming convention
        # (fp32_mirror & friends); *_dtype factories yield dtype values,
        # not arrays
        if "dtype" not in leaf.lower() and _HELPER_RE.search(leaf):
            return frozenset(
                {self._origin(node, "helper-call", f"call to {dotted}()")}
            )
        if isinstance(func, ast.Name) and self.summaries.get(leaf):
            return frozenset(
                {self._origin(node, "helper-call",
                              f"call to local '{leaf}()' which returns a "
                              "reduced-precision value")}
            )
        return frozenset()

    # -- statement transfer --------------------------------------------------
    def transfer(self, stmt: ast.AST, env: dict, record: bool) -> None:
        if isinstance(stmt, ast.Assign):
            fact = self.eval(stmt.value, env)
            for target in stmt.targets:
                self._assign(target, stmt.value, fact, env, record, stmt)
            return
        if isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            fact = self.eval(stmt.value, env)
            self._assign(stmt.target, stmt.value, fact, env, record, stmt)
            return
        if isinstance(stmt, ast.AugAssign):
            # x += low keeps x's storage dtype (in-place upcast)
            return
        if isinstance(stmt, ast.Return):
            if stmt.value is not None:
                fact = self.eval(stmt.value, env)
                if fact:
                    self.returns_low = True
                    if record:
                        self._escape(fact, stmt, "return")
            return
        if isinstance(stmt, ast.Expr):
            value = stmt.value
            if isinstance(value, (ast.Yield, ast.YieldFrom)):
                inner = getattr(value, "value", None)
                if inner is not None:
                    fact = self.eval(inner, env)
                    if fact:
                        self.returns_low = True
                        if record:
                            self._escape(fact, value, "yield")
                return
            self.eval(value, env)  # evaluate for walrus side effects
            return
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            # iterating a reduced-precision array yields its rows
            fact = self.eval(stmt.iter, env)
            for name in target_names(stmt.target):
                env[name] = fact
            return
        # other statements: evaluate headers (walrus), kill header bindings
        for expr in header_exprs(stmt):
            self.eval(expr, env)
        for name, node in shallow_defs(stmt):
            if not isinstance(node, ast.NamedExpr):
                env[name] = frozenset()

    def _assign(
        self,
        target: ast.AST,
        value: ast.AST | None,
        fact: frozenset,
        env: dict,
        record: bool,
        stmt: ast.AST,
    ) -> None:
        if isinstance(target, ast.Name):
            env[target.id] = fact
            if (
                fact
                and self.is_module
                and record
                and not WHITELIST_NAME_RE.search(target.id)
            ):
                self._escape(fact, stmt, "module-global")
        elif isinstance(target, ast.Attribute):
            # storing on an object publishes the reduced-precision buffer
            if fact and record:
                self._escape(fact, stmt, "attribute-store")
        elif isinstance(target, ast.Subscript):
            # store into an existing buffer adopts *its* dtype (upcast on
            # assignment) — not an escape
            pass
        elif isinstance(target, (ast.Tuple, ast.List)):
            if isinstance(value, (ast.Tuple, ast.List)) and len(
                value.elts
            ) == len(target.elts):
                for t, v in zip(target.elts, value.elts):
                    self._assign(t, v, self.eval(v, env), env, record, stmt)
            else:
                for t in target.elts:
                    self._assign(t, None, fact, env, record, stmt)
        elif isinstance(target, ast.Starred):
            self._assign(target.value, None, fact, env, record, stmt)

    def _escape(self, fact: frozenset, site: ast.AST, kind: str) -> None:
        for origin in fact:
            key = (id(origin.node), id(site), kind)
            if key not in self._escape_keys:
                self._escape_keys.add(key)
                self.escapes.append(Escape(origin, site, kind, self.scope))


# ----------------------------------------------------------------------------
@dataclass
class ModuleDtypeReport:
    """Escapes and per-function return summaries for one module."""

    escapes: list[Escape] = field(default_factory=list)
    summaries: dict[str, bool] = field(default_factory=dict)


def analyze_module_dtypes(tree: ast.Module) -> ModuleDtypeReport:
    """Run :class:`DtypeFlow` over every function and the module top level.

    Two fixpoint passes propagate ``returns_low`` summaries through
    module-local call chains (one level of indirection per pass);
    functions whose *name* matches :data:`WHITELIST_NAME_RE` are
    whitelisted mixed-precision kernels and are skipped entirely.
    """
    dtype_names = lowprec_dtype_names(tree)
    fns = list(module_functions(tree))
    summaries: dict[str, bool] = {}
    collected: list[Escape] = []
    for _pass in (1, 2):
        next_summaries: dict[str, bool] = {}
        collected = []
        for fn in fns:
            if WHITELIST_NAME_RE.search(fn.name):
                next_summaries[fn.name] = False
                continue
            flow = DtypeFlow(
                build_cfg(fn),
                dtype_names=dtype_names,
                summaries=summaries,
                scope=fn.name,
            )
            flow.run()
            next_summaries[fn.name] = flow.returns_low
            collected.extend(flow.escapes)
        summaries = next_summaries
    mod_flow = DtypeFlow(
        build_cfg(tree),
        dtype_names=dtype_names,
        summaries=summaries,
        is_module=True,
        scope="<module>",
    )
    mod_flow.run()
    collected.extend(mod_flow.escapes)
    return ModuleDtypeReport(escapes=collected, summaries=summaries)
