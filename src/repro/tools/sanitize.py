"""reprosan — opt-in runtime race sanitizer for shared numerical state.

The static concurrency pass (reprolint R013–R016) proves lock
discipline where it can *see* it; this module checks it where it can't:
at runtime, across module boundaries, under the real thread
interleavings of the parallel-ChFES channel loop.

Armed via ``REPRO_SANITIZE=1`` in the environment (checked once at
import), or programmatically with :func:`arm` / the :func:`sanitized`
context manager.  Instrumented sites follow the same zero-overhead
pattern as the fault-injection guard (``_faults._PLAN is not None``)::

    san = _sanitize._STATE
    if san is not None:
        san.write_begin(tag)
    try:
        ...  # the guarded mutation
    finally:
        if san is not None:
            san.write_end(tag)

Unarmed, each site costs one module-attribute load and a ``None``
check — no locks, no allocation, bit-identical numerics.

Armed, the :class:`Sanitizer` maintains three structures:

* **write windows** — ``write_begin(tag)`` / ``write_end(tag)`` bracket
  a mutation of the resource named ``tag``.  A second thread entering a
  window another thread holds raises :class:`RaceReport` (same-thread
  re-entry is fine: the windows are reentrant).  Correctly locked call
  sites place the window *inside* the lock, so a window collision means
  the lock discipline is broken.
* **write versions** — each completed window bumps a per-tag counter,
  so tests can assert "exactly N mutations happened".
* **buffer ownership** — :meth:`Sanitizer.claim` tags a pooled buffer
  with the acquiring thread; :meth:`Sanitizer.assert_owned` raises
  :class:`RaceReport` when a buffer is consumed on a different thread
  (workspace pools are thread-local by design — a cross-thread buffer
  is a pooling bug).
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager
from typing import Iterator

__all__ = [
    "RaceReport",
    "Sanitizer",
    "arm",
    "disarm",
    "armed",
    "state",
    "sanitized",
]


class RaceReport(RuntimeError):
    """A concurrent unsynchronized access detected by the sanitizer."""

    def __init__(
        self,
        resource: str,
        kind: str,
        holder: str,
        intruder: str,
        detail: str = "",
    ) -> None:
        self.resource = resource
        self.kind = kind  # "concurrent-write" | "foreign-buffer"
        self.holder = holder
        self.intruder = intruder
        self.detail = detail
        msg = (
            f"{kind} on {resource!r}: held by thread {holder!r}, "
            f"accessed by thread {intruder!r}"
        )
        if detail:
            msg += f" ({detail})"
        super().__init__(msg)


class Sanitizer:
    """Write-window and buffer-ownership tracker (see module docstring)."""

    def __init__(self) -> None:
        self._meta = threading.Lock()
        #: tag -> [thread ident, thread name, reentry depth]
        self._windows: dict[str, list] = {}
        self._versions: dict[str, int] = {}
        #: id(buffer) -> (tag, owner ident, owner name)
        self._owners: dict[int, tuple[str, int, str]] = {}

    # -- write windows -------------------------------------------------------
    def write_begin(self, tag: str) -> None:
        me = threading.current_thread()
        with self._meta:
            window = self._windows.get(tag)
            if window is None:
                self._windows[tag] = [me.ident, me.name, 1]
                return
            if window[0] == me.ident:
                window[2] += 1  # reentrant on the same thread
                return
            raise RaceReport(
                tag, "concurrent-write", holder=window[1], intruder=me.name
            )

    def write_end(self, tag: str) -> None:
        me = threading.current_thread()
        with self._meta:
            window = self._windows.get(tag)
            if window is None or window[0] != me.ident:
                return  # end without begin (or after a report) — tolerate
            window[2] -= 1
            if window[2] <= 0:
                del self._windows[tag]
                self._versions[tag] = self._versions.get(tag, 0) + 1

    def write_version(self, tag: str) -> int:
        """Completed write windows for ``tag``."""
        with self._meta:
            return self._versions.get(tag, 0)

    # -- buffer ownership ----------------------------------------------------
    def claim(self, buf: object, tag: str) -> None:
        """Record the current thread as the owner of a pooled buffer."""
        me = threading.current_thread()
        with self._meta:
            self._owners[id(buf)] = (tag, me.ident or 0, me.name)

    def release(self, buf: object) -> None:
        with self._meta:
            self._owners.pop(id(buf), None)

    def assert_owned(self, buf: object, context: str = "") -> None:
        """Raise :class:`RaceReport` if ``buf`` was claimed by another
        thread.  Unclaimed buffers pass (not every array is pooled)."""
        me = threading.current_thread()
        with self._meta:
            record = self._owners.get(id(buf))
        if record is not None and record[1] != me.ident:
            raise RaceReport(
                record[0],
                "foreign-buffer",
                holder=record[2],
                intruder=me.name,
                detail=context or "pooled buffer used off its owning thread",
            )


#: the armed sanitizer, or None — instrumented sites check this directly
_STATE: Sanitizer | None = None


def arm() -> Sanitizer:
    """Arm the sanitizer (idempotent); returns the active instance."""
    global _STATE
    if _STATE is None:
        _STATE = Sanitizer()
    return _STATE


def disarm() -> None:
    global _STATE
    _STATE = None


def armed() -> bool:
    return _STATE is not None


def state() -> Sanitizer | None:
    return _STATE


@contextmanager
def sanitized() -> Iterator[Sanitizer]:
    """Run a block under a fresh sanitizer, restoring the previous state."""
    global _STATE
    previous = _STATE
    _STATE = Sanitizer()
    try:
        yield _STATE
    finally:
        _STATE = previous


if os.environ.get("REPRO_SANITIZE", "").strip().lower() in ("1", "true", "yes"):
    _STATE = Sanitizer()
