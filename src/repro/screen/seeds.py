"""Family-aware seed store: converged densities as warm starts.

The first reuse layer of a screening campaign.  Every converged member
deposits its density here, keyed by its structure descriptor; each new
member asks for the density of its **nearest already-solved neighbor**
in descriptor space.  Three outcomes:

* matching discretization — the neighbor's density is handed over as a
  bitwise copy (the shared-domain campaign path);
* different mesh — the density is evaluated at the new mesh's nodes
  through :class:`repro.fem.interpolation.FieldInterpolator`, floored
  and renormalized to the member's electron count;
* no neighbor close enough (relative descriptor distance beyond the
  OOD threshold) — the store declines and the caller falls back to the
  superposition-of-atomic-densities cold start.

A seed only shapes the SCF *trajectory*, never its fixed point: the
solver still converges to the member's own ground state (the golden
tests pin cold-vs-seeded energies to 1e-12).  That is why seed identity
deliberately stays out of serve cache keys.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.fem.interpolation import FieldInterpolator
from repro.fem.mesh import Mesh3D

__all__ = ["SeedEntry", "SeedStore", "meshes_match"]


def meshes_match(a: Mesh3D, b: Mesh3D) -> bool:
    """True when two meshes carry identical discretizations.

    Identity of the FE space — degree, periodicity and the exact cell
    edges — which is the precondition for transferring nodal fields as
    bitwise copies.
    """
    if a is b:
        return True
    if a.degree != b.degree or tuple(a.pbc) != tuple(b.pbc):
        return False
    return all(
        ea.shape == eb.shape and np.array_equal(ea, eb)
        for ea, eb in zip(a.edges, b.edges)
    )


@dataclass
class SeedEntry:
    """One deposited density: descriptor + field + provenance."""

    key: str
    descriptor: np.ndarray
    rho_spin: np.ndarray
    mesh: Mesh3D
    #: optional on-disk artifact holding the same density (serve mode
    #: hands this path to remote runners instead of shipping the array)
    artifact: str | None = None
    index: int = 0  #: insertion order (the deterministic tie-break)


@dataclass
class SeedStoreStats:
    """Counters of one store lifetime."""

    deposits: int = 0
    queries: int = 0
    hits_exact: int = 0  #: matching mesh, bitwise copy
    hits_interpolated: int = 0
    misses_empty: int = 0
    misses_ood: int = 0

    @property
    def hit_rate(self) -> float:
        if self.queries == 0:
            return 0.0
        return (self.hits_exact + self.hits_interpolated) / self.queries

    def as_dict(self) -> dict[str, float]:
        return {
            "deposits": float(self.deposits),
            "queries": float(self.queries),
            "hits_exact": float(self.hits_exact),
            "hits_interpolated": float(self.hits_interpolated),
            "misses_empty": float(self.misses_empty),
            "misses_ood": float(self.misses_ood),
            "hit_rate": self.hit_rate,
        }


class SeedStore:
    """Nearest-neighbor warm-start store over structure descriptors.

    ``ood_threshold`` bounds the *relative* descriptor distance
    (Euclidean, normalized by the larger descriptor norm) up to which a
    neighbor is trusted as a seed; beyond it the store reports an
    out-of-distribution miss.  Selection is deterministic: exact
    distance ties go to the earliest deposit.
    """

    def __init__(self, ood_threshold: float = 0.5) -> None:
        if ood_threshold <= 0.0:
            raise ValueError("ood_threshold must be positive")
        self.ood_threshold = float(ood_threshold)
        self.entries: list[SeedEntry] = []
        self.stats = SeedStoreStats()

    def __len__(self) -> int:
        return len(self.entries)

    # ------------------------------------------------------------------
    def put(
        self,
        key: str,
        descriptor: np.ndarray,
        rho_spin: np.ndarray,
        mesh: Mesh3D,
        artifact: str | None = None,
    ) -> SeedEntry:
        """Deposit a converged density (stored as a private copy)."""
        entry = SeedEntry(
            key=str(key),
            descriptor=np.asarray(descriptor, dtype=float).copy(),
            rho_spin=np.asarray(rho_spin, dtype=float).copy(),
            mesh=mesh,
            artifact=artifact,
            index=len(self.entries),
        )
        self.entries.append(entry)
        self.stats.deposits += 1
        return entry

    @staticmethod
    def distance(a: np.ndarray, b: np.ndarray) -> float:
        """Relative Euclidean descriptor distance (scale-free)."""
        a = np.asarray(a, dtype=float)
        b = np.asarray(b, dtype=float)
        scale = max(float(np.linalg.norm(a)), float(np.linalg.norm(b)), 1e-30)
        return float(np.linalg.norm(a - b)) / scale

    def nearest(
        self, descriptor: np.ndarray
    ) -> tuple[SeedEntry | None, float]:
        """Closest entry and its relative distance (None when empty).

        Deterministic: strict ``<`` on distance means equal-distance
        entries resolve to the earliest insertion.
        """
        best: SeedEntry | None = None
        best_d = np.inf
        for entry in self.entries:
            d = self.distance(descriptor, entry.descriptor)
            if d < best_d:
                best, best_d = entry, d
        return best, float(best_d)

    # ------------------------------------------------------------------
    def seed_for(
        self,
        descriptor: np.ndarray,
        mesh: Mesh3D,
        n_electrons: float,
    ) -> tuple[np.ndarray | None, dict[str, Any]]:
        """Warm-start density for a new member, or None to start cold.

        Returns ``(rho_spin, info)``; ``info`` records the decision
        (``source``: "exact" / "interpolated" / None, the neighbor key
        and distance) for campaign reporting.
        """
        self.stats.queries += 1
        entry, dist = self.nearest(descriptor)
        if entry is None:
            self.stats.misses_empty += 1
            return None, {"source": None, "reason": "empty-store"}
        if dist > self.ood_threshold:
            self.stats.misses_ood += 1
            return None, {
                "source": None, "reason": "ood",
                "neighbor": entry.key, "distance": dist,
            }
        info = {"neighbor": entry.key, "distance": dist,
                "artifact": entry.artifact}
        if meshes_match(entry.mesh, mesh):
            self.stats.hits_exact += 1
            info["source"] = "exact"
            return entry.rho_spin.copy(), info
        rho = self._interpolate(entry, mesh, n_electrons)
        if rho is None:
            self.stats.misses_ood += 1
            return None, {
                "source": None, "reason": "degenerate-interpolation",
                "neighbor": entry.key, "distance": dist,
            }
        self.stats.hits_interpolated += 1
        info["source"] = "interpolated"
        return rho, info

    @staticmethod
    def _interpolate(
        entry: SeedEntry, mesh: Mesh3D, n_electrons: float
    ) -> np.ndarray | None:
        """Evaluate the donor density on a different mesh's nodes.

        Target nodes are clamped into the donor domain (a larger target
        domain samples the donor's boundary value), negative wiggle from
        the high-order interpolant is floored at zero, and the total is
        renormalized to the member's electron count — a seed must be an
        admissible density, not just a nearby field.
        """
        pts = np.asarray(mesh.node_coords, dtype=float).copy()
        donor = entry.mesh
        for a in range(3):
            e = donor.edges[a]
            pts[:, a] = np.clip(pts[:, a], float(e[0]), float(e[-1]))
        vals = FieldInterpolator(donor)(entry.rho_spin, pts)
        rho = np.maximum(np.asarray(vals, dtype=float), 0.0)
        total = float(mesh.integrate(rho.sum(axis=1)))
        if not np.isfinite(total) or total <= 0.0:
            return None
        return rho * (float(n_electrons) / total)
