"""Screen job kind for the serve runtime: one family member per job.

Campaigns submit members through :mod:`repro.serve` as batches of
``screen_member`` jobs.  The spec carries the *whole structure* (symbols
+ positions in shared-domain coordinates + the deterministic domain
discretization), so its SHA-256 content address identifies the physics
alone; warm-start seeds travel next to the spec as scheduling hints
(``ServeRequest.seed_rho`` -> ``Job.seed_rho`` -> ``SliceContext``),
never inside it — two campaigns that seed differently still share cache
entries, because a seed shapes the trajectory, not the fixed point.

The runner reconstructs the member's mesh bit-identically from the spec
(:func:`repro.screen.family.domain_mesh` is deterministic in its
arguments), applies the seed via ``SCFOptions.initial_rho_path`` and,
when the scheduler policy names an ``artifact_dir``, persists the
converged density as a seed artifact for later waves to harvest.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Any, ClassVar

import numpy as np

from repro.serve.jobs import JobSpec, register_job_type
from repro.serve.runners import RUNNERS, SliceContext, SliceOutcome

__all__ = ["ScreenJobSpec", "run_screen_member", "seed_artifact_path"]

_XC_CHOICES = ("lda", "pbe")


@register_job_type
@dataclass(frozen=True)
class ScreenJobSpec(JobSpec):
    """One family member: full structure + shared-domain discretization."""

    kind: ClassVar[str] = "screen_member"
    sliceable: ClassVar[bool] = False

    family: str = "family"
    member: str = "member"
    symbols: tuple[str, ...] = ("H", "H")
    #: Cartesian positions in shared-domain coordinates (Bohr)
    positions: tuple[tuple[float, float, float], ...] = (
        (5.0, 5.0, 5.0), (6.4, 5.0, 5.0),
    )
    #: shared-domain edge lengths (Bohr) — every member of a campaign
    #: carries the same domain, which is what makes meshes (and thus
    #: seed densities) portable across its jobs
    domain: tuple[float, float, float] = (11.4, 10.0, 10.0)
    xc: str = "lda"
    degree: int = 3
    cells: int = 3
    grading_ratio: float = 2.0
    max_scf: int = 300
    #: screening campaigns run tighter than the interactive defaults:
    #: the 1e-12 cold-vs-seeded energy gate needs the fixed point pinned
    #: well below the gate, the eigensolver double-filtered (one pass
    #: keeps ~5e-12 of subspace trajectory memory) and the warm-started
    #: Hartree solve converged past its own memory floor
    density_tol: float = 1e-14
    energy_tol: float = 1e-14
    filter_passes: int = 2
    poisson_tol: float = 1e-12
    ranks: int = 1

    def validate(self) -> None:
        super().validate()
        problems = []
        if not self.symbols:
            problems.append("needs at least one atom")
        if len(self.positions) != len(self.symbols):
            problems.append(
                f"{len(self.positions)} positions for "
                f"{len(self.symbols)} symbols"
            )
        if self.xc not in _XC_CHOICES:
            problems.append(f"xc must be one of {_XC_CHOICES}")
        if self.degree < 1 or self.cells < 2:
            problems.append("mesh needs degree >= 1 and cells >= 2")
        if self.max_scf < 1:
            problems.append("max_scf must be >= 1")
        if len(self.domain) != 3 or any(d <= 0 for d in self.domain):
            problems.append("domain lengths must be three positive numbers")
        else:
            for p in self.positions:
                if len(p) != 3 or any(
                    not 0.0 <= x <= d for x, d in zip(p, self.domain)
                ):
                    problems.append(f"position {p} outside the domain")
                    break
        if (
            self.density_tol <= 0
            or self.energy_tol <= 0
            or self.poisson_tol <= 0
        ):
            problems.append("tolerances must be positive")
        if self.filter_passes < 1:
            problems.append("filter_passes must be >= 1")
        if problems:
            raise ValueError(
                f"invalid screen_member spec: {'; '.join(problems)}"
            )


def seed_artifact_path(artifact_dir: str, spec: ScreenJobSpec) -> str:
    """Canonical artifact location for a member's converged density."""
    return os.path.join(artifact_dir, f"{spec.job_key()[:16]}.rho.npz")


def run_screen_member(spec: JobSpec, ctx: SliceContext) -> SliceOutcome:
    """Solve one member, optionally seeded, and persist its density."""
    assert isinstance(spec, ScreenJobSpec)
    from repro.atoms.pseudo import AtomicConfiguration
    from repro.core import DFTCalculation, SCFOptions, save_seed_density
    from repro.xc import LDA, PBE

    from .family import domain_mesh

    options = SCFOptions(
        max_iterations=spec.max_scf,
        density_tol=spec.density_tol,
        energy_tol=spec.energy_tol,
        filter_passes=spec.filter_passes,
        poisson_tol=spec.poisson_tol,
        backend=ctx.backend,
        nranks=max(1, int(ctx.ranks)),
        autotune=ctx.tuned,
        initial_rho_path=ctx.seed_rho,
    )
    mesh = domain_mesh(
        spec.domain, spec.cells, spec.degree, spec.grading_ratio,
        scatter_engine=options.scatter_engine,
    )
    config = AtomicConfiguration(
        list(spec.symbols), np.asarray(spec.positions, dtype=float)
    )
    xc = {"lda": LDA, "pbe": PBE}[spec.xc]()
    calc = DFTCalculation(config, xc=xc, mesh=mesh, options=options)
    with calc:
        res = calc.run()
    payload: dict[str, Any] = {
        "kind": "screen_member",
        "family": spec.family,
        "member": spec.member,
        "energy": float(res.energy),
        "free_energy": float(res.free_energy),
        "fermi_level": float(res.fermi_level),
        "converged": bool(res.converged),
        "n_iterations": int(res.n_iterations),
        "seeded": ctx.seed_rho is not None,
    }
    if ctx.artifact_dir is not None:
        os.makedirs(ctx.artifact_dir, exist_ok=True)
        path = seed_artifact_path(ctx.artifact_dir, spec)
        save_seed_density(
            path, mesh, res.rho_spin,
            metadata={"family": spec.family, "member": spec.member},
        )
        payload["artifact"] = path
    return SliceOutcome(
        "done", payload=payload, iterations=int(res.n_iterations)
    )


RUNNERS[ScreenJobSpec.kind] = run_screen_member
