"""High-throughput family screening with warm-start reuse (DESIGN.md sec 16).

The paper's applications are parameterized structure families; this
package turns the solver + serve runtime into a fast *fleet* for
sweeping them.  A campaign orders a family small-to-large and replaces
cold superposition starts with reused state: a shared-discretization
setup cache, a nearest-neighbor converged-density seed store, and an ML
density surrogate trained on the small members — all correctness-
neutral (seeds change iteration counts, never converged energies).
"""

from .driver import (
    CampaignReport,
    DiscretizationCache,
    MemberOutcome,
    ScreenCampaign,
)
from .family import (
    FamilyMember,
    StructureFamily,
    chain_family,
    dimer_family,
    domain_mesh,
    family_domain,
    solute_chain_family,
    solute_crystal_family,
    structure_descriptor,
)
from .seeds import SeedEntry, SeedStore, meshes_match
from .serve import ScreenJobSpec, run_screen_member
from .surrogate import DensitySurrogate, node_features

__all__ = [
    "CampaignReport",
    "DensitySurrogate",
    "DiscretizationCache",
    "FamilyMember",
    "MemberOutcome",
    "ScreenCampaign",
    "ScreenJobSpec",
    "SeedEntry",
    "SeedStore",
    "StructureFamily",
    "chain_family",
    "dimer_family",
    "domain_mesh",
    "family_domain",
    "meshes_match",
    "node_features",
    "run_screen_member",
    "solute_chain_family",
    "solute_crystal_family",
    "structure_descriptor",
]
