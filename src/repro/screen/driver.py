"""Screening campaigns: sweep a structure family with warm-start reuse.

:class:`ScreenCampaign` turns a :class:`~repro.screen.family.
StructureFamily` into an execution plan and runs it small-to-large, so
every solve after the first few **anchors** starts from reused state
instead of cold:

1. the **setup cache** shares mesh / ScatterMap / quadrature
   construction across members with identical discretization (a
   shared-domain family builds its mesh exactly once);
2. the **seed store** (:mod:`repro.screen.seeds`) warm-starts each
   member from its nearest converged neighbor;
3. the **density surrogate** (:mod:`repro.screen.surrogate`), trained
   on the members solved so far, covers members whose neighbors are out
   of distribution;
4. anything still unseeded falls back to the superposition-of-atomic-
   densities cold start.

Two execution modes share the decision ladder: :meth:`ScreenCampaign.
run` solves in-process (seeds as in-memory arrays), :meth:`ScreenCampaign.
run_via_serve` submits members through :mod:`repro.serve` in waves —
anchors first, then one seeded batch whose ``seed_rho`` hints point at
density artifacts harvested from the anchor wave.

Correctness is non-negotiable: a seed changes the iteration count,
never the answer.  ``benchmarks/bench_screen.py`` gates every seeded
member's energy against its cold-start golden value at 1e-12 while
demonstrating the >= 25% iteration saving.
"""

from __future__ import annotations

import os
import pathlib
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.atoms.pseudo import AtomicConfiguration
from repro.core import DFTCalculation, SCFOptions, load_initial_rho
from repro.core.io import save_seed_density
from repro.fem.mesh import Mesh3D
from repro.obs import Stopwatch, add_counter, trace_region

from .family import FamilyMember, StructureFamily, domain_mesh, family_domain
from .seeds import SeedStore
from .surrogate import DensitySurrogate

__all__ = [
    "CampaignReport",
    "DiscretizationCache",
    "MemberOutcome",
    "ScreenCampaign",
]


class DiscretizationCache:
    """Share mesh construction across identically-discretized members.

    Building a :class:`Mesh3D` also builds its ScatterMaps, quadrature
    weights and connectivity — the per-member setup cost the paper's
    DFT-FE amortizes across a campaign.  Keyed on the exact
    discretization arguments of :func:`~repro.screen.family.domain_mesh`,
    which is deterministic in them.
    """

    def __init__(self) -> None:
        self._meshes: dict[tuple, Mesh3D] = {}
        self.hits = 0
        self.misses = 0

    def get(
        self,
        lengths: np.ndarray,
        cells_per_axis: int | tuple[int, int, int],
        degree: int,
        grading_ratio: float,
        scatter_engine: str | None,
    ) -> Mesh3D:
        key = (
            tuple(float(x) for x in np.asarray(lengths, dtype=float)),
            cells_per_axis if isinstance(cells_per_axis, int)
            else tuple(cells_per_axis),
            int(degree),
            float(grading_ratio),
            scatter_engine,
        )
        mesh = self._meshes.get(key)
        if mesh is not None:
            self.hits += 1
            add_counter("screen_setup_cache_hits", 1)
            return mesh
        self.misses += 1
        mesh = domain_mesh(
            lengths, cells_per_axis, degree, grading_ratio,
            scatter_engine=scatter_engine,
        )
        self._meshes[key] = mesh
        return mesh

    def as_dict(self) -> dict[str, float]:
        return {"hits": float(self.hits), "misses": float(self.misses)}


@dataclass(frozen=True)
class MemberOutcome:
    """One solved member: result plus how its start was chosen."""

    name: str
    params: dict
    n_electrons: int
    energy: float
    free_energy: float
    iterations: int
    converged: bool
    #: "cold" | "neighbor" | "interpolated" | "surrogate"
    seed_source: str
    seed_info: dict = field(default_factory=dict)


@dataclass(frozen=True)
class CampaignReport:
    """What a campaign hands back (and what the benchmark meters)."""

    family: str
    mode: str  #: "inprocess" or "serve"
    outcomes: tuple[MemberOutcome, ...]
    wall_seconds: float
    seed_stats: dict = field(default_factory=dict)
    setup_cache: dict = field(default_factory=dict)
    surrogate_stats: dict = field(default_factory=dict)
    serve_stats: dict = field(default_factory=dict)

    @property
    def total_iterations(self) -> int:
        return sum(o.iterations for o in self.outcomes)

    @property
    def seeded_fraction(self) -> float:
        if not self.outcomes:
            return 0.0
        seeded = sum(1 for o in self.outcomes if o.seed_source != "cold")
        return seeded / len(self.outcomes)

    def counts_by_source(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for o in self.outcomes:
            counts[o.seed_source] = counts.get(o.seed_source, 0) + 1
        return counts

    def energies(self) -> dict[str, float]:
        return {o.name: o.energy for o in self.outcomes}

    def iterations(self) -> dict[str, int]:
        return {o.name: o.iterations for o in self.outcomes}

    def as_dict(self) -> dict[str, Any]:
        return {
            "family": self.family,
            "mode": self.mode,
            "members": len(self.outcomes),
            "total_iterations": self.total_iterations,
            "seeded_fraction": self.seeded_fraction,
            "counts_by_source": self.counts_by_source(),
            "wall_seconds": self.wall_seconds,
            "seed_stats": dict(self.seed_stats),
            "setup_cache": dict(self.setup_cache),
            "surrogate_stats": dict(self.surrogate_stats),
            "serve_stats": dict(self.serve_stats),
            "outcomes": [
                {
                    "name": o.name,
                    "n_electrons": o.n_electrons,
                    "energy": o.energy,
                    "iterations": o.iterations,
                    "converged": o.converged,
                    "seed_source": o.seed_source,
                }
                for o in self.outcomes
            ],
        }


class ScreenCampaign:
    """Plan and run one family sweep with warm-start reuse.

    ``seeding=False`` disables both reuse layers — that is the cold
    baseline the benchmark compares against.  ``n_anchors`` members run
    cold unconditionally at the head of the (size-ascending) plan; they
    are the seed store's first deposits and the surrogate's training
    set.
    """

    def __init__(
        self,
        family: StructureFamily,
        *,
        xc: str = "lda",
        degree: int = 3,
        cells_per_axis: int = 3,
        padding: float = 6.0,
        grading_ratio: float = 2.0,
        options: SCFOptions | None = None,
        seeding: bool = True,
        surrogate: DensitySurrogate | bool = False,
        n_anchors: int = 1,
        surrogate_min_members: int = 2,
        ood_threshold: float = 0.5,
    ) -> None:
        if n_anchors < 1:
            raise ValueError("campaigns need at least one cold anchor")
        if xc not in ("lda", "pbe"):
            raise ValueError("xc must be 'lda' or 'pbe'")
        self.family = family
        self.xc = xc
        self.degree = int(degree)
        self.cells_per_axis = int(cells_per_axis)
        self.padding = float(padding)
        self.grading_ratio = float(grading_ratio)
        #: screening runs tighter than interactive defaults: the
        #: cold-vs-seeded 1e-12 energy agreement needs the SCF fixed
        #: point pinned well below the gate.  Two knobs beyond the
        #: obvious tolerances matter — ``filter_passes=2`` (a single
        #: Chebyshev pass leaves a trajectory-dependent eigenpair
        #: memory of ~5e-12) and ``poisson_tol=1e-12`` (the Hartree
        #: solve warm-starts from the previous potential, another
        #: trajectory memory at its tolerance level).
        self.options = options if options is not None else SCFOptions(
            max_iterations=300, density_tol=1e-14, energy_tol=1e-14,
            filter_passes=2, poisson_tol=1e-12,
        )
        self.seeding = bool(seeding)
        self.n_anchors = int(n_anchors)
        self.surrogate_min_members = int(surrogate_min_members)
        self.store = SeedStore(ood_threshold=ood_threshold)
        if isinstance(surrogate, DensitySurrogate):
            self.surrogate: DensitySurrogate | None = surrogate
        elif surrogate:
            self.surrogate = DensitySurrogate()
        else:
            self.surrogate = None
        self.setup_cache = DiscretizationCache()

    # ------------------------------------------------------------------
    def _xc(self) -> Any:
        from repro.xc import LDA, PBE

        return {"lda": LDA, "pbe": PBE}[self.xc]()

    def _shared_discretization(
        self,
    ) -> tuple[Mesh3D, dict[str, AtomicConfiguration]]:
        lengths, configs = family_domain(self.family, self.padding)
        mesh = self.setup_cache.get(
            lengths, self.cells_per_axis, self.degree, self.grading_ratio,
            self.options.scatter_engine,
        )
        return mesh, configs

    def _member_discretization(
        self, member: FamilyMember
    ) -> tuple[Mesh3D, AtomicConfiguration]:
        """Per-member embedding (non-shared families, e.g. periodic)."""
        cfg = member.config
        if any(cfg.pbc):
            raise NotImplementedError(
                "periodic screening members need per-member auto meshes; "
                "run them through DFTCalculation directly"
            )
        lo = cfg.positions.min(axis=0) - self.padding
        lengths = (cfg.positions.max(axis=0) + self.padding) - lo
        mesh = self.setup_cache.get(
            lengths, self.cells_per_axis, self.degree, self.grading_ratio,
            self.options.scatter_engine,
        )
        shifted = AtomicConfiguration(list(cfg.symbols), cfg.positions - lo)
        return mesh, shifted

    def _surrogate_ready(self) -> bool:
        s = self.surrogate
        if s is None or s.n_members < self.surrogate_min_members:
            return False
        if not s.trained:
            s.fit()
        return True

    def _choose_seed(
        self,
        rank: int,
        descriptor: np.ndarray,
        mesh: Mesh3D,
        config: AtomicConfiguration,
    ) -> tuple[np.ndarray | None, str, dict]:
        """The decision ladder: anchor -> neighbor -> surrogate -> cold."""
        if not self.seeding or rank < self.n_anchors:
            return None, "cold", {"reason": "anchor" if self.seeding else "off"}
        rho, info = self.store.seed_for(
            descriptor, mesh, config.n_electrons
        )
        if rho is not None:
            source = (
                "neighbor" if info.get("source") == "exact" else "interpolated"
            )
            add_counter("screen_seed_hits", 1)
            return rho, source, info
        if self._surrogate_ready():
            assert self.surrogate is not None
            rho, sinfo = self.surrogate.predict(mesh, config)
            if rho is not None:
                add_counter("screen_surrogate_hits", 1)
                return rho, "surrogate", sinfo
            info = {**info, "surrogate": sinfo}
        add_counter("screen_cold_starts", 1)
        return None, "cold", info

    def _harvest(
        self,
        member: FamilyMember,
        descriptor: np.ndarray,
        mesh: Mesh3D,
        config: AtomicConfiguration,
        rho_spin: np.ndarray,
        artifact: str | None = None,
    ) -> None:
        self.store.put(
            member.name, descriptor, rho_spin, mesh, artifact=artifact
        )
        if self.surrogate is not None:
            self.surrogate.add_sample(mesh, config, rho_spin)

    def _surrogate_dict(self) -> dict[str, Any]:
        s = self.surrogate
        if s is None:
            return {}
        return {
            "members": s.n_members,
            "samples": s.n_samples,
            "trained": s.trained,
            "final_loss": s.final_loss,
        }

    # ------------------------------------------------------------------
    def run(self) -> CampaignReport:
        """Solve every member in-process, small-to-large."""
        plan = self.family.ordered()
        shared = self.family.isolated
        if shared:
            mesh, configs = self._shared_discretization()
        watch = Stopwatch()
        outcomes: list[MemberOutcome] = []
        with trace_region(
            "screen.campaign", family=self.family.name, members=len(plan)
        ):
            for rank, member in enumerate(plan):
                if shared:
                    m_mesh, config = mesh, configs[member.name]
                    if rank > 0:
                        # every member after the first reuses the shared
                        # discretization — count it like a cache hit
                        self.setup_cache.hits += 1
                        add_counter("screen_setup_cache_hits", 1)
                else:
                    m_mesh, config = self._member_discretization(member)
                descriptor = member.descriptor()
                seed, source, info = self._choose_seed(
                    rank, descriptor, m_mesh, config
                )
                with trace_region(
                    "screen.member", member=member.name, seed=source
                ):
                    calc = DFTCalculation(
                        config, xc=self._xc(), mesh=m_mesh,
                        options=self.options,
                    )
                    with calc:
                        res = calc.run(rho0=seed)
                add_counter("screen_scf_iterations", res.n_iterations)
                self._harvest(
                    member, descriptor, m_mesh, config, res.rho_spin
                )
                outcomes.append(
                    MemberOutcome(
                        name=member.name,
                        params=dict(member.params),
                        n_electrons=int(config.n_electrons),
                        energy=float(res.energy),
                        free_energy=float(res.free_energy),
                        iterations=int(res.n_iterations),
                        converged=bool(res.converged),
                        seed_source=source,
                        seed_info=info,
                    )
                )
        return CampaignReport(
            family=self.family.name,
            mode="inprocess",
            outcomes=tuple(outcomes),
            wall_seconds=watch.elapsed(),
            seed_stats=self.store.stats.as_dict(),
            setup_cache=self.setup_cache.as_dict(),
            surrogate_stats=self._surrogate_dict(),
        )

    # ------------------------------------------------------------------
    def run_via_serve(
        self,
        workdir: str | os.PathLike,
        *,
        workers: int = 2,
        total_ranks: int = 8,
        backend: str = "serial",
        tuned: bool = True,
        cache: Any = None,
    ) -> CampaignReport:
        """Batch the family through :mod:`repro.serve` in seeded waves.

        Wave 1 submits the cold anchors; their converged densities come
        back as on-disk artifacts (``SchedulerPolicy.artifact_dir``).
        Wave 2 submits everything else as one batch, each request
        carrying a ``seed_rho`` hint — the nearest anchor's artifact, or
        a surrogate prediction written as a fresh seed file.  Seeds ride
        on the request, never in the spec, so the jobs' content
        addresses (cache keys) are identical to a cold campaign's.
        """
        from repro.serve import ResultCache, SchedulerPolicy, ServeRequest
        from repro.serve.server import run_jobs

        from .serve import ScreenJobSpec

        if not self.family.isolated:
            raise NotImplementedError(
                "serve campaigns require an isolated-system family "
                "(shared domain)"
            )
        root = pathlib.Path(workdir)
        artifact_dir = root / "artifacts"
        seed_dir = root / "seeds"
        policy = SchedulerPolicy(
            total_ranks=total_ranks, backend=backend, tuned=tuned,
            artifact_dir=str(artifact_dir),
        )
        cache = cache if cache is not None else ResultCache(root / "cache")
        mesh, configs = self._shared_discretization()
        lengths = mesh.lengths
        plan = self.family.ordered()

        def _spec(member: FamilyMember) -> ScreenJobSpec:
            cfg = configs[member.name]
            return ScreenJobSpec(
                family=self.family.name,
                member=member.name,
                symbols=tuple(cfg.symbols),
                positions=tuple(
                    tuple(float(x) for x in p) for p in cfg.positions
                ),
                domain=tuple(float(x) for x in lengths),
                xc=self.xc,
                degree=self.degree,
                cells=self.cells_per_axis,
                grading_ratio=self.grading_ratio,
                max_scf=self.options.max_iterations,
                density_tol=self.options.density_tol,
                energy_tol=self.options.energy_tol,
                filter_passes=self.options.filter_passes,
                poisson_tol=self.options.poisson_tol,
            )

        n_anchor = min(self.n_anchors, len(plan)) if self.seeding else len(plan)
        watch = Stopwatch()
        waves = [plan[:n_anchor], plan[n_anchor:]]
        outcomes: list[MemberOutcome] = []
        serve_walls: list[float] = []
        sources: dict[str, tuple[str, dict]] = {}
        for wave_idx, wave in enumerate(w for w in waves if w):
            requests = []
            for member in wave:
                seed_path, source, info = (None, "cold", {"reason": "anchor"})
                if wave_idx > 0:
                    seed_path, source, info = self._serve_seed(
                        member, mesh, configs[member.name], seed_dir
                    )
                sources[member.name] = (source, info)
                requests.append(
                    ServeRequest(spec=_spec(member), seed_rho=seed_path)
                )
            report = run_jobs(
                requests, workdir=root, policy=policy, workers=workers,
                cache=cache,
            )
            serve_walls.append(report.wall_seconds)
            for member, job in zip(wave, report.jobs):
                payload = job.result or {}
                if job.error is not None:
                    raise RuntimeError(
                        f"screen member {member.name} failed: {job.error}"
                    )
                source, info = sources[member.name]
                outcomes.append(
                    MemberOutcome(
                        name=member.name,
                        params=dict(member.params),
                        n_electrons=int(member.config.n_electrons),
                        energy=float(payload["energy"]),
                        free_energy=float(payload["free_energy"]),
                        iterations=int(payload["n_iterations"]),
                        converged=bool(payload["converged"]),
                        seed_source=source,
                        seed_info=info,
                    )
                )
                artifact = payload.get("artifact")
                if artifact is not None and wave_idx == 0:
                    rho = load_initial_rho(artifact, mesh)
                    self._harvest(
                        member, member.descriptor(), mesh,
                        configs[member.name], rho, artifact=artifact,
                    )
        order = {m.name: i for i, m in enumerate(plan)}
        outcomes.sort(key=lambda o: order[o.name])
        return CampaignReport(
            family=self.family.name,
            mode="serve",
            outcomes=tuple(outcomes),
            wall_seconds=watch.elapsed(),
            seed_stats=self.store.stats.as_dict(),
            setup_cache=self.setup_cache.as_dict(),
            surrogate_stats=self._surrogate_dict(),
            serve_stats={
                "waves": len(serve_walls),
                "serve_wall_seconds": sum(serve_walls),
            },
        )

    def _serve_seed(
        self,
        member: FamilyMember,
        mesh: Mesh3D,
        config: AtomicConfiguration,
        seed_dir: pathlib.Path,
    ) -> tuple[str | None, str, dict]:
        """Pick a seed *path* for a served member (artifact or written)."""
        descriptor = member.descriptor()
        rho, source, info = self._choose_seed(
            self.n_anchors, descriptor, mesh, config
        )
        if rho is None:
            return None, "cold", info
        if source == "neighbor" and info.get("artifact"):
            # the neighbor's converged density already exists on disk —
            # hand its artifact straight to the runner
            return str(info["artifact"]), source, info
        seed_dir.mkdir(parents=True, exist_ok=True)
        path = seed_dir / f"{member.name}.rho.npz"
        save_seed_density(
            str(path), mesh, rho,
            metadata={"member": member.name, "source": source},
        )
        return str(path), source, info
