"""Structure families: the unit of work of a screening campaign.

The paper's applications are parameterized families — quasicrystal
approximants by order, dislocation cells by solute placement, alloys by
composition.  A :class:`StructureFamily` declares such a sweep as an
ordered set of :class:`FamilyMember` structures plus a fixed-length
**structure descriptor** per member; descriptor distance is what the
seed store uses to pick the nearest already-converged neighbor and what
the surrogate uses to judge whether a prediction is in-distribution.

Families of isolated systems can share one discretization: the family
domain is the union bounding box of every member plus padding, so all
members live on the *same* :class:`~repro.fem.mesh.Mesh3D` — the setup
cache then builds the mesh/ScatterMap/quadrature once, and converged
densities transfer between members bitwise, with no cross-mesh
interpolation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.atoms.pseudo import AtomicConfiguration
from repro.fem.mesh import Mesh3D, graded_edges

__all__ = [
    "FamilyMember",
    "StructureFamily",
    "chain_family",
    "dimer_family",
    "domain_mesh",
    "family_domain",
    "solute_chain_family",
    "solute_crystal_family",
    "structure_descriptor",
]

#: length of the structure descriptor vector
DESCRIPTOR_SIZE = 8


def structure_descriptor(config: AtomicConfiguration) -> np.ndarray:
    """Fixed-length geometric/compositional fingerprint of a structure.

    Translation-invariant and deterministic: atom counts, electron
    counts, pairwise-distance statistics and the radius of gyration.
    Nearby family members (one solute hop, a small bond stretch, one
    extra period) land close in this space; members from a different
    family land far away — which is exactly the property the seed
    store's nearest-neighbor lookup and OOD guard need.
    """
    pos = np.atleast_2d(config.positions)
    n = pos.shape[0]
    zs = np.array([el.Z for el in config.elements], dtype=float)
    centered = pos - pos.mean(axis=0)
    gyration = float(np.sqrt((centered**2).sum(axis=1).mean()))
    if n > 1:
        diff = pos[:, None, :] - pos[None, :, :]
        dist = np.sqrt((diff**2).sum(axis=-1))
        off = dist[np.triu_indices(n, k=1)]
        d_min, d_mean, d_max = (
            float(off.min()), float(off.mean()), float(off.max())
        )
    else:
        d_min = d_mean = d_max = 0.0
    return np.array(
        [
            float(n),
            float(config.n_electrons),
            float(zs.sum()),
            float(zs.max()),
            d_min,
            d_mean,
            d_max,
            gyration,
        ]
    )


@dataclass(frozen=True)
class FamilyMember:
    """One structure of a family: a config plus its sweep parameters."""

    name: str
    config: AtomicConfiguration
    #: the swept parameters that generated this member (JSON scalars)
    params: dict = field(default_factory=dict)

    @property
    def size(self) -> int:
        """Ordering key for small-to-large campaigns (electron count)."""
        return int(self.config.n_electrons)

    def descriptor(self) -> np.ndarray:
        return structure_descriptor(self.config)


@dataclass(frozen=True)
class StructureFamily:
    """A named, ordered sweep of related structures."""

    name: str
    members: tuple[FamilyMember, ...]

    def __post_init__(self) -> None:
        if not self.members:
            raise ValueError("a structure family needs at least one member")
        names = [m.name for m in self.members]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate member names in family {self.name!r}")

    def __len__(self) -> int:
        return len(self.members)

    def ordered(self) -> tuple[FamilyMember, ...]:
        """Members size-ascending (ties broken by name — deterministic).

        Small-to-large is the campaign order that makes reuse work: the
        cheap members converge first and their densities seed (or train
        the surrogate for) the expensive ones.
        """
        return tuple(
            sorted(self.members, key=lambda m: (m.size, m.name))
        )

    @property
    def isolated(self) -> bool:
        """True when no member is periodic (shared-domain eligible)."""
        return not any(any(m.config.pbc) for m in self.members)


# ---------------------------------------------------------------------------
# shared discretization
# ---------------------------------------------------------------------------


def family_domain(
    family: StructureFamily, padding: float = 6.0
) -> tuple[np.ndarray, dict[str, AtomicConfiguration]]:
    """Union bounding box of every member, plus shifted member configs.

    Returns ``(lengths, configs)`` where ``lengths`` is the shared
    domain size and ``configs`` maps member name to its configuration
    translated into that domain.  Every member keeps its own geometry;
    only the embedding is common — which is what lets all members share
    one mesh and exchange densities without interpolation.
    """
    if not family.isolated:
        raise ValueError(
            "shared domains are defined for isolated-system families only"
        )
    lo = np.min([m.config.positions.min(axis=0) for m in family.members], axis=0)
    hi = np.max([m.config.positions.max(axis=0) for m in family.members], axis=0)
    lo = lo - padding
    lengths = (hi + padding) - lo
    configs = {
        m.name: AtomicConfiguration(
            list(m.config.symbols), m.config.positions - lo
        )
        for m in family.members
    }
    return lengths, configs


def domain_mesh(
    lengths: Sequence[float],
    cells_per_axis: int | tuple[int, int, int] = 3,
    degree: int = 3,
    grading_ratio: float = 2.0,
    scatter_engine: str | None = None,
) -> Mesh3D:
    """Mesh over a fixed domain, graded toward the domain center.

    Deterministic in its arguments alone (no per-structure grading), so
    the in-process campaign, the serve runner and the ``--initial-rho``
    CLI all reconstruct bit-identical meshes from the same numbers —
    the property that makes seed densities portable across processes.
    """
    if isinstance(cells_per_axis, int):
        cells_per_axis = (cells_per_axis,) * 3
    lengths = np.asarray(lengths, dtype=float)
    edges = tuple(
        graded_edges(
            float(lengths[a]), cells_per_axis[a],
            center=float(lengths[a]) / 2.0, ratio=grading_ratio,
        )
        for a in range(3)
    )
    return Mesh3D(edges=edges, degree=degree, scatter_engine=scatter_engine)


# ---------------------------------------------------------------------------
# family builders
# ---------------------------------------------------------------------------


def dimer_family(
    symbol: str = "H",
    bonds: Sequence[float] = (1.2, 1.3, 1.4, 1.5, 1.6),
) -> StructureFamily:
    """Bond-length scan of a homonuclear dimer (composition axis)."""
    members = []
    for b in bonds:
        b = float(b)
        cfg = AtomicConfiguration(
            [symbol, symbol], [[0.0, 0.0, 0.0], [b, 0.0, 0.0]]
        )
        members.append(
            FamilyMember(
                name=f"{symbol}2-b{b:.3f}", config=cfg, params={"bond": b}
            )
        )
    return StructureFamily(name=f"{symbol}2-scan", members=tuple(members))


def chain_family(
    symbol: str = "H",
    sizes: Sequence[int] = (2, 3, 4),
    spacing: float = 1.8,
) -> StructureFamily:
    """Linear chains of increasing length (approximant-order axis).

    The small members are the surrogate's training set; the large ones
    are where a learned density pays — the same small-to-large transfer
    as the paper's approximant hierarchy.
    """
    members = []
    for n in sizes:
        n = int(n)
        if n < 1:
            raise ValueError("chain length must be >= 1")
        pos = [[i * float(spacing), 0.0, 0.0] for i in range(n)]
        cfg = AtomicConfiguration([symbol] * n, pos)
        members.append(
            FamilyMember(
                name=f"{symbol}{n}-chain", config=cfg,
                params={"n": n, "spacing": float(spacing)},
            )
        )
    return StructureFamily(name=f"{symbol}-chain", members=tuple(members))


def solute_chain_family(
    host: str = "H",
    solute: str = "Li",
    n: int = 4,
    spacing: float = 1.8,
    sites: Sequence[int] | None = None,
) -> StructureFamily:
    """One solute atom swept along the sites of a host chain.

    The laptop-scale analogue of the paper's dislocation–solute scan:
    identical host geometry, one substitutional defect at a varying
    site.
    """
    n = int(n)
    if sites is None:
        sites = range(n)
    members = []
    for site in sites:
        site = int(site)
        if not 0 <= site < n:
            raise ValueError(f"solute site {site} outside chain of length {n}")
        symbols = [host] * n
        symbols[site] = solute
        pos = [[i * float(spacing), 0.0, 0.0] for i in range(n)]
        cfg = AtomicConfiguration(symbols, pos)
        members.append(
            FamilyMember(
                name=f"{host}{n}-{solute}@{site}", config=cfg,
                params={"site": site, "n": n, "spacing": float(spacing)},
            )
        )
    return StructureFamily(
        name=f"{host}{n}-{solute}-sweep", members=tuple(members)
    )


def solute_crystal_family(
    solute: str = "Y",
    reps: tuple[int, int, int] = (1, 1, 1),
    counts: Sequence[int] = (0, 1, 2),
    seed: int = 0,
) -> StructureFamily:
    """Mg supercells at increasing solute concentration (composition axis).

    Built on the :mod:`repro.materials` substrate (HCP lattice +
    supercell + seeded substitution) — the family shape of the paper's
    Mg–Y alloy study.  Periodic members, so campaigns discretize them
    per-member instead of through a shared domain.
    """
    from repro.materials import hcp_orthorhombic, substitute_solutes, supercell

    lattice, symbols, frac = hcp_orthorhombic()
    base = supercell(lattice, symbols, frac, reps)
    members = []
    for count in counts:
        count = int(count)
        cfg = (
            base
            if count == 0
            else substitute_solutes(base, solute, count, seed=seed)
        )
        members.append(
            FamilyMember(
                name=f"Mg{len(base.symbols)}-{solute}{count}", config=cfg,
                params={"count": count, "seed": int(seed)},
            )
        )
    return StructureFamily(
        name=f"Mg-{solute}-concentration", members=tuple(members)
    )
