"""ML density surrogate: learn converged densities from small members.

The second reuse layer, in the spirit of "Predicting electronic
structures at any length scale with machine learning" (PAPERS.md): the
converged densities of a family's *small* members are training data for
a model that predicts the initial density of its *large* members — node
by node, from local structural features, so a network trained on an
N-atom member applies unchanged to a 2N-atom one.

The model is deliberately residual: it learns the **log-ratio** between
the converged density and the superposition-of-atomic-densities guess,

    rho_pred = rho_guess * exp(net(features)),

so an untrained (zero-output) or extrapolating network degrades toward
the guess instead of toward garbage, and positivity is structural.
Predictions are floored and renormalized to the member's electron
count; a prediction whose features fall outside the training
distribution (feature-box coverage test) is refused, and the campaign
falls back to the superposition cold start.

Built on the from-scratch :mod:`repro.ml` substrate (MLP + Adam); fully
seeded, so two campaigns train bit-identical surrogates.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.atoms.pseudo import AtomicConfiguration
from repro.core.density import atomic_guess_density
from repro.fem.mesh import Mesh3D
from repro.ml.nn import MLP, Adam
from repro.obs import trace_region

__all__ = ["DensitySurrogate", "node_features"]

#: densities below this are treated as vacuum in the log-ratio target
_RHO_FLOOR = 1e-10

#: number of per-node structural features
N_FEATURES = 3


def node_features(mesh: Mesh3D, config: AtomicConfiguration) -> np.ndarray:
    """Local structural features at every mesh node, shape (nnodes, 3).

    Each node sees (i) the superposition guess density to the 1/3 power
    (a local length scale, the Thomas-Fermi variable), (ii) the decay
    ``exp(-d_min)`` to its nearest atom, and (iii) a charge-weighted
    coordination sum ``sum_a Z_a exp(-d_a / 2)``.  All three are
    intensive and translation-invariant: a node between two chain atoms
    produces the same features whether the chain has 2 links or 20 —
    that locality is what makes small-to-large transfer possible.
    """
    guess = atomic_guess_density(mesh, config, 0.0).sum(axis=1)
    nodes = np.asarray(mesh.node_coords, dtype=float)
    pos = np.atleast_2d(config.positions)
    zs = np.array([el.Z for el in config.elements], dtype=float)
    diff = nodes[:, None, :] - pos[None, :, :]
    dist = np.sqrt((diff**2).sum(axis=-1))  # (nnodes, natoms)
    f0 = np.cbrt(np.maximum(guess, 0.0))
    f1 = np.exp(-dist.min(axis=1))
    f2 = (zs[None, :] * np.exp(-0.5 * dist)).sum(axis=1)
    return np.column_stack([f0, f1, f2])


class DensitySurrogate:
    """Small MLP mapping node features to converged/guess log-ratios."""

    def __init__(
        self,
        hidden: tuple[int, ...] = (16, 16),
        seed: int = 0,
        lr: float = 1e-2,
        epochs: int = 300,
        clip: float = 4.0,
        ood_margin: float = 0.10,
        ood_max_fraction: float = 0.05,
        max_samples_per_member: int = 2048,
    ) -> None:
        self.net = MLP((N_FEATURES, *hidden, 1), seed=seed)
        self.opt = Adam(lr=lr)
        self.epochs = int(epochs)
        self.clip = float(clip)
        #: feature-box slack, as a fraction of each feature's training range
        self.ood_margin = float(ood_margin)
        #: fraction of out-of-box nodes above which a prediction is refused
        self.ood_max_fraction = float(ood_max_fraction)
        self.max_samples_per_member = int(max_samples_per_member)
        self.seed = int(seed)
        self._X: list[np.ndarray] = []
        self._y: list[np.ndarray] = []
        self._box_lo: np.ndarray | None = None
        self._box_hi: np.ndarray | None = None
        self.trained = False
        self.final_loss: float | None = None

    @property
    def n_samples(self) -> int:
        return sum(x.shape[0] for x in self._X)

    @property
    def n_members(self) -> int:
        return len(self._X)

    # ------------------------------------------------------------------
    def add_sample(
        self,
        mesh: Mesh3D,
        config: AtomicConfiguration,
        rho_spin: np.ndarray,
    ) -> int:
        """Ingest one converged member as {features -> log-ratio} pairs.

        Nodes are subsampled deterministically (seeded, without
        replacement) to ``max_samples_per_member``, so training cost is
        bounded by the family size, not the mesh size.
        """
        X = node_features(mesh, config)
        guess = atomic_guess_density(mesh, config, 0.0).sum(axis=1)
        rho = np.asarray(rho_spin, dtype=float).sum(axis=1)
        y = np.log(
            (np.maximum(rho, 0.0) + _RHO_FLOOR)
            / (np.maximum(guess, 0.0) + _RHO_FLOOR)
        )[:, None]
        n = X.shape[0]
        if n > self.max_samples_per_member:
            rng = np.random.default_rng(self.seed + 7919 * len(self._X))
            idx = np.sort(
                rng.choice(n, size=self.max_samples_per_member, replace=False)
            )
            X, y = X[idx], y[idx]
        self._X.append(X)
        self._y.append(y)
        lo, hi = X.min(axis=0), X.max(axis=0)
        if self._box_lo is None:
            self._box_lo, self._box_hi = lo, hi
        else:
            self._box_lo = np.minimum(self._box_lo, lo)
            self._box_hi = np.maximum(self._box_hi, hi)
        self.trained = False  # new data invalidates the fitted weights
        return int(X.shape[0])

    def fit(self) -> float:
        """Full-batch Adam on the accumulated pairs; returns final MSE."""
        if not self._X:
            raise ValueError("cannot fit a surrogate with no training samples")
        X = np.concatenate(self._X, axis=0)
        y = np.concatenate(self._y, axis=0)
        n = X.shape[0]
        theta = self.net.get_params()
        loss = np.inf
        with trace_region("screen.surrogate.fit", samples=n):
            for _ in range(self.epochs):
                resid = self.net.forward(X) - y
                loss = float(np.mean(resid**2))
                if not np.isfinite(loss):
                    raise FloatingPointError(
                        "surrogate training produced a non-finite loss"
                    )
                # d(mean r^2)/d(theta) = backprop of the cotangent 2r/n
                _, grad = self.net.value_and_param_grad(X, 2.0 * resid / n)
                theta = self.opt.step(theta, grad)
                self.net.set_params(theta)
        self.trained = True
        self.final_loss = loss
        return loss

    # ------------------------------------------------------------------
    def _ood_fraction(self, X: np.ndarray) -> float:
        assert self._box_lo is not None and self._box_hi is not None
        span = np.maximum(self._box_hi - self._box_lo, 1e-12)
        lo = self._box_lo - self.ood_margin * span
        hi = self._box_hi + self.ood_margin * span
        outside = np.any((X < lo) | (X > hi), axis=1)
        return float(outside.mean())

    def predict(
        self, mesh: Mesh3D, config: AtomicConfiguration
    ) -> tuple[np.ndarray | None, dict[str, Any]]:
        """Predicted seed density for a member, or None when refused.

        Returns ``(rho_spin, info)``: the prediction scales each spin
        channel of the superposition guess by the learned ratio, then
        renormalizes to the electron count.  Refusals (untrained model,
        feature-box OOD, degenerate norm) report their reason and the
        campaign falls back to the plain guess.
        """
        if not self.trained:
            return None, {"source": None, "reason": "untrained"}
        X = node_features(mesh, config)
        ood = self._ood_fraction(X)
        if ood > self.ood_max_fraction:
            return None, {
                "source": None, "reason": "ood", "ood_fraction": ood,
            }
        log_ratio = self.net.forward(X)[:, 0]
        ratio = np.exp(np.clip(log_ratio, -self.clip, self.clip))
        guess_spin = atomic_guess_density(mesh, config, 0.0)
        rho = np.maximum(guess_spin * ratio[:, None], 0.0)
        total = float(mesh.integrate(rho.sum(axis=1)))
        if not np.isfinite(total) or total <= 0.0:
            return None, {"source": None, "reason": "degenerate-norm"}
        rho *= float(config.n_electrons) / total
        return rho, {
            "source": "surrogate", "ood_fraction": ood,
            "loss": self.final_loss,
        }
