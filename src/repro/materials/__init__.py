"""Materials substrate: lattices, quasicrystals, defects, benchmark systems."""

from .diffraction import (
    radial_peak_profile,
    rotational_symmetry_score,
    structure_factor,
)
from .defects import (
    apply_screw_dislocation,
    edge_dislocation_displacement,
    reflection_twin,
    screw_dislocation_displacement,
    solute_at_core,
    substitute_solutes,
)
from .lattice import MG_A, MG_C, hcp_orthorhombic, supercell
from .quasicrystal import TAU, cut_and_project, icosahedral_projectors, ybcd_nanoparticle
from .systems import SYSTEM_BUILDERS, BenchmarkSystem, build_system, kpoint_set

__all__ = [
    "MG_A",
    "MG_C",
    "SYSTEM_BUILDERS",
    "TAU",
    "BenchmarkSystem",
    "apply_screw_dislocation",
    "build_system",
    "cut_and_project",
    "edge_dislocation_displacement",
    "hcp_orthorhombic",
    "icosahedral_projectors",
    "kpoint_set",
    "radial_peak_profile",
    "rotational_symmetry_score",
    "reflection_twin",
    "screw_dislocation_displacement",
    "solute_at_core",
    "structure_factor",
    "substitute_solutes",
    "supercell",
    "ybcd_nanoparticle",
]
