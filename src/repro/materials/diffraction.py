"""Diffraction analysis: structure factors and quasicrystal signatures.

Quasicrystals were discovered through their "impossible" diffraction
patterns — sharp Bragg peaks with 5-fold/icosahedral symmetry forbidden for
periodic lattices (Shechtman et al., the paper's Ref [7]).  This module
computes the kinematic structure factor

.. math::

    S(q) = \\Big|\\frac{1}{N}\\sum_j f_j e^{i q \\cdot r_j}\\Big|^2

for a finite atom cloud and provides the two diagnostics used by the tests
and examples: the n-fold rotational symmetry of the peak pattern about a
chosen axis, and peak sharpness (long-range order despite aperiodicity).
"""

from __future__ import annotations

import numpy as np

__all__ = ["structure_factor", "radial_peak_profile", "rotational_symmetry_score"]


def structure_factor(
    positions: np.ndarray,
    q_vectors: np.ndarray,
    form_factors: np.ndarray | None = None,
) -> np.ndarray:
    """Normalized kinematic structure factor at the given q-vectors.

    Parameters
    ----------
    positions:
        (natoms, 3) Cartesian coordinates.
    q_vectors:
        (nq, 3) scattering vectors.
    form_factors:
        Optional per-atom weights (e.g. atomic numbers); default 1.
    """
    pos = np.asarray(positions, dtype=float)
    q = np.atleast_2d(np.asarray(q_vectors, dtype=float))
    f = (
        np.ones(pos.shape[0])
        if form_factors is None
        else np.asarray(form_factors, dtype=float)
    )
    phases = q @ pos.T  # (nq, natoms)
    amp = (np.exp(1j * phases) * f[None, :]).sum(axis=1) / f.sum()
    return np.abs(amp) ** 2


def radial_peak_profile(
    positions: np.ndarray,
    direction: np.ndarray,
    q_max: float = 4.0,
    nq: int = 400,
) -> tuple[np.ndarray, np.ndarray]:
    """S(q) along a single reciprocal direction (normalized)."""
    d = np.asarray(direction, dtype=float)
    d = d / np.linalg.norm(d)
    qs = np.linspace(0.05, q_max, nq)
    S = structure_factor(positions, qs[:, None] * d[None, :])
    return qs, S


def rotational_symmetry_score(
    positions: np.ndarray,
    axis: np.ndarray,
    n_fold: int,
    q_radius: float,
    n_angles: int = 720,
) -> float:
    """Correlation of the azimuthal S(q) ring with its n-fold rotation.

    Samples ``S(q)`` on a ring of radius ``q_radius`` perpendicular to
    ``axis`` and returns the Pearson correlation between the ring and
    itself rotated by ``2 pi / n_fold`` — near 1 for an n-fold symmetric
    diffraction pattern, near 0 for uncorrelated patterns.
    """
    axis = np.asarray(axis, dtype=float)
    axis = axis / np.linalg.norm(axis)
    # orthonormal frame perpendicular to the axis
    trial = np.array([1.0, 0.0, 0.0])
    if abs(trial @ axis) > 0.9:
        trial = np.array([0.0, 1.0, 0.0])
    e1 = trial - (trial @ axis) * axis
    e1 /= np.linalg.norm(e1)
    e2 = np.cross(axis, e1)
    angles = np.linspace(0.0, 2.0 * np.pi, n_angles, endpoint=False)
    ring = q_radius * (
        np.cos(angles)[:, None] * e1[None, :] + np.sin(angles)[:, None] * e2[None, :]
    )
    S = structure_factor(positions, ring)
    shift = n_angles // n_fold
    a = S - S.mean()
    b = np.roll(S, shift) - S.mean()
    denom = float(np.sqrt((a**2).sum() * (b**2).sum()))
    if denom < 1e-300:
        return 0.0
    return float((a * b).sum() / denom)
