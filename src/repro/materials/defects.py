"""Extended defects in crystals: dislocations, twin boundaries, solutes.

Implements the defect constructions of the paper's Mg-Y application:

* **screw dislocation** — Volterra displacement field
  ``u_line = b/(2 pi) * atan2(y - y0, x - x0)`` applied along the
  dislocation line (the pyramidal-II <c+a> screw of the paper is modeled as
  a screw of Burgers magnitude |c+a| along the periodic line direction);
* **reflection twin boundary** — mirror the lattice across a plane,
  producing a bicrystal with a coherent interface (the paper's pyramidal-I
  reflection twin is modeled as a reflection across a flat plane);
* **solute substitution** — replace host atoms by solutes, either randomly
  at a target concentration/count (deterministic seed) or at the site
  nearest a defect core.
"""

from __future__ import annotations

import numpy as np

from repro.atoms.pseudo import AtomicConfiguration

__all__ = [
    "edge_dislocation_displacement",
    "screw_dislocation_displacement",
    "apply_screw_dislocation",
    "reflection_twin",
    "substitute_solutes",
    "solute_at_core",
]


def screw_dislocation_displacement(
    positions: np.ndarray,
    core: tuple[float, float],
    burgers: float,
    axes: tuple[int, int, int] = (0, 1, 2),
) -> np.ndarray:
    """Volterra screw displacement along ``axes[2]``.

    ``core = (x0, y0)`` in the plane spanned by ``axes[0], axes[1]``.
    Returns the displacement array (natoms, 3); only the line component is
    nonzero.  The multivalued branch cut lies along the -x direction from
    the core.
    """
    ax, ay, az = axes
    dx = positions[:, ax] - core[0]
    dy = positions[:, ay] - core[1]
    theta = np.arctan2(dy, dx)
    u = np.zeros_like(positions)
    u[:, az] = burgers * theta / (2.0 * np.pi)
    return u


def edge_dislocation_displacement(
    positions: np.ndarray,
    core: tuple[float, float],
    burgers: float,
    poisson_ratio: float = 0.29,
    axes: tuple[int, int, int] = (0, 1, 2),
) -> np.ndarray:
    """Isotropic-elasticity Volterra edge displacement field.

    Burgers vector along ``axes[0]`` in the (axes[0], axes[1]) plane
    (line direction ``axes[2]``); ``poisson_ratio`` defaults to Mg's 0.29.
    Standard solution::

        u_x = b/(2 pi) [ theta + x y / (2 (1-nu) r^2) ]
        u_y = -b/(2 pi) [ (1-2 nu)/(4 (1-nu)) ln(r^2)
                          + (x^2 - y^2)/(4 (1-nu) r^2) ]
    """
    ax, ay, _az = axes
    x = positions[:, ax] - core[0]
    y = positions[:, ay] - core[1]
    r2 = np.maximum(x**2 + y**2, 1e-12)
    nu = poisson_ratio
    theta = np.arctan2(y, x)
    pref = burgers / (2.0 * np.pi)
    u = np.zeros_like(positions)
    u[:, ax] = pref * (theta + x * y / (2.0 * (1.0 - nu) * r2))
    u[:, ay] = -pref * (
        (1.0 - 2.0 * nu) / (4.0 * (1.0 - nu)) * np.log(r2)
        + (x**2 - y**2) / (4.0 * (1.0 - nu) * r2)
    )
    return u


def apply_screw_dislocation(
    config: AtomicConfiguration,
    core: tuple[float, float] | None = None,
    burgers: float | None = None,
    axes: tuple[int, int, int] = (0, 1, 2),
) -> AtomicConfiguration:
    """Return a new configuration with a screw dislocation inserted.

    Defaults: core at the cell center of the (axes[0], axes[1]) plane,
    Burgers vector equal to the periodic length along the line direction
    (one full lattice translation — the <c+a> magnitude in the paper's
    pyramidal geometry maps to the line repeat of our orthorhombic cell).
    """
    if config.lattice is None:
        raise ValueError("dislocation insertion requires a lattice")
    lengths = np.diag(config.lattice)
    ax, ay, az = axes
    if core is None:
        core = (0.5 * lengths[ax] + 0.26, 0.5 * lengths[ay] + 0.31)
    if burgers is None:
        burgers = float(lengths[az])
    u = screw_dislocation_displacement(config.positions, core, burgers, axes)
    pos = config.positions + u
    pos[:, az] %= lengths[az]
    return AtomicConfiguration(
        symbols=list(config.symbols),
        positions=pos,
        lattice=config.lattice.copy(),
        pbc=config.pbc,
    )


def reflection_twin(
    config: AtomicConfiguration,
    plane_axis: int = 1,
    plane_position: float | None = None,
    merge_tol: float = 0.8,
) -> AtomicConfiguration:
    """Create a reflection twin: mirror atoms above the plane.

    Atoms with coordinate >= ``plane_position`` along ``plane_axis`` are
    reflected through the plane of the atoms at ``2*plane_position - x``...
    i.e. the upper half becomes the mirror image of itself, producing a
    coherent twin boundary at the plane.  Atoms that land within
    ``merge_tol`` of a lower-half atom are merged (interface
    reconstruction).
    """
    if config.lattice is None:
        raise ValueError("twin construction requires a lattice")
    lengths = np.diag(config.lattice)
    a = plane_axis
    if plane_position is None:
        plane_position = 0.5 * lengths[a]
    pos = config.positions.copy()
    upper = pos[:, a] >= plane_position
    # mirror the upper half about the plane, then shift it back above the
    # plane so the cell stays filled: x -> 2*top - x maps [plane, top] onto
    # itself reversed, creating the twin orientation.
    top = lengths[a]
    pos[upper, a] = plane_position + (top - pos[upper, a]) * (
        (top - plane_position) / max(top - plane_position, 1e-12)
    )
    # remove near-coincident interface atoms (keep the lower-half copy)
    keep = np.ones(config.natoms, dtype=bool)
    from scipy.spatial import cKDTree

    tree = cKDTree(pos[~upper])
    d, _ = tree.query(pos[upper], k=1)
    dup = np.nonzero(upper)[0][d < merge_tol]
    keep[dup] = False
    return AtomicConfiguration(
        symbols=[s for s, k in zip(config.symbols, keep) if k],
        positions=pos[keep],
        lattice=config.lattice.copy(),
        pbc=config.pbc,
    )


def substitute_solutes(
    config: AtomicConfiguration,
    solute: str,
    count: int,
    seed: int = 0,
    host: str | None = None,
) -> AtomicConfiguration:
    """Randomly substitute ``count`` host atoms by ``solute`` (fixed seed)."""
    symbols = list(config.symbols)
    candidates = [
        i for i, s in enumerate(symbols) if (host is None or s == host)
    ]
    if count > len(candidates):
        raise ValueError("not enough host atoms to substitute")
    rng = np.random.default_rng(seed)
    chosen = rng.choice(candidates, size=count, replace=False)
    for i in chosen:
        symbols[i] = solute
    return AtomicConfiguration(
        symbols=symbols,
        positions=config.positions.copy(),
        lattice=None if config.lattice is None else config.lattice.copy(),
        pbc=config.pbc,
    )


def solute_at_core(
    config: AtomicConfiguration,
    solute: str,
    core_point: np.ndarray,
) -> AtomicConfiguration:
    """Substitute the atom nearest ``core_point`` by ``solute``."""
    d = np.linalg.norm(config.positions - np.asarray(core_point), axis=1)
    i = int(np.argmin(d))
    symbols = list(config.symbols)
    symbols[i] = solute
    return AtomicConfiguration(
        symbols=symbols,
        positions=config.positions.copy(),
        lattice=None if config.lattice is None else config.lattice.copy(),
        pbc=config.pbc,
    )
