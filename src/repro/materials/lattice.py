"""Crystal lattices: HCP magnesium cells and supercell generation.

The Mg-Y systems of the paper are hexagonal-close-packed magnesium with
dilute yttrium.  For orthorhombic simulation cells (required by the
spectral-element mesh) the 4-atom orthorhombic representation of HCP is
used: lattice vectors (a, sqrt(3) a, c).
"""

from __future__ import annotations

import numpy as np

from repro.atoms.pseudo import AtomicConfiguration

__all__ = ["MG_A", "MG_C", "hcp_orthorhombic", "supercell"]

#: Mg lattice parameters (Bohr): a = 3.21 Angstrom, c/a = 1.624
MG_A = 6.0665
MG_C = 9.8520


def hcp_orthorhombic(
    a: float = MG_A, c: float = MG_C, symbol: str = "Mg"
) -> tuple[np.ndarray, list[str], np.ndarray]:
    """4-atom orthorhombic HCP cell: (lattice, symbols, fractional positions).

    Lattice vectors: ``(a, 0, 0), (0, sqrt(3) a, 0), (0, 0, c)``.
    """
    lattice = np.diag([a, np.sqrt(3.0) * a, c])
    frac = np.array(
        [
            [0.0, 0.0, 0.0],
            [0.5, 0.5, 0.0],
            [0.5, 5.0 / 6.0, 0.5],
            [0.0, 1.0 / 3.0, 0.5],
        ]
    )
    return lattice, [symbol] * 4, frac


def supercell(
    lattice: np.ndarray,
    symbols: list[str],
    frac: np.ndarray,
    reps: tuple[int, int, int],
    pbc: tuple[bool, bool, bool] = (True, True, True),
) -> AtomicConfiguration:
    """Replicate a (lattice, basis) ``reps`` times along each axis."""
    reps = tuple(int(r) for r in reps)
    if min(reps) < 1:
        raise ValueError("repetitions must be positive")
    lattice = np.asarray(lattice, dtype=float)
    shifts = np.stack(
        np.meshgrid(*[np.arange(r) for r in reps], indexing="ij"), axis=-1
    ).reshape(-1, 3)
    frac_all = (frac[None, :, :] + shifts[:, None, :]).reshape(-1, 3)
    frac_all /= np.asarray(reps, dtype=float)
    big_lattice = lattice * np.asarray(reps, dtype=float)[:, None]
    cart = frac_all @ big_lattice
    symbols_all = list(symbols) * len(shifts)
    return AtomicConfiguration(
        symbols=symbols_all, positions=cart, lattice=big_lattice, pbc=pbc
    )
