"""Icosahedral quasicrystal generation by 6D cut-and-project.

The YbCd quasicrystal of the paper (Tsai-type icosahedral YbCd_5.7, Takakura
et al. [10]) is aperiodic but long-range ordered.  The canonical construction
projects the 6D hypercubic lattice Z^6 through two orthogonal 3D subspaces:
the *parallel* (physical) space E_par and the *perpendicular* space E_perp.
A 6D lattice point contributes a physical atom at its E_par projection iff
its E_perp projection falls inside the acceptance window.

The projection uses the icosahedral basis: the six 6D unit vectors map to
six 5-fold axes of the icosahedron, giving matrices whose entries involve
the golden ratio tau.  Rows of [E_par; E_perp] form an orthogonal 6x6
matrix (verified in the tests) and the physical point set has no
translational symmetry but a tau^3 inflation self-similarity.

Binary Yb/Cd decoration: Tsai-type clusters place Yb on an inner
icosahedral shell.  Here the chemical identity is assigned by
perpendicular-space radius (the standard large-window/small-window
decoration), with the split chosen to reproduce the paper's Yb295Cd1648
stoichiometry for the 1,943-atom nanoparticle.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.atoms.pseudo import AtomicConfiguration

__all__ = [
    "TAU",
    "icosahedral_projectors",
    "cut_and_project",
    "ybcd_nanoparticle",
]

TAU = (1.0 + np.sqrt(5.0)) / 2.0  #: golden ratio


def icosahedral_projectors() -> tuple[np.ndarray, np.ndarray]:
    """Orthonormal parallel/perpendicular projection matrices (3 x 6 each).

    Column ``i`` of ``E_par`` is the normalized i-th 5-fold icosahedral axis
    ``v_i`` (vertex vectors ``(pm 1, tau, 0)`` and cyclic permutations)
    scaled by ``1/sqrt(2)``; the perpendicular companion replaces
    ``tau -> -1/tau``.  Using ``v_i . v_j = pm tau`` and
    ``w_i . w_j = mp 1/tau`` one checks the stacked 6x6 matrix is exactly
    orthogonal: ``E_par^T E_par + E_perp^T E_perp = I_6`` (tested).
    """
    v = np.array(
        [
            [1.0, TAU, 0.0],
            [-1.0, TAU, 0.0],
            [0.0, 1.0, TAU],
            [0.0, -1.0, TAU],
            [TAU, 0.0, 1.0],
            [-TAU, 0.0, 1.0],
        ]
    )
    w = np.array(
        [
            [1.0, -1.0 / TAU, 0.0],
            [-1.0, -1.0 / TAU, 0.0],
            [0.0, 1.0, -1.0 / TAU],
            [0.0, -1.0, -1.0 / TAU],
            [-1.0 / TAU, 0.0, 1.0],
            [1.0 / TAU, 0.0, 1.0],
        ]
    )
    v /= np.linalg.norm(v, axis=1, keepdims=True)
    w /= np.linalg.norm(w, axis=1, keepdims=True)
    e_par = v.T / np.sqrt(2.0)
    e_perp = w.T / np.sqrt(2.0)
    return e_par, e_perp


def cut_and_project(
    radius_par: float,
    window_perp: float,
    scale: float = 1.0,
    max_index: int | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Project Z^6 points into physical space.

    Returns (positions_par, norms_perp) for all 6D lattice points whose
    perpendicular projection lies within ``window_perp`` and whose physical
    projection lies within ``radius_par`` of the origin.  ``scale`` sets the
    physical lattice constant (Bohr per 6D unit).
    """
    e_par, e_perp = icosahedral_projectors()
    if max_index is None:
        max_index = int(np.ceil(radius_par / scale * 0.75)) + 2
    rng = np.arange(-max_index, max_index + 1)
    # enumerate 6D lattice points in blocks over the leading three indices
    grids = np.meshgrid(rng, rng, rng, indexing="ij")
    first3 = np.stack([g.ravel() for g in grids], axis=1).astype(float)
    f3_perp = first3 @ e_perp[:, :3].T
    f3_par = first3 @ e_par[:, :3].T
    out_pos = []
    out_perp = []
    w2 = window_perp**2
    r2 = (radius_par / scale) ** 2
    for tail in first3:  # the trailing three indices range identically
        t_perp = tail @ e_perp[:, 3:].T
        t_par = tail @ e_par[:, 3:].T
        d = f3_perp + t_perp
        pn = np.einsum("ij,ij->i", d, d)
        keep = pn <= w2
        if not keep.any():
            continue
        par = f3_par[keep] + t_par
        rp = np.einsum("ij,ij->i", par, par)
        inside = rp <= r2
        if inside.any():
            out_pos.append(par[inside] * scale)
            out_perp.append(np.sqrt(pn[keep][inside]))
    if not out_pos:
        return np.zeros((0, 3)), np.zeros(0)
    pos = np.concatenate(out_pos, axis=0)
    perp = np.concatenate(out_perp)
    # deduplicate projected points (distinct 6D points can coincide in E_par
    # only at numerical tolerance; keep unique physical sites)
    order = np.lexsort(pos.T)
    pos, perp = pos[order], perp[order]
    keep = np.ones(len(pos), dtype=bool)
    if len(pos) > 1:
        d = np.linalg.norm(np.diff(pos, axis=0), axis=1)
        keep[1:] = d > 1e-8
    return pos[keep], perp[keep]


@dataclass
class Nanoparticle:
    """A carved quasicrystal nanoparticle."""

    config: AtomicConfiguration
    perp_norms: np.ndarray

    @property
    def natoms(self) -> int:
        return self.config.natoms


def ybcd_nanoparticle(
    natoms: int = 1943,
    n_yb: int = 295,
    scale: float = 7.6,
    window_perp: float = 0.55,
    seed_radius: float | None = None,
) -> Nanoparticle:
    """Carve an icosahedral YbCd nanoparticle with exact stoichiometry.

    The ``natoms`` accepted sites closest to the particle center are kept
    (paper: 1,943 atoms, ~3 nm across at the YbCd_5.7 density); the ``n_yb``
    sites with the smallest perpendicular-space norm become Yb (inner-window
    decoration), the rest Cd — reproducing Yb295Cd1648 with 40,040 valence
    electrons.

    The default ``scale`` preserves physical interatomic distances
    (min Cd-Cd contact ~2.9 Angstrom); the resulting particle is
    geometrically larger (~7 nm) than the paper's ~3 nm because the raw
    cut-and-project point set is sparser than the fully decorated Tsai
    cluster structure (documented substitution).
    """
    if seed_radius is None:
        # generous physical radius; grows automatically if too few sites
        seed_radius = scale * (natoms ** (1.0 / 3.0)) * 0.62
    radius = seed_radius
    for _ in range(6):
        pos, perp = cut_and_project(radius, window_perp, scale=scale)
        if len(pos) >= natoms:
            break
        radius *= 1.25
    if len(pos) < natoms:
        raise RuntimeError(
            f"cut-and-project produced only {len(pos)} sites (< {natoms})"
        )
    r = np.linalg.norm(pos, axis=1)
    order = np.argsort(r, kind="stable")[:natoms]
    pos, perp = pos[order], perp[order]
    yb_idx = set(np.argsort(perp, kind="stable")[:n_yb].tolist())
    symbols = ["Yb" if i in yb_idx else "Cd" for i in range(natoms)]
    pos = pos - pos.mean(axis=0)
    config = AtomicConfiguration(symbols=symbols, positions=pos)
    return Nanoparticle(config=config, perp_norms=perp)
