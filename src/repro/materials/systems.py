"""The paper's benchmark systems, reproduced with exact atom/electron counts.

============================  ========  ==========  =========  ============
system                        atoms     e-/k-point  k-points   supercell e-
============================  ========  ==========  =========  ============
DislocMgY                     6,016     12,041      2          24,082
TwinDislocMgY(A)              36,344    75,667      4          302,668
TwinDislocMgY(B)              74,164    154,781     3          464,343
TwinDislocMgY(C)              74,164    154,781     4          619,124
YbCd quasicrystal (Yb295Cd1648)  1,943  40,040      1 (Gamma)  40,040
============================  ========  ==========  =========  ============

Constructions (full-size geometry generation is real; the SCF at these
sizes goes through the performance model — see DESIGN.md):

* DislocMgY — HCP Mg supercell (16 x 47 x 2 orthorhombic cells = 6,016
  atoms), periodic <c+a>-like screw dislocation along z, one Y solute at
  the core: 6,015 Mg x 2e- + 1 Y x 11e- = 12,041 e-.
* TwinDislocMgY(A) — 22 x 59 x 7 cells = 36,344 atoms, reflection twin at
  mid-y, screw dislocation, 331 random Y solutes (~1 at.%): 75,667 e-.
* TwinDislocMgY(B)/(C) — 127 x 73 x 2 cells = 74,168 atoms with 4 atoms
  removed at the dislocation-twin intersection (core reconstruction;
  74,164 is not divisible into an orthorhombic supercell), 717 Y solutes:
  154,781 e-.  (B) samples 3 k-points, (C) 4.
* YbCd nanoparticle — icosahedral cut-and-project carving, 295 Yb + 1,648
  Cd = 40,040 e- (see :mod:`repro.materials.quasicrystal`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.atoms.pseudo import AtomicConfiguration
from repro.hpc.runtime import PAPER_WORKLOADS, Workload

from .defects import apply_screw_dislocation, reflection_twin, solute_at_core, substitute_solutes
from .lattice import hcp_orthorhombic, supercell
from .quasicrystal import ybcd_nanoparticle

__all__ = ["BenchmarkSystem", "build_system", "SYSTEM_BUILDERS", "kpoint_set"]


@dataclass
class BenchmarkSystem:
    """A named benchmark system plus its paper-matched bookkeeping."""

    name: str
    config: AtomicConfiguration
    n_kpoints: int
    workload: Workload | None

    @property
    def electrons_per_kpoint(self) -> int:
        return self.config.n_electrons

    @property
    def supercell_electrons(self) -> int:
        return self.config.n_electrons * self.n_kpoints


def kpoint_set(n: int, axis: int = 2) -> list[tuple[tuple[float, float, float], float]]:
    """Uniform k-point chain along the dislocation line direction."""
    kpts = []
    for i in range(n):
        k = [0.0, 0.0, 0.0]
        k[axis] = i / n
        kpts.append((tuple(k), 1.0 / n))
    return kpts


def _disloc_mgy() -> BenchmarkSystem:
    lat, sym, frac = hcp_orthorhombic()
    cfg = supercell(lat, sym, frac, (16, 47, 2), pbc=(False, False, True))
    cfg = apply_screw_dislocation(cfg, axes=(0, 1, 2))
    core = np.array(
        [0.5 * cfg.lattice[0, 0], 0.5 * cfg.lattice[1, 1], 0.25 * cfg.lattice[2, 2]]
    )
    cfg = solute_at_core(cfg, "Y", core)
    assert cfg.natoms == 6016 and cfg.n_electrons == 12041
    return BenchmarkSystem("DislocMgY", cfg, 2, PAPER_WORKLOADS["DislocMgY"])


def _twin_disloc_mgy(variant: str) -> BenchmarkSystem:
    lat, sym, frac = hcp_orthorhombic()
    if variant == "A":
        reps, n_y, target, nk = (22, 59, 7), 331, 36344, 4
    elif variant in ("B", "C"):
        reps, n_y, target, nk = (127, 73, 2), 717, 74164, 3 if variant == "B" else 4
    else:
        raise ValueError(f"unknown TwinDislocMgY variant {variant!r}")
    cfg = supercell(lat, sym, frac, reps, pbc=(False, False, True))
    # twin plane between atomic layers: no interface merging needed
    ly = cfg.lattice[1, 1]
    plane = (0.5 + 0.25 / reps[1]) * ly
    cfg = reflection_twin(cfg, plane_axis=1, plane_position=plane, merge_tol=0.0)
    cfg = apply_screw_dislocation(cfg, axes=(0, 1, 2))
    if cfg.natoms > target:
        # core reconstruction: remove the extra atoms nearest the
        # dislocation-twin intersection line
        core_xy = np.array([0.5 * cfg.lattice[0, 0], plane])
        d = np.linalg.norm(cfg.positions[:, :2] - core_xy, axis=1)
        drop = set(np.argsort(d, kind="stable")[: cfg.natoms - target].tolist())
        keep = [i for i in range(cfg.natoms) if i not in drop]
        cfg = AtomicConfiguration(
            [cfg.symbols[i] for i in keep],
            cfg.positions[keep],
            lattice=cfg.lattice.copy(),
            pbc=cfg.pbc,
        )
    cfg = substitute_solutes(cfg, "Y", n_y, seed=42, host="Mg")
    name = f"TwinDislocMgY({variant})"
    assert cfg.natoms == target, (cfg.natoms, target)
    return BenchmarkSystem(name, cfg, nk, PAPER_WORKLOADS[name])


def _ybcd() -> BenchmarkSystem:
    nano = ybcd_nanoparticle()
    return BenchmarkSystem("YbCdQC", nano.config, 1, PAPER_WORKLOADS["YbCdQC"])


def _ortho_benzyne() -> BenchmarkSystem:
    """o-benzyne C6H4 — the strongly correlated invDFT benchmark molecule."""
    r_cc = 2.64  # ~1.40 Angstrom aromatic C-C (Bohr)
    r_ch = 2.05
    angles = np.deg2rad(np.arange(6) * 60.0)
    ring = np.stack(
        [r_cc * np.cos(angles), r_cc * np.sin(angles), np.zeros(6)], axis=1
    )
    symbols = ["C"] * 6
    positions = [ring]
    # hydrogens on four of the six carbons (the dehydrogenated pair is
    # adjacent: positions 0 and 1 -> "ortho")
    for i in range(2, 6):
        direction = ring[i] / np.linalg.norm(ring[i])
        positions.append((ring[i] + r_ch * direction)[None, :])
        symbols.append("H")
    cfg = AtomicConfiguration(symbols, np.concatenate(positions, axis=0))
    assert cfg.n_electrons == 28
    return BenchmarkSystem("OrthoBenzyne", cfg, 1, PAPER_WORKLOADS["OrthoBenzyne"])


SYSTEM_BUILDERS = {
    "DislocMgY": _disloc_mgy,
    "TwinDislocMgY(A)": lambda: _twin_disloc_mgy("A"),
    "TwinDislocMgY(B)": lambda: _twin_disloc_mgy("B"),
    "TwinDislocMgY(C)": lambda: _twin_disloc_mgy("C"),
    "YbCdQC": _ybcd,
    "OrthoBenzyne": _ortho_benzyne,
}


def build_system(name: str) -> BenchmarkSystem:
    """Construct a named benchmark system (full-size real geometry)."""
    try:
        builder = SYSTEM_BUILDERS[name]
    except KeyError:
        raise KeyError(
            f"unknown system {name!r}; known: {sorted(SYSTEM_BUILDERS)}"
        ) from None
    return builder()
