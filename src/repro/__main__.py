"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``info``
    Package, substrate and machine-model summary.
``scf MOLECULE``
    Ground-state SCF of a library molecule (LDA/PBE/MLXC).
``perfmodel [SYSTEM]``
    Modeled Table-3 style breakdown for a paper workload.
``systems``
    Build and tabulate the paper's benchmark systems.
``lint [PATH ...]``
    Run the reprolint numerical-safety static analyzer (defaults to
    ``src/``).  Flags are forwarded to ``repro.tools.lint``.
"""

from __future__ import annotations

import argparse
import sys


def _cmd_info(_args) -> int:
    import repro
    from repro.hpc.machine import MACHINES
    from repro.hpc.runtime import PAPER_WORKLOADS
    from repro.pipeline import MOLECULE_LIBRARY

    print(f"repro {repro.__version__} — SC'23 DFT-FE-MLXC reproduction")
    print(f"  molecules: {', '.join(sorted(MOLECULE_LIBRARY))}")
    print(f"  workloads: {', '.join(sorted(PAPER_WORKLOADS))}")
    print(f"  machines:  {', '.join(sorted(MACHINES))}")
    return 0


def _cmd_scf(args) -> int:
    import numpy as np

    from repro.atoms.pseudo import AtomicConfiguration
    from repro.core import DFTCalculation, SCFOptions, homo_lumo_gap
    from repro.pipeline import MOLECULE_LIBRARY
    from repro.xc import LDA, PBE

    if args.molecule not in MOLECULE_LIBRARY:
        print(f"unknown molecule {args.molecule!r}; see `python -m repro info`")
        return 2
    symbols, positions, *_ = MOLECULE_LIBRARY[args.molecule]
    config = AtomicConfiguration(list(symbols), np.asarray(positions, float))
    xc = {"lda": LDA, "pbe": PBE}[args.xc]()
    calc = DFTCalculation(
        config, xc=xc, degree=args.degree, cells_per_axis=args.cells,
        options=SCFOptions(max_iterations=args.max_scf, verbose=True),
    )
    res = calc.run()
    print(f"E({args.molecule}, {xc.name}) = {res.energy:+.6f} Ha  "
          f"gap = {homo_lumo_gap(res) * 27.2114:.2f} eV  "
          f"converged={res.converged}")
    return 0 if res.converged else 1


def _cmd_perfmodel(args) -> int:
    from repro.hpc.machine import FRONTIER
    from repro.hpc.perfmodel import ModelOptions
    from repro.hpc.runtime import PAPER_WORKLOADS, scf_breakdown

    wl = PAPER_WORKLOADS[args.system]
    m = scf_breakdown(
        wl, FRONTIER, args.nodes, ModelOptions(optimal_routing=False)
    )
    print(f"{wl.name} on {args.nodes} Frontier nodes "
          f"({FRONTIER.system_peak_pflops(args.nodes):.1f} PF peak):")
    for name, sec, pf, pflops in m.table_rows():
        pf_s = f"{pf:10.1f}" if pf else "         -"
        print(f"  {name:<14} {sec:8.1f} s {pf_s} PFLOP {pflops:8.1f} PFLOPS")
    print(f"  TOTAL          {m.wall_time:8.1f} s {m.counted_pflop:10.1f} PFLOP "
          f"{m.sustained_pflops:8.1f} PFLOPS ({m.peak_fraction:.1%} of peak)")
    return 0


def _cmd_systems(_args) -> int:
    from repro.materials.systems import SYSTEM_BUILDERS, build_system

    for name in SYSTEM_BUILDERS:
        s = build_system(name)
        print(f"{s.name:<18} {s.config.natoms:6d} atoms  "
              f"{s.electrons_per_kpoint:7d} e-/k x {s.n_kpoints} k  "
              f"= {s.supercell_electrons:7d} e-")
    return 0


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if argv and argv[0] == "lint":
        # pass-through subcommand: all flags belong to the linter's own CLI
        from repro.tools.lint import main as lint_main

        return lint_main(argv[1:] or ["src"])
    ap = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = ap.add_subparsers(dest="command", required=True)
    sub.add_parser("info")
    p = sub.add_parser("scf")
    p.add_argument("molecule")
    p.add_argument("--xc", choices=("lda", "pbe"), default="lda")
    p.add_argument("--degree", type=int, default=4)
    p.add_argument("--cells", type=int, default=4)
    p.add_argument("--max-scf", type=int, default=40)
    p = sub.add_parser("perfmodel")
    p.add_argument("system", nargs="?", default="TwinDislocMgY(C)")
    p.add_argument("--nodes", type=int, default=8000)
    sub.add_parser("systems")
    sub.add_parser("lint", help="run the reprolint static analyzer")
    args = ap.parse_args(argv)
    return {
        "info": _cmd_info,
        "scf": _cmd_scf,
        "perfmodel": _cmd_perfmodel,
        "systems": _cmd_systems,
    }[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
