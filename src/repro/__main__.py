"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``info``
    Package, substrate and machine-model summary.
``scf MOLECULE``
    Ground-state SCF of a library molecule (LDA/PBE/MLXC).  With
    ``--checkpoint PATH`` the loop state is snapshotted every iteration
    (``--checkpoint-every N`` to thin), ready for ``resume``.
``resume PATH``
    Continue an interrupted ``scf --checkpoint`` run from its checkpoint
    file — the resumed trajectory matches the uninterrupted run bit for
    bit.  Chaos drills: set ``REPRO_FAULTS="site:iter[:kind]"`` to inject
    deterministic faults (see :mod:`repro.resilience`).
``perfmodel [SYSTEM]``
    Modeled Table-3 style breakdown for a paper workload (``--json`` for
    machine-readable output).
``trace MOLECULE``
    Run an SCF under the reproscope tracer and write a Chrome-trace JSON
    (load it in Perfetto / ``chrome://tracing``).
``systems``
    Build and tabulate the paper's benchmark systems.
``serve``
    Run a batch of jobs through the repro.serve runtime — priority
    queue, preemptive scheduler, content-addressed result cache — and
    print throughput/latency/cache statistics.
``tune``
    Sweep the kernel-schedule knobs (B_f, scatter engine, threads,
    subspace block) on this host and save the checksummed tuned profile
    that ``SCFOptions`` picks up by default (``REPRO_TUNE=0`` disables).
``lint [PATH ...]``
    Run the reprolint numerical-safety static analyzer (defaults to
    ``src/``).  Flags are forwarded to ``repro.tools.lint``.
"""

from __future__ import annotations

import argparse
import sys

#: registered subcommands: name -> (handler, one-line help).  ``info``
#: enumerates this table, so a new subcommand shows up there for free.
COMMANDS: dict[str, tuple] = {}


def _command(name: str, help_line: str):
    def deco(fn):
        COMMANDS[name] = (fn, help_line)
        return fn

    return deco


@_command("info", "package, substrate and machine-model summary")
def _cmd_info(_args) -> int:
    import os

    import repro
    from repro.hpc.distributed import RANK_BACKENDS
    from repro.hpc.machine import MACHINES
    from repro.hpc.runtime import PAPER_WORKLOADS
    from repro.pipeline import MOLECULE_LIBRARY

    cores = os.cpu_count() or 1
    print(f"repro {repro.__version__} — SC'23 DFT-FE-MLXC reproduction")
    print(f"  molecules: {', '.join(sorted(MOLECULE_LIBRARY))}")
    print(f"  workloads: {', '.join(sorted(PAPER_WORKLOADS))}")
    print(f"  machines:  {', '.join(sorted(MACHINES))}")
    print(f"  backends:  serial, {', '.join(RANK_BACKENDS)} "
          f"(host cores: {cores}; default proc rank count: {max(2, cores)})")
    _print_tuning_status()
    print("  commands:")
    width = max(len(n) for n in COMMANDS)
    for name in sorted(COMMANDS):
        print(f"    {name:<{width}}  {COMMANDS[name][1]}")
    return 0


def _print_tuning_status() -> None:
    """`info` lines on the host tuned profile (knobs, path, fingerprint)."""
    from repro.tune import (
        default_profile_path,
        fingerprint_digest,
        host_fingerprint,
        load_host_profile,
        tuning_enabled,
    )

    if not tuning_enabled():
        print("  tuning:    disabled (REPRO_TUNE=0)")
        return
    profile = load_host_profile()
    if profile is None:
        fp = host_fingerprint()
        print(f"  tuning:    no host profile at {default_profile_path(fp)} "
              "(run `python -m repro tune`)")
        print(f"             fingerprint: {fingerprint_digest(fp)} ({fp})")
        return
    knobs = ", ".join(f"{k}={v}" for k, v in sorted(profile.knobs.items()))
    print(f"  tuning:    {knobs}")
    model = profile.model
    if model:
        print(f"             modeled: {model.get('workload')} -> "
              f"{model.get('nodes')} nodes @ B_f={model.get('block_size')}")
    # the path is addressed by the *profile's own* fingerprint, so the
    # line names the file actually loaded, not a recomputed guess
    print(f"             profile: {default_profile_path(profile.fingerprint)}")
    print(f"             fingerprint: {fingerprint_digest(profile.fingerprint)} "
          f"({profile.fingerprint})")


def _ensure_tuned_profile() -> None:
    """`scf --autotune`: sweep and save a host profile if none is valid."""
    from repro.tune import autotune, load_host_profile, tuning_enabled

    if not tuning_enabled():
        print("REPRO_TUNE=0: --autotune has no effect (tuning disabled)")
        return
    profile = load_host_profile()
    if profile is None:
        print("no valid host profile - running the tune sweep ...")
        profile, path = autotune()
        print(f"tuned {profile.knobs} -> {path}")
    else:
        print(f"using host profile {profile.knobs}")


def _run_library_scf(args):
    """Build and run a DFTCalculation for a library molecule (CLI shared)."""
    import numpy as np

    from repro.atoms.pseudo import AtomicConfiguration
    from repro.core import DFTCalculation, SCFOptions
    from repro.pipeline import MOLECULE_LIBRARY
    from repro.xc import LDA, PBE

    if args.molecule not in MOLECULE_LIBRARY:
        print(f"unknown molecule {args.molecule!r}; see `python -m repro info`")
        return None, None
    if getattr(args, "autotune", False):
        _ensure_tuned_profile()
    symbols, positions, *_ = MOLECULE_LIBRARY[args.molecule]
    config = AtomicConfiguration(list(symbols), np.asarray(positions, float))
    xc = {"lda": LDA, "pbe": PBE}[args.xc]()
    backend = getattr(args, "backend", "serial")
    nranks = max(1, int(getattr(args, "ranks", 2)))
    initial_rho = getattr(args, "initial_rho", None)
    options = SCFOptions(
        max_iterations=args.max_scf, verbose=True,
        backend=backend, nranks=nranks,
        initial_rho_path=initial_rho,
    )
    if getattr(args, "checkpoint", None):
        options = SCFOptions(
            max_iterations=args.max_scf, verbose=True,
            backend=backend, nranks=nranks,
            initial_rho_path=initial_rho,
            checkpoint_path=args.checkpoint,
            checkpoint_every=args.checkpoint_every,
            checkpoint_metadata={
                "molecule": args.molecule, "xc": args.xc,
                "degree": args.degree, "cells": args.cells,
                "max_scf": args.max_scf,
            },
        )
    calc = DFTCalculation(
        config, xc=xc, degree=args.degree, cells_per_axis=args.cells,
        options=options,
    )
    with calc:  # tears down proc-backend worker fleets on exit
        try:
            return xc.name, calc.run(
                resume_from=getattr(args, "resume_from", None)
            )
        except ValueError as exc:
            if initial_rho is None:
                raise
            # seed-density problems (wrong mesh, wrong file kind) are
            # user errors, not tracebacks
            print(f"cannot seed from --initial-rho {initial_rho!r}: {exc}")
            return None, None


def _print_profile(agg) -> None:
    from repro.obs import TABLE3_ORDER, kernel_totals, render_tree

    print()
    print(render_tree(agg, title="reproscope profile"))
    totals = kernel_totals(agg)
    grand = sum(totals.values()) or 1.0
    print()
    print("Table-3 kernel totals:")
    for label in TABLE3_ORDER:
        sec = totals.get(label, 0.0)
        if sec == 0.0:
            continue
        print(f"  {label:<10} {sec:9.4f} s  {100.0 * sec / grand:5.1f} %")


@_command("scf", "ground-state SCF of a library molecule")
def _cmd_scf(args) -> int:
    from repro.core import homo_lumo_gap

    agg = None
    if args.profile:
        from repro.obs import InMemoryAggregator, get_tracer

        agg = InMemoryAggregator()
        get_tracer().add_sink(agg)
    xc_name, res = _run_library_scf(args)
    if res is None:
        return 2
    print(f"E({args.molecule}, {xc_name}) = {res.energy:+.6f} Ha  "
          f"gap = {homo_lumo_gap(res) * 27.2114:.2f} eV  "
          f"converged={res.converged}")
    if res.degradation:
        print(f"degraded: {res.degradation.summary()}")
    if agg is not None:
        _print_profile(agg)
    return 0 if res.converged else 1


@_command("resume", "continue an scf --checkpoint run bit-for-bit")
def _cmd_resume(args) -> int:
    """Continue an interrupted ``scf --checkpoint`` run bit-for-bit."""
    from repro.core.io import load_scf_state

    state = load_scf_state(args.checkpoint)
    meta = state["metadata"]
    required = ("molecule", "xc", "degree", "cells", "max_scf")
    missing = [k for k in required if k not in meta]
    if missing:
        print(f"checkpoint {args.checkpoint!r} lacks CLI metadata {missing}; "
              "it was not written by `python -m repro scf --checkpoint`")
        return 2
    args.molecule = meta["molecule"]
    args.xc = meta["xc"]
    args.degree = int(meta["degree"])
    args.cells = int(meta["cells"])
    if args.max_scf is None:
        args.max_scf = int(meta["max_scf"])
    args.resume_from = args.checkpoint
    print(f"resuming {args.molecule} ({args.xc}) from iteration "
          f"{state['iteration']} of {args.checkpoint}")
    return _cmd_scf(args)


@_command("trace", "SCF under the reproscope tracer (Chrome trace)")
def _cmd_trace(args) -> int:
    from repro.obs import ChromeTraceSink, InMemoryAggregator, get_tracer

    tracer = get_tracer()
    chrome = ChromeTraceSink(args.output, epoch=tracer.epoch)
    agg = InMemoryAggregator()
    tracer.add_sink(chrome)
    tracer.add_sink(agg)
    try:
        _, res = _run_library_scf(args)
    finally:
        tracer.remove_sink(chrome)
        tracer.remove_sink(agg)
        chrome.close()
    if res is None:
        return 2
    print(f"wrote {len(chrome.events)} trace events ({agg.roots_seen} root "
          f"spans) to {args.output} — open in Perfetto or chrome://tracing")
    if args.profile:
        _print_profile(agg)
    return 0 if res.converged else 1


@_command("perfmodel", "modeled Table-3 breakdown for a paper workload")
def _cmd_perfmodel(args) -> int:
    from repro.hpc.machine import FRONTIER
    from repro.hpc.perfmodel import ModelOptions
    from repro.hpc.runtime import PAPER_WORKLOADS, scf_breakdown

    wl = PAPER_WORKLOADS[args.system]
    m = scf_breakdown(
        wl, FRONTIER, args.nodes, ModelOptions(optimal_routing=False)
    )
    if args.json:
        import json

        payload = {
            "workload": wl.name,
            "machine": "Frontier",
            "nodes": args.nodes,
            "peak_pflops": FRONTIER.system_peak_pflops(args.nodes),
            "kernels": [
                {"kernel": name, "seconds": sec, "pflop": pf, "pflops": pflops}
                for name, sec, pf, pflops in m.table_rows()
            ],
            "total": {
                "seconds": m.wall_time,
                "pflop": m.counted_pflop,
                "pflops": m.sustained_pflops,
                "peak_fraction": m.peak_fraction,
            },
        }
        print(json.dumps(payload, indent=2))
        return 0
    print(f"{wl.name} on {args.nodes} Frontier nodes "
          f"({FRONTIER.system_peak_pflops(args.nodes):.1f} PF peak):")
    for name, sec, pf, pflops in m.table_rows():
        pf_s = f"{pf:10.1f}" if pf else "         -"
        print(f"  {name:<14} {sec:8.1f} s {pf_s} PFLOP {pflops:8.1f} PFLOPS")
    print(f"  TOTAL          {m.wall_time:8.1f} s {m.counted_pflop:10.1f} PFLOP "
          f"{m.sustained_pflops:8.1f} PFLOPS ({m.peak_fraction:.1%} of peak)")
    return 0


@_command("systems", "build and tabulate the paper benchmark systems")
def _cmd_systems(_args) -> int:
    from repro.materials.systems import SYSTEM_BUILDERS, build_system

    for name in SYSTEM_BUILDERS:
        s = build_system(name)
        print(f"{s.name:<18} {s.config.natoms:6d} atoms  "
              f"{s.electrons_per_kpoint:7d} e-/k x {s.n_kpoints} k  "
              f"= {s.supercell_electrons:7d} e-")
    return 0


@_command("serve", "batch jobs through the simulation service runtime")
def _cmd_serve(args) -> int:
    """Serve a request stream and print throughput / latency / cache stats."""
    import json

    from repro.serve import (
        SchedulerPolicy,
        probe_load,
        run_jobs,
        scf_load,
    )

    if args.molecules:
        requests = scf_load(
            [m.strip() for m in args.molecules.split(",") if m.strip()],
            repeats=args.repeats,
            degree=args.degree,
            cells=args.cells,
            max_scf=args.max_scf,
        )
    else:
        requests = probe_load(
            args.jobs, distinct=args.distinct, seed=args.seed
        )
    policy = SchedulerPolicy(
        total_ranks=args.ranks, slice_iterations=args.slice,
        backend=args.backend, tuned=not args.no_tune,
    )
    report = run_jobs(
        requests, workdir=args.workdir, policy=policy, workers=args.workers
    )
    stats = report.stats
    summary = {
        "jobs": len(report.jobs),
        "wall_seconds": report.wall_seconds,
        "jobs_per_second": (
            len(report.jobs) / report.wall_seconds
            if report.wall_seconds > 0
            else 0.0
        ),
        "latency_p50_s": stats.latency_percentile(0.50),
        "latency_p99_s": stats.latency_percentile(0.99),
        "cache_hit_rate": report.cache_stats.hit_rate,
        "coalesced": stats.coalesced,
        "preemptions": stats.preemptions,
        "failed": stats.failed,
        "max_queue_depth": stats.max_queue_depth,
    }
    if args.json:
        print(json.dumps(summary, indent=2))
        return 0 if stats.failed == 0 else 1
    print(
        f"served {summary['jobs']} jobs in {summary['wall_seconds']:.3f} s "
        f"({summary['jobs_per_second']:.1f} jobs/s) with {args.workers} "
        f"workers on {args.ranks} ranks"
    )
    print(
        f"  latency p50 {1e3 * summary['latency_p50_s']:.2f} ms  "
        f"p99 {1e3 * summary['latency_p99_s']:.2f} ms"
    )
    print(
        f"  cache hit rate {summary['cache_hit_rate']:.1%}  "
        f"coalesced {stats.coalesced}  preemptions {stats.preemptions}  "
        f"failed {stats.failed}"
    )
    return 0 if stats.failed == 0 else 1


@_command("screen", "sweep a structure family with warm-start reuse")
def _cmd_screen(args) -> int:
    """Run a screening campaign over a declared structure family."""
    import json

    from repro.screen import (
        ScreenCampaign,
        chain_family,
        dimer_family,
        solute_chain_family,
    )

    def _floats(raw: str) -> tuple[float, ...]:
        return tuple(float(x) for x in raw.split(",") if x.strip())

    def _ints(raw: str) -> tuple[int, ...]:
        return tuple(int(x) for x in raw.split(",") if x.strip())

    if args.family == "dimer":
        family = dimer_family(args.symbol, _floats(args.bonds))
    elif args.family == "chain":
        family = chain_family(
            args.symbol, _ints(args.sizes), spacing=args.spacing
        )
    else:
        family = solute_chain_family(
            args.symbol, args.solute, args.chain_n, spacing=args.spacing
        )
    campaign = ScreenCampaign(
        family,
        xc=args.xc,
        degree=args.degree,
        cells_per_axis=args.cells,
        padding=args.padding,
        seeding=not args.cold,
        surrogate=args.surrogate,
        n_anchors=args.anchors,
    )
    if args.serve is not None:
        report = campaign.run_via_serve(args.serve, workers=args.workers)
    else:
        report = campaign.run()
    if args.json:
        print(json.dumps(report.as_dict(), indent=2, sort_keys=True))
        return 0 if all(o.converged for o in report.outcomes) else 1
    print(f"screened {len(report.outcomes)} members of {report.family} "
          f"({report.mode}) in {report.wall_seconds:.2f} s")
    for o in report.outcomes:
        print(f"  {o.name:<18} E = {o.energy:+.10f} Ha  "
              f"{o.iterations:3d} iters  seed={o.seed_source}"
              f"{'' if o.converged else '  NOT CONVERGED'}")
    print(f"  total SCF iterations: {report.total_iterations}  "
          f"seeded: {report.seeded_fraction:.0%}  "
          f"sources: {report.counts_by_source()}")
    stats = report.seed_stats
    if stats:
        print(f"  seed store: {stats.get('deposits', 0):.0f} deposits, "
              f"hit rate {stats.get('hit_rate', 0.0):.0%}  "
              f"setup cache: {report.setup_cache}")
    return 0 if all(o.converged for o in report.outcomes) else 1


@_command("tune", "sweep kernel schedules, save the per-host tuned profile")
def _cmd_tune(args) -> int:
    """Run the autotune sweep and persist the checksummed host profile."""
    import json

    from repro.tune import SweepConfig, autotune, tuning_enabled

    if not tuning_enabled():
        print("REPRO_TUNE=0: autotuning is disabled")
        return 2
    config = SweepConfig(seed=args.seed, repeats=args.repeats)
    profile, path = autotune(config=config, path=args.output)
    if args.json:
        print(json.dumps(profile.envelope(), indent=2, sort_keys=True))
        return 0
    sweep = profile.sweep
    print(f"tuned profile written to {path}")
    for knob, value in sorted(profile.knobs.items()):
        print(f"  {knob:<22} {value}")
    model = profile.model
    print(f"  modeled ({model['workload']:<12}) {model['nodes']} nodes "
          f"@ B_f={model['block_size']} "
          f"({model['seconds']:.1f} s/SCF modeled)")
    print(f"  sweep wall time        {sweep.get('wall_seconds', 0.0):.3f} s "
          f"(metered via reproscope spans)")
    return 0


@_command("lint", "run the reprolint numerical-safety static analyzer")
def _cmd_lint(_args) -> int:
    # normally handled by the pass-through in main() (the linter owns its
    # own flags); this path serves a bare `lint` routed through argparse
    from repro.tools.lint import main as lint_main

    return lint_main(["src"])


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if argv and argv[0] == "lint":
        # pass-through subcommand: all flags belong to the linter's own CLI
        from repro.tools.lint import main as lint_main

        return lint_main(argv[1:] or ["src"])
    ap = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = ap.add_subparsers(dest="command", required=True)
    sub.add_parser("info")

    def _add_scf_args(p) -> None:
        p.add_argument("molecule")
        p.add_argument("--xc", choices=("lda", "pbe"), default="lda")
        p.add_argument("--degree", type=int, default=4)
        p.add_argument("--cells", type=int, default=4)
        p.add_argument("--max-scf", type=int, default=40)
        p.add_argument(
            "--profile", action="store_true",
            help="print the reproscope kernel breakdown after the run",
        )
        p.add_argument(
            "--checkpoint", metavar="PATH", default=None,
            help="write a resumable mid-run checkpoint to PATH",
        )
        p.add_argument(
            "--initial-rho", metavar="PATH", default=None,
            help="warm-start the SCF from a converged density: a seed "
                 "artifact or any scf checkpoint written on the same mesh",
        )
        p.add_argument(
            "--checkpoint-every", type=int, default=1, metavar="N",
            help="snapshot every N SCF iterations (default: 1)",
        )
        p.add_argument(
            "--backend", choices=("serial", "virtual", "proc"),
            default="serial",
            help="rank substrate: serial (golden reference), virtual "
                 "(metered in-process ranks) or proc (real shared-memory "
                 "rank processes; bitwise-identical energies)",
        )
        p.add_argument(
            "--ranks", type=int, default=2, metavar="P",
            help="rank count for the virtual/proc backends (default: 2)",
        )
        p.add_argument(
            "--autotune", action="store_true",
            help="ensure a tuned host profile exists (sweeping if needed) "
                 "and run with it; results are bit-identical either way",
        )

    p = sub.add_parser("scf")
    _add_scf_args(p)
    p = sub.add_parser("trace")
    _add_scf_args(p)
    p.add_argument(
        "-o", "--output", default="repro_trace.json",
        help="Chrome-trace JSON output path (default: repro_trace.json)",
    )
    p = sub.add_parser("perfmodel")
    p.add_argument("system", nargs="?", default="TwinDislocMgY(C)")
    p.add_argument("--nodes", type=int, default=8000)
    p.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON"
    )
    p = sub.add_parser("resume", help="continue an scf --checkpoint run")
    p.add_argument("checkpoint", help="checkpoint written by scf --checkpoint")
    p.add_argument(
        "--max-scf", type=int, default=None,
        help="override the checkpointed iteration budget",
    )
    p.add_argument("--checkpoint-every", type=int, default=1, metavar="N")
    p.add_argument(
        "--profile", action="store_true",
        help="print the reproscope kernel breakdown after the run",
    )
    sub.add_parser("systems")
    p = sub.add_parser("serve", help="batch jobs through the serve runtime")
    p.add_argument(
        "--jobs", type=int, default=100,
        help="number of probe requests to generate (default: 100)",
    )
    p.add_argument(
        "--distinct", type=int, default=16,
        help="unique specs in the probe stream (default: 16)",
    )
    p.add_argument(
        "--molecules", default=None, metavar="A,B,...",
        help="serve SCF jobs for these library molecules instead of probes",
    )
    p.add_argument(
        "--repeats", type=int, default=2,
        help="submissions per molecule with --molecules (default: 2)",
    )
    p.add_argument("--degree", type=int, default=2)
    p.add_argument("--cells", type=int, default=3)
    p.add_argument("--max-scf", type=int, default=40)
    p.add_argument(
        "--workers", type=int, default=4, help="worker threads (default: 4)"
    )
    p.add_argument(
        "--ranks", type=int, default=8,
        help="virtual-cluster rank budget (default: 8)",
    )
    p.add_argument(
        "--backend", choices=("serial", "virtual", "proc"),
        default="serial",
        help="rank substrate for SCF/bands jobs (default: serial)",
    )
    p.add_argument(
        "--slice", type=int, default=None, metavar="N",
        help="preempt sliceable jobs every N driver iterations",
    )
    p.add_argument(
        "--workdir", default=None,
        help="cache + checkpoint directory (default: temporary)",
    )
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--no-tune", action="store_true",
        help="do not resolve the host tuned profile for service jobs",
    )
    p.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON"
    )
    p = sub.add_parser(
        "screen", help="sweep a structure family with warm-start reuse"
    )
    p.add_argument(
        "--family", choices=("dimer", "chain", "solute-chain"),
        default="dimer",
    )
    p.add_argument("--symbol", default="H", help="host element symbol")
    p.add_argument(
        "--bonds", default="1.2,1.3,1.4", metavar="A,B,...",
        help="dimer bond lengths in Bohr (family=dimer)",
    )
    p.add_argument(
        "--sizes", default="2,3,4", metavar="N,M,...",
        help="chain lengths in atoms (family=chain)",
    )
    p.add_argument(
        "--spacing", type=float, default=1.8,
        help="chain spacing in Bohr (default: 1.8)",
    )
    p.add_argument("--solute", default="He", help="solute symbol")
    p.add_argument(
        "--chain-n", type=int, default=4,
        help="host chain length for family=solute-chain (default: 4)",
    )
    p.add_argument("--xc", choices=("lda", "pbe"), default="lda")
    p.add_argument("--degree", type=int, default=2)
    p.add_argument("--cells", type=int, default=2)
    p.add_argument("--padding", type=float, default=5.0)
    p.add_argument(
        "--cold", action="store_true",
        help="disable warm-start reuse (the benchmark baseline)",
    )
    p.add_argument(
        "--surrogate", action="store_true",
        help="train the ML density surrogate on solved members",
    )
    p.add_argument(
        "--anchors", type=int, default=1,
        help="members solved cold at the head of the plan (default: 1)",
    )
    p.add_argument(
        "--serve", default=None, metavar="WORKDIR",
        help="batch members through the serve runtime in WORKDIR",
    )
    p.add_argument(
        "--workers", type=int, default=2,
        help="serve worker threads with --serve (default: 2)",
    )
    p.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON"
    )
    p = sub.add_parser(
        "tune", help="sweep kernel schedules, save the host tuned profile"
    )
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--repeats", type=int, default=3,
        help="timing repeats per candidate (best-of; default: 3)",
    )
    p.add_argument(
        "--output", default=None, metavar="PATH",
        help="profile path (default: fingerprint-addressed file under "
             "REPRO_TUNE_DIR or ~/.cache/repro/tune)",
    )
    p.add_argument(
        "--json", action="store_true",
        help="print the full checksummed profile envelope",
    )
    sub.add_parser("lint", help="run the reprolint static analyzer")
    args = ap.parse_args(argv)
    return COMMANDS[args.command][0](args)


if __name__ == "__main__":
    sys.exit(main())
