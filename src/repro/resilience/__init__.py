"""reprochaos — fault injection, recovery and degradation for long runs.

The resilience subsystem of this repository, threaded through the three
long-running loops (SCF, inverse DFT, MLXC training):

* :mod:`repro.resilience.faults` — deterministic, seeded fault injection at
  named sites (``REPRO_FAULTS="site:iter[:kind[:count]]"`` or a
  programmatic :class:`FaultPlan`); zero-overhead no-ops unarmed.
* :mod:`repro.resilience.retry` — :class:`RetryPolicy`: bounded retries
  with a deterministic backoff schedule, recorded as reproscope events and
  counters, converting exhausted recovery into a structured
  :class:`ResilienceError` that names the failing site.
* :mod:`repro.resilience.degrade` — the degradation ladder (parallel
  channels -> serial, ScatterMap -> reference scatter) and the
  :class:`DegradationReport` attached to results.

Mid-run checkpoint/resume — the third leg of the robustness story — lives
with the other persistence code in :mod:`repro.core.io` (format v2) and the
``resume_from=`` parameters of ``SCFDriver.run`` / ``InverseDFT.run`` /
``MLXCTrainer.train``; ``python -m repro resume`` drives it from the CLI.

Quick chaos run::

    from repro.resilience import FaultPlan, FaultSpec, chaos

    with chaos(FaultPlan([FaultSpec("filter_block", 3, "nan")])):
        result = calc.run()   # recovers via retry, or raises
                              # ResilienceError("[filter_block] ...")
"""

from .degrade import DegradationEvent, DegradationReport, ScatterFallback
from .faults import (
    FAULT_SITES,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    ResilienceError,
    active_plan,
    arm,
    armed,
    chaos,
    disarm,
    fault_point,
)
from .retry import RetryPolicy

__all__ = [
    "FAULT_SITES",
    "DegradationEvent",
    "DegradationReport",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "ResilienceError",
    "RetryPolicy",
    "ScatterFallback",
    "active_plan",
    "arm",
    "armed",
    "chaos",
    "disarm",
    "fault_point",
]
