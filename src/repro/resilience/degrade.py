"""Graceful degradation: the ladder a faulting run descends, with a report.

When bounded retries at full speed keep failing, the drivers trade
performance for survival instead of aborting:

1. retry the failing step in place (:class:`~repro.resilience.retry.
   RetryPolicy`);
2. drop the parallel (k, spin) channel pool to serial execution;
3. swap the precomputed :class:`~repro.fem.scatter.ScatterMap` for the
   reference ``np.add.at`` scatter (the ``REPRO_SLOW_SCATTER`` gate the
   fast path already honours at call time);
4. give up with a structured ``ResilienceError``.

Every rung taken is recorded in a :class:`DegradationReport` — attached to
the ``SCFResult`` and printed by the CLI — so a run that survived on
degraded paths says so instead of silently running slow.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.obs import add_counter, add_event

__all__ = ["DegradationEvent", "DegradationReport", "ScatterFallback"]


@dataclass(frozen=True)
class DegradationEvent:
    """One rung taken on the degradation ladder."""

    site: str  #: fault site that forced the fallback
    action: str  #: e.g. "parallel->serial", "scatter->reference"
    detail: str = ""
    iteration: int | None = None  #: outer-loop iteration, when known


@dataclass
class DegradationReport:
    """Ordered record of every fallback a run took."""

    events: list[DegradationEvent] = field(default_factory=list)

    def record(
        self,
        site: str,
        action: str,
        detail: str = "",
        iteration: int | None = None,
    ) -> DegradationEvent:
        ev = DegradationEvent(site, action, detail, iteration)
        self.events.append(ev)
        add_counter("degradations", 1)
        add_event("degraded", site=site, action=action)
        return ev

    def __len__(self) -> int:
        return len(self.events)

    def __bool__(self) -> bool:
        return bool(self.events)

    def as_dicts(self) -> list[dict]:
        return [
            {
                "site": e.site,
                "action": e.action,
                "detail": e.detail,
                "iteration": e.iteration,
            }
            for e in self.events
        ]

    def summary(self) -> str:
        if not self.events:
            return "no degradation: run completed on the fast paths"
        lines = ["degradation report:"]
        for e in self.events:
            at = f" (iteration {e.iteration})" if e.iteration is not None else ""
            det = f": {e.detail}" if e.detail else ""
            lines.append(f"  [{e.site}] {e.action}{at}{det}")
        return "\n".join(lines)


class ScatterFallback:
    """Engage/restore the ``REPRO_SLOW_SCATTER`` reference-scatter gate.

    The fast :class:`~repro.fem.scatter.ScatterMap` checks the environment
    at *call time*, so flipping the variable mid-run degrades every scatter
    from the next operator application on — no rebuild needed.  The driver
    restores the caller's setting in a ``finally`` so a degraded run does
    not leak slow scatters into the next one.
    """

    _VAR = "REPRO_SLOW_SCATTER"

    def __init__(self) -> None:
        self.active = False
        self._prev: str | None = None

    def engage(self) -> bool:
        """Force the reference scatter; returns False if already active."""
        if self.active:
            return False
        self._prev = os.environ.get(self._VAR)
        os.environ[self._VAR] = "1"
        self.active = True
        return True

    def restore(self) -> None:
        """Put the caller's ``REPRO_SLOW_SCATTER`` setting back."""
        if not self.active:
            return
        if self._prev is None:
            os.environ.pop(self._VAR, None)
        else:
            os.environ[self._VAR] = self._prev
        self.active = False
