"""reprochaos fault injection: deterministic, seeded faults at named sites.

The paper's headline runs occupy thousands of nodes for hours — a regime
where transient kernel failures, dropped messages and slow ranks are the
norm, not the exception.  This module lets the reproduction *rehearse* that
regime deterministically: a :class:`FaultPlan` names a fault **site** (a
registered point in the numerical pipeline), the **invocation** index at
which it fires, a **kind**, and how many consecutive invocations it poisons.

Registered sites (see :data:`FAULT_SITES`):

==============  =============================================================
``ks_apply``    end of ``KSOperator.apply`` / ``DistributedKSOperator.apply``
``filter_block``  output of one Chebyshev filter block
``halo``        the owner-sum halo exchange in ``VirtualCluster``
``channel``     entry of a per-(k, spin) ChFES channel solve
``minres``      a Krylov step inside the block-MINRES adjoint solve
==============  =============================================================

Kinds: ``nan`` / ``inf`` poison one deterministic element of the array
passing through the site; ``raise`` throws :class:`InjectedFault` (a crashed
worker); ``drop`` models a lost halo message (the protocol retransmits);
``slow`` sleeps, modeling a straggler rank.

Arming follows the ``REPRO_TRACE`` pattern exactly: a module-global
``_PLAN`` is ``None`` unless a plan is armed (programmatically via
:func:`arm` / :func:`chaos`, or from ``REPRO_FAULTS`` at import), and every
call site guards on it first — an unarmed run pays one attribute load per
site visit, nothing else, and is bit-identical to a build without the hooks.

``REPRO_FAULTS`` grammar: comma-separated ``site:iter[:kind[:count]]``,
e.g. ``REPRO_FAULTS="filter_block:3:nan"`` or ``"halo:2:drop:4,channel:5"``
(kind defaults to the site's first supported kind, count to 1).
"""

from __future__ import annotations

import os
import threading
import time
import zlib
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from repro.obs import add_counter

__all__ = [
    "FAULT_SITES",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "ResilienceError",
    "active_plan",
    "arm",
    "armed",
    "chaos",
    "disarm",
    "fault_point",
]

#: site -> kinds it supports (array-poisoning kinds need an array to flow
#: through the site; ``channel`` marks a control-flow point, so only
#: exception/straggler faults make sense there)
FAULT_SITES: dict[str, tuple[str, ...]] = {
    "ks_apply": ("nan", "inf", "raise", "slow"),
    "filter_block": ("nan", "inf", "raise"),
    "halo": ("drop", "nan", "inf", "raise", "slow"),
    "channel": ("raise", "slow"),
    "minres": ("nan", "inf", "raise"),
}

KINDS = ("nan", "inf", "drop", "raise", "slow")


class InjectedFault(RuntimeError):
    """A fault fired by an armed :class:`FaultPlan` (simulated crash)."""

    def __init__(self, site: str, invocation: int, kind: str = "raise") -> None:
        self.site = site
        self.invocation = invocation
        self.kind = kind
        super().__init__(
            f"injected {kind!r} fault at site {site!r} "
            f"(invocation {invocation})"
        )


class ResilienceError(RuntimeError):
    """Structured failure after recovery is exhausted.

    Raised *instead of* letting a NaN energy or an anonymous worker
    exception escape: it names the fault ``site`` and the recovery effort
    spent, so a failed long campaign reports *where* it died.
    """

    def __init__(self, site: str, reason: str, attempts: int = 0) -> None:
        self.site = site
        self.reason = reason
        self.attempts = attempts
        tail = f" (after {attempts} attempts)" if attempts else ""
        super().__init__(f"[{site}] {reason}{tail}")


@dataclass(frozen=True)
class FaultSpec:
    """One fault: fire ``kind`` at ``site`` on ``count`` consecutive
    invocations starting at the ``invocation``-th (1-based)."""

    site: str
    invocation: int
    kind: str = ""
    count: int = 1

    def __post_init__(self) -> None:
        if self.site not in FAULT_SITES:
            raise ValueError(
                f"unknown fault site {self.site!r}; "
                f"registered sites: {', '.join(sorted(FAULT_SITES))}"
            )
        kind = self.kind or FAULT_SITES[self.site][0]
        object.__setattr__(self, "kind", kind)
        if kind not in FAULT_SITES[self.site]:
            raise ValueError(
                f"site {self.site!r} does not support kind {kind!r} "
                f"(supported: {', '.join(FAULT_SITES[self.site])})"
            )
        if self.invocation < 1 or self.count < 1:
            raise ValueError("invocation and count must be >= 1")

    def covers(self, invocation: int) -> bool:
        return self.invocation <= invocation < self.invocation + self.count


@dataclass
class FaultPlan:
    """A deterministic, seeded set of :class:`FaultSpec` to fire.

    Thread-safe: the per-site invocation counters are lock-guarded, so the
    parallel (k, spin) channel workers count deterministically *per site*
    (a spec keyed on a site shared by concurrent workers fires on whichever
    worker draws the matching invocation — pin specs to serially-visited
    sites, or run single-threaded, for fully reproducible chaos runs).
    """

    specs: list[FaultSpec] = field(default_factory=list)
    seed: int = 0
    slow_seconds: float = 0.005  #: straggler stall per ``slow`` fault
    fired: list[tuple[str, int, str]] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._lock = threading.Lock()
        self._counts: dict[str, int] = {}

    # ------------------------------------------------------------------
    @classmethod
    def parse(cls, text: str, seed: int = 0) -> "FaultPlan | None":
        """Build a plan from the ``REPRO_FAULTS`` grammar (None if empty)."""
        text = (text or "").strip()
        if not text:
            return None
        specs = []
        for item in text.split(","):
            parts = item.strip().split(":")
            if not 2 <= len(parts) <= 4:
                raise ValueError(
                    f"bad fault spec {item!r}; expected site:iter[:kind[:count]]"
                )
            site = parts[0].strip()
            invocation = int(parts[1])
            kind = parts[2].strip() if len(parts) > 2 else ""
            count = int(parts[3]) if len(parts) > 3 else 1
            specs.append(FaultSpec(site, invocation, kind, count))
        return cls(specs=specs)

    # ------------------------------------------------------------------
    def note(self, site: str) -> tuple[str, int] | None:
        """Count one invocation of ``site``; return (kind, invocation) if a
        spec fires, else None."""
        with self._lock:
            inv = self._counts.get(site, 0) + 1
            self._counts[site] = inv
            for sp in self.specs:
                if sp.site == site and sp.covers(inv):
                    self.fired.append((site, inv, sp.kind))
                    return sp.kind, inv
        return None

    def invocations(self, site: str) -> int:
        with self._lock:
            return self._counts.get(site, 0)

    def reset(self) -> None:
        with self._lock:
            self._counts.clear()
            self.fired.clear()


# ---------------------------------------------------------------------------
# Global arming (the REPRO_TRACE pattern): call sites read _PLAN first.
# ---------------------------------------------------------------------------
_PLAN: FaultPlan | None = None


def arm(plan: FaultPlan | None) -> FaultPlan | None:
    """Arm ``plan`` globally; returns the previously armed plan (or None)."""
    global _PLAN
    prev = _PLAN
    _PLAN = plan
    return prev


def disarm() -> FaultPlan | None:
    """Disarm fault injection; returns the plan that was armed."""
    return arm(None)


def active_plan() -> FaultPlan | None:
    return _PLAN


def armed() -> bool:
    return _PLAN is not None


@contextmanager
def chaos(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Arm ``plan`` for the duration of a ``with`` block (restores the
    previous plan on exit, exception-safe)."""
    prev = arm(plan)
    try:
        yield plan
    finally:
        arm(prev)


def _poison(array: np.ndarray, kind: str, seed: int, site: str, inv: int) -> None:
    """Deterministically corrupt one element of ``array`` in place."""
    flat = array.reshape(-1)
    if flat.size == 0:
        return
    mix = (seed * 1_000_003 + inv * 7919 + zlib.crc32(site.encode())) % 2**32
    idx = int(np.random.default_rng(mix).integers(flat.size))
    flat[idx] = np.nan if kind == "nan" else np.inf


def fault_point(site: str, array: np.ndarray | None = None) -> str | None:
    """The fault hook every registered site calls.

    Returns ``None`` when nothing fires, otherwise the fired kind (callers
    that implement protocol-level recovery — the halo exchange — inspect
    it).  ``nan``/``inf`` poison ``array`` in place; ``raise`` throws
    :class:`InjectedFault`; ``slow`` stalls for the plan's
    ``slow_seconds``.  Hot paths should guard the call on
    ``faults._PLAN is not None`` (one attribute load) for zero unarmed
    overhead.
    """
    plan = _PLAN
    if plan is None:
        return None
    hit = plan.note(site)
    if hit is None:
        return None
    kind, inv = hit
    add_counter("faults_injected", 1)
    if kind == "raise":
        raise InjectedFault(site, inv)
    if kind == "slow":
        time.sleep(plan.slow_seconds)
        return kind
    if kind in ("nan", "inf"):
        if array is None:
            # nothing to poison at this call: surface as a crash instead
            raise InjectedFault(site, inv, kind)
        _poison(array, kind, plan.seed, site, inv)
        return kind
    return kind  # "drop": the caller's protocol handles retransmission


# arm from the environment at import (mirrors REPRO_TRACE)
_PLAN = FaultPlan.parse(os.environ.get("REPRO_FAULTS", ""))
