"""Bounded, deterministic retries — the recovery half of reprochaos.

:class:`RetryPolicy` wraps one *attempt* callable (a channel eigensolve, an
adjoint MINRES solve) with a fixed retry budget and a deterministic backoff
schedule.  Every retry is recorded on the open reproscope span (an event
plus ``retries`` / ``recoveries`` counters), so a traced chaos run shows
exactly where recovery effort went.  When the budget is exhausted the
failure is converted into a structured :class:`ResilienceError` naming the
site — never a bare worker exception, never a NaN result.

This module is the sanctioned home of broad exception handling (reprolint
rule R011 bans ``except Exception`` everywhere else): recovery *must* catch
whatever a faulted kernel throws, and the bounded budget plus the final
structured re-raise keep genuine bugs from being silently absorbed.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable

from repro.obs import add_counter, add_event

from .faults import ResilienceError

__all__ = ["RetryPolicy"]


@dataclass(frozen=True)
class RetryPolicy:
    """Retry an attempt up to ``max_retries`` times with fixed backoff.

    ``backoff`` is the deterministic sleep schedule in seconds, indexed by
    retry number (the last entry repeats).  The default is all-zero: in the
    in-process reproduction there is no transport to let quiesce, and
    deterministic tests must not depend on wall time.  A production-style
    schedule would be e.g. ``(0.1, 0.5, 2.0)``.
    """

    max_retries: int = 2
    backoff: tuple[float, ...] = (0.0,)

    def delay(self, retry_index: int) -> float:
        """Backoff before the ``retry_index``-th retry (0-based)."""
        if not self.backoff:
            return 0.0
        return self.backoff[min(retry_index, len(self.backoff) - 1)]

    def run(
        self,
        attempt: Callable[[], Any],
        site: str,
        validate: Callable[[Any], bool] | None = None,
        before_retry: Callable[[int], None] | None = None,
    ) -> Any:
        """Run ``attempt`` until it returns a valid result or the budget ends.

        ``validate`` (if given) must return True for a result to be
        accepted — a non-finite eigenvalue block fails validation just like
        an exception.  ``before_retry(n)`` runs before the ``n``-th retry
        (1-based): restore backed-up state, degrade a fast path, etc.
        Raises :class:`ResilienceError` naming ``site`` on exhaustion; an
        inner :class:`ResilienceError` is propagated unwrapped.
        """
        total = self.max_retries + 1
        reason = "no attempt executed"
        for n in range(1, total + 1):
            failed = True
            try:
                out = attempt()
                failed = False
            except ResilienceError:
                raise  # already structured: do not re-wrap or retry
            except Exception as exc:  # noqa: BLE001 - resilience boundary
                reason = f"{type(exc).__name__}: {exc}"
            if not failed:
                if validate is None or validate(out):
                    if n > 1:
                        add_counter("recoveries", 1)
                        add_event("recovered", site=site, attempt=n)
                    return out
                reason = "result failed validation (non-finite values)"
            if n == total:
                break
            add_counter("retries", 1)
            add_event("retry", site=site, attempt=n, reason=reason)
            d = self.delay(n - 1)
            if d > 0.0:
                time.sleep(d)
            if before_retry is not None:
                before_retry(n)
        raise ResilienceError(site, reason, attempts=total)
