"""MLXC input descriptors (paper Eq. 3): rho, xi, s.

* total density ``rho = rho_up + rho_dn``
* relative spin polarization ``xi = (rho_up - rho_dn) / rho``
* reduced density gradient
  ``s = (3 pi^2)^(1/3) |grad rho| / (2 rho^(4/3))``

plus the spin-scaling prefactor
``phi = ((1+xi)^(4/3) + (1-xi)^(4/3)) / 2``.

All functions are dtype-agnostic (complex-step safe) and floor the density
to avoid vacuum singularities; for feeding the DNN, bounded transforms
``rho^(1/3)`` and ``s/(1+s)`` are used (a monotone reparametrization of the
same physical inputs — the functional dependence of Eq. 3 is unchanged).
"""

from __future__ import annotations

import numpy as np

from repro.constants import RHO_FLOOR

__all__ = [
    "descriptors_from_spin_density",
    "phi_spin_factor",
    "reduced_gradient",
    "feature_map",
]

_S_PREF = (3.0 * np.pi**2) ** (1.0 / 3.0)


def reduced_gradient(rho, sigma_total):
    """Dimensionless s from rho and sigma = |grad rho|^2."""
    rho_s = np.where(np.real(rho) > RHO_FLOOR, rho, RHO_FLOOR)
    grad = np.sqrt(np.where(np.real(sigma_total) > 0, sigma_total, 0.0) + 1e-300)
    return _S_PREF * grad / (2.0 * rho_s ** (4.0 / 3.0))


def phi_spin_factor(xi):
    """phi(xi) = ((1+xi)^(4/3) + (1-xi)^(4/3)) / 2."""
    return 0.5 * ((1.0 + xi) ** (4.0 / 3.0) + (1.0 - xi) ** (4.0 / 3.0))


def descriptors_from_spin_density(rho_up, rho_dn, sigma_uu, sigma_ud, sigma_dd):
    """Return (rho, xi, s) fields from spin densities and contractions."""
    rho = rho_up + rho_dn
    rho_s = np.where(np.real(rho) > RHO_FLOOR, rho, RHO_FLOOR)
    xi = (rho_up - rho_dn) / rho_s
    sigma_tot = sigma_uu + 2.0 * sigma_ud + sigma_dd
    s = reduced_gradient(rho_s, sigma_tot)
    return rho, xi, s


def feature_map(rho, xi, s):
    """Bounded DNN features: [rho^(1/3), xi, s/(1+s)], stacked (n, 3)."""
    rho_s = np.where(np.real(rho) > RHO_FLOOR, rho, RHO_FLOOR)
    f1 = rho_s ** (1.0 / 3.0)
    f3 = s / (1.0 + s)
    return np.stack(
        [np.asarray(f1), np.asarray(xi), np.asarray(f3)], axis=-1
    )
