"""MLXC training: composite loss on E_xc and density-weighted v_xc (Sec 5.2).

The paper trains F_DNN against {rho_QMB, v_xc_exact} pairs from invDFT with
a composite mean-squared-error loss on the XC energy and the
density-weighted XC potential, with v_xc^ML obtained "inexpensively via
back-propagation".  This module implements exactly that, with one technical
twist worth documenting:

The potential loss needs the *mixed* second derivative
``d/d theta [ d e / d (inputs) ]`` (parameter gradient of an
input-derivative), including the weak-divergence term from the
s-dependence.  Both are obtained without any extra autodiff machinery by
combining

* the linearity of the divergence (its adjoint, ``Mesh3D.
  divergence_adjoint``, turns the loss into a pointwise-weighted sum of
  ``vrho`` and ``vsigma``), and
* a complex step on the *inputs* composed with the real backpropagation on
  the *parameters*: for real weights the network is holomorphic in its
  inputs, so ``Im(grad_theta sum e(x + i h d)) / h`` is exactly
  ``grad_theta sum d . (d e / d x)`` to machine precision.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.fem.mesh import Mesh3D
from repro.constants import RHO_FLOOR
from repro.core.io import load_mlxc_state, save_mlxc_state
from repro.obs import trace_region
from repro.resilience import ResilienceError

from .nn import Adam

__all__ = ["TrainingSample", "MLXCTrainer", "MLXCLaplacianTrainer", "assemble_sample"]

_H_CSTEP = 1e-25


@dataclass
class TrainingSample:
    """Per-system training data on its finite-element mesh."""

    name: str
    mesh: Mesh3D
    rho_spin: np.ndarray  #: (n, 2) target (QMB) spin density
    grad_up: np.ndarray  #: (n, 3)
    grad_dn: np.ndarray
    v_target: np.ndarray  #: (n, 2) exact XC potential from invDFT
    exc_target: float  #: exact XC energy
    live: np.ndarray = field(init=False)

    def __post_init__(self) -> None:
        self.live = self.rho_spin.sum(axis=1) > 10.0 * RHO_FLOOR

    @property
    def sigmas(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        s_uu = np.einsum("ij,ij->i", self.grad_up, self.grad_up)
        s_ud = np.einsum("ij,ij->i", self.grad_up, self.grad_dn)
        s_dd = np.einsum("ij,ij->i", self.grad_dn, self.grad_dn)
        return s_uu, s_ud, s_dd


def assemble_sample(
    name: str,
    mesh: Mesh3D,
    rho_spin: np.ndarray,
    v_xc_spin: np.ndarray,
    exc_target: float,
) -> TrainingSample:
    """Package invDFT output into a training sample (computes gradients)."""
    return TrainingSample(
        name=name,
        mesh=mesh,
        rho_spin=np.asarray(rho_spin, dtype=float),
        grad_up=mesh.gradient(rho_spin[:, 0]),
        grad_dn=mesh.gradient(rho_spin[:, 1]),
        v_target=np.asarray(v_xc_spin, dtype=float),
        exc_target=float(exc_target),
    )


class MLXCTrainer:
    """Adam training of the MLXC network on invDFT data."""

    def __init__(
        self,
        samples: list[TrainingSample],
        functional=None,
        lambda_energy: float = 1.0,
        lambda_potential: float = 1.0,
    ) -> None:
        if not samples:
            raise ValueError("need at least one training sample")
        self.samples = samples
        if functional is None:
            from repro.xc.mlxc import MLXC  # lazy: avoids ml <-> xc cycle

            functional = MLXC()
        self.functional = functional
        self.lambda_energy = lambda_energy
        self.lambda_potential = lambda_potential

    # ------------------------------------------------------------------
    def _model_fields(self, s: TrainingSample):
        """e, vrho, vsigma and v_xc (with divergence term) on sample ``s``."""
        out = self.functional.evaluate(
            s.rho_spin[:, 0], s.rho_spin[:, 1], *s.sigmas
        )
        vs = out.vsigma
        vec_up = 2.0 * vs[:, 0:1] * s.grad_up + vs[:, 1:2] * s.grad_dn
        vec_dn = 2.0 * vs[:, 2:3] * s.grad_dn + vs[:, 1:2] * s.grad_up
        v_up = out.vrho[:, 0] - s.mesh.divergence(vec_up)
        v_dn = out.vrho[:, 1] - s.mesh.divergence(vec_dn)
        return out, np.stack([v_up, v_dn], axis=1)

    def loss(self) -> dict:
        """Current composite loss and its components."""
        le, lv = 0.0, 0.0
        for s in self.samples:
            out, v_ml = self._model_fields(s)
            e_ml = float(s.mesh.integrate(out.exc))
            natoms_norm = max(abs(s.exc_target), 1e-3)
            le += ((e_ml - s.exc_target) / natoms_norm) ** 2
            w = s.mesh.mass_diag
            dv = (v_ml - s.v_target) * s.live[:, None]
            num = float(np.sum(w[:, None] * (s.rho_spin * dv) ** 2))
            den = float(np.sum(w[:, None] * (s.rho_spin * s.v_target) ** 2)) + 1e-30
            lv += num / den
        n = len(self.samples)
        total = (self.lambda_energy * le + self.lambda_potential * lv) / n
        return {"total": total, "energy": le / n, "potential": lv / n}

    # ------------------------------------------------------------------
    def _weighted_e_param_grad(
        self, s: TrainingSample, point_weights: np.ndarray,
        input_pert: tuple[np.ndarray, ...] | None = None,
    ) -> np.ndarray:
        """d/d theta of ``sum_I point_weights_I * e_I`` (complex-safe).

        ``input_pert``, if given, is (d_rho_u, d_rho_d, d_s_uu, d_s_ud,
        d_s_dd): the inputs are complex-perturbed along these directions and
        the *imaginary part / h* of the parameter gradient is returned —
        i.e. the mixed second derivative described in the module docstring.
        """
        from repro.ml.descriptors import (
            descriptors_from_spin_density,
            feature_map,
            phi_spin_factor,
        )

        ru = s.rho_spin[:, 0].astype(complex if input_pert else float)
        rd = s.rho_spin[:, 1].astype(complex if input_pert else float)
        s_uu, s_ud, s_dd = (x.astype(ru.dtype) for x in s.sigmas)
        if input_pert is not None:
            h = _H_CSTEP
            ru = ru + 1j * h * input_pert[0]
            rd = rd + 1j * h * input_pert[1]
            s_uu = s_uu + 1j * h * input_pert[2]
            s_ud = s_ud + 1j * h * input_pert[3]
            s_dd = s_dd + 1j * h * input_pert[4]
        rho, xi, sred = descriptors_from_spin_density(ru, rd, s_uu, s_ud, s_dd)
        rho_s = np.where(np.real(rho) > RHO_FLOOR, rho, RHO_FLOOR)
        pref = rho_s ** (4.0 / 3.0) * phi_spin_factor(xi)
        pref = np.where(s.live, pref, 0.0)
        feats = feature_map(rho_s, xi, sred)
        net = self.functional.network
        cache: list = []
        net.forward(feats, cache)
        grad_out = (point_weights * pref)[:, None]
        gW, gb, _ = net.backward(cache, grad_out)
        flat = net._flatten(gW, gb)
        if input_pert is not None:
            return np.imag(flat) / _H_CSTEP
        return np.real(flat)

    def loss_and_grad(self) -> tuple[dict, np.ndarray]:
        """Composite loss and its exact parameter gradient."""
        net = self.functional.network
        grad = np.zeros(net.n_params)
        le, lv = 0.0, 0.0
        n = len(self.samples)
        for s in self.samples:
            out, v_ml = self._model_fields(s)
            w = s.mesh.mass_diag
            # --- energy term ------------------------------------------------
            e_ml = float(s.mesh.integrate(out.exc))
            norm_e = max(abs(s.exc_target), 1e-3)
            resid_e = (e_ml - s.exc_target) / norm_e
            le += resid_e**2
            coeff = self.lambda_energy / n * 2.0 * resid_e / norm_e
            grad += self._weighted_e_param_grad(s, coeff * w)
            # --- potential term ---------------------------------------------
            dv = (v_ml - s.v_target) * s.live[:, None]
            den = float(np.sum(w[:, None] * (s.rho_spin * s.v_target) ** 2)) + 1e-30
            num = float(np.sum(w[:, None] * (s.rho_spin * dv) ** 2))
            lv += num / den
            # dL/dv_sI
            a = (
                self.lambda_potential / n * 2.0 / den
                * w[:, None] * s.rho_spin**2 * dv
            )
            # translate to pointwise weights on vrho and vsigma
            badj_u = -s.mesh.divergence_adjoint(a[:, 0])
            badj_d = -s.mesh.divergence_adjoint(a[:, 1])
            c_uu = 2.0 * np.einsum("ij,ij->i", s.grad_up, badj_u)
            c_dd = 2.0 * np.einsum("ij,ij->i", s.grad_dn, badj_d)
            c_ud = np.einsum("ij,ij->i", s.grad_dn, badj_u) + np.einsum(
                "ij,ij->i", s.grad_up, badj_d
            )
            pert = (a[:, 0], a[:, 1], c_uu, c_ud, c_dd)
            grad += self._weighted_e_param_grad(
                s, np.ones(s.mesh.nnodes), input_pert=pert
            )
        total = (self.lambda_energy * le + self.lambda_potential * lv) / n
        return {"total": total, "energy": le / n, "potential": lv / n}, grad

    # ------------------------------------------------------------------
    def train(
        self,
        epochs: int = 200,
        lr: float = 2e-3,
        verbose: bool = False,
        checkpoint_path: str | None = None,
        checkpoint_every: int = 1,
        checkpoint_metadata: dict | None = None,
        resume_from: str | None = None,
    ) -> list[dict]:
        """Run Adam; returns the loss history.

        ``checkpoint_path`` snapshots (theta, Adam moments, loss history)
        every ``checkpoint_every`` epochs; ``resume_from`` continues an
        interrupted training run on the identical parameter trajectory.
        """
        net = self.functional.network
        opt = Adam(lr=lr)
        theta = net.get_params()
        history = []
        start_ep = 0
        if resume_from is not None:
            st = load_mlxc_state(resume_from, n_params=net.n_params)
            theta = st["theta"]
            opt.load_state_dict(st["opt_state"])
            history = list(st["history"])
            start_ep = st["epoch"] + 1
        with trace_region(
            "MLXC-train", epochs=epochs, nsamples=len(self.samples)
        ):
            for ep in range(start_ep, epochs):
                with trace_region("MLXC-epoch", epoch=ep):
                    net.set_params(theta)
                    losses, grad = self.loss_and_grad()
                    # resilience sentinel: a NaN loss corrupts theta through
                    # the optimizer; fail structured instead
                    if not np.isfinite(losses["total"]):
                        raise ResilienceError(
                            "mlxc", f"non-finite training loss at epoch {ep}"
                        )
                    history.append(losses)
                    if verbose and (ep % 20 == 0 or ep == epochs - 1):  # pragma: no cover
                        print(
                            f"epoch {ep:4d} total {losses['total']:.4e} "
                            f"E {losses['energy']:.3e} v {losses['potential']:.3e}"
                        )
                    theta = opt.step(theta, grad)
                    if checkpoint_path is not None and (
                        ep % max(checkpoint_every, 1) == 0 or ep == epochs - 1
                    ):
                        save_mlxc_state(
                            checkpoint_path,
                            epoch=ep,
                            theta=theta,
                            opt_state=opt.state_dict(),
                            history=history,
                            metadata=checkpoint_metadata,
                        )
        net.set_params(theta)
        return history


class MLXCLaplacianTrainer(MLXCTrainer):
    """Trainer for the Laplacian-descriptor functional (MLXC-L).

    Extends the composite loss to the four-descriptor form: the potential's
    second-order Euler-Lagrange term ``+ lap(d e / d lap(rho))`` is handled
    through the adjoint Laplacian (``gradient_adjoint . divergence_adjoint``
    on the mesh), after which the same complex-step-times-backprop trick
    yields exact parameter gradients over all seven pointwise inputs.
    """

    def __init__(self, samples, functional=None, lambda_energy=1.0,
                 lambda_potential=1.0):
        from repro.xc.mlxc_laplacian import MLXCLaplacian

        if functional is None:
            functional = MLXCLaplacian()
        super().__init__(samples, functional, lambda_energy, lambda_potential)
        # per-sample Laplacian fields from the stored recovered gradients
        self._laps = [
            (s.mesh.divergence(s.grad_up), s.mesh.divergence(s.grad_dn))
            for s in samples
        ]

    # -- functional evaluation with the Laplacian term -----------------------
    def _model_fields(self, s):
        idx = self.samples.index(s)
        lap_u, lap_d = self._laps[idx]
        args = [s.rho_spin[:, 0], s.rho_spin[:, 1], *s.sigmas, lap_u, lap_d]
        exc = np.real(self.functional.exc_density_lap(*args))
        exc = np.where(s.live, exc, 0.0)
        derivs = []
        for j in range(7):
            pert = [a.astype(complex) if i == j else a for i, a in enumerate(args)]
            pert[j] = pert[j] + 1j * 1e-30
            d = np.imag(self.functional.exc_density_lap(*pert)) / 1e-30
            derivs.append(np.where(s.live, d, 0.0))
        vr_u, vr_d, vs_uu, vs_ud, vs_dd, vl_u, vl_d = derivs
        vec_up = 2.0 * vs_uu[:, None] * s.grad_up + vs_ud[:, None] * s.grad_dn
        vec_dn = 2.0 * vs_dd[:, None] * s.grad_dn + vs_ud[:, None] * s.grad_up
        v_up = vr_u - s.mesh.divergence(vec_up)
        v_dn = vr_d - s.mesh.divergence(vec_dn)
        v_up = v_up + s.mesh.divergence(s.mesh.gradient(vl_u))
        v_dn = v_dn + s.mesh.divergence(s.mesh.gradient(vl_d))

        class _Out:
            pass

        out = _Out()
        out.exc = exc
        return out, np.stack([v_up, v_dn], axis=1)

    # -- parameter gradients ---------------------------------------------------
    def _weighted_e_param_grad(self, s, point_weights, input_pert=None):
        from repro.ml.descriptors import descriptors_from_spin_density, phi_spin_factor
        from repro.xc.mlxc_laplacian import _Q_PREF, _feature_map4

        idx = self.samples.index(s)
        lap_u, lap_d = self._laps[idx]
        dtype = complex if input_pert is not None else float
        args = [s.rho_spin[:, 0].astype(dtype), s.rho_spin[:, 1].astype(dtype)]
        args += [x.astype(dtype) for x in s.sigmas]
        args += [lap_u.astype(dtype), lap_d.astype(dtype)]
        if input_pert is not None:
            for j in range(7):
                args[j] = args[j] + 1j * _H_CSTEP * input_pert[j]
        ru, rd, s_uu, s_ud, s_dd, lu, ld = args
        rho, xi, sred = descriptors_from_spin_density(ru, rd, s_uu, s_ud, s_dd)
        rho_s = np.where(np.real(rho) > RHO_FLOOR, rho, RHO_FLOOR)
        q = (lu + ld) / (_Q_PREF * rho_s ** (5.0 / 3.0))
        pref = rho_s ** (4.0 / 3.0) * phi_spin_factor(xi)
        pref = np.where(s.live, pref, 0.0)
        feats = _feature_map4(rho_s, xi, sred, q)
        net = self.functional.network
        cache: list = []
        net.forward(feats, cache)
        gW, gb, _ = net.backward(cache, (point_weights * pref)[:, None])
        flat = net._flatten(gW, gb)
        if input_pert is not None:
            return np.imag(flat) / _H_CSTEP
        return np.real(flat)

    def loss_and_grad(self):
        net = self.functional.network
        grad = np.zeros(net.n_params)
        le, lv = 0.0, 0.0
        n = len(self.samples)
        for s in self.samples:
            out, v_ml = self._model_fields(s)
            w = s.mesh.mass_diag
            e_ml = float(s.mesh.integrate(out.exc))
            norm_e = max(abs(s.exc_target), 1e-3)
            resid_e = (e_ml - s.exc_target) / norm_e
            le += resid_e**2
            coeff = self.lambda_energy / n * 2.0 * resid_e / norm_e
            grad += self._weighted_e_param_grad(s, coeff * w)
            dv = (v_ml - s.v_target) * s.live[:, None]
            den = float(np.sum(w[:, None] * (s.rho_spin * s.v_target) ** 2)) + 1e-30
            num = float(np.sum(w[:, None] * (s.rho_spin * dv) ** 2))
            lv += num / den
            a = (
                self.lambda_potential / n * 2.0 / den
                * w[:, None] * s.rho_spin**2 * dv
            )
            badj_u = -s.mesh.divergence_adjoint(a[:, 0])
            badj_d = -s.mesh.divergence_adjoint(a[:, 1])
            c_uu = 2.0 * np.einsum("ij,ij->i", s.grad_up, badj_u)
            c_dd = 2.0 * np.einsum("ij,ij->i", s.grad_dn, badj_d)
            c_ud = np.einsum("ij,ij->i", s.grad_dn, badj_u) + np.einsum(
                "ij,ij->i", s.grad_up, badj_d
            )
            # adjoint Laplacian weights for the + lap(e_lap) potential term
            c_lu = s.mesh.gradient_adjoint(s.mesh.divergence_adjoint(a[:, 0]))
            c_ld = s.mesh.gradient_adjoint(s.mesh.divergence_adjoint(a[:, 1]))
            pert = (a[:, 0], a[:, 1], c_uu, c_ud, c_dd, c_lu, c_ld)
            grad += self._weighted_e_param_grad(
                s, np.ones(s.mesh.nnodes), input_pert=pert
            )
        total = (self.lambda_energy * le + self.lambda_potential * lv) / n
        return {"total": total, "energy": le / n, "potential": lv / n}, grad
