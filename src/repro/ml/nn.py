"""From-scratch dense neural network (the MLXC model's F_DNN).

A multilayer perceptron with ELU activations, matching the paper's MLXC
architecture (5 hidden layers x 80 neurons).  Three properties matter here:

* the forward pass is **dtype-agnostic** — it accepts complex inputs, which
  lets the complex-step machinery of :mod:`repro.xc.base` extract exact
  functional derivatives through the network, and lets the trainer compute
  mixed parameter/input second derivatives (see :mod:`repro.ml.training`);
* reverse-mode parameter gradients (``backward``) are hand-written and work
  for complex activations with real weights (no conjugation — we
  differentiate a holomorphic map);
* parameters are exposed as a flat vector for the Adam optimizer.
"""

from __future__ import annotations

import hashlib
import io
import zipfile
from dataclasses import dataclass

import numpy as np

__all__ = ["MLP", "Adam", "elu", "elu_prime"]


def elu(x: np.ndarray, alpha: float = 1.0) -> np.ndarray:
    """ELU activation, complex-safe (branch on the real part)."""
    pos = np.real(x) > 0
    return np.where(pos, x, alpha * (np.exp(np.where(pos, 0.0, x)) - 1.0))


def elu_prime(x: np.ndarray, alpha: float = 1.0) -> np.ndarray:
    """Derivative of :func:`elu` (one-sided at the origin kink)."""
    pos = np.real(x) > 0
    return np.where(pos, 1.0, alpha * np.exp(np.where(pos, 0.0, x)))


class MLP:
    """Fully connected network with ELU hidden activations, linear output."""

    def __init__(
        self,
        layer_sizes: tuple[int, ...],
        seed: int = 0,
        alpha: float = 1.0,
    ) -> None:
        if len(layer_sizes) < 2:
            raise ValueError("need at least input and output layers")
        self.layer_sizes = tuple(int(s) for s in layer_sizes)
        self.alpha = float(alpha)
        rng = np.random.default_rng(seed)
        self.weights: list[np.ndarray] = []
        self.biases: list[np.ndarray] = []
        for nin, nout in zip(layer_sizes[:-1], layer_sizes[1:]):
            # He-style initialization, adequate for ELU
            self.weights.append(rng.normal(0.0, np.sqrt(2.0 / nin), (nin, nout)))
            self.biases.append(np.zeros(nout))

    # -- forward / backward ------------------------------------------------
    def forward(self, X: np.ndarray, cache: list | None = None) -> np.ndarray:
        """Forward pass; ``X`` is (n, n_in).  Appends (pre, post) to cache."""
        a = np.atleast_2d(X)
        if cache is not None:
            cache.append(a)
        for li, (W, b) in enumerate(zip(self.weights, self.biases)):
            z = a @ W + b
            last = li == len(self.weights) - 1
            a = z if last else elu(z, self.alpha)
            if cache is not None:
                cache.append((z, a))
        return a

    def backward(
        self, cache: list, grad_out: np.ndarray
    ) -> tuple[list[np.ndarray], list[np.ndarray], np.ndarray]:
        """Reverse pass.  Returns (dW list, db list, dX).

        ``grad_out`` is dL/d(output), shape (n, n_out).  Complex activations
        with real weights propagate holomorphically (gradients come back
        complex; the caller decides what to do with the imaginary part).
        """
        X = cache[0]
        layers = cache[1:]
        dW = [None] * len(self.weights)
        db = [None] * len(self.biases)
        delta = np.atleast_2d(grad_out)
        for li in range(len(self.weights) - 1, -1, -1):
            z, _a = layers[li]
            if li != len(self.weights) - 1:
                delta = delta * elu_prime(z, self.alpha)
            a_prev = X if li == 0 else layers[li - 1][1]
            dW[li] = a_prev.T @ delta
            db[li] = delta.sum(axis=0)
            delta = delta @ self.weights[li].T
        return dW, db, delta

    def value_and_param_grad(
        self, X: np.ndarray, grad_out: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Output and flat d(sum(grad_out * output))/d(params)."""
        cache: list = []
        out = self.forward(X, cache)
        dW, db, _ = self.backward(cache, grad_out)
        return out, self._flatten(dW, db)

    def input_jacobian(self, X: np.ndarray) -> np.ndarray:
        """d out_k / d X_j for a scalar-output network: returns (n, n_in)."""
        if self.layer_sizes[-1] != 1:
            raise ValueError("input_jacobian implemented for scalar outputs")
        cache: list = []
        self.forward(X, cache)
        _, _, dX = self.backward(cache, np.ones((np.atleast_2d(X).shape[0], 1)))
        return dX

    # -- parameter vector interface ----------------------------------------
    @property
    def n_params(self) -> int:
        return sum(w.size for w in self.weights) + sum(b.size for b in self.biases)

    def get_params(self) -> np.ndarray:
        return self._flatten(self.weights, self.biases)

    def set_params(self, theta: np.ndarray) -> None:
        theta = np.asarray(theta, dtype=float)
        if theta.size != self.n_params:
            raise ValueError("parameter vector has wrong length")
        off = 0
        for i, w in enumerate(self.weights):
            self.weights[i] = theta[off : off + w.size].reshape(w.shape)
            off += w.size
        for i, b in enumerate(self.biases):
            self.biases[i] = theta[off : off + b.size].reshape(b.shape)
            off += b.size

    def _flatten(self, Ws, bs) -> np.ndarray:
        return np.concatenate(
            [np.asarray(w).ravel() for w in Ws] + [np.asarray(b).ravel() for b in bs]
        )

    # -- persistence ---------------------------------------------------------
    #: arrays every weights archive must contain (``checksum`` is optional
    #: for archives written before it was introduced)
    WEIGHT_KEYS = ("layer_sizes", "alpha", "params")

    def save(self, path: str) -> None:
        params = self.get_params()
        digest = hashlib.sha256(params.tobytes()).digest()
        np.savez(
            path,
            layer_sizes=np.array(self.layer_sizes),
            alpha=self.alpha,
            params=params,
            checksum=np.frombuffer(digest, dtype=np.uint8),
        )

    @classmethod
    def load(cls, path: str | io.IOBase) -> "MLP":
        try:
            data = np.load(path)
        except (zipfile.BadZipFile, ValueError, OSError) as err:
            raise ValueError(
                f"invalid MLP weights file {path!r}: not a readable .npz "
                f"archive ({err}); regenerate it with "
                "`python examples/mlxc_training.py --save`"
            ) from err
        missing = [k for k in cls.WEIGHT_KEYS if k not in data.files]
        if missing:
            raise ValueError(
                f"invalid MLP weights file {path!r}: missing array(s) {missing}"
            )
        params = np.asarray(data["params"], dtype=float)
        if "checksum" in data.files:
            digest = hashlib.sha256(params.tobytes()).digest()
            stored = bytes(np.asarray(data["checksum"], dtype=np.uint8))
            if stored != digest:
                raise ValueError(
                    f"corrupt MLP weights file {path!r}: SHA-256 checksum "
                    "mismatch (file was truncated or re-encoded)"
                )
        net = cls(tuple(int(s) for s in data["layer_sizes"]), alpha=float(data["alpha"]))
        net.set_params(params)
        return net


@dataclass
class Adam:
    """Standard Adam optimizer over a flat parameter vector."""

    lr: float = 1e-3
    beta1: float = 0.9
    beta2: float = 0.999
    eps: float = 1e-8

    def __post_init__(self) -> None:
        self._m: np.ndarray | None = None
        self._v: np.ndarray | None = None
        self._t = 0

    def step(self, theta: np.ndarray, grad: np.ndarray) -> np.ndarray:
        if self._m is None:
            self._m = np.zeros_like(theta)
            self._v = np.zeros_like(theta)
        self._t += 1
        self._m = self.beta1 * self._m + (1 - self.beta1) * grad
        self._v = self.beta2 * self._v + (1 - self.beta2) * grad**2
        mhat = self._m / (1 - self.beta1**self._t)
        vhat = self._v / (1 - self.beta2**self._t)
        return theta - self.lr * mhat / (np.sqrt(vhat) + self.eps)

    def state_dict(self) -> dict:
        """Checkpointable optimizer state (moments + step count).

        The moments bias every future update, so a bit-for-bit training
        resume must restore them along with the parameters.
        """
        return {
            "m": None if self._m is None else self._m.copy(),
            "v": None if self._v is None else self._v.copy(),
            "t": self._t,
        }

    def load_state_dict(self, state: dict) -> None:
        self._m = None if state["m"] is None else np.asarray(state["m"]).copy()
        self._v = None if state["v"] is None else np.asarray(state["v"]).copy()
        self._t = int(state["t"])
