"""Machine-learning substrate: NumPy MLP, descriptors, MLXC training."""

from .descriptors import (
    descriptors_from_spin_density,
    feature_map,
    phi_spin_factor,
    reduced_gradient,
)
from .nn import MLP, Adam, elu, elu_prime
from .training import MLXCLaplacianTrainer, MLXCTrainer, TrainingSample, assemble_sample

__all__ = [
    "MLP",
    "MLXCLaplacianTrainer",
    "MLXCTrainer",
    "TrainingSample",
    "Adam",
    "descriptors_from_spin_density",
    "elu",
    "elu_prime",
    "feature_map",
    "assemble_sample",
    "phi_spin_factor",
    "reduced_gradient",
]
