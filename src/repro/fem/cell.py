"""Reference hexahedral spectral element of degree ``p``.

A cell carries ``(p+1)^3`` Gauss-Lobatto-Legendre (GLL) nodes.  Under GLL
quadrature at the nodes:

* the cell *mass* matrix is diagonal (tensor product of the 1D weights),
* the cell *stiffness* matrix is dense, built from the 1D differentiation
  matrix: ``khat = D^T diag(w) D``.

The dense ``(p+1)^3 x (p+1)^3`` stiffness (plus a diagonal potential) is
exactly the per-cell Hamiltonian ``H_c`` that the paper multiplies against
wavefunction blocks with ``xGEMMStridedBatched``; here the same batched
product is expressed with NumPy ``matmul`` over a ``(ncells, nodes, B)``
tensor (see :mod:`repro.fem.assembly`).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from .basis1d import derivative_matrix
from .quadrature import gauss_lobatto_legendre

__all__ = ["ReferenceCell", "reference_cell"]


@dataclass(frozen=True)
class ReferenceCell:
    """Tensor-product GLL element data on [-1, 1]^3 for degree ``p``."""

    p: int
    nodes1d: np.ndarray  #: (p+1,) GLL nodes
    weights1d: np.ndarray  #: (p+1,) GLL weights
    deriv1d: np.ndarray  #: (p+1, p+1) differentiation matrix D[q, j]
    stiff1d: np.ndarray  #: (p+1, p+1) reference 1D stiffness D^T W D
    mass1d: np.ndarray  #: (p+1,) diagonal 1D mass (== weights)

    @property
    def n1d(self) -> int:
        return self.p + 1

    @property
    def nodes_per_cell(self) -> int:
        return self.n1d**3

    def local_coords(self) -> np.ndarray:
        """Reference coordinates of the cell nodes, shape (npc, 3).

        Local node ordering is C-order over (i, j, k) -> (x, y, z), i.e. the
        z index varies fastest: ``local = (i * n1d + j) * n1d + k``.
        """
        n = self.n1d
        xi = self.nodes1d
        grid = np.stack(np.meshgrid(xi, xi, xi, indexing="ij"), axis=-1)
        return grid.reshape(n**3, 3)

    def mass_diag(self, h: tuple[float, float, float]) -> np.ndarray:
        """Diagonal of the cell mass matrix for a box cell of size ``h``."""
        hx, hy, hz = h
        w = self.weights1d
        m = (
            (hx / 2.0) * w[:, None, None]
            * (hy / 2.0) * w[None, :, None]
            * (hz / 2.0) * w[None, None, :]
        )
        return m.reshape(-1)

    def stiffness(self, h: tuple[float, float, float]) -> np.ndarray:
        """Dense cell stiffness ``K_c`` for an axis-aligned box cell.

        ``K_c[I, J] = integral grad(phi_I) . grad(phi_J)`` over the cell,
        assembled from the tensor-product structure::

            K = kx (x) my (x) mz + mx (x) ky (x) mz + mx (x) my (x) kz

        with 1D stiffness ``k = (2/h) khat`` and diagonal 1D mass
        ``m = (h/2) w``.
        """
        hx, hy, hz = h
        n = self.n1d
        w = self.weights1d
        khat = self.stiff1d
        kx, ky, kz = (2.0 / hx) * khat, (2.0 / hy) * khat, (2.0 / hz) * khat
        mx, my, mz = (hx / 2.0) * w, (hy / 2.0) * w, (hz / 2.0) * w

        K = np.zeros((n, n, n, n, n, n))
        eye = np.eye(n)
        # term 1: kx_ii' * my_j d_jj' * mz_k d_kk'
        K += np.einsum("ad,b,be,c,cf->abcdef", kx, my, eye, mz, eye)
        K += np.einsum("a,ad,be,c,cf->abcdef", mx, eye, ky, mz, eye)
        K += np.einsum("a,ad,b,be,cf->abcdef", mx, eye, my, eye, kz)
        npc = n**3
        return K.reshape(npc, npc)

    def gradient_operators(
        self, h: tuple[float, float, float]
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Nodal gradient operators ``G_x, G_y, G_z`` (npc x npc each).

        ``(G_a u)_I`` is the ``a``-derivative of the interpolant at node I.
        Used for GGA/MLXC density gradients and weak divergences.
        """
        n = self.n1d
        D = self.deriv1d
        eye = np.eye(n)
        hx, hy, hz = h

        def _embed(axis_mat: np.ndarray, axis: int) -> np.ndarray:
            ops = [eye, eye, eye]
            ops[axis] = axis_mat
            out = np.einsum("ad,be,cf->abcdef", ops[0], ops[1], ops[2])
            return out.reshape(n**3, n**3)

        return (
            _embed((2.0 / hx) * D, 0),
            _embed((2.0 / hy) * D, 1),
            _embed((2.0 / hz) * D, 2),
        )


@lru_cache(maxsize=16)
def reference_cell(p: int) -> ReferenceCell:
    """Build (and cache) the reference element of polynomial degree ``p``."""
    if p < 1:
        raise ValueError("polynomial degree must be >= 1")
    x, w = gauss_lobatto_legendre(p + 1)
    D = derivative_matrix(x)
    khat = D.T @ np.diag(w) @ D
    return ReferenceCell(
        p=p, nodes1d=x, weights1d=w, deriv1d=D, stiff1d=khat, mass1d=w.copy()
    )
