"""Cell-level batched operator application (the paper's ``Assembly_FE``).

The central HPC kernel of the paper recasts the sparse-matrix product
``Y = H X`` (H: FE-discretized Hamiltonian, X: block of wavefunctions) as

.. math::

    Y = \\mathrm{Assembly}_{FE}\\{H_{c} X_{c}\\},

i.e. gather each wavefunction block onto cell-local nodes, multiply by the
dense ``(p+1)^3 x (p+1)^3`` cell matrix with a *batched* GEMM, and
scatter-add back.  Here the batched GEMM is a broadcasted ``numpy.matmul``
over a ``(ncells, nodes_per_cell, block)`` tensor — same data layout and FLOP
structure as ``xGEMMStridedBatched`` on the GPU.

Under the diagonal-mass (Löwdin) transformation the Kohn-Sham operator is

.. math::

    \\tilde{H} = D^{-1/2}\\,(K/2)\\,D^{-1/2} + \\mathrm{diag}(v),

with ``K`` the assembled stiffness and ``v`` the total effective potential at
the nodes, so only the kinetic part needs cell-level GEMMs.

Fast apply path (see DESIGN.md): the scatter-add runs through a precomputed
:class:`~repro.fem.scatter.ScatterMap` (bit-for-bit identical to the
``np.add.at`` reference, which stays reachable via ``REPRO_SLOW_SCATTER=1``),
and all intermediates — the free→full expansion, the gathered/GEMM'd cell
tensors, the free-DoF output — live in a reusable
:class:`~repro.fem.workspace.Workspace` so a steady-state ``KSOperator.apply``
performs no large allocations.
"""

from __future__ import annotations

import numpy as np

from repro.resilience import faults as _faults
from repro.tools.contracts import shape_contract

from .mesh import Mesh3D
from .scatter import ScatterMap
from .workspace import Workspace

__all__ = ["CellStiffness", "KSOperator"]


class CellStiffness:
    """Matrix-free assembled stiffness ``K`` applied via batched cell GEMMs.

    For an axis-aligned cell of size ``(hx, hy, hz)`` the cell stiffness
    decomposes into three *shared* reference matrices with per-cell scalar
    coefficients::

        K_c = (hy*hz)/(2*hx) * A1 + (hx*hz)/(2*hy) * A2 + (hx*hy)/(2*hz) * A3

    On a uniform mesh the three terms are pre-summed into a single cell
    matrix and applied with one batched GEMM per block (the paper's fused
    kernel); on graded meshes three batched GEMMs with shared operands are
    used.

    All state built here (reference matrices, coefficients, scatter maps)
    is immutable after construction, so one instance may be shared across
    the parallel (k, spin) channel threads.
    """

    def __init__(
        self,
        mesh: Mesh3D,
        kfrac: tuple[float, float, float] | None = None,
        ledger=None,
    ) -> None:
        self.mesh = mesh
        self.ledger = ledger
        ref = mesh.ref
        w = ref.weights1d
        khat = ref.stiff1d
        dw = np.diag(w)

        def _kron3(a: np.ndarray, b: np.ndarray, c: np.ndarray) -> np.ndarray:
            return np.kron(np.kron(a, b), c)

        self._A = (
            _kron3(khat, dw, dw),
            _kron3(dw, khat, dw),
            _kron3(dw, dw, khat),
        )
        h = mesh.cell_sizes
        self._coef = np.stack(
            [
                h[:, 1] * h[:, 2] / (2.0 * h[:, 0]),
                h[:, 0] * h[:, 2] / (2.0 * h[:, 1]),
                h[:, 0] * h[:, 1] / (2.0 * h[:, 2]),
            ],
            axis=1,
        )  # (ncells, 3)
        self._uniform = bool(
            np.allclose(self._coef, self._coef[0], rtol=1e-13, atol=0.0)
        )
        if self._uniform:
            self._Kc = sum(c * A for c, A in zip(self._coef[0], self._A))
        else:
            self._Kc = None
        self.phases = mesh.bloch_phases(kfrac) if kfrac is not None else None
        self.dtype = np.complex128 if self.phases is not None else np.float64
        # Precompiled scatter: unit weights share the mesh-wide map; Bloch
        # paths fold the conjugated gather phases into the map's weights.
        if self.phases is None:
            self._smap = mesh.scatter_map
        else:
            self._smap = ScatterMap(
                mesh.conn, mesh.nnodes, weights=np.conj(self.phases).ravel(),
                force_engine=mesh.scatter_engine,
            )

    @property
    def is_uniform(self) -> bool:
        return self._uniform

    def cell_matrix(self, c: int) -> np.ndarray:
        """Dense stiffness matrix of cell ``c`` (tests / inspection)."""
        if self._Kc is not None:
            return self._Kc
        return sum(co * A for co, A in zip(self._coef[c], self._A))

    def gather(
        self, x_full: np.ndarray, workspace: Workspace | None = None
    ) -> np.ndarray:
        """Gather full-node field(s) to (ncells, npc, B) with Bloch phases.

        With a workspace the returned array is a pooled buffer owned by
        the workspace — valid until the next ``gather`` on this thread.
        """
        squeeze = x_full.ndim == 1
        X = x_full[:, None] if squeeze else x_full
        conn = self.mesh.conn
        if workspace is None:
            Xc = X[conn]  # (ncells, npc, B)
            if self.phases is not None:
                Xc = Xc * self.phases[:, :, None]
            return Xc
        dt = np.result_type(self.dtype, X.dtype)
        Xc = workspace.get("stiff_Xc", (*conn.shape, X.shape[1]), dt)
        if X.dtype == dt:
            np.take(X, conn, axis=0, out=Xc)
        else:
            Xc[...] = X[conn]
        if self.phases is not None:
            Xc *= self.phases[:, :, None]
        return Xc

    def scatter_add(self, Yc: np.ndarray, out: np.ndarray) -> np.ndarray:
        """Scatter-add cell contributions into full-node array ``out``.

        For the Bloch path the conjugated phases are part of the scatter
        map's weights.  Bit-for-bit identical to the reference
        ``np.add.at`` loop when ``out`` is zero-initialized (it is, in
        every caller); ``REPRO_SLOW_SCATTER=1`` forces the reference loop.
        """
        B = Yc.shape[-1]
        self._smap.add_to(Yc.reshape(-1, B), out)
        return out

    @shape_contract(Xc=("ncells", "npc", "b"), returns=("ncells", "npc", "b"))
    def apply_cells(
        self, Xc: np.ndarray, workspace: Workspace | None = None
    ) -> np.ndarray:
        """Batched cell GEMM: ``Y_c = K_c X_c`` over all cells at once.

        With a workspace the returned array is a pooled buffer owned by
        the workspace — valid until the next ``apply_cells`` on this
        thread.
        """
        ncells, npc, B = Xc.shape
        if self._Kc is not None:
            if workspace is None:
                Yc = np.matmul(self._Kc, Xc)
            else:
                Yc = workspace.get("stiff_Yc", Xc.shape, Xc.dtype)
                np.matmul(self._Kc, Xc, out=Yc)
            self._count(2 * npc * npc * B * ncells, Xc.dtype)
        else:
            if workspace is None:
                Yc = self._coef[:, 0, None, None] * np.matmul(self._A[0], Xc)
                Yc += self._coef[:, 1, None, None] * np.matmul(self._A[1], Xc)
                Yc += self._coef[:, 2, None, None] * np.matmul(self._A[2], Xc)
            else:
                Yc = workspace.get("stiff_Yc", Xc.shape, Xc.dtype)
                T = workspace.get("stiff_Tc", Xc.shape, Xc.dtype)
                np.matmul(self._A[0], Xc, out=T)
                np.multiply(self._coef[:, 0, None, None], T, out=Yc)
                np.matmul(self._A[1], Xc, out=T)
                T *= self._coef[:, 1, None, None]
                Yc += T
                np.matmul(self._A[2], Xc, out=T)
                T *= self._coef[:, 2, None, None]
                Yc += T
            # three GEMMs plus the per-cell coefficient scale (3 multiplies)
            # and accumulate (2 adds) per cell-local value
            self._count(ncells * npc * B * (6 * npc + 5), Xc.dtype)
        return Yc

    def apply_full(
        self, x_full: np.ndarray, workspace: Workspace | None = None
    ) -> np.ndarray:
        """``K @ x`` on the full node set (no boundary conditions).

        With a workspace the returned array is a pooled buffer owned by the
        workspace — valid until the next ``apply_full`` on the same thread;
        copy it (or pass ``workspace=None``) if it must persist.
        """
        squeeze = x_full.ndim == 1
        Xc = self.gather(x_full, workspace)
        Yc = self.apply_cells(Xc, workspace=workspace)
        dt = np.result_type(self.dtype, x_full.dtype)
        shape = (self.mesh.nnodes, Xc.shape[-1])
        if workspace is None:
            out = np.zeros(shape, dtype=dt)
        else:
            out = workspace.zeros("stiff_out", shape, dt)
        self.scatter_add(Yc, out)
        return out[:, 0] if squeeze else out

    def diagonal_full(self) -> np.ndarray:
        """Assembled diagonal of ``K`` over all nodes."""
        diag_cell = sum(
            self._coef[:, a, None] * np.diag(self._A[a])[None, :]
            for a in range(3)
        )  # (ncells, npc)
        out = np.zeros(self.mesh.nnodes, dtype=float)
        self.mesh.scatter_map.add_to(diag_cell.ravel(), out)
        return out

    def _count(self, flops: int, dtype) -> None:
        if self.ledger is not None:
            factor = 4 if np.issubdtype(dtype, np.complexfloating) else 1
            self.ledger.add("cell_gemm", factor * flops)


class KSOperator:
    """Matrix-free Löwdin-orthonormalized Kohn-Sham Hamiltonian.

    Acts on *free* DoFs (Dirichlet boundary nodes eliminated):

        ``H~ x = D^{-1/2} (K/2) D^{-1/2} x + v * x``

    where ``v`` is the total effective potential sampled at the nodes (the
    GLL-diagonal mass makes the potential term exactly diagonal).

    Parameters
    ----------
    mesh:
        The spectral-element mesh.
    kfrac:
        Optional reduced Bloch vector; nonzero components switch the operator
        (and wavefunctions) to complex arithmetic.
    ledger:
        Optional FLOP ledger (``repro.hpc.flops.FlopLedger``).
    workspace:
        Buffer pool for the apply path; a private enabled pool is created
        when omitted.  Pass ``Workspace(enabled=False)`` to reproduce the
        allocate-per-call behaviour (A/B benchmarking).
    """

    def __init__(
        self,
        mesh: Mesh3D,
        kfrac: tuple[float, float, float] | None = None,
        ledger=None,
        nonlocal_projectors=None,
        workspace: Workspace | None = None,
    ) -> None:
        self.mesh = mesh
        self.stiff = CellStiffness(mesh, kfrac=kfrac, ledger=ledger)
        self.dtype = self.stiff.dtype
        self.workspace = workspace if workspace is not None else Workspace()
        self._dinvsqrt = 1.0 / np.sqrt(mesh.mass_diag)
        # free-index gathers cached once: the apply path never re-slices
        self._dsf = np.ascontiguousarray(self._dinvsqrt[mesh.free])
        self._half_dsf = 0.5 * self._dsf
        self._v_free = np.zeros(mesh.ndof, dtype=float)
        self.ledger = ledger
        self._nl_B = None
        self._nl_D = None
        if nonlocal_projectors:
            from repro.atoms.nonlocal_psp import projector_matrix

            self._nl_B, self._nl_D = projector_matrix(mesh, nonlocal_projectors)

    @property
    def n(self) -> int:
        """Dimension of the operator (number of free DoFs)."""
        return self.mesh.ndof

    def set_potential(self, v_full: np.ndarray) -> None:
        """Set the effective potential from its full-node sampling."""
        if v_full.shape != (self.mesh.nnodes,):
            raise ValueError("potential must be sampled at all mesh nodes")
        self._v_free = np.ascontiguousarray(v_full[self.mesh.free])

    @property
    def potential_free(self) -> np.ndarray:
        return self._v_free

    def clone(self) -> "KSOperator":
        """Operator sharing all immutable state but owning its potential.

        The parallel multi-channel ChFES gives each (k, spin) channel its
        own clone so concurrent ``set_potential`` calls cannot race; the
        heavy pieces (cell matrices, scatter maps, nonlocal projectors, the
        thread-local workspace) are shared.
        """
        new = KSOperator.__new__(KSOperator)
        new.mesh = self.mesh
        new.stiff = self.stiff
        new.dtype = self.dtype
        new.workspace = self.workspace
        new._dinvsqrt = self._dinvsqrt
        new._dsf = self._dsf
        new._half_dsf = self._half_dsf
        new._v_free = self._v_free.copy()
        new.ledger = self.ledger
        new._nl_B = self._nl_B
        new._nl_D = self._nl_D
        return new

    def apply(self, X: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """Apply ``H~`` to a block ``X`` of shape (ndof,) or (ndof, B).

        ``out``, when given, receives the result (same shape as ``X``; must
        not alias ``X``) — the Chebyshev recurrence uses this to ping-pong
        between preallocated blocks.  All arithmetic is performed in the
        same operation order as the reference implementation, so results
        are bit-for-bit independent of workspace/out usage.
        """
        if out is X and X is not None:
            raise ValueError("out must not alias X")
        squeeze = X.ndim == 1
        Xb = X[:, None] if squeeze else X
        ws = self.workspace
        free = self.mesh.free
        ndof, B = Xb.shape
        rdt = np.result_type(self.dtype, Xb.dtype)
        # free -> full expansion: boundary rows stay zero by invariant
        full = ws.get(
            "ks_full", (self.mesh.nnodes, B), rdt, zero_on_create=True
        )
        t = ws.get("ks_t", (ndof, B), rdt)
        np.multiply(self._dsf[:, None], Xb, out=t)
        full[free] = t
        kx = self.stiff.apply_full(full, workspace=ws)
        yg = ws.get("ks_gather", (ndof, B), rdt)
        np.take(kx, free, axis=0, out=yg)
        if out is None:
            y = np.empty((ndof, B), dtype=rdt)
        else:
            y = out[:, None] if out.ndim == 1 else out
        np.multiply(self._half_dsf[:, None], yg, out=y)
        np.multiply(self._v_free[:, None], Xb, out=t)
        y += t
        if self._nl_B is not None and self._nl_B.shape[1]:
            # separable nonlocal term: two skinny GEMMs (rank-k update)
            proj = self._nl_B.conj().T @ Xb
            y += self._nl_B @ (self._nl_D[:, None] * proj)
        if _faults._PLAN is not None:  # reprochaos site (no-op unarmed)
            _faults.fault_point("ks_apply", y)
        if out is not None:
            return out
        return y[:, 0] if squeeze else y

    def diagonal(self) -> np.ndarray:
        """Diagonal of ``H~`` (incl. the separable nonlocal contribution)."""
        kd = self.stiff.diagonal_full()
        d = 0.5 * kd * self._dinvsqrt**2
        out = d[self.mesh.free] + self._v_free
        if self._nl_B is not None and self._nl_B.shape[1]:
            out = out + np.einsum("ip,p,ip->i", self._nl_B, self._nl_D, self._nl_B)
        return out

    def kinetic_diagonal(self) -> np.ndarray:
        """Diagonal of the Löwdin kinetic operator (MINRES preconditioner)."""
        kd = self.stiff.diagonal_full()
        return 0.5 * (kd * self._dinvsqrt**2)[self.mesh.free]

    def matrix(self) -> np.ndarray:
        """Dense matrix of ``H~`` — tests and small systems only."""
        n = self.n
        if n > 20000:
            raise MemoryError("dense KS matrix requested for a large mesh")
        eye = np.eye(n, dtype=self.dtype)
        return self.apply(eye)
