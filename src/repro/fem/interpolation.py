"""Field evaluation at arbitrary points (post-processing substrate).

Spectral-element fields live as nodal values; analysis tasks (line cuts of
v_xc, density along a bond, charge-density isosurfaces) need values at
arbitrary coordinates.  ``FieldInterpolator`` locates the containing cell of
each query point (structured bisection per axis, so lookup is O(log ncells))
and evaluates the degree-p tensor-product Lagrange interpolant — exact for
any field in the FE space, spectrally accurate for smooth functions.
"""

from __future__ import annotations

import numpy as np

from .basis1d import lagrange_eval
from .mesh import Mesh3D

__all__ = ["FieldInterpolator"]


class FieldInterpolator:
    """Evaluate full-node fields of a mesh at arbitrary interior points."""

    def __init__(self, mesh: Mesh3D) -> None:
        self.mesh = mesh
        self._edges = mesh.edges

    def _locate(self, points: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Cell index and reference coordinates of each point."""
        pts = np.atleast_2d(np.asarray(points, dtype=float))
        if np.any(pts < -1e-9) or np.any(pts > self.mesh.lengths[None, :] + 1e-9):
            raise ValueError("points must lie inside the mesh domain")
        cell_axis = []
        ref = np.empty_like(pts)
        for a in range(3):
            e = self._edges[a]
            idx = np.clip(np.searchsorted(e, pts[:, a], side="right") - 1, 0,
                          e.size - 2)
            lo, hi = e[idx], e[idx + 1]
            ref[:, a] = 2.0 * (pts[:, a] - lo) / (hi - lo) - 1.0
            cell_axis.append(idx)
        ncx, ncy, ncz = self.mesh.ncells_axis
        cells = (cell_axis[0] * ncy + cell_axis[1]) * ncz + cell_axis[2]
        return cells, np.clip(ref, -1.0, 1.0)

    def __call__(self, field: np.ndarray, points: np.ndarray) -> np.ndarray:
        """Interpolate ``field`` (nnodes,) or (nnodes, m) at ``points``."""
        field = np.asarray(field)
        if field.shape[0] != self.mesh.nnodes:
            raise ValueError("field must be defined on all mesh nodes")
        pts = np.atleast_2d(np.asarray(points, dtype=float))
        cells, ref = self._locate(pts)
        nodes1d = self.mesh.ref.nodes1d
        n1 = nodes1d.size
        Lx = lagrange_eval(nodes1d, ref[:, 0])  # (npts, n1)
        Ly = lagrange_eval(nodes1d, ref[:, 1])
        Lz = lagrange_eval(nodes1d, ref[:, 2])
        # tensor-product weights per point, local ordering (i*n1 + j)*n1 + k
        w = (
            Lx[:, :, None, None] * Ly[:, None, :, None] * Lz[:, None, None, :]
        ).reshape(pts.shape[0], n1**3)
        conn = self.mesh.conn[cells]  # (npts, npc)
        vals = field[conn]  # (npts, npc[, m])
        if vals.ndim == 3:
            return np.einsum("pc,pcm->pm", w, vals)
        return np.einsum("pc,pc->p", w, vals)
