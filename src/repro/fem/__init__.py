"""Spectral finite-element substrate (meshes, assembly, Poisson)."""

from .assembly import CellStiffness, KSOperator
from .cell import ReferenceCell, reference_cell
from .interpolation import FieldInterpolator
from .mesh import Mesh3D, graded_edges, uniform_mesh
from .partition import Partition, process_grid
from .poisson import PoissonSolver, multipole_boundary_values
from .quadrature import gauss_legendre, gauss_lobatto_legendre
from .scatter import ScatterMap, slow_scatter_enabled
from .workspace import Workspace

__all__ = [
    "CellStiffness",
    "FieldInterpolator",
    "KSOperator",
    "Mesh3D",
    "Partition",
    "PoissonSolver",
    "ReferenceCell",
    "ScatterMap",
    "Workspace",
    "slow_scatter_enabled",
    "gauss_legendre",
    "gauss_lobatto_legendre",
    "graded_edges",
    "multipole_boundary_values",
    "process_grid",
    "reference_cell",
    "uniform_mesh",
]
