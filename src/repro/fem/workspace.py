"""Reusable buffer pools for the matrix-free hot path.

``KSOperator.apply`` and the Chebyshev recurrence around it are called
thousands of times per SCF with identical array shapes; allocating fresh
``(nnodes, B)`` / ``(ndof, B)`` temporaries on every call makes the Python
allocator (and the kernel's page-faulting) a measurable fraction of the
apply time.  A :class:`Workspace` hands out *named* buffers keyed by
``(tag, shape, dtype)`` so each call site gets the same memory back on the
next call.

Rules of use (also documented in DESIGN.md):

* A buffer named ``tag`` is exclusively owned by its call site between
  ``get`` and the end of the enclosing operation — two live buffers must
  use two tags.
* Pools are **thread-local**: the same :class:`Workspace` object can be
  shared across the parallel (k, spin) channels; each thread sees its own
  buffers.
* ``Workspace(enabled=False)`` degrades every ``get`` to a fresh
  allocation — the A/B switch used by ``benchmarks/bench_apply.py``.
"""

from __future__ import annotations

import threading

import numpy as np

from repro.tools import sanitize as _sanitize

__all__ = ["Workspace"]


class Workspace:
    """Thread-local pool of reusable ndarray buffers.

    Buffers are keyed by ``(tag, shape, dtype)``; a shape or dtype change
    under the same tag simply allocates a new buffer for the new key (the
    old one stays pooled for when the old shape returns — e.g. the ragged
    final block of a Chebyshev block sweep).
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = bool(enabled)
        self._local = threading.local()

    def _pool(self) -> dict:
        pool = getattr(self._local, "pool", None)
        if pool is None:
            pool = {}
            self._local.pool = pool
        return pool

    def get(
        self,
        tag: str,
        shape: tuple[int, ...],
        dtype: np.dtype | type = np.float64,
        zero: bool = False,
        zero_on_create: bool = False,
    ) -> np.ndarray:
        """Return a buffer of ``shape``/``dtype`` for ``tag``.

        Contents are arbitrary unless ``zero=True`` (memset every call) or
        ``zero_on_create=True`` (memset only when the buffer is freshly
        allocated — for buffers whose users maintain a "rows I don't touch
        stay zero" invariant, e.g. the free→full DoF expansion).  With the
        workspace disabled this is just ``np.empty`` / ``np.zeros``.
        """
        dt = np.dtype(dtype)
        if not self.enabled:
            return (
                np.zeros(shape, dtype=dt)
                if (zero or zero_on_create)
                else np.empty(shape, dtype=dt)
            )
        key = (tag, tuple(shape), dt)
        pool = self._pool()
        buf = pool.get(key)
        if buf is None:
            buf = np.empty(shape, dtype=dt)
            if zero_on_create:
                buf.fill(0)
            pool[key] = buf
        if zero:
            buf.fill(0)
        san = _sanitize._STATE
        if san is not None:
            san.claim(buf, tag)
        return buf

    def zeros(
        self,
        tag: str,
        shape: tuple[int, ...],
        dtype: np.dtype | type = np.float64,
    ) -> np.ndarray:
        """``get`` with guaranteed-zero contents."""
        return self.get(tag, shape, dtype, zero=True)

    def nbytes(self) -> int:
        """Total bytes held by this thread's pool (introspection/tests)."""
        return sum(b.nbytes for b in self._pool().values())

    def clear(self) -> None:
        """Drop this thread's pooled buffers."""
        self._pool().clear()
