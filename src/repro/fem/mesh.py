"""Structured 3D spectral-element mesh with adaptive grading and Bloch phases.

The mesh is a tensor product of three 1D cell subdivisions (which may be
*nonuniform* — geometric grading toward atoms provides the paper's "spatially
adaptive" resolution while keeping the tensor structure that enables the
cell-level batched linear algebra).  Each hexahedral cell carries a degree-p
GLL nodal basis (:mod:`repro.fem.cell`); nodes on shared faces are common to
the adjacent cells (C^0 continuity, which the paper highlights as essential
for cusp handling in inverse DFT).

Periodic axes wrap the connectivity; nonzero Bloch vectors attach complex
phase factors ``exp(2*pi*i*k)`` to wrapped entries, giving the k-point
sampled complex path whose factor-4 FLOP cost the paper accounts for.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property

import numpy as np

from .cell import ReferenceCell, reference_cell
from .scatter import ScatterMap

__all__ = ["Mesh3D", "uniform_mesh", "graded_edges"]


def graded_edges(
    length: float, ncells: int, center: float | None = None, ratio: float = 1.0
) -> np.ndarray:
    """1D cell edges on [0, length], geometrically graded toward ``center``.

    ``ratio`` is the size ratio between the largest (outer) and smallest
    (inner) cell; ``ratio == 1`` gives a uniform subdivision.  Used to mimic
    the paper's adaptive refinement around nuclei.
    """
    if ncells < 1:
        raise ValueError("need at least one cell")
    if ratio < 1.0:
        raise ValueError("ratio must be >= 1")
    if center is None or ratio == 1.0:
        return np.linspace(0.0, length, ncells + 1)
    # Build relative cell widths: smallest near `center`, growing outward.
    mids = (np.arange(ncells) + 0.5) / ncells * length
    dist = np.abs(mids - center)
    dist = dist / max(dist.max(), 1e-300)
    widths = 1.0 + (ratio - 1.0) * dist
    widths *= length / widths.sum()
    edges = np.concatenate(([0.0], np.cumsum(widths)))
    edges[-1] = length
    return edges


@dataclass
class Mesh3D:
    """Tensor-product hexahedral spectral-element mesh.

    Parameters
    ----------
    edges:
        Three 1D arrays of cell edges (each of length ``ncells_axis + 1``)
        defining the subdivision per axis; ``edges[a][0] == 0``.
    degree:
        Polynomial degree ``p`` of the GLL nodal basis.
    pbc:
        Per-axis periodicity flags.  Nonperiodic axes impose homogeneous (or
        lifted) Dirichlet conditions at the outer boundary.
    """

    edges: tuple[np.ndarray, np.ndarray, np.ndarray]
    degree: int
    pbc: tuple[bool, bool, bool] = (False, False, False)
    #: force the ScatterMap engine for every assembly map built on this
    #: mesh ("csr"/"slices"); None = automatic.  The engines are
    #: bit-for-bit identical, so this is a pure schedule choice — it is
    #: how a tuned profile's ``scatter_engine`` reaches the fem layer.
    scatter_engine: str | None = None
    ref: ReferenceCell = field(init=False)

    def __post_init__(self) -> None:
        self.edges = tuple(np.asarray(e, dtype=float) for e in self.edges)
        for e in self.edges:
            if e.ndim != 1 or e.size < 2 or np.any(np.diff(e) <= 0):
                raise ValueError("each edges array must be increasing, size >= 2")
            if abs(e[0]) > 1e-12:
                raise ValueError("edges must start at 0")
        self.ref = reference_cell(self.degree)

    # ----- basic sizes -------------------------------------------------
    @property
    def lengths(self) -> np.ndarray:
        return np.array([e[-1] for e in self.edges])

    @property
    def ncells_axis(self) -> tuple[int, int, int]:
        return tuple(e.size - 1 for e in self.edges)

    @property
    def ncells(self) -> int:
        nx, ny, nz = self.ncells_axis
        return nx * ny * nz

    @property
    def nodes_per_cell(self) -> int:
        return self.ref.nodes_per_cell

    @cached_property
    def nnodes_axis(self) -> tuple[int, int, int]:
        p = self.degree
        return tuple(
            (e.size - 1) * p + (0 if per else 1)
            for e, per in zip(self.edges, self.pbc)
        )

    @property
    def nnodes(self) -> int:
        nx, ny, nz = self.nnodes_axis
        return nx * ny * nz

    # ----- axis-level node data ----------------------------------------
    @cached_property
    def _axis_nodes(self) -> list[np.ndarray]:
        """Physical node coordinates along each axis."""
        out = []
        xi = self.ref.nodes1d  # on [-1, 1]
        p = self.degree
        for a, (e, per) in enumerate(zip(self.edges, self.pbc)):
            nc = e.size - 1
            n = self.nnodes_axis[a]
            coords = np.empty(n)
            for c in range(nc):
                lo, hi = e[c], e[c + 1]
                mapped = lo + (xi + 1.0) * 0.5 * (hi - lo)
                start = c * p
                count = p if (per and c == nc - 1) else p + 1
                coords[start : start + count] = mapped[:count]
            out.append(coords)
        return out

    @cached_property
    def _axis_conn(self) -> list[np.ndarray]:
        """Per-axis connectivity: (ncells_a, p+1) global axis-node indices."""
        out = []
        p = self.degree
        for a, (e, per) in enumerate(zip(self.edges, self.pbc)):
            nc = e.size - 1
            n = self.nnodes_axis[a]
            idx = np.arange(nc)[:, None] * p + np.arange(p + 1)[None, :]
            if per:
                idx = idx % n
            out.append(idx)
        return out

    @cached_property
    def _axis_wrap(self) -> list[np.ndarray]:
        """Boolean per-axis flags marking connectivity entries that wrapped."""
        out = []
        p = self.degree
        for a, (e, per) in enumerate(zip(self.edges, self.pbc)):
            nc = e.size - 1
            n = self.nnodes_axis[a]
            raw = np.arange(nc)[:, None] * p + np.arange(p + 1)[None, :]
            out.append(raw >= n if per else np.zeros_like(raw, dtype=bool))
        return out

    # ----- global node data ---------------------------------------------
    @cached_property
    def node_coords(self) -> np.ndarray:
        """(nnodes, 3) Cartesian coordinates of the global nodes."""
        ax, ay, az = self._axis_nodes
        X, Y, Z = np.meshgrid(ax, ay, az, indexing="ij")
        return np.stack([X.ravel(), Y.ravel(), Z.ravel()], axis=1)

    @cached_property
    def conn(self) -> np.ndarray:
        """(ncells, nodes_per_cell) global node index per cell-local node."""
        cx, cy, cz = self._axis_conn
        nx, ny, nz = self.nnodes_axis
        gx = cx[:, None, None, :, None, None]
        gy = cy[None, :, None, None, :, None]
        gz = cz[None, None, :, None, None, :]
        g = (gx * ny + gy) * nz + gz
        ncx, ncy, ncz = self.ncells_axis
        n1 = self.degree + 1
        return np.ascontiguousarray(
            np.broadcast_to(g, (ncx, ncy, ncz, n1, n1, n1)).reshape(
                self.ncells, self.nodes_per_cell
            )
        )

    @cached_property
    def cell_sizes(self) -> np.ndarray:
        """(ncells, 3) physical extent of each cell."""
        hx, hy, hz = (np.diff(e) for e in self.edges)
        H = np.stack(
            np.meshgrid(hx, hy, hz, indexing="ij"), axis=-1
        ).reshape(self.ncells, 3)
        return H

    @cached_property
    def boundary_mask(self) -> np.ndarray:
        """(nnodes,) True at Dirichlet boundary nodes (nonperiodic axes)."""
        masks = []
        for a, per in enumerate(self.pbc):
            n = self.nnodes_axis[a]
            m = np.zeros(n, dtype=bool)
            if not per:
                m[0] = m[-1] = True
            masks.append(m)
        bx, by, bz = masks
        M = (
            bx[:, None, None]
            | by[None, :, None]
            | bz[None, None, :]
        )
        return M.ravel()

    @cached_property
    def free(self) -> np.ndarray:
        """Indices of non-Dirichlet (free) nodes — the solution DoFs."""
        return np.nonzero(~self.boundary_mask)[0]

    @cached_property
    def full_to_free(self) -> np.ndarray:
        """Map full node index -> free DoF index (-1 at boundary nodes)."""
        m = np.full(self.nnodes, -1, dtype=np.int64)
        m[self.free] = np.arange(self.free.size)
        return m

    @property
    def ndof(self) -> int:
        """Number of free degrees of freedom."""
        return self.free.size

    @cached_property
    def scatter_map(self) -> ScatterMap:
        """Precompiled cell→node scatter over the connectivity (unit weights).

        Built once per mesh and shared by every unweighted assembly loop
        (stiffness apply, mass assembly, gradient recovery); bit-for-bit
        identical to the ``np.add.at`` reference on zero-initialized
        outputs.
        """
        return ScatterMap(
            self.conn, self.nnodes, force_engine=self.scatter_engine
        )

    @cached_property
    def _scatter_map3(self) -> ScatterMap:
        """Scatter of three stacked per-axis contribution sets at once.

        The indices are the connectivity repeated three times, so scattering
        the concatenated (x, y, z) contributions replays the three
        sequential ``np.add.at`` calls of the reference divergence in their
        exact addition order (axis 0 entries before axis 1 before axis 2).
        """
        flat = self.conn.ravel()
        return ScatterMap(
            np.concatenate([flat, flat, flat]), self.nnodes,
            force_engine=self.scatter_engine,
        )

    @cached_property
    def mass_diag(self) -> np.ndarray:
        """Assembled (diagonal) global mass matrix over *all* nodes."""
        w3 = self.ref.mass_diag((2.0, 2.0, 2.0))  # reference weights w_i w_j w_k
        vol = np.prod(self.cell_sizes, axis=1) / 8.0
        out = np.zeros(self.nnodes)
        self.scatter_map.add_to((vol[:, None] * w3[None, :]).ravel(), out)
        return out

    def bloch_phases(self, kfrac: tuple[float, float, float]) -> np.ndarray | None:
        """(ncells, npc) complex gather phases for reduced Bloch vector.

        ``kfrac`` is in fractional reciprocal coordinates; an entry phase is
        ``exp(2*pi*i*k_a)`` wherever the connectivity wrapped around axis
        ``a``.  Returns None at the Gamma point (all phases unity).
        """
        if not any(abs(k) > 1e-14 for k in kfrac):
            return None
        wx, wy, wz = self._axis_wrap
        phases_axis = []
        for w, k, per in zip((wx, wy, wz), kfrac, self.pbc):
            if abs(k) > 1e-14 and not per:
                raise ValueError("nonzero k along a non-periodic axis")
            phases_axis.append(np.where(w, np.exp(2j * np.pi * k), 1.0 + 0j))
        px, py, pz = phases_axis
        ph = (
            px[:, None, None, :, None, None]
            * py[None, :, None, None, :, None]
            * pz[None, None, :, None, None, :]
        )
        ncx, ncy, ncz = self.ncells_axis
        n1 = self.degree + 1
        return np.ascontiguousarray(
            np.broadcast_to(ph, (ncx, ncy, ncz, n1, n1, n1)).reshape(
                self.ncells, self.nodes_per_cell
            )
        )

    # ----- integration and differential operators ------------------------
    def integrate(self, values: np.ndarray) -> float | complex | np.ndarray:
        """GLL-quadrature integral of nodal field(s) over the domain.

        ``values`` has shape (nnodes,) or (nnodes, m).
        """
        if values.shape[0] != self.nnodes:
            raise ValueError("field must be defined on all nodes")
        return np.tensordot(self.mass_diag, values, axes=(0, 0))

    @cached_property
    def _grad_matrices(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        return self.ref.gradient_operators((2.0, 2.0, 2.0))

    def gradient(self, field: np.ndarray) -> np.ndarray:
        """Mass-averaged nodal gradient of a full-node scalar field.

        Returns (nnodes, 3).  The element-wise spectral derivative is
        discontinuous across faces; contributions are mass-weighted and
        averaged at shared nodes (standard gradient recovery).
        """
        Gx, Gy, Gz = self._grad_matrices
        Xc = field[self.conn]  # (ncells, npc)
        h = self.cell_sizes
        w3 = self.ref.mass_diag((2.0, 2.0, 2.0))
        vol = np.prod(h, axis=1) / 8.0
        wcell = vol[:, None] * w3[None, :]
        out = np.zeros((self.nnodes, 3), dtype=field.dtype)
        for a, G in enumerate((Gx, Gy, Gz)):
            d = (Xc @ G.T) * (2.0 / h[:, a])[:, None]
            self.scatter_map.add_to((wcell * d).ravel(), out[:, a])
        out /= self.mass_diag[:, None]
        return out

    def divergence(self, vec: np.ndarray) -> np.ndarray:
        """Mass-averaged nodal divergence of a (nnodes, 3) vector field."""
        out = np.zeros(self.nnodes, dtype=vec.dtype)
        Gx, Gy, Gz = self._grad_matrices
        h = self.cell_sizes
        w3 = self.ref.mass_diag((2.0, 2.0, 2.0))
        vol = np.prod(h, axis=1) / 8.0
        wcell = vol[:, None] * w3[None, :]
        parts = []
        for a, G in enumerate((Gx, Gy, Gz)):
            Xc = vec[self.conn, a]
            d = (Xc @ G.T) * (2.0 / h[:, a])[:, None]
            parts.append((wcell * d).ravel())
        # one scatter over the thrice-repeated connectivity keeps the exact
        # per-node addition order of three sequential per-axis scatters
        self._scatter_map3.add_to(np.concatenate(parts), out)
        return out / self.mass_diag

    def gradient_adjoint(self, v_field: np.ndarray) -> np.ndarray:
        """Adjoint of :meth:`gradient`: (nnodes, 3) -> (nnodes,) such that
        ``sum_I v_I . grad(f)_I == sum_I adj(v)_I f_I`` for any scalar f.

        The per-axis kernel coincides with :meth:`divergence_adjoint`'s
        (both are ``E^T G_a^T W E M^{-1}``), so the adjoint Laplacian needed
        by Laplacian-level functionals composes as
        ``lap_adj = gradient_adjoint(divergence_adjoint(a))``.
        """
        out = np.zeros(self.nnodes, dtype=v_field.dtype)
        for a in range(3):
            out += self.divergence_adjoint(v_field[:, a])[:, a]
        return out

    def divergence_adjoint(self, a_field: np.ndarray) -> np.ndarray:
        """Adjoint of :meth:`divergence`: returns (nnodes, 3) such that
        ``sum_I a_I div(u)_I == sum_I adj(a)_I . u_I`` for any vector field
        ``u`` (used by the MLXC trainer to backpropagate the potential loss
        through the weak-divergence term).
        """
        Gx, Gy, Gz = self._grad_matrices
        h = self.cell_sizes
        w3 = self.ref.mass_diag((2.0, 2.0, 2.0))
        vol = np.prod(h, axis=1) / 8.0
        wcell = vol[:, None] * w3[None, :]
        t = a_field / self.mass_diag
        Tc = t[self.conn]  # gather (ncells, npc)
        out = np.zeros((self.nnodes, 3), dtype=a_field.dtype)
        for a, G in enumerate((Gx, Gy, Gz)):
            contrib = ((wcell * Tc) @ G) * (2.0 / h[:, a])[:, None]
            self.scatter_map.add_to(contrib.ravel(), out[:, a])
        return out


def uniform_mesh(
    lengths: tuple[float, float, float],
    ncells: tuple[int, int, int],
    degree: int,
    pbc: tuple[bool, bool, bool] = (False, False, False),
    scatter_engine: str | None = None,
) -> Mesh3D:
    """Convenience constructor for a uniform box mesh."""
    edges = tuple(
        np.linspace(0.0, L, n + 1) for L, n in zip(lengths, ncells)
    )
    return Mesh3D(
        edges=edges, degree=degree, pbc=pbc, scatter_engine=scatter_engine
    )
