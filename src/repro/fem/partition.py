"""Domain decomposition of the spectral-element mesh.

Cells are divided among ``nranks`` MPI-style ranks as contiguous blocks of a
3D process grid (mirroring the load-balanced FE partitioning in DFT-FE, which
the paper reports gives near-equal DoF per task).  Nodes on the faces shared
between ranks form the *halo*: the ``Assembly_FE`` scatter requires summing
contributions to these nodes across ranks — this is the point-to-point
communication the paper performs in FP32 (Sec 5.4.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np

from .mesh import Mesh3D

__all__ = ["Partition", "process_grid"]


def process_grid(nranks: int, ncells_axis: tuple[int, int, int]) -> tuple[int, int, int]:
    """Choose a 3D process grid for ``nranks`` close to the cell aspect ratio.

    Greedy factorization: repeatedly assign the largest prime factor to the
    axis with the most cells per process.
    """
    grid = [1, 1, 1]
    factors = _prime_factors(nranks)
    for f in sorted(factors, reverse=True):
        loads = [ncells_axis[a] / grid[a] for a in range(3)]
        axis = int(np.argmax(loads))
        grid[axis] *= f
    return tuple(grid)


def _prime_factors(n: int) -> list[int]:
    out = []
    d = 2
    while d * d <= n:
        while n % d == 0:
            out.append(d)
            n //= d
        d += 1
    if n > 1:
        out.append(n)
    return out


@dataclass
class Partition:
    """Assignment of mesh cells (and nodes) to ``nranks`` ranks."""

    mesh: Mesh3D
    nranks: int

    def __post_init__(self) -> None:
        if self.nranks < 1:
            raise ValueError("need at least one rank")
        ncx, ncy, ncz = self.mesh.ncells_axis
        if self.nranks > self.mesh.ncells:
            raise ValueError("more ranks than cells")
        self.grid = process_grid(self.nranks, (ncx, ncy, ncz))
        splits = [
            np.array_split(np.arange(n), g)
            for n, g in zip((ncx, ncy, ncz), self.grid)
        ]
        cells = np.arange(self.mesh.ncells).reshape(ncx, ncy, ncz)
        self.cells_of_rank: list[np.ndarray] = []
        for ix in splits[0]:
            for iy in splits[1]:
                for iz in splits[2]:
                    self.cells_of_rank.append(
                        cells[np.ix_(ix, iy, iz)].ravel().copy()
                    )
        # process_grid may produce fewer blocks than nranks never; exactly prod(grid)
        assert len(self.cells_of_rank) == int(np.prod(self.grid))

    @cached_property
    def nodes_of_rank(self) -> list[np.ndarray]:
        """Sorted unique global node indices touched by each rank's cells."""
        conn = self.mesh.conn
        return [np.unique(conn[c]) for c in self.cells_of_rank]

    @cached_property
    def touch_count(self) -> np.ndarray:
        """(nnodes,) number of ranks whose cells touch each node."""
        count = np.zeros(self.mesh.nnodes, dtype=np.int32)
        for nodes in self.nodes_of_rank:
            count[nodes] += 1
        return count

    @cached_property
    def halo_nodes(self) -> np.ndarray:
        """Global indices of nodes shared between two or more ranks."""
        return np.nonzero(self.touch_count > 1)[0]

    @cached_property
    def owner(self) -> np.ndarray:
        """(nnodes,) owning rank of each node (lowest touching rank)."""
        own = np.full(self.mesh.nnodes, -1, dtype=np.int32)
        for r in range(len(self.cells_of_rank) - 1, -1, -1):
            own[self.nodes_of_rank[r]] = r
        return own

    def halo_nodes_of_rank(self, rank: int) -> np.ndarray:
        """Halo nodes touched by ``rank`` (sent/received each scatter)."""
        nodes = self.nodes_of_rank[rank]
        return nodes[self.touch_count[nodes] > 1]

    def dof_balance(self) -> np.ndarray:
        """Owned-node counts per rank — near-equal for balanced partitions."""
        return np.bincount(self.owner, minlength=len(self.cells_of_rank))

    def halo_fraction(self) -> float:
        """Fraction of nodes that are shared (communication surface)."""
        return float(self.halo_nodes.size) / float(self.mesh.nnodes)
