"""Domain decomposition of the spectral-element mesh.

Cells are divided among ``nranks`` MPI-style ranks as contiguous blocks of a
3D process grid (mirroring the load-balanced FE partitioning in DFT-FE, which
the paper reports gives near-equal DoF per task).  Nodes on the faces shared
between ranks form the *halo*: the ``Assembly_FE`` scatter requires summing
contributions to these nodes across ranks — this is the point-to-point
communication the paper performs in FP32 (Sec 5.4.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np

from .mesh import Mesh3D

__all__ = ["Partition", "process_grid"]


def process_grid(nranks: int, ncells_axis: tuple[int, int, int]) -> tuple[int, int, int]:
    """Choose a 3D process grid for ``nranks`` close to the cell aspect ratio.

    Greedy factorization: repeatedly assign the largest prime factor to the
    axis with the most cells per process.
    """
    grid = [1, 1, 1]
    factors = _prime_factors(nranks)
    for f in sorted(factors, reverse=True):
        loads = [ncells_axis[a] / grid[a] for a in range(3)]
        axis = int(np.argmax(loads))
        grid[axis] *= f
    return tuple(grid)


def _prime_factors(n: int) -> list[int]:
    out = []
    d = 2
    while d * d <= n:
        while n % d == 0:
            out.append(d)
            n //= d
        d += 1
    if n > 1:
        out.append(n)
    return out


@dataclass
class Partition:
    """Assignment of mesh cells (and nodes) to ``nranks`` ranks."""

    mesh: Mesh3D
    nranks: int

    def __post_init__(self) -> None:
        if self.nranks < 1:
            raise ValueError("need at least one rank")
        ncx, ncy, ncz = self.mesh.ncells_axis
        if self.nranks > self.mesh.ncells:
            raise ValueError("more ranks than cells")
        self.grid = process_grid(self.nranks, (ncx, ncy, ncz))
        splits = [
            np.array_split(np.arange(n), g)
            for n, g in zip((ncx, ncy, ncz), self.grid)
        ]
        cells = np.arange(self.mesh.ncells).reshape(ncx, ncy, ncz)
        self.cells_of_rank: list[np.ndarray] = []
        for ix in splits[0]:
            for iy in splits[1]:
                for iz in splits[2]:
                    self.cells_of_rank.append(
                        cells[np.ix_(ix, iy, iz)].ravel().copy()
                    )
        # process_grid may produce fewer blocks than nranks never; exactly prod(grid)
        assert len(self.cells_of_rank) == int(np.prod(self.grid))
        # Reorder each rank's cells *boundary-first* (stable within each
        # class).  Boundary cells are the ones touching a halo node — the
        # only cells whose contributions cross rank boundaries.  Computing
        # them first lets an overlapping backend post its halo sends before
        # the interior work, and because every backend (virtual and
        # process-level) iterates the same reordered list, the per-node
        # accumulation order — hence the bitwise result — is identical
        # whether or not the interior compute is overlapped with the
        # exchange.  The halo/owner/node caches are order-insensitive
        # (np.unique), so they may be materialized before the reorder.
        is_halo = np.zeros(self.mesh.nnodes, dtype=bool)
        is_halo[self.halo_nodes] = True
        conn = self.mesh.conn
        self.n_boundary_of_rank: list[int] = []
        for r, rcells in enumerate(self.cells_of_rank):
            boundary = is_halo[conn[rcells]].any(axis=1)
            self.cells_of_rank[r] = np.concatenate(
                [rcells[boundary], rcells[~boundary]]
            )
            self.n_boundary_of_rank.append(int(np.count_nonzero(boundary)))

    @cached_property
    def nodes_of_rank(self) -> list[np.ndarray]:
        """Sorted unique global node indices touched by each rank's cells."""
        conn = self.mesh.conn
        return [np.unique(conn[c]) for c in self.cells_of_rank]

    @cached_property
    def touch_count(self) -> np.ndarray:
        """(nnodes,) number of ranks whose cells touch each node."""
        count = np.zeros(self.mesh.nnodes, dtype=np.int32)
        for nodes in self.nodes_of_rank:
            count[nodes] += 1
        return count

    @cached_property
    def halo_nodes(self) -> np.ndarray:
        """Global indices of nodes shared between two or more ranks."""
        return np.nonzero(self.touch_count > 1)[0]

    @cached_property
    def owner(self) -> np.ndarray:
        """(nnodes,) owning rank of each node (lowest touching rank)."""
        own = np.full(self.mesh.nnodes, -1, dtype=np.int32)
        for r in range(len(self.cells_of_rank) - 1, -1, -1):
            own[self.nodes_of_rank[r]] = r
        return own

    def halo_nodes_of_rank(self, rank: int) -> np.ndarray:
        """Halo nodes touched by ``rank`` (sent/received each scatter)."""
        nodes = self.nodes_of_rank[rank]
        return nodes[self.touch_count[nodes] > 1]

    @cached_property
    def neighbors_of_rank(self) -> list[np.ndarray]:
        """Ranks sharing at least one (halo) node with each rank."""
        nranks = len(self.cells_of_rank)
        touch = np.zeros((nranks, self.mesh.nnodes), dtype=bool)
        for r, nodes in enumerate(self.nodes_of_rank):
            touch[r, nodes] = True
        shared = touch[:, self.halo_nodes]
        out = []
        for r in range(nranks):
            both = shared & shared[r]
            ranks = np.nonzero(both.any(axis=1))[0]
            out.append(ranks[ranks != r].astype(np.int32))
        return out

    def send_nodes(self, src: int, dst: int) -> np.ndarray:
        """Global nodes touched by ``src`` but owned by ``dst`` (sorted).

        These are exactly the nodes whose partial sums ``src`` ships to
        ``dst`` in the owner-sum halo protocol; the receiving rank adds the
        payloads in increasing sender order, matching the virtual cluster's
        increasing-rank accumulation bit for bit.
        """
        nodes = self.nodes_of_rank[src]
        return nodes[self.owner[nodes] == dst]

    def owned_nodes(self, rank: int) -> np.ndarray:
        """Global nodes owned by ``rank`` (sorted)."""
        nodes = self.nodes_of_rank[rank]
        return nodes[self.owner[nodes] == rank]

    def dof_balance(self) -> np.ndarray:
        """Owned-node counts per rank — near-equal for balanced partitions."""
        return np.bincount(self.owner, minlength=len(self.cells_of_rank))

    def halo_fraction(self) -> float:
        """Fraction of nodes that are shared (communication surface)."""
        return float(self.halo_nodes.size) / float(self.mesh.nnodes)
