"""1D nodal Lagrange basis at arbitrary node sets (barycentric form).

These are the building blocks of the tensor-product spectral element: the
basis functions are Lagrange interpolants through the Gauss-Lobatto-Legendre
nodes; ``derivative_matrix`` gives :math:`D_{qj} = \\ell_j'(x_q)` which,
combined with the GLL weights, produces the dense reference stiffness matrix
(the per-cell GEMM workload of the paper's Assembly_FE formulation).
"""

from __future__ import annotations

import numpy as np

__all__ = ["barycentric_weights", "lagrange_eval", "derivative_matrix"]


def barycentric_weights(nodes: np.ndarray) -> np.ndarray:
    """Barycentric weights ``w_j = 1 / prod_{k != j}(x_j - x_k)``."""
    nodes = np.asarray(nodes, dtype=float)
    diff = nodes[:, None] - nodes[None, :]
    np.fill_diagonal(diff, 1.0)
    return 1.0 / np.prod(diff, axis=1)


def lagrange_eval(nodes: np.ndarray, x: np.ndarray) -> np.ndarray:
    """Evaluate all Lagrange basis polynomials at points ``x``.

    Returns an array ``L`` of shape ``(len(x), len(nodes))`` with
    ``L[q, j] = ell_j(x[q])``.  Exact (to round-off) at the nodes themselves.
    """
    nodes = np.asarray(nodes, dtype=float)
    x = np.atleast_1d(np.asarray(x, dtype=float))
    w = barycentric_weights(nodes)
    L = np.zeros((x.size, nodes.size))
    diff = x[:, None] - nodes[None, :]
    exact = np.abs(diff) < 1e-14
    on_node = exact.any(axis=1)
    # Generic barycentric formula for points away from nodes.
    with np.errstate(divide="ignore", invalid="ignore"):
        terms = w[None, :] / diff
        L[~on_node] = terms[~on_node] / terms[~on_node].sum(axis=1, keepdims=True)
    # Points coinciding with a node: Kronecker delta.
    rows, cols = np.nonzero(exact)
    L[rows] = 0.0
    L[rows, cols] = 1.0
    return L


def derivative_matrix(nodes: np.ndarray) -> np.ndarray:
    """Differentiation matrix ``D[q, j] = ell_j'(nodes[q])``.

    Uses the standard barycentric formula, with diagonal entries fixed by the
    row-sum-zero property (derivative of the constant function vanishes).
    """
    nodes = np.asarray(nodes, dtype=float)
    w = barycentric_weights(nodes)
    diff = nodes[:, None] - nodes[None, :]
    np.fill_diagonal(diff, 1.0)
    D = (w[None, :] / w[:, None]) / diff
    np.fill_diagonal(D, 0.0)
    np.fill_diagonal(D, -D.sum(axis=1))
    return D
