"""Precomputed scatter-add maps (the fast half of ``Assembly_FE``).

``np.add.at`` — the obvious way to scatter cell-local contributions back to
global nodes — is an *unbuffered* ufunc inner loop with per-element dispatch
overhead, typically 5-20x slower than the batched GEMM it follows.  Since
the connectivity of a mesh never changes, the scatter can instead be
compiled **once** into a :class:`ScatterMap` and replayed on every operator
application:

* **CSR engine** (default) — the scatter is the sparse-matrix product
  ``out += S @ V`` where ``S`` is the fixed ``(nnodes, nnz)`` 0/1 assembly
  matrix with exactly one entry per cell-local node.  ``scipy.sparse``
  executes it as a tight C loop.  Weights (e.g. conjugated Bloch phases)
  are applied to ``V`` by numpy *before* the product: baking complex
  weights into the CSR data is not bit-safe, because scipy's C++ complex
  multiply may contract to FMA and round differently from numpy's.
* **sorted-slices engine** (scipy-free fallback, selectable for tests) —
  a stable argsort of the connectivity groups the contributions of each
  node; slice ``k`` holds every node's ``k``-th contribution, so the
  scatter becomes ``max_valence`` vectorized fancy-index adds.

Both engines add each node's contributions **in the same order as the flat
connectivity**, i.e. in exactly the order ``np.add.at`` would, so for a
zero-initialized output the result is *bit-for-bit identical* to the naive
path (IEEE addition of an identical operand sequence).  The naive path is
kept behind ``REPRO_SLOW_SCATTER=1`` for A/B testing and regression hunts.
"""

from __future__ import annotations

import os

import numpy as np

try:  # scipy is an existing dependency (CholGS uses solve_triangular)
    from scipy import sparse as _sparse
except ImportError:  # pragma: no cover - exercised via force_engine tests
    _sparse = None

__all__ = ["ScatterMap", "slow_scatter_enabled"]


def slow_scatter_enabled() -> bool:
    """Whether ``REPRO_SLOW_SCATTER`` requests the reference ``np.add.at``."""
    return os.environ.get("REPRO_SLOW_SCATTER", "").strip().lower() in (
        "1", "true", "on", "yes",
    )


class _SliceEngine:
    """Stable-sorted segment sum: one vectorized add per valence level."""

    def __init__(self, flat: np.ndarray, nnodes: int) -> None:
        order = np.argsort(flat, kind="stable")
        counts = np.bincount(flat, minlength=nnodes)
        starts = np.concatenate(([0], np.cumsum(counts)[:-1]))
        self.slices: list[tuple[np.ndarray, np.ndarray]] = []
        for k in range(int(counts.max(initial=0))):
            mask = counts > k
            # slice k: the k-th contribution (in flat order) of every node
            # that has one; target node indices are unique per slice, so a
            # fancy-indexed += is safe and the per-node accumulation order
            # is exactly the flat (np.add.at) order.
            self.slices.append((np.flatnonzero(mask), order[starts[mask] + k]))

    def scatter(self, values: np.ndarray, out: np.ndarray) -> None:
        for nodes_k, rows_k in self.slices:
            out[nodes_k] += values[rows_k]


class _CsrEngine:
    """CSR assembly matrix: scatter as ``out += S @ V`` (one GEMM-like pass)."""

    def __init__(self, flat: np.ndarray, nnodes: int) -> None:
        # column j of S is the j-th flat entry: within each CSR row the
        # entries sort by column = flat position, i.e. occurrence order, so
        # the sequential per-row accumulation of csr_matvecs replays the
        # np.add.at addition sequence exactly.  The data is strictly unit
        # (1.0 * x is exact even under FMA contraction); weights are applied
        # to the values beforehand so the products round identically to the
        # reference's numpy multiply.
        self.S = _sparse.csr_matrix(
            (
                np.ones(flat.size, dtype=np.float64),
                (flat, np.arange(flat.size, dtype=np.int64)),
            ),
            shape=(nnodes, flat.size),
        )

    def scatter(self, values: np.ndarray, out: np.ndarray) -> None:
        out += self.S @ values


class ScatterMap:
    """Precomputed ``out[indices[r]] += weights[r] * values[r]`` scatter.

    Parameters
    ----------
    indices:
        Integer array (any shape) of target node indices; flattened in C
        order.  One scatter row per flattened entry.
    nnodes:
        Size of the output's leading axis.
    weights:
        Optional per-entry multipliers (e.g. conjugated Bloch phases),
        flattened alongside ``indices``.  ``None`` means unit weights.
    force_engine:
        ``"csr"`` / ``"slices"`` to pin an engine (tests); default picks
        CSR when scipy is importable, slices otherwise.

    The map is immutable after construction and safe to share across
    threads.  ``add_to`` honours ``REPRO_SLOW_SCATTER=1`` at call time,
    falling back to the reference ``np.add.at`` loop.
    """

    def __init__(
        self,
        indices: np.ndarray,
        nnodes: int,
        weights: np.ndarray | None = None,
        force_engine: str | None = None,
    ) -> None:
        flat = np.ascontiguousarray(np.asarray(indices, dtype=np.int64).ravel())
        self.indices = flat
        self.nnodes = int(nnodes)
        self.weights = (
            None if weights is None else np.ascontiguousarray(weights.ravel())
        )
        engine = force_engine or ("csr" if _sparse is not None else "slices")
        if engine == "csr":
            if _sparse is None:
                raise RuntimeError("scipy.sparse unavailable; use engine='slices'")
            self._engine: _CsrEngine | _SliceEngine = _CsrEngine(
                flat, self.nnodes
            )
        elif engine == "slices":
            self._engine = _SliceEngine(flat, self.nnodes)
        else:
            raise ValueError(f"unknown scatter engine {engine!r}")
        self.engine_name = engine

    # ------------------------------------------------------------------
    def _apply_weights(self, values: np.ndarray) -> np.ndarray:
        if self.weights is None:
            return values
        w = self.weights
        return w[:, None] * values if values.ndim == 2 else w * values

    def add_to(self, values: np.ndarray, out: np.ndarray) -> np.ndarray:
        """Scatter-add ``values`` (rows = flattened indices) into ``out``.

        ``values`` has shape ``(nnz,)`` or ``(nnz, B)`` matching ``out``'s
        ``(nnodes,)`` / ``(nnodes, B)``.  Returns ``out``.

        Bit-compatibility note: for a zero-initialized ``out`` the fast
        engines reproduce ``np.add.at`` bit-for-bit; for a nonzero ``out``
        they add each node's *total* in one operation (one rounding step
        instead of ``valence`` steps).
        """
        if slow_scatter_enabled():
            np.add.at(out, self.indices, self._apply_weights(values))
            return out
        self._engine.scatter(self._apply_weights(values), out)
        return out
