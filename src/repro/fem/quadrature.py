"""1D quadrature rules for spectral finite elements.

Provides Gauss-Legendre (GL) and Gauss-Lobatto-Legendre (GLL) nodes and
weights on the reference interval [-1, 1].  The GLL rule with ``n`` points is
exact for polynomials of degree ``2n - 3``; placing the nodal basis at GLL
points and quadrating at the same points yields a *diagonal* mass matrix,
which realizes the paper's Löwdin-orthonormalized finite-element basis.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np
from numpy.polynomial import legendre as npleg

__all__ = ["gauss_legendre", "gauss_lobatto_legendre"]


@lru_cache(maxsize=64)
def _gll_cached(n: int) -> tuple[tuple[float, ...], tuple[float, ...]]:
    if n < 2:
        raise ValueError("GLL rule needs at least 2 points")
    # Interior nodes: roots of P'_{n-1}(x).
    c = np.zeros(n)
    c[-1] = 1.0
    dP = npleg.legder(c)
    interior = npleg.legroots(dP)
    x = np.concatenate(([-1.0], np.sort(interior), [1.0]))
    # Newton polish: roots of (1-x^2) P'_{n-1}(x).
    for _ in range(3):
        d1 = npleg.legval(x[1:-1], dP)
        d2 = npleg.legval(x[1:-1], npleg.legder(dP))
        x[1:-1] -= d1 / d2
    Pn1 = npleg.legval(x, c)
    w = 2.0 / (n * (n - 1) * Pn1**2)
    return tuple(x.tolist()), tuple(w.tolist())


def gauss_lobatto_legendre(n: int) -> tuple[np.ndarray, np.ndarray]:
    """Return ``n`` GLL nodes and weights on [-1, 1].

    Exact for polynomials of degree ``2n - 3``.
    """
    x, w = _gll_cached(n)
    return np.array(x), np.array(w)


def gauss_legendre(n: int) -> tuple[np.ndarray, np.ndarray]:
    """Return ``n`` Gauss-Legendre nodes and weights on [-1, 1].

    Exact for polynomials of degree ``2n - 1``.
    """
    if n < 1:
        raise ValueError("Gauss rule needs at least 1 point")
    return npleg.leggauss(n)
