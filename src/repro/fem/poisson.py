"""Matrix-free finite-element Poisson solver (electrostatics, "EP" step).

Solves the weak-form problem ``K v = 4*pi*M*rho`` for the electrostatic
potential of a charge (number-)density ``rho`` on the spectral-element mesh,
using preconditioned conjugate gradients with a Jacobi (inverse stiffness
diagonal) preconditioner and the batched cell-level stiffness application of
:class:`repro.fem.assembly.CellStiffness`.

Boundary handling:

* isolated systems — inhomogeneous Dirichlet values from a multipole
  (monopole + dipole) expansion of the net charge, imposed by lifting;
* fully periodic systems — the constant nullspace is projected out and the
  right-hand side must integrate to (numerically) zero, i.e. the cell must be
  charge neutral (electrons + smeared cores).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.obs import add_counter, trace_region

from .assembly import CellStiffness
from .mesh import Mesh3D
from .workspace import Workspace

__all__ = ["PoissonSolver", "multipole_boundary_values"]


def multipole_boundary_values(
    mesh: Mesh3D, rho_full: np.ndarray, center: np.ndarray | None = None
) -> np.ndarray:
    """Dirichlet values of the potential of ``rho`` on the outer boundary.

    Uses the monopole + dipole far-field expansion about ``center`` (default:
    charge-weighted centroid falls back to the box center for near-neutral
    densities).  Returns a full-node array that is zero away from the
    boundary.
    """
    coords = mesh.node_coords
    if center is None:
        center = 0.5 * mesh.lengths
    center = np.asarray(center, dtype=float)
    q = float(mesh.integrate(rho_full))
    dip = mesh.integrate(rho_full[:, None] * (coords - center))
    out = np.zeros(mesh.nnodes)
    b = mesh.boundary_mask
    d = coords[b] - center
    r = np.sqrt(np.einsum("ij,ij->i", d, d))
    out[b] = q / r + (d @ dip) / r**3
    return out


@dataclass
class PoissonResult:
    """Converged potential plus solver diagnostics."""

    potential: np.ndarray  #: full-node potential values
    iterations: int
    residual: float
    converged: bool


class PoissonSolver:
    """Preconditioned-CG Poisson solver on a spectral-element mesh."""

    def __init__(
        self, mesh: Mesh3D, ledger=None, workspace: Workspace | None = None
    ) -> None:
        self.mesh = mesh
        self.stiff = CellStiffness(mesh, kfrac=None, ledger=ledger)
        self.workspace = workspace if workspace is not None else Workspace()
        self._kdiag = self.stiff.diagonal_full()
        self._fully_periodic = mesh.free.size == mesh.nnodes

    def solve(
        self,
        rho_full: np.ndarray,
        boundary_values: np.ndarray | None = None,
        tol: float = 1e-10,
        maxiter: int = 2000,
        x0: np.ndarray | None = None,
    ) -> PoissonResult:
        """Solve ``-lap v = 4*pi*rho`` for the full-node potential ``v``.

        Parameters
        ----------
        rho_full:
            Charge number-density sampled at all mesh nodes.
        boundary_values:
            Full-node array with Dirichlet values at boundary nodes (see
            :func:`multipole_boundary_values`); ignored on fully periodic
            meshes.
        x0:
            Optional initial guess (full-node array), e.g. the previous SCF
            iteration's potential.
        """
        mesh = self.mesh
        b_full = 4.0 * np.pi * mesh.mass_diag * rho_full

        if self._fully_periodic:
            return self._solve_periodic(b_full, tol, maxiter, x0)

        free = mesh.free
        lift = np.zeros(mesh.nnodes)
        if boundary_values is not None:
            lift[mesh.boundary_mask] = boundary_values[mesh.boundary_mask]
            b_full = b_full - self.stiff.apply_full(lift)
        b = b_full[free]
        diag = self._kdiag[free]

        ws = self.workspace

        def apply_K(x: np.ndarray) -> np.ndarray:
            """CG matvec into a pooled workspace buffer.

            The returned array is workspace-owned — valid until the next
            ``apply_K`` on this thread; ``_pcg`` consumes it immediately.
            """
            # pooled free->full expansion; boundary rows stay zero by invariant
            full = ws.get(
                "poisson_full", (mesh.nnodes,), np.float64, zero_on_create=True
            )
            full[free] = x
            y = self.stiff.apply_full(full, workspace=ws)
            Ap = ws.get("poisson_Ap", (free.size,), np.float64)
            np.take(y, free, out=Ap)
            return Ap

        x_start = None if x0 is None else (x0 - lift)[free]
        with trace_region("Poisson-CG", ndof=int(free.size)):
            x, it, res, ok = _pcg(apply_K, b, diag, tol, maxiter, x0=x_start)
            add_counter("iterations", it)
        v = lift.copy()
        v[free] += x
        return PoissonResult(v, it, res, ok)

    def _solve_periodic(
        self, b_full: np.ndarray, tol: float, maxiter: int, x0: np.ndarray | None
    ) -> PoissonResult:
        mesh = self.mesh
        w = mesh.mass_diag
        vol = float(np.sum(w))
        # Project the RHS onto the range of K (remove the constant component).
        b = b_full - w * (np.sum(b_full) / vol)

        def apply_K(x: np.ndarray) -> np.ndarray:
            y = self.stiff.apply_full(x, workspace=self.workspace)
            return y - w * (np.dot(w, y) / np.dot(w, w) * 0.0)  # K maps const->0

        def project(x: np.ndarray) -> np.ndarray:
            return x - np.dot(w, x) / vol

        with trace_region("Poisson-CG", ndof=int(mesh.nnodes), periodic=True):
            x, it, res, ok = _pcg(
                apply_K, b, self._kdiag, tol, maxiter, project=project, x0=x0
            )
            add_counter("iterations", it)
        return PoissonResult(x, it, res, ok)


def _pcg(
    apply_A,
    b: np.ndarray,
    diag: np.ndarray,
    tol: float,
    maxiter: int,
    project=None,
    x0: np.ndarray | None = None,
) -> tuple[np.ndarray, int, float, bool]:
    """Jacobi-preconditioned conjugate gradients (SPD systems)."""
    inv_diag = 1.0 / diag
    x = np.zeros_like(b) if x0 is None else x0.copy()
    if project is not None:
        x = project(x)
    r = b - apply_A(x) if x.any() else b.copy()
    if project is not None:
        r = project(r)
    z = inv_diag * r
    p = z.copy()
    rz = float(np.dot(r, z))
    bnorm = max(float(np.linalg.norm(b)), 1e-300)
    res = float(np.linalg.norm(r)) / bnorm
    it = 0
    tmp = np.empty_like(b)  # per-solve scratch for the axpy products
    while res > tol and it < maxiter:
        Ap = apply_A(p)
        alpha = rz / float(np.dot(p, Ap))
        np.multiply(alpha, p, out=tmp)
        x += tmp
        np.multiply(alpha, Ap, out=tmp)
        r -= tmp
        if project is not None:
            r = project(r)
        np.multiply(inv_diag, r, out=z)
        rz_new = float(np.dot(r, z))
        # p = z + (rz_new/rz) * p, in place (addition order is bit-neutral)
        p *= rz_new / rz
        p += z
        rz = rz_new
        res = float(np.linalg.norm(r)) / bnorm
        it += 1
    return x, it, res, res <= tol
