"""repro: reproduction of "Large-Scale Materials Modeling at Quantum Accuracy"
(SC'23 Gordon Bell Prize): DFT-FE-MLXC + invDFT + MLXC, with materials,
quantum-many-body and exascale-performance substrates.

Quick start::

    from repro.atoms.pseudo import AtomicConfiguration
    from repro.core import DFTCalculation
    from repro.xc import LDA

    h2 = AtomicConfiguration(["H", "H"], [[0, 0, 0], [1.4, 0, 0]])
    result = DFTCalculation(h2, xc=LDA()).run()
    print(result.energy)
"""

__version__ = "1.0.0"
