"""Quantum many-body substrate: FCI over finite-element orbital bases."""

from .coupled_cluster import (
    CCDResult,
    RHFResult,
    ccd,
    ccsd,
    mp2_energy,
    restricted_hartree_fock,
)
from .fci import FCIResult, FCISolver, density_from_rdm
from .fock import creation_operator, fock_space_ground_state
from .integrals import OrbitalIntegrals, compute_integrals
from .slater import determinants, excitation_sign, excite, occ_list

__all__ = [
    "CCDResult",
    "FCIResult",
    "FCISolver",
    "OrbitalIntegrals",
    "RHFResult",
    "ccd",
    "ccsd",
    "compute_integrals",
    "creation_operator",
    "density_from_rdm",
    "determinants",
    "excitation_sign",
    "excite",
    "fock_space_ground_state",
    "mp2_energy",
    "occ_list",
    "restricted_hartree_fock",
]
