"""One- and two-electron integrals over finite-element orbitals.

The QMB (FCI) reference needs the second-quantized Hamiltonian in an
orthonormal spatial-orbital basis {phi_p}; here the orbitals come from a
Kohn-Sham solve on the spectral-element mesh and the integrals are
evaluated with the same machinery:

* ``h_pq = <p| -1/2 lap + v_N |q>`` via the cell-level stiffness and the
  analytic soft-pseudopotential,
* ``(pq|rs) = int int phi_p phi_q |r-r'|^{-1} phi_r phi_s`` by solving one
  FE Poisson problem per (p, q) pair density with multipole boundary
  conditions (chemists' notation; 8-fold permutational symmetry exploited).
"""

from __future__ import annotations

import numpy as np

from repro.atoms.pseudo import AtomicConfiguration
from repro.fem.assembly import CellStiffness
from repro.fem.mesh import Mesh3D
from repro.fem.poisson import PoissonSolver, multipole_boundary_values

__all__ = ["OrbitalIntegrals", "compute_integrals"]


class OrbitalIntegrals:
    """Container: core Hamiltonian h (n, n), ERIs (n, n, n, n), E_core."""

    def __init__(self, h: np.ndarray, eri: np.ndarray, e_core: float) -> None:
        self.h = np.asarray(h, dtype=float)
        self.eri = np.asarray(eri, dtype=float)
        self.e_core = float(e_core)
        self.n_orb = self.h.shape[0]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<OrbitalIntegrals n_orb={self.n_orb} e_core={self.e_core:.6f}>"


def compute_integrals(
    mesh: Mesh3D,
    config: AtomicConfiguration,
    orbitals_nodes: np.ndarray,
    poisson_tol: float = 1e-10,
) -> OrbitalIntegrals:
    """Integrals for orthonormal orbitals given as full-node values.

    ``orbitals_nodes`` has shape (nnodes, n_orb) and must be L2-orthonormal
    on the mesh (Kohn-Sham eigenvectors mapped to nodes satisfy this).
    """
    phi = np.asarray(orbitals_nodes, dtype=float)
    n_orb = phi.shape[1]
    w = mesh.mass_diag

    # orthonormality sanity check
    S = phi.T @ (w[:, None] * phi)
    if not np.allclose(S, np.eye(n_orb), atol=1e-6):
        raise ValueError("orbitals are not orthonormal on the mesh")

    # --- core Hamiltonian -------------------------------------------------
    stiff = CellStiffness(mesh)
    Kphi = stiff.apply_full(phi)
    v_n = config.external_potential(mesh.node_coords)
    h = 0.5 * (phi.T @ Kphi) + phi.T @ (w[:, None] * (v_n[:, None] * phi))
    h = 0.5 * (h + h.T)

    # --- electron repulsion integrals --------------------------------------
    solver = PoissonSolver(mesh)
    eri = np.zeros((n_orb, n_orb, n_orb, n_orb))
    pair_pot: dict[tuple[int, int], np.ndarray] = {}
    for p in range(n_orb):
        for q in range(p + 1):
            rho_pq = phi[:, p] * phi[:, q]
            bc = multipole_boundary_values(mesh, rho_pq)
            v = solver.solve(rho_pq, boundary_values=bc, tol=poisson_tol).potential
            pair_pot[(p, q)] = v
    for p in range(n_orb):
        for q in range(p + 1):
            v = pair_pot[(p, q)]
            for r in range(n_orb):
                for s in range(r + 1):
                    if (p, q) < (r, s):
                        continue
                    val = float(np.dot(w, v * phi[:, r] * phi[:, s]))
                    for a, b in ((p, q), (q, p)):
                        for c, d in ((r, s), (s, r)):
                            eri[a, b, c, d] = val
                            eri[c, d, a, b] = val
    return OrbitalIntegrals(h=h, eri=eri, e_core=config.nuclear_repulsion())
