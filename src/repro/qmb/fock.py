"""Independent Fock-space exact diagonalization (Jordan-Wigner).

A deliberately different implementation of the same many-body problem, used
to cross-validate the Slater-Condon FCI solver in the test suite: creation
and annihilation operators are built as explicit Kronecker-product matrices
over the full 2^(2 n_orb) Fock space (spin-orbital ordering: all alpha,
then all beta), the Hamiltonian is assembled from the integrals

    H = sum_pq h_pq a_p^dag a_q
      + 1/2 sum (pq|rs) a_p^dag a_r^dag a_s a_q   (chemists' notation)

and diagonalized in the fixed-(N_alpha, N_beta) sector.  Exponential memory
limits this to ~5 spatial orbitals — exactly its purpose.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from .integrals import OrbitalIntegrals

__all__ = ["fock_space_ground_state", "creation_operator"]


def creation_operator(mode: int, n_modes: int) -> sp.csr_matrix:
    """Jordan-Wigner a_mode^dagger on the 2^n_modes Fock space."""
    create = sp.csr_matrix(np.array([[0.0, 0.0], [1.0, 0.0]]))
    sign_z = sp.csr_matrix(np.array([[1.0, 0.0], [0.0, -1.0]]))
    eye = sp.identity(2, format="csr")
    op = sp.identity(1, format="csr")
    for m in range(n_modes):
        if m < mode:
            blk = sign_z
        elif m == mode:
            blk = create
        else:
            blk = eye
        op = sp.kron(op, blk, format="csr")
    return op


def fock_space_ground_state(
    integrals: OrbitalIntegrals, n_alpha: int, n_beta: int
) -> float:
    """Ground-state total energy in the (n_alpha, n_beta) particle sector."""
    n_orb = integrals.n_orb
    n_modes = 2 * n_orb
    if n_modes > 12:
        raise MemoryError("Fock-space verification limited to <= 6 spatial orbitals")
    a_dag = [creation_operator(m, n_modes) for m in range(n_modes)]
    a = [op.T.tocsr() for op in a_dag]

    def so(p: int, spin: int) -> int:  # spin-orbital index
        return p + spin * n_orb

    dim = 2**n_modes
    H = sp.csr_matrix((dim, dim))
    h, eri = integrals.h, integrals.eri
    for s in (0, 1):
        for p in range(n_orb):
            for q in range(n_orb):
                if abs(h[p, q]) > 1e-14:
                    H = H + h[p, q] * (a_dag[so(p, s)] @ a[so(q, s)])
    for s1 in (0, 1):
        for s2 in (0, 1):
            for p in range(n_orb):
                for q in range(n_orb):
                    for r in range(n_orb):
                        for t in range(n_orb):
                            v = eri[p, q, r, t]
                            if abs(v) < 1e-14:
                                continue
                            H = H + 0.5 * v * (
                                a_dag[so(p, s1)]
                                @ a_dag[so(r, s2)]
                                @ a[so(t, s2)]
                                @ a[so(q, s1)]
                            )

    # restrict to the particle-number sector
    occ_counts_a = np.zeros(dim, dtype=int)
    occ_counts_b = np.zeros(dim, dtype=int)
    for state in range(dim):
        # kron ordering: mode 0 is the most significant bit
        for m in range(n_modes):
            if (state >> (n_modes - 1 - m)) & 1:
                if m < n_orb:
                    occ_counts_a[state] += 1
                else:
                    occ_counts_b[state] += 1
    sector = np.nonzero((occ_counts_a == n_alpha) & (occ_counts_b == n_beta))[0]
    Hs = H[np.ix_(sector, sector)].toarray()
    evals = np.linalg.eigvalsh(Hs)
    return float(evals[0]) + integrals.e_core
