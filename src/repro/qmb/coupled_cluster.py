"""Hartree-Fock, MP2 and CCD over the finite-element orbital basis.

The paper's Level-4 taxonomy (Fig 1, Table 1) includes coupled-cluster
methods alongside CI and QMC; this module provides the CC side of that
ladder in the model world, sharing the :class:`~repro.qmb.integrals.
OrbitalIntegrals` with the FCI solver:

* **RHF**: Roothaan SCF *within* the orthonormal orbital basis (the basis
  itself comes from a Kohn-Sham solve), giving the canonical reference
  determinant and the Brillouin-satisfying Fock operator;
* **MP2**: second-order Møller-Plesset correlation energy;
* **CCD**: coupled-cluster doubles with the full spin-orbital residual,
  solved by damped amplitude iteration.

Validation anchors used by the tests: for two-electron systems CCD agrees
with FCI to well under a millihartree (only the Brillouin-suppressed
singles are missing), and the ladder
``E_HF > E_MP2 > E_CCD >= E_FCI`` orders correctly for weakly correlated
systems.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .integrals import OrbitalIntegrals

__all__ = ["RHFResult", "restricted_hartree_fock", "mp2_energy", "CCDResult", "ccd", "ccsd"]


@dataclass
class RHFResult:
    """Restricted Hartree-Fock solution within the orbital basis."""

    energy: float  #: total HF energy (incl. nuclear repulsion)
    orbital_energies: np.ndarray  #: canonical eigenvalues
    coefficients: np.ndarray  #: (n_basis, n_basis) MO coefficients
    n_occ: int
    converged: bool
    iterations: int


def restricted_hartree_fock(
    ints: OrbitalIntegrals,
    n_electrons: int,
    tol: float = 1e-10,
    max_iterations: int = 200,
    damping: float = 0.3,
) -> RHFResult:
    """Roothaan SCF in an orthonormal basis (closed shell).

    ``n_electrons`` must be even; the density matrix is damped for
    robustness on small stretched systems.
    """
    if n_electrons % 2 != 0:
        raise ValueError("restricted HF needs an even electron count")
    n_occ = n_electrons // 2
    h, eri = ints.h, ints.eri
    # core guess
    evals, C = np.linalg.eigh(h)
    D = 2.0 * C[:, :n_occ] @ C[:, :n_occ].T
    e_prev = np.inf
    converged = False
    it = 0
    for it in range(1, max_iterations + 1):
        J = np.einsum("pqrs,rs->pq", eri, D)
        K = np.einsum("prqs,rs->pq", eri, D)
        F = h + J - 0.5 * K
        e_elec = 0.5 * float(np.sum(D * (h + F)))
        evals, C = np.linalg.eigh(F)
        D_new = 2.0 * C[:, :n_occ] @ C[:, :n_occ].T
        D = (1 - damping) * D_new + damping * D
        if abs(e_elec - e_prev) < tol:
            converged = True
            break
        e_prev = e_elec
    return RHFResult(
        energy=e_elec + ints.e_core,
        orbital_energies=evals,
        coefficients=C,
        n_occ=n_occ,
        converged=converged,
        iterations=it,
    )


def _spin_orbital_tensors(ints: OrbitalIntegrals, hf: RHFResult):
    """Antisymmetrized spin-orbital integrals in the canonical MO basis.

    Returns (fock_diag, <pq||rs>, n_occ_so) with spin orbitals ordered as
    (mo0 up, mo0 dn, mo1 up, ...), occupied first within each spatial MO.
    """
    C = hf.coefficients
    n = ints.n_orb
    # chemist (pq|rs) -> MO basis
    eri_mo = np.einsum(
        "pqrs,pi,qj,rk,sl->ijkl", ints.eri, C, C, C, C, optimize=True
    )
    nso = 2 * n
    # physicist <pq|rs> = (pr|qs); spin factors via parity of the SO index
    so_spatial = np.repeat(np.arange(n), 2)
    so_spin = np.tile([0, 1], n)
    p, q, r, s = np.ix_(range(nso), range(nso), range(nso), range(nso))
    coul = eri_mo[so_spatial[p], so_spatial[r], so_spatial[q], so_spatial[s]] * (
        (so_spin[p] == so_spin[r]) & (so_spin[q] == so_spin[s])
    )
    exch = eri_mo[so_spatial[p], so_spatial[s], so_spatial[q], so_spatial[r]] * (
        (so_spin[p] == so_spin[s]) & (so_spin[q] == so_spin[r])
    )
    asym = coul - exch  # <pq||rs>
    fock_diag = np.repeat(hf.orbital_energies, 2)
    return fock_diag, asym, 2 * hf.n_occ


def mp2_energy(ints: OrbitalIntegrals, hf: RHFResult) -> float:
    """MP2 correlation energy on the canonical HF reference."""
    f, asym, no = _spin_orbital_tensors(ints, hf)
    nso = f.size
    o, v = slice(0, no), slice(no, nso)
    denom = (
        f[o, None, None, None] + f[None, o, None, None]
        - f[None, None, v, None] - f[None, None, None, v]
    )
    oovv = asym[o, o, v, v]
    return 0.25 * float(np.sum(oovv**2 / denom))


@dataclass
class CCDResult:
    """Coupled-cluster doubles solution."""

    energy: float  #: total CCD energy (HF + correlation + E_nn)
    correlation: float
    iterations: int
    converged: bool


def ccd(
    ints: OrbitalIntegrals,
    hf: RHFResult,
    tol: float = 1e-9,
    max_iterations: int = 200,
    damping: float = 0.2,
) -> CCDResult:
    """Spin-orbital CCD with the full doubles residual.

    Standard equations (e.g. Shavitt & Bartlett Eq. 9.126 for T2-only):

        R_ij^ab = <ij||ab> + P(ab) sum_c f_bc-like terms (vanish for
        canonical orbitals) + 1/2 <ab||cd> t_ij^cd + 1/2 <kl||ij> t_kl^ab
        + P(ij)P(ab) <kb||cj> t_ik^ac
        + 1/4 <kl||cd> t_ij^cd t_kl^ab
        + P(ij) <kl||cd> t_ik^ac t_jl^bd
        - 1/2 P(ij) <kl||cd> t_ik^dc t_jl^ab  (and the ab mirror)
    """
    f, asym, no = _spin_orbital_tensors(ints, hf)
    nso = f.size
    o, v = slice(0, no), slice(no, nso)
    oovv = asym[o, o, v, v]
    denom = (
        f[o, None, None, None] + f[None, o, None, None]
        - f[None, None, v, None] - f[None, None, None, v]
    )
    t = oovv / denom  # MP2 start
    vvvv = asym[v, v, v, v]
    oooo = asym[o, o, o, o]
    ovvo = asym[o, v, v, o]
    e_corr = 0.25 * float(np.sum(oovv * t))
    converged = False
    it = 0
    for it in range(1, max_iterations + 1):
        # intermediates
        tau = t
        R = oovv.copy()
        R += 0.5 * np.einsum("abcd,ijcd->ijab", vvvv, tau, optimize=True)
        R += 0.5 * np.einsum("klij,klab->ijab", oooo, tau, optimize=True)
        tmp = np.einsum("kbcj,ikac->ijab", ovvo, t, optimize=True)
        R += tmp - tmp.transpose(1, 0, 2, 3) - tmp.transpose(0, 1, 3, 2) + tmp.transpose(1, 0, 3, 2)
        # quadratic terms
        w = oovv  # <kl||cd>
        R += 0.25 * np.einsum("klcd,ijcd,klab->ijab", w, tau, tau, optimize=True)
        tmp = np.einsum("klcd,ikac,jlbd->ijab", w, t, t, optimize=True)
        R += 0.5 * (tmp - tmp.transpose(1, 0, 2, 3))
        tmp = np.einsum("klcd,ikdc,ljab->ijab", w, t, t, optimize=True)
        R -= 0.5 * (tmp - tmp.transpose(1, 0, 2, 3))
        tmp = np.einsum("klcd,lkac,ijdb->ijab", w, t, t, optimize=True)
        R -= 0.5 * (tmp - tmp.transpose(0, 1, 3, 2))
        t_new = R / denom
        t = (1 - damping) * t_new + damping * t
        e_new = 0.25 * float(np.sum(oovv * t))
        if abs(e_new - e_corr) < tol:
            e_corr = e_new
            converged = True
            break
        e_corr = e_new
    return CCDResult(
        energy=hf.energy + e_corr,
        correlation=e_corr,
        iterations=it,
        converged=converged,
    )


def ccsd(
    ints: OrbitalIntegrals,
    hf: RHFResult,
    tol: float = 1e-10,
    max_iterations: int = 300,
    damping: float = 0.2,
) -> CCDResult:
    """Spin-orbital CCSD (Stanton et al. intermediates).

    The decisive validation anchor: for two-electron systems CCSD is exact
    within the orbital basis, so its energy must match FCI to solver
    tolerance (tested).
    """
    fdiag, w, no = _spin_orbital_tensors(ints, hf)
    nso = fdiag.size
    nv = nso - no
    o, v = slice(0, no), slice(no, nso)
    eps_o, eps_v = fdiag[o], fdiag[v]
    D1 = eps_o[:, None] - eps_v[None, :]
    D2 = (
        eps_o[:, None, None, None] + eps_o[None, :, None, None]
        - eps_v[None, None, :, None] - eps_v[None, None, None, :]
    )
    oovv = w[o, o, v, v]
    t1 = np.zeros((no, nv))
    t2 = oovv / D2

    def energy(t1, t2):
        e = 0.25 * np.einsum("ijab,ijab->", oovv, t2)
        e += 0.5 * np.einsum("ijab,ia,jb->", oovv, t1, t1)
        return float(e)

    e_corr = energy(t1, t2)
    converged = False
    it = 0
    for it in range(1, max_iterations + 1):
        taut = t2 + 0.5 * (
            np.einsum("ia,jb->ijab", t1, t1) - np.einsum("ib,ja->ijab", t1, t1)
        )
        tau = t2 + (
            np.einsum("ia,jb->ijab", t1, t1) - np.einsum("ib,ja->ijab", t1, t1)
        )
        # one-particle intermediates (canonical orbitals: f offdiag = 0)
        Fae = np.einsum("mf,mafe->ae", t1, w[o, v, v, v])
        Fae -= 0.5 * np.einsum("mnaf,mnef->ae", taut, oovv)
        Fmi = np.einsum("ne,mnie->mi", t1, w[o, o, o, v])
        Fmi += 0.5 * np.einsum("inef,mnef->mi", taut, oovv)
        Fme = np.einsum("nf,mnef->me", t1, oovv)
        # two-particle intermediates
        Wmnij = w[o, o, o, o].copy()
        tmp = np.einsum("je,mnie->mnij", t1, w[o, o, o, v])
        Wmnij += tmp - tmp.transpose(0, 1, 3, 2)
        Wmnij += 0.25 * np.einsum("ijef,mnef->mnij", tau, oovv)
        Wabef = w[v, v, v, v].copy()
        tmp = np.einsum("mb,amef->abef", t1, w[v, o, v, v])
        Wabef -= tmp - tmp.transpose(1, 0, 2, 3)
        Wabef += 0.25 * np.einsum("mnab,mnef->abef", tau, oovv)
        Wmbej = w[o, v, v, o].copy()
        Wmbej += np.einsum("jf,mbef->mbej", t1, w[o, v, v, v])
        Wmbej -= np.einsum("nb,mnej->mbej", t1, w[o, o, v, o])
        Wmbej -= np.einsum(
            "jnfb,mnef->mbej", 0.5 * t2 + np.einsum("jf,nb->jnfb", t1, t1), oovv
        )
        # T1 residual
        r1 = np.einsum("ie,ae->ia", t1, Fae)
        r1 -= np.einsum("ma,mi->ia", t1, Fmi)
        r1 += np.einsum("imae,me->ia", t2, Fme)
        r1 -= np.einsum("nf,naif->ia", t1, w[o, v, o, v])
        r1 -= 0.5 * np.einsum("imef,maef->ia", t2, w[o, v, v, v])
        r1 -= 0.5 * np.einsum("mnae,nmei->ia", t2, w[o, o, v, o])
        t1_new = r1 / D1
        # T2 residual
        r2 = oovv.copy()
        ftmp = Fae - 0.5 * np.einsum("mb,me->be", t1, Fme)
        tmp = np.einsum("ijae,be->ijab", t2, ftmp)
        r2 += tmp - tmp.transpose(0, 1, 3, 2)
        ftmp = Fmi + 0.5 * np.einsum("je,me->mj", t1, Fme)
        tmp = np.einsum("imab,mj->ijab", t2, ftmp)
        r2 -= tmp - tmp.transpose(1, 0, 2, 3)
        r2 += 0.5 * np.einsum("mnab,mnij->ijab", tau, Wmnij)
        r2 += 0.5 * np.einsum("ijef,abef->ijab", tau, Wabef)
        tmp = np.einsum("imae,mbej->ijab", t2, Wmbej)
        tmp -= np.einsum("ie,ma,mbej->ijab", t1, t1, w[o, v, v, o])
        r2 += (
            tmp - tmp.transpose(1, 0, 2, 3) - tmp.transpose(0, 1, 3, 2)
            + tmp.transpose(1, 0, 3, 2)
        )
        tmp = np.einsum("ie,abej->ijab", t1, w[v, v, v, o])
        r2 += tmp - tmp.transpose(1, 0, 2, 3)
        tmp = np.einsum("ma,mbij->ijab", t1, w[o, v, o, o])
        r2 -= tmp - tmp.transpose(0, 1, 3, 2)
        t2_new = r2 / D2

        t1 = (1 - damping) * t1_new + damping * t1
        t2 = (1 - damping) * t2_new + damping * t2
        e_new = energy(t1, t2)
        if abs(e_new - e_corr) < tol:
            e_corr = e_new
            converged = True
            break
        e_corr = e_new
    return CCDResult(
        energy=hf.energy + e_corr,
        correlation=e_corr,
        iterations=it,
        converged=converged,
    )
