"""Full configuration interaction — the exact QMB reference of the pipeline.

Builds the sparse FCI Hamiltonian over (alpha, beta) bitstring determinant
pairs with the Slater-Condon rules, finds the ground state with a sparse
Lanczos (scipy ``eigsh``), and extracts the spin-resolved one-particle
reduced density matrices that the inverse-DFT module needs (the paper's
``rho_QMB``).

For the model systems of this reproduction (soft-pseudopotential analogs of
the paper's H2/LiH/Li/N/Ne training set), FCI in a 6-12 orbital Kohn-Sham
basis is the exact solution of the model-world many-electron problem.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp
from scipy.sparse.linalg import eigsh

from .integrals import OrbitalIntegrals
from .slater import (
    determinants,
    diagonal_element,
    double_opposite_spin_element,
    double_same_spin_element,
    excite,
    occ_list,
    single_element,
)

__all__ = ["FCIResult", "FCISolver"]


@dataclass
class FCIResult:
    """FCI ground state: energy, CI vector, and 1-RDMs."""

    energy: float  #: total energy incl. nuclear repulsion (Ha)
    electronic_energy: float
    civector: np.ndarray
    rdm1_alpha: np.ndarray
    rdm1_beta: np.ndarray

    @property
    def rdm1(self) -> np.ndarray:
        return self.rdm1_alpha + self.rdm1_beta


class FCISolver:
    """Exact diagonalization in the full determinant space."""

    def __init__(self, integrals: OrbitalIntegrals, n_alpha: int, n_beta: int):
        self.ints = integrals
        self.n_orb = integrals.n_orb
        self.n_alpha = int(n_alpha)
        self.n_beta = int(n_beta)
        self.dets_a = determinants(self.n_orb, self.n_alpha)
        self.dets_b = determinants(self.n_orb, self.n_beta)
        self.index_a = {d: i for i, d in enumerate(self.dets_a)}
        self.index_b = {d: i for i, d in enumerate(self.dets_b)}
        self.n_dets = len(self.dets_a) * len(self.dets_b)

    # ------------------------------------------------------------------
    def _single_excitations(self, dets, index):
        """For each det: list of (j, p, r, sign) single excitations."""
        out = []
        for bits in dets:
            occ = occ_list(bits)
            virt = [r for r in range(self.n_orb) if not (bits >> r) & 1]
            conns = []
            for p in occ:
                for r in virt:
                    new, sign = excite(bits, p, r)
                    conns.append((index[new], p, r, sign))
            out.append(conns)
        return out

    def build_hamiltonian(self) -> sp.csr_matrix:
        """Assemble the sparse FCI Hamiltonian (electronic part only)."""
        h, eri = self.ints.h, self.ints.eri
        na, nb = len(self.dets_a), len(self.dets_b)
        singles_a = self._single_excitations(self.dets_a, self.index_a)
        singles_b = self._single_excitations(self.dets_b, self.index_b)
        rows, cols, vals = [], [], []

        def add(i, j, v):
            if abs(v) > 1e-14:
                rows.append(i)
                cols.append(j)
                vals.append(v)

        for ia, abits in enumerate(self.dets_a):
            occ_a = occ_list(abits)
            for ib, bbits in enumerate(self.dets_b):
                I = ia * nb + ib
                occ_b = occ_list(bbits)
                # diagonal
                add(I, I, diagonal_element(abits, bbits, h, eri))
                # alpha singles
                for ja, p, r, sgn in singles_a[ia]:
                    if ja * nb + ib > I:
                        v = sgn * single_element(abits, occ_b, p, r, h, eri)
                        add(I, ja * nb + ib, v)
                # beta singles
                for jb, p, r, sgn in singles_b[ib]:
                    if ia * nb + jb > I:
                        v = sgn * single_element(bbits, occ_a, p, r, h, eri)
                        add(I, ia * nb + jb, v)
                # alpha doubles
                for pi, p in enumerate(occ_a):
                    for q in occ_a[pi + 1 :]:
                        virt = [
                            r for r in range(self.n_orb) if not (abits >> r) & 1
                        ]
                        for ri, r in enumerate(virt):
                            for s in virt[ri + 1 :]:
                                b1, s1 = excite(abits, p, r)
                                b2, s2 = excite(b1, q, s)
                                J = self.index_a[b2] * nb + ib
                                if J > I:
                                    add(
                                        I, J,
                                        s1 * s2 * double_same_spin_element(p, q, r, s, eri),
                                    )
                # beta doubles
                for pi, p in enumerate(occ_b):
                    for q in occ_b[pi + 1 :]:
                        virt = [
                            r for r in range(self.n_orb) if not (bbits >> r) & 1
                        ]
                        for ri, r in enumerate(virt):
                            for s in virt[ri + 1 :]:
                                b1, s1 = excite(bbits, p, r)
                                b2, s2 = excite(b1, q, s)
                                J = ia * nb + self.index_b[b2]
                                if J > I:
                                    add(
                                        I, J,
                                        s1 * s2 * double_same_spin_element(p, q, r, s, eri),
                                    )
                # mixed alpha x beta singles
                for ja, p, r, sa in singles_a[ia]:
                    for jb, q, s, sb in singles_b[ib]:
                        J = ja * nb + jb
                        if J > I:
                            add(
                                I, J,
                                sa * sb * double_opposite_spin_element(p, r, q, s, eri),
                            )
        H = sp.coo_matrix(
            (vals, (rows, cols)), shape=(self.n_dets, self.n_dets)
        ).tocsr()
        upper = sp.triu(H, k=1)
        return H + upper.T

    # ------------------------------------------------------------------
    def ground_state(self) -> FCIResult:
        """Solve for the ground state and build the 1-RDMs."""
        H = self.build_hamiltonian()
        if self.n_dets == 1:
            e_elec = float(H[0, 0])
            c = np.ones(1)
        elif self.n_dets < 300:
            w, v = np.linalg.eigh(H.toarray())
            e_elec, c = float(w[0]), v[:, 0]
        else:
            w, v = eigsh(H, k=1, which="SA")
            e_elec, c = float(w[0]), v[:, 0]
        ga, gb = self._one_rdm(c)
        return FCIResult(
            energy=e_elec + self.ints.e_core,
            electronic_energy=e_elec,
            civector=c,
            rdm1_alpha=ga,
            rdm1_beta=gb,
        )

    def _one_rdm(self, c: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Spin-resolved 1-RDMs gamma_pq = <a_p^dag a_q> (symmetric, real)."""
        na, nb = len(self.dets_a), len(self.dets_b)
        C = c.reshape(na, nb)
        ga = np.zeros((self.n_orb, self.n_orb))
        gb = np.zeros((self.n_orb, self.n_orb))
        # diagonal occupation numbers
        for ia, abits in enumerate(self.dets_a):
            wrow = float(np.dot(C[ia], C[ia]))
            for p in occ_list(abits):
                ga[p, p] += wrow
        for ib, bbits in enumerate(self.dets_b):
            wcol = float(np.dot(C[:, ib], C[:, ib]))
            for p in occ_list(bbits):
                gb[p, p] += wcol
        # off-diagonal: single excitations
        for ia, abits in enumerate(self.dets_a):
            occ = occ_list(abits)
            virt = [r for r in range(self.n_orb) if not (abits >> r) & 1]
            for p in occ:
                for r in virt:
                    new, sign = excite(abits, p, r)
                    ja = self.index_a[new]
                    val = sign * float(np.dot(C[ia], C[ja]))
                    ga[p, r] += val
        for ib, bbits in enumerate(self.dets_b):
            occ = occ_list(bbits)
            virt = [r for r in range(self.n_orb) if not (bbits >> r) & 1]
            for p in occ:
                for r in virt:
                    new, sign = excite(bbits, p, r)
                    jb = self.index_b[new]
                    val = sign * float(np.dot(C[:, ib], C[:, jb]))
                    gb[p, r] += val
        ga = 0.5 * (ga + ga.T)
        gb = 0.5 * (gb + gb.T)
        return ga, gb


def density_from_rdm(orbitals_nodes: np.ndarray, rdm1: np.ndarray) -> np.ndarray:
    """Real-space density rho(r) = sum_pq gamma_pq phi_p(r) phi_q(r)."""
    phi = np.asarray(orbitals_nodes)
    return np.einsum("ip,pq,iq->i", phi, rdm1, phi, optimize=True)
