"""Slater determinant machinery: bitstring determinants and Slater-Condon.

Determinants are integers whose set bits are the occupied *spatial* orbitals
of one spin channel; a full determinant is an (alpha_bits, beta_bits) pair.
The Slater-Condon rules give Hamiltonian matrix elements between
determinants differing by at most a double excitation; fermionic signs come
from counting occupied orbitals between the excitation endpoints.
"""

from __future__ import annotations

from itertools import combinations

import numpy as np

__all__ = [
    "determinants",
    "occ_list",
    "excitation_sign",
    "excite",
    "diagonal_element",
    "single_element",
    "double_same_spin_element",
    "double_opposite_spin_element",
]


def determinants(n_orb: int, n_elec: int) -> list[int]:
    """All bitstring determinants of ``n_elec`` electrons in ``n_orb`` orbitals."""
    if not 0 <= n_elec <= n_orb:
        raise ValueError("invalid electron count")
    out = []
    for occ in combinations(range(n_orb), n_elec):
        bits = 0
        for p in occ:
            bits |= 1 << p
        out.append(bits)
    return out


def occ_list(bits: int) -> list[int]:
    """Occupied orbital indices of a bitstring, ascending."""
    out = []
    p = 0
    while bits:
        if bits & 1:
            out.append(p)
        bits >>= 1
        p += 1
    return out


def excitation_sign(bits: int, p: int, r: int) -> int:
    """Fermionic sign of a_r^dag a_p |bits> (p occupied, r empty, p != r)."""
    lo, hi = (p, r) if p < r else (r, p)
    mask = ((1 << hi) - 1) & ~((1 << (lo + 1)) - 1)
    return -1 if bin(bits & mask).count("1") % 2 else 1


def excite(bits: int, p: int, r: int) -> tuple[int, int]:
    """Apply p -> r; returns (new_bits, sign)."""
    sign = excitation_sign(bits, p, r)
    return (bits & ~(1 << p)) | (1 << r), sign


def diagonal_element(
    abits: int, bbits: int, h: np.ndarray, eri: np.ndarray
) -> float:
    """<D|H|D> for spatial integrals h, (pq|rs) chemists' notation."""
    occ_a = occ_list(abits)
    occ_b = occ_list(bbits)
    e = sum(h[p, p] for p in occ_a) + sum(h[p, p] for p in occ_b)
    for i, p in enumerate(occ_a):
        for q in occ_a[i + 1 :]:
            e += eri[p, p, q, q] - eri[p, q, q, p]
    for i, p in enumerate(occ_b):
        for q in occ_b[i + 1 :]:
            e += eri[p, p, q, q] - eri[p, q, q, p]
    for p in occ_a:
        for q in occ_b:
            e += eri[p, p, q, q]
    return float(e)


def single_element(
    bits_same: int,
    occ_other: list[int],
    p: int,
    r: int,
    h: np.ndarray,
    eri: np.ndarray,
) -> float:
    """<D'|H|D> for a single excitation p->r in one spin channel (no sign).

    ``bits_same`` is the original bitstring of the excited channel;
    ``occ_other`` the occupied list of the other spin channel.
    """
    occ_same = occ_list(bits_same)
    val = h[p, r]
    for q in occ_same:
        if q == p:
            continue
        val += eri[p, r, q, q] - eri[p, q, q, r]
    for q in occ_other:
        val += eri[p, r, q, q]
    return float(val)


def double_same_spin_element(
    p: int, q: int, r: int, s: int, eri: np.ndarray
) -> float:
    """<D'|H|D> for the same-spin double (p,q)->(r,s) (no sign): (pr|qs)-(ps|qr)."""
    return float(eri[p, r, q, s] - eri[p, s, q, r])


def double_opposite_spin_element(p: int, r: int, q: int, s: int, eri: np.ndarray) -> float:
    """<D'|H|D> for alpha p->r with beta q->s (no sign): (pr|qs)."""
    return float(eri[p, r, q, s])
