"""Shared numerical constants (import-cycle-free home)."""

RHO_FLOOR: float = 1e-12  #: densities below this are treated as vacuum
