"""SCF density mixing: simple linear and Anderson (Pulay/DIIS) acceleration.

Anderson mixing minimizes the norm of a linear combination of the stored
residuals ``F_i = rho_out_i - rho_in_i`` and mixes along the optimized
direction — the standard workhorse for metallic SCF convergence used by
DFT-FE.
"""

from __future__ import annotations

from collections import deque

import numpy as np

__all__ = ["LinearMixer", "AndersonMixer"]


class LinearMixer:
    """rho_next = rho_in + alpha * (rho_out - rho_in)."""

    def __init__(self, alpha: float = 0.3) -> None:
        if not 0 < alpha <= 1:
            raise ValueError("alpha must be in (0, 1]")
        self.alpha = alpha

    def reset(self) -> None:  # symmetric API with AndersonMixer
        pass

    def mix(self, rho_in: np.ndarray, rho_out: np.ndarray) -> np.ndarray:
        return rho_in + self.alpha * (rho_out - rho_in)


class AndersonMixer:
    """Anderson (Pulay) mixing with a finite history window.

    The mixed density is

        rho* = sum_i c_i rho_in_i + alpha * sum_i c_i F_i,

    with coefficients minimizing ``|sum_i c_i F_i|`` subject to
    ``sum c_i = 1`` (solved via the normal equations with Tikhonov
    regularization for robustness on near-degenerate histories).
    """

    def __init__(self, alpha: float = 0.3, history: int = 5, reg: float = 1e-12) -> None:
        if history < 1:
            raise ValueError("history must be >= 1")
        self.alpha = alpha
        self.history = history
        self.reg = reg
        self._rho: deque[np.ndarray] = deque(maxlen=history)
        self._res: deque[np.ndarray] = deque(maxlen=history)

    def reset(self) -> None:
        self._rho.clear()
        self._res.clear()

    def get_history(self) -> tuple[list[np.ndarray], list[np.ndarray]]:
        """Copies of the (rho_in, residual) history, oldest first."""
        return (
            [r.copy() for r in self._rho],
            [r.copy() for r in self._res],
        )

    def set_history(self, rho: list[np.ndarray], res: list[np.ndarray]) -> None:
        """Replace the history window (checkpoint resume).

        Entries beyond ``history`` are dropped from the old end, matching
        what the deque would have retained.
        """
        if len(rho) != len(res):
            raise ValueError("rho and residual histories must have equal length")
        self._rho.clear()
        self._res.clear()
        for r in rho:
            self._rho.append(np.asarray(r).copy())
        for r in res:
            self._res.append(np.asarray(r).copy())

    def mix(self, rho_in: np.ndarray, rho_out: np.ndarray) -> np.ndarray:
        residual = rho_out - rho_in
        self._rho.append(rho_in.copy())
        self._res.append(residual.copy())
        m = len(self._res)
        if m == 1:
            return rho_in + self.alpha * residual
        R = np.stack([r.ravel() for r in self._res], axis=0)  # (m, n)
        G = R @ R.T
        scale = np.trace(G) / m
        G += self.reg * max(scale, 1e-300) * np.eye(m)
        ones = np.ones(m)
        try:
            x = np.linalg.solve(G, ones)
        except np.linalg.LinAlgError:
            x = ones / m
        c = x / x.sum()
        rho_bar = np.zeros_like(rho_in)
        res_bar = np.zeros_like(residual)
        for ci, ri, fi in zip(c, self._rho, self._res):
            rho_bar += ci * ri
            res_bar += ci * fi
        return rho_bar + self.alpha * res_bar
