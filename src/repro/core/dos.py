"""Electronic density of states (DOS) from converged eigenvalue sets.

Gaussian-smeared DOS over the (k-point weighted) Kohn-Sham spectrum — the
standard diagnostic for the metallic systems of the paper (Mg alloys,
quasicrystals, whose pseudogap at the Fermi level is a classic signature).
"""

from __future__ import annotations

import numpy as np

__all__ = ["density_of_states", "integrated_dos"]


def density_of_states(
    eigenvalues: list[np.ndarray],
    weights: list[float],
    energies: np.ndarray,
    sigma: float = 0.02,
    degeneracy: float = 2.0,
) -> np.ndarray:
    """Gaussian-broadened DOS g(E) = sum_kn w_k deg N(E; eps_kn, sigma).

    Parameters
    ----------
    eigenvalues, weights:
        Per-channel eigenvalue arrays and k-point weights (an ``SCFResult``'s
        ``eigenvalues`` and its channels' weights).
    energies:
        Grid on which to evaluate the DOS (Ha).
    sigma:
        Gaussian broadening width (Ha).
    degeneracy:
        2 for spin-restricted channels, 1 for spin-polarized ones.
    """
    if sigma <= 0:
        raise ValueError("broadening must be positive")
    E = np.asarray(energies, dtype=float)
    g = np.zeros_like(E)
    norm = 1.0 / (sigma * np.sqrt(2.0 * np.pi))
    for evals, w in zip(eigenvalues, weights):
        eps = np.asarray(evals, dtype=float)
        g += (
            w * degeneracy * norm
            * np.exp(-0.5 * ((E[:, None] - eps[None, :]) / sigma) ** 2).sum(axis=1)
        )
    return g


def integrated_dos(
    energies: np.ndarray, dos: np.ndarray, up_to: float
) -> float:
    """Electron count below ``up_to`` by trapezoidal integration of the DOS."""
    E = np.asarray(energies, dtype=float)
    mask = E <= up_to
    if mask.sum() < 2:
        return 0.0
    return float(np.trapezoid(np.asarray(dos)[mask], E[mask]))
