"""Public API: set up and run a DFT-FE-MLXC style ground-state calculation.

:class:`DFTCalculation` wires together the mesh generator (with geometric
grading toward the atoms), the electrostatics, the XC functional and the
ChFES-based SCF driver into the one-call interface used by the examples and
benchmarks::

    from repro.atoms.pseudo import AtomicConfiguration
    from repro.core import DFTCalculation
    from repro.xc import LDA

    config = AtomicConfiguration(["H", "H"], [[0, 0, 0], [1.4, 0, 0]])
    calc = DFTCalculation(config, xc=LDA(), degree=5)
    result = calc.run()
    print(result.energy)
"""

from __future__ import annotations

import numpy as np

from repro.atoms.pseudo import AtomicConfiguration
from repro.fem.mesh import Mesh3D, graded_edges
from repro.xc.base import XCFunctional
from repro.xc.lda import LDA

from .scf import SCFDriver, SCFOptions, SCFResult

__all__ = ["DFTCalculation", "auto_mesh", "homo_lumo_gap"]


def auto_mesh(
    config: AtomicConfiguration,
    padding: float = 9.0,
    cells_per_axis: int | tuple[int, int, int] = 5,
    degree: int = 5,
    grading_ratio: float = 2.0,
    scatter_engine: str | None = None,
) -> tuple[Mesh3D, AtomicConfiguration]:
    """Build a mesh around ``config`` and return (mesh, shifted config).

    For isolated systems the domain is the atomic bounding box plus
    ``padding`` Bohr on every side, graded toward the geometric center.  For
    periodic systems the (orthorhombic) lattice defines the domain and atoms
    are wrapped into it.
    """
    if isinstance(cells_per_axis, int):
        cells_per_axis = (cells_per_axis,) * 3
    if any(config.pbc):
        if config.lattice is None:
            raise ValueError("periodic configuration requires a lattice")
        off = np.abs(config.lattice - np.diag(np.diag(config.lattice))).max()
        if off > 1e-10:
            raise ValueError("only orthorhombic lattices are supported")
        lengths = np.diag(config.lattice).copy()
        pos = config.positions.copy()
        edges, pbc = [], []
        for a in range(3):
            if config.pbc[a]:
                pos[:, a] %= lengths[a]
                edges.append(graded_edges(lengths[a], cells_per_axis[a]))
                pbc.append(True)
            else:
                lo = pos[:, a].min() - padding
                hi = pos[:, a].max() + padding
                pos[:, a] -= lo
                lengths[a] = hi - lo
                edges.append(
                    graded_edges(
                        lengths[a], cells_per_axis[a],
                        center=float(np.mean(pos[:, a])), ratio=grading_ratio,
                    )
                )
                pbc.append(False)
        mesh = Mesh3D(
            edges=tuple(edges), degree=degree, pbc=tuple(pbc),
            scatter_engine=scatter_engine,
        )
        shifted = AtomicConfiguration(
            list(config.symbols), pos, lattice=np.diag(lengths), pbc=config.pbc
        )
        return mesh, shifted

    lo = config.positions.min(axis=0) - padding
    hi = config.positions.max(axis=0) + padding
    lengths = hi - lo
    pos = config.positions - lo
    center = pos.mean(axis=0)
    edges = tuple(
        graded_edges(lengths[a], cells_per_axis[a], center=center[a],
                     ratio=grading_ratio)
        for a in range(3)
    )
    mesh = Mesh3D(edges=edges, degree=degree, scatter_engine=scatter_engine)
    shifted = AtomicConfiguration(list(config.symbols), pos)
    return mesh, shifted


class DFTCalculation:
    """High-level ground-state DFT calculation on a spectral-element mesh."""

    def __init__(
        self,
        config: AtomicConfiguration,
        xc: XCFunctional | None = None,
        mesh: Mesh3D | None = None,
        padding: float = 9.0,
        cells_per_axis: int | tuple[int, int, int] = 5,
        degree: int = 5,
        grading_ratio: float = 2.0,
        nstates: int | None = None,
        kpoints: list[tuple[tuple[float, float, float], float]] | None = None,
        spin_polarized: bool = False,
        options: SCFOptions | None = None,
        ledger=None,
        nonlocal_projectors=None,
    ) -> None:
        self.xc = xc if xc is not None else LDA()
        options = options or SCFOptions()
        if options.autotune and not getattr(options, "_resolved", False):
            # Resolve the tuned profile *before* mesh construction so a
            # tuned scatter_engine reaches the assembly maps; the driver
            # sees an already-resolved options object and skips its own
            # pickup (no second profile read).
            from repro.tune.profile import load_host_profile

            options = options.resolve(load_host_profile())
        if mesh is None:
            mesh, config = auto_mesh(
                config, padding=padding, cells_per_axis=cells_per_axis,
                degree=degree, grading_ratio=grading_ratio,
                scatter_engine=options.scatter_engine,
            )
        self.mesh = mesh
        self.config = config
        n_e = config.n_electrons
        if nstates is None:
            base = int(np.ceil(n_e / (1.0 if spin_polarized else 2.0)))
            nstates = base + max(4, int(np.ceil(0.15 * base)))
        self.driver = SCFDriver(
            mesh,
            config,
            self.xc,
            nstates=nstates,
            kpoints=kpoints,
            spin_polarized=spin_polarized,
            options=options,
            ledger=ledger,
            nonlocal_projectors=nonlocal_projectors,
        )

    @property
    def options(self) -> SCFOptions:
        return self.driver.options

    def run(
        self,
        rho0: np.ndarray | None = None,
        initial_polarization: float = 0.0,
        resume_from: str | None = None,
    ) -> SCFResult:
        """Run the SCF to convergence and return the ground state.

        ``resume_from`` continues from a mid-run v2 checkpoint (see
        :func:`repro.core.io.save_scf_state`), reproducing the
        uninterrupted run bit for bit.
        """
        return self.driver.run(
            rho0=rho0,
            initial_polarization=initial_polarization,
            resume_from=resume_from,
        )

    def close(self) -> None:
        """Release backend resources (process-rank worker fleets)."""
        self.driver.close()

    def __enter__(self) -> "DFTCalculation":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def homo_lumo_gap(result: SCFResult) -> float:
    """HOMO-LUMO gap (Ha) from the occupation-resolved spectrum."""
    homo, lumo = -np.inf, np.inf
    for evals, occ in zip(result.eigenvalues, result.occupations):
        filled = np.asarray(occ) > 0.5 * np.max(occ)
        if filled.any():
            homo = max(homo, float(np.max(np.asarray(evals)[filled])))
        if (~filled).any():
            lumo = min(lumo, float(np.min(np.asarray(evals)[~filled])))
    return lumo - homo
