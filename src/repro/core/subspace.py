"""Batched mixed-precision subspace linear algebra (CholGS + RR engine).

The non-filter time of a ChFES cycle is spent in dense subspace kernels —
CholGS-S/CI/O and RR-P/D/SR (paper Table 3) — whose reference
implementations in :mod:`.orthonorm` / :mod:`.rayleigh_ritz` walk the
``O((nvec/bs)^2)`` block pairs in Python and re-cast the same columns to
FP32 once per pair.  This module is the fast engine those wrappers (and the
SCF/bands/invDFT drivers) dispatch to:

* **single-cast mirrors** — with mixed precision, ``X``/``HX`` are downcast
  to an FP32 mirror once per call (:func:`repro.precision.fp32_mirror`,
  into pooled buffers); every off-diagonal block then *slices* the mirror,
  which is bitwise identical to the reference per-block ``.astype``.
* **offset-batched GEMMs** — the same-shape off-diagonal blocks of the
  Hermitian overlap/projection lie on diagonals of the block grid; for each
  offset ``d`` the blocks ``(i, i+d)`` are exposed as one strided
  ``(count, n, bs)`` stack (``as_strided``, zero copies) and contracted by
  a single ``np.matmul`` batch.  Batched products are bitwise identical to
  the per-block 2-D GEMMs (same BLAS kernel per slice), so the engine gram
  equals the reference gram bit for bit.
* **no zero-temporaries** — rotations write block products straight into
  the output columns (first term) and accumulate via a pooled product
  buffer (later terms); the reference's ``acc``/``Y`` zeroed temporaries
  are gone.  Results are freshly owned arrays unless the caller passes
  ``out=`` (``psi``/``hpsi`` persist across SCF iterations and the
  resilience layer rewinds by reference, so pooled *outputs* would alias).
* **fused CholGS→RR with HX reuse** — :func:`fused_cholgs_rr` consumes a
  filtered block ``W`` and its precomputed product ``HW = H W`` and derives
  orthonormalization *and* Ritz rotation without a single operator
  application: the projected Hamiltonian is the congruence
  ``L^{-1} (W^H HW) L^{-H}`` and the combined rotation ``R = L^{-H} Q`` is
  applied to both ``W`` and ``HW``, so the rotated ``H X`` leaves the stage
  for free and seeds the next Chebyshev filter's first term (one fewer
  ``op.apply`` per ChFES iteration; see :func:`adjust_carried_hx` for the
  cross-SCF-step potential update).

``REPRO_SLOW_SUBSPACE=1`` (checked at call time, mirroring the scatter
fallback of PR 3) steers every dispatch site back to the reference
implementations.
"""

from __future__ import annotations

import os

import numpy as np
from numpy.lib.stride_tricks import as_strided
from scipy.linalg import solve_triangular

from repro.fem.workspace import Workspace
from repro.hpc.flops import gemm_flops
from repro.obs import kernel_region
from repro.precision import f32_dtype, fp32_mirror

__all__ = [
    "ENGINE_WORKSPACE",
    "adjust_carried_hx",
    "batched_gram",
    "batched_rotate",
    "fused_cholgs_rr",
    "subspace_engine_enabled",
]

#: pooled intermediates of the engine (FP32 mirrors, batched product
#: stacks, per-block accumulator products); thread-local, shared by the
#: parallel (k, spin) channels
ENGINE_WORKSPACE = Workspace()


def subspace_engine_enabled() -> bool:
    """Whether the batched engine is active (``REPRO_SLOW_SUBSPACE`` off)."""
    return os.environ.get("REPRO_SLOW_SUBSPACE", "").strip().lower() not in (
        "1",
        "true",
        "yes",
    )


def _block_stack(A: np.ndarray, bs: int, first: int, count: int) -> np.ndarray:
    """Read-only ``(count, n, bs)`` view of consecutive width-``bs`` column
    blocks of ``A``, starting at block index ``first`` — no copies."""
    s0, s1 = A.strides
    return as_strided(
        A[:, first * bs :],
        shape=(count, A.shape[0], bs),
        strides=(bs * s1, s0, s1),
        writeable=False,
    )


def _band_view(S: np.ndarray, bs: int, d: int, count: int, upper: bool) -> np.ndarray:
    """Writable ``(count, bs, bs)`` view of the blocks on diagonal offset
    ``d`` of the block grid of ``S`` (upper: ``S[i, i+d]``, else the
    mirrored ``S[i+d, i]``).  Blocks are disjoint for ``d >= 1``."""
    s0, s1 = S.strides
    base = S[:, d * bs :] if upper else S[d * bs :, :]
    return as_strided(base, shape=(count, bs, bs), strides=(bs * (s0 + s1), s0, s1))


def batched_gram(
    X: np.ndarray,
    Y: np.ndarray | None = None,
    block_size: int = 128,
    mixed_precision: bool = False,
    ledger=None,
    kernel: str = "CholGS-S",
    workspace: Workspace | None = None,
) -> np.ndarray:
    """Hermitian ``S = X^H Y`` (``Y = X`` for the overlap) by batched blocks.

    Computes only blocks with ``j >= i`` and mirrors the strict upper
    triangle (the paper's alpha=1 Hermitian exploitation).  Off-diagonal
    full-size blocks are contracted as one ``np.matmul`` batch per diagonal
    offset; diagonal and ragged-tail blocks follow the reference per-block
    path.  With ``mixed_precision`` the off-diagonal blocks read single-cast
    FP32 mirrors of ``X``/``Y`` — bitwise identical to the reference
    per-block downcasts.  For ``Y != X`` (RR-P) the result is Hermitian only
    up to round-off, exactly as the reference; callers hermitize.
    """
    n, nvec = X.shape
    if Y is None:
        Y = X
    same = Y is X
    is_complex = np.issubdtype(X.dtype, np.complexfloating)
    bs = int(block_size)
    ws = workspace if workspace is not None else ENGINE_WORKSPACE
    S = np.empty((nvec, nvec), dtype=X.dtype)
    starts = list(range(0, nvec, bs))
    nb_full = nvec // bs
    X32 = Y32 = None
    if mixed_precision:
        f32 = f32_dtype(X.dtype)
        X32 = fp32_mirror(X, out=ws.get("gram_x32", X.shape, f32))
        Y32 = X32 if same else fp32_mirror(Y, out=ws.get("gram_y32", Y.shape, f32))
    with kernel_region(kernel, ledger, block_size=bs, nvec=nvec):
        # diagonal blocks and every pair touching the ragged tail follow the
        # reference per-block path (and order); FP32 comes from mirror slices
        for bi, i in enumerate(starts):
            si = slice(i, min(i + bs, nvec))
            for j in starts[bi:]:
                sj = slice(j, min(j + bs, nvec))
                offdiag = j > i
                full = (si.stop - si.start == bs) and (sj.stop - sj.start == bs)
                if offdiag and full and bs > 1:
                    continue  # covered by the batched sweep below
                if mixed_precision and offdiag:
                    # repack the mirror slices contiguously: the reference's
                    # per-block astype produced contiguous operands, and BLAS
                    # picks a different (bitwise-different) path for strided
                    # matrix-vector shapes on the ragged tail
                    blk = (
                        np.ascontiguousarray(X32[:, si]).conj().T
                        @ np.ascontiguousarray(Y32[:, sj])
                    )
                    prec = "fp32"
                else:
                    blk = X[:, si].conj().T @ Y[:, sj]
                    prec = "fp64"
                S[si, sj] = blk  # FP32 products upcast on assignment
                if offdiag:
                    S[sj, si] = blk.conj().T
                if ledger is not None:
                    ledger.add(
                        kernel,
                        gemm_flops(si.stop - si.start, sj.stop - sj.start, n, is_complex),
                        precision=prec,
                    )
        # bs == 1 degenerates the batch to stacked inner products, for which
        # BLAS takes a bitwise-different path than the reference's 2-D GEMMs
        if nb_full >= 2 and bs > 1:
            left = X32 if mixed_precision else X
            right = Y32 if mixed_precision else Y
            if is_complex:
                # conjugate the left operand once per call (the per-block
                # reference conjugates the same columns once per pair)
                cbuf = ws.get(
                    "gram_conj", left.shape, left.dtype
                )
                np.conjugate(left, out=cbuf)
                left = cbuf
            pdt = f32_dtype(X.dtype) if mixed_precision else X.dtype
            pbuf = ws.get("gram_prod", (nb_full - 1, bs, bs), pdt)
            prec = "fp32" if mixed_precision else "fp64"
            for d in range(1, nb_full):
                cnt = nb_full - d
                L = _block_stack(left, bs, 0, cnt)
                R = _block_stack(right, bs, d, cnt)
                prod = np.matmul(L.transpose(0, 2, 1), R, out=pbuf[:cnt])
                _band_view(S, bs, d, cnt, upper=True)[...] = prod
                herm = prod.transpose(0, 2, 1)
                if is_complex:
                    herm = np.conjugate(herm)
                _band_view(S, bs, d, cnt, upper=False)[...] = herm
                if ledger is not None:
                    ledger.add(
                        kernel,
                        cnt * gemm_flops(bs, bs, n, is_complex),
                        precision=prec,
                    )
    return S


def batched_rotate(
    X: np.ndarray,
    Q: np.ndarray,
    block_size: int = 128,
    mixed_precision: bool = False,
    ledger=None,
    kernel: str = "RR-SR",
    workspace: Workspace | None = None,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Blocked rotation ``Y = X Q`` without zeroed temporaries.

    The first row-block product of each output column block is written
    straight into ``out`` (a fresh array when not given); later blocks
    accumulate through a pooled product buffer.  The summation order — and
    with ``mixed_precision`` the FP32 off-diagonal block products, read from
    single-cast mirrors — matches the reference :func:`~repro.core.
    orthonorm.blocked_rotate` exactly (the only divergence is the sign of
    exact-zero entries, which the reference obtains as ``0.0 + (-0.0)``).
    ``out`` must not overlap ``X`` or ``Q``.
    """
    n, nvec = X.shape
    k = Q.shape[1]
    is_complex = np.issubdtype(X.dtype, np.complexfloating)
    bs = int(block_size)
    ws = workspace if workspace is not None else ENGINE_WORKSPACE
    if out is None:
        out = np.empty((n, k), dtype=X.dtype)
    elif np.may_share_memory(out, X) or np.may_share_memory(out, Q):
        raise ValueError("out must not alias X or Q")
    X32 = Q32 = None
    if mixed_precision:
        f32 = f32_dtype(X.dtype)
        X32 = fp32_mirror(X, out=ws.get("rot_x32", X.shape, f32))
        Q32 = fp32_mirror(Q, out=ws.get("rot_q32", Q.shape, f32))
    starts = list(range(0, nvec, bs))
    with kernel_region(kernel, ledger, block_size=bs, nvec=nvec):
        for j in range(0, k, bs):
            sj = slice(j, min(j + bs, k))
            w = sj.stop - sj.start
            oj = out[:, sj]
            first = True
            for i in starts:
                si = slice(i, min(i + bs, nvec))
                if mixed_precision and i != j:
                    # contiguous repack of the mirror slices (see batched_gram:
                    # BLAS is layout-sensitive at the bit level for the ragged
                    # matrix-vector shapes; the reference operands, produced by
                    # per-block astype, were contiguous)
                    prod32 = np.matmul(
                        np.ascontiguousarray(X32[:, si]),
                        np.ascontiguousarray(Q32[si, sj]),
                        out=ws.get("rot_prod32", (n, w), X32.dtype),
                    )
                    if first:
                        oj[...] = prod32  # upcast on assignment
                    else:
                        oj += prod32
                    prec = "fp32"
                else:
                    if first:
                        np.matmul(X[:, si], Q[si, sj], out=oj)
                    else:
                        prod = np.matmul(
                            X[:, si], Q[si, sj], out=ws.get("rot_prod", (n, w), X.dtype)
                        )
                        oj += prod
                    prec = "fp64"
                first = False
                if ledger is not None:
                    ledger.add(
                        kernel,
                        gemm_flops(n, w, si.stop - si.start, is_complex),
                        precision=prec,
                    )
    return out


def fused_cholgs_rr(
    W: np.ndarray,
    HW: np.ndarray,
    *,
    op=None,
    block_size: int = 128,
    mixed_precision: bool = False,
    ledger=None,
    workspace: Workspace | None = None,
    out_x: np.ndarray | None = None,
    out_hx: np.ndarray | None = None,
    want_hx: bool = True,
) -> tuple[np.ndarray, np.ndarray, np.ndarray | None]:
    """Fused CholGS → Rayleigh-Ritz on a filtered block, zero applies.

    Given ``W`` (Chebyshev filter output) and ``HW = H W`` (computed once,
    alongside the filter workload), performs

    1. ``S = W^H W``                      (CholGS-S)
    2. ``S = L L^H``, ``L^{-1}``          (CholGS-CI; QR rescue → CholGS-QR)
    3. ``Hp = W^H HW``                    (RR-P)
    4. ``Hhat = L^{-1} Hp L^{-H}``        (RR-P, congruence to the
       orthonormal basis — algebraically ``X^H H X`` for ``X = W L^{-H}``)
    5. ``Hhat = Q diag(e) Q^H``           (RR-D)
    6. ``R = L^{-H} Q``                   (CholGS-O, combined rotation)
    7. ``X = W R``                        (RR-SR)
    8. ``HX = HW R``                      (CholGS-O — the rotation CholGS-O
       would have applied to ``X`` lands on ``HW`` instead, at the same
       tall-GEMM cost, and hands ``H X`` to the next filter for free)

    Returns ``(evals, X, HX)`` — ``HX`` is ``None`` when ``want_hx`` is
    false.  When the overlap is numerically indefinite (severe cold-start
    ill-conditioning) a QR factorization rescues the basis, metered under
    its own ``CholGS-QR`` label; ``HW`` is then refreshed via ``op.apply``
    when ``op`` is given, or recovered as ``HW R_qr^{-1}`` otherwise.
    """
    n, nvec = W.shape
    is_complex = np.issubdtype(W.dtype, np.complexfloating)
    ws = workspace if workspace is not None else ENGINE_WORKSPACE
    S = batched_gram(
        W,
        block_size=block_size,
        mixed_precision=mixed_precision,
        ledger=ledger,
        kernel="CholGS-S",
        workspace=ws,
    )
    # distributed operators sum the gram over ranks: an allreduce on the
    # cluster (metered on the virtual backend, bytes carried for real
    # through shared memory on the process backend — bitwise identity)
    cluster = getattr(op, "cluster", None)
    if cluster is not None:
        S = cluster.allreduce(S)
    Linv = None
    fallback = False
    with kernel_region("CholGS-CI", ledger):
        try:
            L = np.linalg.cholesky(S)
            Linv = solve_triangular(L, np.eye(L.shape[0], dtype=L.dtype), lower=True)
        except np.linalg.LinAlgError:
            fallback = True
    if fallback:
        # ill-conditioned cold start: rescue the basis by QR, metered under
        # its own kernel label (FLOPs uncounted, like CholGS-CI)
        with kernel_region("CholGS-QR", ledger):
            Qw, Rw = np.linalg.qr(W)
            W = np.ascontiguousarray(Qw)
            if op is not None:
                HW = op.apply(W)
            else:
                rdiag = np.abs(np.diagonal(Rw))
                if rdiag.size and rdiag.min() <= rdiag.max() * 1e-12:
                    raise np.linalg.LinAlgError(
                        "indefinite subspace overlap and singular QR factor; "
                        "pass op= to fused_cholgs_rr to refresh HW"
                    )
                HW = np.ascontiguousarray(
                    solve_triangular(Rw.conj().T, HW.conj().T, lower=True).conj().T
                )
    Hp = batched_gram(
        W,
        HW,
        block_size=block_size,
        mixed_precision=mixed_precision,
        ledger=ledger,
        kernel="RR-P",
        workspace=ws,
    )
    if cluster is not None:
        Hp = cluster.allreduce(Hp)
    Hp = 0.5 * (Hp + Hp.conj().T)
    if Linv is not None:
        with kernel_region("RR-P", ledger):
            Hhat = Linv @ Hp @ Linv.conj().T
            Hhat = 0.5 * (Hhat + Hhat.conj().T)
        if ledger is not None:
            ledger.add("RR-P", 2.0 * gemm_flops(nvec, nvec, nvec, is_complex))
    else:
        Hhat = Hp
    with kernel_region("RR-D", ledger):
        evals, Qe = np.linalg.eigh(Hhat)
    if Linv is not None:
        with kernel_region("CholGS-O", ledger):
            R = Linv.conj().T @ Qe
        if ledger is not None:
            ledger.add("CholGS-O", gemm_flops(nvec, nvec, nvec, is_complex))
    else:
        R = Qe
    X = batched_rotate(
        W,
        R,
        block_size=block_size,
        mixed_precision=mixed_precision,
        ledger=ledger,
        kernel="RR-SR",
        workspace=ws,
        out=out_x,
    )
    HX = None
    if want_hx:
        HX = batched_rotate(
            HW,
            R,
            block_size=block_size,
            mixed_precision=mixed_precision,
            ledger=ledger,
            kernel="CholGS-O",
            workspace=ws,
            out=out_hx,
        )
    return evals, X, HX


def adjust_carried_hx(
    hpsi: np.ndarray | None, psi: np.ndarray, dv: np.ndarray
) -> np.ndarray | None:
    """``H_new psi`` from the carried ``H_old psi`` under a potential update.

    The Löwdin-basis Hamiltonian is ``H = T + diag(v)`` (+ a *fixed*
    separable nonlocal term), so ``H_new - H_old = diag(v_new - v_old)``
    exactly and the carried product survives the SCF potential update as
    ``hpsi + dv ∘ psi`` — no operator application needed.  Returns ``hpsi``
    unchanged when ``dv`` is identically zero (repeated eigensolves at a
    fixed potential), ``None`` when there is nothing carried.
    """
    if hpsi is None:
        return None
    if not np.any(dv):
        return hpsi
    return hpsi + dv[:, None] * psi
