"""Self-consistent field driver (the ground-state loop of DFT-FE-MLXC).

Each SCF iteration performs the sequence the paper benchmarks in Table 3:

1. **EP** — electrostatic potential solve for ``rho - rho_core``;
2. **DH** — effective-potential (Hamiltonian) update, incl. XC evaluation;
3. **ChFES** — one Chebyshev-filtered subspace iteration per (k, spin)
   channel: CF -> CholGS (S, CI, O) -> RR (P, D, SR);
4. occupation update (Fermi-Dirac, common chemical potential);
5. **DC** — density computation;
6. Anderson-mixed density update, Harris-Foulkes energy estimate.

The first SCF step runs several filtering passes from a random subspace
(paper footnote 8) with Lanczos spectral bounds.

Every phase of the iteration is wrapped in a reproscope span
(:mod:`repro.obs`) named after the paper's kernel labels, so a traced run
produces the nested per-SCF breakdown of Table 3; the per-iteration
``history`` seconds are read off the same ``SCF-iteration`` span, keeping
the history and the trace in agreement by construction.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

import numpy as np

from repro.atoms.pseudo import AtomicConfiguration
from repro.fem.assembly import KSOperator
from repro.fem.mesh import Mesh3D
from repro.obs import SCF_ITERATION, attach_to, current_span, trace_region
from repro.resilience import (
    DegradationReport,
    ResilienceError,
    RetryPolicy,
    ScatterFallback,
)
from repro.resilience import faults as _faults
from repro.tools import sanitize as _sanitize
from repro.xc.base import XCFunctional

from .chebyshev import chebyshev_filter, lanczos_upper_bound
from .density import atomic_guess_density, density_from_channels
from .energy import EnergyBreakdown, total_energy
from .hamiltonian import Electrostatics
from .io import load_initial_rho, load_scf_state, save_scf_state
from .mixing import AndersonMixer, LinearMixer
from .occupations import OccupationSet, find_fermi_level
from .orthonorm import cholesky_orthonormalize
from .rayleigh_ritz import rayleigh_ritz
from .subspace import adjust_carried_hx, fused_cholgs_rr, subspace_engine_enabled

__all__ = ["KSChannel", "SCFOptions", "SCFResult", "SCFDriver"]


@dataclass
class KSChannel:
    """One (k-point, spin) eigenvalue channel."""

    kfrac: tuple[float, float, float]
    weight: float
    spin: int | None  #: 0/1 for spin-polarized, None for spin-restricted
    op: KSOperator
    psi: np.ndarray | None = None  #: (ndof, nstates) Löwdin-basis orbitals
    evals: np.ndarray | None = None
    upper_bound: float = 0.0
    #: Lanczos bound cache: the bound and the potential it was computed at
    bound_base: float = 0.0
    bound_v: np.ndarray | None = None
    #: HX carry of the fused subspace stage: ``H psi`` rotated out of the
    #: last Rayleigh-Ritz, and the potential it was computed at (the next
    #: filter adjusts it by ``diag(v_new - v_old)`` and skips one apply)
    hpsi: np.ndarray | None = None
    hpsi_v: np.ndarray | None = None


@dataclass
class SCFOptions:
    """Numerical knobs of the SCF loop and the ChFES eigensolver."""

    max_iterations: int = 60
    density_tol: float = 1e-6  #: L2 density residual per electron
    energy_tol: float = 1e-8  #: Harris energy change per electron (Ha)
    temperature: float = 1e-3  #: k_B T smearing (Ha)
    cheb_degree: int = 15
    n_init_passes: int = 5  #: filtering passes in the first SCF step
    #: filtering passes in every later SCF step.  The default single
    #: pass leaves the converged subspace with an O(1e-10) eigenvalue
    #: memory of the starting density; screening campaigns that must
    #: reproduce cold-start energies to 1e-12 from warm starts run 2-3
    #: passes so the eigensolve is trajectory-independent at the fixed
    #: point.  1 is bitwise-identical to the historical behavior.
    filter_passes: int = 1
    #: CF / CholGS / RR block size (the paper's B_f).  None (the default)
    #: means "unset": :meth:`resolve` may fill it from the host's tuned
    #: profile, else it falls back to 64.  An explicit value always wins.
    block_size: int | None = None
    #: CholGS/RR block size; None falls back to ``block_size`` (tunable
    #: independently because the subspace GEMM shapes differ from CF's)
    subspace_block_size: int | None = None
    #: force the fem ScatterMap engine ("csr"/"slices"); None = automatic
    #: (or tuned).  Both engines are bitwise-identical by construction.
    scatter_engine: str | None = None
    #: pick up the per-host tuned profile for any knob left unset (see
    #: :mod:`repro.tune`); ``REPRO_TUNE=0`` overrides this globally
    autotune: bool = True
    mixed_precision: bool = False
    mixing_alpha: float = 0.3
    mixing_history: int = 6
    mixer: str = "anderson"  #: "anderson" or "linear"
    poisson_tol: float = 1e-9
    lanczos_steps: int = 12
    #: max-norm potential drift (Ha) up to which the cached Lanczos upper
    #: bound is reused (Weyl-shifted) instead of recomputed (see
    #: :meth:`SCFDriver._upper_bound`).  The default 0.0 reuses the cache
    #: only for a bitwise-unchanged potential (repeated eigensolves, NSCF
    #: band runs) and is numerically inert; a positive threshold (~0.05)
    #: also skips the k-step Lanczos between nearby SCF steps, perturbing
    #: the filter window — and the converged energy — at the ~1e-9 level.
    lanczos_refresh_dv: float = 0.0
    kerker_k0: float | None = None  #: enable Kerker mixing preconditioning
    #: worker threads for the independent (k, spin) channels; None reads
    #: REPRO_NUM_THREADS (default 1 = serial)
    num_threads: int | None = None
    verbose: bool = False
    #: mid-run checkpointing: write a v2 state file here every
    #: ``checkpoint_every`` iterations (and on convergence); resume with
    #: ``SCFDriver.run(resume_from=...)``
    checkpoint_path: str | None = None
    checkpoint_every: int = 1
    #: free-form dict stored in the checkpoint (the CLI uses it to rebuild
    #: the calculation for ``python -m repro resume``)
    checkpoint_metadata: dict | None = None
    #: seed the first SCF iteration from the density stored in this
    #: checkpoint file (v1 converged or v2 mid-run; mesh-validated at
    #: load).  An explicit ``run(rho0=...)`` argument takes precedence.
    initial_rho_path: str | None = None
    #: recovery budget for faulted channel eigensolves (see
    #: :mod:`repro.resilience`)
    retry_policy: RetryPolicy = RetryPolicy()
    #: rank backend for the Hamiltonian applies: "serial" (the in-process
    #: KSOperator), "virtual" (simulated ranks, metered traffic), or
    #: "proc" (real forked ranks over shared memory).  The distributed
    #: backends are bitwise-identical to each other; "serial" remains the
    #: default and the golden-value reference.
    backend: str = "serial"
    #: rank count for the distributed backends
    nranks: int = 2
    #: FP32 halo exchange on the distributed backends (paper Sec 5.4.2)
    fp32_halo: bool = False

    #: the knobs a tuned profile may fill (when left unset here)
    _TUNABLE = ("block_size", "subspace_block_size", "scatter_engine",
                "num_threads")

    def __post_init__(self) -> None:
        # Record which tunable knobs the caller left unset *before*
        # defaulting them: resolve() only ever fills those, so an explicit
        # user value always beats the profile.
        unset = tuple(k for k in self._TUNABLE if getattr(self, k) is None)
        if self.block_size is None:
            self.block_size = 64
        self._tunable_unset = unset
        self._resolved = False

    @property
    def subspace_block(self) -> int:
        """Effective CholGS/RR block (``subspace_block_size`` or B_f)."""
        if self.subspace_block_size is not None:
            return self.subspace_block_size
        return self.block_size

    def resolve(self, profile) -> "SCFOptions":
        """Fill unset schedule knobs from a tuned profile.

        ``profile`` is a :class:`repro.tune.TunedProfile` (or None, which
        is a no-op).  Only knobs the user did not set explicitly are
        filled; ``num_threads`` additionally defers to an explicit
        ``REPRO_NUM_THREADS`` environment value.  Profiles change the
        execution schedule, never the math — every fillable knob is
        bitwise-neutral (see DESIGN.md sec 15).
        """
        import dataclasses

        if profile is None:
            self._resolved = True
            return self
        knobs = dict(getattr(profile, "knobs", {}) or {})
        env_threads = os.environ.get("REPRO_NUM_THREADS", "").strip()
        filled = {}
        for name in self._tunable_unset:
            value = knobs.get(name)
            if value is None:
                continue
            if name == "num_threads" and env_threads:
                continue  # the explicit environment override wins
            filled[name] = value
        if not filled:
            self._resolved = True
            return self
        out = dataclasses.replace(self, **filled)
        # replace() re-runs __post_init__ with already-defaulted values;
        # restore the unset record for knobs the profile did not cover
        out._tunable_unset = tuple(
            k for k in self._tunable_unset if k not in filled
        )
        out._resolved = True
        return out


@dataclass
class SCFResult:
    """Converged (or best-effort) ground state."""

    converged: bool
    n_iterations: int
    energy: float  #: self-consistent Kohn-Sham total energy (Ha)
    free_energy: float  #: Mermin free energy (Ha)
    fermi_level: float
    eigenvalues: list[np.ndarray]
    occupations: list[np.ndarray]
    channels: list[KSChannel]
    rho_spin: np.ndarray  #: (nnodes, 2)
    v_tot: np.ndarray
    v_xc_spin: np.ndarray
    breakdown: EnergyBreakdown
    history: list[dict] = field(default_factory=list)
    #: fallbacks taken while the run survived injected/real faults
    degradation: DegradationReport | None = None

    @property
    def rho(self) -> np.ndarray:
        return self.rho_spin.sum(axis=1)


class SCFDriver:
    """Kohn-Sham SCF on a spectral-element mesh."""

    def __init__(
        self,
        mesh: Mesh3D,
        config: AtomicConfiguration,
        xc: XCFunctional,
        nstates: int,
        kpoints: list[tuple[tuple[float, float, float], float]] | None = None,
        spin_polarized: bool = False,
        options: SCFOptions | None = None,
        ledger=None,
        nonlocal_projectors=None,
    ) -> None:
        self.mesh = mesh
        self.config = config
        self.xc = xc
        self.nstates = int(nstates)
        self.spin_polarized = bool(spin_polarized)
        self.options = options or SCFOptions()
        if self.options.autotune and not getattr(self.options, "_resolved", False):
            from repro.tune.profile import load_host_profile

            # fills only knobs left unset; no-op (and no profile I/O)
            # under REPRO_TUNE=0
            self.options = self.options.resolve(load_host_profile())
        self.ledger = ledger
        if kpoints is None:
            kpoints = [((0.0, 0.0, 0.0), 1.0)]
        wsum = sum(w for _, w in kpoints)
        if abs(wsum - 1.0) > 1e-10:
            raise ValueError("k-point weights must sum to 1")
        self.electrostatics = Electrostatics(mesh, config, ledger=ledger)
        self.channels: list[KSChannel] = []
        ops: dict[tuple, KSOperator] = {}
        spins = (0, 1) if spin_polarized else (None,)
        backend = self.options.backend
        if backend not in ("serial",) and nonlocal_projectors:
            raise ValueError(
                "distributed rank backends do not carry nonlocal projectors; "
                "use backend='serial' for pseudopotential runs"
            )
        for kfrac, w in kpoints:
            key = tuple(np.round(kfrac, 12))
            if key not in ops:
                if backend == "serial":
                    ops[key] = KSOperator(
                        mesh, kfrac=kfrac, ledger=ledger,
                        nonlocal_projectors=nonlocal_projectors,
                    )
                else:
                    from repro.hpc.distributed import DistributedKSOperator

                    ops[key] = DistributedKSOperator(
                        mesh,
                        self.options.nranks,
                        kfrac=kfrac,
                        fp32_halo=self.options.fp32_halo,
                        backend=backend,
                        ledger=ledger,
                    )
            for i, s in enumerate(spins):
                # every channel owns its operator (its potential), so the
                # parallel dispatch cannot race set_potential across spins;
                # clones share the heavy immutable state of the base op
                op = ops[key] if i == 0 else ops[key].clone()
                self.channels.append(
                    KSChannel(kfrac=tuple(kfrac), weight=w, spin=s, op=op)
                )
        min_states = int(np.ceil(config.n_electrons / (2.0 if not spin_polarized else 1.0)))
        if self.nstates < min_states:
            raise ValueError(
                f"nstates={nstates} cannot hold {config.n_electrons} electrons"
            )
        self.degradation = DegradationReport()
        self._scatter = ScatterFallback()
        self._degraded_serial = False
        self._iteration = 0
        # REPRO_NUM_THREADS is read once here, not per SCF step: the
        # environment is shared mutable state, and the parallel channel
        # loop must not change width mid-run (reprolint R015).
        env = os.environ.get("REPRO_NUM_THREADS", "").strip()
        self._env_threads = int(env) if env else 1

    def close(self) -> None:
        """Release operator backend resources (process-rank worker fleets).

        Idempotent; serial and virtual backends have nothing to release.
        Distributed clones share one cluster, whose close is itself
        idempotent, so closing every channel is safe.
        """
        for ch in self.channels:
            closer = getattr(ch.op, "close", None)
            if closer is not None:
                closer()

    def __enter__(self) -> "SCFDriver":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    def run(
        self,
        rho0: np.ndarray | None = None,
        initial_polarization: float = 0.0,
        resume_from: str | None = None,
    ) -> SCFResult:
        opts = self.options
        mesh = self.mesh
        n_e = self.config.n_electrons
        if rho0 is None and opts.initial_rho_path is not None:
            rho0 = load_initial_rho(opts.initial_rho_path, mesh)
        rho_spin = (
            rho0.copy()
            if rho0 is not None
            else atomic_guess_density(mesh, self.config, initial_polarization)
        )
        mixer = (
            AndersonMixer(opts.mixing_alpha, opts.mixing_history)
            if opts.mixer == "anderson"
            else LinearMixer(opts.mixing_alpha)
        )
        kerker = None
        if opts.kerker_k0 is not None:
            from .kerker import KerkerPreconditioner

            kerker = KerkerPreconditioner(mesh, k0=opts.kerker_k0)
        history: list[dict] = []
        degeneracy = 1.0 if self.spin_polarized else 2.0
        prev_energy = np.inf
        converged = False
        it = 0
        occset = None
        self.degradation = DegradationReport()
        self._scatter = ScatterFallback()
        self._degraded_serial = False
        self._iteration = 0
        start_it = 1
        if resume_from is not None:
            state = load_scf_state(resume_from, mesh)
            rho_spin = state["rho_spin"]
            prev_energy = state["free_energy"]
            converged = state["converged"]
            it = state["iteration"]
            history = list(state["history"])
            occset = self._restore_state(state, mixer)
            start_it = it + 1
        try:
            converged, it, occset, rho_spin, prev_energy = self._scf_loop(
                start_it,
                converged,
                it,
                occset,
                rho_spin,
                prev_energy,
                mixer,
                kerker,
                history,
                degeneracy,
                n_e,
            )
        finally:
            # never leak a degraded scatter setting into the next run
            self._scatter.restore()

        # Final self-consistent energy at the output density.
        v_tot = self.electrostatics.solve(rho_spin.sum(axis=1), tol=opts.poisson_tol)
        v_xc, exc = self.xc.potential_and_energy(mesh, rho_spin)
        v_eff = v_tot[:, None] + v_xc
        breakdown = total_energy(
            mesh,
            [ch.evals for ch in self.channels],
            occset.occupations,
            [ch.weight for ch in self.channels],
            rho_spin,
            v_eff,
            v_tot,
            self.electrostatics.core_density,
            self.electrostatics.self_energy,
            exc,
            occset.entropy,
            opts.temperature,
        )
        if not np.isfinite(breakdown.free_energy):
            raise ResilienceError(
                "scf", "non-finite free energy in the final evaluation"
            )
        return SCFResult(
            converged=converged,
            n_iterations=it,
            energy=breakdown.total,
            free_energy=breakdown.free_energy,
            fermi_level=occset.fermi_level,
            eigenvalues=[ch.evals for ch in self.channels],
            occupations=occset.occupations,
            channels=self.channels,
            rho_spin=rho_spin,
            v_tot=v_tot,
            v_xc_spin=v_xc,
            breakdown=breakdown,
            history=history,
            degradation=self.degradation,
        )

    def _restore_state(self, state: dict, mixer) -> OccupationSet:
        """Load every piece of loop-carried state from a v2 checkpoint."""
        if len(state["channels"]) != len(self.channels):
            raise ValueError(
                "checkpoint channel count does not match this calculation "
                f"({len(state['channels'])} vs {len(self.channels)})"
            )
        for ch, st in zip(self.channels, state["channels"]):
            if st["spin"] != ch.spin or not np.allclose(st["kfrac"], ch.kfrac):
                raise ValueError(
                    "checkpoint (k, spin) channel layout does not match "
                    "this calculation"
                )
            ch.psi = st["psi"]
            ch.evals = st["evals"]
            ch.upper_bound = st["upper_bound"]
            ch.bound_base = st["bound_base"]
            ch.bound_v = st["bound_v"]
            # absent in checkpoints written before the fused subspace engine;
            # resume then simply pays one extra apply on the first iteration
            ch.hpsi = st.get("hpsi")
            ch.hpsi_v = st.get("hpsi_v")
        if isinstance(mixer, AndersonMixer):
            mixer.set_history(state["mixer_rho"], state["mixer_res"])
        self.electrostatics.warm_start = state["v_prev"]
        if self.ledger is not None and state["ledger_snapshot"]:
            self.ledger.restore(state["ledger_snapshot"])
        return OccupationSet(
            occupations=[np.asarray(o) for o in state["occupations"]],
            fermi_level=state["fermi_level"],
            entropy=state["entropy"],
        )

    def _write_checkpoint(
        self, it: int, converged: bool, free_energy: float,
        rho_spin: np.ndarray, occset: OccupationSet, mixer, history: list,
    ) -> None:
        mixer_rho: list = []
        mixer_res: list = []
        if isinstance(mixer, AndersonMixer):
            mixer_rho, mixer_res = mixer.get_history()
        save_scf_state(
            self.options.checkpoint_path,
            self.mesh,
            iteration=it,
            converged=converged,
            free_energy=free_energy,
            rho_spin=rho_spin,
            fermi_level=occset.fermi_level,
            entropy=occset.entropy,
            occupations=occset.occupations,
            channels=[
                {
                    "kfrac": ch.kfrac,
                    "weight": ch.weight,
                    "spin": ch.spin,
                    "psi": ch.psi,
                    "evals": ch.evals,
                    "upper_bound": ch.upper_bound,
                    "bound_base": ch.bound_base,
                    "bound_v": ch.bound_v,
                    "hpsi": ch.hpsi,
                    "hpsi_v": ch.hpsi_v,
                }
                for ch in self.channels
            ],
            mixer_rho=mixer_rho,
            mixer_res=mixer_res,
            v_prev=self.electrostatics.warm_start,
            ledger_snapshot=(
                self.ledger.snapshot() if self.ledger is not None else None
            ),
            history=history,
            metadata=self.options.checkpoint_metadata,
        )

    def _scf_loop(
        self,
        start_it: int,
        converged: bool,
        it: int,
        occset,
        rho_spin: np.ndarray,
        prev_energy: float,
        mixer,
        kerker,
        history: list,
        degeneracy: float,
        n_e: float,
    ):
        opts = self.options
        mesh = self.mesh
        if converged:  # resumed from a converged checkpoint: nothing to do
            return converged, it, occset, rho_spin, prev_energy
        for it in range(start_it, opts.max_iterations + 1):
            self._iteration = it
            with trace_region(SCF_ITERATION, iteration=it) as it_span:
                # EP span opened by Electrostatics.solve itself
                v_tot = self.electrostatics.solve(
                    rho_spin.sum(axis=1), tol=opts.poisson_tol
                )
                with trace_region("DH"):
                    v_xc, exc = self.xc.potential_and_energy(mesh, rho_spin)
                    v_eff = v_tot[:, None] + v_xc  # (nnodes, 2)

                self._solve_channels(v_eff)

                with trace_region("Occ"):
                    occset = find_fermi_level(
                        [ch.evals for ch in self.channels],
                        [ch.weight for ch in self.channels],
                        n_e,
                        opts.temperature,
                        degeneracy=degeneracy,
                    )
                # DC span opened by density_from_channels itself
                rho_out = density_from_channels(
                    mesh, self.channels, occset.occupations, ledger=self.ledger
                )
                with trace_region("Energy"):
                    breakdown = total_energy(
                        mesh,
                        [ch.evals for ch in self.channels],
                        occset.occupations,
                        [ch.weight for ch in self.channels],
                        rho_spin,
                        v_eff,
                        v_tot,
                        self.electrostatics.core_density,
                        self.electrostatics.self_energy,
                        exc,
                        occset.entropy,
                        opts.temperature,
                    )
                dr = rho_out - rho_spin
                residual = float(
                    np.sqrt(mesh.integrate(np.einsum("is,is->i", dr, dr)))
                ) / n_e
                # resilience sentinel: a poison that slipped past recovery
                # dies here as a structured error, never as a NaN energy
                if not (np.isfinite(breakdown.free_energy) and np.isfinite(residual)):
                    raise ResilienceError(
                        "scf",
                        f"non-finite free energy or density residual "
                        f"at iteration {it}",
                    )
                d_energy = abs(breakdown.free_energy - prev_energy) / n_e
                prev_energy = breakdown.free_energy
                if opts.verbose:  # pragma: no cover - logging
                    print(
                        f"SCF {it:3d}  F = {breakdown.free_energy:+.10f} Ha  "
                        f"res = {residual:.3e}  mu = {occset.fermi_level:+.6f}"
                    )
                if residual < opts.density_tol and d_energy < opts.energy_tol and it > 1:
                    converged = True
                    rho_spin = rho_out
                else:
                    with trace_region("Mix"):
                        if kerker is not None:
                            rho_out = rho_spin + kerker(rho_out - rho_spin)
                        rho_spin = mixer.mix(rho_spin, rho_out)
                        np.clip(rho_spin, 0.0, None, out=rho_spin)
            # seconds come from the just-closed span: the trace and the
            # printed/recorded history cannot drift apart
            history.append(
                {
                    "iteration": it,
                    "free_energy": breakdown.free_energy,
                    "residual": residual,
                    "fermi_level": occset.fermi_level,
                    "seconds": it_span.duration,
                }
            )
            if opts.checkpoint_path is not None and (
                converged or it % max(opts.checkpoint_every, 1) == 0
            ):
                self._write_checkpoint(
                    it, converged, prev_energy, rho_spin, occset, mixer, history
                )
            if converged:
                break
        return converged, it, occset, rho_spin, prev_energy

    # ------------------------------------------------------------------
    def _effective_threads(self) -> int:
        nt = self.options.num_threads
        if nt is None:
            nt = self._env_threads
        return max(1, int(nt))

    def _solve_channels(self, v_eff: np.ndarray) -> None:
        """One ChFES step per (k, spin) channel, serial or thread-parallel.

        Channels are fully independent (each owns its operator and
        wavefunctions), so they run on a thread pool when more than one
        worker is configured — BLAS releases the GIL inside the batched
        GEMMs.  Each worker adopts the caller's open span via
        ``attach_to``, so the per-channel ChFES spans land under the right
        SCF iteration in the profile tree.

        A channel whose retries are exhausted in the parallel pool does not
        abort the run: the pool is degraded to serial execution (recorded
        in the degradation report) and the failed channels are re-solved
        with a fresh retry budget.  Only a serial failure escapes, as a
        structured ``ResilienceError``.
        """
        nthreads = min(self._effective_threads(), len(self.channels))
        if self._degraded_serial:
            nthreads = 1
        if nthreads <= 1:
            for ch in self.channels:
                self._solve_channel_resilient(ch, v_eff)
            return
        parent = current_span()

        def worker(ch: KSChannel) -> None:
            with attach_to(parent):
                self._solve_channel_resilient(ch, v_eff)

        failed: list[tuple[KSChannel, ResilienceError]] = []
        with ThreadPoolExecutor(
            max_workers=nthreads, thread_name_prefix="chfes"
        ) as pool:
            futures = [pool.submit(worker, ch) for ch in self.channels]
            for ch, f in zip(self.channels, futures):
                try:
                    f.result()  # join before the parent span closes
                except ResilienceError as err:
                    failed.append((ch, err))
        if failed:
            self._degraded_serial = True
            self.degradation.record(
                "channel",
                "parallel->serial",
                detail=f"{len(failed)} channel(s) exhausted retries: "
                f"{failed[0][1]}",
                iteration=self._iteration,
            )
            for ch, _ in failed:
                self._solve_channel_resilient(ch, v_eff)

    def _solve_channel_resilient(self, ch: KSChannel, v_eff: np.ndarray) -> None:
        """One channel solve under the retry policy.

        The eigensolver only ever *reassigns* ``psi``/``evals`` (it never
        writes into the previous arrays), so restoring the pre-attempt
        references is enough to rewind a failed attempt.  The full-orbital
        finiteness scan runs only while a fault plan is armed — unfaulted
        runs pay a single O(nstates) eigenvalue check per channel.
        """
        policy = self.options.retry_policy
        backup = (
            ch.psi, ch.evals, ch.upper_bound, ch.bound_base, ch.bound_v,
            ch.hpsi, ch.hpsi_v,
        )

        def attempt() -> bool:
            self._solve_one_channel(ch, v_eff)
            return True

        def validate(_: bool) -> bool:
            if ch.evals is None or not np.all(np.isfinite(ch.evals)):
                return False
            if _faults._PLAN is not None and ch.psi is not None:
                if not np.all(np.isfinite(ch.psi)):
                    return False
            if _faults._PLAN is not None and ch.hpsi is not None:
                if not np.all(np.isfinite(ch.hpsi)):
                    return False
            return True

        def before_retry(n: int) -> None:
            (
                ch.psi, ch.evals, ch.upper_bound, ch.bound_base, ch.bound_v,
                ch.hpsi, ch.hpsi_v,
            ) = backup
            # last rung before giving up: trade the precomputed scatter maps
            # for the reference scatter (bit-identical, slower)
            if n == policy.max_retries and self._scatter.engage():
                self.degradation.record(
                    "channel",
                    "scatter->reference",
                    detail="last-resort retry uses the reference scatter",
                    iteration=self._iteration,
                )

        policy.run(attempt, "channel", validate=validate, before_retry=before_retry)

    def _solve_one_channel(self, ch: KSChannel, v_eff: np.ndarray) -> None:
        if _faults._PLAN is not None:
            _faults.fault_point("channel")
        # each channel is single-owner state: the write window proves no
        # two pool workers were ever handed the same channel
        san = _sanitize._STATE
        if san is not None:
            san.write_begin(f"KSChannel:{id(ch)}")
        try:
            s = ch.spin if ch.spin is not None else 0
            ch.op.set_potential(v_eff[:, s])
            self._eigensolve(ch, first=(ch.psi is None))
        finally:
            if san is not None:
                san.write_end(f"KSChannel:{id(ch)}")

    def _eigensolve(self, ch: KSChannel, first: bool) -> None:
        """One ChFES step for a channel (multi-pass on the first SCF step)."""
        with trace_region(
            "ChFES", kpoint=ch.kfrac, spin=ch.spin, first=first
        ):
            self._eigensolve_channel(ch, first)

    def _upper_bound(self, ch: KSChannel, first: bool) -> float:
        """Cached Lanczos upper bound of the channel's spectrum.

        The kinetic part of ``H~`` is fixed; only ``diag(v)`` changes
        between SCF steps, and Weyl's inequality gives
        ``lam_max(T + diag(v')) <= lam_max(T + diag(v)) + max(v' - v)``.
        So the ``lanczos_steps`` full operator applies are spent only on
        the first step and when the potential has drifted more than
        ``lanczos_refresh_dv`` in max norm; otherwise the cached bound is
        shifted by the (non-negative part of the) maximum potential
        increase, which keeps it a true upper bound.

        At the default threshold of 0.0 the cache only serves a bitwise
        unchanged potential (shift exactly zero), so SCF trajectories are
        bit-identical to recomputing every step while repeated eigensolves
        at a fixed potential still skip the Lanczos run.
        """
        opts = self.options
        op = ch.op
        v = op.potential_free
        stale = first or ch.bound_v is None
        if not stale:
            drift = float(np.max(np.abs(v - ch.bound_v))) if v.size else 0.0
            stale = drift > opts.lanczos_refresh_dv
        if stale:
            with trace_region("Lanczos"):
                b = lanczos_upper_bound(op, k=opts.lanczos_steps)
            ch.bound_base = b
            ch.bound_v = v.copy()
            return b
        shift = float(np.max(v - ch.bound_v)) if v.size else 0.0
        return ch.bound_base + max(shift, 0.0)

    def _eigensolve_channel(self, ch: KSChannel, first: bool) -> None:
        opts = self.options
        op = ch.op
        n = op.n
        b = self._upper_bound(ch, first)
        ch.upper_bound = b
        if first:
            seed = (
                int(1e6 * (1 + ch.kfrac[0] + 10 * ch.kfrac[1] + 100 * ch.kfrac[2]))
                + 7919 * (0 if ch.spin is None else ch.spin + 1)
            ) % 2**32
            rng = np.random.default_rng(seed)
            X = rng.standard_normal((n, self.nstates))
            if np.issubdtype(op.dtype, np.complexfloating):
                X = X + 1j * rng.standard_normal((n, self.nstates))
            X = np.asarray(X, dtype=op.dtype)
            X = cholesky_orthonormalize(X, block_size=opts.subspace_block)
            # crude initial window: amplify the lower third of the spectrum
            d = op.diagonal()
            a0 = float(np.min(d)) - 1.0
            a = a0 + 0.35 * (b - a0)
            passes = max(opts.n_init_passes, 1)
        else:
            X = ch.psi
            a0 = float(ch.evals[0])
            a = float(ch.evals[-1]) + 0.01 * (b - float(ch.evals[-1]))
            passes = max(opts.filter_passes, 1)

        engine = subspace_engine_enabled()
        hx0 = None
        if engine and not first and ch.hpsi is not None and ch.hpsi_v is not None:
            # the potential term of H~ is exactly diagonal, so the HX
            # rotated out of the previous RR stage survives the SCF
            # potential update as hpsi + (v_new - v_old) o psi
            hx0 = adjust_carried_hx(ch.hpsi, X, op.potential_free - ch.hpsi_v)
        for p in range(passes):
            X = chebyshev_filter(
                op, X, opts.cheb_degree, a, b, a0,
                block_size=opts.block_size, ledger=self.ledger,
                hx0=hx0,
            )
            if engine:
                # fused CholGS->RR: one H application of the filtered block
                # feeds projection AND the carried HX; the reference path
                # below issues a second apply inside rayleigh_ritz
                HW = op.apply(X)
                evals, X, hx0 = fused_cholgs_rr(
                    X,
                    HW,
                    op=op,
                    block_size=opts.subspace_block,
                    mixed_precision=opts.mixed_precision,
                    ledger=self.ledger,
                )
            else:
                hx0 = None
                X = cholesky_orthonormalize(
                    X,
                    block_size=opts.subspace_block,
                    mixed_precision=opts.mixed_precision,
                    ledger=self.ledger,
                )
                evals, X = rayleigh_ritz(
                    op,
                    X,
                    block_size=opts.subspace_block,
                    mixed_precision=opts.mixed_precision,
                    ledger=self.ledger,
                )
            a0 = float(evals[0])
            a = float(evals[-1]) + 0.01 * (b - float(evals[-1]))
        ch.psi = X
        ch.evals = evals
        if engine and hx0 is not None:
            ch.hpsi = hx0
            ch.hpsi_v = op.potential_free.copy()
        else:
            ch.hpsi = None
            ch.hpsi_v = None
