"""Electron density from Kohn-Sham orbitals (Algorithm 1's "DC" step).

Wavefunctions live in the Löwdin-orthonormalized basis on the free DoFs; the
nodal value of orbital ``i`` is ``u = D^{-1/2} psi_tilde`` (zero at Dirichlet
boundary nodes), so the density at a node is simply the occupation-weighted
sum of ``|u|^2`` — an O(M N) kernel the paper labels "DC" in Table 3.
"""

from __future__ import annotations

import numpy as np

from repro.fem.mesh import Mesh3D
from repro.hpc.flops import gemm_flops
from repro.obs import kernel_region

__all__ = ["orbitals_to_nodes", "density_from_channels", "atomic_guess_density"]


def orbitals_to_nodes(mesh: Mesh3D, psi_tilde: np.ndarray) -> np.ndarray:
    """Map Löwdin-basis orbital coefficients to full-node values."""
    out = np.zeros((mesh.nnodes,) + psi_tilde.shape[1:], dtype=psi_tilde.dtype)
    dinv = 1.0 / np.sqrt(mesh.mass_diag[mesh.free])
    out[mesh.free] = dinv[:, None] * psi_tilde if psi_tilde.ndim == 2 else dinv * psi_tilde
    return out


def density_from_channels(
    mesh: Mesh3D,
    channels,
    occupations: list[np.ndarray],
    ledger=None,
) -> np.ndarray:
    """Spin density (nnodes, 2) from per-channel orbitals and occupations.

    ``channels`` is a sequence with attributes ``psi`` (ndof, nstates),
    ``weight`` (k-point weight) and ``spin`` (0 or 1; spin-restricted
    channels pass spin=None and their density is split evenly).
    """
    rho = np.zeros((mesh.nnodes, 2), dtype=float)
    dinv2 = np.zeros(mesh.nnodes, dtype=float)
    dinv2[mesh.free] = 1.0 / mesh.mass_diag[mesh.free]
    with kernel_region("DC", ledger):
        for ch, occ in zip(channels, occupations):
            psi = ch.psi
            dens_free = np.einsum(
                "ij,j->i", np.abs(psi) ** 2, np.asarray(occ, dtype=float)
            )
            if ledger is not None:
                is_c = np.issubdtype(psi.dtype, np.complexfloating)
                ledger.add("DC", gemm_flops(psi.shape[0], 1, psi.shape[1], is_c))
            full = np.zeros(mesh.nnodes, dtype=float)
            full[mesh.free] = dens_free
            full *= dinv2 * ch.weight
            if ch.spin is None:
                rho[:, 0] += 0.5 * full
                rho[:, 1] += 0.5 * full
            else:
                rho[:, ch.spin] += full
    return rho


def atomic_guess_density(
    mesh: Mesh3D, config, polarization: float = 0.0, width_scale: float = 1.6
) -> np.ndarray:
    """Superposition-of-atoms initial spin density, normalized exactly.

    Each atom contributes a Gaussian carrying its valence charge with width
    ``width_scale * r_c``; the total is rescaled so the mesh integral equals
    the electron count, then split (1+p)/2 : (1-p)/2 between spins.
    """
    rho = np.zeros(mesh.nnodes, dtype=float)
    shifts = config._image_shifts()
    for el, pos in zip(config.elements, config.positions):
        sigma = width_scale * el.r_c
        norm = el.valence / (2.0 * np.pi * sigma**2) ** 1.5
        for s in shifts:
            d = mesh.node_coords - (pos + s)
            r2 = np.einsum("ij,ij->i", d, d)
            rho += norm * np.exp(-r2 / (2.0 * sigma**2))
    total = float(mesh.integrate(rho))
    rho *= config.n_electrons / total
    p = float(np.clip(polarization, -1.0, 1.0))
    return np.stack([0.5 * (1 + p) * rho, 0.5 * (1 - p) * rho], axis=1)
