"""Checkpoint / restart: persist ground states and mid-run loop state.

Production DFT runs at the paper's scale are restartable; this module
provides the laptop-scale equivalent at two granularities:

* **v1 (converged-state)** — :func:`save_checkpoint` /
  :func:`load_checkpoint` persist a converged ``SCFResult``;
  ``DFTCalculation.run(rho0=...)`` warm-starts a new SCF from the loaded
  density (typically converging in a couple of iterations).

* **v2 (mid-run)** — :func:`save_scf_state`, :func:`save_invdft_state` and
  :func:`save_mlxc_state` snapshot *all* loop-carried state of the three
  long-running drivers (SCF, inverse DFT, MLXC training) at an iteration
  boundary, so an interrupted run resumed via ``resume_from=`` reproduces
  the uninterrupted run **bit for bit**.  That contract dictates the
  contents: beyond the obvious density/wavefunctions it includes the
  Anderson mixer's history window, the Poisson solver's warm-start
  potential, eigensolver bound caches, optimizer moments, and the FLOP
  ledger, because each of those feeds back into later arithmetic.

v2 files are written atomically (temp file + ``os.replace``), so a run
killed mid-write leaves the previous checkpoint intact, never a torn one.
"""

from __future__ import annotations

import json
import os
import tempfile

import numpy as np

__all__ = [
    "save_checkpoint",
    "load_checkpoint",
    "load_initial_rho",
    "save_seed_density",
    "save_scf_state",
    "load_scf_state",
    "save_invdft_state",
    "load_invdft_state",
    "save_mlxc_state",
    "load_mlxc_state",
]

_FORMAT_VERSION = 1
_STATE_FORMAT_VERSION = 2


def save_checkpoint(
    path: str, mesh, result, include_wavefunctions: bool = False
) -> None:
    """Write an ``SCFResult`` checkpoint for the given mesh.

    ``include_wavefunctions`` additionally stores every channel's orbitals
    (larger files; only needed for band-structure-style post-processing).
    """
    data = {
        "format_version": _FORMAT_VERSION,
        "nnodes": mesh.nnodes,
        "ndof": mesh.ndof,
        "degree": mesh.degree,
        "lengths": mesh.lengths,
        "pbc": np.array(mesh.pbc),
        "rho_spin": result.rho_spin,
        "v_tot": result.v_tot,
        "v_xc_spin": result.v_xc_spin,
        "fermi_level": result.fermi_level,
        "energy": result.energy,
        "free_energy": result.free_energy,
        "converged": result.converged,
        "n_channels": len(result.channels),
    }
    for i, (ch, ev, occ) in enumerate(
        zip(result.channels, result.eigenvalues, result.occupations)
    ):
        data[f"kfrac_{i}"] = np.asarray(ch.kfrac)
        data[f"weight_{i}"] = ch.weight
        data[f"spin_{i}"] = -1 if ch.spin is None else ch.spin
        data[f"eigenvalues_{i}"] = np.asarray(ev)
        data[f"occupations_{i}"] = np.asarray(occ)
        if include_wavefunctions:
            data[f"psi_{i}"] = ch.psi
    np.savez_compressed(path, **data)


def load_checkpoint(path: str, mesh=None) -> dict:
    """Load a checkpoint; validates mesh compatibility when one is given.

    Returns a dict with the stored arrays; ``rho_spin`` can be passed
    straight to ``DFTCalculation.run(rho0=...)``.
    """
    with np.load(path, allow_pickle=False) as f:
        data = {k: f[k] for k in f.files}
    if int(data["format_version"]) != _FORMAT_VERSION:
        raise ValueError("unsupported checkpoint format version")
    if mesh is not None:
        if int(data["nnodes"]) != mesh.nnodes or int(data["degree"]) != mesh.degree:
            raise ValueError(
                "checkpoint was written for a different mesh "
                f"(nnodes {int(data['nnodes'])} vs {mesh.nnodes})"
            )
        if not np.allclose(data["lengths"], mesh.lengths):
            raise ValueError("checkpoint domain lengths do not match the mesh")
    out = dict(data)
    out["n_channels"] = int(data["n_channels"])
    out["channels"] = [
        {
            "kfrac": tuple(data[f"kfrac_{i}"]),
            "weight": float(data[f"weight_{i}"]),
            "spin": None if int(data[f"spin_{i}"]) < 0 else int(data[f"spin_{i}"]),
            "eigenvalues": data[f"eigenvalues_{i}"],
            "occupations": data[f"occupations_{i}"],
            "psi": data.get(f"psi_{i}"),
        }
        for i in range(out["n_channels"])
    ]
    return out


def save_seed_density(
    path: str, mesh, rho_spin: np.ndarray, metadata: dict | None = None
) -> None:
    """Persist a bare spin density as a warm-start seed artifact.

    Far lighter than a full checkpoint (no wavefunctions, no mixer
    state): just ``rho_spin`` plus the mesh identity needed to validate
    a later :func:`load_initial_rho`.  The screening driver's seed store
    and the serve runners write these for cross-job density reuse.
    """
    rho_spin = np.asarray(rho_spin, dtype=float)
    if rho_spin.shape[0] != mesh.nnodes:
        raise ValueError(
            f"rho_spin has {rho_spin.shape[0]} nodes, mesh has {mesh.nnodes}"
        )
    data = {
        "format_version": _STATE_FORMAT_VERSION,
        "kind": "rho",
        "nnodes": mesh.nnodes,
        "ndof": mesh.ndof,
        "degree": mesh.degree,
        "lengths": mesh.lengths,
        "pbc": np.array(mesh.pbc),
        "rho_spin": rho_spin,
        "metadata_json": _pack_json(metadata or {}),
    }
    _atomic_savez(path, data)


def load_initial_rho(path: str, mesh) -> np.ndarray:
    """Extract a seed density from any checkpoint file for a fresh SCF.

    Accepts v1 converged-state checkpoints, v2 mid-run SCF state files
    and bare seed-density artifacts (:func:`save_seed_density`) — the
    stored ``rho_spin`` of any of them can seed a new solve via
    ``run(rho0=...)``.  Mesh compatibility is always validated (nnodes,
    degree, domain lengths), so a seed from the wrong discretization
    fails loudly instead of producing a silently wrong warm start.
    """
    with np.load(path, allow_pickle=False) as f:
        version = int(f["format_version"])
        kind = f["kind"].item() if "kind" in f.files else None
        if kind == "rho":
            data = {k: f[k] for k in ("nnodes", "degree", "lengths", "rho_spin")}
    if version == _STATE_FORMAT_VERSION and kind == "rho":
        if mesh is not None:
            if (
                int(data["nnodes"]) != mesh.nnodes
                or int(data["degree"]) != mesh.degree
            ):
                raise ValueError(
                    "seed density was written for a different mesh "
                    f"(nnodes {int(data['nnodes'])} vs {mesh.nnodes})"
                )
            if not np.allclose(data["lengths"], mesh.lengths):
                raise ValueError(
                    "seed density domain lengths do not match the mesh"
                )
        return np.asarray(data["rho_spin"], dtype=float)
    if version == _STATE_FORMAT_VERSION and kind == "scf":
        return np.asarray(load_scf_state(path, mesh)["rho_spin"], dtype=float)
    if version == _FORMAT_VERSION:
        return np.asarray(load_checkpoint(path, mesh)["rho_spin"], dtype=float)
    raise ValueError(
        f"checkpoint at {path!r} holds no SCF density "
        f"(format_version={version}, kind={kind!r})"
    )


# ---------------------------------------------------------------------------
# v2: mid-run loop state (bit-for-bit resume)
# ---------------------------------------------------------------------------


def _atomic_savez(path: str, data: dict) -> None:
    """Write ``data`` as a compressed npz at ``path`` atomically.

    ``np.savez`` appends ``.npz`` to bare string paths, so the archive is
    written through an open file handle instead, to a temp file in the
    destination directory, then moved into place with ``os.replace``.  A
    kill at any point leaves either the old checkpoint or the new one —
    never a truncated file.
    """
    path = os.fspath(path)
    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp = tempfile.mkstemp(dir=directory, suffix=".ckpt.tmp")
    try:
        with os.fdopen(fd, "wb") as f:
            np.savez_compressed(f, **data)
            f.flush()
            os.fsync(f.fileno())
        os.replace(tmp, path)
    finally:
        if os.path.exists(tmp):
            os.remove(tmp)


def _pack_json(obj) -> np.ndarray:
    """JSON-encode ``obj`` into a 0-d unicode array (npz-storable without
    pickle; numpy scalars coerced to floats)."""
    return np.array(json.dumps(obj, default=float))


def _unpack_json(arr):
    return json.loads(arr.item() if getattr(arr, "ndim", 1) == 0 else str(arr))


def _load_state(path: str, kind: str) -> dict:
    with np.load(path, allow_pickle=False) as f:
        data = {k: f[k] for k in f.files}
    if int(data["format_version"]) != _STATE_FORMAT_VERSION:
        raise ValueError(
            f"unsupported mid-run checkpoint format version "
            f"{int(data['format_version'])} (expected {_STATE_FORMAT_VERSION})"
        )
    stored = data["kind"].item()
    if stored != kind:
        raise ValueError(
            f"checkpoint at {path!r} holds {stored!r} state, not {kind!r}"
        )
    return data


def save_scf_state(
    path: str,
    mesh,
    *,
    iteration: int,
    converged: bool,
    free_energy: float,
    rho_spin: np.ndarray,
    fermi_level: float,
    entropy: float,
    occupations: list,
    channels: list,
    mixer_rho: list,
    mixer_res: list,
    v_prev: np.ndarray | None = None,
    ledger_snapshot: dict | None = None,
    history: list | None = None,
    metadata: dict | None = None,
) -> None:
    """Snapshot the SCF loop at the end of ``iteration``.

    ``channels`` is a list of dicts with keys ``kfrac``, ``weight``,
    ``spin``, ``psi``, ``evals``, ``upper_bound``, ``bound_base``,
    ``bound_v`` and the fused-engine HX carry ``hpsi``/``hpsi_v`` (the
    driver builds these from its ``KSChannel`` objects).
    ``mixer_rho`` / ``mixer_res`` are the Anderson history window (oldest
    first; empty lists for a linear mixer), ``v_prev`` the Poisson
    warm-start potential, ``ledger_snapshot`` a ``FlopLedger.snapshot()``.
    Everything here is loop-carried state: omit any one piece and the
    resumed trajectory diverges from the uninterrupted run.
    """
    data: dict = {
        "format_version": _STATE_FORMAT_VERSION,
        "kind": "scf",
        "nnodes": mesh.nnodes,
        "ndof": mesh.ndof,
        "degree": mesh.degree,
        "lengths": mesh.lengths,
        "pbc": np.array(mesh.pbc),
        "iteration": int(iteration),
        "converged": bool(converged),
        "free_energy": float(free_energy),
        "fermi_level": float(fermi_level),
        "entropy": float(entropy),
        "rho_spin": rho_spin,
        "n_channels": len(channels),
        "history_json": _pack_json(history or []),
        "metadata_json": _pack_json(metadata or {}),
    }
    for i, (ch, occ) in enumerate(zip(channels, occupations)):
        if ch["psi"] is None or ch["evals"] is None:
            raise ValueError(
                "mid-run SCF checkpoints require solved channels "
                "(write them at iteration boundaries only)"
            )
        data[f"kfrac_{i}"] = np.asarray(ch["kfrac"], dtype=float)
        data[f"weight_{i}"] = float(ch["weight"])
        data[f"spin_{i}"] = -1 if ch["spin"] is None else int(ch["spin"])
        data[f"psi_{i}"] = ch["psi"]
        data[f"evals_{i}"] = np.asarray(ch["evals"])
        data[f"occ_{i}"] = np.asarray(occ)
        data[f"upper_bound_{i}"] = float(ch.get("upper_bound", 0.0))
        data[f"bound_base_{i}"] = float(ch.get("bound_base", 0.0))
        bv = ch.get("bound_v")
        data[f"has_bound_v_{i}"] = bv is not None
        if bv is not None:
            data[f"bound_v_{i}"] = bv
        # HX carry of the fused subspace engine (additive keys; files
        # written before the engine simply lack them and resume cold)
        hp = ch.get("hpsi")
        hpv = ch.get("hpsi_v")
        data[f"has_hpsi_{i}"] = hp is not None and hpv is not None
        if hp is not None and hpv is not None:
            data[f"hpsi_{i}"] = hp
            data[f"hpsi_v_{i}"] = hpv
    data["n_mix"] = len(mixer_rho)
    for j, (r, f_) in enumerate(zip(mixer_rho, mixer_res)):
        data[f"mix_rho_{j}"] = r
        data[f"mix_res_{j}"] = f_
    data["has_v_prev"] = v_prev is not None
    if v_prev is not None:
        data["v_prev"] = v_prev
    data["ledger_json"] = _pack_json(
        {k: list(v) for k, v in (ledger_snapshot or {}).items()}
    )
    _atomic_savez(path, data)


def load_scf_state(path: str, mesh=None) -> dict:
    """Load a mid-run SCF checkpoint (validates the mesh when given)."""
    data = _load_state(path, "scf")
    if mesh is not None:
        if int(data["nnodes"]) != mesh.nnodes or int(data["degree"]) != mesh.degree:
            raise ValueError(
                "SCF state checkpoint was written for a different mesh "
                f"(nnodes {int(data['nnodes'])} vs {mesh.nnodes})"
            )
        if not np.allclose(data["lengths"], mesh.lengths):
            raise ValueError("checkpoint domain lengths do not match the mesh")
    n_ch = int(data["n_channels"])
    channels = []
    occupations = []
    for i in range(n_ch):
        channels.append(
            {
                "kfrac": tuple(float(x) for x in data[f"kfrac_{i}"]),
                "weight": float(data[f"weight_{i}"]),
                "spin": None if int(data[f"spin_{i}"]) < 0 else int(data[f"spin_{i}"]),
                "psi": data[f"psi_{i}"],
                "evals": data[f"evals_{i}"],
                "upper_bound": float(data[f"upper_bound_{i}"]),
                "bound_base": float(data[f"bound_base_{i}"]),
                "bound_v": data[f"bound_v_{i}"] if bool(data[f"has_bound_v_{i}"]) else None,
                "hpsi": (
                    data[f"hpsi_{i}"]
                    if bool(data.get(f"has_hpsi_{i}", False))
                    else None
                ),
                "hpsi_v": (
                    data[f"hpsi_v_{i}"]
                    if bool(data.get(f"has_hpsi_{i}", False))
                    else None
                ),
            }
        )
        occupations.append(data[f"occ_{i}"])
    n_mix = int(data["n_mix"])
    ledger = {
        k: tuple(v) for k, v in _unpack_json(data["ledger_json"]).items()
    }
    return {
        "iteration": int(data["iteration"]),
        "converged": bool(data["converged"]),
        "free_energy": float(data["free_energy"]),
        "fermi_level": float(data["fermi_level"]),
        "entropy": float(data["entropy"]),
        "rho_spin": data["rho_spin"],
        "channels": channels,
        "occupations": occupations,
        "mixer_rho": [data[f"mix_rho_{j}"] for j in range(n_mix)],
        "mixer_res": [data[f"mix_res_{j}"] for j in range(n_mix)],
        "v_prev": data["v_prev"] if bool(data["has_v_prev"]) else None,
        "ledger_snapshot": ledger,
        "history": _unpack_json(data["history_json"]),
        "metadata": _unpack_json(data["metadata_json"]),
    }


def save_invdft_state(
    path: str,
    *,
    nnodes: int,
    iteration: int,
    v_xc: np.ndarray,
    v_backup: np.ndarray,
    err: float,
    err_prev: float,
    eta: float,
    psi: list,
    evals: list,
    history: list | None = None,
    metadata: dict | None = None,
) -> None:
    """Snapshot the inverse-DFT outer loop at the end of ``iteration``.

    ``psi`` / ``evals`` are the per-spin wavefunctions and eigenvalues
    (the eigensolver warm start); ``eta``, ``err_prev`` and the overshoot
    revert potential ``v_backup`` drive the adaptive step-size controller,
    so all three are loop-carried.
    """
    data: dict = {
        "format_version": _STATE_FORMAT_VERSION,
        "kind": "invdft",
        "nnodes": int(nnodes),
        "iteration": int(iteration),
        "v_xc": v_xc,
        "v_backup": v_backup,
        "err": float(err),
        "err_prev": float(err_prev),
        "eta": float(eta),
        "n_spin": len(psi),
        "history_json": _pack_json(history or []),
        "metadata_json": _pack_json(metadata or {}),
    }
    for s, (p, e) in enumerate(zip(psi, evals)):
        if p is None or e is None:
            raise ValueError("invDFT checkpoints require solved spin channels")
        data[f"psi_{s}"] = p
        data[f"evals_{s}"] = np.asarray(e)
    _atomic_savez(path, data)


def load_invdft_state(path: str, nnodes: int | None = None) -> dict:
    """Load a mid-run inverse-DFT checkpoint."""
    data = _load_state(path, "invdft")
    if nnodes is not None and int(data["nnodes"]) != int(nnodes):
        raise ValueError(
            "invDFT checkpoint was written for a different mesh "
            f"(nnodes {int(data['nnodes'])} vs {nnodes})"
        )
    n_spin = int(data["n_spin"])
    return {
        "iteration": int(data["iteration"]),
        "v_xc": data["v_xc"],
        "v_backup": data["v_backup"],
        "err": float(data["err"]),
        "err_prev": float(data["err_prev"]),
        "eta": float(data["eta"]),
        "psi": [data[f"psi_{s}"] for s in range(n_spin)],
        "evals": [data[f"evals_{s}"] for s in range(n_spin)],
        "history": _unpack_json(data["history_json"]),
        "metadata": _unpack_json(data["metadata_json"]),
    }


def save_mlxc_state(
    path: str,
    *,
    epoch: int,
    theta: np.ndarray,
    opt_state: dict,
    history: list | None = None,
    metadata: dict | None = None,
) -> None:
    """Snapshot MLXC training after ``epoch`` (post optimizer step).

    ``opt_state`` is the optimizer's ``state_dict()`` — for Adam the first
    and second moments plus the step counter, all of which shape every
    later parameter update.
    """
    data: dict = {
        "format_version": _STATE_FORMAT_VERSION,
        "kind": "mlxc",
        "epoch": int(epoch),
        "theta": theta,
        "opt_t": int(opt_state.get("t", 0)),
        "history_json": _pack_json(history or []),
        "metadata_json": _pack_json(metadata or {}),
    }
    for key in ("m", "v"):
        val = opt_state.get(key)
        data[f"has_opt_{key}"] = val is not None
        if val is not None:
            data[f"opt_{key}"] = val
    _atomic_savez(path, data)


def load_mlxc_state(path: str, n_params: int | None = None) -> dict:
    """Load an MLXC training checkpoint."""
    data = _load_state(path, "mlxc")
    theta = data["theta"]
    if n_params is not None and theta.size != int(n_params):
        raise ValueError(
            "MLXC checkpoint parameter count does not match the network "
            f"({theta.size} vs {n_params})"
        )
    opt_state = {
        "t": int(data["opt_t"]),
        "m": data["opt_m"] if bool(data["has_opt_m"]) else None,
        "v": data["opt_v"] if bool(data["has_opt_v"]) else None,
    }
    return {
        "epoch": int(data["epoch"]),
        "theta": theta,
        "opt_state": opt_state,
        "history": _unpack_json(data["history_json"]),
        "metadata": _unpack_json(data["metadata_json"]),
    }
