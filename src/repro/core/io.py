"""Checkpoint / restart: persist converged ground states to ``.npz``.

Production DFT runs at the paper's scale are restartable; this module
provides the laptop-scale equivalent: the converged density (and optionally
the wavefunctions) are saved with enough metadata to validate that a
restart matches its mesh, and ``DFTCalculation.run(rho0=...)`` warm-starts
the SCF from the loaded density (typically converging in a couple of
iterations).
"""

from __future__ import annotations

import numpy as np

__all__ = ["save_checkpoint", "load_checkpoint"]

_FORMAT_VERSION = 1


def save_checkpoint(
    path: str, mesh, result, include_wavefunctions: bool = False
) -> None:
    """Write an ``SCFResult`` checkpoint for the given mesh.

    ``include_wavefunctions`` additionally stores every channel's orbitals
    (larger files; only needed for band-structure-style post-processing).
    """
    data = {
        "format_version": _FORMAT_VERSION,
        "nnodes": mesh.nnodes,
        "ndof": mesh.ndof,
        "degree": mesh.degree,
        "lengths": mesh.lengths,
        "pbc": np.array(mesh.pbc),
        "rho_spin": result.rho_spin,
        "v_tot": result.v_tot,
        "v_xc_spin": result.v_xc_spin,
        "fermi_level": result.fermi_level,
        "energy": result.energy,
        "free_energy": result.free_energy,
        "converged": result.converged,
        "n_channels": len(result.channels),
    }
    for i, (ch, ev, occ) in enumerate(
        zip(result.channels, result.eigenvalues, result.occupations)
    ):
        data[f"kfrac_{i}"] = np.asarray(ch.kfrac)
        data[f"weight_{i}"] = ch.weight
        data[f"spin_{i}"] = -1 if ch.spin is None else ch.spin
        data[f"eigenvalues_{i}"] = np.asarray(ev)
        data[f"occupations_{i}"] = np.asarray(occ)
        if include_wavefunctions:
            data[f"psi_{i}"] = ch.psi
    np.savez_compressed(path, **data)


def load_checkpoint(path: str, mesh=None) -> dict:
    """Load a checkpoint; validates mesh compatibility when one is given.

    Returns a dict with the stored arrays; ``rho_spin`` can be passed
    straight to ``DFTCalculation.run(rho0=...)``.
    """
    with np.load(path, allow_pickle=False) as f:
        data = {k: f[k] for k in f.files}
    if int(data["format_version"]) != _FORMAT_VERSION:
        raise ValueError("unsupported checkpoint format version")
    if mesh is not None:
        if int(data["nnodes"]) != mesh.nnodes or int(data["degree"]) != mesh.degree:
            raise ValueError(
                "checkpoint was written for a different mesh "
                f"(nnodes {int(data['nnodes'])} vs {mesh.nnodes})"
            )
        if not np.allclose(data["lengths"], mesh.lengths):
            raise ValueError("checkpoint domain lengths do not match the mesh")
    out = dict(data)
    out["n_channels"] = int(data["n_channels"])
    out["channels"] = [
        {
            "kfrac": tuple(data[f"kfrac_{i}"]),
            "weight": float(data[f"weight_{i}"]),
            "spin": None if int(data[f"spin_{i}"]) < 0 else int(data[f"spin_{i}"]),
            "eigenvalues": data[f"eigenvalues_{i}"],
            "occupations": data[f"occupations_{i}"],
            "psi": data.get(f"psi_{i}"),
        }
        for i in range(out["n_channels"])
    ]
    return out
