"""Chebyshev-filtered subspace iteration (the paper's CF step, Algorithm 1).

``chebyshev_filter`` applies the scaled-and-shifted Chebyshev polynomial
``T_m`` to a block of wavefunctions so that the occupied ("wanted") part of
the spectrum, mapped to (-inf, -1), is amplified relative to the unwanted
part mapped into [-1, 1].  The filter is applied to *column blocks* of size
``B_f`` — the knob whose arithmetic-intensity effect the paper studies in
Fig. 4 — and each block is a sequence of cell-level batched GEMMs
(:mod:`repro.fem.assembly`).

Spectral bounds come from a k-step Lanczos estimate of the largest
eigenvalue (upper bound ``b``) and the previous iteration's Ritz values
(filter cut ``a``, scaling point ``a0``), as in Zhou et al. [44].
"""

from __future__ import annotations

import numpy as np

from repro.obs import kernel_region
from repro.resilience import faults as _faults
from repro.tools import sanitize as _sanitize

__all__ = ["lanczos_upper_bound", "chebyshev_filter", "filter_block"]


def lanczos_upper_bound(op, k: int = 12, seed: int = 7) -> float:
    """Safe upper bound of the spectrum of the Hermitian operator ``op``.

    Runs ``k`` Lanczos steps from a random vector and returns the largest
    Ritz value plus the residual norm — a guaranteed-ish upper bound in
    exact arithmetic (Paige-style bound), with a small safety factor.
    """
    n = op.n
    rng = np.random.default_rng(seed)
    v = rng.standard_normal(n).astype(np.float64)
    if np.issubdtype(op.dtype, np.complexfloating):
        v = v + 1j * rng.standard_normal(n)
    v /= np.linalg.norm(v)
    alphas, betas = [], []
    v_prev = np.zeros_like(v)
    beta = 0.0
    for _ in range(k):
        w = op.apply(v)
        alpha = float(np.real(np.vdot(v, w)))
        w = w - alpha * v - beta * v_prev
        alphas.append(alpha)
        beta = float(np.linalg.norm(w))
        betas.append(beta)
        if beta < 1e-12:
            break
        v_prev = v
        v = w / beta
    T = np.diag(alphas)
    off = betas[: len(alphas) - 1]
    T += np.diag(off, 1) + np.diag(off, -1)
    ritz = np.linalg.eigvalsh(T)
    return float(ritz[-1] + betas[len(alphas) - 1] + 1e-8)


def filter_block(
    op, X: np.ndarray, m: int, a: float, b: float, a0: float, workspace=None,
    hx0: np.ndarray | None = None,
) -> np.ndarray:
    """Scaled Chebyshev filter of degree ``m`` on one wavefunction block.

    Maps [a, b] (unwanted spectrum) to [-1, 1]; eigencomponents below ``a``
    are amplified by T_m of their mapped (< -1) coordinate.  ``a0`` (an
    estimate of the lowest eigenvalue) sets the scaling that prevents
    overflow for large ``m``.

    ``hx0``, when given, is a precomputed ``H X`` substituted for the first
    operator application of the recurrence (the HX carried out of the fused
    CholGS→RR stage, adjusted for the potential update); it is read, never
    written.  This is the elision that makes the subspace engine one
    ``op.apply`` per ChFES iteration cheaper.

    With a workspace (defaulting to ``op.workspace`` when the operator has
    one, e.g. :class:`~repro.fem.assembly.KSOperator`) the three-term
    recurrence ping-pongs between pooled blocks via ``op.apply(..., out=)``
    instead of allocating a fresh block per term; every arithmetic step
    keeps the reference operation order, so the result is bit-for-bit
    identical.  The returned array is then workspace-owned — valid until
    the next ``filter_block`` on the same thread.
    """
    if m < 1:
        raise ValueError("filter degree must be >= 1")
    e = (b - a) / 2.0
    c = (b + a) / 2.0
    sigma = e / (a0 - c)
    sigma1 = sigma
    ws = workspace if workspace is not None else getattr(op, "workspace", None)
    if ws is None or not ws.enabled:
        # Overlap-capable operators (the process-rank backend) expose
        # apply_begin/apply_finish: the halo exchange + cell GEMMs fly on
        # the rank fleet while this side precomputes the recurrence's
        # local terms (c·Y and σσ₂·X).  Same operands, same operation
        # order once assembled — bit-for-bit equal to the eager schedule,
        # which REPRO_OVERLAP=0 selects.
        overlap = bool(getattr(op, "overlap", False)) and hasattr(op, "apply_begin")
        if overlap:
            if hx0 is None:
                pending = op.apply_begin(X)
                cX = c * X
                HX = op.apply_finish(pending)
            else:
                HX, cX = hx0, c * X
            Y = (HX - cX) * (sigma1 / e)
            for _ in range(2, m + 1):
                sigma2 = 1.0 / (2.0 / sigma1 - sigma)
                pending = op.apply_begin(Y)
                cY = c * Y
                sX = (sigma * sigma2) * X
                HY = op.apply_finish(pending)
                Ynew = (HY - cY) * (2.0 * sigma2 / e) - sX
                X, Y = Y, Ynew
                sigma = sigma2
            if _faults._PLAN is not None:  # reprochaos site (no-op unarmed)
                _faults.fault_point("filter_block", Y)
            return Y
        HX = op.apply(X) if hx0 is None else hx0
        Y = (HX - c * X) * (sigma1 / e)
        for _ in range(2, m + 1):
            sigma2 = 1.0 / (2.0 / sigma1 - sigma)
            Ynew = (op.apply(Y) - c * Y) * (2.0 * sigma2 / e) - (sigma * sigma2) * X
            X, Y = Y, Ynew
            sigma = sigma2
        if _faults._PLAN is not None:  # reprochaos site (no-op unarmed)
            _faults.fault_point("filter_block", Y)
        return Y
    dt = np.result_type(op.dtype, X.dtype)
    U = ws.get("cf_u", X.shape, dt)
    # three rotating term blocks: X_k, Y_k and the in-flight Y_{k+1}
    bufs = [ws.get(f"cf_{i}", X.shape, dt) for i in range(3)]
    # Y = (H X - c X) * (sigma1 / e); a carried H X skips the first apply
    if hx0 is None:
        Y = op.apply(X, out=bufs[0])
    else:
        Y = bufs[0]
        np.copyto(Y, hx0)
    np.multiply(c, X, out=U)
    Y -= U
    Y *= sigma1 / e
    # cyclic rotation: after i steps X = bufs[(i-2) % 3], Y = bufs[(i-1) % 3],
    # so bufs[i % 3] is always the free block (the input X never joins)
    for i in range(1, m):
        sigma2 = 1.0 / (2.0 / sigma1 - sigma)
        # Ynew = (H Y - c Y) * (2 sigma2 / e) - (sigma sigma2) * X
        Ynew = op.apply(Y, out=bufs[i % 3])
        np.multiply(c, Y, out=U)
        Ynew -= U
        Ynew *= 2.0 * sigma2 / e
        np.multiply(sigma * sigma2, X, out=U)
        Ynew -= U
        X, Y = Y, Ynew
        sigma = sigma2
    if _faults._PLAN is not None:  # reprochaos site (no-op unarmed)
        _faults.fault_point("filter_block", Y)
    return Y


def chebyshev_filter(
    op,
    X: np.ndarray,
    m: int,
    a: float,
    b: float,
    a0: float,
    block_size: int | None = None,
    ledger=None,
    workspace=None,
    hx0: np.ndarray | None = None,
) -> np.ndarray:
    """Apply the Chebyshev filter in column blocks of size ``block_size``.

    This mirrors the paper's blocked CF kernel: each block is filtered
    independently (allowing compute/communication overlap on the real
    machine); numerically the result is identical to filtering all columns
    at once.  ``workspace`` is forwarded to :func:`filter_block` (which
    falls back to ``op.workspace`` when available).  ``hx0``, when given,
    is the precomputed ``H X`` for the *whole* block ``X``; each column
    block reads its slice in place of the recurrence's first apply.
    """
    n, nvec = X.shape
    bs = nvec if block_size is None else max(1, int(block_size))
    out = np.empty_like(X)
    with kernel_region("CF", ledger, degree=m, block_size=bs, nvec=nvec):
        for start in range(0, nvec, bs):
            sl = slice(start, min(start + bs, nvec))
            blk_hx0 = None if hx0 is None else hx0[:, sl]
            blk = filter_block(
                op, X[:, sl], m, a, b, a0, workspace=workspace, hx0=blk_hx0
            )
            san = _sanitize._STATE
            if san is not None:
                # workspace pools are thread-local; a block owned by another
                # thread means a pool leaked across the channel workers
                san.assert_owned(blk, context="chebyshev_filter block result")
            out[:, sl] = blk
    return out
