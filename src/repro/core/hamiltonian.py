"""Effective-potential construction: electrostatics + XC ("DH" and "EP").

The total electrostatic potential is obtained from a *single* Poisson solve
for the neutral charge ``rho - rho_core``, where ``rho_core`` is the sum of
the Gaussian core charges whose analytic potential is the soft local
pseudopotential of :mod:`repro.atoms.pseudo`.  This gives ``v_N + v_H``
together, works identically for isolated (multipole Dirichlet) and periodic
(zero-mean) systems, and makes the total energy expressible without Ewald
summation:

.. math::

    E = \\sum_i f_i\\epsilon_i - \\int \\sum_s \\rho_s v_{eff}^s
        + \\tfrac12\\int(\\rho-\\rho_c)\\,v_{tot} - E_{self} + E_{xc} - TS,

with the Gaussian self-energy ``E_self = sum_a Z_a^2 / (r_{c,a} sqrt(2 pi))``.
"""

from __future__ import annotations

import numpy as np

from repro.atoms.pseudo import AtomicConfiguration
from repro.fem.mesh import Mesh3D
from repro.fem.poisson import PoissonSolver, multipole_boundary_values
from repro.obs import kernel_region

__all__ = ["Electrostatics", "gaussian_self_energy"]


def gaussian_self_energy(config: AtomicConfiguration) -> float:
    """Sum of Gaussian core self-energies, ``sum_a Z_a^2/(r_c,a sqrt(2 pi))``."""
    return sum(
        e.valence**2 / (e.r_c * np.sqrt(2.0 * np.pi)) for e in config.elements
    )


class Electrostatics:
    """Total electrostatic potential and energy for a given configuration."""

    def __init__(
        self, mesh: Mesh3D, config: AtomicConfiguration, ledger=None
    ) -> None:
        self.mesh = mesh
        self.config = config
        # guard against the classic footgun of pairing a prebuilt mesh with
        # an unshifted configuration: every atom must lie inside the domain
        # (with a little clearance from Dirichlet boundaries)
        lengths = mesh.lengths
        pos = config.positions
        for a in range(3):
            if config.pbc[a]:
                continue
            if np.any(pos[:, a] < 1e-9) or np.any(pos[:, a] > lengths[a] - 1e-9):
                raise ValueError(
                    f"atom positions leave the mesh domain along axis {a} "
                    f"(domain [0, {lengths[a]:.3f}]); pass the shifted "
                    "configuration returned by auto_mesh, or build the mesh "
                    "around these coordinates"
                )
        self.solver = PoissonSolver(mesh, ledger=ledger)
        self.ledger = ledger
        self._v_prev: np.ndarray | None = None
        self.core_density = self._build_core_density()
        self.self_energy = gaussian_self_energy(config)

    #: periodic-image chunk of the vectorized core-density build; bounds the
    #: (chunk, nnodes, 3) distance tensor to a few MB even on large meshes
    _CORE_SHIFT_CHUNK = 8

    def _build_core_density(self) -> np.ndarray:
        """Gaussian core charge density, renormalized to the exact valence.

        Renormalization removes the (small) quadrature error in the sampled
        Gaussians so that the Poisson problem sees an exactly neutral system.

        The distances to all periodic images of an atom are evaluated in one
        broadcasted (chunked) computation; the per-image accumulation stays
        a scalar loop so the result is bit-identical to the per-shift
        reference implementation.
        """
        mesh, config = self.mesh, self.config
        rho_c = np.zeros(mesh.nnodes, dtype=float)
        shifts = np.asarray(config._image_shifts(), dtype=float).reshape(-1, 3)
        coords = mesh.node_coords
        for el, pos in zip(config.elements, config.positions):
            sigma = el.r_c / np.sqrt(2.0)
            norm = el.valence / (2.0 * np.pi * sigma**2) ** 1.5
            for lo in range(0, shifts.shape[0], self._CORE_SHIFT_CHUNK):
                chunk = shifts[lo : lo + self._CORE_SHIFT_CHUNK]
                d = coords[None, :, :] - (pos + chunk)[:, None, :]
                r2 = np.einsum("sij,sij->si", d, d)
                g = norm * np.exp(-r2 / (2.0 * sigma**2))
                for row in g:
                    rho_c += row
        total = float(mesh.integrate(rho_c))
        target = float(config.n_electrons)
        if total <= 0:
            raise RuntimeError("core density vanished — mesh far from atoms?")
        return rho_c * (target / total)

    def solve(self, rho_total: np.ndarray, tol: float = 1e-9) -> np.ndarray:
        """Return ``v_tot = v_N + v_H`` for electron density ``rho_total``."""
        net = rho_total - self.core_density
        with kernel_region("EP", self.ledger):
            bc = None
            if self.mesh.free.size != self.mesh.nnodes:
                bc = multipole_boundary_values(self.mesh, net)
            # v_tot is the potential *energy* of an electron: the Coulomb
            # field of the charge system (electrons negative, cores positive)
            # is -phi[net], and multiplying by the electron charge -1 gives
            # exactly the potential of `net` itself.
            res = self.solver.solve(
                net, boundary_values=bc, tol=tol, x0=self._v_prev
            )
        self._v_prev = res.potential
        return res.potential

    @property
    def warm_start(self) -> np.ndarray | None:
        """Previous Poisson solution, the PCG warm start of the next solve.

        Loop-carried state: a mid-run checkpoint must persist it, or a
        resumed SCF takes a different PCG trajectory (same answer within
        ``tol``, different bits) than the uninterrupted run.
        """
        return self._v_prev

    @warm_start.setter
    def warm_start(self, v: np.ndarray | None) -> None:
        self._v_prev = None if v is None else np.asarray(v)

    def electrostatic_energy(self, rho_total: np.ndarray, v_tot: np.ndarray) -> float:
        """``(1/2) int (rho - rho_c) v_tot  -  E_self``.

        With ``v_tot`` the electron potential energy (potential of
        ``rho - rho_c``), the classical energy of the full charge system is
        ``(1/2) int n_charge phi = (1/2) int (rho - rho_c) v_tot``; removing
        the unphysical Gaussian self-interactions leaves the physical
        E_H + E_ext + E_nn(smeared).
        """
        net = rho_total - self.core_density
        return 0.5 * float(self.mesh.integrate(net * v_tot)) - self.self_energy
