"""Core DFT-FE-MLXC solver: ChFES eigensolver, SCF, public API."""

from .bands import band_structure, kpath
from .chebyshev import chebyshev_filter, filter_block, lanczos_upper_bound
from .density import atomic_guess_density, density_from_channels, orbitals_to_nodes
from .dos import density_of_states, integrated_dos
from .energy import EnergyBreakdown, total_energy
from .forces import RelaxationResult, hellmann_feynman_forces, nonlocal_forces, relax
from .hamiltonian import Electrostatics, gaussian_self_energy
from .io import load_initial_rho, save_seed_density
from .kerker import KerkerPreconditioner
from .ksdft import DFTCalculation, auto_mesh, homo_lumo_gap
from .mixing import AndersonMixer, LinearMixer
from .occupations import OccupationSet, fermi_dirac, find_fermi_level
from .orthonorm import blocked_gram, blocked_rotate, cholesky_orthonormalize
from .rayleigh_ritz import projected_hamiltonian, rayleigh_ritz
from .scf import KSChannel, SCFDriver, SCFOptions, SCFResult
from .subspace import (
    adjust_carried_hx,
    batched_gram,
    batched_rotate,
    fused_cholgs_rr,
    subspace_engine_enabled,
)

__all__ = [
    "AndersonMixer",
    "DFTCalculation",
    "Electrostatics",
    "EnergyBreakdown",
    "KSChannel",
    "KerkerPreconditioner",
    "LinearMixer",
    "OccupationSet",
    "RelaxationResult",
    "SCFDriver",
    "SCFOptions",
    "SCFResult",
    "adjust_carried_hx",
    "atomic_guess_density",
    "band_structure",
    "auto_mesh",
    "batched_gram",
    "batched_rotate",
    "blocked_gram",
    "blocked_rotate",
    "chebyshev_filter",
    "cholesky_orthonormalize",
    "density_from_channels",
    "density_of_states",
    "fermi_dirac",
    "filter_block",
    "find_fermi_level",
    "fused_cholgs_rr",
    "gaussian_self_energy",
    "hellmann_feynman_forces",
    "integrated_dos",
    "homo_lumo_gap",
    "kpath",
    "load_initial_rho",
    "nonlocal_forces",
    "lanczos_upper_bound",
    "orbitals_to_nodes",
    "projected_hamiltonian",
    "relax",
    "rayleigh_ritz",
    "save_seed_density",
    "subspace_engine_enabled",
    "total_energy",
]
