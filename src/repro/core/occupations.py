"""Fermi-Dirac occupations, chemical potential search, smearing entropy.

The paper's benchmark systems are metallic (Mg alloys, quasicrystals), so
fractional occupations with Fermi-Dirac smearing are essential; the SCF
minimizes the Mermin free energy ``F = E - T S``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.optimize import brentq

__all__ = ["fermi_dirac", "find_fermi_level", "smearing_entropy", "OccupationSet"]


def fermi_dirac(eigenvalues: np.ndarray, mu: float, temperature: float) -> np.ndarray:
    """Occupation f(eps) = 1 / (1 + exp((eps - mu)/kT)); kT in Hartree.

    ``temperature`` is k_B T in Hartree.  A zero temperature gives a sharp
    step (degenerate states at the Fermi level get occupation 1/2).
    """
    eps = np.asarray(eigenvalues, dtype=float)
    if temperature <= 0.0:
        f = np.where(eps < mu, 1.0, 0.0)
        f[np.isclose(eps, mu, atol=1e-12)] = 0.5
        return f
    x = (eps - mu) / temperature
    x = np.clip(x, -500.0, 500.0)
    return 1.0 / (1.0 + np.exp(x))


@dataclass
class OccupationSet:
    """Occupations for a set of (k-point, spin) channels."""

    occupations: list[np.ndarray]  #: per channel, same shapes as eigenvalues
    fermi_level: float
    entropy: float  #: dimensionless smearing entropy S/k_B (total, weighted)


def find_fermi_level(
    eigenvalues: list[np.ndarray],
    weights: list[float],
    n_electrons: float,
    temperature: float,
    degeneracy: float = 2.0,
) -> OccupationSet:
    """Find mu such that the weighted occupation sum equals ``n_electrons``.

    Parameters
    ----------
    eigenvalues:
        One array of eigenvalues per (k-point, spin) channel.
    weights:
        Channel weights (k-point weights; they must sum to 1 per spin).
    degeneracy:
        2 for spin-restricted channels, 1 for spin-polarized ones.
    """
    all_eps = np.concatenate([np.asarray(e, float) for e in eigenvalues])
    if all_eps.size == 0:
        raise ValueError("no eigenvalues supplied")
    max_electrons = degeneracy * sum(
        w * np.asarray(e).size for e, w in zip(eigenvalues, weights)
    )
    if n_electrons > max_electrons + 1e-9:
        raise ValueError(
            f"cannot place {n_electrons} electrons in {max_electrons} weighted states"
        )

    def count(mu: float) -> float:
        return (
            sum(
                w * degeneracy * fermi_dirac(e, mu, temperature).sum()
                for e, w in zip(eigenvalues, weights)
            )
            - n_electrons
        )

    spread = max(50.0 * max(temperature, 1e-3), 1.0)
    lo, hi = float(all_eps.min()) - spread, float(all_eps.max()) + spread
    mu = float(brentq(count, lo, hi, xtol=1e-13))

    occs: list[np.ndarray] = []
    entropy = 0.0
    for e, w in zip(eigenvalues, weights):
        f = fermi_dirac(e, mu, temperature)
        occs.append(degeneracy * f)
        if temperature > 0:
            fc = np.clip(f, 1e-300, 1 - 1e-16)
            s = -(fc * np.log(fc) + (1 - fc) * np.log1p(-fc))
            entropy += w * degeneracy * float(np.sum(np.where((f > 0) & (f < 1), s, 0.0)))
    return OccupationSet(occupations=occs, fermi_level=mu, entropy=entropy)


def smearing_entropy(occ_fraction: np.ndarray) -> float:
    """Entropy contribution -sum(f ln f + (1-f) ln(1-f)) of one channel."""
    f = np.clip(np.asarray(occ_fraction, float), 0.0, 1.0)
    inner = (f > 1e-300) & (f < 1.0 - 1e-16)
    fc = f[inner]
    return float(-(fc * np.log(fc) + (1 - fc) * np.log1p(-fc)).sum())
