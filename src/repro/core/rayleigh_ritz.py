"""Rayleigh-Ritz projection (RR, Algorithm 1 step 3).

* **RR-P** — projected Hamiltonian ``Hhat = X^H (H X)`` via blocked GEMMs
  with the same FP64-diagonal / FP32-off-diagonal mixed-precision layout as
  CholGS-S (Hermiticity exploited, alpha=1).
* **RR-D** — dense diagonalization of ``Hhat`` (FLOPs uncounted).
* **RR-SR** — subspace rotation ``X <- X Q`` (alpha=2, mixed precision).

``projected_hamiltonian`` dispatches to the batched engine in
:mod:`.subspace` unless ``REPRO_SLOW_SUBSPACE=1`` selects the reference
block loop.  The SCF driver fuses this stage with CholGS via
:func:`repro.core.subspace.fused_cholgs_rr`, which reuses the operator
application issued for the Chebyshev filter; the standalone
:func:`rayleigh_ritz` entry point below keeps the self-contained
``op.apply`` for callers that arrive without ``HX``.
"""

from __future__ import annotations

import numpy as np

from repro.hpc.flops import gemm_flops
from repro.obs import kernel_region
from repro.precision import f32_dtype
from repro.tools.contracts import dtype_contract, shape_contract

from .orthonorm import blocked_rotate
from .subspace import batched_gram, subspace_engine_enabled

__all__ = ["projected_hamiltonian", "rayleigh_ritz"]


@shape_contract(X=("n", "nvec"), HX=("n", "nvec"), returns=("nvec", "nvec"))
@dtype_contract(X="inexact", preserves="X")
def projected_hamiltonian(
    X: np.ndarray,
    HX: np.ndarray,
    block_size: int = 128,
    mixed_precision: bool = False,
    ledger=None,
) -> np.ndarray:
    """Hermitian projection ``Hhat = X^H HX`` by blocks (kernel RR-P)."""
    if subspace_engine_enabled():
        Hp = batched_gram(
            X,
            HX,
            block_size=block_size,
            mixed_precision=mixed_precision,
            ledger=ledger,
            kernel="RR-P",
        )
        return 0.5 * (Hp + Hp.conj().T)
    return _reference_projected_hamiltonian(
        X,
        HX,
        block_size=block_size,
        mixed_precision=mixed_precision,
        ledger=ledger,
    )


def _reference_projected_hamiltonian(
    X: np.ndarray,
    HX: np.ndarray,
    block_size: int = 128,
    mixed_precision: bool = False,
    ledger=None,
) -> np.ndarray:
    """Reference per-(i, j)-block projection loop (``REPRO_SLOW_SUBSPACE=1``)."""
    n, nvec = X.shape
    is_complex = np.issubdtype(X.dtype, np.complexfloating)
    f32 = f32_dtype(X.dtype)
    Hp = np.zeros((nvec, nvec), dtype=X.dtype)
    starts = list(range(0, nvec, block_size))
    with kernel_region("RR-P", ledger, block_size=block_size, nvec=nvec):
        for i in starts:
            si = slice(i, min(i + block_size, nvec))
            for j in starts:
                if j < i:
                    continue
                sj = slice(j, min(j + block_size, nvec))
                offdiag = j > i
                if mixed_precision and offdiag:
                    # RR-P whitelisted downcast: off-diagonal projected-
                    # Hamiltonian blocks vanish as the subspace converges to
                    # an invariant one, bounding the FP32 error by the
                    # residual norm (paper Sec 5.4.1).
                    blk32 = X[:, si].astype(f32).conj().T @ HX[:, sj].astype(f32)  # reprolint: disable=R012
                    blk = blk32.astype(X.dtype)
                    prec = "fp32"
                else:
                    blk = X[:, si].conj().T @ HX[:, sj]
                    prec = "fp64"
                Hp[si, sj] = blk
                if offdiag:
                    Hp[sj, si] = blk.conj().T
                if ledger is not None:
                    ledger.add(
                        "RR-P",
                        gemm_flops(si.stop - si.start, sj.stop - sj.start, n, is_complex),
                        precision=prec,
                    )
    # Hermitize the diagonal blocks (round-off) for a clean eigh input.
    Hp = 0.5 * (Hp + Hp.conj().T)
    return Hp


def rayleigh_ritz(
    op,
    X: np.ndarray,
    block_size: int = 128,
    mixed_precision: bool = False,
    ledger=None,
) -> tuple[np.ndarray, np.ndarray]:
    """Project, diagonalize, rotate.  Returns (eigenvalues, rotated X).

    ``X`` must be orthonormal on entry (CholGS output).  The application of
    ``H`` to the subspace is charged to the CF/cell-GEMM ledger by the
    operator itself.  This standalone entry point issues its own
    ``op.apply``; the SCF hot path instead uses
    :func:`repro.core.subspace.fused_cholgs_rr`, which rotates a
    precomputed ``H W`` and skips this application entirely.
    """
    HX = op.apply(X)
    Hp = projected_hamiltonian(
        X, HX, block_size=block_size, mixed_precision=mixed_precision, ledger=ledger
    )
    with kernel_region("RR-D", ledger):
        evals, Q = np.linalg.eigh(Hp)
    Xr = blocked_rotate(
        X,
        Q,
        block_size=block_size,
        mixed_precision=mixed_precision,
        ledger=ledger,
        kernel="RR-SR",
    )
    return evals, Xr
