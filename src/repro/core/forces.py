"""Ionic forces and structural relaxation.

The paper's reformulation "decouples the FE mesh nodes from the positions
of nuclei" (Sec 5.4.1), which is exactly what makes pure Hellmann-Feynman
forces valid here: the basis carries no dependence on the atomic positions,
so at SCF self-consistency

.. math::

    F_a = -\\frac{\\partial E}{\\partial R_a}
        = -\\int v_{tot}(r)\\,\\frac{\\partial \\rho_c^a}{\\partial R_a}\\,dr
          \\;(\\text{electrostatic, via the Gaussian core})

with no Pulay terms.  Only the smeared core density depends on the atomic
position (the external potential enters the total electrostatics through
``rho_core``), and its derivative is analytic for Gaussians.

``relax`` implements a damped-gradient structural relaxation driving the
maximum force below the paper's 1e-4 Ha/Bohr-class tolerance (on matched
meshes).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.atoms.pseudo import AtomicConfiguration

__all__ = ["hellmann_feynman_forces", "nonlocal_forces", "relax", "RelaxationResult"]


def hellmann_feynman_forces(
    mesh, config: AtomicConfiguration, v_tot: np.ndarray
) -> np.ndarray:
    """Forces (natoms, 3) from the converged total electrostatic potential.

    ``F_a = -int v_tot d(rho_c^a)/dR_a``, with
    ``d rho_c / d R = + rho_c(r) (r - R)/sigma^2`` for a Gaussian core of
    width sigma.  Periodic images within one shell are included, matching
    the electrostatics construction.
    """
    coords = mesh.node_coords
    w = mesh.mass_diag
    shifts = config._image_shifts()
    forces = np.zeros((config.natoms, 3), dtype=float)
    for a, (el, pos) in enumerate(zip(config.elements, config.positions)):
        sigma2 = el.r_c**2 / 2.0
        norm = el.valence / (2.0 * np.pi * sigma2) ** 1.5
        for s in shifts:
            d = coords - (pos + s)
            r2 = np.einsum("ij,ij->i", d, d)
            g = norm * np.exp(-r2 / (2.0 * sigma2))
            # dE/dR_a = -int v * d(rho_c)/dR = -int v * g * d / sigma^2,
            # so F_a = -dE/dR_a = +int v * g * d / sigma^2
            forces[a] += np.einsum("i,i,ij->j", w, v_tot * g, d) / sigma2
    return forces


def nonlocal_forces(mesh, config: AtomicConfiguration, result) -> np.ndarray:
    """Force contribution of the separable nonlocal projectors.

    ``E_nl = sum_i f_i D |<beta|psi_i>|^2`` with Gaussian projectors whose
    only position dependence is their center, so

        F_a = -2 sum_i f_i D Re[ <d beta_a/dR | psi_i> <psi_i | beta_a> ],

    and ``d beta/dR = beta(r) (r - R)/sigma^2`` analytically.  ``result`` is
    the converged ``SCFResult`` whose channels were built with the matching
    projectors (one model s-channel per non-hydrogen atom, in atom order;
    periodic-image projectors are attributed to their parent atom).
    """
    from repro.atoms.nonlocal_psp import model_projectors

    projectors = model_projectors(config)
    if not projectors:
        return np.zeros((config.natoms, 3), dtype=float)
    # map projectors back to their parent atoms (model_projectors order:
    # per atom, per image shift)
    shifts = config._image_shifts()
    parents = []
    for a, el in enumerate(config.elements):
        if el.symbol == "H" or el.valence == 0:
            continue
        parents.extend([a] * len(shifts))
    sq = np.sqrt(mesh.mass_diag[mesh.free])
    pts = mesh.node_coords[mesh.free]
    forces = np.zeros((config.natoms, 3), dtype=float)
    for p, parent in zip(projectors, parents):
        beta = p.evaluate(pts)
        d = pts - np.asarray(p.center)
        b = sq * beta  # Löwdin-basis projector row
        dB = (sq * beta)[:, None] * d / p.sigma**2  # d beta / dR (3 cols)
        for ch, occ in zip(result.channels, result.occupations):
            psi = ch.psi
            f = np.asarray(occ, dtype=float)
            overlap = b @ psi  # (nstates,)
            dover = dB.T @ psi  # (3, nstates)
            forces[parent] -= 2.0 * p.coefficient * ch.weight * np.real(
                dover @ (f * np.conj(overlap))
            )
    return forces


@dataclass
class RelaxationResult:
    """Converged (or best-effort) relaxed structure."""

    config: AtomicConfiguration
    energy: float
    forces: np.ndarray
    n_steps: int
    converged: bool
    history: list[dict]


def relax(
    run_scf,
    config: AtomicConfiguration,
    force_tol: float = 5e-4,
    max_steps: int = 30,
    step: float = 4.0,
    max_displacement: float = 0.25,
    verbose: bool = False,
) -> RelaxationResult:
    """Damped-gradient structural relaxation.

    Parameters
    ----------
    run_scf:
        Callable ``config -> (energy, forces)`` performing a converged SCF
        and returning Hellmann-Feynman forces; the caller fixes the mesh so
        energies are comparable across geometries.
    step:
        Initial step size (Bohr^2/Ha); adapted by backtracking.
    """
    cfg = AtomicConfiguration(
        list(config.symbols), config.positions.copy(),
        lattice=None if config.lattice is None else config.lattice.copy(),
        pbc=config.pbc,
    )
    history: list[dict] = []
    energy, forces = run_scf(cfg)
    for it in range(1, max_steps + 1):
        fmax = float(np.abs(forces).max())
        history.append({"step": it, "energy": energy, "fmax": fmax})
        if verbose:  # pragma: no cover
            print(f"relax {it:3d}: E = {energy:+.8f}  fmax = {fmax:.2e}")
        if fmax < force_tol:
            return RelaxationResult(cfg, energy, forces, it, True, history)
        disp = step * forces
        norm = np.abs(disp).max()
        if norm > max_displacement:
            disp *= max_displacement / norm
        trial = AtomicConfiguration(
            list(cfg.symbols), cfg.positions + disp,
            lattice=None if cfg.lattice is None else cfg.lattice.copy(),
            pbc=cfg.pbc,
        )
        e_new, f_new = run_scf(trial)
        if e_new < energy + 1e-10:
            cfg, energy, forces = trial, e_new, f_new
            step *= 1.1
        else:
            step *= 0.4
            if step < 1e-3:
                break
    return RelaxationResult(cfg, energy, forces, len(history), False, history)
