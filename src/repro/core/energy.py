"""Total (free) energy assembly for the Kohn-Sham ground state.

Both the self-consistent Kohn-Sham energy and the Harris-Foulkes estimate
evaluate

.. math::

    E[\\rho] = \\sum_{k\\sigma i} w_k f_i \\epsilon_i
        - \\int \\sum_s \\rho_s v_{eff}^s
        + \\tfrac12 \\int (\\rho - \\rho_c) v_{tot}
        - E_{self} + E_{xc}[\\rho],

with the Mermin free energy ``F = E - T S``.  The Harris-Foulkes variant
evaluates every density-dependent term at the *input* density of the SCF
iteration (no extra Poisson solve); at self-consistency both coincide.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["EnergyBreakdown", "total_energy"]


@dataclass
class EnergyBreakdown:
    """Energy components in Hartree."""

    band: float  #: occupation-weighted eigenvalue sum
    potential_correction: float  #: -int rho*v_eff (double-counting removal)
    electrostatic: float  #: (1/2) int (rho-rho_c) v_tot - E_self
    xc: float  #: E_xc[rho]
    entropy: float  #: smearing entropy S (dimensionless)
    temperature: float  #: k_B T (Ha)

    @property
    def total(self) -> float:
        """Internal energy E."""
        return self.band + self.potential_correction + self.electrostatic + self.xc

    @property
    def free_energy(self) -> float:
        """Mermin free energy F = E - T S."""
        return self.total - self.temperature * self.entropy


def total_energy(
    mesh,
    eigenvalues: list[np.ndarray],
    occupations: list[np.ndarray],
    weights: list[float],
    rho_spin: np.ndarray,
    v_eff_spin: np.ndarray,
    v_tot: np.ndarray,
    rho_core: np.ndarray,
    self_energy: float,
    exc: float,
    entropy: float,
    temperature: float,
) -> EnergyBreakdown:
    """Assemble the energy breakdown from SCF quantities.

    ``v_eff_spin`` is (nnodes, 2), the per-spin effective potential that was
    in the Hamiltonian producing ``eigenvalues``; ``rho_spin`` (nnodes, 2)
    is the density at which the functional is evaluated.
    """
    band = float(
        sum(
            w * float(np.dot(np.asarray(f, float), np.asarray(e, float)))
            for e, f, w in zip(eigenvalues, occupations, weights)
        )
    )
    rho_tot = rho_spin.sum(axis=1)
    pot_corr = -float(mesh.integrate(np.einsum("is,is->i", rho_spin, v_eff_spin)))
    es = 0.5 * float(mesh.integrate((rho_tot - rho_core) * v_tot)) - self_energy
    return EnergyBreakdown(
        band=band,
        potential_correction=pot_corr,
        electrostatic=es,
        xc=exc,
        entropy=entropy,
        temperature=temperature,
    )
