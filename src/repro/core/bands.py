"""Post-SCF band structure along a k-path (non-self-consistent).

Given a converged ground state, the effective potential is frozen and the
Bloch eigenproblem is re-solved (multi-pass ChFES) at arbitrary reduced
k-vectors — the standard non-self-consistent band-structure workflow, built
from the same blocked eigensolver kernels as the SCF.
"""

from __future__ import annotations

import numpy as np

from repro.fem.assembly import KSOperator

from .chebyshev import chebyshev_filter, lanczos_upper_bound
from .orthonorm import cholesky_orthonormalize
from .rayleigh_ritz import rayleigh_ritz
from .subspace import fused_cholgs_rr, subspace_engine_enabled

__all__ = ["band_structure", "kpath"]


def kpath(
    k_start: tuple[float, float, float],
    k_end: tuple[float, float, float],
    n: int,
) -> list[tuple[float, float, float]]:
    """``n`` uniformly spaced reduced k-vectors from start to end (incl.)."""
    if n < 2:
        raise ValueError("a path needs at least two points")
    a = np.asarray(k_start, float)
    b = np.asarray(k_end, float)
    return [tuple(a + (b - a) * t) for t in np.linspace(0.0, 1.0, n)]


def band_structure(
    mesh,
    scf_result,
    kpoints: list[tuple[float, float, float]],
    nbands: int = 8,
    cheb_degree: int = 18,
    passes: int = 6,
    block_size: int = 64,
    spin: int = 0,
) -> np.ndarray:
    """Eigenvalues (len(kpoints), nbands) at frozen SCF potential.

    ``spin`` selects the effective-potential channel for spin-polarized
    ground states (ignored distinction for spin-restricted ones).
    """
    v_eff = scf_result.v_tot + scf_result.v_xc_spin[:, spin]
    bands = np.empty((len(kpoints), nbands), dtype=float)
    for ik, kfrac in enumerate(kpoints):
        op = KSOperator(mesh, kfrac=kfrac)
        op.set_potential(v_eff)
        b = lanczos_upper_bound(op, k=12, seed=17)
        rng = np.random.default_rng(101 + ik)
        X = rng.standard_normal((op.n, nbands))
        if np.issubdtype(op.dtype, np.complexfloating):
            X = X + 1j * rng.standard_normal((op.n, nbands))
        X = np.asarray(X, dtype=op.dtype)
        X = cholesky_orthonormalize(X, block_size=block_size)
        d = op.diagonal()
        a0 = float(np.min(d)) - 1.0
        a = a0 + 0.35 * (b - a0)
        evals = None
        engine = subspace_engine_enabled()
        # the potential is frozen along the whole multi-pass solve, so the
        # HX rotated out of each fused stage seeds the next pass's filter
        # unadjusted (one fewer op.apply per pass after the first)
        hx0 = None
        for _ in range(passes):
            X = chebyshev_filter(
                op, X, cheb_degree, a, b, a0, block_size=block_size, hx0=hx0
            )
            if engine:
                HW = op.apply(X)
                evals, X, hx0 = fused_cholgs_rr(
                    X, HW, op=op, block_size=block_size
                )
            else:
                X = cholesky_orthonormalize(X, block_size=block_size)
                evals, X = rayleigh_ritz(op, X, block_size=block_size)
            a0 = float(evals[0])
            a = float(evals[-1]) + 0.01 * (b - float(evals[-1]))
        bands[ik] = np.real(evals[:nbands])
    return bands
