"""Cholesky Gram-Schmidt orthonormalization (CholGS, Algorithm 1 step 2).

Implements the three substeps of the paper with their mixed-precision block
structure:

* **CholGS-S** — overlap ``S = X^H X``, computed in column blocks; with
  mixed precision enabled, diagonal blocks are accumulated in FP64 while
  off-diagonal blocks (which decay to zero as the filtered subspace
  converges) use FP32 — the paper's key trick for cutting the O(M N^2) cost.
* **CholGS-CI** — Cholesky factorization ``S = L L^H`` and explicit
  triangular inverse (FLOPs uncounted, wall time charged, as in Table 3).
* **CholGS-O** — subspace rotation ``X <- X L^{-H}`` by blocked GEMMs.

``blocked_gram``/``blocked_rotate`` dispatch to the batched engine in
:mod:`.subspace` (single-cast FP32 mirrors, offset-batched ``np.matmul``,
no zeroed temporaries), which is bitwise identical to the reference block
loops kept here; ``REPRO_SLOW_SUBSPACE=1`` selects the reference at call
time.
"""

from __future__ import annotations

import numpy as np
from scipy.linalg import solve_triangular

from repro.hpc.flops import gemm_flops
from repro.obs import kernel_region
from repro.precision import f32_dtype
from repro.tools.contracts import dtype_contract, shape_contract

from .subspace import batched_gram, batched_rotate, subspace_engine_enabled

__all__ = ["blocked_gram", "cholesky_orthonormalize", "blocked_rotate"]


@shape_contract(X=("n", "nvec"), returns=("nvec", "nvec"))
@dtype_contract(X="inexact", preserves="X")
def blocked_gram(
    X: np.ndarray,
    block_size: int = 128,
    mixed_precision: bool = False,
    ledger=None,
    kernel: str = "CholGS-S",
) -> np.ndarray:
    """Hermitian ``S = X^H X`` by column blocks, exploiting symmetry.

    Only blocks with ``j >= i`` are computed (the paper's alpha=1 Hermitian
    exploitation); with ``mixed_precision`` the strictly off-diagonal blocks
    are computed in FP32.  Dispatches to the batched engine unless
    ``REPRO_SLOW_SUBSPACE=1`` selects the reference loop below.
    """
    if subspace_engine_enabled():
        return batched_gram(
            X,
            block_size=block_size,
            mixed_precision=mixed_precision,
            ledger=ledger,
            kernel=kernel,
        )
    return _reference_gram(
        X,
        block_size=block_size,
        mixed_precision=mixed_precision,
        ledger=ledger,
        kernel=kernel,
    )


def _reference_gram(
    X: np.ndarray,
    block_size: int = 128,
    mixed_precision: bool = False,
    ledger=None,
    kernel: str = "CholGS-S",
) -> np.ndarray:
    """Reference per-(i, j)-block overlap loop (``REPRO_SLOW_SUBSPACE=1``)."""
    n, nvec = X.shape
    is_complex = np.issubdtype(X.dtype, np.complexfloating)
    S = np.zeros((nvec, nvec), dtype=X.dtype)
    f32 = f32_dtype(X.dtype)
    starts = list(range(0, nvec, block_size))
    with kernel_region(kernel, ledger, block_size=block_size, nvec=nvec):
        for i in starts:
            si = slice(i, min(i + block_size, nvec))
            Xi = X[:, si]
            for j in starts:
                if j < i:
                    continue
                sj = slice(j, min(j + block_size, nvec))
                Xj = X[:, sj]
                offdiag = j > i
                if mixed_precision and offdiag:
                    # CholGS-S whitelisted downcast: off-diagonal overlap
                    # blocks decay to 0 as the filtered subspace converges,
                    # so their FP32 rounding is bounded by the block norm
                    # (paper Sec 5.4.1); tests bound the orthonormality loss.
                    blk = (Xi.astype(f32).conj().T @ Xj.astype(f32)).astype(X.dtype)  # reprolint: disable=R012
                    prec = "fp32"
                else:
                    blk = Xi.conj().T @ Xj
                    prec = "fp64"
                S[si, sj] = blk
                if offdiag:
                    S[sj, si] = blk.conj().T
                if ledger is not None:
                    ledger.add(
                        kernel,
                        gemm_flops(
                            si.stop - si.start, sj.stop - sj.start, n, is_complex
                        ),
                        precision=prec,
                    )
    return S


@shape_contract(X=("n", "nvec"), Q=("nvec", "k"), returns=("n", "k"))
@dtype_contract(X="inexact", preserves="X")
def blocked_rotate(
    X: np.ndarray,
    Q: np.ndarray,
    block_size: int = 128,
    mixed_precision: bool = False,
    ledger=None,
    kernel: str = "RR-SR",
) -> np.ndarray:
    """Blocked subspace rotation ``Y = X Q``.

    With mixed precision, the contribution of off-diagonal blocks of ``Q``
    (rotations mixing well-separated subspace directions, which shrink as
    the SCF converges) is accumulated in FP32; diagonal blocks stay FP64.
    Dispatches to the batched engine (direct writes into the output, pooled
    product buffers) unless ``REPRO_SLOW_SUBSPACE=1``.
    """
    if subspace_engine_enabled():
        return batched_rotate(
            X,
            Q,
            block_size=block_size,
            mixed_precision=mixed_precision,
            ledger=ledger,
            kernel=kernel,
        )
    return _reference_rotate(
        X,
        Q,
        block_size=block_size,
        mixed_precision=mixed_precision,
        ledger=ledger,
        kernel=kernel,
    )


def _reference_rotate(
    X: np.ndarray,
    Q: np.ndarray,
    block_size: int = 128,
    mixed_precision: bool = False,
    ledger=None,
    kernel: str = "RR-SR",
) -> np.ndarray:
    """Reference rotation loop with zeroed accumulators."""
    n, nvec = X.shape
    is_complex = np.issubdtype(X.dtype, np.complexfloating)
    f32 = f32_dtype(X.dtype)
    Y = np.zeros((n, Q.shape[1]), dtype=X.dtype)
    starts = list(range(0, nvec, block_size))
    col_starts = list(range(0, Q.shape[1], block_size))
    with kernel_region(kernel, ledger, block_size=block_size, nvec=nvec):
        for j in col_starts:
            sj = slice(j, min(j + block_size, Q.shape[1]))
            acc = np.zeros((n, sj.stop - sj.start), dtype=X.dtype)
            for i in starts:
                si = slice(i, min(i + block_size, nvec))
                offdiag = i != j
                if mixed_precision and offdiag:
                    # CholGS-O/RR-SR whitelisted downcast: off-diagonal
                    # rotation blocks mix well-separated subspace directions
                    # and shrink as the SCF converges; the FP64 accumulator
                    # keeps the summation error at the FP64 level.
                    blk32 = X[:, si].astype(f32) @ Q[si, sj].astype(f32)  # reprolint: disable=R012
                    acc += blk32.astype(X.dtype)
                    prec = "fp32"
                else:
                    acc += X[:, si] @ Q[si, sj]
                    prec = "fp64"
                if ledger is not None:
                    ledger.add(
                        kernel,
                        gemm_flops(n, sj.stop - sj.start, si.stop - si.start, is_complex),
                        precision=prec,
                    )
            Y[:, sj] = acc
    return Y


@shape_contract(X=("n", "nvec"), returns=("n", "nvec"))
@dtype_contract(X="inexact", preserves="X")
def cholesky_orthonormalize(
    X: np.ndarray,
    block_size: int = 128,
    mixed_precision: bool = False,
    ledger=None,
) -> np.ndarray:
    """Full CholGS: overlap, Cholesky inverse, rotation.  Returns X L^{-H}.

    Falls back to a QR factorization if the overlap is numerically
    indefinite (severe filter ill-conditioning), which cannot happen once
    the SCF is under way but protects cold starts.  The fallback is metered
    under its own ``CholGS-QR`` kernel label (wall time charged, FLOPs
    uncounted like CholGS-CI), so an ill-conditioned cold start no longer
    skews ``scf --profile`` breakdowns silently.
    """
    S = blocked_gram(
        X, block_size=block_size, mixed_precision=mixed_precision, ledger=ledger
    )
    fallback = False
    with kernel_region("CholGS-CI", ledger):
        try:
            L = np.linalg.cholesky(S)
            Linv = solve_triangular(L, np.eye(L.shape[0], dtype=L.dtype), lower=True)
        except np.linalg.LinAlgError:
            fallback = True
    if fallback:
        with kernel_region("CholGS-QR", ledger):
            Q, _ = np.linalg.qr(X)
            return np.ascontiguousarray(Q)
    return blocked_rotate(
        X,
        Linv.conj().T,
        block_size=block_size,
        mixed_precision=mixed_precision,
        ledger=ledger,
        kernel="CholGS-O",
    )
