"""Kerker preconditioning of the SCF density residual.

Metallic systems (the paper's Mg alloys and quasicrystals) suffer from
charge sloshing: long-wavelength components of the density residual are
amplified by the Hartree kernel, destabilizing the SCF as the cell grows.
The Kerker preconditioner damps exactly those components,

.. math::

    F_{prec}(q) = \\frac{q^2}{q^2 + k_0^2} F(q)
    \\quad\\Longleftrightarrow\\quad
    F_{prec} = F - k_0^2 (-\\nabla^2 + k_0^2)^{-1} F,

implemented here in real space with the same matrix-free machinery as the
Poisson solver: one Jacobi-preconditioned CG solve of the shifted Helmholtz
problem ``(K + k_0^2 M) u = M F`` per mixing step.
"""

from __future__ import annotations

import numpy as np

from repro.fem.assembly import CellStiffness
from repro.fem.mesh import Mesh3D
from repro.fem.poisson import _pcg

__all__ = ["KerkerPreconditioner"]


class KerkerPreconditioner:
    """Real-space Kerker damping of long-wavelength residual components.

    Parameters
    ----------
    mesh:
        The calculation's spectral-element mesh.
    k0:
        Screening wavevector (Bohr^-1); ~0.5-1.0 for typical metals.
    tol, maxiter:
        Helmholtz CG controls (the solve is extremely well conditioned —
        the k0^2 mass shift bounds the spectrum away from zero).
    """

    def __init__(
        self, mesh: Mesh3D, k0: float = 0.8, tol: float = 1e-9, maxiter: int = 400
    ) -> None:
        if k0 <= 0:
            raise ValueError("k0 must be positive")
        self.mesh = mesh
        self.k0 = float(k0)
        self.tol = tol
        self.maxiter = maxiter
        self.stiff = CellStiffness(mesh)
        self._mass = mesh.mass_diag
        self._diag = self.stiff.diagonal_full() + self.k0**2 * self._mass
        self._free = mesh.free

    def _apply_helmholtz(self, x_free: np.ndarray) -> np.ndarray:
        full = np.zeros(self.mesh.nnodes, dtype=float)
        full[self._free] = x_free
        out = self.stiff.apply_full(full) + self.k0**2 * self._mass * full
        return out[self._free]

    def __call__(self, residual_full: np.ndarray) -> np.ndarray:
        """Precondition a full-node residual field (or (nnodes, m) stack)."""
        r = np.asarray(residual_full, dtype=float)
        if r.ndim == 2:
            return np.stack([self(r[:, j]) for j in range(r.shape[1])], axis=1)
        b = (self._mass * r)[self._free]
        u_free, _it, _res, ok = _pcg(
            self._apply_helmholtz, b, self._diag[self._free],
            self.tol, self.maxiter,
        )
        if not ok:  # pragma: no cover - extremely well-conditioned solve
            return r
        u = np.zeros(self.mesh.nnodes, dtype=float)
        u[self._free] = u_free
        return r - self.k0**2 * u
