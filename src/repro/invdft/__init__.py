"""Inverse DFT: exact XC potentials from QMB densities (paper Sec 5.1)."""

from .adjoint import adjoint_rhs, potential_gradient, solve_adjoint
from .inverse import InverseDFT, InverseDFTResult, exact_xc_energy
from .minres import BlockMinresResult, block_minres

__all__ = [
    "BlockMinresResult",
    "InverseDFT",
    "InverseDFTResult",
    "adjoint_rhs",
    "block_minres",
    "exact_xc_energy",
    "potential_gradient",
    "solve_adjoint",
]
