"""Adjoint equation of the PDE-constrained inverse DFT problem (Eq. 2).

For the objective ``L = int w (rho_KS - rho_t)^2`` the stationarity of the
Lagrangian gives, per occupied state i,

.. math::

    (H - \\epsilon_i) p_i = g_i,
    \\qquad g_i = -4 f_i\\, w\\, (\\rho_{KS} - \\rho_t)\\, \\psi_i,

restricted to the orthogonal complement of psi_i, and the potential update
direction is ``u(r) = sum_i p_i(r) psi_i(r)`` — the steepest-descent
direction of L with respect to the multiplicative potential.
"""

from __future__ import annotations

import numpy as np

from repro.fem.mesh import Mesh3D
from repro.obs import kernel_region

from .minres import BlockMinresResult, block_minres

__all__ = ["adjoint_rhs", "solve_adjoint", "potential_gradient"]


def adjoint_rhs(
    mesh: Mesh3D,
    psi: np.ndarray,
    occupations: np.ndarray,
    drho_weighted_full: np.ndarray,
) -> np.ndarray:
    """Build the (projected) adjoint right-hand sides ``g_i`` in Löwdin coords.

    ``drho_weighted_full`` is ``w * (rho_KS - rho_t)`` on all nodes.  In the
    Löwdin (diagonal-mass) discretization a multiplicative field acts as a
    plain diagonal on the coefficients, so
    ``g_i = -4 f_i * diag(w drho) psi_i`` followed by projection.
    """
    dr_free = drho_weighted_full[mesh.free]
    G = -4.0 * occupations[None, :] * dr_free[:, None] * psi
    # project each column orthogonal to its own eigenvector
    coefs = np.einsum("ij,ij->j", np.conj(psi), G)
    G -= psi * coefs[None, :]
    return G


def solve_adjoint(
    op,
    psi: np.ndarray,
    eigenvalues: np.ndarray,
    G: np.ndarray,
    tol: float = 1e-7,
    maxiter: int = 400,
    use_preconditioner: bool = False,
    ledger=None,
) -> BlockMinresResult:
    """Solve ``(H - eps_i) p_i = g_i`` with projected block MINRES.

    The paper's inverse-diagonal-Laplacian preconditioner targets the raw
    finite-element basis, whose diagonal scale disparity grows like h^-2
    under adaptive grading.  In this implementation the Löwdin
    (diagonal-mass-normalized) basis already absorbs most of that disparity,
    so the preconditioner is off by default for the Löwdin-basis adjoint
    solves; ``benchmarks/bench_minres_precond.py`` demonstrates the paper's
    ~5x claim in the raw-basis setting where it applies.
    """

    def project(Y):
        coefs = np.einsum("ij,ij->j", np.conj(psi), Y)
        return Y - psi * coefs[None, :]

    precond = op.kinetic_diagonal() + 0.5 if use_preconditioner else None
    with kernel_region("Adjoint", ledger):
        res = block_minres(
            op.apply,
            G,
            shifts=np.asarray(eigenvalues, dtype=float),
            precond_diag=precond,
            project=project,
            tol=tol,
            maxiter=maxiter,
        )
    return res


def potential_gradient(
    mesh: Mesh3D, psi: np.ndarray, P: np.ndarray
) -> np.ndarray:
    """Steepest-descent field ``u(r) = sum_i p_i psi_i`` on all nodes.

    Converts the discrete gradient (p .* psi summed over states, living on
    the Löwdin coefficients) to an L2 function-space gradient by dividing by
    the diagonal mass.
    """
    g_free = np.real(np.einsum("ij,ij->i", np.conj(P), psi))
    out = np.zeros(mesh.nnodes)
    out[mesh.free] = g_free / mesh.mass_diag[mesh.free]
    return out
