"""Inverse DFT driver: exact XC potentials from QMB densities (Sec 5.1).

Given a target (QMB/FCI) spin density on the mesh, finds the multiplicative
exchange-correlation potential whose Kohn-Sham ground-state density matches
it, by PDE-constrained optimization:

1. the KS eigenproblem is solved with the current ``v_xc`` (warm-started
   ChFES — the same eigensolver as the forward DFT code);
2. the adjoint systems ``(H - eps_i) p_i = g_i`` are solved with projected,
   Jacobi-preconditioned block MINRES;
3. ``v_xc`` is updated along the steepest-descent field
   ``u = sum_i p_i psi_i`` with adaptive step control.

The Hartree term is fixed at ``v_H[rho_target]`` (Wu-Yang formulation), so
the converged total potential decomposes as
``v_s = v_ext + v_H[rho_t] + v_xc`` and self-consistency is automatic once
``rho_KS = rho_t``.  The far-field behaviour of ``v_xc`` is pinned by the
Dirichlet frame (updates live on interior DoFs only), mirroring the paper's
-1/r far-field condition at the box scale.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.atoms.pseudo import AtomicConfiguration
from repro.core.chebyshev import chebyshev_filter, lanczos_upper_bound
from repro.core.io import load_invdft_state, save_invdft_state
from repro.core.occupations import find_fermi_level
from repro.core.orthonorm import cholesky_orthonormalize
from repro.core.rayleigh_ritz import rayleigh_ritz
from repro.core.subspace import fused_cholgs_rr, subspace_engine_enabled
from repro.fem.assembly import KSOperator
from repro.fem.mesh import Mesh3D
from repro.fem.poisson import PoissonSolver, multipole_boundary_values
from repro.obs import trace_region
from repro.resilience import ResilienceError, RetryPolicy

from .adjoint import adjoint_rhs, potential_gradient, solve_adjoint

__all__ = ["InverseDFT", "InverseDFTResult"]


@dataclass
class InverseDFTResult:
    """Recovered exact XC potential and diagnostics."""

    v_xc: np.ndarray  #: (nnodes, 2) recovered XC potential per spin
    rho_ks: np.ndarray  #: (nnodes, 2) final KS density
    eigenvalues: list[np.ndarray]
    occupations: list[np.ndarray]
    density_error: float  #: final integrated squared density mismatch
    iterations: int
    converged: bool
    history: list[dict] = field(default_factory=list)


class InverseDFT:
    """PDE-constrained optimization for the exact XC potential."""

    def __init__(
        self,
        mesh: Mesh3D,
        config: AtomicConfiguration,
        rho_target_spin: np.ndarray,
        nstates: int | None = None,
        temperature: float = 1e-3,
        cheb_degree: int = 15,
        block_size: int = 64,
        minres_tol: float = 1e-7,
        minres_maxiter: int = 300,
        use_preconditioner: bool = False,
        ledger=None,
        retry_policy: RetryPolicy | None = None,
    ) -> None:
        self.mesh = mesh
        self.config = config
        self.rho_t = np.asarray(rho_target_spin, dtype=float)
        if self.rho_t.shape != (mesh.nnodes, 2):
            raise ValueError("rho_target_spin must be (nnodes, 2)")
        self.temperature = temperature
        self.cheb_degree = cheb_degree
        self.block_size = block_size
        self.minres_tol = minres_tol
        self.minres_maxiter = minres_maxiter
        self.use_preconditioner = use_preconditioner
        self.ledger = ledger
        self.retry_policy = retry_policy or RetryPolicy()

        self.n_up = float(mesh.integrate(self.rho_t[:, 0]))
        self.n_dn = float(mesh.integrate(self.rho_t[:, 1]))
        if nstates is None:
            nstates = int(np.ceil(max(self.n_up, self.n_dn))) + 3
        self.nstates = nstates

        # fixed potential frame: v_ext + v_H[rho_target]
        v_ext = config.external_potential(mesh.node_coords)
        rho_tot = self.rho_t.sum(axis=1)
        solver = PoissonSolver(mesh, ledger=ledger)
        bc = (
            multipole_boundary_values(mesh, rho_tot)
            if mesh.free.size != mesh.nnodes
            else None
        )
        v_h = solver.solve(rho_tot, boundary_values=bc, tol=1e-10).potential
        self.v_ext = v_ext
        self.v_hartree = v_h
        self.v_base = v_ext + v_h

        self.ops = [KSOperator(mesh, ledger=ledger) for _ in range(2)]
        self._psi: list[np.ndarray | None] = [None, None]
        self._evals: list[np.ndarray | None] = [None, None]

    # ------------------------------------------------------------------
    def _eigensolve(self, spin: int, v_xc_spin: np.ndarray, first: bool) -> None:
        with trace_region("ChFES", spin=spin, first=first):
            self._eigensolve_channel(spin, v_xc_spin, first)

    def _eigensolve_channel(
        self, spin: int, v_xc_spin: np.ndarray, first: bool
    ) -> None:
        op = self.ops[spin]
        op.set_potential(self.v_base + v_xc_spin)
        with trace_region("Lanczos"):
            b = lanczos_upper_bound(op, k=12, seed=3 + spin)
        if first:
            rng = np.random.default_rng(11 + spin)
            X = rng.standard_normal((op.n, self.nstates))
            X = cholesky_orthonormalize(X, block_size=self.block_size)
            d = op.diagonal()
            a0 = float(np.min(d)) - 1.0
            a = a0 + 0.35 * (b - a0)
            passes = 6
        else:
            X = self._psi[spin]
            a0 = float(self._evals[spin][0])
            a = float(self._evals[spin][-1]) + 0.01 * (b - float(self._evals[spin][-1]))
            passes = 1
        engine = subspace_engine_enabled()
        # intra-solve carry only (the potential is fixed across these
        # passes); nothing is carried across outer v_xc iterations, so the
        # invdft checkpoint format is untouched
        hx0 = None
        for _ in range(passes):
            X = chebyshev_filter(
                op, X, self.cheb_degree, a, b, a0,
                block_size=self.block_size, ledger=self.ledger,
                hx0=hx0,
            )
            if engine:
                HW = op.apply(X)
                evals, X, hx0 = fused_cholgs_rr(
                    X, HW, op=op, block_size=self.block_size, ledger=self.ledger
                )
            else:
                X = cholesky_orthonormalize(X, block_size=self.block_size, ledger=self.ledger)
                evals, X = rayleigh_ritz(op, X, block_size=self.block_size, ledger=self.ledger)
            a0 = float(evals[0])
            a = float(evals[-1]) + 0.01 * (b - float(evals[-1]))
        self._psi[spin] = X
        self._evals[spin] = evals

    def _density(self, occs: list[np.ndarray]) -> np.ndarray:
        rho = np.zeros((self.mesh.nnodes, 2))
        dinv2 = np.zeros(self.mesh.nnodes)
        dinv2[self.mesh.free] = 1.0 / self.mesh.mass_diag[self.mesh.free]
        for s in (0, 1):
            dens = np.einsum("ij,j->i", self._psi[s] ** 2, occs[s])
            full = np.zeros(self.mesh.nnodes)
            full[self.mesh.free] = dens
            rho[:, s] = full * dinv2
        return rho

    def _apply_coulombic_farfield(self, v_xc: np.ndarray) -> np.ndarray:
        """Impose the physical -1/r tail of v_xc at the Dirichlet frame."""
        mesh = self.mesh
        rho = self.rho_t.sum(axis=1)
        q = float(mesh.integrate(rho))
        center = (
            np.asarray(mesh.integrate(rho[:, None] * mesh.node_coords)) / q
        )
        b = mesh.boundary_mask
        if not b.any():
            return v_xc  # fully periodic: no far field to pin
        r = np.linalg.norm(mesh.node_coords[b] - center, axis=1)
        out = v_xc.copy()
        out[b, :] = (-1.0 / np.maximum(r, 1e-8))[:, None]
        return out

    # ------------------------------------------------------------------
    def run(
        self,
        v_xc_init: np.ndarray,
        eta: float = 2.0,
        max_iterations: int = 200,
        tol: float = 1e-8,
        weight: np.ndarray | None = None,
        farfield: str = "frozen",
        verbose: bool = False,
        checkpoint_path: str | None = None,
        checkpoint_every: int = 1,
        checkpoint_metadata: dict | None = None,
        resume_from: str | None = None,
    ) -> InverseDFTResult:
        """Iterate to the exact XC potential.

        Parameters
        ----------
        v_xc_init:
            (nnodes, 2) starting guess (e.g. the LDA potential of the target
            density) — also fixes the boundary values of ``v_xc``.
        eta:
            Initial steepest-descent step; adapted multiplicatively.
        tol:
            Convergence threshold on ``int (rho_KS - rho_t)^2`` summed over
            spins (per electron pair normalization is left to the caller).
        weight:
            Optional positive weight field w(r) in the objective.
        farfield:
            Boundary handling for ``v_xc`` (updates always live on interior
            DoFs).  ``"frozen"`` keeps the initial guess's boundary values;
            ``"coulombic"`` overwrites them with the physical ``-1/r``
            asymptote about the charge centroid — the paper's Sec 5.1
            far-field condition, which removes the Gaussian-density
            far-field artifacts it discusses.
        checkpoint_path / checkpoint_every / resume_from:
            Mid-run v2 checkpointing (see :mod:`repro.core.io`): the loop
            state is snapshotted every ``checkpoint_every`` iterations, and
            ``resume_from`` continues an interrupted optimization with the
            same trajectory as the uninterrupted run.
        """
        mesh = self.mesh
        w = np.ones(mesh.nnodes) if weight is None else np.asarray(weight)
        v_xc = v_xc_init.copy().astype(float)
        if v_xc.ndim == 1:
            v_xc = np.stack([v_xc, v_xc], axis=1)
        if farfield == "coulombic":
            v_xc = self._apply_coulombic_farfield(v_xc)
        elif farfield != "frozen":
            raise ValueError("farfield must be 'frozen' or 'coulombic'")
        history: list[dict] = []
        err_prev = np.inf
        v_backup = v_xc.copy()
        converged = False
        it = 0
        err = np.inf
        occ = [np.zeros(self.nstates), np.zeros(self.nstates)]
        rho_ks = self.rho_t.copy()
        start_it = 1
        if resume_from is not None:
            st = load_invdft_state(resume_from, nnodes=mesh.nnodes)
            v_xc = st["v_xc"]
            v_backup = st["v_backup"]
            err = st["err"]
            err_prev = st["err_prev"]
            eta = st["eta"]
            self._psi = list(st["psi"])
            self._evals = list(st["evals"])
            history = list(st["history"])
            it = st["iteration"]
            start_it = it + 1

        def save_ck(iteration: int) -> None:
            if checkpoint_path is None:
                return
            if iteration % max(checkpoint_every, 1) != 0:
                return
            save_invdft_state(
                checkpoint_path,
                nnodes=mesh.nnodes,
                iteration=iteration,
                v_xc=v_xc,
                v_backup=v_backup,
                err=err,
                err_prev=err_prev,
                eta=eta,
                psi=self._psi,
                evals=self._evals,
                history=history,
                metadata=checkpoint_metadata,
            )

        for it in range(start_it, max_iterations + 1):
            with trace_region("invDFT-iteration", iteration=it):
                for s in (0, 1):
                    self._eigensolve(s, v_xc[:, s], first=self._psi[s] is None)
                occ = find_fermi_level(
                    [self._evals[0]], [1.0], self.n_up, self.temperature, degeneracy=1.0
                ).occupations + find_fermi_level(
                    [self._evals[1]], [1.0], self.n_dn, self.temperature, degeneracy=1.0
                ).occupations
                rho_ks = self._density(occ)
                dr = rho_ks - self.rho_t
                err = float(mesh.integrate(w * np.einsum("is,is->i", dr, dr)))
                # resilience sentinel: never let a NaN objective drive the
                # optimization (or reach the caller) silently
                if not np.isfinite(err):
                    raise ResilienceError(
                        "invdft", f"non-finite density error at iteration {it}"
                    )
                history.append({"iteration": it, "density_error": err, "eta": eta})
                if verbose:  # pragma: no cover
                    print(f"invDFT {it:4d}  err = {err:.6e}  eta = {eta:.3f}")
                if err < tol:
                    converged = True
                    break
                if err > err_prev * 1.0001:
                    # overshoot: revert the potential, shrink the step, and
                    # re-solve at the reverted potential before the next update
                    v_xc = v_backup.copy()
                    eta *= 0.5
                    if eta < 1e-6:
                        break
                    save_ck(it)
                    continue
                v_backup = v_xc.copy()
                err_prev = err
                eta *= 1.05
                for s in (0, 1):
                    with trace_region("XC-update", spin=s):
                        G = adjoint_rhs(
                            mesh, self._psi[s], occ[s], w * dr[:, s]
                        )
                        sol = self.retry_policy.run(
                            lambda: solve_adjoint(
                                self.ops[s],
                                self._psi[s],
                                self._evals[s],
                                G,
                                tol=self.minres_tol,
                                maxiter=self.minres_maxiter,
                                use_preconditioner=self.use_preconditioner,
                                ledger=self.ledger,
                            ),
                            "minres",
                            validate=lambda r: bool(np.all(np.isfinite(r.x))),
                        )
                        u = potential_gradient(mesh, self._psi[s], sol.x)
                        v_xc[:, s] -= eta * u
                save_ck(it)
        return InverseDFTResult(
            v_xc=v_xc,
            rho_ks=rho_ks,
            eigenvalues=[self._evals[0], self._evals[1]],
            occupations=list(occ),
            density_error=err,
            iterations=it,
            converged=converged,
            history=history,
        )


def exact_xc_energy(inv: InverseDFT, result: InverseDFTResult, e_qmb: float) -> float:
    """Exact XC energy: ``E_xc = E_QMB - T_s - E_H - E_ext - E_nn``.

    ``T_s`` is the noninteracting kinetic energy of the inverse-KS orbitals
    (band energy minus potential integrals); all electrostatic pieces are
    evaluated at the QMB target density.
    """
    mesh = inv.mesh
    band = sum(
        float(np.dot(np.asarray(f, float), np.asarray(e, float)))
        for f, e in zip(result.occupations, result.eigenvalues)
    )
    pot = 0.0
    for s in (0, 1):
        v_s = inv.v_base + result.v_xc[:, s]
        pot += float(mesh.integrate(result.rho_ks[:, s] * v_s))
    t_s = band - pot
    rho = inv.rho_t.sum(axis=1)
    e_h = 0.5 * float(mesh.integrate(rho * inv.v_hartree))
    e_ext = float(mesh.integrate(rho * inv.v_ext))
    e_nn = inv.config.nuclear_repulsion()
    return e_qmb - t_s - e_h - e_ext - e_nn
