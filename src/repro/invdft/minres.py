"""Preconditioned block MINRES for the invDFT adjoint solves (Sec 5.3.1).

Solves ``(H - eps_j I) x_j = b_j`` for a *block* of right-hand sides with
per-column spectral shifts, sharing the operator application across columns —
the paper's key trick for exploiting the high-arithmetic-intensity FE cell
level linear algebra in the adjoint solve.  The per-column Lanczos/Givens
scalars of the standard MINRES recurrence simply become length-B vectors.

Each shifted system is singular (eps_j is an eigenvalue of H); the solve is
restricted to the orthogonal complement of the corresponding eigenvector by
a per-column projection applied to every operator output, and the
preconditioner is the inverse diagonal of the discrete Laplacian — the
"inexpensive yet effective" choice the paper reports gives ~5x fewer
iterations.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.obs import add_counter, trace_region
from repro.resilience import faults as _faults

__all__ = ["BlockMinresResult", "block_minres"]


@dataclass
class BlockMinresResult:
    x: np.ndarray  #: (n, B) solutions
    iterations: int
    residuals: np.ndarray  #: (B,) final relative residual estimates
    converged: bool


def block_minres(
    apply_A,
    B: np.ndarray,
    shifts: np.ndarray,
    precond_diag: np.ndarray | None = None,
    project=None,
    tol: float = 1e-8,
    maxiter: int = 500,
) -> BlockMinresResult:
    """Run block MINRES on ``(A - shifts_j) x_j = B[:, j]``.

    Parameters
    ----------
    apply_A:
        Callable applying the (Hermitian) operator to an (n, B) block.
    shifts:
        (B,) per-column shifts.
    precond_diag:
        Positive diagonal of an SPD preconditioner M; the solve uses
        ``M^{-1} = 1/precond_diag``.
    project:
        Optional callable enforcing per-column orthogonality constraints,
        applied to the RHS and to every new Krylov vector.
    """
    Bmat = np.atleast_2d(B)
    n, m = Bmat.shape
    with trace_region("MINRES", nrhs=m, ndof=n):
        result = _block_minres(
            apply_A, Bmat, shifts, precond_diag, project, tol, maxiter
        )
        add_counter("iterations", result.iterations)
    return result


def _block_minres(
    apply_A,
    Bmat: np.ndarray,
    shifts: np.ndarray,
    precond_diag: np.ndarray | None,
    project,
    tol: float,
    maxiter: int,
) -> BlockMinresResult:
    n, m = Bmat.shape
    shifts = np.asarray(shifts, dtype=float).reshape(m)
    inv_m = (
        np.ones(n) if precond_diag is None else 1.0 / np.asarray(precond_diag)
    )

    def dots(u, v):
        return np.real(np.einsum("ij,ij->j", np.conj(u), v))

    x = np.zeros_like(Bmat)
    r1 = Bmat.copy()
    if project is not None:
        r1 = project(r1)
    y = inv_m[:, None] * r1
    beta1 = dots(r1, y)
    if np.any(beta1 < 0):
        raise ValueError("preconditioner is not positive definite")
    live = beta1 > 1e-300
    beta1 = np.sqrt(np.where(live, beta1, 1.0))

    oldb = np.zeros(m)
    beta = beta1.copy()
    dbar = np.zeros(m)
    epsln = np.zeros(m)
    phibar = beta1.copy()
    cs = -np.ones(m)
    sn = np.zeros(m)
    w = np.zeros_like(Bmat)
    w2 = np.zeros_like(Bmat)
    w1 = np.zeros_like(Bmat)
    r2 = r1.copy()
    # per-solve scratch: the recurrence's (n, B) elementwise products and
    # the preconditioned vector reuse these instead of allocating per
    # iteration (apply_A/project outputs remain theirs); every arithmetic
    # step keeps the reference operation order, so results are bit-identical
    v = np.empty_like(Bmat)
    tmp = np.empty_like(Bmat)
    y_pre = y  # inv_m * r: rewritten in place once v has consumed it
    it = 0
    for it in range(1, maxiter + 1):
        s = 1.0 / beta
        np.multiply(y, s[None, :], out=v)
        y = apply_A(v)
        if _faults._PLAN is not None:  # reprochaos site (no-op unarmed)
            _faults.fault_point("minres", y)
            if not np.all(np.isfinite(y)):
                # retryable (the caller's RetryPolicy restarts the solve);
                # NOT a ResilienceError, which would mean recovery exhausted
                raise RuntimeError(
                    f"non-finite Krylov vector at MINRES iteration {it}"
                )
        np.multiply(shifts[None, :], v, out=tmp)
        y -= tmp
        if project is not None:
            y = project(y)
        if it >= 2:
            np.multiply((beta / oldb)[None, :], r1, out=tmp)
            y -= tmp
        alfa = dots(v, y)
        np.multiply((alfa / beta)[None, :], r2, out=tmp)
        y -= tmp
        r1 = r2
        r2 = y
        np.multiply(inv_m[:, None], r2, out=y_pre)
        y = y_pre
        oldb = beta.copy()
        beta2 = dots(r2, y)
        beta2 = np.where(beta2 > 0, beta2, 1e-300)
        beta = np.sqrt(beta2)

        oldeps = epsln.copy()
        delta = cs * dbar + sn * alfa
        gbar = sn * dbar - cs * alfa
        epsln = sn * beta
        dbar = -cs * beta
        gamma = np.sqrt(gbar**2 + beta**2)
        gamma = np.maximum(gamma, 1e-300)
        cs = gbar / gamma
        sn = beta / gamma
        phi = cs * phibar
        phibar = sn * phibar

        # w rotation: the retiring w1 array is rewritten with the new w
        wnew = w1
        w1 = w2
        w2 = w
        np.multiply(oldeps[None, :], w1, out=tmp)
        np.subtract(v, tmp, out=wnew)
        np.multiply(delta[None, :], w2, out=tmp)
        wnew -= tmp
        wnew /= gamma[None, :]
        w = wnew
        np.multiply(phi[None, :], w, out=tmp)
        x += tmp
        rel = phibar / beta1
        if np.all(rel[live] <= tol):
            break
    if project is not None:
        x = project(x)
    rel = phibar / beta1
    return BlockMinresResult(
        x=x, iterations=it, residuals=np.where(live, rel, 0.0),
        converged=bool(np.all(rel[live] <= tol)),
    )
