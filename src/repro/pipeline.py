"""End-to-end pipeline: QMB reference -> invDFT -> MLXC training data.

This is the paper's Fig. 2 data flow in one module:

1. a forward DFT solve provides an orthonormal orbital basis;
2. FCI in that basis gives the quantum-many-body density and energy
   (``rho_QMB``, the paper's training reference);
3. inverse DFT extracts the exact XC potential of ``rho_QMB``;
4. the (density, exact-v_xc, exact-E_xc) triple becomes an MLXC
   :class:`~repro.ml.training.TrainingSample`.

The default molecule set mirrors the paper's training data (H2, LiH
molecules, Li and N atoms) in the soft-pseudopotential model world.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.atoms.pseudo import AtomicConfiguration
from repro.core import DFTCalculation, SCFOptions
from repro.core.density import orbitals_to_nodes
from repro.invdft import InverseDFT, exact_xc_energy
from repro.ml.training import MLXCTrainer, TrainingSample, assemble_sample
from repro.qmb.fci import FCISolver, density_from_rdm
from repro.qmb.integrals import compute_integrals
from repro.xc.lda import LDA
from repro.xc.mlxc import MLXC

__all__ = [
    "MOLECULE_LIBRARY",
    "QMBReference",
    "qmb_reference",
    "invert_reference",
    "build_training_set",
    "train_mlxc",
]

#: geometries (Bohr) and FCI sectors of the model-world molecule library;
#: (symbols, positions, n_alpha, n_beta, n_orbitals)
MOLECULE_LIBRARY: dict[str, tuple] = {
    "H2": (["H", "H"], [[0, 0, 0], [1.4, 0, 0]], 1, 1, 6),
    "H2_stretched": (["H", "H"], [[0, 0, 0], [2.2, 0, 0]], 1, 1, 6),
    "LiH": (["Li", "H"], [[0, 0, 0], [3.0, 0, 0]], 2, 2, 6),
    "LiH_stretched": (["Li", "H"], [[0, 0, 0], [3.8, 0, 0]], 2, 2, 6),
    "Li": (["Li"], [[0, 0, 0]], 2, 1, 6),
    "N": (["N"], [[0, 0, 0]], 3, 2, 7),
    "He": (["He"], [[0, 0, 0]], 1, 1, 6),
    "Li2": (["Li", "Li"], [[0, 0, 0], [5.05, 0, 0]], 3, 3, 7),
    "Be": (["Be"], [[0, 0, 0]], 2, 2, 6),
    "H2O": (
        ["O", "H", "H"],
        [[0, 0, 0], [1.43, 1.11, 0], [-1.43, 1.11, 0]],
        4,
        4,
        7,
    ),
}

#: the paper's training systems (its Ne analog is replaced by He to keep
#: the FCI determinant space laptop-sized; documented in DESIGN.md)
DEFAULT_TRAINING_SET = ("H2", "LiH", "Li", "N")


@dataclass
class QMBReference:
    """FCI reference for one molecule on its finite-element mesh."""

    name: str
    calc: DFTCalculation
    rho_qmb_spin: np.ndarray  #: (nnodes, 2)
    e_fci: float
    e_ks_seed: float  #: the LDA seed calculation's energy
    n_alpha: int
    n_beta: int


def qmb_reference(
    name: str,
    cells_per_axis: int = 4,
    degree: int = 4,
    padding: float = 8.0,
) -> QMBReference:
    """Run the forward-DFT + FCI stage for a library molecule."""
    symbols, positions, n_a, n_b, n_orb = MOLECULE_LIBRARY[name]
    config = AtomicConfiguration(list(symbols), np.asarray(positions, float))
    calc = DFTCalculation(
        config, xc=LDA(), padding=padding, cells_per_axis=cells_per_axis,
        degree=degree, nstates=max(n_orb, n_a + 2),
        options=SCFOptions(max_iterations=60),
    )
    seed = calc.run()
    phi = orbitals_to_nodes(calc.mesh, seed.channels[0].psi)[:, :n_orb]
    ints = compute_integrals(calc.mesh, calc.config, phi)
    fci = FCISolver(ints, n_a, n_b).ground_state()
    rho_up = density_from_rdm(phi, fci.rdm1_alpha)
    rho_dn = density_from_rdm(phi, fci.rdm1_beta)
    return QMBReference(
        name=name,
        calc=calc,
        rho_qmb_spin=np.stack([rho_up, rho_dn], axis=1),
        e_fci=fci.energy,
        e_ks_seed=seed.energy,
        n_alpha=n_a,
        n_beta=n_b,
    )


def invert_reference(
    ref: QMBReference,
    max_iterations: int = 150,
    minres_tol: float = 1e-6,
    minres_maxiter: int = 150,
    eta: float = 2.0,
) -> tuple[TrainingSample, InverseDFT]:
    """Run invDFT on a QMB reference and package a training sample."""
    mesh = ref.calc.mesh
    inv = InverseDFT(
        mesh, ref.calc.config, ref.rho_qmb_spin,
        nstates=max(ref.n_alpha, ref.n_beta) + 3,
        minres_tol=minres_tol, minres_maxiter=minres_maxiter,
    )
    v0, _ = LDA().potential_and_energy(mesh, ref.rho_qmb_spin)
    out = inv.run(v0, eta=eta, max_iterations=max_iterations, tol=1e-12)
    exc = exact_xc_energy(inv, out, ref.e_fci)
    sample = assemble_sample(ref.name, mesh, ref.rho_qmb_spin, out.v_xc, exc)
    return sample, inv


def build_training_set(
    names: tuple[str, ...] = DEFAULT_TRAINING_SET,
    cells_per_axis: int = 4,
    degree: int = 4,
    invdft_iterations: int = 150,
    verbose: bool = False,
) -> list[TrainingSample]:
    """QMB + invDFT over a molecule set -> MLXC training samples."""
    samples = []
    for name in names:
        ref = qmb_reference(name, cells_per_axis=cells_per_axis, degree=degree)
        sample, _ = invert_reference(ref, max_iterations=invdft_iterations)
        if verbose:  # pragma: no cover
            print(
                f"[pipeline] {name}: E_FCI = {ref.e_fci:+.6f} Ha, "
                f"E_xc(exact) = {sample.exc_target:+.6f} Ha"
            )
        samples.append(sample)
    return samples


def train_mlxc(
    samples: list[TrainingSample],
    epochs: int = 300,
    lr: float = 2e-3,
    warm_start: str = "pbe",
    seed: int = 0,
    verbose: bool = False,
) -> tuple[MLXC, list[dict]]:
    """Train MLXC on invDFT samples (optionally PBE/LDA warm-started)."""
    if warm_start == "pbe":
        from repro.xc.gga import PBE

        functional = MLXC.bootstrapped_from(PBE(), seed=seed, epochs=250)
    elif warm_start == "lda":
        functional = MLXC.bootstrapped_from(LDA(), seed=seed, epochs=250)
    else:
        functional = MLXC(seed=seed)
    trainer = MLXCTrainer(samples, functional)
    history = trainer.train(epochs=epochs, lr=lr, verbose=verbose)
    return functional, history
