"""invDFT demonstration: extract the exact XC potential of an FCI density.

Reproduces the paper's Sec 5.1 methodology at laptop scale on the H2
molecule:

1. solve H2 with LDA to get an orbital basis;
2. FCI in that basis -> the exact (model-world) correlated density;
3. inverse DFT (projected block-MINRES adjoints, Sec 5.3.1) -> the exact
   v_xc(r) whose KS ground state reproduces the FCI density;
4. compare the exact v_xc against LDA's along the bond axis, and verify the
   preconditioner's iteration-count advantage.

Usage::

    python examples/invdft_exact_xc.py
"""

from repro.obs import Stopwatch

import numpy as np

from repro.invdft.adjoint import adjoint_rhs, solve_adjoint
from repro.pipeline import invert_reference, qmb_reference
from repro.xc.lda import LDA


def main() -> None:
    t0 = Stopwatch()
    print("=== stage 1-2: LDA seed + FCI reference density (H2)")
    ref = qmb_reference("H2")
    print(
        f"    E_LDA = {ref.e_ks_seed:+.6f} Ha, E_FCI = {ref.e_fci:+.6f} Ha "
        f"(correlation gain {1000 * (ref.e_ks_seed - ref.e_fci):+.1f} mHa) "
        f"[{t0.elapsed():.0f}s]"
    )

    print("=== stage 3: inverse DFT (PDE-constrained optimization)")
    sample, inv = invert_reference(ref, max_iterations=120)
    print(
        f"    exact E_xc = {sample.exc_target:+.6f} Ha  [{t0.elapsed():.0f}s]"
    )

    # compare exact vs LDA v_xc along the bond axis
    mesh = ref.calc.mesh
    v_lda, _ = LDA().potential_and_energy(mesh, ref.rho_qmb_spin)
    axis = np.argsort(np.abs(mesh.node_coords[:, 1] - mesh.lengths[1] / 2)
                      + np.abs(mesh.node_coords[:, 2] - mesh.lengths[2] / 2))
    line = axis[: mesh.nnodes_axis[0]]
    line = line[np.argsort(mesh.node_coords[line, 0])]
    print("\n    x (Bohr)   rho_FCI     v_xc_exact   v_xc_LDA")
    for i in line[:: max(len(line) // 12, 1)]:
        x = mesh.node_coords[i, 0]
        print(
            f"    {x:8.2f}  {ref.rho_qmb_spin[i].sum():10.5f}  "
            f"{sample.v_target[i, 0]:+10.5f}  {v_lda[i, 0]:+10.5f}"
        )

    print(
        "\n=== preconditioned vs plain block-MINRES (Löwdin basis)\n"
        "    note: the paper's ~5x gain applies to the raw FE basis whose\n"
        "    diagonal varies like h^-2 (see benchmarks/bench_minres_precond);\n"
        "    the Löwdin basis used here absorbs most of that disparity."
    )
    s = 0
    op = inv.ops[s]
    psi, evals = inv._psi[s], inv._evals[s]
    drho = (inv.rho_t - ref.rho_qmb_spin)[:, s] + 1e-3  # synthetic mismatch
    occ = np.zeros(psi.shape[1])
    occ[: ref.n_alpha] = 1.0
    G = adjoint_rhs(mesh, psi, occ, drho)
    for label, pre in (("preconditioned", True), ("unpreconditioned", False)):
        r = solve_adjoint(
            op, psi, evals, G, tol=1e-7, maxiter=2000, use_preconditioner=pre
        )
        print(f"    {label:<18} {r.iterations:5d} MINRES iterations "
              f"(converged={r.converged})")
    print(f"=== done in {t0.elapsed():.0f}s")


if __name__ == "__main__":
    main()
