"""Full MLXC training pipeline (paper Sec 5.1-5.2, Fig 2).

Runs the complete chain on the model-world training set:

    FCI (exact QMB reference) -> invDFT (exact v_xc) -> MLXC training,

then deploys the trained functional in a self-consistent DFT-FE-MLXC
calculation and compares against the FCI energy of a held-out molecule.

The trained network is saved to ``src/repro/xc/data/mlxc_pretrained.npz``
(the weights shipped with the repository) when run with ``--save``.

Usage::

    python examples/mlxc_training.py [--save] [--fast]
"""

import argparse
import pathlib
from repro.obs import Stopwatch


from repro.core import DFTCalculation, SCFOptions
from repro.pipeline import (
    DEFAULT_TRAINING_SET,
    build_training_set,
    qmb_reference,
    train_mlxc,
)

DATA_DIR = pathlib.Path(__file__).resolve().parent.parent / "src/repro/xc/data"


def main() -> None:
    ap = argparse.ArgumentParser()
    ap.add_argument("--save", action="store_true", help="save trained weights")
    ap.add_argument("--fast", action="store_true", help="reduced-cost settings")
    args = ap.parse_args()

    invdft_iters = 60 if args.fast else 200
    epochs = 120 if args.fast else 400

    t0 = Stopwatch()
    print(f"=== building QMB + invDFT training data: {DEFAULT_TRAINING_SET}")
    samples = build_training_set(
        invdft_iterations=invdft_iters, verbose=True
    )
    print(f"    ({t0.elapsed():.0f}s)")

    print("=== training MLXC (5 layers x 80 neurons, ELU; composite loss)")
    mlxc, history = train_mlxc(samples, epochs=epochs, verbose=True)
    print(
        f"    loss {history[0]['total']:.3e} -> {history[-1]['total']:.3e} "
        f"({t0.elapsed():.0f}s)"
    )

    if args.save:
        DATA_DIR.mkdir(parents=True, exist_ok=True)
        mlxc.save(str(DATA_DIR / "mlxc_pretrained.npz"))
        print(f"=== saved weights to {DATA_DIR / 'mlxc_pretrained.npz'}")

    print("=== deploying MLXC self-consistently on a held-out molecule (He)")
    ref = qmb_reference("He")
    calc = DFTCalculation(
        ref.calc.config, xc=mlxc, mesh=ref.calc.mesh,
        options=SCFOptions(max_iterations=50),
    )
    res = calc.run()
    from repro.xc.lda import LDA
    from repro.xc.gga import PBE

    for name, xc in (("LDA", LDA()), ("PBE", PBE())):
        r = DFTCalculation(ref.calc.config, xc=xc, mesh=ref.calc.mesh).run()
        print(
            f"    {name:<6} E = {r.energy:+.6f} Ha   "
            f"|E - E_FCI| = {abs(r.energy - ref.e_fci) * 1000:.2f} mHa"
        )
    print(
        f"    MLXC   E = {res.energy:+.6f} Ha   "
        f"|E - E_FCI| = {abs(res.energy - ref.e_fci) * 1000:.2f} mHa"
    )
    print(f"    E_FCI  = {ref.e_fci:+.6f} Ha")
    print(f"=== done in {t0.elapsed():.0f}s")


if __name__ == "__main__":
    main()
