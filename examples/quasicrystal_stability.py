"""Quasicrystal thermodynamic stability (the paper's first science problem).

The paper asks: at what particle size does the aperiodic YbCd quasicrystal
become thermodynamically competitive with a crystalline phase of the same
composition?  The answer comes from the competition between *bulk* and
*surface* energies, ``E(N) = e_bulk N + e_surf N^(2/3)``.

This example runs the full workflow at laptop scale:

1. generate the icosahedral cut-and-project nanoparticle with the paper's
   exact composition (Yb295Cd1648, 1,943 atoms, 40,040 e-) and report its
   geometry;
2. carve *small* concentric clusters from the quasicrystal point set and
   from an FCC reference crystal, and compute real DFT total energies for a
   size series (Cd-only analog clusters keep the SCF laptop-sized);
3. fit both series to the size-scaling law and locate the bulk/surface
   crossover;
4. model the full 40,040-electron production run on Perlmutter
   (the paper's Table 2 configuration).

Usage::

    python examples/quasicrystal_stability.py [--sizes 2 4 6 8]
"""

import argparse
from repro.obs import Stopwatch

import numpy as np

from repro.analysis.stability import crossover_size, fit_size_scaling
from repro.atoms.pseudo import AtomicConfiguration
from repro.core import DFTCalculation, SCFOptions
from repro.hpc.machine import PERLMUTTER
from repro.hpc.perfmodel import ModelOptions
from repro.hpc.runtime import PAPER_WORKLOADS, time_to_solution
from repro.materials.quasicrystal import ybcd_nanoparticle
from repro.xc import LDA


def carve_cluster(points: np.ndarray, n: int) -> np.ndarray:
    """The n points closest to the centroid."""
    c = points.mean(axis=0)
    order = np.argsort(np.linalg.norm(points - c, axis=1), kind="stable")
    return points[order[:n]] - points[order[:n]].mean(axis=0)


def fcc_points(a: float = 5.8, shells: int = 3) -> np.ndarray:
    """FCC reference lattice points around the origin."""
    rng = np.arange(-shells, shells + 1)
    base = np.array([[0, 0, 0], [0.5, 0.5, 0], [0.5, 0, 0.5], [0, 0.5, 0.5]])
    pts = []
    for i in rng:
        for j in rng:
            for k in rng:
                pts.append((base + np.array([i, j, k])) * a)
    return np.concatenate(pts, axis=0)


def cluster_energy(points: np.ndarray, mesh_cells: int = 4) -> float:
    """LDA total energy of a Cd-analog cluster (He pseudo-atoms keep the
    electron count manageable while preserving the geometry comparison)."""
    config = AtomicConfiguration(["He"] * len(points), points)
    calc = DFTCalculation(
        config, xc=LDA(), padding=7.0, cells_per_axis=mesh_cells, degree=4,
        options=SCFOptions(max_iterations=50, temperature=2e-3),
    )
    res = calc.run()
    if not res.converged:  # pragma: no cover - diagnostics
        print(f"    warning: SCF not fully converged for N={len(points)}")
    return res.energy


def main() -> None:
    ap = argparse.ArgumentParser()
    ap.add_argument("--sizes", type=int, nargs="+", default=[2, 4, 6, 9])
    args = ap.parse_args()

    t0 = Stopwatch()
    print("=== full-size YbCd quasicrystal nanoparticle (paper Fig 6)")
    nano = ybcd_nanoparticle()
    pos = nano.config.positions
    print(
        f"    atoms = {nano.natoms} (Yb {nano.config.symbols.count('Yb')}, "
        f"Cd {nano.config.symbols.count('Cd')}), electrons = "
        f"{nano.config.n_electrons}, width = "
        f"{2 * np.linalg.norm(pos, axis=1).max() * 0.0529177:.2f} nm"
    )

    print("=== diffraction signature (Shechtman's forbidden symmetry)")
    from repro.materials.diffraction import rotational_symmetry_score
    from repro.materials.quasicrystal import icosahedral_projectors

    e_par, _ = icosahedral_projectors()
    score10 = max(
        rotational_symmetry_score(pos, e_par[:, 0], 10, q) for q in (1.6, 2.0, 2.6)
    )
    print(f"    10-fold diffraction-ring symmetry about a 5-fold axis: "
          f"{score10:.3f} (forbidden for any periodic crystal)")

    print("=== size series: quasicrystal vs FCC clusters (real DFT, LDA)")
    qc_pts = pos
    fcc = fcc_points()
    e_qc, e_fcc = [], []
    for n in args.sizes:
        eq = cluster_energy(carve_cluster(qc_pts, n))
        ef = cluster_energy(carve_cluster(fcc, n))
        e_qc.append(eq)
        e_fcc.append(ef)
        print(
            f"    N = {n:3d}: E_qc = {eq:+.5f} Ha, E_fcc = {ef:+.5f} Ha "
            f"[{t0.elapsed():.0f}s]"
        )

    sizes = np.asarray(args.sizes, float)
    fit_qc = fit_size_scaling(sizes, np.asarray(e_qc))
    fit_fcc = fit_size_scaling(sizes, np.asarray(e_fcc))
    print("=== size-scaling decomposition E(N) = e_bulk N + e_surf N^(2/3)")
    print(
        f"    quasicrystal: e_bulk = {fit_qc.e_bulk:+.5f} Ha/atom, "
        f"e_surf = {fit_qc.e_surf:+.5f}"
    )
    print(
        f"    fcc crystal : e_bulk = {fit_fcc.e_bulk:+.5f} Ha/atom, "
        f"e_surf = {fit_fcc.e_surf:+.5f}"
    )
    nstar = crossover_size(fit_qc, fit_fcc)
    if np.isfinite(nstar):
        print(f"    bulk/surface stability crossover at N* ~ {nstar:.0f} atoms")
    else:
        print("    no crossover in this size range (one phase dominates)")

    print("=== modeled production run (paper Table 2: 1,120 Perlmutter nodes)")
    tts = time_to_solution(
        PAPER_WORKLOADS["YbCdQC"], PERLMUTTER, 1120, n_scf=34,
        opts=ModelOptions(use_rccl=True),
    )
    print(
        f"    init {tts['initialization']:.0f} s + SCF {tts['total_scf']:.0f} s "
        f"= total {tts['total']:.0f} s (paper: 69 + 2023 = 2092 s)"
    )
    print(f"=== done in {t0.elapsed():.0f}s")


if __name__ == "__main__":
    main()
