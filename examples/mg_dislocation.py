"""Mg <c+a> dislocations and interacting extended defects (second science
problem of the paper).

Workflow:

1. build the paper's full-size benchmark geometries — DislocMgY (6,016
   atoms) and TwinDislocMgY(A/C) (36,344 / 74,164 atoms, up to 619,124
   electrons in the supercell) — and verify the exact electron bookkeeping;
2. run *real* k-point-sampled periodic DFT on a small Mg cell with and
   without a screw dislocation dipole analog, extracting a dislocation
   energy per unit line length (the unit of the paper's Delta E^{I-II} =
   16 meV/nm result);
3. compute a solute-defect interaction energy (Y analog at the core vs in
   the bulk);
4. model the production TwinDislocMgY runs on Frontier (Table 3).

Usage::

    python examples/mg_dislocation.py
"""

from repro.obs import Stopwatch

import numpy as np

from repro.analysis.defect_energetics import (
    energy_per_dislocation_length,
    interaction_energy,
)
from repro.atoms.pseudo import AtomicConfiguration
from repro.core import DFTCalculation, SCFOptions
from repro.hpc.machine import FRONTIER
from repro.hpc.perfmodel import ModelOptions
from repro.hpc.runtime import scf_breakdown
from repro.materials.defects import apply_screw_dislocation
from repro.materials.lattice import hcp_orthorhombic, supercell
from repro.materials.systems import build_system, kpoint_set
from repro.xc import LDA


def small_mg_cell(reps=(2, 2, 1)):
    lat, sym, frac = hcp_orthorhombic(a=5.2, c=8.45)  # slightly compressed toy cell
    return supercell(lat, sym, frac, reps, pbc=(False, False, True))


def run_dft(config, nk=2, **kw):
    opts = SCFOptions(max_iterations=60, temperature=5e-3)
    calc = DFTCalculation(
        config, xc=LDA(), padding=7.0, cells_per_axis=(3, 3, 2), degree=4,
        kpoints=kpoint_set(nk), options=opts, **kw,
    )
    return calc.run()


def main() -> None:
    t0 = Stopwatch()
    print("=== full-size benchmark geometries (paper Sec 6.2)")
    for name in ("DislocMgY", "TwinDislocMgY(A)", "TwinDislocMgY(C)"):
        s = build_system(name)
        print(
            f"    {name:<18} {s.config.natoms:6d} atoms, "
            f"{s.electrons_per_kpoint:7d} e-/k x {s.n_kpoints} k-points = "
            f"{s.supercell_electrons:7d} e- in the supercell"
        )
    print(f"    [{t0.elapsed():.0f}s]")

    print("=== real k-point DFT: dislocation line energy (small Mg cell)")
    perfect = small_mg_cell()
    res_p = run_dft(perfect)
    print(
        f"    perfect cell  ({perfect.natoms} atoms x 2 k-pts): "
        f"E = {res_p.energy:+.6f} Ha, converged={res_p.converged} "
        f"[{t0.elapsed():.0f}s]"
    )
    disloc = apply_screw_dislocation(perfect, burgers=perfect.lattice[2, 2] * 0.5)
    res_d = run_dft(disloc)
    line = perfect.lattice[2, 2]
    e_line = energy_per_dislocation_length(res_d.energy, res_p.energy, line)
    print(
        f"    dislocated    : E = {res_d.energy:+.6f} Ha  ->  "
        f"E_disloc = {e_line:+.0f} meV/nm of line [{t0.elapsed():.0f}s]"
    )

    print("=== solute-dislocation interaction (Y-analog: Mg -> Li swap)")
    # an electron-poor substitution is this model world's 'solute'
    def with_solute(cfg, idx):
        symbols = list(cfg.symbols)
        symbols[idx] = "Li"
        return AtomicConfiguration(
            symbols, cfg.positions.copy(), lattice=cfg.lattice.copy(), pbc=cfg.pbc
        )

    core_idx = int(
        np.argmin(
            np.linalg.norm(
                disloc.positions[:, :2]
                - 0.5 * np.diag(disloc.lattice)[:2], axis=1
            )
        )
    )
    far_idx = int(
        np.argmax(
            np.linalg.norm(
                disloc.positions[:, :2]
                - 0.5 * np.diag(disloc.lattice)[:2], axis=1
            )
        )
    )
    e_core = run_dft(with_solute(disloc, core_idx)).energy
    e_far = run_dft(with_solute(perfect, far_idx)).energy
    e_int = interaction_energy(e_core, res_d.energy, e_far, res_p.energy)
    sign = "attractive" if e_int < 0 else "repulsive"
    print(
        f"    E_int(core vs bulk) = {1000 * e_int:+.1f} mHa ({sign}) "
        f"[{t0.elapsed():.0f}s]"
    )

    print("=== modeled production runs on Frontier (paper Table 3)")
    opts = ModelOptions(optimal_routing=False)
    from repro.hpc.runtime import PAPER_WORKLOADS

    for name, nodes, paper in (
        ("TwinDislocMgY(A)", 2400, (223.0, 226.3)),
        ("TwinDislocMgY(C)", 8000, (513.7, 659.7)),
    ):
        m = scf_breakdown(PAPER_WORKLOADS[name], FRONTIER, nodes, opts)
        print(
            f"    {name:<18} {nodes} nodes: {m.wall_time:6.1f} s/SCF, "
            f"{m.sustained_pflops:6.1f} PFLOPS ({m.peak_fraction:.1%}) "
            f"| paper {paper[0]} s, {paper[1]} PFLOPS"
        )
    print(f"=== done in {t0.elapsed():.0f}s")


if __name__ == "__main__":
    main()
