"""Exascale performance study: regenerate the paper's Figs 4/5/7/8 and
Tables 1/2/3 from the calibrated machine model + measured local kernels.

Everything algorithmic (blocked cell-level GEMMs, mixed-precision CholGS/RR,
FP32 halo exchange) runs for real on this machine; the mapping to
Frontier/Summit/Perlmutter wall-clock goes through the roofline +
communication model of ``repro.hpc`` (the documented hardware substitution).

Usage::

    python examples/exascale_performance.py
"""

from repro.obs import Stopwatch

import numpy as np

from repro.fem.mesh import uniform_mesh
from repro.fem.assembly import KSOperator
from repro.core.chebyshev import chebyshev_filter, lanczos_upper_bound
from repro.hpc.cluster import VirtualCluster
from repro.hpc.machine import CRUSHER, FRONTIER, PERLMUTTER, SUMMIT
from repro.hpc.perfmodel import ModelOptions, cf_block_efficiency
from repro.hpc.runtime import (
    PAPER_WORKLOADS,
    scf_breakdown,
    strong_scaling,
    time_to_solution,
)


def fig4_cf_block_size() -> None:
    print("=== Fig 4: CF efficiency vs block size B_f (DislocMgY, p=8)")
    print(f"    {'B_f':>5} {'Summit':>8} {'Crusher':>8} {'Perlmutter':>11}")
    for bf in (100, 200, 300, 400, 500):
        print(
            f"    {bf:>5} {cf_block_efficiency(SUMMIT, bf):>7.1%} "
            f"{cf_block_efficiency(CRUSHER, bf):>7.1%} "
            f"{cf_block_efficiency(PERLMUTTER, bf):>10.1%}"
        )
    print("    paper @500: Summit 56.3%, Crusher 41.1%, Perlmutter 85.7%")

    # measured on THIS machine: the same blocked CF kernel, real numpy
    mesh = uniform_mesh((8.0,) * 3, (4, 4, 4), degree=5)
    op = KSOperator(mesh)
    op.set_potential(np.zeros(mesh.nnodes))
    b = lanczos_upper_bound(op)
    X = np.random.default_rng(0).standard_normal((op.n, 64))
    print("    measured host-CPU CF throughput (same kernel, GFLOP/s):")
    for bf in (4, 16, 64):
        t0 = Stopwatch()
        chebyshev_filter(op, X, 8, 1.0, b, -1.0, block_size=bf)
        dt = Stopwatch() - t0
        flops = 8 * 2 * mesh.ncells * mesh.nodes_per_cell**2 * 64
        print(f"      B_f={bf:3d}: {flops / dt / 1e9:8.2f} GFLOP/s")


def fig5_summit_optimizations() -> None:
    print("\n=== Fig 5: Summit strong scaling, baseline vs optimized (YbCd)")
    wl = PAPER_WORKLOADS["YbCdQC"]
    base = ModelOptions(mixed_precision=False, async_overlap=False)
    opt = ModelOptions(mixed_precision=True, async_overlap=True, use_rccl=True)
    print(f"    {'nodes':>6} {'baseline':>10} {'optimized':>10} {'gain':>6}")
    for nodes in (240, 480, 960, 1920):
        tb = scf_breakdown(wl, SUMMIT, nodes, base).wall_time
        to = scf_breakdown(wl, SUMMIT, nodes, opt).wall_time
        print(f"    {nodes:>6} {tb:>9.1f}s {to:>9.1f}s {tb / to:>5.2f}x")
    print("    paper: 1.8x at the minimum walltime; 36% -> 54% efficiency")


def fig7_invdft_scaling() -> None:
    print("\n=== Fig 7: invDFT strong scaling (ortho-benzyne, Perlmutter)")
    from repro.hpc.runtime import invdft_iteration_time

    wl = PAPER_WORKLOADS["OrthoBenzyne"]
    print(f"    {'nodes':>6} {'s/iteration':>12} {'speedup':>8}")
    t4 = None
    for nodes in (4, 8, 16, 32):
        t_iter = invdft_iteration_time(
            wl, PERLMUTTER, nodes, opts=ModelOptions(use_rccl=True)
        )
        t4 = t4 or t_iter
        print(f"    {nodes:>6} {t_iter:>11.1f}s {t4 / t_iter:>7.2f}x")
    print("    paper: 104 s -> 20 s from 4 to 32 nodes (5.2x)")


def fig8_dftfe_scaling() -> None:
    print("\n=== Fig 8: DFT-FE-MLXC strong scaling (YbCd, 75.07M DoF)")
    wl = PAPER_WORKLOADS["YbCdQC"]
    for machine, nodes_list in (
        (PERLMUTTER, [140, 280, 560, 1120]),
        (FRONTIER, [120, 240, 480, 960]),
    ):
        curve = strong_scaling(
            wl, machine, nodes_list, ModelOptions(use_rccl=machine is PERLMUTTER)
        )
        rows = "  ".join(f"{n}n:{t:6.1f}s({e:4.0%})" for n, t, e in curve)
        print(f"    {machine.name:<11} {rows}")
    print("    paper: ~80% at 240 Frontier / 560 Perlmutter nodes; ~25 s at 1120")


def table1_sota() -> None:
    print("\n=== Table 1 (our rows): DFT-FE-MLXC on Frontier")
    opts = ModelOptions(optimal_routing=False)
    for name, nodes in (("TwinDislocMgY(A)", 2400), ("TwinDislocMgY(C)", 8000)):
        wl = PAPER_WORKLOADS[name]
        m = scf_breakdown(wl, FRONTIER, nodes, opts)
        print(
            f"    {name:<18} ({wl.natoms} atoms, {wl.electrons_per_kpt} e-)x"
            f"{wl.n_kpoints}k  {nodes * 8} GCDs: {m.wall_time / 60:4.1f} min/SCF, "
            f"{m.sustained_pflops:6.1f} PFLOPS ({m.peak_fraction:.1%})"
        )
    print("    paper: 3.7 min/SCF, 226.3 PFLOPS (49.3%); 8.6 min/SCF, 659.7 (43.1%)")


def table2_tts() -> None:
    print("\n=== Table 2: YbCd time-to-solution, 1,120 Perlmutter nodes")
    tts = time_to_solution(
        PAPER_WORKLOADS["YbCdQC"], PERLMUTTER, 1120, n_scf=34,
        opts=ModelOptions(use_rccl=True),
    )
    print(
        f"    init {tts['initialization']:5.0f} s | SCF {tts['total_scf']:6.0f} s "
        f"({tts['n_scf']} steps) | total {tts['total']:6.0f} s"
    )
    print("    paper:  69 s | 2023 s (34 steps) | 2092 s")


def table3_sustained() -> None:
    print("\n=== Table 3: per-kernel breakdown (model | paper)")
    opts = ModelOptions(optimal_routing=False)
    paper_c = {
        "CF": (135.4, 57809.5), "CholGS-S": (79.3, 54428.9),
        "CholGS-CI": (8.8, None), "CholGS-O": (49.6, 54428.9),
        "RR-P": (66.7, 61035.7), "RR-D": (22.3, None),
        "RR-SR": (93.5, 108857.9), "DC": (4.3, 2302.5),
        "DH+EP+Others": (53.8, None),
    }
    m = scf_breakdown(PAPER_WORKLOADS["TwinDislocMgY(C)"], FRONTIER, 8000, opts)
    print("    TwinDislocMgY(C), 8000 Frontier nodes, 619,124 e- supercell")
    for name, sec, pf, pflops in m.table_rows():
        ps, ppf = paper_c[name]
        pf_str = f"{pf:9.1f}" if pf else "        -"
        ppf_str = f"{ppf:9.1f}" if ppf else "        -"
        print(f"    {name:<14} {sec:7.1f}s {pf_str} PF | {ps:7.1f}s {ppf_str} PF")
    print(
        f"    TOTAL: {m.wall_time:.1f}s, {m.sustained_pflops:.1f} PFLOPS "
        f"({m.peak_fraction:.1%}) | paper 513.7s, 659.7 PFLOPS (43.1%)"
    )


def virtual_cluster_demo() -> None:
    print("\n=== virtual cluster: the distributed algorithm, executed for real")
    mesh = uniform_mesh((6.0,) * 3, (4, 4, 4), degree=4)
    x = np.random.default_rng(1).normal(size=(mesh.nnodes, 8))
    for p, fp32 in ((8, False), (8, True)):
        vc = VirtualCluster(mesh, p, fp32_halo=fp32)
        vc.apply_stiffness(x)
        print(
            f"    P={p} fp32_halo={fp32!s:<5} p2p bytes/apply = "
            f"{vc.traffic.p2p_bytes:,.0f} "
            f"({vc.traffic.p2p_messages} messages)"
        )
    print("    -> FP32 halo halves the boundary traffic (paper Sec 5.4.2)")


def main() -> None:
    fig4_cf_block_size()
    fig5_summit_optimizations()
    fig7_invdft_scaling()
    fig8_dftfe_scaling()
    table1_sota()
    table2_tts()
    table3_sustained()
    virtual_cluster_demo()


if __name__ == "__main__":
    main()
