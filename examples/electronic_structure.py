"""Electronic-structure analysis workflow: bands, DOS, checkpoint/restart.

A post-processing tour on two systems:

1. bulk HCP magnesium (fully periodic, metallic): self-consistent ground
   state, Gaussian-smeared density of states around the Fermi level, and a
   checkpoint -> restart cycle that reconverges in a couple of iterations;
2. a periodic H chain: non-self-consistent band structure along
   Gamma -> Z at the frozen SCF potential, plus the nonlocal-projector
   (Kleinman-Bylander) variant of the Hamiltonian.

Usage::

    python examples/electronic_structure.py
"""

import tempfile
from repro.obs import Stopwatch

import numpy as np

from repro.atoms.nonlocal_psp import model_projectors
from repro.atoms.pseudo import AtomicConfiguration
from repro.core import DFTCalculation, SCFOptions
from repro.core.bands import band_structure, kpath
from repro.core.dos import density_of_states, integrated_dos
from repro.core.io import load_checkpoint, save_checkpoint
from repro.materials.lattice import hcp_orthorhombic, supercell
from repro.xc import LDA


def bulk_mg_dos() -> None:
    print("=== bulk HCP Mg: ground state + density of states")
    t0 = Stopwatch()
    lat, sym, frac = hcp_orthorhombic()
    cfg = supercell(lat, sym, frac, (1, 1, 1), pbc=(True, True, True))
    calc = DFTCalculation(
        cfg, xc=LDA(), cells_per_axis=(2, 3, 3), degree=4,
        options=SCFOptions(max_iterations=60, temperature=5e-3),
        kpoints=[((0, 0, 0), 0.5), ((0, 0, 0.5), 0.5)],
    )
    res = calc.run()
    print(f"    E = {res.energy:+.6f} Ha ({res.energy / 4:.4f}/atom), "
          f"mu = {res.fermi_level:+.4f} Ha, converged={res.converged} "
          f"[{t0.elapsed():.0f}s]")

    E = np.linspace(res.fermi_level - 0.4, res.fermi_level + 0.3, 800)
    g = density_of_states(
        res.eigenvalues, [ch.weight for ch in res.channels], E, sigma=0.02
    )
    n_below = integrated_dos(E, g, res.fermi_level)
    print(f"    DOS at the Fermi level: {np.interp(res.fermi_level, E, g):.2f} "
          f"states/Ha (metallic); integrated to mu: {n_below:.2f} e-")
    print("    DOS profile (E - mu in Ha : g):")
    for e in np.linspace(-0.3, 0.2, 6):
        print(f"      {e:+.2f} : {'#' * int(np.interp(res.fermi_level + e, E, g))}")

    with tempfile.NamedTemporaryFile(suffix=".npz") as f:
        save_checkpoint(f.name, calc.mesh, res)
        data = load_checkpoint(f.name, mesh=calc.mesh)
        restart = DFTCalculation(
            calc.config, xc=LDA(), mesh=calc.mesh,
            kpoints=[((0, 0, 0), 0.5), ((0, 0, 0.5), 0.5)],
            options=SCFOptions(max_iterations=20, temperature=5e-3),
        ).run(rho0=data["rho_spin"])
    print(f"    checkpoint restart: reconverged in {restart.n_iterations} "
          f"iterations (dE = {abs(restart.energy - res.energy) * 1000:.3f} mHa)")


def h_chain_bands() -> None:
    print("=== periodic H chain: band structure along Gamma -> Z")
    t0 = Stopwatch()
    lat = np.diag([4.0, 10.0, 10.0])
    chain = AtomicConfiguration(
        ["H"], [[2.0, 5.0, 5.0]], lattice=lat, pbc=(True, False, False)
    )
    calc = DFTCalculation(
        chain, padding=5.0, cells_per_axis=(2, 3, 3), degree=4,
        kpoints=[((0, 0, 0), 0.5), ((0.5, 0, 0), 0.5)],
        options=SCFOptions(max_iterations=40, temperature=5e-3), xc=LDA(),
    )
    res = calc.run()
    path = kpath((0, 0, 0), (0.5, 0, 0), 5)
    bands = band_structure(calc.mesh, res, path, nbands=3)
    print("    k (frac)   band energies (Ha)")
    for k, row in zip(path, bands):
        print(f"    {k[0]:6.3f}    " + "  ".join(f"{e:+.4f}" for e in row))
    width = bands[-1, 0] - bands[0, 0]
    print(f"    lowest-band width: {width:.4f} Ha [{t0.elapsed():.0f}s]")

    print("=== nonlocal (Kleinman-Bylander) projector variant (He marker atom)")
    he = AtomicConfiguration(["He"], [[0, 0, 0]])
    base = DFTCalculation(he, xc=LDA(), padding=8.0, cells_per_axis=3, degree=3)
    r0 = base.run()
    projs = model_projectors(base.config)
    r1 = DFTCalculation(
        base.config, xc=LDA(), mesh=base.mesh, nonlocal_projectors=projs
    ).run()
    print(f"    local-only E = {r0.energy:+.6f} Ha; with separable s-channel "
          f"projector E = {r1.energy:+.6f} Ha (shift "
          f"{1000 * (r1.energy - r0.energy):+.1f} mHa, variationally positive)")


def main() -> None:
    bulk_mg_dos()
    h_chain_bands()


if __name__ == "__main__":
    main()
