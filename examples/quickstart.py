"""Quickstart: ground-state DFT of an H2 molecule on a spectral-element mesh.

Demonstrates the public API end to end in under a minute: build an atomic
configuration, run the Chebyshev-filtered SCF at three levels of XC theory
(LDA, PBE, post-SCF PBE0 hybrid), and inspect energies, eigenvalues and the
HOMO-LUMO gap.

Usage::

    python examples/quickstart.py
"""

from repro.obs import Stopwatch

import numpy as np

from repro.atoms.pseudo import AtomicConfiguration
from repro.core import DFTCalculation, SCFOptions, homo_lumo_gap
from repro.xc import LDA, PBE
from repro.xc.hybrid import PBE0


def main() -> None:
    # H2 at its model-world bond length (Bohr)
    h2 = AtomicConfiguration(["H", "H"], [[0.0, 0.0, 0.0], [1.4, 0.0, 0.0]])

    print("system: H2, 2 valence electrons, isolated (multipole Dirichlet box)")
    results = {}
    for name, xc in (("LDA (Level 1)", LDA()), ("PBE (Level 2)", PBE())):
        t0 = Stopwatch()
        calc = DFTCalculation(
            h2, xc=xc, padding=8.0, cells_per_axis=4, degree=5,
            options=SCFOptions(max_iterations=40),
        )
        res = calc.run()
        results[name] = (calc, res)
        print(
            f"{name:<16} E = {res.energy:+.6f} Ha   "
            f"gap = {homo_lumo_gap(res) * 27.2114:5.2f} eV   "
            f"{res.n_iterations} SCF iters, {t0.elapsed():.1f}s, "
            f"converged={res.converged}"
        )

    # Level 3: hybrid correction on the PBE orbitals
    calc, res = results["PBE (Level 2)"]
    t0 = Stopwatch()
    e_hyb = PBE0().post_scf_energy(calc.mesh, res)
    print(f"{'PBE0 (Level 3)':<16} E = {e_hyb:+.6f} Ha   (post-SCF, {t0.elapsed():.1f}s)")

    # a few diagnostics from the converged PBE state
    print("\nKohn-Sham spectrum (PBE, Ha):", np.round(res.eigenvalues[0][:4], 4))
    print("occupations:", np.round(res.occupations[0][:4], 4))
    print("electron count:", round(float(calc.mesh.integrate(res.rho)), 8))
    print("Fermi level:", round(res.fermi_level, 4), "Ha")
    b = res.breakdown
    print(
        f"energy breakdown: band {b.band:+.4f}, electrostatic "
        f"{b.electrostatic:+.4f}, xc {b.xc:+.4f}, -TS "
        f"{-b.temperature * b.entropy:+.6f}"
    )


if __name__ == "__main__":
    main()
