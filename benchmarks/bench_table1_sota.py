"""Table 1: state-of-the-art comparison — this work's rows.

Regenerates the DFT-FE-MLXC rows of Table 1 (benchmark system, machine
scale, wall time per SCF, sustained PFLOPS / % of peak) and checks them
against the published values.
"""

from repro.hpc.machine import FRONTIER
from repro.hpc.perfmodel import ModelOptions
from repro.hpc.runtime import PAPER_WORKLOADS, scf_breakdown

PAPER_ROWS = {
    # name: (nodes, GCDs, wall min/SCF, PFLOPS, % peak)
    "TwinDislocMgY(A)": (2400, 19200, 3.7, 226.3, 49.3),
    "TwinDislocMgY(C)": (8000, 64000, 8.6, 659.7, 43.1),
}


def test_table1_this_work_rows(benchmark, table_printer):
    opts = ModelOptions(optimal_routing=False)

    def build():
        rows = []
        for name, (nodes, gcds, *_rest) in PAPER_ROWS.items():
            wl = PAPER_WORKLOADS[name]
            m = scf_breakdown(wl, FRONTIER, nodes, opts)
            rows.append(
                (
                    name,
                    f"({wl.natoms} at, {wl.electrons_per_kpt} e-)x{wl.n_kpoints}k",
                    gcds,
                    m.wall_time / 60.0,
                    m.sustained_pflops,
                    100 * m.peak_fraction,
                )
            )
        return rows

    rows = benchmark(build)
    table_printer(
        "Table 1 (this work's rows, model)",
        ["system", "size", "GCDs", "min/SCF", "PFLOPS", "% peak"],
        rows,
    )
    for row in rows:
        nodes, gcds, wall_p, pflops_p, peak_p = PAPER_ROWS[row[0]]
        assert abs(row[3] - wall_p) / wall_p < 0.2, row[0]
        assert abs(row[4] - pflops_p) / pflops_p < 0.3, row[0]
        assert abs(row[5] - peak_p) < 10.0, row[0]


def test_table1_beats_previous_watermark(benchmark):
    """Paper Sec 7.2: ~10x over the 64 PFLOPS New Sunway watermark."""
    opts = ModelOptions(optimal_routing=False)

    def build():
        return scf_breakdown(
            PAPER_WORKLOADS["TwinDislocMgY(C)"], FRONTIER, 8000, opts
        ).sustained_pflops

    pflops = benchmark(build)
    assert pflops > 8 * 64.0
