"""Fig 4: Chebyshev-filter performance vs wavefunction block size B_f.

Two parts: (i) the calibrated GPU model regenerating the paper's
Summit/Crusher/Perlmutter efficiency-vs-B_f series, and (ii) the *same
blocked kernel measured for real* on this host with pytest-benchmark —
demonstrating the arithmetic-intensity trend the paper exploits.
"""

import numpy as np
import pytest

from repro.core.chebyshev import chebyshev_filter, lanczos_upper_bound
from repro.fem.assembly import KSOperator
from repro.fem.mesh import uniform_mesh
from repro.hpc.machine import CRUSHER, PERLMUTTER, SUMMIT
from repro.hpc.perfmodel import cf_block_efficiency


@pytest.fixture(scope="module")
def cf_setup():
    mesh = uniform_mesh((8.0,) * 3, (4, 4, 4), degree=5)
    op = KSOperator(mesh)
    op.set_potential(np.zeros(mesh.nnodes))
    b = lanczos_upper_bound(op)
    X = np.random.default_rng(0).standard_normal((op.n, 64))
    return mesh, op, b, X


@pytest.mark.parametrize("block_size", [4, 16, 64])
def test_cf_measured_blocksize(benchmark, cf_setup, block_size):
    """Measured blocked CF kernel on this host (trend: larger B_f faster)."""
    mesh, op, b, X = cf_setup
    result = benchmark(
        chebyshev_filter, op, X, 8, 1.0, b, -1.0, block_size=block_size
    )
    assert result.shape == X.shape
    flops = 8 * 2 * mesh.ncells * mesh.nodes_per_cell**2 * X.shape[1]
    benchmark.extra_info["gflops"] = flops / 1e9
    benchmark.extra_info["block_size"] = block_size


def test_cf_modeled_efficiency_table(benchmark, table_printer):
    """The modeled Fig 4 series (paper @B_f=500: 56.3 / 41.1 / 85.7 %)."""

    def build():
        rows = []
        for bf in (100, 200, 300, 400, 500):
            rows.append(
                (
                    bf,
                    100 * cf_block_efficiency(SUMMIT, bf),
                    100 * cf_block_efficiency(CRUSHER, bf),
                    100 * cf_block_efficiency(PERLMUTTER, bf),
                )
            )
        return rows

    rows = benchmark(build)
    table_printer(
        "Fig 4 (model): CF % of FP64 peak vs B_f",
        ["B_f", "Summit %", "Crusher %", "Perlmutter %"],
        rows,
    )
    # monotone increase and the paper's machine ordering at B_f = 500
    eff500 = rows[-1]
    assert eff500[3] > eff500[1] > eff500[2]
    assert abs(eff500[1] - 56.3) < 6.0
    assert abs(eff500[2] - 41.1) < 6.0
    assert abs(eff500[3] - 85.7) < 9.0
