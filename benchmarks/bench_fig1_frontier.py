"""Fig 1: the accuracy / accessible-length-scale frontier.

Regenerates the paper's barrier chart: for each level of theory, the
maximum electron count reachable within a fixed node-hour budget, from the
methods' complexity laws anchored by *real measured* walltimes of this
repository's own implementations (FCI for Level 4, the ChFES DFT solver
for Levels 1-2/MLXC).
"""

import numpy as np
import pytest

from repro.obs import Stopwatch

#: (method, scaling exponent or "exp", typical accuracy mHa/atom)
LEVELS = [
    ("FCI (Level 4+)", "exp", 0.0),
    ("iFCI O(N^8)", 8.0, 1.0),
    ("CCSD(T) O(N^6)", 6.0, 1.0),
    ("QMC O(N^3), large prefactor", 3.0, 5.0),
    ("DFT-LDA O(N^3) (Level 1)", 3.0, 50.0),
    ("DFT-PBE O(N^3) (Level 2)", 3.0, 30.0),
    ("DFT-FE-MLXC O(N^3) (Level 4+)", 3.0, 7.0),
]

#: budget: one hour of one exascale machine in "reference solve" units
BUDGET = 3.6e14


def _max_electrons(scaling, prefactor) -> float:
    if scaling == "exp":
        return np.log(BUDGET / prefactor) / np.log(4.0)  # ~4^N determinants
    return (BUDGET / prefactor) ** (1.0 / scaling)


@pytest.fixture(scope="module")
def measured_anchors():
    """Real walltimes anchoring the prefactors: FCI vs DFT on H2."""
    from repro.pipeline import qmb_reference
    from repro.atoms.pseudo import AtomicConfiguration
    from repro.core import DFTCalculation
    from repro.xc.lda import LDA

    watch = Stopwatch()
    ref = qmb_reference("H2")
    t_fci = watch.restart()
    DFTCalculation(
        ref.calc.config, xc=LDA(), mesh=ref.calc.mesh
    ).run()
    t_dft = watch.elapsed()
    return t_fci, t_dft


def test_fig1_frontier_table(benchmark, table_printer, measured_anchors):
    t_fci, t_dft = measured_anchors

    def build():
        rows = []
        for name, scaling, acc in LEVELS:
            pref = 50.0 * t_fci if scaling == "exp" else (
                2000.0 * t_dft if "QMC" in name else t_dft
            )
            n_max = _max_electrons(scaling, pref)
            rows.append((name, float(n_max), acc))
        return rows

    rows = benchmark(build)
    table_printer(
        "Fig 1 (model + measured anchors): accessible electrons per level",
        ["method", "max electrons", "accuracy mHa/atom"],
        rows,
    )
    by_name = {r[0]: r[1] for r in rows}
    # the paper's qualitative frontier:
    assert by_name["FCI (Level 4+)"] < 100  # O(10) electrons
    assert by_name["iFCI O(N^8)"] < by_name["CCSD(T) O(N^6)"]
    assert by_name["CCSD(T) O(N^6)"] < by_name["QMC O(N^3), large prefactor"]
    assert (
        by_name["QMC O(N^3), large prefactor"]
        < by_name["DFT-FE-MLXC O(N^3) (Level 4+)"]
    )
    # the dichotomy-breaking claim: MLXC reaches DFT scales (same O(N^3))
    assert (
        by_name["DFT-FE-MLXC O(N^3) (Level 4+)"]
        == pytest.approx(by_name["DFT-LDA O(N^3) (Level 1)"])
    )
    # ... at >= 100x the system size of QMB methods (paper Sec 1)
    assert (
        by_name["DFT-FE-MLXC O(N^3) (Level 4+)"]
        > 10 * by_name["QMC O(N^3), large prefactor"]
    )


def test_fig1_measured_fci_vs_dft_cost(benchmark, measured_anchors):
    """The measured cost gap that creates the frontier (FCI >> DFT)."""
    t_fci, t_dft = measured_anchors
    benchmark(lambda: t_fci / t_dft)
    print(f"\n--- Fig 1 anchors: FCI pipeline {t_fci:.1f}s vs DFT {t_dft:.1f}s "
          f"on identical H2/mesh")
    assert t_fci > t_dft  # even at 2 electrons
