"""Ablation (Sec 5.4.1): higher-order finite elements.

The paper's reformulation enables p = 6-8 instead of 4-5, exploiting the
O(h^2p) convergence of the spectral-element discretization: fewer DoF for
the target 1e-4 Ha accuracy plus larger (more GPU-efficient) cell matrices.
Measured here on an analytically solvable eigenproblem — the lowest
plane-wave state of the periodic free-electron operator, whose exact
eigenvalue is (2 pi / L)^2 / 2 — showing near-two-orders-of-magnitude error
reduction per unit increase of p at fixed mesh.
"""

import numpy as np
import pytest
from scipy.sparse.linalg import LinearOperator, eigsh

from repro.fem.assembly import KSOperator
from repro.fem.mesh import uniform_mesh

L = 2.0
EXACT = 0.5 * (2 * np.pi / L) ** 2


def _plane_wave_error(p: int) -> float:
    mesh = uniform_mesh((L,) * 3, (3, 3, 3), degree=p, pbc=(True,) * 3)
    op = KSOperator(mesh)
    op.set_potential(np.zeros(mesh.nnodes))
    lo = LinearOperator((op.n, op.n), matvec=lambda x: op.apply(x))
    evals = np.sort(eigsh(lo, k=3, which="SA", return_eigenvectors=False))
    return abs(evals[1] - EXACT) / EXACT


@pytest.mark.parametrize("p", [2, 4, 6])
def test_fe_order_eigensolve_cost(benchmark, p):
    """Cost of the eigensolve at each degree (same cell count)."""
    benchmark.pedantic(_plane_wave_error, args=(p,), rounds=1, iterations=1)


def test_fe_order_spectral_convergence(benchmark, table_printer):
    """O(h^2p): ~2 orders of magnitude per degree increment."""

    def sweep():
        return [(p, _plane_wave_error(p), (p + 1) ** 3) for p in (2, 3, 4, 5, 6)]

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table_printer(
        "FE order ablation: plane-wave eigenvalue error vs degree "
        "(fixed 3^3 cells)",
        ["degree p", "rel error", "cell matrix size"],
        rows,
    )
    errs = [e for _, e, _ in rows]
    assert all(e2 < e1 for e1, e2 in zip(errs, errs[1:]))  # monotone
    # spectral: average error reduction per degree is huge
    assert errs[0] / errs[-1] > 1e6
    assert errs[-1] < 1e-8


def test_fe_order_dof_tradeoff(benchmark):
    """Same DoF budget buys far more accuracy at higher p (paper's point:
    p=8 needs ~9^3-sized cell GEMMs but slashes the DoF for 1e-4 Ha)."""
    from repro.fem.mesh import uniform_mesh

    def build():
        out = {}
        for p, cells in ((4, 6), (8, 3)):
            mesh = uniform_mesh((12.0,) * 3, (cells,) * 3, degree=p)
            out[p] = mesh.ndof
        return out

    dofs = benchmark(build)
    print(f"\n--- DoF at matched mesh: p=4 -> {dofs[4]}, p=8 -> {dofs[8]}")
    assert dofs[8] == dofs[4]  # same DoF, but p=8 carries O(h^16) accuracy
