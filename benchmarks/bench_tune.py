"""Autotuner payoff: the tuned schedule beats or ties every fixed default.

Runs the real ``repro.tune`` sweep (seeded probes, Stopwatch timing,
reproscope-metered wall) on this host, then checks the headline gate: in
every probe family — (engine, B_f) apply passes per bucket, subspace
block sizes, thread-pool widths — the tuned pick's measured seconds are
<= every fixed candidate's seconds.  A fixed default can only tie the
tuner, never beat it, on the probe set it was tuned on.

Also records the speedup over the built-in default schedule
(B_f=64 / csr / subspace 64 / 1 thread) and the tuner's own wall cost,
taken from the ``Tune-sweep`` span.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_tune.py

or via pytest (``pytest benchmarks/bench_tune.py``), which also enforces
the tuned-is-argmin gate.
"""

import tempfile
from pathlib import Path

from repro.tune.profile import load_profile
from repro.tune.sweep import SweepConfig, autotune

from _harness import write_result

REPEATS = 2
#: the schedule a user gets with no profile: SCFOptions/ScatterMap defaults
DEFAULTS = {
    "block_size": 64,
    "subspace_block_size": 64,
    "scatter_engine": "csr",
    "num_threads": 1,
}


def _flatten_apply(table):
    """(engine, bsize) -> seconds pairs of one bucket's apply table."""
    return {
        (engine, bsize): seconds
        for engine, per_block in table.items()
        for bsize, seconds in per_block.items()
    }


def _default_seconds(tables, buckets):
    """Measured cost of the built-in default schedule, per family."""
    headline = tables["apply"][buckets[-1][0]]
    engine = DEFAULTS["scatter_engine"]
    if engine not in headline:  # scipy-less host: csr unavailable
        engine = next(iter(headline))
    return {
        "apply": headline[engine][str(DEFAULTS["block_size"])],
        "subspace": tables["subspace"][str(DEFAULTS["subspace_block_size"])],
        "threads": tables["threads"][str(DEFAULTS["num_threads"])],
    }


def _tuned_seconds(tables, knobs, buckets):
    headline = tables["apply"][buckets[-1][0]]
    return {
        "apply": headline[knobs["scatter_engine"]][str(knobs["block_size"])],
        "subspace": tables["subspace"][str(knobs["subspace_block_size"])],
        "threads": tables["threads"][str(knobs["num_threads"])],
    }


def bench() -> dict:
    cfg = SweepConfig(repeats=REPEATS)
    with tempfile.TemporaryDirectory() as tmp:
        profile, written = autotune(cfg, path=Path(tmp) / "profile.json")
        stored = load_profile(written)  # persisted envelope verifies
    assert stored == profile

    tables = profile.sweep["tables"]
    buckets = [tuple(b) for b in profile.sweep["buckets"]]
    tuned = _tuned_seconds(tables, profile.knobs, buckets)
    default = _default_seconds(tables, buckets)

    # the gate: in every family the tuned pick is <= every fixed candidate
    ties_or_wins = {}
    headline = _flatten_apply(tables["apply"][buckets[-1][0]])
    ties_or_wins["apply"] = all(tuned["apply"] <= s for s in headline.values())
    ties_or_wins["subspace"] = all(
        tuned["subspace"] <= s for s in tables["subspace"].values()
    )
    ties_or_wins["threads"] = all(
        tuned["threads"] <= s for s in tables["threads"].values()
    )

    metrics = {
        "knobs": profile.knobs,
        "tuned_seconds": tuned,
        "default_seconds": default,
        "speedup_vs_default": {
            family: default[family] / tuned[family] for family in tuned
        },
        "tuned_beats_or_ties_every_default": ties_or_wins,
        "modeled_pick": profile.model,
        "tuner_wall_seconds": profile.sweep["wall_seconds"],
    }
    write_result(
        "tune",
        params={
            "repeats": REPEATS,
            "seed": cfg.seed,
            "buckets": [list(b) for b in buckets],
            "block_sizes": list(cfg.block_sizes),
            "subspace_blocks": list(cfg.subspace_blocks),
            "engines": list(cfg.resolved_engines()),
            "thread_counts": list(cfg.resolved_thread_counts()),
        },
        wall_seconds=profile.sweep["wall_seconds"],
        metrics=metrics,
    )
    return metrics


def test_tuned_beats_every_fixed_default():
    """No fixed schedule outruns the tuned pick on the probes it swept."""
    metrics = bench()
    assert all(metrics["tuned_beats_or_ties_every_default"].values()), metrics
    for family, speedup in metrics["speedup_vs_default"].items():
        assert speedup >= 1.0, (family, metrics)


if __name__ == "__main__":
    out = bench()
    print("tuned knobs:", out["knobs"])
    print("speedup vs default schedule:", {
        k: round(v, 3) for k, v in out["speedup_vs_default"].items()
    })
    print(f"tuner wall: {out['tuner_wall_seconds']:.2f}s")
    print("modeled pick:", out["modeled_pick"])
