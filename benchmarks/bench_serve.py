"""Serve runtime under load: throughput, latency and cache effectiveness.

Drives :func:`repro.serve.run_jobs` with the deterministic probe stream
from :mod:`repro.serve.loadgen` in two waves against one shared
content-addressed cache:

* **cold wave** — ``n_jobs`` requests drawn from ``distinct`` unique
  specs against an empty cache.  Duplicates of a spec still in flight
  coalesce onto its primary job; duplicates arriving after it finished
  hit the cache.  Either way the solver runs exactly ``distinct`` times.
* **warm wave** — the same stream resubmitted: every request is a cache
  hit, served without invoking a single runner.

The headline metrics are jobs/second, p50/p99 submission-to-completion
latency (per wave) and the cache hit rate of the warm wave (1.0 by
construction — asserted, not assumed).  A third section serves repeated
real SCF jobs with time slicing on, reporting preemption counts and the
bit-identical energy across cache hit and fresh solve.

Results land in ``results/BENCH_serve.json`` via the PR 2 harness::

    PYTHONPATH=src python benchmarks/bench_serve.py

The 10k-request stress variant runs from the tier-2 suite
(``pytest -m slow tests/test_serve.py``).
"""

import pathlib
import tempfile

from repro.obs import Stopwatch
from repro.serve import (
    ResultCache,
    SchedulerPolicy,
    probe_load,
    run_jobs,
    scf_load,
)

from _harness import write_result

#: reference configuration: 1k queued requests over 64 unique specs
REF = {"n_jobs": 1000, "distinct": 64, "workers": 4, "ranks": 8}


def _wave_metrics(report) -> dict:
    stats = report.stats
    wall = report.wall_seconds
    return {
        "jobs": len(report.jobs),
        "wall_seconds": wall,
        "jobs_per_second": len(report.jobs) / wall if wall > 0 else 0.0,
        "latency_p50_s": stats.latency_percentile(0.50),
        "latency_p99_s": stats.latency_percentile(0.99),
        "completed": stats.completed,
        "failed": stats.failed,
        "cache_hits": stats.cache_hits,
        "coalesced": stats.coalesced,
        "slices": stats.slices,
        "max_queue_depth": stats.max_queue_depth,
    }


def run_probe_bench(
    n_jobs: int, distinct: int, workers: int, ranks: int, workdir: str
) -> dict:
    """Cold + warm probe waves against one shared result cache."""
    root = pathlib.Path(workdir)
    cache = ResultCache(root / "cache")
    policy = SchedulerPolicy(total_ranks=ranks)
    requests = probe_load(n_jobs, distinct=distinct, seed=7)

    cold = run_jobs(
        requests, workdir=root / "cold", policy=policy, workers=workers,
        cache=cache,
    )
    warm = run_jobs(
        requests, workdir=root / "warm", policy=policy, workers=workers,
        cache=cache,
    )
    if any(j.result is None for j in cold.jobs + warm.jobs):
        raise AssertionError("a probe job finished without a result")
    if warm.stats.cache_hits != n_jobs:
        raise AssertionError(
            f"warm wave expected {n_jobs} cache hits, "
            f"got {warm.stats.cache_hits}"
        )
    # the solver ran exactly once per unique spec, across both waves
    if cache.stats.puts != distinct:
        raise AssertionError(
            f"expected {distinct} solver executions, got {cache.stats.puts}"
        )
    return {
        "cold": _wave_metrics(cold),
        "warm": _wave_metrics(warm),
        "warm_cache_hit_rate": warm.stats.cache_hits / n_jobs,
        "combined_cache_hit_rate": cache.stats.hit_rate,
        "solver_runs": cache.stats.puts,
    }


def run_scf_bench(workers: int, ranks: int, workdir: str) -> dict:
    """Repeated sliced SCF jobs: preemption plus cache reuse on physics."""
    root = pathlib.Path(workdir)
    cache = ResultCache(root / "scf-cache")
    policy = SchedulerPolicy(total_ranks=ranks, slice_iterations=2)
    requests = scf_load(["H2", "LiH"], repeats=1, degree=2, cells=3)

    fresh = run_jobs(
        requests, workdir=root / "scf-fresh", policy=policy, workers=workers,
        cache=cache,
    )
    cached = run_jobs(
        requests, workdir=root / "scf-warm", policy=policy, workers=workers,
        cache=cache,
    )
    energies = [j.result["energy"] for j in fresh.jobs]
    replayed = [j.result["energy"] for j in cached.jobs]
    if energies != replayed:
        raise AssertionError(
            f"cached SCF energies differ: {energies} vs {replayed}"
        )
    return {
        "molecules": ["H2", "LiH"],
        "slice_iterations": 2,
        "fresh_wall_seconds": fresh.wall_seconds,
        "cached_wall_seconds": cached.wall_seconds,
        "cache_speedup": fresh.wall_seconds / max(cached.wall_seconds, 1e-9),
        "preemptions": fresh.stats.preemptions,
        "energies": energies,
        "cached_bit_identical": energies == replayed,
    }


def main(params: dict | None = None) -> dict:
    cfg = dict(REF if params is None else params)
    watch = Stopwatch()
    with tempfile.TemporaryDirectory(prefix="bench-serve-") as workdir:
        probe = run_probe_bench(**cfg, workdir=workdir)
        scf = run_scf_bench(
            workers=cfg["workers"], ranks=cfg["ranks"], workdir=workdir
        )
    record = write_result(
        "serve",
        params=cfg,
        wall_seconds=watch.elapsed(),
        metrics={
            "probe": probe,
            "scf": scf,
            "jobs_per_second_cold": probe["cold"]["jobs_per_second"],
            "jobs_per_second_warm": probe["warm"]["jobs_per_second"],
            "latency_p50_s": probe["cold"]["latency_p50_s"],
            "latency_p99_s": probe["cold"]["latency_p99_s"],
            "cache_hit_rate": probe["warm_cache_hit_rate"],
        },
    )
    for wave in ("cold", "warm"):
        w = probe[wave]
        print(
            f"{wave:<5} {w['jobs']} jobs in {w['wall_seconds']:.3f} s "
            f"({w['jobs_per_second']:.0f} jobs/s)  "
            f"p50 {1e3 * w['latency_p50_s']:.2f} ms  "
            f"p99 {1e3 * w['latency_p99_s']:.2f} ms  "
            f"hits {w['cache_hits']}  coalesced {w['coalesced']}"
        )
    print(
        f"solver ran {probe['solver_runs']}x for "
        f"{2 * cfg['n_jobs']} requests; warm hit rate "
        f"{probe['warm_cache_hit_rate']:.1%}"
    )
    print(
        f"scf: {scf['preemptions']} preemptions, cached replay "
        f"{scf['cache_speedup']:.0f}x faster, bit-identical="
        f"{scf['cached_bit_identical']}"
    )
    return record


if __name__ == "__main__":
    main()
