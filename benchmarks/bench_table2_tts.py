"""Table 2: YbCd quasicrystal time-to-solution on 1,120 Perlmutter nodes.

Paper: initialization 69 s, 34 SCF steps in 2023 s, total 2092 s — a full
40,040-electron ground state at Level-4+ accuracy in ~30 minutes.
"""

from repro.hpc.machine import PERLMUTTER
from repro.hpc.perfmodel import ModelOptions
from repro.hpc.runtime import PAPER_WORKLOADS, time_to_solution


def test_table2_time_to_solution(benchmark, table_printer):
    def build():
        return time_to_solution(
            PAPER_WORKLOADS["YbCdQC"], PERLMUTTER, 1120, n_scf=34,
            opts=ModelOptions(use_rccl=True),
        )

    tts = benchmark(build)
    table_printer(
        "Table 2 (model): YbCd TTS on 1,120 Perlmutter nodes "
        "(paper: 69 / 2023 / 2092 s)",
        ["init s", "SCF s", "total s", "s/SCF"],
        [(tts["initialization"], tts["total_scf"], tts["total"], tts["per_scf"])],
    )
    # same order of magnitude and the same structure: init << SCF
    assert 600 < tts["total"] < 4000
    assert tts["initialization"] < 0.15 * tts["total"]
    # "full ground state of a 40,000 e- system in ~30 min" scale statement
    assert tts["total"] / 60.0 < 60.0


def test_table2_per_electron_throughput(benchmark):
    """Sec 1: time-to-solution ~3.3e-2 sec/GS/electron (order of magnitude)."""

    def build():
        tts = time_to_solution(
            PAPER_WORKLOADS["YbCdQC"], PERLMUTTER, 1120, n_scf=34,
            opts=ModelOptions(use_rccl=True),
        )
        return tts["total"] / 40040.0

    sec_per_electron = benchmark(build)
    print(f"\n--- Table 2: {sec_per_electron:.3e} sec/GS/electron "
          "(paper: 3.3e-2, QMB methods: >= 10)")
    assert sec_per_electron < 0.5  # orders of magnitude below QMB methods
