"""Sec 5.3.1 ablation: the inverse-diagonal-Laplacian MINRES preconditioner.

Paper: "an inexpensive yet effective preconditioner ... provides a ~5x
reduction in the number of MINRES iterations."  The claim targets the raw
finite-element basis, whose operator diagonal varies like h^-2 under
adaptive grading.  This benchmark sweeps the mesh-adaptivity ratio and
shows the preconditioner's gain *growing* with adaptivity (1.6x -> 3.2x for
3x -> 40x grading on this laptop-scale mesh; the paper's all-electron
meshes, with diagonal spreads of 1e4-1e6, sit beyond the right edge of this
sweep at ~5x).

Also documented (EXPERIMENTS.md): in this repository's Löwdin-orthonormalized
basis the diagonal-mass normalization absorbs most of the scale disparity,
so the invDFT adjoint solves run unpreconditioned by default.
"""

import numpy as np
import pytest

from repro.fem.assembly import CellStiffness
from repro.fem.mesh import Mesh3D, graded_edges
from repro.invdft.minres import block_minres


def _raw_system(ratio: float):
    L = 12.0
    edges = tuple(graded_edges(L, 7, center=L / 2, ratio=ratio) for _ in range(3))
    mesh = Mesh3D(edges=edges, degree=4)
    stiff = CellStiffness(mesh)
    free = mesh.free
    kdiag = stiff.diagonal_full()[free]

    def apply_A(X):
        full = np.zeros((mesh.nnodes, X.shape[1]))
        full[free] = X
        return stiff.apply_full(full)[free]

    B = np.random.default_rng(0).normal(size=(free.size, 4))
    return apply_A, B, np.zeros(4), kdiag


@pytest.mark.parametrize("precond", [True, False], ids=["jacobi", "none"])
def test_minres_timing_graded_mesh(benchmark, precond):
    apply_A, B, shifts, kdiag = _raw_system(10.0)
    res = benchmark.pedantic(
        block_minres, args=(apply_A, B, shifts),
        kwargs={"precond_diag": kdiag if precond else None,
                "tol": 1e-8, "maxiter": 20000},
        rounds=1, iterations=1,
    )
    benchmark.extra_info["iterations"] = res.iterations
    assert res.converged


def test_minres_gain_grows_with_adaptivity(benchmark, table_printer):
    """Paper's ~5x claim: gain vs mesh grading (extrapolates past 3.2x)."""

    def sweep():
        rows = []
        for ratio in (3.0, 10.0, 40.0):
            apply_A, B, shifts, kdiag = _raw_system(ratio)
            pre = block_minres(
                apply_A, B, shifts, precond_diag=kdiag, tol=1e-8, maxiter=20000
            )
            plain = block_minres(apply_A, B, shifts, tol=1e-8, maxiter=20000)
            rows.append(
                (ratio, float(kdiag.max() / kdiag.min()), pre.iterations,
                 plain.iterations, plain.iterations / pre.iterations)
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table_printer(
        "Sec 5.3.1: Jacobi-preconditioner gain vs mesh adaptivity "
        "(paper: ~5x on all-electron meshes)",
        ["grading", "diag spread", "iters (pre)", "iters (plain)", "gain x"],
        rows,
    )
    gains = [r[4] for r in rows]
    assert all(g2 > g1 for g1, g2 in zip(gains, gains[1:]))  # grows
    assert gains[-1] > 2.5  # 3.2x at 40x grading here; ~5x beyond
