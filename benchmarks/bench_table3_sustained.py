"""Table 3: sustained performance and per-kernel breakdown on Frontier.

Regenerates the wall-time / FLOP-count / PFLOPS rows for
TwinDislocMgY(A), (B), (C) — including the per-kernel breakdowns for (A)
and (C) — and checks each against the published numbers.
"""

import pytest

from repro.hpc.machine import FRONTIER
from repro.hpc.perfmodel import ModelOptions
from repro.hpc.runtime import PAPER_WORKLOADS, scf_breakdown

from _harness import bench_seconds, write_result

PAPER_TOTALS = {
    "TwinDislocMgY(A)": (2400, 223.0, 50456.7, 226.3, 49.3),
    "TwinDislocMgY(B)": (6000, 499.4, 254147.5, 508.9, 44.4),
    "TwinDislocMgY(C)": (8000, 513.7, 338863.4, 659.7, 43.1),
}

PAPER_KERNELS_C = {
    "CF": (135.4, 57809.5),
    "CholGS-S": (79.3, 54428.9),
    "CholGS-CI": (8.8, 0.0),
    "CholGS-O": (49.6, 54428.9),
    "RR-P": (66.7, 61035.7),
    "RR-D": (22.3, 0.0),
    "RR-SR": (93.5, 108857.9),
    "DC": (4.3, 2302.5),
    "DH+EP+Others": (53.8, 0.0),
}


def test_table3_totals(benchmark, table_printer):
    opts = ModelOptions(optimal_routing=False)

    def build():
        rows = []
        for name, (nodes, *_p) in PAPER_TOTALS.items():
            m = scf_breakdown(PAPER_WORKLOADS[name], FRONTIER, nodes, opts)
            rows.append(
                (name, m.wall_time, m.counted_pflop, m.sustained_pflops,
                 100 * m.peak_fraction)
            )
        return rows

    rows = benchmark(build)
    table_printer(
        "Table 3 (model): wall-time / PFLOP / PFLOPS per SCF iteration",
        ["system", "s", "PFLOP", "PFLOPS", "% peak"],
        rows,
    )
    write_result(
        "table3_totals",
        params={"machine": "Frontier", "optimal_routing": False},
        wall_seconds=bench_seconds(benchmark),
        metrics={
            name: {
                "scf_seconds": t,
                "pflop": pf,
                "pflops": pflops,
                "peak_percent": peak,
            }
            for name, t, pf, pflops, peak in rows
        },
    )
    for name, t, pf, pflops, peak in rows:
        nodes, t_p, pf_p, pflops_p, peak_p = PAPER_TOTALS[name]
        assert abs(t - t_p) / t_p < 0.15, name
        assert abs(pf - pf_p) / pf_p < 0.10, name
        assert abs(peak - peak_p) < 8.0, name


def test_table3_kernel_breakdown_c(benchmark, table_printer):
    """Per-kernel agreement for the 619,124 e- flagship run."""
    opts = ModelOptions(optimal_routing=False)

    def build():
        m = scf_breakdown(PAPER_WORKLOADS["TwinDislocMgY(C)"], FRONTIER, 8000, opts)
        return m.table_rows()

    rows = benchmark(build)
    table_printer(
        "Table 3 (model): TwinDislocMgY(C) kernel breakdown "
        "(s | PFLOP | PFLOPS)",
        ["kernel", "s", "PFLOP", "PFLOPS"],
        rows,
    )
    write_result(
        "table3_kernels_c",
        params={"workload": "TwinDislocMgY(C)", "nodes": 8000},
        wall_seconds=bench_seconds(benchmark),
        metrics={
            name: {"seconds": sec, "pflop": pf, "pflops": pflops}
            for name, sec, pf, pflops in rows
        },
    )
    for name, sec, pf, _pflops in rows:
        t_p, pf_p = PAPER_KERNELS_C[name]
        assert abs(sec - t_p) / t_p < 0.35, name  # each kernel within 35%
        if pf_p > 0:
            assert abs(pf - pf_p) / pf_p < 0.10, name  # FLOPs within 10%


def test_table3_flop_counts_match_sec63_formulas(benchmark):
    """CholGS-O carries the same FLOPs as CholGS-S (triangular, alpha=1)
    and RR-SR exactly twice (square rotation, alpha=2)."""
    opts = ModelOptions(optimal_routing=False)

    def build():
        m = scf_breakdown(PAPER_WORKLOADS["TwinDislocMgY(C)"], FRONTIER, 8000, opts)
        return {k.name: k.flops for k in m.kernels}

    flops = benchmark(build)
    assert flops["CholGS-O"] == pytest.approx(flops["CholGS-S"])
    assert flops["RR-SR"] == pytest.approx(2 * flops["CholGS-S"])
    assert flops["CholGS-CI"] == 0.0 and flops["RR-D"] == 0.0  # uncounted
