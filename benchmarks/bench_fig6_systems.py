"""Fig 6: the benchmark systems — full-size geometry generation.

Regenerates the two systems shown in the paper's Fig 6 (the YbCd
quasicrystal nanoparticle and TwinDislocMgY(C)) with the exact published
atom and electron counts, and times the generators.
"""

import numpy as np
import pytest

from repro.materials.quasicrystal import ybcd_nanoparticle
from repro.materials.systems import build_system


def test_fig6_ybcd_nanoparticle(benchmark, table_printer):
    nano = benchmark.pedantic(ybcd_nanoparticle, rounds=1, iterations=1)
    pos = nano.config.positions
    width_nm = 2 * np.linalg.norm(pos, axis=1).max() * 0.0529177
    table_printer(
        "Fig 6 (top): YbCd quasicrystal nanoparticle",
        ["atoms", "Yb", "Cd", "electrons", "width nm"],
        [(nano.natoms, nano.config.symbols.count("Yb"),
          nano.config.symbols.count("Cd"), nano.config.n_electrons,
          float(width_nm))],
    )
    assert nano.natoms == 1943
    assert nano.config.n_electrons == 40040  # paper: 40,040 e-


@pytest.mark.parametrize(
    "name,natoms,supercell_e",
    [
        ("DislocMgY", 6016, 24082),
        ("TwinDislocMgY(A)", 36344, 302668),
        ("TwinDislocMgY(C)", 74164, 619124),
    ],
)
def test_fig6_mgy_systems(benchmark, name, natoms, supercell_e):
    system = benchmark.pedantic(build_system, args=(name,), rounds=1, iterations=1)
    print(
        f"\n--- Fig 6: {name}: {system.config.natoms} atoms, "
        f"{system.electrons_per_kpoint} e-/k x {system.n_kpoints} k "
        f"= {system.supercell_electrons} e- (paper: {supercell_e})"
    )
    assert system.config.natoms == natoms
    assert system.supercell_electrons == supercell_e
    # the dislocation actually displaced atoms (non-lattice positions)
    if "Disloc" in name:
        z = system.config.positions[:, 2]
        assert np.unique(np.round(z, 3)).size > 8  # helical winding along z
