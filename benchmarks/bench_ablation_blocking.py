"""Ablation: blocked vs unblocked CholGS / Rayleigh-Ritz kernels.

The paper processes wavefunctions in column blocks both to bound memory and
to enable compute/communication overlap; numerically the blocked kernels
must be exact.  Benchmarked on production-shaped (tall skinny) matrices.
"""

import numpy as np
import pytest

from repro.core.orthonorm import blocked_gram, cholesky_orthonormalize
from repro.core.rayleigh_ritz import projected_hamiltonian


@pytest.fixture(scope="module")
def tall_matrix(rng):
    return rng.standard_normal((30000, 128))


@pytest.mark.parametrize("block", [128, 32, 8], ids=["unblocked", "b32", "b8"])
def test_gram_block_size(benchmark, tall_matrix, block):
    S = benchmark(blocked_gram, tall_matrix, block)
    assert S.shape == (128, 128)


@pytest.mark.parametrize("block", [128, 32], ids=["unblocked", "b32"])
def test_cholgs_block_size(benchmark, tall_matrix, block):
    Y = benchmark(cholesky_orthonormalize, tall_matrix, block)
    S = Y.T @ Y
    assert np.allclose(S, np.eye(128), atol=1e-8)


def test_blocked_equals_unblocked(tall_matrix, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    a = cholesky_orthonormalize(tall_matrix, block_size=128)
    b = cholesky_orthonormalize(tall_matrix, block_size=16)
    assert np.allclose(a, b, atol=1e-10)


def test_projected_hamiltonian_blocked(benchmark, tall_matrix):
    X = np.linalg.qr(tall_matrix[:, :64])[0]
    HX = 2.0 * X + 0.1 * np.roll(X, 1, axis=0)
    Hp = benchmark(projected_hamiltonian, X, HX, 16)
    assert np.allclose(Hp, Hp.T, atol=1e-12)
