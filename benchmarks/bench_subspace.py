"""Batched subspace engine: fused CholGS→RR vs the reference block loops.

Times the combined CholGS+RR stage of one ChFES iteration — everything
between the Chebyshev filter returning a block ``W`` and the rotated
``(evals, X)`` leaving the subspace step — on the reference path
(``REPRO_SLOW_SUBSPACE=1``: per-(i,j) block loops, per-block FP32 casts,
and the ``op.apply`` issued inside ``rayleigh_ritz``) against the batched
engine (:func:`repro.core.subspace.fused_cholgs_rr` consuming a
precomputed ``HW``).

Apply accounting: the engine's ``HW = op.apply(W)`` replaces the filter
apply elided by the HX carry (the next filter's first term is the rotated
``HX`` handed out of the fused stage), so both paths spend exactly ``m``
operator applications outside the stage and the stage comparison is
apply-budget-neutral — the engine iteration still ends one full-subspace
apply cheaper, which the ``applies_per_iteration`` metric (and the
FlopLedger in real runs) shows directly.

Results land in ``results/BENCH_subspace.json`` via the PR 2 harness::

    PYTHONPATH=src python benchmarks/bench_subspace.py
"""

import os

import numpy as np

from repro.core.chebyshev import chebyshev_filter
from repro.core.orthonorm import cholesky_orthonormalize
from repro.core.rayleigh_ritz import rayleigh_ritz
from repro.core.subspace import fused_cholgs_rr
from repro.fem.assembly import KSOperator
from repro.fem.mesh import uniform_mesh
from repro.obs import Stopwatch

from _harness import write_result

#: reference configuration the >=2x acceptance criterion is measured at
#: (the bench_apply mesh: degree 3, 6^3 cells, with the paper-scale block)
REF = {"degree": 3, "cells": 6, "nvec": 128, "block_size": 64, "cheb_degree": 15}


class _CountingOp:
    """Transparent proxy counting full-subspace-equivalent applications."""

    def __init__(self, op, nvec: int):
        self._op = op
        self._nvec = nvec
        self.columns = 0

    def apply(self, X, out=None):
        self.columns += X.shape[1] if X.ndim == 2 else 0
        return self._op.apply(X, out=out)

    @property
    def subspace_applies(self) -> float:
        """Applications of the whole ``nvec``-column subspace."""
        return self.columns / self._nvec

    def __getattr__(self, name):
        return getattr(self._op, name)


def _build(degree: int, cells: int, nvec: int):
    mesh = uniform_mesh((10.0,) * 3, (cells,) * 3, degree, pbc=(True, True, True))
    op = KSOperator(mesh)
    op.set_potential(np.random.default_rng(0).standard_normal(mesh.nnodes))
    rng = np.random.default_rng(1)
    X = rng.standard_normal((op.n, nvec))
    return op, cholesky_orthonormalize(X, block_size=nvec)


def _filter_window(op, X):
    """Plausible steady-state filter window from the operator's spectrum."""
    d = np.real(op.diagonal())
    a0 = float(np.min(d)) - 1.0
    b = float(np.max(d)) + 10.0
    a = a0 + 0.35 * (b - a0)
    return a, b, a0


def _best(fn, repeats: int) -> float:
    best = np.inf
    for _ in range(repeats):
        watch = Stopwatch()
        fn()
        best = min(best, watch.elapsed())
    return best


def run_stage_bench(
    degree: int,
    cells: int,
    nvec: int,
    block_size: int,
    cheb_degree: int,
    repeats: int = 5,
):
    """Time the CholGS+RR stage on both paths, both precisions.

    ``W`` is a genuinely filtered block (one Chebyshev pass on an
    orthonormal random block), so the overlap/projection matrices carry the
    structure the mixed-precision layout assumes.
    """
    op, X = _build(degree, cells, nvec)
    a, b, a0 = _filter_window(op, X)
    saved = os.environ.get("REPRO_SLOW_SUBSPACE")
    rows = []
    try:
        W = chebyshev_filter(op, X, cheb_degree, a, b, a0, block_size=block_size)
        W = np.ascontiguousarray(W)
        HW = op.apply(W)
        for mp in (False, True):
            os.environ["REPRO_SLOW_SUBSPACE"] = "1"

            def ref_stage():
                Xo = cholesky_orthonormalize(
                    W, block_size=block_size, mixed_precision=mp
                )
                rayleigh_ritz(op, Xo, block_size=block_size, mixed_precision=mp)

            ref_s = _best(ref_stage, repeats)
            os.environ.pop("REPRO_SLOW_SUBSPACE", None)
            eng_s = _best(
                lambda: fused_cholgs_rr(
                    W, HW, op=op, block_size=block_size, mixed_precision=mp
                ),
                repeats,
            )
            rows.append(
                {
                    "mixed_precision": mp,
                    "reference_stage_seconds": ref_s,
                    "engine_stage_seconds": eng_s,
                    "stage_speedup": ref_s / eng_s,
                }
            )
    finally:
        if saved is None:
            os.environ.pop("REPRO_SLOW_SUBSPACE", None)
        else:
            os.environ["REPRO_SLOW_SUBSPACE"] = saved
    return rows


def run_iteration_bench(
    degree: int,
    cells: int,
    nvec: int,
    block_size: int,
    cheb_degree: int,
    repeats: int = 3,
):
    """Time a full steady-state ChFES iteration and count its applies.

    The engine iteration starts from a carried ``HX`` (filter first term
    free) and ends by producing the next carry; the reference iteration is
    filter + CholGS + RR with the extra apply inside RR.
    """
    op, X = _build(degree, cells, nvec)
    a, b, a0 = _filter_window(op, X)
    saved = os.environ.get("REPRO_SLOW_SUBSPACE")
    out = {}
    try:
        os.environ["REPRO_SLOW_SUBSPACE"] = "1"
        cop = _CountingOp(op, nvec)

        def ref_iteration():
            W = chebyshev_filter(
                cop, X, cheb_degree, a, b, a0, block_size=block_size
            )
            Xo = cholesky_orthonormalize(W, block_size=block_size)
            rayleigh_ritz(cop, Xo, block_size=block_size)

        ref_s = _best(ref_iteration, repeats)
        cop.columns = 0
        ref_iteration()
        out["reference"] = {
            "iteration_seconds": ref_s,
            "applies_per_iteration": cop.subspace_applies,
        }
        os.environ.pop("REPRO_SLOW_SUBSPACE", None)
        cop = _CountingOp(op, nvec)
        # warm-up iteration to establish the carry
        W = chebyshev_filter(cop, X, cheb_degree, a, b, a0, block_size=block_size)
        HW = cop.apply(np.ascontiguousarray(W))
        _, Xc, hx0 = fused_cholgs_rr(W, HW, op=cop, block_size=block_size)
        state = {"X": Xc, "hx0": hx0}

        def engine_iteration():
            W = chebyshev_filter(
                cop, state["X"], cheb_degree, a, b, a0,
                block_size=block_size, hx0=state["hx0"],
            )
            HW = cop.apply(np.ascontiguousarray(W))
            _, Xn, hxn = fused_cholgs_rr(W, HW, op=cop, block_size=block_size)
            state["X"], state["hx0"] = Xn, hxn

        eng_s = _best(engine_iteration, repeats)
        cop.columns = 0
        engine_iteration()
        out["engine"] = {
            "iteration_seconds": eng_s,
            "applies_per_iteration": cop.subspace_applies,
        }
        out["iteration_speedup"] = ref_s / eng_s
        out["applies_saved_per_iteration"] = (
            out["reference"]["applies_per_iteration"]
            - out["engine"]["applies_per_iteration"]
        )
    finally:
        if saved is None:
            os.environ.pop("REPRO_SLOW_SUBSPACE", None)
        else:
            os.environ["REPRO_SLOW_SUBSPACE"] = saved
    return out


def main(params: dict | None = None, repeats: int = 5) -> dict:
    cfg = dict(REF if params is None else params)
    watch = Stopwatch()
    stage_rows = run_stage_bench(**cfg, repeats=repeats)
    iteration = run_iteration_bench(**cfg, repeats=max(2, repeats - 2))
    fp64 = next(r for r in stage_rows if not r["mixed_precision"])
    record = write_result(
        "subspace",
        params=cfg,
        wall_seconds=watch.elapsed(),
        metrics={
            "stage": stage_rows,
            "iteration": iteration,
            "stage_speedup_fp64": fp64["stage_speedup"],
        },
    )
    print(f"{'mixed':<6} {'ref ms':>9} {'engine ms':>10} {'speedup':>8}")
    for r in stage_rows:
        print(
            f"{str(r['mixed_precision']):<6} "
            f"{1e3 * r['reference_stage_seconds']:>9.2f} "
            f"{1e3 * r['engine_stage_seconds']:>10.2f} "
            f"{r['stage_speedup']:>7.2f}x"
        )
    print(
        "applies/iteration: reference "
        f"{iteration['reference']['applies_per_iteration']:.2f} -> engine "
        f"{iteration['engine']['applies_per_iteration']:.2f} "
        f"(iteration speedup {iteration['iteration_speedup']:.2f}x)"
    )
    return record


if __name__ == "__main__":
    main()
