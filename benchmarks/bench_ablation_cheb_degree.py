"""Ablation: Chebyshev filter degree m vs subspace quality (Sec 5.3.2).

Two claims measured on a real Kohn-Sham operator:

1. "the approximation error decreases systematically with m" — the distance
   between the filtered subspace and the exact occupied eigenspace falls by
   orders of magnitude as the filter degree grows;
2. *why Algorithm 1 interleaves CholGS with filtering*: a single very-high-
   degree filter collapses the block onto the dominant eigenvector
   (overlap-matrix condition number blows past 1e16), while the same total
   polynomial degree split into moderate passes with re-orthonormalization
   converges cleanly.
"""

import numpy as np
import pytest

from repro.core.chebyshev import chebyshev_filter, lanczos_upper_bound
from repro.core.orthonorm import blocked_gram, cholesky_orthonormalize
from repro.fem.assembly import KSOperator
from repro.fem.mesh import uniform_mesh


@pytest.fixture(scope="module")
def ks_problem():
    mesh = uniform_mesh((10.0,) * 3, (3, 3, 3), degree=4)
    op = KSOperator(mesh)
    r = mesh.node_coords - 5.0
    v = -2.0 / np.sqrt(np.einsum("ij,ij->i", r, r) + 0.5)
    op.set_potential(v)
    H = op.matrix()
    evals, evecs = np.linalg.eigh(H)
    # 5 wanted states end at a spectral gap (s, 3x p, s | gap); a degenerate
    # boundary would make the target subspace ill-defined
    nwant = 5
    rng = np.random.default_rng(3)
    X0 = np.linalg.qr(rng.standard_normal((op.n, nwant)))[0]
    b = lanczos_upper_bound(op)
    a = 0.5 * (evals[nwant - 1] + evals[nwant])  # filter cut inside the gap
    return op, evals, evecs[:, :nwant], X0, a, b


def _subspace_error(X, exact):
    Q = np.linalg.qr(X)[0]
    return float(np.linalg.norm(exact - Q @ (Q.T @ exact)))


@pytest.mark.parametrize("m", [10, 25, 50, 100])
def test_cheb_degree_filter(benchmark, ks_problem, m):
    op, evals, exact, X0, a, b = ks_problem
    Y = benchmark(chebyshev_filter, op, X0, m, a, b, float(evals[0]),
                  block_size=3)
    benchmark.extra_info["subspace_error"] = _subspace_error(Y, exact)


def test_cheb_degree_error_decreases(ks_problem, benchmark, table_printer):
    op, evals, exact, X0, a, b = ks_problem

    def build():
        rows = []
        for m in (10, 25, 50, 100):
            Y = chebyshev_filter(op, X0, m, a, b, float(evals[0]), block_size=3)
            Y = cholesky_orthonormalize(Y)
            rows.append((m, _subspace_error(Y, exact)))
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    table_printer(
        "Chebyshev degree ablation: subspace error vs m",
        ["degree m", "subspace error"],
        rows,
    )
    errs = [e for _, e in rows]
    assert all(e2 < e1 for e1, e2 in zip(errs, errs[1:]))
    assert errs[-1] < 1e-2  # m=100 reaches the occupied space


def test_interleaved_cholgs_beats_single_filter(ks_problem, benchmark):
    """Same total degree (200): 4 x (filter 50 + CholGS) converges; one
    monolithic degree-200 filter collapses the block (Algorithm 1's point).
    """
    op, evals, exact, X0, a, b = ks_problem

    def compare():
        single = chebyshev_filter(op, X0, 200, a, b, float(evals[0]))
        cond_single = float(np.linalg.cond(blocked_gram(single)))
        X = X0.copy()
        for _ in range(4):
            X = chebyshev_filter(op, X, 50, a, b, float(evals[0]))
            X = cholesky_orthonormalize(X)
        return (
            _subspace_error(single, exact),
            cond_single,
            _subspace_error(X, exact),
        )

    err_single, cond_single, err_multi = benchmark.pedantic(
        compare, rounds=1, iterations=1
    )
    print(
        f"\n--- single m=200: error {err_single:.2e} (cond(S) {cond_single:.1e}) "
        f"vs 4 x (m=50 + CholGS): error {err_multi:.2e}"
    )
    assert cond_single > 1e12  # block collapse without re-orthonormalization
    assert err_multi < 1e-6
    assert err_multi < 1e-3 * max(err_single, 1e-10)
