"""Fig 5: Summit strong scaling of DFT-FE-MLXC — baseline vs mixed-precision
+ asynchronous compute/communication (YbCd quasicrystal, 40,040 e-).

Paper: the optimizations improve the minimum walltime by 1.8x and the
1,920-node strong-scaling efficiency from 36% to 54%.
"""

from repro.hpc.machine import SUMMIT
from repro.hpc.perfmodel import ModelOptions
from repro.hpc.runtime import PAPER_WORKLOADS, scf_breakdown, strong_scaling

NODES = [240, 480, 960, 1920]


def test_fig5_baseline_vs_optimized(benchmark, table_printer):
    wl = PAPER_WORKLOADS["YbCdQC"]
    base = ModelOptions(mixed_precision=False, async_overlap=False, use_rccl=False)
    opt = ModelOptions(mixed_precision=True, async_overlap=True, use_rccl=True)

    def build():
        rows = []
        for n in NODES:
            tb = scf_breakdown(wl, SUMMIT, n, base).wall_time
            to = scf_breakdown(wl, SUMMIT, n, opt).wall_time
            rows.append((n, tb, to, tb / to))
        return rows

    rows = benchmark(build)
    table_printer(
        "Fig 5 (model): YbCd walltime/SCF on Summit",
        ["nodes", "baseline s", "optimized s", "gain x"],
        rows,
    )
    # substantial gain at every node count (paper: 1.8x at the minimum)
    assert all(r[3] > 1.3 for r in rows)
    # walltime decreases with node count in both variants
    assert all(r2[1] < r1[1] and r2[2] < r1[2] for r1, r2 in zip(rows, rows[1:]))


def test_fig5_minimum_walltime_gain(benchmark):
    """The optimized minimum walltime beats the baseline minimum by >1.3x.

    (The paper also reports a 36% -> 54% relative-efficiency uplift; the
    model reproduces the walltime gain but not the efficiency ordering —
    see EXPERIMENTS.md for the documented deviation.)
    """
    wl = PAPER_WORKLOADS["YbCdQC"]

    def build():
        mins = {}
        for label, opts in (
            ("baseline", ModelOptions(mixed_precision=False, async_overlap=False)),
            ("optimized", ModelOptions(mixed_precision=True, async_overlap=True,
                                       use_rccl=True)),
        ):
            curve = strong_scaling(wl, SUMMIT, NODES, opts)
            mins[label] = min(t for _, t, _ in curve)
        return mins

    mins = benchmark(build)
    print(
        f"\n--- Fig 5 minimum walltime: baseline {mins['baseline']:.1f}s, "
        f"optimized {mins['optimized']:.1f}s "
        f"({mins['baseline'] / mins['optimized']:.2f}x; paper: 1.8x)"
    )
    assert mins["baseline"] / mins["optimized"] > 1.3
