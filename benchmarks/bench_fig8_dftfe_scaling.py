"""Fig 8: DFT-FE-MLXC strong scaling (YbCd, 75.07M DoF) on
Frontier/Perlmutter, and the MLXC-vs-PBE cost comparison.

The MLXC overhead claim ("Level 4+ MLXC incurs only a small overhead over
Level 2 PBE") is verified with *real* SCF runs of both functionals on this
host; the node-count scaling goes through the machine model.
"""

import pytest

from repro.hpc.machine import FRONTIER, PERLMUTTER
from repro.hpc.perfmodel import ModelOptions
from repro.hpc.runtime import PAPER_WORKLOADS, strong_scaling
from repro.obs import Stopwatch

from _harness import bench_seconds, read_results, write_result


def _measured_overlap_residual() -> float | None:
    """Latest measured ``overlap_residual`` from BENCH_procranks, if any.

    The process-rank backend (bench_procranks.py) measures compute,
    unhidden comm and overlapped wall on this host; its fitted residual
    replaces the model's default 0.08 — the measured side of the
    modeled-vs-measured loop this benchmark closes.
    """
    residual = None
    for rec in read_results("procranks"):
        value = rec.get("metrics", {}).get("overlap_residual")
        if value is not None:
            residual = float(value)
    return residual


def test_fig8_modeled_curves(benchmark, table_printer):
    wl = PAPER_WORKLOADS["YbCdQC"]
    residual = _measured_overlap_residual()

    def build():
        out = {}
        out["Perlmutter"] = strong_scaling(
            wl, PERLMUTTER, [140, 280, 560, 1120], ModelOptions(use_rccl=True)
        )
        out["Frontier"] = strong_scaling(wl, FRONTIER, [120, 240, 480, 960])
        if residual is not None:
            out["Perlmutter/measured-overlap"] = strong_scaling(
                wl, PERLMUTTER, [140, 280, 560, 1120],
                ModelOptions(use_rccl=True, overlap_residual=residual),
            )
        return out

    curves = benchmark(build)
    for machine, curve in curves.items():
        table_printer(
            f"Fig 8 (model): YbCd walltime/SCF on {machine}",
            ["nodes", "s/SCF", "efficiency"],
            [(n, t, e) for n, t, e in curve],
        )
    write_result(
        "fig8_scaling",
        params={"workload": "YbCdQC"},
        wall_seconds=bench_seconds(benchmark),
        metrics={
            "calibration": {
                "overlap_residual_default": ModelOptions().overlap_residual,
                "overlap_residual_measured": residual,
                "source": "BENCH_procranks" if residual is not None else None,
            },
            "curves": {
                machine: [
                    {"nodes": n, "scf_seconds": t, "efficiency": e}
                    for n, t, e in curve
                ]
                for machine, curve in curves.items()
            },
        },
    )
    perl = curves["Perlmutter"]
    assert perl[2][2] > 0.5  # ~80% at the paper's 560-node sweet spot
    assert 15 < perl[-1][1] < 40  # ~25 s/SCF at 1120 nodes
    if residual is not None:
        # a well-overlapped measured residual (< default) can only help
        for (n0, t0, _), (n1, t1, _) in zip(
            curves["Perlmutter"], curves["Perlmutter/measured-overlap"]
        ):
            assert n0 == n1
            if residual <= ModelOptions().overlap_residual:
                assert t1 <= t0 + 1e-12


@pytest.mark.slow
def test_fig8_mlxc_overhead_vs_pbe(benchmark):
    """Real SCF: MLXC walltime within ~2x of PBE (paper: 'similar')."""
    from repro.atoms.pseudo import AtomicConfiguration
    from repro.core import DFTCalculation, SCFOptions
    from repro.xc.gga import PBE
    from repro.xc.mlxc import MLXC

    config = AtomicConfiguration(["H", "H"], [[0, 0, 0], [1.4, 0, 0]])

    def run(xc):
        calc = DFTCalculation(
            config, xc=xc, padding=8.0, cells_per_axis=4, degree=4,
            options=SCFOptions(max_iterations=25, density_tol=1e-5),
        )
        watch = Stopwatch()
        res = calc.run()
        return watch.elapsed(), res

    def compare():
        t_pbe, _ = run(PBE())
        t_mlxc, _ = run(MLXC.bootstrapped_from(PBE(), epochs=60, n_samples=800))
        return t_pbe, t_mlxc

    t_pbe, t_mlxc = benchmark.pedantic(compare, rounds=1, iterations=1)
    print(
        f"\n--- Fig 8 (measured): SCF walltime PBE {t_pbe:.1f}s vs "
        f"MLXC {t_mlxc:.1f}s (ratio {t_mlxc / t_pbe:.2f})"
    )
    write_result(
        "fig8_mlxc_overhead",
        params={"molecule": "H2", "max_iterations": 25},
        wall_seconds=bench_seconds(benchmark),
        metrics={
            "pbe_seconds": t_pbe,
            "mlxc_seconds": t_mlxc,
            "ratio": t_mlxc / t_pbe,
        },
    )
    # On this laptop-scale system (M ~ 5e3, N ~ 5) the O(M) neural XC
    # evaluation is visible next to the O(M N^2) eigensolver; at the
    # paper's production scale (M ~ 7.5e7, N ~ 2.3e4) the same O(M) cost
    # is negligible, which is why the paper sees near-identical walltimes.
    assert t_mlxc < 30.0 * t_pbe
