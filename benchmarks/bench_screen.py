"""Family screening: warm-start reuse vs independent cold solves.

Runs the same dimer-scan family twice through :class:`repro.screen.
ScreenCampaign` over the serve runtime, with separate result caches so
the comparison is honest (a shared cache would let the second pass
trivially replay the first):

* **cold pass** — ``seeding=False``: every member starts from the
  superposition-of-atomic-densities guess, the baseline N-independent-
  solves workflow.
* **seeded pass** — anchors solve cold, every other member starts from
  its nearest converged neighbor's density (seed artifacts harvested
  through ``SchedulerPolicy.artifact_dir``), with the ML surrogate armed
  as fallback.

Two gates are **asserted**, not just reported:

* the seeded pass saves at least 25% of the total SCF iterations;
* every member's converged energy matches its cold-start golden value
  to 1e-12 Ha — a seed changes the trajectory, never the fixed point.

Results land in ``results/BENCH_screen.json`` via the PR 2 harness::

    PYTHONPATH=src python benchmarks/bench_screen.py

The tier-1 suite runs a 3-member smoke via ``main(params=...)``; the
full 10-member scan stays behind ``pytest -m slow``.
"""

import pathlib
import tempfile

from repro.obs import Stopwatch
from repro.screen import ScreenCampaign, dimer_family
from repro.serve import ResultCache

from _harness import write_result

#: reference configuration: a 10-member H2 bond scan
REF = {
    "bonds": (1.15, 1.2, 1.25, 1.3, 1.35, 1.4, 1.45, 1.5, 1.55, 1.6),
    "degree": 2,
    "cells": 2,
    "padding": 5.0,
    "workers": 2,
    "min_saving": 0.25,
    "energy_gate": 1e-12,
}


def _campaign(cfg: dict, *, seeding: bool) -> ScreenCampaign:
    return ScreenCampaign(
        dimer_family(bonds=tuple(cfg["bonds"])),
        degree=cfg["degree"],
        cells_per_axis=cfg["cells"],
        padding=cfg["padding"],
        seeding=seeding,
        surrogate=seeding,  # armed as the out-of-distribution fallback
    )


def run_screen_bench(cfg: dict, workdir: str) -> dict:
    root = pathlib.Path(workdir)
    cold = _campaign(cfg, seeding=False).run_via_serve(
        root / "cold",
        workers=cfg["workers"],
        cache=ResultCache(root / "cold-cache"),
    )
    seeded = _campaign(cfg, seeding=True).run_via_serve(
        root / "seeded",
        workers=cfg["workers"],
        cache=ResultCache(root / "seeded-cache"),
    )

    e_cold, e_seeded = cold.energies(), seeded.energies()
    if set(e_cold) != set(e_seeded):
        raise AssertionError("cold and seeded passes solved different members")
    if not all(o.converged for o in cold.outcomes + seeded.outcomes):
        raise AssertionError("a screening member failed to converge")
    energy_max_abs_diff = max(
        abs(e_cold[name] - e_seeded[name]) for name in e_cold
    )
    saving = 1.0 - seeded.total_iterations / cold.total_iterations

    # the two gates this benchmark exists to hold
    if energy_max_abs_diff > cfg["energy_gate"]:
        raise AssertionError(
            f"seeded energies drifted {energy_max_abs_diff:.3e} Ha from the "
            f"cold-start goldens (gate: {cfg['energy_gate']:.0e})"
        )
    if saving < cfg["min_saving"]:
        raise AssertionError(
            f"warm starts saved only {saving:.1%} of SCF iterations "
            f"(gate: {cfg['min_saving']:.0%})"
        )

    serve_wall = seeded.serve_stats.get("serve_wall_seconds", 0.0)
    return {
        "members": len(cold.outcomes),
        "iterations_cold": cold.total_iterations,
        "iterations_seeded": seeded.total_iterations,
        "iteration_saving": saving,
        "energy_max_abs_diff": energy_max_abs_diff,
        "seeded_fraction": seeded.seeded_fraction,
        "counts_by_source": seeded.counts_by_source(),
        "seed_stats": seeded.seed_stats,
        "surrogate_stats": seeded.surrogate_stats,
        "setup_cache": seeded.setup_cache,
        "cold_wall_seconds": cold.wall_seconds,
        "seeded_wall_seconds": seeded.wall_seconds,
        "jobs_per_hour_cold": (
            3600.0 * len(cold.outcomes) / cold.wall_seconds
            if cold.wall_seconds > 0
            else 0.0
        ),
        "jobs_per_hour_seeded": (
            3600.0 * len(seeded.outcomes) / seeded.wall_seconds
            if seeded.wall_seconds > 0
            else 0.0
        ),
        "serve_wall_seconds": serve_wall,
        "iterations": {
            "cold": cold.iterations(),
            "seeded": seeded.iterations(),
        },
    }


def main(params: dict | None = None) -> dict:
    cfg = {**REF, **(params or {})}
    watch = Stopwatch()
    with tempfile.TemporaryDirectory(prefix="bench-screen-") as workdir:
        metrics = run_screen_bench(cfg, workdir)
    record = write_result(
        "screen",
        params={**cfg, "bonds": list(cfg["bonds"])},
        wall_seconds=watch.elapsed(),
        metrics=metrics,
    )
    print(
        f"screened {metrics['members']} members: "
        f"{metrics['iterations_cold']} cold SCF iterations -> "
        f"{metrics['iterations_seeded']} seeded "
        f"({metrics['iteration_saving']:.1%} saved)"
    )
    print(
        f"  max |E_seeded - E_cold| = {metrics['energy_max_abs_diff']:.3e} Ha "
        f"(gate {cfg['energy_gate']:.0e})"
    )
    print(
        f"  throughput {metrics['jobs_per_hour_cold']:.0f} -> "
        f"{metrics['jobs_per_hour_seeded']:.0f} jobs/hour  "
        f"sources {metrics['counts_by_source']}"
    )
    return record


if __name__ == "__main__":
    main()
