"""Shared fixtures for the benchmark harness.

Each ``bench_*`` module regenerates one table or figure of the paper
(see DESIGN.md's per-experiment index).  Heavy pipelines run exactly once
per session (cached fixtures) and are timed with ``benchmark.pedantic``;
pure kernels are benchmarked normally.  Run with ``-s`` to see the
regenerated tables:

    pytest benchmarks/ --benchmark-only -s
"""

import numpy as np
import pytest


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(2023)


def print_table(title: str, header: list[str], rows: list[tuple]) -> None:
    """Render one regenerated paper table/series to stdout."""
    print(f"\n--- {title}")
    widths = [max(len(h), 12) for h in header]
    print("    " + "  ".join(h.rjust(w) for h, w in zip(header, widths)))
    for row in rows:
        cells = [
            (f"{c:.4g}" if isinstance(c, float) else str(c)).rjust(w)
            for c, w in zip(row, widths)
        ]
        print("    " + "  ".join(cells))


@pytest.fixture
def table_printer():
    return print_table
