"""Process-level rank backend: measured halo exchange + overlap (ROADMAP 2).

The virtual cluster *meters* communication; :mod:`repro.hpc.procranks`
*executes* it — P forked rank processes moving ghost payloads through
shared memory, with the interior-cell GEMMs overlapping in-flight halos.
This benchmark measures what BENCH_fig8 previously only modeled:

* SCF wall time at P ∈ {1, 2, 4} ranks, overlap on vs off;
* the per-phase breakdown (boundary / interior / halo-wait / recv) and
  the halo-wait fraction overlap is supposed to hide;
* the measured ``overlap_residual`` that recalibrates
  :class:`repro.hpc.perfmodel.ModelOptions` (consumed by bench_fig8).

Honesty note: real speedup from P processes needs P cores.  On
single-core hosts (the CI box reports 1) the workers time-slice, so the
P=4-vs-P=1 speedup assertion is gated on ``os.cpu_count()`` and the
measured numbers are recorded as-is with ``host_cores`` alongside.

The fast test is the schema smoke (apply-level phases + calibration);
the full SCF sweep runs behind ``-m slow``.
"""

import os

import numpy as np
import pytest

from repro.fem.mesh import uniform_mesh
from repro.hpc.cluster import VirtualCluster
from repro.hpc.perfmodel import calibrate_overlap
from repro.hpc.procranks import ProcRankCluster, SharedArena
from repro.obs import Stopwatch

from _harness import write_result

HOST_CORES = os.cpu_count() or 1

#: tolerance for "overlap is never slower": on an oversubscribed host the
#: schedules time-slice identically, so only gross regressions are real
_OVERLAP_TOL = 1.25


def test_procranks_apply_phases_smoke(table_printer):
    """Schema smoke: measured phases + calibration at P=2 (fast, tier-level)."""
    mesh = uniform_mesh((6.0,) * 3, (3, 3, 3), degree=3)
    x = np.random.default_rng(5).normal(size=(mesh.nnodes, 8))
    ref = VirtualCluster(mesh, 2).apply_stiffness(x)

    reports = {}
    for overlap in (True, False):
        with ProcRankCluster(mesh, 2, overlap=overlap) as cluster:
            watch = Stopwatch()
            for _ in range(4):
                y = cluster.apply_stiffness(x)
            wall = watch.elapsed()
            assert np.array_equal(y, ref)  # bitwise, both schedules
            reports[overlap] = (cluster.phase_report(), wall)
    assert SharedArena.live_segment_names() == []

    cal = calibrate_overlap(reports[True][0], reports[False][0])
    rows = [
        (
            "on" if ov else "off",
            rep["apply_total_s"],
            rep["halo_wait_s"],
            rep["halo_wait_fraction"],
        )
        for ov, (rep, _) in reports.items()
    ]
    table_printer(
        "procranks: measured apply phases (P=2)",
        ["overlap", "apply s", "halo-wait s", "wait frac"],
        rows,
    )
    write_result(
        "procranks",
        params={"mode": "apply_smoke", "nranks": 2, "host_cores": HOST_CORES},
        wall_seconds=reports[True][1],
        metrics={
            "overlap_on": reports[True][0] | {"per_rank": None},
            "overlap_off": reports[False][0] | {"per_rank": None},
            "overlap_residual": cal.residual,
            "compute_s": cal.compute_s,
            "comm_s": cal.comm_s,
            "overlapped_s": cal.overlapped_s,
        },
    )
    report_on = reports[True][0]
    assert report_on["applies"] == 4
    assert report_on["apply_total_s"] > 0.0
    assert 0.0 <= report_on["halo_wait_fraction"] <= 1.0
    assert 0.0 <= cal.residual <= 1.0


def _scf_wall(molecule_cfg, backend, nranks, overlap):
    """One SCF run; returns (wall_seconds, energy, phase_report | None)."""
    from repro.atoms.pseudo import AtomicConfiguration
    from repro.core import DFTCalculation, SCFOptions

    os.environ["REPRO_OVERLAP"] = "1" if overlap else "0"
    try:
        config = AtomicConfiguration(*molecule_cfg)
        calc = DFTCalculation(
            config, padding=6.0, cells_per_axis=3, degree=3, nstates=4,
            options=SCFOptions(
                max_iterations=25, backend=backend, nranks=nranks
            ),
        )
        with calc:
            watch = Stopwatch()
            res = calc.run()
            wall = watch.elapsed()
            report = None
            op = calc.driver.channels[0].op
            cluster = getattr(op, "cluster", None)
            if isinstance(cluster, ProcRankCluster):
                report = cluster.phase_report()
        return wall, float(res.energy), report
    finally:
        os.environ.pop("REPRO_OVERLAP", None)


@pytest.mark.slow
def test_procranks_scf_sweep(table_printer):
    """Full sweep: SCF wall at P ∈ {1, 2, 4}, overlap on/off, vs virtual."""
    h2 = (["H", "H"], [[0.0, 0.0, 0.0], [1.4, 0.0, 0.0]])

    rows = []
    walls = {}
    for nranks in (1, 2, 4):
        # the bitwise contract is per-partition: proc == virtual at the
        # same P (across P only the owner-sum *order* is fixed, and
        # different partitions legitimately round differently)
        _, e_virtual, _ = _scf_wall(h2, "virtual", nranks, True)
        for overlap in (True, False):
            wall, energy, report = _scf_wall(h2, "proc", nranks, overlap)
            assert energy == e_virtual  # bitwise across backend & schedule
            assert SharedArena.live_segment_names() == []
            walls[(nranks, overlap)] = wall
            frac = report["halo_wait_fraction"] if report else 0.0
            rows.append(
                ("on" if overlap else "off", nranks, wall, frac)
            )
            write_result(
                "procranks",
                params={
                    "mode": "scf_sweep", "molecule": "H2",
                    "nranks": nranks, "overlap": overlap,
                    "host_cores": HOST_CORES,
                },
                wall_seconds=wall,
                metrics={
                    "energy_ha": energy,
                    "bitwise_vs_virtual": True,
                    "halo_wait_fraction": frac,
                    "speedup_vs_p1": None,  # filled by the summary record
                },
            )
    table_printer(
        "procranks: SCF wall (H2, 25 SCF cap)",
        ["overlap", "P", "wall s", "wait frac"],
        rows,
    )
    speedup_p4 = walls[(1, True)] / walls[(4, True)]
    write_result(
        "procranks",
        params={"mode": "scf_summary", "host_cores": HOST_CORES},
        wall_seconds=None,
        metrics={
            "speedup_p4_overlap_on": speedup_p4,
            "walls": {
                f"P{n}_{'on' if ov else 'off'}": w
                for (n, ov), w in walls.items()
            },
        },
    )
    for nranks in (1, 2, 4):
        assert walls[(nranks, True)] <= _OVERLAP_TOL * walls[(nranks, False)]
    if HOST_CORES >= 4:
        # the acceptance target needs real cores to mean anything
        assert speedup_p4 >= 1.5
