"""reprolint self-check throughput: the static-analysis gate must stay cheap.

Times the full repo self-check (``lint_paths`` over ``src``,
``benchmarks`` and ``examples`` with every rule enabled — the same call
``tests/test_static_analysis.py`` gates on) and a rules-only pass over
``src`` to separate parse cost from analysis cost.  The flow-aware
engine (CFG + reaching definitions + dtype abstract interpretation per
function) replaced the old single-pass pattern matchers, so this
benchmark exists to catch accidental superlinear blowups: the headline
gate is that the whole self-check finishes in a few seconds.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_lint.py

or via pytest (``pytest benchmarks/bench_lint.py``), which also enforces
the wall-time gate.
"""

import pathlib

from repro.obs import Stopwatch
from repro.tools.lint import all_rules, lint_paths

from _harness import write_result

REPO = pathlib.Path(__file__).resolve().parent.parent
TARGETS = [REPO / "src", REPO / "benchmarks", REPO / "examples"]

#: the self-check gate: a pre-commit-sized budget, not a benchmark race
GATE_SECONDS = 10.0
REPEATS = 3


def _count_files() -> int:
    return sum(len(sorted(p.rglob("*.py"))) for p in TARGETS)


def run_selfcheck(repeats: int = REPEATS):
    """Best-of-``repeats`` wall seconds for the repo-wide self-check."""
    best = float("inf")
    findings = None
    for _ in range(repeats):
        watch = Stopwatch()
        findings = lint_paths(TARGETS)
        best = min(best, watch.elapsed())
    return best, findings


def run_parse_only(repeats: int = REPEATS) -> float:
    """Wall seconds with an empty rule set: file IO + AST parse cost."""
    best = float("inf")
    for _ in range(repeats):
        watch = Stopwatch()
        lint_paths([REPO / "src"], select=[])
        best = min(best, watch.elapsed())
    return best


def bench() -> dict:
    nfiles = _count_files()
    seconds, findings = run_selfcheck()
    parse_seconds = run_parse_only()
    metrics = {
        "files": nfiles,
        "rules": len(all_rules(None)),
        "findings": len(findings),
        "files_per_s": nfiles / seconds,
        "parse_only_seconds_src": parse_seconds,
        "gate_seconds": GATE_SECONDS,
    }
    write_result(
        "lint",
        params={"targets": [p.name for p in TARGETS], "repeats": REPEATS},
        wall_seconds=seconds,
        metrics=metrics,
    )
    return {"wall_seconds": seconds, **metrics}


def test_selfcheck_gate():
    """The flow-aware self-check stays clean and inside its time budget."""
    result = bench()
    assert result["findings"] == 0
    assert result["wall_seconds"] < GATE_SECONDS, result


if __name__ == "__main__":
    out = bench()
    print(
        f"reprolint self-check: {out['files']} files, {out['rules']} rules, "
        f"{out['findings']} findings in {out['wall_seconds']:.3f}s "
        f"({out['files_per_s']:.0f} files/s; parse-only src "
        f"{out['parse_only_seconds_src']:.3f}s)"
    )
