"""Fast apply path: KSOperator.apply across scatter engine x workspace x B_f.

Sweeps the matrix-free Hamiltonian application over wavefunction block
sizes with the precomputed-ScatterMap fast path and the ``np.add.at``
reference (``REPRO_SLOW_SCATTER=1``), each with the buffer-pool workspace
on and off.  The headline metric — the speedup of (fast scatter +
workspace) over (slow scatter, no workspace), i.e. over the seed
implementation — lands in ``results/BENCH_apply.json`` via the harness.

Run standalone for the full sweep::

    PYTHONPATH=src python benchmarks/bench_apply.py

or through pytest-benchmark for the reference configuration only.
"""

import os

import numpy as np
import pytest

from repro.fem.assembly import KSOperator
from repro.fem.mesh import uniform_mesh
from repro.fem.workspace import Workspace
from repro.obs import Stopwatch

from _harness import write_result

#: reference configuration the >=2x acceptance criterion is measured at
REF = {"degree": 3, "cells": 6, "nrhs": 64}
BLOCK_SIZES = (8, 16, 32, 64)
VARIANTS = (
    ("fast", True),
    ("fast", False),
    ("slow", True),
    ("slow", False),
)


def _build(degree: int, cells: int, workspace_on: bool):
    mesh = uniform_mesh(
        (10.0,) * 3, (cells,) * 3, degree, pbc=(True, True, True)
    )
    op = KSOperator(mesh, workspace=Workspace(enabled=workspace_on))
    op.set_potential(
        np.random.default_rng(0).standard_normal(mesh.nnodes)
    )
    return mesh, op


def _time_apply(op, X, repeats: int = 5) -> float:
    """Best-of-``repeats`` seconds for one ``op.apply`` on block ``X``."""
    op.apply(X)  # warm the workspace pool / scatter map
    best = np.inf
    for _ in range(repeats):
        watch = Stopwatch()
        op.apply(X)
        best = min(best, watch.elapsed())
    return best


def run_sweep(degree: int, cells: int, nrhs: int, repeats: int = 5):
    """Time every (scatter, workspace, B_f) combination on one mesh."""
    rng = np.random.default_rng(1)
    rows = []
    saved = os.environ.get("REPRO_SLOW_SCATTER")
    try:
        for scatter, ws_on in VARIANTS:
            if scatter == "slow":
                os.environ["REPRO_SLOW_SCATTER"] = "1"
            else:
                os.environ.pop("REPRO_SLOW_SCATTER", None)
            mesh, op = _build(degree, cells, ws_on)
            Xfull = rng.standard_normal((op.n, nrhs))
            for bf in BLOCK_SIZES:
                if bf > nrhs:
                    continue
                seconds = _time_apply(op, Xfull[:, :bf], repeats)
                rows.append(
                    {
                        "scatter": scatter,
                        "workspace": ws_on,
                        "block_size": bf,
                        "seconds": seconds,
                        "applies_per_s": 1.0 / seconds,
                    }
                )
    finally:
        if saved is None:
            os.environ.pop("REPRO_SLOW_SCATTER", None)
        else:
            os.environ["REPRO_SLOW_SCATTER"] = saved
    return rows


#: commit whose ``assembly.py`` predates the fast apply path (the growth
#: seed); the A/B below times it against the current operator in-process
SEED_SHA = "7fd4818"


def _seed_apply_seconds(degree: int, cells: int, nrhs: int, repeats: int = 5):
    """Best-of apply seconds for the pre-fast-path operator, via git.

    The in-repo "slow" variant still benefits from the cached gathers and
    in-place arithmetic of the new code, so the honest seed baseline is the
    historical module itself.  Returns None when git or the blob is
    unavailable (e.g. a source tarball).
    """
    import importlib.util
    import subprocess
    import sys
    import tempfile

    try:
        src = subprocess.run(
            ["git", "show", f"{SEED_SHA}:src/repro/fem/assembly.py"],
            capture_output=True, text=True, timeout=30,
            cwd=os.path.dirname(os.path.abspath(__file__)),
        )
        if src.returncode != 0:
            return None
        with tempfile.NamedTemporaryFile(
            "w", suffix=".py", delete=False
        ) as f:
            f.write(src.stdout)
            path = f.name
        import repro.fem  # noqa: F401  (package context for relative imports)

        spec = importlib.util.spec_from_file_location(
            "repro.fem._assembly_seed", path
        )
        mod = importlib.util.module_from_spec(spec)
        sys.modules["repro.fem._assembly_seed"] = mod
        spec.loader.exec_module(mod)
    except (OSError, subprocess.SubprocessError, ImportError):
        return None
    mesh = uniform_mesh(
        (10.0,) * 3, (cells,) * 3, degree, pbc=(True, True, True)
    )
    op = mod.KSOperator(mesh)
    op.set_potential(np.random.default_rng(0).standard_normal(mesh.nnodes))
    X = np.random.default_rng(1).standard_normal((op.n, nrhs))
    return _time_apply(op, X, repeats)


def _speedup(rows, bf: int) -> float:
    """(fast + workspace) over (slow scatter, no workspace) at ``bf``."""

    def sec(scatter, ws):
        return next(
            r["seconds"]
            for r in rows
            if r["scatter"] == scatter
            and r["workspace"] is ws
            and r["block_size"] == bf
        )

    return sec("slow", False) / sec("fast", True)


def main() -> None:
    watch = Stopwatch()
    rows = run_sweep(**REF)
    speedup = _speedup(rows, REF["nrhs"])
    fast_s = next(
        r["seconds"]
        for r in rows
        if r["scatter"] == "fast"
        and r["workspace"] is True
        and r["block_size"] == REF["nrhs"]
    )
    seed_s = _seed_apply_seconds(**REF)
    write_result(
        "apply",
        params=REF,
        wall_seconds=watch.elapsed(),
        metrics={
            "sweep": rows,
            "speedup_fast_ws_vs_slow_nows": speedup,
            "seed_apply_seconds": seed_s,
            "speedup_fast_ws_vs_seed": (
                None if seed_s is None else seed_s / fast_s
            ),
            "reference_block_size": REF["nrhs"],
        },
    )
    print(f"{'scatter':<8} {'ws':<6} {'B_f':>4} {'ms/apply':>10}")
    for r in rows:
        print(
            f"{r['scatter']:<8} {str(r['workspace']):<6} "
            f"{r['block_size']:>4} {1e3 * r['seconds']:>10.2f}"
        )
    print(
        f"speedup (fast+ws vs slow+no-ws) @ B_f={REF['nrhs']}: {speedup:.2f}x"
    )
    if seed_s is not None:
        print(
            f"speedup (fast+ws vs seed {SEED_SHA}) @ B_f={REF['nrhs']}: "
            f"{seed_s / fast_s:.2f}x"
        )


# ---------------------------------------------------------------------------
# pytest-benchmark entry points (reference configuration only)
# ---------------------------------------------------------------------------
@pytest.fixture(scope="module")
def apply_setup():
    mesh, op = _build(REF["degree"], REF["cells"], workspace_on=True)
    X = np.random.default_rng(1).standard_normal((op.n, REF["nrhs"]))
    return op, X


def test_apply_fast_reference(benchmark, apply_setup):
    op, X = apply_setup
    out = benchmark(op.apply, X)
    assert out.shape == X.shape
    benchmark.extra_info.update(REF, scatter="fast", workspace=True)


def test_apply_speedup_vs_seed():
    """The fast path beats the seed (slow scatter, no workspace) at B_f=64."""
    rows = run_sweep(**REF, repeats=3)
    assert _speedup(rows, REF["nrhs"]) > 1.5


if __name__ == "__main__":
    main()
