"""Machine-readable benchmark results: the ``BENCH_<name>.json`` writer.

Every ``bench_*`` module routes its headline numbers through
:func:`write_result`, which appends a schema-versioned record to
``benchmarks/results/BENCH_<name>.json``.  Records carry the benchmark
name, its parameters, the measured wall time, any derived metrics, the
git commit the run came from, and a timestamp — enough to diff runs
across commits without re-parsing stdout tables.

The file layout is one JSON array per benchmark name; each invocation
appends one record.  ``tests/test_obs.py`` validates records against
:data:`RECORD_KEYS`.
"""

from __future__ import annotations

import datetime
import json
import pathlib
import subprocess
from typing import Any

__all__ = ["RESULTS_DIR", "RECORD_KEYS", "SCHEMA", "write_result", "read_results"]

SCHEMA = "repro-bench/1"
RESULTS_DIR = pathlib.Path(__file__).resolve().parent / "results"

#: required keys of every benchmark record, in canonical order
RECORD_KEYS = (
    "schema",
    "name",
    "params",
    "wall_seconds",
    "metrics",
    "git_sha",
    "timestamp",
)


def _git_sha() -> str | None:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=pathlib.Path(__file__).resolve().parent,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except OSError:
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def bench_seconds(benchmark) -> float | None:
    """Mean wall time from a pytest-benchmark fixture, if it has stats."""
    try:
        return float(benchmark.stats.stats.mean)
    except AttributeError:
        return None


def write_result(
    name: str,
    params: dict[str, Any] | None = None,
    wall_seconds: float | None = None,
    metrics: dict[str, Any] | None = None,
) -> pathlib.Path:
    """Append one schema'd record to ``results/BENCH_<name>.json``.

    ``metrics`` holds the derived quantities the benchmark exists to
    measure (errors, rates, byte counts, ...); ``params`` the inputs that
    define the configuration.  Both must be JSON-serializable.
    """
    record = {
        "schema": SCHEMA,
        "name": name,
        "params": params or {},
        "wall_seconds": wall_seconds,
        "metrics": metrics or {},
        "git_sha": _git_sha(),
        "timestamp": datetime.datetime.now(datetime.timezone.utc).isoformat(),
    }
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"BENCH_{name}.json"
    records = read_results(name)
    records.append(record)
    path.write_text(json.dumps(records, indent=2) + "\n", encoding="utf-8")
    return path


def read_results(name: str) -> list[dict[str, Any]]:
    """All stored records for ``name`` (empty list if none or unreadable)."""
    path = RESULTS_DIR / f"BENCH_{name}.json"
    if not path.exists():
        return []
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError):
        return []
    return data if isinstance(data, list) else []
