"""Fig 3: accuracy of MLXC vs conventional XC approximations.

The paper's Fig 3 compares MLXC (trained on invDFT exact-XC data for
H2/LiH/Li/N/Ne) against LDA/GGA/hybrid on a thermochemistry set, finding
7 mHa/atom — close to QMB accuracy.  This benchmark reproduces the
comparison in the model world: FCI supplies the exact reference energies of
held-out molecules, and each level of theory is run self-consistently
(LDA, PBE, MLXC) or post-SCF (PBE0) on identical meshes.

Uses the shipped pretrained MLXC weights
(``src/repro/xc/data/mlxc_pretrained.npz``, produced by
``examples/mlxc_training.py --save``); falls back to a quick in-situ
training run if absent.
"""

import pathlib

import numpy as np
import pytest

from repro.core import DFTCalculation, SCFOptions
from repro.pipeline import qmb_reference
from repro.xc.gga import PBE
from repro.xc.hybrid import PBE0
from repro.xc.lda import LDA
from repro.xc.mlxc import MLXC

WEIGHTS = (
    pathlib.Path(__file__).resolve().parent.parent
    / "src/repro/xc/data/mlxc_pretrained.npz"
)

#: held-out evaluation molecules (none in the training set geometry):
#: an atom (He), a stretched covalent molecule (H2 at 2.2 Bohr) and a
#: metallic dimer (Li2).  Strongly stretched LiH — a charge-transfer
#: system outside the training manifold — stays at semilocal-level error
#: and is reported as a documented limitation in EXPERIMENTS.md.
TEST_SET = ("He", "H2_stretched", "Li2")


@pytest.fixture(scope="module")
def mlxc():
    if WEIGHTS.exists():
        return MLXC.from_pretrained(str(WEIGHTS))
    # fallback: fast in-situ pipeline (reduced settings)
    from repro.pipeline import build_training_set, train_mlxc

    samples = build_training_set(("H2", "Li"), invdft_iterations=40)
    model, _ = train_mlxc(samples, epochs=120)
    return model


@pytest.fixture(scope="module")
def accuracy_rows(mlxc):
    rows = {}
    for name in TEST_SET:
        ref = qmb_reference(name)
        mesh, config = ref.calc.mesh, ref.calc.config
        natoms = config.natoms
        errors = {}
        opts = SCFOptions(max_iterations=90, mixing_alpha=0.25)
        res_pbe = None
        for label, xc in (("LDA", LDA()), ("PBE", PBE()), ("MLXC", mlxc)):
            res = DFTCalculation(config, xc=xc, mesh=mesh, options=opts).run()
            errors[label] = abs(res.energy - ref.e_fci) / natoms * 1000.0
            if label == "PBE":
                res_pbe = res
        e_hyb = PBE0().post_scf_energy(mesh, res_pbe)
        errors["PBE0"] = abs(e_hyb - ref.e_fci) / natoms * 1000.0
        rows[name] = errors
    return rows


@pytest.mark.slow
def test_fig3_accuracy_table(benchmark, accuracy_rows, table_printer):
    def build():
        methods = ("LDA", "PBE", "PBE0", "MLXC")
        out = []
        for name, errors in accuracy_rows.items():
            out.append((name, *(errors[m] for m in methods)))
        mae = ["MAE"] + [
            float(np.mean([accuracy_rows[n][m] for n in accuracy_rows]))
            for m in methods
        ]
        out.append(tuple(mae))
        return out

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    table_printer(
        "Fig 3: |E - E_FCI| per atom (mHa) — LDA / PBE / PBE0 / MLXC "
        "(paper: MLXC ~7 mHa/atom, far better than Levels 1-3)",
        ["molecule", "LDA", "PBE", "PBE0", "MLXC"],
        rows,
    )
    mae = {m: rows[-1][i + 1] for i, m in enumerate(("LDA", "PBE", "PBE0", "MLXC"))}
    # the paper's qualitative ordering: the QMB-informed functional beats
    # the semilocal levels on held-out systems
    assert mae["MLXC"] < mae["LDA"]
    assert mae["MLXC"] < mae["PBE"]
    assert mae["MLXC"] < mae["PBE0"]
    assert mae["MLXC"] < 15.0  # commensurate-with-QMB territory (mHa/atom)


@pytest.mark.slow
def test_fig3_mlxc_close_to_qmb_on_heldout(accuracy_rows, benchmark):
    """Headline: MLXC reaches few-mHa/atom accuracy on unseen molecules."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    worst = max(errors["MLXC"] for errors in accuracy_rows.values())
    print(f"\n--- Fig 3: worst-case MLXC error {worst:.1f} mHa/atom "
          "(paper: 7 mHa/atom mean)")
    assert worst < 20.0
