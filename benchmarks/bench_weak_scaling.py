"""Weak scaling of DFT-FE-MLXC (model) — beyond the paper's strong-scaling plots.

Table 3 itself is a weak-scaling statement (302,668 -> 619,124 e- on
2,400 -> 8,000 nodes at 49.3% -> 43.1% of peak); this bench sweeps the
TwinDislocMgY family at fixed work-per-node and verifies the efficiency
erosion stays mild — the property that made the 659.7 PFLOPS run possible.
"""

from repro.hpc.machine import FRONTIER
from repro.hpc.perfmodel import ModelOptions
from repro.hpc.runtime import PAPER_WORKLOADS, scf_breakdown


def test_weak_scaling_across_twin_family(benchmark, table_printer):
    opts = ModelOptions(optimal_routing=False)
    cases = [
        ("TwinDislocMgY(A)", 2400),
        ("TwinDislocMgY(B)", 6000),
        ("TwinDislocMgY(C)", 8000),
    ]

    def build():
        rows = []
        for name, nodes in cases:
            wl = PAPER_WORKLOADS[name]
            m = scf_breakdown(wl, FRONTIER, nodes, opts)
            rows.append(
                (
                    name,
                    wl.total_electrons,
                    nodes,
                    wl.total_electrons / nodes,
                    m.sustained_pflops,
                    100 * m.peak_fraction,
                )
            )
        return rows

    rows = benchmark(build)
    table_printer(
        "Weak scaling (model): sustained efficiency across the Twin family",
        ["system", "supercell e-", "nodes", "e-/node", "PFLOPS", "% peak"],
        rows,
    )
    peaks = [r[5] for r in rows]
    # efficiency erodes by only a few points from 2,400 to 8,000 nodes
    assert peaks[0] - peaks[-1] < 10.0
    assert all(p > 35.0 for p in peaks)
    # absolute throughput keeps growing with machine size
    pflops = [r[4] for r in rows]
    assert pflops[0] < pflops[1] < pflops[2]
