"""Ablation (Sec 5.4.1): cell-level batched GEMM vs global sparse matvec.

The paper's central kernel choice: recast ``H X`` as batched dense
cell-level products (``Assembly_FE {H_c X_c}``) instead of a global sparse
matrix apply.  Both are implemented here and benchmarked on identical
operators; the batched form wins for wavefunction blocks because of its
arithmetic intensity.
"""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.fem.assembly import KSOperator
from repro.fem.mesh import uniform_mesh


@pytest.fixture(scope="module")
def operators():
    mesh = uniform_mesh((8.0,) * 3, (4, 4, 4), degree=4)
    op = KSOperator(mesh)
    rng = np.random.default_rng(0)
    v = rng.normal(size=mesh.nnodes) * 0.1
    op.set_potential(v)
    H = sp.csr_matrix(op.matrix())
    X = rng.standard_normal((op.n, 64))
    return op, H, X


def test_cell_level_batched_apply(benchmark, operators):
    op, H, X = operators
    Y = benchmark(op.apply, X)
    assert Y.shape == X.shape


def test_global_sparse_apply(benchmark, operators):
    op, H, X = operators
    Y = benchmark(lambda: H @ X)
    assert Y.shape == X.shape


def test_both_paths_agree(operators, benchmark):
    op, H, X = operators
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert np.allclose(op.apply(X), H @ X, atol=1e-9)


def test_sparse_matrix_density(operators, benchmark):
    """Context: the FE sparse operator is ~0.1-1% dense; cell matrices are
    small and dense — exactly the regime where batched GEMMs pay off."""
    op, H, X = operators
    density = benchmark(lambda: H.nnz / (H.shape[0] * H.shape[1]))
    print(f"\n--- global sparse density {density:.2%}, "
          f"cell matrix {op.mesh.nodes_per_cell}^2 dense")
    assert density < 0.05
