"""Fig 7: invDFT strong scaling (ortho-benzyne) + real adjoint-solve timing.

(i) the machine model regenerates the paper's 4 -> 32 Perlmutter-node curve
(104 s -> 20 s per optimization iteration, 5.2x);
(ii) the projected block-MINRES adjoint solve — the kernel behind it — is
benchmarked for real on a small molecule.
"""

import numpy as np
import pytest

from repro.hpc.machine import PERLMUTTER
from repro.hpc.perfmodel import ModelOptions
from repro.hpc.runtime import PAPER_WORKLOADS, invdft_iteration_time


def test_fig7_modeled_scaling(benchmark, table_printer):
    wl = PAPER_WORKLOADS["OrthoBenzyne"]
    opts = ModelOptions(use_rccl=True)

    def build():
        rows = []
        t0 = None
        for nodes in (4, 8, 16, 32):
            t = invdft_iteration_time(wl, PERLMUTTER, nodes, opts=opts)
            t0 = t0 or t
            rows.append((nodes, t, t0 / t))
        return rows

    rows = benchmark(build)
    table_printer(
        "Fig 7 (model): invDFT s/iteration on Perlmutter "
        "(paper: 104 -> 20 s, 5.2x)",
        ["nodes", "s/iter", "speedup"],
        rows,
    )
    assert 80 < rows[0][1] < 130  # ~104 s at 4 nodes
    assert 15 < rows[-1][1] < 30  # ~20 s at 32 nodes
    assert 4.0 < rows[-1][2] < 6.5  # ~5.2x


@pytest.fixture(scope="module")
def adjoint_problem():
    from repro.atoms.pseudo import AtomicConfiguration
    from repro.core import DFTCalculation
    from repro.invdft.adjoint import adjoint_rhs
    from repro.xc.lda import LDA

    config = AtomicConfiguration(["He"], [[0, 0, 0]])
    calc = DFTCalculation(
        config, xc=LDA(), padding=8.0, cells_per_axis=4, degree=3, nstates=3
    )
    res = calc.run()
    ch = res.channels[0]
    mesh = calc.mesh
    drho = 1e-3 * res.rho  # synthetic density mismatch
    occ = np.asarray(res.occupations[0])
    G = adjoint_rhs(mesh, ch.psi, occ, drho)
    return ch.op, ch.psi, ch.evals, G


def test_fig7_real_adjoint_solve(benchmark, adjoint_problem):
    """Measured projected block-MINRES adjoint solve (the Fig 7 kernel)."""
    from repro.invdft.adjoint import solve_adjoint

    op, psi, evals, G = adjoint_problem
    res = benchmark.pedantic(
        solve_adjoint, args=(op, psi, evals, G),
        kwargs={"tol": 1e-7, "maxiter": 300}, rounds=2, iterations=1,
    )
    assert res.converged
    benchmark.extra_info["minres_iterations"] = res.iterations
