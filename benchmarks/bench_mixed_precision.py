"""Sec 5.4.2 ablation: mixed-precision strategies — measured.

* FP32 halo exchange halves the boundary-communication volume at ~1e-7
  relative error (virtual cluster, real execution);
* FP32 off-diagonal blocks speed up the blocked Gram/rotation kernels on
  this host while keeping FP64-level accuracy in the final energies
  (verified in tests/test_scf.py::test_mixed_precision_scf_matches_fp64).
"""

import numpy as np
import pytest

from repro.core.orthonorm import blocked_gram, blocked_rotate
from repro.fem.assembly import CellStiffness
from repro.fem.mesh import uniform_mesh
from repro.hpc.cluster import VirtualCluster

from _harness import bench_seconds, write_result


@pytest.fixture(scope="module")
def gram_input(rng):
    return np.asfortranarray(rng.standard_normal((20000, 96)))


@pytest.mark.parametrize("mixed", [False, True], ids=["fp64", "mixed-fp32"])
def test_blocked_gram_precision_speed(benchmark, gram_input, mixed):
    S = benchmark(blocked_gram, gram_input, 32, mixed)
    ref = gram_input.T @ gram_input
    rel = np.abs(S - ref).max() / np.abs(ref).max()
    benchmark.extra_info["max_rel_error"] = float(rel)
    write_result(
        "mixed_precision_gram",
        params={"shape": list(gram_input.shape), "block": 32, "mixed": mixed},
        wall_seconds=bench_seconds(benchmark),
        metrics={"max_rel_error": float(rel)},
    )
    assert rel < (1e-12 if not mixed else 1e-5)


@pytest.mark.parametrize("mixed", [False, True], ids=["fp64", "mixed-fp32"])
def test_blocked_rotate_precision_speed(benchmark, gram_input, mixed):
    Q = np.linalg.qr(np.random.default_rng(1).standard_normal((96, 96)))[0]
    Y = benchmark(blocked_rotate, gram_input, Q, 32, mixed)
    rel = np.abs(Y - gram_input @ Q).max() / np.abs(gram_input).max()
    assert rel < (1e-12 if not mixed else 1e-5)


def test_fp32_halo_traffic_and_accuracy(benchmark, table_printer):
    """Paper: FP32 boundary communication -> ~2x lower cost, FP64 accuracy."""
    mesh = uniform_mesh((6.0,) * 3, (4, 4, 4), degree=4)
    x = np.random.default_rng(2).normal(size=(mesh.nnodes, 16))
    ref = CellStiffness(mesh).apply_full(x)

    def run():
        out = []
        for fp32 in (False, True):
            vc = VirtualCluster(mesh, 8, fp32_halo=fp32)
            y = vc.apply_stiffness(x)
            rel = float(np.abs(y - ref).max() / np.abs(ref).max())
            out.append((fp32, vc.traffic.p2p_bytes, rel))
        return out

    rows = benchmark(run)
    table_printer(
        "Sec 5.4.2 (measured): halo precision vs traffic and error",
        ["fp32 halo", "p2p bytes", "max rel err"],
        rows,
    )
    write_result(
        "mixed_precision_halo",
        params={"nranks": 8, "nvec": 16, "degree": 4},
        wall_seconds=bench_seconds(benchmark),
        metrics={
            ("fp32" if fp32 else "fp64"): {
                "p2p_bytes": bytes_,
                "max_rel_error": rel,
            }
            for fp32, bytes_, rel in rows
        },
    )
    (f64, b64, e64), (f32, b32, e32) = rows
    assert b32 == pytest.approx(0.5 * b64)
    assert e64 < 1e-13 and e32 < 1e-6
