"""Band-structure utility, edge dislocation field, and the CLI."""

import numpy as np
import pytest

from repro.core.bands import band_structure, kpath
from repro.materials.defects import edge_dislocation_displacement


def test_kpath_endpoints_and_spacing():
    path = kpath((0, 0, 0), (0.5, 0, 0), 5)
    assert len(path) == 5
    assert path[0] == (0.0, 0.0, 0.0)
    assert np.isclose(path[-1][0], 0.5)
    steps = np.diff([k[0] for k in path])
    assert np.allclose(steps, steps[0])
    with pytest.raises(ValueError):
        kpath((0, 0, 0), (1, 0, 0), 1)


@pytest.mark.slow
def test_band_structure_free_electron_dispersion():
    """Empty-lattice bands: e(k) = (2 pi k / L)^2 / 2 along the chain axis."""
    from repro.atoms.pseudo import AtomicConfiguration
    from repro.core import DFTCalculation, SCFOptions
    from repro.xc.lda import LDA

    lat = np.diag([4.0, 10.0, 10.0])
    chain = AtomicConfiguration(
        ["H"], [[2.0, 5.0, 5.0]], lattice=lat, pbc=(True, False, False)
    )
    calc = DFTCalculation(
        chain, padding=5.0, cells_per_axis=(2, 3, 3), degree=4,
        kpoints=[((0.0, 0.0, 0.0), 0.5), ((0.5, 0.0, 0.0), 0.5)],
        options=SCFOptions(max_iterations=40, temperature=5e-3), xc=LDA(),
    )
    res = calc.run()
    path = kpath((0, 0, 0), (0.5, 0, 0), 3)
    bands = band_structure(calc.mesh, res, path, nbands=4)
    assert bands.shape == (3, 4)
    # the lowest band disperses upward from Gamma to the zone boundary
    assert bands[1, 0] > bands[0, 0]
    assert bands[2, 0] > bands[1, 0]
    # and matches the SCF eigenvalues at the sampled k-points
    assert np.isclose(bands[0, 0], res.eigenvalues[0][0], atol=2e-3)
    assert np.isclose(bands[2, 0], res.eigenvalues[1][0], atol=2e-3)


def test_edge_dislocation_burgers_circuit():
    """The displacement jump around the core equals the Burgers vector."""
    b = 1.5
    angles = np.linspace(-np.pi + 1e-3, np.pi - 1e-3, 400)
    pts = np.stack([2 * np.cos(angles), 2 * np.sin(angles), np.zeros(400)], axis=1)
    u = edge_dislocation_displacement(pts, (0.0, 0.0), b)
    assert np.isclose(u[-1, 0] - u[0, 0], b, rtol=1e-2)
    assert np.allclose(u[:, 2], 0.0)  # plane strain: no line component


def test_edge_dislocation_far_field_decay():
    """Strains decay like 1/r: displacement differences shrink with r."""
    b = 1.0
    near = edge_dislocation_displacement(
        np.array([[2.0, 0.1, 0], [2.2, 0.1, 0]]), (0, 0), b
    )
    far = edge_dislocation_displacement(
        np.array([[20.0, 0.1, 0], [20.2, 0.1, 0]]), (0, 0), b
    )
    assert abs(far[1, 1] - far[0, 1]) < 0.2 * abs(near[1, 1] - near[0, 1])


# ----- CLI ----------------------------------------------------------------------
def test_cli_info(capsys):
    from repro.__main__ import main

    assert main(["info"]) == 0
    out = capsys.readouterr().out
    assert "DFT-FE-MLXC" in out and "Frontier" in out


def test_cli_perfmodel(capsys):
    from repro.__main__ import main

    assert main(["perfmodel", "TwinDislocMgY(A)", "--nodes", "2400"]) == 0
    out = capsys.readouterr().out
    assert "CholGS-S" in out and "PFLOPS" in out


def test_cli_scf_unknown_molecule(capsys):
    from repro.__main__ import main

    assert main(["scf", "Unobtainium"]) == 2


@pytest.mark.slow
def test_cli_scf_h2(capsys):
    from repro.__main__ import main

    assert main(["scf", "H2", "--degree", "3", "--cells", "3"]) == 0
    out = capsys.readouterr().out
    assert "converged=True" in out
