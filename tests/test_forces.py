"""Hellmann-Feynman forces and structural relaxation."""

import numpy as np
import pytest

from repro.atoms.pseudo import AtomicConfiguration
from repro.core import DFTCalculation, SCFOptions
from repro.core.forces import hellmann_feynman_forces, relax
from repro.core.hamiltonian import Electrostatics
from repro.fem.mesh import uniform_mesh
from repro.xc.lda import LDA

L = 16.0


def _fixed_density(mesh):
    r2 = np.sum((mesh.node_coords - L / 2) ** 2, axis=1)
    rho = np.exp(-r2 / 4.0)
    return rho * (2.0 / float(mesh.integrate(rho)))


def _es_energy(mesh, d):
    cfg = AtomicConfiguration(
        ["H", "H"], [[L / 2 - d / 2, L / 2, L / 2], [L / 2 + d / 2, L / 2, L / 2]]
    )
    es = Electrostatics(mesh, cfg)
    rho = _fixed_density(mesh)
    v = es.solve(rho, tol=1e-11)
    return es.electrostatic_energy(rho, v), cfg, v


def test_forces_match_fd_of_electrostatic_energy():
    """F = -dE/dR against central differences (rho held fixed)."""
    mesh = uniform_mesh((L,) * 3, (5, 5, 5), degree=6)
    d0, h = 2.0, 0.02
    _, cfg, v = _es_energy(mesh, d0)
    F = hellmann_feynman_forces(mesh, cfg, v)
    ep, _, _ = _es_energy(mesh, d0 + 2 * h)
    em, _, _ = _es_energy(mesh, d0 - 2 * h)
    fd = -(ep - em) / (4 * h)  # = -dE/dx2
    assert np.isclose(F[1, 0], fd, rtol=0.03)
    # Newton's third law and symmetry
    assert np.allclose(F[0] + F[1], 0.0, atol=1e-6)
    assert np.allclose(F[:, 1:], 0.0, atol=1e-6)


def test_forces_vanish_for_symmetric_atom():
    """A single centered atom feels no force."""
    mesh = uniform_mesh((L,) * 3, (4, 4, 4), degree=5)
    cfg = AtomicConfiguration(["He"], [[L / 2, L / 2, L / 2]])
    calc = DFTCalculation(cfg, xc=LDA(), mesh=mesh)
    res = calc.run()
    F = hellmann_feynman_forces(mesh, cfg, res.v_tot)
    assert np.abs(F).max() < 1e-6


@pytest.mark.slow
def test_relax_h2_toward_equilibrium():
    """Relaxation from a compressed H2 moves toward the binding minimum."""
    mesh = uniform_mesh((L,) * 3, (4, 4, 4), degree=5)

    def run_scf(cfg):
        calc = DFTCalculation(
            cfg, xc=LDA(), mesh=mesh,
            options=SCFOptions(max_iterations=50, density_tol=1e-7),
        )
        res = calc.run()
        return res.energy, hellmann_feynman_forces(mesh, cfg, res.v_tot)

    start = AtomicConfiguration(
        ["H", "H"], [[L / 2 - 0.7, L / 2, L / 2], [L / 2 + 0.7, L / 2, L / 2]]
    )
    e0, f0 = run_scf(start)
    out = relax(run_scf, start, force_tol=5e-3, max_steps=10)
    d_final = np.linalg.norm(out.config.positions[1] - out.config.positions[0])
    assert out.energy < e0 - 1e-3  # energy strictly decreased
    assert d_final > 1.5  # bond stretched toward the ~2.5 Bohr minimum
    assert np.abs(out.forces).max() < np.abs(f0).max()


def test_relax_result_bookkeeping():
    """relax() with an analytic quadratic surface converges cleanly."""
    target = np.array([[0.0, 0.0, 0.0], [3.0, 0.0, 0.0]])

    def run(cfg):
        d = cfg.positions - target
        e = 0.5 * float(np.sum(d**2))
        return e, -d

    start = AtomicConfiguration(["H", "H"], target + 0.3)
    out = relax(run, start, force_tol=1e-6, max_steps=200, step=0.5)
    assert out.converged
    assert np.allclose(out.config.positions, target, atol=1e-5)
    assert out.history[0]["fmax"] > out.history[-1]["fmax"]
