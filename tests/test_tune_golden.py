"""Golden bitwise tests: tuned profiles never change SCF math.

The tuner's core contract (DESIGN.md sec 15) is that a tuned profile
changes the *schedule* — block partitioning, scatter engine, thread
width — and never the floating-point result.  Stored golden JSONs are
only bit-reproducible on the machine that wrote them, so every test here
compares a *fresh* tuned run against a *fresh* untuned run from the same
session: the two must agree bit for bit, to the last ulp, on every
molecule in the library, through the process-rank backend, and across a
checkpoint/resume boundary.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.atoms.pseudo import AtomicConfiguration
from repro.core import DFTCalculation, SCFOptions
from repro.pipeline import MOLECULE_LIBRARY
from repro.tune.profile import (
    TunedProfile,
    host_fingerprint,
    load_host_profile,
    save_profile,
)
from repro.xc.lda import LDA

#: schedule knobs distinct from every built-in default: B_f 16 (default
#: 64), split subspace block, slice scatter engine, two worker threads.
#: Both block sizes stay >= the library's largest nstates (8) so blocked
#: loops see a single block — partitioning is exact by construction.
TUNED_KNOBS = {
    "block_size": 16,
    "subspace_block_size": 32,
    "scatter_engine": "slices",
    "num_threads": 2,
}
SCF_DEGREE, SCF_CELLS, SCF_ITERS = 3, 3, 5


def _install_tuned_profile() -> TunedProfile:
    """Write the tuned profile at the hermetic default path (conftest
    points REPRO_TUNE_DIR at a per-test tmp dir)."""
    prof = TunedProfile(knobs=dict(TUNED_KNOBS), fingerprint=host_fingerprint())
    save_profile(prof)
    return prof


def _run(name, *, tuned, max_iterations=SCF_ITERS, resume_from=None, **opts):
    symbols, positions, *_ = MOLECULE_LIBRARY[name]
    config = AtomicConfiguration(list(symbols), np.asarray(positions, float))
    calc = DFTCalculation(
        config,
        xc=LDA(),
        degree=SCF_DEGREE,
        cells_per_axis=SCF_CELLS,
        options=SCFOptions(
            max_iterations=max_iterations, autotune=tuned, **opts
        ),
    )
    with calc:
        res = calc.run(resume_from=resume_from)
    return calc, res


def _assert_bitwise_equal(tuned_res, plain_res):
    assert tuned_res.free_energy == plain_res.free_energy  # bit for bit
    assert tuned_res.energy == plain_res.energy
    assert tuned_res.fermi_level == plain_res.fermi_level
    assert tuned_res.n_iterations == plain_res.n_iterations
    for ev_t, ev_p in zip(tuned_res.eigenvalues, plain_res.eigenvalues):
        np.testing.assert_array_equal(np.asarray(ev_t), np.asarray(ev_p))
    np.testing.assert_array_equal(tuned_res.rho_spin, plain_res.rho_spin)


@pytest.mark.parametrize("molecule", sorted(MOLECULE_LIBRARY))
def test_tuned_profile_is_bitwise_neutral(molecule):
    _install_tuned_profile()
    tuned_calc, tuned_res = _run(molecule, tuned=True)
    _, plain_res = _run(molecule, tuned=False)
    # the comparison is non-vacuous: the tuned run really took the
    # profile's schedule, not the built-in defaults
    assert tuned_calc.options.block_size == TUNED_KNOBS["block_size"]
    assert tuned_calc.options.subspace_block == TUNED_KNOBS["subspace_block_size"]
    assert tuned_calc.mesh.scatter_engine == "slices"
    _assert_bitwise_equal(tuned_res, plain_res)


def test_tuned_profile_is_bitwise_neutral_on_proc_backend():
    """Same contract through the fork/shared-memory rank backend at P=2."""
    _install_tuned_profile()
    backend = dict(backend="proc", nranks=2, max_iterations=4)
    _, tuned_res = _run("H2", tuned=True, **backend)
    _, plain_res = _run("H2", tuned=False, **backend)
    _assert_bitwise_equal(tuned_res, plain_res)


def test_tuned_checkpoint_resume_is_bitwise(tmp_path):
    """Kill a tuned run at iteration 3, resume under the same profile,
    and land bit-identical to both the uninterrupted tuned run and the
    uninterrupted *untuned* run."""
    _install_tuned_profile()
    assert load_host_profile() is not None
    ck = tmp_path / "tuned.ckpt"
    _, ref_tuned = _run("H2", tuned=True, max_iterations=6)
    _run("H2", tuned=True, max_iterations=3,
         checkpoint_path=ck, checkpoint_every=1)
    _, resumed = _run("H2", tuned=True, max_iterations=6, resume_from=ck)
    _assert_bitwise_equal(resumed, ref_tuned)
    _, ref_plain = _run("H2", tuned=False, max_iterations=6)
    _assert_bitwise_equal(resumed, ref_plain)
