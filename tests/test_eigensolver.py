"""ChFES pieces: Lanczos bounds, Chebyshev filter, CholGS, Rayleigh-Ritz."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.chebyshev import chebyshev_filter, filter_block, lanczos_upper_bound
from repro.core.orthonorm import blocked_gram, blocked_rotate, cholesky_orthonormalize
from repro.core.rayleigh_ritz import projected_hamiltonian, rayleigh_ritz
from repro.hpc.flops import FlopLedger


class DenseOp:
    """Minimal operator wrapper over a dense Hermitian matrix."""

    def __init__(self, H):
        self.H = np.asarray(H)
        self.dtype = self.H.dtype
        self.n = H.shape[0]

    def apply(self, X):
        return self.H @ X


def _random_hermitian(n, seed=0, complex_=False):
    rng = np.random.default_rng(seed)
    A = rng.standard_normal((n, n))
    if complex_:
        A = A + 1j * rng.standard_normal((n, n))
    return 0.5 * (A + A.conj().T)


def test_lanczos_upper_bound_is_upper_bound():
    for seed in range(5):
        H = _random_hermitian(60, seed)
        op = DenseOp(H)
        b = lanczos_upper_bound(op, k=12, seed=seed)
        assert b >= np.linalg.eigvalsh(H)[-1] - 1e-8


def test_filter_amplifies_wanted_spectrum():
    """After filtering, the subspace aligns with the lowest eigenvectors."""
    H = np.diag(np.linspace(0.0, 10.0, 100))
    op = DenseOp(H)
    rng = np.random.default_rng(1)
    X = np.linalg.qr(rng.standard_normal((100, 8)))[0]
    Y = filter_block(op, X, m=12, a=2.0, b=10.5, a0=0.0)
    # energy content below a should dominate
    low = np.linalg.norm(Y[:20], "fro")
    high = np.linalg.norm(Y[20:], "fro")
    assert low > 50 * high


def test_filter_degree_improves_subspace():
    H = _random_hermitian(80, 2)
    evals, evecs = np.linalg.eigh(H)
    op = DenseOp(H)
    rng = np.random.default_rng(3)
    X = np.linalg.qr(rng.standard_normal((80, 6)))[0]
    a, b = evals[10], evals[-1] + 0.1
    errs = []
    for m in (4, 10, 20):
        Y = chebyshev_filter(op, X, m, a, b, evals[0])
        Q = np.linalg.qr(Y)[0]
        # subspace error vs the exact lowest-6 eigenspace
        P = evecs[:, :6]
        errs.append(np.linalg.norm(Q @ (Q.T @ P) - P))
    assert errs[0] > errs[1] > errs[2]


def test_blocked_filter_matches_unblocked():
    H = _random_hermitian(50, 4)
    op = DenseOp(H)
    X = np.random.default_rng(5).standard_normal((50, 10))
    full = chebyshev_filter(op, X, 8, 1.0, 12.0, -1.0, block_size=None)
    blocked = chebyshev_filter(op, X, 8, 1.0, 12.0, -1.0, block_size=3)
    assert np.allclose(full, blocked, atol=1e-12)


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 10**6), complex_=st.booleans())
def test_cholesky_orthonormalize_property(seed, complex_):
    """Property: output has identity overlap, spans the same space."""
    rng = np.random.default_rng(seed)
    X = rng.standard_normal((40, 8))
    if complex_:
        X = X + 1j * rng.standard_normal((40, 8))
    Y = cholesky_orthonormalize(X, block_size=3)
    S = Y.conj().T @ Y
    assert np.allclose(S, np.eye(8), atol=1e-10)
    # same span: projector equality
    Px = X @ np.linalg.pinv(X)
    Py = Y @ Y.conj().T
    assert np.allclose(Px, Py, atol=1e-8)


def test_blocked_gram_matches_direct():
    rng = np.random.default_rng(7)
    X = rng.standard_normal((60, 10)) + 1j * rng.standard_normal((60, 10))
    S = blocked_gram(X, block_size=4)
    assert np.allclose(S, X.conj().T @ X, atol=1e-12)


def test_blocked_gram_mixed_precision_error_small():
    rng = np.random.default_rng(8)
    X = rng.standard_normal((200, 16))
    S64 = blocked_gram(X, block_size=4, mixed_precision=False)
    S32 = blocked_gram(X, block_size=4, mixed_precision=True)
    # diagonal blocks identical (kept FP64)
    assert np.allclose(np.diag(S64), np.diag(S32), atol=0)
    rel = np.abs(S64 - S32).max() / np.abs(S64).max()
    assert 0 < rel < 1e-5  # fp32 off-diagonals: small but nonzero error


def test_blocked_rotate_matches_direct():
    rng = np.random.default_rng(9)
    X = rng.standard_normal((30, 9))
    Q = rng.standard_normal((9, 9))
    assert np.allclose(blocked_rotate(X, Q, block_size=4), X @ Q, atol=1e-12)


def test_rayleigh_ritz_recovers_eigenpairs():
    H = _random_hermitian(70, 11)
    evals_ref, evecs = np.linalg.eigh(H)
    op = DenseOp(H)
    X = evecs[:, :5] @ np.linalg.qr(np.random.default_rng(1).standard_normal((5, 5)))[0]
    evals, Xr = rayleigh_ritz(op, X, block_size=2)
    assert np.allclose(evals, evals_ref[:5], atol=1e-10)
    for i in range(5):
        overlap = abs(np.dot(Xr[:, i], evecs[:, i]))
        assert overlap > 1.0 - 1e-10


def test_projected_hamiltonian_hermitian():
    H = _random_hermitian(40, 12, complex_=True)
    op = DenseOp(H)
    rng = np.random.default_rng(2)
    X = np.linalg.qr(rng.standard_normal((40, 8)) + 1j * rng.standard_normal((40, 8)))[0]
    Hp = projected_hamiltonian(X, op.apply(X), block_size=3)
    assert np.allclose(Hp, Hp.conj().T, atol=1e-12)


def test_ledger_records_kernel_flops():
    H = _random_hermitian(50, 13)
    op = DenseOp(H)
    rng = np.random.default_rng(4)
    X = rng.standard_normal((50, 10))
    ledger = FlopLedger()
    Y = cholesky_orthonormalize(X, block_size=5, mixed_precision=True, ledger=ledger)
    rayleigh_ritz(op, Y, block_size=5, mixed_precision=True, ledger=ledger)
    for k in ("CholGS-S", "CholGS-O", "RR-P", "RR-SR"):
        assert ledger[k].flops_total > 0, k
    assert ledger["CholGS-S"].flops_fp32 > 0  # mixed precision active
    assert ledger["RR-D"].seconds >= 0 and ledger["RR-D"].flops_total == 0
